// The fuzzing example runs a small CompDiff-AFL++ campaign (paper
// Algorithm 1) against a packet parser with a guarded unstable
// overflow check. The fuzzer must first *reach* the guard (coverage
// feedback), then *trigger* the overflow (mutation); the differential
// oracle flags the input the moment two binaries disagree.
package main

import (
	"fmt"
	"log"

	"compdiff"
)

const target = `
int parse_length_field(int base, int extra, int limit) {
    if (base < 0 || extra < 0) { return -1; }
    if (base + extra < base) { return -1; } /* unstable guard */
    if (base > limit) { return -2; }
    return base + extra;
}

int main() {
    char pkt[10];
    long n = read_input(pkt, 10L);
    if (n < 10) { return 0; }
    if (pkt[0] != 'L' || pkt[1] != 'N') { return 0; }
    int base = 0;
    int extra = 0;
    memcpy((char*)&base, pkt + 2, 4L);
    memcpy((char*)&extra, pkt + 6, 4L);
    base = base & 2147483647;
    extra = extra & 2147483647;
    printf("length=%d\n", parse_length_field(base, extra, 2147483647));
    return 0;
}
`

func main() {
	seeds := [][]byte{[]byte("LN\x01\x00\x00\x00\x02\x00\x00\x00")}
	campaign, err := compdiff.NewCampaign(target, seeds, compdiff.CampaignOptions{
		FuzzSeed:    7,
		MaxInputLen: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CompDiff-AFL++ campaign (paper Algorithm 1) ==")
	fmt.Printf("implementations: %v\n", campaign.ImplNames())
	stats := campaign.Run(30_000)
	fmt.Printf("executions: %d  corpus: %d seeds  crashes: %d\n",
		stats.Execs, stats.Seeds, stats.UniqueCrashes)
	fmt.Printf("differential executions: %d (the ~10x oversight cost §5 discusses)\n\n", campaign.DiffExecs)

	diffs := campaign.Diffs()
	fmt.Printf("unique discrepancies found: %d (from %d diverging inputs)\n\n",
		len(diffs), campaign.TotalDiffInputs())
	for _, d := range diffs {
		fmt.Println(d.Report(campaign.ImplNames()))
	}
	if len(diffs) == 0 {
		log.Fatal("campaign found nothing; raise the budget")
	}
}
