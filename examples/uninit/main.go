// The uninit example reproduces the paper's Listing 4 (the exiv2
// maker-note bug): a value that a parser is supposed to fill stays
// uninitialized on the empty-input path and is then printed. The real
// MemorySanitizer misses it (the value never decides a branch), but
// the ten binaries print whatever their own frame layout and memory
// fill left behind — a divergence CompDiff catches immediately.
package main

import (
	"fmt"
	"log"

	"compdiff"
)

const listing4 = `
/* simplified from exiv2 CanonMakerNote::print0x000c */
void parse_serial(int* out, long have) {
    if (have > 0L) {
        *out = (int)have * 7;
    }
    /* empty input: *out never written */
}

int main() {
    int l;
    parse_serial(&l, input_size());
    printf("serial: %d\n", (l & 65535) >> 2);
    return 0;
}
`

func main() {
	suite, err := compdiff.New(listing4, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CompDiff: uninitialized read (paper Listing 4) ==")
	withInput := suite.Run([]byte("x"))
	fmt.Printf("non-empty input:  diverged=%v (value was written)\n", withInput.Diverged)

	empty := suite.Run(nil)
	fmt.Printf("empty input:      diverged=%v (value stayed uninitialized)\n\n", empty.Diverged)
	if !empty.Diverged {
		log.Fatal("expected divergence")
	}
	for _, impls := range empty.Groups() {
		names := make([]string, 0, len(impls))
		for _, i := range impls {
			names = append(names, suite.Names()[i])
		}
		fmt.Printf("%v: %s", names, empty.Results[impls[0]].Stdout)
	}
	fmt.Println("\neach implementation prints its own stack garbage. MSan stays")
	fmt.Println("silent here — the uninitialized value never decides a branch —")
	fmt.Println("which is exactly the complementarity the paper measures.")
}
