// The quickstart reproduces the paper's Listing 1: an integer-overflow
// guard that aggressive compiler implementations legally delete. On a
// benign input every binary agrees; on the overflowing input the
// optimized and unoptimized binaries return different answers — the
// unstable-code signal CompDiff detects.
package main

import (
	"fmt"
	"log"

	"compdiff"
)

const listing1 = `
/* dump a chunk of buffer (paper Listing 1) */
int dump_data(int offset, int len, int size) {
    if (offset + len > size || offset < 0 || len < 0) {
        return -1;
    }
    if (offset + len < offset) {
        return -1;
    }
    /* would dump data+offset .. data+offset+len here */
    return offset + len;
}

int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 8) { printf("need 8 bytes\n"); return 0; }
    int offset = 0;
    int len = 0;
    memcpy((char*)&offset, buf, 4L);
    memcpy((char*)&len, buf + 4, 4L);
    offset = offset & 2147483647;
    len = len & 2147483647;
    printf("dump_data -> %d\n", dump_data(offset, len, 2147483647));
    return 0;
}
`

func main() {
	suite, err := compdiff.New(listing1, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CompDiff quickstart: paper Listing 1 ==")
	fmt.Printf("compiled under %d implementations: %v\n\n", len(suite.Impls), suite.Names())

	benign := []byte{1, 0, 0, 0, 2, 0, 0, 0} // offset=1, len=2
	o := suite.Run(benign)
	fmt.Printf("benign input (offset=1, len=2): diverged=%v\n", o.Diverged)

	// offset = INT_MAX-100, len = 101: offset+len overflows; the second
	// guard would catch it — unless the implementation deleted it.
	evil := []byte{0x9b, 0xff, 0xff, 0x7f, 0x65, 0x00, 0x00, 0x00}
	o = suite.Run(evil)
	fmt.Printf("overflow input (offset=INT_MAX-100, len=101): diverged=%v\n\n", o.Diverged)

	if !o.Diverged {
		log.Fatal("expected divergence")
	}
	for hash, impls := range o.Groups() {
		_ = hash
		names := make([]string, 0, len(impls))
		for _, i := range impls {
			names = append(names, suite.Names()[i])
		}
		fmt.Printf("--- output under %v:\n%s\n", names, o.Results[impls[0]].Stdout)
	}
	fmt.Println("the guard `offset + len < offset` was folded away by the")
	fmt.Println("aggressive implementations: unstable code, found by CompDiff.")
}
