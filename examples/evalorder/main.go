// The evalorder example reproduces the paper's Listing 3 (the tcpdump
// ARP printer): two calls that share a static buffer appear as
// arguments of the same printf. Argument evaluation order is
// unspecified in C, the side effects conflict, and the two compiler
// families legally disagree — "who-is 2 tell 2" under one, "who-is 1
// tell 1" under the other.
package main

import (
	"fmt"
	"log"

	"compdiff"
)

const listing3 = `
static char buffer[16];

char* get_linkaddr_string(int v) {
    buffer[0] = (char)(48 + (v & 7));
    buffer[1] = '\0';
    return buffer;
}

int main() {
    char pkt[8];
    long n = read_input(pkt, 8L);
    if (n < 2) { printf("truncated arp packet\n"); return 0; }
    printf("who-is %s tell %s\n",
        get_linkaddr_string(pkt[0]),
        get_linkaddr_string(pkt[1]));
    return 0;
}
`

func main() {
	suite, err := compdiff.New(listing3, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CompDiff: unsequenced side effects (paper Listing 3) ==")
	o := suite.Run([]byte{1, 2})
	fmt.Printf("input: p1=1 p2=2, diverged=%v\n\n", o.Diverged)
	if !o.Diverged {
		log.Fatal("expected divergence")
	}
	for _, impls := range o.Groups() {
		names := make([]string, 0, len(impls))
		for _, i := range impls {
			names = append(names, suite.Names()[i])
		}
		fmt.Printf("%v print: %s", names, o.Results[impls[0]].Stdout)
	}
	fmt.Println("\nboth fields always show the same address: whichever call ran")
	fmt.Println("last owns the shared static buffer. gcc evaluates arguments")
	fmt.Println("right-to-left, clang left-to-right — both are allowed.")
}
