// Command compdiff runs compiler-driven differential testing on a
// MiniC program: it compiles the program under a set of compiler
// implementations, executes the given inputs on every binary, and
// reports any output discrepancies (unstable code).
//
// Usage:
//
//	compdiff [flags] prog.mc [inputfile...]
//
// With no input files, the program runs once on empty input. Each
// input file's raw bytes are one test input.
//
// Flags:
//
//	-impls all|pair     implementation set (default all ten)
//	-hex BYTES          extra input given as hex, e.g. -hex 4c4e01
//	-normalize          filter timestamps/pointers before comparison
//	-diffdir DIR        persist diverging inputs under DIR/diffs/
//	-v                  print per-implementation outputs for diffs
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"

	"compdiff"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compdiff: ")
	impls := flag.String("impls", "all", "implementation set: all | pair")
	hexInput := flag.String("hex", "", "extra input as hex bytes")
	normalize := flag.Bool("normalize", false, "apply the RQ5 output normalizer")
	diffdir := flag.String("diffdir", "", "persist diverging inputs under DIR/diffs/")
	verbose := flag.Bool("v", false, "print grouped outputs for each discrepancy")
	localize := flag.Bool("localize", false, "trace-diff each discrepancy to the first diverging source line")
	flag.Parse()

	if flag.NArg() < 1 {
		log.Fatal("usage: compdiff [flags] prog.mc [inputfile...]")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	var set []compdiff.Implementation
	switch *impls {
	case "all":
		set = compdiff.DefaultImplementations()
	case "pair":
		set = compdiff.RecommendedPair()
	default:
		log.Fatalf("unknown -impls %q (want all or pair)", *impls)
	}

	opts := compdiff.Options{}
	if *normalize {
		opts.Normalizer = compdiff.DefaultNormalizer()
	}
	suite, err := compdiff.New(string(src), set, opts)
	if err != nil {
		log.Fatal(err)
	}

	var inputs [][]byte
	for _, path := range flag.Args()[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		inputs = append(inputs, data)
	}
	if *hexInput != "" {
		data, err := hex.DecodeString(*hexInput)
		if err != nil {
			log.Fatalf("bad -hex: %v", err)
		}
		inputs = append(inputs, data)
	}
	if len(inputs) == 0 {
		inputs = append(inputs, nil)
	}

	store := compdiff.NewDiffStore(*diffdir)
	diverged := 0
	for i, in := range inputs {
		o := suite.Run(in)
		if !o.Diverged {
			fmt.Printf("input %d (%d bytes): stable\n", i, len(in))
			continue
		}
		diverged++
		fmt.Printf("input %d (%d bytes): DIVERGED (signature %016x)\n", i, len(in), o.Signature())
		if _, err := store.Add(o); err != nil {
			log.Printf("diff store: %v", err)
		}
		if *verbose {
			for _, impls := range o.Groups() {
				names := make([]string, 0, len(impls))
				for _, j := range impls {
					names = append(names, suite.Names()[j])
				}
				fmt.Printf("  %v:\n", names)
				fmt.Printf("    %q\n", o.Results[impls[0]].Encode())
			}
		}
		if *localize {
			loc, err := suite.Localize(o)
			if err != nil {
				log.Printf("localize: %v", err)
			} else {
				fmt.Printf("  localization: %s\n", loc)
			}
		}
	}
	fmt.Printf("\n%d of %d inputs diverged; %d unique discrepancies\n",
		diverged, len(inputs), len(store.Unique()))
	if diverged > 0 {
		os.Exit(1)
	}
}
