package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff"
)

// validCfg is a baseline that passes validation; cases mutate it.
func validCfg() cliConfig {
	return cliConfig{
		src:    "finding.mc",
		out:    ".",
		budget: 4000,
		jobs:   1,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliConfig)
		wantErr string // substring; "" means the config must pass
	}{
		{"baseline", func(c *cliConfig) {}, ""},
		{"with-input", func(c *cliConfig) { c.input = "crash.bin" }, ""},
		{"custom-out", func(c *cliConfig) { c.out = "triaged" }, ""},
		{"parallel", func(c *cliConfig) { c.jobs = 4 }, ""},
		{"tiny-budget", func(c *cliConfig) { c.budget = 1 }, ""},

		{"no-src", func(c *cliConfig) { c.src = "" }, "need -src"},
		{"zero-budget", func(c *cliConfig) { c.budget = 0 }, "-budget 0"},
		{"negative-budget", func(c *cliConfig) { c.budget = -100 }, "-budget -100"},
		{"zero-jobs", func(c *cliConfig) { c.jobs = 0 }, "-jobs 0"},
		{"negative-jobs", func(c *cliConfig) { c.jobs = -4 }, "-jobs -4"},
		{"empty-out", func(c *cliConfig) { c.out = "" }, "-out cannot be empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validCfg()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %q, want substring %q", cfg, err, tc.wantErr)
			}
		})
	}
}

// findingSrc diverges for any input whose first byte is 'X': the
// divisor reads it directly. The helper function and the dead branch
// are what the reducer must strip.
const findingSrc = `
int pad_helper(int v) { return v * 2 + 1; }
int main() {
    char buf[32];
    long n = read_input(buf, 32L);
    int pad = pad_helper(5);
    if (n < 1L) { printf("empty\n"); return 0; }
    if (pad == -1) { printf("never\n"); }
    printf("%d\n", 100 / (buf[0] - 88));
    return 0;
}
`

// writeFinding lays the finding and its input out in a temp dir and
// returns the cliConfig pointing at them.
func writeFinding(t *testing.T, input []byte) cliConfig {
	t.Helper()
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "finding.mc")
	if err := os.WriteFile(srcPath, []byte(findingSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := validCfg()
	cfg.src = srcPath
	cfg.out = filepath.Join(dir, "out")
	if input != nil {
		cfg.input = filepath.Join(dir, "crash.bin")
		if err := os.WriteFile(cfg.input, input, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

func TestRunWritesArtifacts(t *testing.T) {
	cfg := writeFinding(t, []byte("Xpadding-bytes"))
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}

	reduced, err := os.ReadFile(filepath.Join(cfg.out, "reduced.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) >= len(findingSrc) {
		t.Fatalf("reduced.mc is not smaller: %d vs %d bytes", len(reduced), len(findingSrc))
	}
	if strings.Contains(string(reduced), "pad_helper") {
		t.Fatalf("filler survived reduction:\n%s", reduced)
	}

	input, err := os.ReadFile(filepath.Join(cfg.out, "reduced.input"))
	if err != nil {
		t.Fatal(err)
	}
	if string(input) != "X" {
		t.Fatalf("reduced.input = %q, want %q", input, "X")
	}

	fpData, err := os.ReadFile(filepath.Join(cfg.out, "fingerprint.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fp struct {
		Partition []uint8 `json:"partition"`
		Classes   []uint8 `json:"classes"`
		Stage     int     `json:"stage"`
		Key       string  `json:"key"`
	}
	if err := json.Unmarshal(fpData, &fp); err != nil {
		t.Fatalf("fingerprint.json does not decode: %v", err)
	}
	if len(fp.Partition) != 10 || len(fp.Classes) != 10 || fp.Key == "" {
		t.Fatalf("fingerprint.json incomplete: %s", fpData)
	}

	// The reduced artifact must reproduce exactly the recorded
	// fingerprint when re-run from disk.
	suite, err := compdiff.New(string(reduced), compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := suite.Run(input)
	if !o.Diverged {
		t.Fatal("reduced.mc no longer diverges")
	}
	if got := compdiff.FingerprintOf(o); got.Key() != parseKey(t, fp.Key) {
		t.Fatalf("reduced fingerprint key %016x != recorded %s", got.Key(), fp.Key)
	}

	for _, want := range []string{"source", "fingerprint", "cost", "wrote"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func parseKey(t *testing.T, hex string) uint64 {
	t.Helper()
	var key uint64
	for _, c := range []byte(hex) {
		switch {
		case c >= '0' && c <= '9':
			key = key<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			key = key<<4 | uint64(c-'a'+10)
		default:
			t.Fatalf("bad key %q", hex)
		}
	}
	return key
}

// TestRunBudgetBoundsSuiteRuns pins that -budget is a hard ceiling on
// differential executions: a starved run still succeeds and reports a
// spend within the budget.
func TestRunBudgetBoundsSuiteRuns(t *testing.T) {
	cfg := writeFinding(t, []byte("X"))
	cfg.budget = 5
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "suite runs, ") || !strings.Contains(out.String(), "(budget 5)") {
		t.Fatalf("summary does not report the budget:\n%s", out.String())
	}
	// The cost line reads "cost : N suite runs, M builds (budget B)".
	var runs int
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "cost") {
			if _, err := fmt.Sscanf(line[strings.Index(line, ":")+1:], " %d suite runs", &runs); err != nil {
				t.Fatalf("cannot parse cost line %q: %v", line, err)
			}
		}
	}
	if runs < 1 || runs > cfg.budget {
		t.Fatalf("spent %d suite runs, budget %d", runs, cfg.budget)
	}
}

func TestRunNonDivergingFindingFails(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "stable.mc")
	stable := "int main() { printf(\"ok\\n\"); return 0; }\n"
	if err := os.WriteFile(srcPath, []byte(stable), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := validCfg()
	cfg.src = srcPath
	cfg.out = filepath.Join(dir, "out")
	var out bytes.Buffer
	err := run(cfg, &out)
	if err == nil {
		t.Fatal("run succeeded on a stable program")
	}
	if !strings.Contains(err.Error(), "does not diverge") {
		t.Fatalf("err = %v, want ErrNoDivergence", err)
	}
}
