// Command compdiff-reduce delta-debugs a diverging finding — a MiniC
// program plus the input that triggers the divergence — down to a
// minimal reproducer with the same divergence fingerprint, then writes
// the minimized program and the fingerprint record next to each other.
//
// Usage:
//
//	compdiff-reduce -src finding.mc
//	compdiff-reduce -src finding.mc -input crash.bin -out triaged/ -budget 2000
//
// Flags:
//
//	-src FILE     the diverging MiniC program (required)
//	-input FILE   the triggering input (omit for the empty input)
//	-out DIR      output directory (default "."): writes reduced.mc,
//	              reduced.input (when non-empty), and fingerprint.json
//	-budget N     maximum differential suite executions to spend
//	-jobs N       worker goroutines per differential cross-check
//
// Compile-stage findings reduce too: when the program itself diverges
// at compile time (accept/reject split, internal compiler error, or
// diagnostic mismatch), reduction preserves the compile fingerprint —
// same partition, same normalized crash/diagnostic keys — and the
// input is irrelevant (no reduced.input is written).
//
// Invalid flag values (a missing -src, a non-positive -budget or
// -jobs) are rejected up front with exit code 2. A program that does
// not diverge under the ten implementations is a normal failure (exit
// 1): there is nothing to reduce.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"compdiff"
)

// cliConfig holds every flag value that validation looks at. Keeping
// it a plain struct keeps validate a pure function the tests can
// drive without touching the flag package or os.Args.
type cliConfig struct {
	src    string
	input  string
	out    string
	budget int
	jobs   int
}

// validate rejects nonsensical flag combinations up front, before they
// reach the reducer where they would be silently reinterpreted.
func (c cliConfig) validate() error {
	if c.src == "" {
		return fmt.Errorf("need -src: the diverging MiniC program to reduce")
	}
	if c.budget < 1 {
		return fmt.Errorf("-budget %d: the reduction needs at least one suite execution", c.budget)
	}
	if c.jobs < 1 {
		return fmt.Errorf("-jobs %d: the cross-check needs at least one worker", c.jobs)
	}
	if c.out == "" {
		return fmt.Errorf("-out cannot be empty; use . for the current directory")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("compdiff-reduce: ")
	srcPath := flag.String("src", "", "diverging MiniC source file (required)")
	inputPath := flag.String("input", "", "triggering input file (empty input when omitted)")
	outDir := flag.String("out", ".", "output directory for reduced.mc and fingerprint.json")
	budget := flag.Int("budget", 4000, "maximum differential suite executions")
	jobs := flag.Int("jobs", 1, "worker goroutines per differential cross-check")
	flag.Parse()

	cfg := cliConfig{
		src:    *srcPath,
		input:  *inputPath,
		out:    *outDir,
		budget: *budget,
		jobs:   *jobs,
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "compdiff-reduce: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes one reduction per the validated config, writing the
// artifacts under cfg.out and a human summary to w.
func run(cfg cliConfig, w io.Writer) error {
	src, err := os.ReadFile(cfg.src)
	if err != nil {
		return err
	}
	var input []byte
	if cfg.input != "" {
		input, err = os.ReadFile(cfg.input)
		if err != nil {
			return err
		}
	}

	red, err := compdiff.Reduce(string(src), input, compdiff.ReduceOptions{
		Suite:        compdiff.Options{Parallelism: cfg.jobs},
		MaxSuiteRuns: cfg.budget,
	})
	if err != nil {
		return err
	}

	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		return err
	}
	reducedPath := filepath.Join(cfg.out, "reduced.mc")
	if err := os.WriteFile(reducedPath, []byte(red.Source), 0o644); err != nil {
		return err
	}
	if len(red.Input) > 0 {
		if err := os.WriteFile(filepath.Join(cfg.out, "reduced.input"), red.Input, 0o644); err != nil {
			return err
		}
	}
	fpJSON, err := json.MarshalIndent(red.Fingerprint, "", "  ")
	if err != nil {
		return err
	}
	fpPath := filepath.Join(cfg.out, "fingerprint.json")
	if err := os.WriteFile(fpPath, append(fpJSON, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "source      : %d -> %d bytes (%.0f%% smaller)\n",
		red.OrigSourceBytes, len(red.Source), red.SourceShrink()*100)
	fmt.Fprintf(w, "input       : %d -> %d bytes\n", red.OrigInputBytes, len(red.Input))
	fmt.Fprintf(w, "fingerprint : %s\n", red.Fingerprint)
	fmt.Fprintf(w, "cost        : %d suite runs, %d builds (budget %d)\n",
		red.SuiteRuns, red.Builds, cfg.budget)
	fmt.Fprintf(w, "wrote %s, %s\n", reducedPath, fpPath)
	return nil
}
