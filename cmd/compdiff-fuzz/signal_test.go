package main

// End-to-end shutdown-path tests over the real binary: TestMain
// re-execs the test binary as the compdiff-fuzz CLI when
// COMPDIFF_FUZZ_WORKER=1, so a campaign can be signaled, killed, and
// supervised exactly as in production — no mocks between the signal
// and the checkpoint.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"compdiff/internal/checkpoint"
	"compdiff/internal/supervisor"
)

func TestMain(m *testing.M) {
	if os.Getenv("COMPDIFF_FUZZ_WORKER") == "1" {
		os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// workerCmd re-execs this test binary as the CLI with the given args.
func workerCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "COMPDIFF_FUZZ_WORKER=1")
	return cmd
}

// campaignArgs is the shared flag set both tests run: one fixed
// deterministic campaign, varied only in where its checkpoint lives.
func campaignArgs(ckpt string, total int64) []string {
	return []string{
		"-target", "tcpdump",
		"-execs-total", fmt.Sprint(total),
		"-seed", "1",
		"-shards", "2",
		"-sync", "400",
		"-checkpoint", ckpt,
		"-resume",
	}
}

func waitManifest(t *testing.T, dir string, minSpent int64, timeout time.Duration) *checkpoint.Manifest {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m, err := checkpoint.ReadManifest(dir); err == nil && m.SpentExecs >= minSpent {
			return m
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("no checkpoint manifest with spent >= %d within %s", minSpent, timeout)
	return nil
}

// TestSigtermDrainsAtBarrier: a SIGTERM mid-campaign must exit 0 with
// a durable checkpoint strictly between start and budget — the
// graceful path loses nothing past the last barrier.
func TestSigtermDrainsAtBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	const total = 1_000_000 // far more than the test lets it spend
	cmd := workerCmd(campaignArgs(ckpt, total)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitManifest(t, ckpt, 800, 30*time.Second)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("campaign did not drain within 30s of SIGTERM")
	}
	m, err := checkpoint.ReadManifest(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpentExecs <= 0 || m.SpentExecs >= total {
		t.Fatalf("drained checkpoint spent = %d, want in (0, %d)", m.SpentExecs, total)
	}
	st, _, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("drained checkpoint does not load: %v", err)
	}
	if st.SpentExecs != m.SpentExecs {
		t.Fatalf("state spent %d != manifest spent %d", st.SpentExecs, m.SpentExecs)
	}
}

// TestSupervisedResumeMatchesUninterrupted is the acceptance test:
// kill -9 a supervised worker mid-campaign, let the supervisor restart
// it, and require the final checkpoint to carry the same signature and
// bucket sets (and totals) as an uninterrupted run of the same seed
// and budget.
func TestSupervisedResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two real campaigns")
	}
	const total = 20_000

	// Reference: the same campaign, uninterrupted.
	refCkpt := filepath.Join(t.TempDir(), "ckpt")
	ref := workerCmd(campaignArgs(refCkpt, total)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run failed: %v\n%s", err, out)
	}
	refState, _, err := checkpoint.Load(refCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if refState.SpentExecs != total {
		t.Fatalf("reference spent %d, want %d", refState.SpentExecs, total)
	}

	// Supervised: one worker, same seed (WorkerSeed keeps the base for
	// worker 0), killed hard mid-run.
	farm := t.TempDir()
	sup, err := supervisor.New(supervisor.Config{
		Farm:       farm,
		Workers:    1,
		TotalExecs: total,
		Command: func(index int, dirs checkpoint.WorkerDirs) *exec.Cmd {
			return workerCmd(campaignArgs(dirs.Checkpoint, total)...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	dirs := checkpoint.WorkerLayout(farm, 0)

	// Let it make durable progress, then kill -9 the worker itself
	// (not a drain — the supervisor must notice and restart).
	waitManifest(t, dirs.Checkpoint, 2_000, 60*time.Second)
	st := sup.Status()
	if len(st) != 1 || st[0].Pid == 0 {
		t.Fatalf("no live worker to kill: %+v", st)
	}
	if err := syscall.Kill(st[0].Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		st = sup.Status()
		if len(st) == 1 && st[0].State == supervisor.StateDone {
			break
		}
		if len(st) == 1 && st[0].State == supervisor.StateFailed {
			t.Fatalf("worker abandoned instead of resumed: %+v", st[0])
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never completed after kill -9: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sup.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if st[0].Restarts < 1 {
		t.Fatalf("restarts = %d, want >= 1 after kill -9", st[0].Restarts)
	}

	farmState, _, err := checkpoint.Load(dirs.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if farmState.SpentExecs != total {
		t.Fatalf("supervised spent %d, want %d", farmState.SpentExecs, total)
	}

	// The killed interval was replayed from the checkpoint, so the
	// final states must agree exactly — same discrepancies, same
	// triage buckets, same totals.
	sigs := func(st *checkpoint.State) map[uint64]int {
		m := map[uint64]int{}
		for _, d := range st.Diffs {
			m[d.Signature] = d.Count
		}
		return m
	}
	refSigs, farmSigs := sigs(refState), sigs(farmState)
	if len(refSigs) == 0 {
		t.Fatal("reference campaign found no discrepancies; test is vacuous")
	}
	if len(refSigs) != len(farmSigs) {
		t.Fatalf("signature sets differ: ref %d, supervised %d", len(refSigs), len(farmSigs))
	}
	for sig, n := range refSigs {
		if farmSigs[sig] != n {
			t.Fatalf("signature %x: ref count %d, supervised %d", sig, n, farmSigs[sig])
		}
	}
	buckets := func(st *checkpoint.State) map[uint64]int {
		m := map[uint64]int{}
		for _, b := range st.Buckets {
			m[b.Key] = b.Count
		}
		return m
	}
	refBuckets, farmBuckets := buckets(refState), buckets(farmState)
	if len(refBuckets) != len(farmBuckets) {
		t.Fatalf("bucket sets differ: ref %d, supervised %d", len(refBuckets), len(farmBuckets))
	}
	for key, n := range refBuckets {
		if farmBuckets[key] != n {
			t.Fatalf("bucket %x: ref count %d, supervised %d", key, n, farmBuckets[key])
		}
	}
	if refState.DiffTotal != farmState.DiffTotal || refState.BucketTotal != farmState.BucketTotal {
		t.Fatalf("totals differ: ref %d/%d, supervised %d/%d",
			refState.DiffTotal, refState.BucketTotal, farmState.DiffTotal, farmState.BucketTotal)
	}
}
