// Command compdiff-fuzz runs a CompDiff-AFL++ campaign (paper §3.2,
// Algorithm 1) against a MiniC program or one of the built-in
// real-world targets.
//
// Usage:
//
//	compdiff-fuzz -target tcpdump -execs 50000
//	compdiff-fuzz -src prog.mc -seedfile s1 -seedfile s2 -execs 100000
//
// Flags:
//
//	-target NAME   fuzz a built-in target (see -list)
//	-src FILE      fuzz a MiniC source file
//	-execs N       execution budget on the instrumented binary
//	-seed N        fuzzer RNG seed
//	-san MODE      sanitizer on the fuzzing binary: none|asan|ubsan|msan
//	-diffdir DIR   persist diverging inputs under DIR/diffs/
//	-list          list built-in targets and exit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"compdiff"
	"compdiff/internal/targets"
)

type seedList [][]byte

func (s *seedList) String() string { return fmt.Sprintf("%d seeds", len(*s)) }
func (s *seedList) Set(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	*s = append(*s, data)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("compdiff-fuzz: ")
	targetName := flag.String("target", "", "built-in target to fuzz")
	srcPath := flag.String("src", "", "MiniC source file to fuzz")
	execs := flag.Int64("execs", 50_000, "execution budget")
	seed := flag.Int64("seed", 1, "fuzzer RNG seed")
	sanFlag := flag.String("san", "none", "sanitizer on the fuzz binary: none|asan|ubsan|msan")
	diffdir := flag.String("diffdir", "", "persist diverging inputs")
	list := flag.Bool("list", false, "list built-in targets")
	var seeds seedList
	flag.Var(&seeds, "seedfile", "seed input file (repeatable)")
	flag.Parse()

	if *list {
		for _, tg := range targets.All() {
			fmt.Printf("%-14s %-16s %d planted bugs\n", tg.Name, tg.InputType, len(tg.Bugs))
		}
		return
	}

	var src string
	var corpus [][]byte
	var normalizer *compdiff.Normalizer
	switch {
	case *targetName != "":
		tg := targets.ByName(*targetName)
		if tg == nil {
			log.Fatalf("unknown target %q (use -list)", *targetName)
		}
		src = tg.Src
		corpus = tg.Seeds
		if tg.NeedsNormalizer {
			normalizer = compdiff.DefaultNormalizer()
		}
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
		corpus = seeds
	default:
		log.Fatal("need -target or -src (or -list)")
	}

	san := compdiff.SanNone
	switch *sanFlag {
	case "none":
	case "asan":
		san = compdiff.SanASan
	case "ubsan":
		san = compdiff.SanUBSan
	case "msan":
		san = compdiff.SanMSan
	default:
		log.Fatalf("unknown -san %q", *sanFlag)
	}

	campaign, err := compdiff.NewCampaign(src, corpus, compdiff.CampaignOptions{
		FuzzSeed:   *seed,
		Sanitizer:  san,
		Normalizer: normalizer,
		DiffDir:    *diffdir,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := campaign.Run(*execs)

	fmt.Printf("executions     : %d\n", stats.Execs)
	fmt.Printf("corpus         : %d seeds\n", stats.Seeds)
	fmt.Printf("unique crashes : %d\n", stats.UniqueCrashes)
	fmt.Printf("diff inputs    : %d (%d unique discrepancies)\n",
		campaign.TotalDiffInputs(), len(campaign.Diffs()))
	fmt.Printf("diff execs     : %d across %d implementations\n\n",
		campaign.DiffExecs, len(campaign.ImplNames()))

	for _, d := range campaign.Diffs() {
		fmt.Println(d.Report(campaign.ImplNames()))
	}
	for _, c := range campaign.Crashes() {
		fmt.Printf("crash %s on input %q\n", c.Result.Exit, c.Input)
		if c.Result.San != nil {
			fmt.Printf("  %s\n", c.Result.San)
		}
	}
}
