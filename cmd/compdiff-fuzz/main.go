// Command compdiff-fuzz runs a CompDiff-AFL++ campaign (paper §3.2,
// Algorithm 1) against a MiniC program or one of the built-in
// real-world targets.
//
// Usage:
//
//	compdiff-fuzz -target tcpdump -execs 50000
//	compdiff-fuzz -src prog.mc -seedfile s1 -seedfile s2 -execs 100000
//
// Flags:
//
//	-target NAME    fuzz a built-in target (see -list)
//	-src FILE       fuzz a MiniC source file
//	-programs DIR   compile-oracle campaign over every *.mc program in
//	                DIR: accept/reject divergences, internal compiler
//	                errors, and diagnostic mismatches become triage
//	                buckets; universally-accepted programs are
//	                cross-checked at runtime on the empty input
//	-execs N        execution budget on the instrumented binary
//	                (per shard when -shards > 1)
//	-seed N         fuzzer RNG seed
//	-shards N       parallel fuzzer instances, AFL -M/-S style
//	-jobs N         worker goroutines per differential cross-check
//	-sync N         executions between shard synchronization barriers
//	-san MODE       sanitizer on the fuzzing binary: none|asan|ubsan|msan
//	-diffdir DIR    persist diverging inputs under DIR/diffs/
//	-stats DIR      record AFL-plot-style snapshots to DIR/plot.jsonl
//	                and print a per-implementation summary table
//	-stats-every N  snapshot every N generated inputs (single shard;
//	                sharded pools snapshot at every barrier)
//	-checkpoint DIR write a crash-safe campaign snapshot under DIR at
//	                every synchronization barrier
//	-checkpoint-every N
//	                barriers between snapshots (default 1)
//	-resume         continue the campaign checkpointed in -checkpoint DIR
//	                (falls back to a fresh start when DIR has none)
//	-list           list built-in targets and exit
//
// Invalid flag values (e.g. -shards 0, a negative -jobs, an explicit
// -sync 0 on a sharded run, or -resume against a checkpoint written
// with different source/seeds/options) are rejected up front with exit
// code 2; a corrupt checkpoint exits 1.
//
// With -shards > 1 or -checkpoint set, SIGINT/SIGTERM cancels the
// campaign gracefully at the next synchronization barrier, writes a
// final checkpoint (when enabled), and prints what was found so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"compdiff"
	"compdiff/internal/targets"
)

type seedList [][]byte

func (s *seedList) String() string { return fmt.Sprintf("%d seeds", len(*s)) }
func (s *seedList) Set(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	*s = append(*s, data)
	return nil
}

// cliConfig holds every flag value that validation looks at. Keeping
// it a plain struct keeps validate a pure function the tests can
// drive without touching the flag package or os.Args.
type cliConfig struct {
	target     string
	src        string
	programs   string
	execs      int64
	shards     int
	jobs       int
	sync       int64
	syncSet    bool // -sync was given explicitly
	san        string
	statsEvery int64
	checkpoint string
	ckptEvery  int64
	resume     bool
	list       bool
}

// validate rejects nonsensical flag combinations up front — before
// they reach the engine, where a zero shard count or a negative worker
// count would be silently reinterpreted rather than diagnosed.
func (c cliConfig) validate() error {
	if c.list {
		return nil
	}
	if c.target == "" && c.src == "" && c.programs == "" {
		return fmt.Errorf("need -target, -src, or -programs (or -list)")
	}
	if (c.target != "" && c.src != "") || (c.programs != "" && (c.target != "" || c.src != "")) {
		return fmt.Errorf("-target, -src, and -programs are mutually exclusive")
	}
	if c.programs != "" && c.san != "none" {
		return fmt.Errorf("-san applies to the fuzzing binary; a -programs campaign has none")
	}
	if c.execs < 1 {
		return fmt.Errorf("-execs %d: the execution budget must be at least 1", c.execs)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: a campaign needs at least one fuzzer instance", c.shards)
	}
	if c.jobs < 1 {
		return fmt.Errorf("-jobs %d: the cross-check needs at least one worker", c.jobs)
	}
	if c.sync < 0 {
		return fmt.Errorf("-sync %d: the barrier interval cannot be negative", c.sync)
	}
	if c.syncSet && c.sync == 0 && c.shards > 1 {
		return fmt.Errorf("-sync 0 would disable the synchronization barriers a sharded pool requires; omit -sync for the default (budget/8)")
	}
	if c.statsEvery < 0 {
		return fmt.Errorf("-stats-every %d: the snapshot interval cannot be negative", c.statsEvery)
	}
	if c.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every %d: the checkpoint interval cannot be negative", c.ckptEvery)
	}
	if c.ckptEvery > 0 && c.checkpoint == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint DIR")
	}
	if c.resume && c.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint DIR to resume from")
	}
	switch c.san {
	case "none", "asan", "ubsan", "msan":
	default:
		return fmt.Errorf("-san %q: want none, asan, ubsan, or msan", c.san)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("compdiff-fuzz: ")
	targetName := flag.String("target", "", "built-in target to fuzz")
	srcPath := flag.String("src", "", "MiniC source file to fuzz")
	programsDir := flag.String("programs", "", "compile-oracle campaign over every *.mc in DIR")
	execs := flag.Int64("execs", 50_000, "execution budget (per shard)")
	seed := flag.Int64("seed", 1, "fuzzer RNG seed")
	shards := flag.Int("shards", 1, "parallel fuzzer instances (AFL -M/-S style)")
	jobs := flag.Int("jobs", 1, "worker goroutines per differential cross-check")
	syncEvery := flag.Int64("sync", 0, "executions between shard sync barriers (0 = budget/8)")
	sanFlag := flag.String("san", "none", "sanitizer on the fuzz binary: none|asan|ubsan|msan")
	diffdir := flag.String("diffdir", "", "persist diverging inputs")
	statsDir := flag.String("stats", "", "record telemetry snapshots to DIR/plot.jsonl")
	statsEvery := flag.Int64("stats-every", 0, "snapshot every N generated inputs (0 = final only)")
	ckptDir := flag.String("checkpoint", "", "write crash-safe campaign snapshots under DIR")
	ckptEvery := flag.Int64("checkpoint-every", 0, "sync barriers between snapshots (0 = every barrier)")
	resume := flag.Bool("resume", false, "continue the campaign checkpointed in -checkpoint DIR")
	list := flag.Bool("list", false, "list built-in targets")
	var seeds seedList
	flag.Var(&seeds, "seedfile", "seed input file (repeatable)")
	flag.Parse()

	cfg := cliConfig{
		target:     *targetName,
		src:        *srcPath,
		programs:   *programsDir,
		execs:      *execs,
		shards:     *shards,
		jobs:       *jobs,
		sync:       *syncEvery,
		san:        *sanFlag,
		statsEvery: *statsEvery,
		checkpoint: *ckptDir,
		ckptEvery:  *ckptEvery,
		resume:     *resume,
		list:       *list,
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sync" {
			cfg.syncSet = true
		}
	})
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "compdiff-fuzz: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, tg := range targets.All() {
			fmt.Printf("%-14s %-16s %d planted bugs\n", tg.Name, tg.InputType, len(tg.Bugs))
		}
		return
	}

	if *programsDir != "" {
		runProgramsCampaign(*programsDir, compdiff.CompileCampaignOptions{
			Shards:          *shards,
			SyncEvery:       int(*syncEvery),
			Parallelism:     *jobs,
			StatsDir:        *statsDir,
			CheckpointDir:   *ckptDir,
			CheckpointEvery: *ckptEvery,
		}, *resume)
		return
	}

	var src string
	var corpus [][]byte
	var normalizer *compdiff.Normalizer
	switch {
	case *targetName != "":
		tg := targets.ByName(*targetName)
		if tg == nil {
			log.Fatalf("unknown target %q (use -list)", *targetName)
		}
		src = tg.Src
		corpus = tg.Seeds
		if tg.NeedsNormalizer {
			normalizer = compdiff.DefaultNormalizer()
		}
	default:
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
		corpus = seeds
	}

	san := compdiff.SanNone
	switch *sanFlag {
	case "asan":
		san = compdiff.SanASan
	case "ubsan":
		san = compdiff.SanUBSan
	case "msan":
		san = compdiff.SanMSan
	}

	opts := compdiff.CampaignOptions{
		FuzzSeed:        *seed,
		Sanitizer:       san,
		Normalizer:      normalizer,
		DiffDir:         *diffdir,
		Shards:          *shards,
		SyncEvery:       *syncEvery,
		Parallelism:     *jobs,
		StatsDir:        *statsDir,
		StatsEvery:      *statsEvery,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
	}

	// Checkpointing runs through the pool even single-sharded: the
	// pool's synchronization barriers are the snapshot points.
	if *shards > 1 || *ckptDir != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		pool, err := buildPool(src, corpus, opts, *resume)
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		stats := pool.Run(ctx, *execs)

		fmt.Printf("shards         : %d\n", stats.Shards)
		fmt.Printf("executions     : %d (all shards)\n", stats.Execs)
		if *ckptDir != "" {
			fmt.Printf("spent budget   : %d execs per shard (across resumes)\n", stats.SpentExecs)
		}
		fmt.Printf("unique crashes : %d\n", stats.UniqueCrashes)
		fmt.Printf("diff inputs    : %d (%d unique discrepancies, %d triage buckets)\n",
			stats.TotalDiffInputs, stats.UniqueDiffs, stats.UniqueBuckets)
		fmt.Printf("diff execs     : %d across %d implementations\n",
			stats.DiffExecs, len(pool.ImplNames()))
		fmt.Printf("persist errors : %d\n", stats.PersistErrors)
		for si, fs := range stats.ShardStats {
			role := "S"
			if si == 0 {
				role = "M"
			}
			status := ""
			if stats.ShardErrors[si] != nil {
				status = "  [retired: panic]"
			}
			fmt.Printf("  shard %d (-%s): %d execs, %d seeds%s\n", si, role, fs.Execs, fs.Seeds, status)
		}
		printTelemetry(pool.ImplSummaries(), pool.Snapshots())
		fmt.Println()
		// One report per triage bucket, not per raw signature: findings
		// whose fingerprints coincide are the same underlying bug.
		for _, b := range pool.Buckets() {
			fmt.Println(b.Report(pool.ImplNames()))
		}
		for _, c := range pool.Crashes() {
			fmt.Printf("crash %s on input %q\n", c.Result.Exit, c.Input)
			if c.Result.San != nil {
				fmt.Printf("  %s\n", c.Result.San)
			}
		}
		return
	}

	campaign, err := compdiff.NewCampaign(src, corpus, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer campaign.Close()
	stats := campaign.Run(*execs)

	fmt.Printf("executions     : %d\n", stats.Execs)
	fmt.Printf("corpus         : %d seeds\n", stats.Seeds)
	fmt.Printf("unique crashes : %d\n", stats.UniqueCrashes)
	fmt.Printf("diff inputs    : %d (%d unique discrepancies, %d triage buckets)\n",
		campaign.TotalDiffInputs(), len(campaign.Diffs()), len(campaign.Buckets()))
	fmt.Printf("diff execs     : %d across %d implementations\n",
		campaign.DiffExecs, len(campaign.ImplNames()))
	fmt.Printf("persist errors : %d\n", campaign.PersistErrors())
	printTelemetry(campaign.ImplSummaries(), campaign.Snapshots())
	fmt.Println()

	// One report per triage bucket, not per raw signature: findings
	// whose fingerprints coincide are the same underlying bug.
	for _, b := range campaign.Buckets() {
		fmt.Println(b.Report(campaign.ImplNames()))
	}
	for _, c := range campaign.Crashes() {
		fmt.Printf("crash %s on input %q\n", c.Result.Exit, c.Input)
		if c.Result.San != nil {
			fmt.Printf("  %s\n", c.Result.San)
		}
	}
}

// runProgramsCampaign is the -programs mode: a compile-oracle campaign
// over a directory of MiniC programs. The corpus is read in sorted
// filename order, so the campaign (and its checkpoint hash) is stable
// across runs.
func runProgramsCampaign(dir string, opts compdiff.CompileCampaignOptions, resume bool) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.mc"))
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) == 0 {
		log.Fatalf("no *.mc programs in %s", dir)
	}
	sort.Strings(paths)
	corpus := make([]string, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		corpus[i] = string(data)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	pool, err := buildCompilePool(corpus, opts, resume)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	stats := pool.Run(ctx)

	fmt.Printf("shards         : %d\n", stats.Shards)
	fmt.Printf("programs       : %d of %d processed (%d accepted everywhere, %d uniform rejects)\n",
		stats.Programs, stats.CorpusLen, stats.Accepted, stats.FrontendRejects)
	fmt.Printf("findings       : %d (%d triage buckets)\n", stats.Findings, stats.UniqueBuckets)
	fmt.Printf("compile classes: %d accept/reject divergences, %d ICEs, %d diagnostic mismatches, %d runtime\n",
		stats.CompileDivergences, stats.ICEs, stats.DiagMismatches, stats.RuntimeBuckets)
	for si, serr := range stats.ShardErrors {
		if serr != nil {
			fmt.Printf("  shard %d retired: %v\n", si, serr)
		}
	}
	fmt.Println()
	for _, b := range pool.BucketStore().Buckets() {
		fmt.Println(b.Report(pool.ImplNames()))
	}
}

// buildCompilePool mirrors buildPool's -resume behavior for the
// compile-oracle campaign.
func buildCompilePool(corpus []string, opts compdiff.CompileCampaignOptions, resume bool) (*compdiff.CompileCampaign, error) {
	if !resume {
		return compdiff.NewCompileCampaign(corpus, opts)
	}
	pool, err := compdiff.ResumeCompileCampaign(corpus, opts)
	switch {
	case err == nil:
		st := pool.Stats()
		log.Printf("resumed from checkpoint %s (seq %d, %d of %d programs already processed)",
			opts.CheckpointDir, pool.CheckpointSeq(), st.Cursor, st.CorpusLen)
		return pool, nil
	case errors.Is(err, compdiff.ErrNoCheckpoint):
		log.Printf("no checkpoint in %s; starting fresh", opts.CheckpointDir)
		return compdiff.NewCompileCampaign(corpus, opts)
	case errors.Is(err, compdiff.ErrCheckpointMismatch):
		fmt.Fprintf(os.Stderr, "compdiff-fuzz: %v\n", err)
		os.Exit(2)
		return nil, nil // unreachable
	default:
		return nil, err
	}
}

// buildPool constructs the campaign pool, honoring -resume: a missing
// checkpoint falls back to a fresh start (so the same command line
// works for the first run and every restart), an options mismatch is a
// user error (exit 2), and a corrupt checkpoint is fatal (exit 1) —
// never a panic, and never a silent fresh start that would clobber it.
func buildPool(src string, corpus [][]byte, opts compdiff.CampaignOptions, resume bool) (*compdiff.CampaignPool, error) {
	if !resume {
		return compdiff.NewCampaignPool(src, corpus, opts)
	}
	pool, err := compdiff.ResumeCampaignPool(src, corpus, opts)
	switch {
	case err == nil:
		log.Printf("resumed from checkpoint %s (seq %d, %d execs per shard already spent)",
			opts.CheckpointDir, pool.CheckpointSeq(), pool.SpentExecs())
		return pool, nil
	case errors.Is(err, compdiff.ErrNoCheckpoint):
		log.Printf("no checkpoint in %s; starting fresh", opts.CheckpointDir)
		return compdiff.NewCampaignPool(src, corpus, opts)
	case errors.Is(err, compdiff.ErrCheckpointMismatch):
		fmt.Fprintf(os.Stderr, "compdiff-fuzz: %v\n", err)
		os.Exit(2)
		return nil, nil // unreachable
	default:
		return nil, err
	}
}

// printTelemetry renders the per-implementation summary table and the
// campaign throughput line. No-op when stats were not requested.
func printTelemetry(impls []compdiff.ImplSummary, snaps []compdiff.CampaignSnapshot) {
	if len(impls) == 0 || len(snaps) == 0 {
		return
	}
	final := snaps[len(snaps)-1]
	fmt.Printf("throughput     : %.1f execs/sec over %s (%d snapshots)\n",
		final.ExecsPerSec, (time.Duration(final.ElapsedMs) * time.Millisecond).Round(time.Millisecond),
		len(snaps))
	fmt.Printf("outcomes       : %d ok, %d crash, %d step-limit-hang, %d diff\n",
		final.OK, final.Crash, final.StepLimitHang, final.Diff)

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "implementation\truns\tok\tcrash\thang\tmean\tp50\tp99")
	for _, s := range impls {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			s.Name, s.Runs(),
			s.Outcomes[compdiff.ClassOK],
			s.Outcomes[compdiff.ClassCrash],
			s.Outcomes[compdiff.ClassStepLimitHang],
			time.Duration(s.Latency.Mean()).Round(time.Microsecond),
			time.Duration(s.Latency.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Latency.Quantile(0.99)).Round(time.Microsecond))
	}
	tw.Flush()
}
