// Command compdiff-fuzz runs a CompDiff-AFL++ campaign (paper §3.2,
// Algorithm 1) against a MiniC program or one of the built-in
// real-world targets.
//
// Usage:
//
//	compdiff-fuzz -target tcpdump -execs 50000
//	compdiff-fuzz -src prog.mc -seedfile s1 -seedfile s2 -execs 100000
//
// Flags:
//
//	-target NAME   fuzz a built-in target (see -list)
//	-src FILE      fuzz a MiniC source file
//	-execs N       execution budget on the instrumented binary
//	               (per shard when -shards > 1)
//	-seed N        fuzzer RNG seed
//	-shards N      parallel fuzzer instances, AFL -M/-S style
//	-jobs N        worker goroutines per differential cross-check
//	-sync N        executions between shard synchronization barriers
//	-san MODE      sanitizer on the fuzzing binary: none|asan|ubsan|msan
//	-diffdir DIR   persist diverging inputs under DIR/diffs/
//	-list          list built-in targets and exit
//
// With -shards > 1, SIGINT/SIGTERM cancels the campaign gracefully at
// the next synchronization barrier and prints what was found so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"compdiff"
	"compdiff/internal/targets"
)

type seedList [][]byte

func (s *seedList) String() string { return fmt.Sprintf("%d seeds", len(*s)) }
func (s *seedList) Set(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	*s = append(*s, data)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("compdiff-fuzz: ")
	targetName := flag.String("target", "", "built-in target to fuzz")
	srcPath := flag.String("src", "", "MiniC source file to fuzz")
	execs := flag.Int64("execs", 50_000, "execution budget (per shard)")
	seed := flag.Int64("seed", 1, "fuzzer RNG seed")
	shards := flag.Int("shards", 1, "parallel fuzzer instances (AFL -M/-S style)")
	jobs := flag.Int("jobs", 1, "worker goroutines per differential cross-check")
	syncEvery := flag.Int64("sync", 0, "executions between shard sync barriers (0 = budget/8)")
	sanFlag := flag.String("san", "none", "sanitizer on the fuzz binary: none|asan|ubsan|msan")
	diffdir := flag.String("diffdir", "", "persist diverging inputs")
	list := flag.Bool("list", false, "list built-in targets")
	var seeds seedList
	flag.Var(&seeds, "seedfile", "seed input file (repeatable)")
	flag.Parse()

	if *list {
		for _, tg := range targets.All() {
			fmt.Printf("%-14s %-16s %d planted bugs\n", tg.Name, tg.InputType, len(tg.Bugs))
		}
		return
	}

	var src string
	var corpus [][]byte
	var normalizer *compdiff.Normalizer
	switch {
	case *targetName != "":
		tg := targets.ByName(*targetName)
		if tg == nil {
			log.Fatalf("unknown target %q (use -list)", *targetName)
		}
		src = tg.Src
		corpus = tg.Seeds
		if tg.NeedsNormalizer {
			normalizer = compdiff.DefaultNormalizer()
		}
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
		corpus = seeds
	default:
		log.Fatal("need -target or -src (or -list)")
	}

	san := compdiff.SanNone
	switch *sanFlag {
	case "none":
	case "asan":
		san = compdiff.SanASan
	case "ubsan":
		san = compdiff.SanUBSan
	case "msan":
		san = compdiff.SanMSan
	default:
		log.Fatalf("unknown -san %q", *sanFlag)
	}

	opts := compdiff.CampaignOptions{
		FuzzSeed:    *seed,
		Sanitizer:   san,
		Normalizer:  normalizer,
		DiffDir:     *diffdir,
		Shards:      *shards,
		SyncEvery:   *syncEvery,
		Parallelism: *jobs,
	}

	if *shards > 1 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		pool, err := compdiff.NewCampaignPool(src, corpus, opts)
		if err != nil {
			log.Fatal(err)
		}
		stats := pool.Run(ctx, *execs)

		fmt.Printf("shards         : %d\n", stats.Shards)
		fmt.Printf("executions     : %d (all shards)\n", stats.Execs)
		fmt.Printf("unique crashes : %d\n", stats.UniqueCrashes)
		fmt.Printf("diff inputs    : %d (%d unique discrepancies)\n",
			stats.TotalDiffInputs, stats.UniqueDiffs)
		fmt.Printf("diff execs     : %d across %d implementations\n",
			stats.DiffExecs, len(pool.ImplNames()))
		for si, fs := range stats.ShardStats {
			role := "S"
			if si == 0 {
				role = "M"
			}
			status := ""
			if stats.ShardErrors[si] != nil {
				status = "  [retired: panic]"
			}
			fmt.Printf("  shard %d (-%s): %d execs, %d seeds%s\n", si, role, fs.Execs, fs.Seeds, status)
		}
		fmt.Println()
		for _, d := range pool.Diffs() {
			fmt.Println(d.Report(pool.ImplNames()))
		}
		for _, c := range pool.Crashes() {
			fmt.Printf("crash %s on input %q\n", c.Result.Exit, c.Input)
			if c.Result.San != nil {
				fmt.Printf("  %s\n", c.Result.San)
			}
		}
		return
	}

	campaign, err := compdiff.NewCampaign(src, corpus, opts)
	if err != nil {
		log.Fatal(err)
	}
	stats := campaign.Run(*execs)

	fmt.Printf("executions     : %d\n", stats.Execs)
	fmt.Printf("corpus         : %d seeds\n", stats.Seeds)
	fmt.Printf("unique crashes : %d\n", stats.UniqueCrashes)
	fmt.Printf("diff inputs    : %d (%d unique discrepancies)\n",
		campaign.TotalDiffInputs(), len(campaign.Diffs()))
	fmt.Printf("diff execs     : %d across %d implementations\n\n",
		campaign.DiffExecs, len(campaign.ImplNames()))

	for _, d := range campaign.Diffs() {
		fmt.Println(d.Report(campaign.ImplNames()))
	}
	for _, c := range campaign.Crashes() {
		fmt.Printf("crash %s on input %q\n", c.Result.Exit, c.Input)
		if c.Result.San != nil {
			fmt.Printf("  %s\n", c.Result.San)
		}
	}
}
