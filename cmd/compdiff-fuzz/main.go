// Command compdiff-fuzz runs a CompDiff-AFL++ campaign (paper §3.2,
// Algorithm 1) against a MiniC program or one of the built-in
// real-world targets — either as a single process or as a supervised
// farm of worker processes with an HTTP control plane.
//
// Usage:
//
//	compdiff-fuzz -target tcpdump -execs 50000
//	compdiff-fuzz -src prog.mc -seedfile s1 -seedfile s2 -execs 100000
//	compdiff-fuzz -evolve -pop 24 -generations 20 -stats out
//	compdiff-fuzz -serve :8080 -farm /tmp/farm -workers 4 -target tcpdump -execs-total 200000
//
// Flags:
//
//	-target NAME    fuzz a built-in target (see -list)
//	-src FILE       fuzz a MiniC source file
//	-programs DIR   compile-oracle campaign over every *.mc program in
//	                DIR: accept/reject divergences, internal compiler
//	                errors, and diagnostic mismatches become triage
//	                buckets; universally-accepted programs are
//	                cross-checked at runtime on the empty input
//	-evolve         evolutionary coverage-directed campaign: a
//	                population of generated programs is scored by
//	                optimizer-pass coverage, divergence proximity, and
//	                parsimony, then bred with unstable-code idiom
//	                mutations; findings land in the usual triage buckets
//	-pop N          population size (with -evolve; default 24)
//	-generations N  generations to evolve (with -evolve; default 20)
//	-execs N        execution budget on the instrumented binary
//	                (per shard when -shards > 1)
//	-execs-total N  cumulative per-shard budget across resumes: a
//	                resumed campaign runs only the remainder (needs
//	                -checkpoint)
//	-seed N         fuzzer RNG seed
//	-shards N       parallel fuzzer instances, AFL -M/-S style
//	-jobs N         worker goroutines per differential cross-check
//	-sync N         executions between shard synchronization barriers
//	-san MODE       sanitizer on the fuzzing binary: none|asan|ubsan|msan
//	-diffdir DIR    persist diverging inputs under DIR/diffs/
//	-stats DIR      record AFL-plot-style snapshots to DIR/plot.jsonl
//	                and print a per-implementation summary table
//	-stats-every N  snapshot every N generated inputs (single shard;
//	                sharded pools snapshot at every barrier)
//	-checkpoint DIR write a crash-safe campaign snapshot under DIR at
//	                every synchronization barrier
//	-checkpoint-every N
//	                barriers between snapshots (default 1)
//	-resume         continue the campaign checkpointed in -checkpoint DIR
//	                (falls back to a fresh start when DIR has none)
//	-heartbeat FILE atomically rewrite FILE with a status record at
//	                every barrier (needs -checkpoint; the supervisor
//	                uses it as the live progress watermark)
//	-serve ADDR     supervise a worker farm and serve the HTTP control
//	                plane on ADDR (GET /healthz /stats /plot /buckets
//	                /findings /events, POST /pause /resume /reshard)
//	-farm DIR       farm root directory (with -serve)
//	-workers N      worker processes to supervise (with -serve)
//	-list           list built-in targets and exit
//
// Exit codes: 0 on success, 2 for command-line misuse (bad flags,
// unknown -target, mutually exclusive modes, or -resume against a
// checkpoint written with different source/seeds/options), 1 for
// runtime failures (unreadable files, corrupt checkpoints, worker
// fleets that end with failed workers).
//
// With -shards > 1 or -checkpoint set, SIGINT/SIGTERM cancels the
// campaign gracefully at the next synchronization barrier, writes a
// final checkpoint (when enabled), and prints what was found so far.
// Under -serve the signal drains every worker the same way before the
// supervisor exits; kill -9 of a worker loses at most one barrier
// interval, which the restarted worker replays from its checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"compdiff"
	"compdiff/internal/checkpoint"
	"compdiff/internal/supervisor"
	"compdiff/internal/targets"
	"compdiff/internal/telemetry"
)

// seedList collects -seedfile flags, keeping both the contents (for
// in-process campaigns) and the paths (so -serve can hand the same
// corpus to worker processes by path).
type seedList struct {
	paths []string
	data  [][]byte
}

func (s *seedList) String() string { return fmt.Sprintf("%d seeds", len(s.data)) }
func (s *seedList) Set(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s.paths = append(s.paths, path)
	s.data = append(s.data, data)
	return nil
}

// usageError marks command-line misuse: realMain maps it to exit 2,
// every other error to exit 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// cliConfig holds every flag value that validation looks at. Keeping
// it a plain struct keeps validate a pure function the tests can
// drive without touching the flag package or os.Args.
type cliConfig struct {
	target      string
	src         string
	programs    string
	evolve      bool
	pop         int
	popSet      bool // -pop was given explicitly
	generations int
	gensSet     bool // -generations was given explicitly
	execs       int64
	execsTotal  int64
	seed        int64
	shards      int
	jobs        int
	batch       int
	sync        int64
	syncSet     bool // -sync was given explicitly
	san         string
	diffdir     string
	statsDir    string
	statsEvery  int64
	checkpoint  string
	ckptEvery   int64
	resume      bool
	heartbeat   string
	serve       string
	farm        string
	workers     int
	workersSet  bool // -workers was given explicitly
	list        bool
}

// validate rejects nonsensical flag combinations up front — before
// they reach the engine, where a zero shard count or a negative worker
// count would be silently reinterpreted rather than diagnosed.
func (c cliConfig) validate() error {
	if c.list {
		return nil
	}
	if c.serve != "" {
		if c.programs != "" {
			return fmt.Errorf("-serve supervises input-fuzzing workers; -programs campaigns run standalone")
		}
		if c.evolve {
			return fmt.Errorf("-serve supervises input-fuzzing workers; -evolve campaigns run standalone")
		}
		if c.target == "" && c.src == "" {
			return fmt.Errorf("-serve needs -target or -src for its workers")
		}
		if c.farm == "" {
			return fmt.Errorf("-serve needs -farm DIR to hold the worker subtrees")
		}
		if c.workers < 1 {
			return fmt.Errorf("-workers %d: a farm needs at least one worker", c.workers)
		}
		// Per-worker observability paths are derived from the farm
		// layout; explicit ones would make every worker fight over one
		// file.
		for flagName, v := range map[string]string{
			"-checkpoint": c.checkpoint, "-stats": c.statsDir,
			"-diffdir": c.diffdir, "-heartbeat": c.heartbeat,
		} {
			if v != "" {
				return fmt.Errorf("%s is per-worker under -serve; the farm layout derives it from -farm", flagName)
			}
		}
		if c.resume {
			return fmt.Errorf("-resume is implicit under -serve: workers always resume their own checkpoints")
		}
	} else {
		if c.farm != "" {
			return fmt.Errorf("-farm only makes sense with -serve")
		}
		if c.workersSet {
			return fmt.Errorf("-workers only makes sense with -serve")
		}
	}
	if c.target == "" && c.src == "" && c.programs == "" && !c.evolve {
		return fmt.Errorf("need -target, -src, -programs, or -evolve (or -list)")
	}
	if (c.target != "" && c.src != "") || (c.programs != "" && (c.target != "" || c.src != "")) {
		return fmt.Errorf("-target, -src, and -programs are mutually exclusive")
	}
	if c.evolve && (c.target != "" || c.src != "" || c.programs != "") {
		return fmt.Errorf("-evolve generates its own programs; it excludes -target, -src, and -programs")
	}
	if !c.evolve && (c.popSet || c.gensSet) {
		return fmt.Errorf("-pop and -generations only make sense with -evolve")
	}
	if c.evolve {
		if c.pop < 2 {
			return fmt.Errorf("-pop %d: an evolutionary population needs at least 2 genomes", c.pop)
		}
		if c.generations < 1 {
			return fmt.Errorf("-generations %d: an evolutionary campaign needs at least 1 generation", c.generations)
		}
	}
	if c.programs != "" && c.san != "none" {
		return fmt.Errorf("-san applies to the fuzzing binary; a -programs campaign has none")
	}
	if c.evolve && c.san != "none" {
		return fmt.Errorf("-san applies to the fuzzing binary; an -evolve campaign has none")
	}
	if c.execs < 1 {
		return fmt.Errorf("-execs %d: the execution budget must be at least 1", c.execs)
	}
	if c.execsTotal < 0 {
		return fmt.Errorf("-execs-total %d: the cumulative budget cannot be negative", c.execsTotal)
	}
	if c.execsTotal > 0 && c.programs != "" {
		return fmt.Errorf("-execs-total is an execution budget; -programs campaigns are bounded by the corpus")
	}
	if c.execsTotal > 0 && c.evolve {
		return fmt.Errorf("-execs-total is an execution budget; -evolve campaigns are bounded by -pop × -generations")
	}
	if c.execsTotal > 0 && c.checkpoint == "" && c.serve == "" {
		return fmt.Errorf("-execs-total needs -checkpoint: the cumulative budget is measured against the checkpointed watermark")
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: a campaign needs at least one fuzzer instance", c.shards)
	}
	if c.jobs < 1 {
		return fmt.Errorf("-jobs %d: the cross-check needs at least one worker", c.jobs)
	}
	if c.batch < 0 {
		return fmt.Errorf("-batch %d: the batch size cannot be negative (0 or 1 mean per-exec)", c.batch)
	}
	if c.sync < 0 {
		return fmt.Errorf("-sync %d: the barrier interval cannot be negative", c.sync)
	}
	if c.syncSet && c.sync == 0 && c.shards > 1 {
		return fmt.Errorf("-sync 0 would disable the synchronization barriers a sharded pool requires; omit -sync for the default (budget/8)")
	}
	if c.statsEvery < 0 {
		return fmt.Errorf("-stats-every %d: the snapshot interval cannot be negative", c.statsEvery)
	}
	if c.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every %d: the checkpoint interval cannot be negative", c.ckptEvery)
	}
	if c.ckptEvery > 0 && c.checkpoint == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint DIR")
	}
	if c.resume && c.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint DIR to resume from")
	}
	if c.heartbeat != "" && c.checkpoint == "" {
		return fmt.Errorf("-heartbeat needs -checkpoint: the heartbeat is the live watermark over the checkpointed one")
	}
	switch c.san {
	case "none", "asan", "ubsan", "msan":
	default:
		return fmt.Errorf("-san %q: want none, asan, ubsan, or msan", c.san)
	}
	return nil
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the whole program behind a single exit point: flag and
// usage errors exit 2, runtime errors exit 1, and — unlike the
// log.Fatal calls it replaces — every error path unwinds normally, so
// deferred cleanups (pool Close, telemetry flush) actually run.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compdiff-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targetName := fs.String("target", "", "built-in target to fuzz")
	srcPath := fs.String("src", "", "MiniC source file to fuzz")
	programsDir := fs.String("programs", "", "compile-oracle campaign over every *.mc in DIR")
	evolveMode := fs.Bool("evolve", false, "evolutionary coverage-directed campaign")
	pop := fs.Int("pop", 24, "population size (with -evolve)")
	generations := fs.Int("generations", 20, "generations to evolve (with -evolve)")
	execs := fs.Int64("execs", 50_000, "execution budget (per shard)")
	execsTotal := fs.Int64("execs-total", 0, "cumulative per-shard budget across resumes (needs -checkpoint)")
	seed := fs.Int64("seed", 1, "fuzzer RNG seed")
	shards := fs.Int("shards", 1, "parallel fuzzer instances (AFL -M/-S style)")
	jobs := fs.Int("jobs", 1, "worker goroutines per differential cross-check")
	batch := fs.Int("batch", 1, "inputs cross-checked per warm machine-set borrow (1 = per-exec)")
	syncEvery := fs.Int64("sync", 0, "executions between shard sync barriers (0 = budget/8)")
	sanFlag := fs.String("san", "none", "sanitizer on the fuzz binary: none|asan|ubsan|msan")
	diffdir := fs.String("diffdir", "", "persist diverging inputs")
	statsDir := fs.String("stats", "", "record telemetry snapshots to DIR/plot.jsonl")
	statsEvery := fs.Int64("stats-every", 0, "snapshot every N generated inputs (0 = final only)")
	ckptDir := fs.String("checkpoint", "", "write crash-safe campaign snapshots under DIR")
	ckptEvery := fs.Int64("checkpoint-every", 0, "sync barriers between snapshots (0 = every barrier)")
	resume := fs.Bool("resume", false, "continue the campaign checkpointed in -checkpoint DIR")
	heartbeat := fs.String("heartbeat", "", "atomically rewrite FILE with a status record at every barrier")
	serveAddr := fs.String("serve", "", "supervise a worker farm; serve the control plane on ADDR")
	farmDir := fs.String("farm", "", "farm root directory (with -serve)")
	workers := fs.Int("workers", 2, "worker processes to supervise (with -serve)")
	list := fs.Bool("list", false, "list built-in targets")
	var seeds seedList
	fs.Var(&seeds, "seedfile", "seed input file (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := cliConfig{
		target:      *targetName,
		src:         *srcPath,
		programs:    *programsDir,
		evolve:      *evolveMode,
		pop:         *pop,
		generations: *generations,
		execs:       *execs,
		execsTotal:  *execsTotal,
		seed:        *seed,
		shards:      *shards,
		jobs:        *jobs,
		batch:       *batch,
		sync:        *syncEvery,
		san:         *sanFlag,
		diffdir:     *diffdir,
		statsDir:    *statsDir,
		statsEvery:  *statsEvery,
		checkpoint:  *ckptDir,
		ckptEvery:   *ckptEvery,
		resume:      *resume,
		heartbeat:   *heartbeat,
		serve:       *serveAddr,
		farm:        *farmDir,
		workers:     *workers,
		list:        *list,
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sync":
			cfg.syncSet = true
		case "workers":
			cfg.workersSet = true
		case "pop":
			cfg.popSet = true
		case "generations":
			cfg.gensSet = true
		}
	})
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(stderr, "compdiff-fuzz: %v\n", err)
		return 2
	}

	if err := run(cfg, &seeds, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "compdiff-fuzz: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	return 0
}

// run dispatches to the selected mode. Every failure comes back as an
// error (usageError for misuse) — no exits, no Fatals.
func run(cfg cliConfig, seeds *seedList, stdout, stderr io.Writer) error {
	switch {
	case cfg.list:
		for _, tg := range targets.All() {
			fmt.Fprintf(stdout, "%-14s %-16s %d planted bugs\n", tg.Name, tg.InputType, len(tg.Bugs))
		}
		return nil
	case cfg.serve != "":
		return runServe(cfg, seeds, stdout, stderr)
	case cfg.programs != "":
		return runProgramsCampaign(cfg, stdout, stderr)
	case cfg.evolve:
		return runEvolveCampaign(cfg, stdout, stderr)
	default:
		return runFuzzCampaign(cfg, seeds, stdout, stderr)
	}
}

// loadFuzzInput resolves -target / -src into (source, corpus,
// normalizer). An unknown target name is command-line misuse; an
// unreadable source file is a runtime failure.
func loadFuzzInput(cfg cliConfig, seeds *seedList) (string, [][]byte, *compdiff.Normalizer, error) {
	if cfg.target != "" {
		tg := targets.ByName(cfg.target)
		if tg == nil {
			return "", nil, nil, usagef("unknown target %q (use -list)", cfg.target)
		}
		var norm *compdiff.Normalizer
		if tg.NeedsNormalizer {
			norm = compdiff.DefaultNormalizer()
		}
		return tg.Src, tg.Seeds, norm, nil
	}
	data, err := os.ReadFile(cfg.src)
	if err != nil {
		return "", nil, nil, err
	}
	return string(data), seeds.data, nil, nil
}

func sanMode(name string) compdiff.SanMode {
	switch name {
	case "asan":
		return compdiff.SanASan
	case "ubsan":
		return compdiff.SanUBSan
	case "msan":
		return compdiff.SanMSan
	}
	return compdiff.SanNone
}

// runFuzzCampaign is the classic single-process mode: a sharded pool
// when -shards > 1 or -checkpoint is set, a plain campaign otherwise.
func runFuzzCampaign(cfg cliConfig, seeds *seedList, stdout, stderr io.Writer) error {
	src, corpus, normalizer, err := loadFuzzInput(cfg, seeds)
	if err != nil {
		return err
	}
	opts := compdiff.CampaignOptions{
		FuzzSeed:        cfg.seed,
		Sanitizer:       sanMode(cfg.san),
		Normalizer:      normalizer,
		DiffDir:         cfg.diffdir,
		Shards:          cfg.shards,
		SyncEvery:       cfg.sync,
		Parallelism:     cfg.jobs,
		BatchSize:       cfg.batch,
		StatsDir:        cfg.statsDir,
		StatsEvery:      cfg.statsEvery,
		CheckpointDir:   cfg.checkpoint,
		CheckpointEvery: cfg.ckptEvery,
	}
	if cfg.heartbeat != "" {
		opts.BarrierHook = heartbeatHook(cfg.heartbeat)
	}

	// Checkpointing runs through the pool even single-sharded: the
	// pool's synchronization barriers are the snapshot points.
	if cfg.shards > 1 || cfg.checkpoint != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		pool, err := buildPool(src, corpus, opts, cfg.resume, stderr)
		if err != nil {
			return err
		}
		defer pool.Close()

		budget := cfg.execs
		if cfg.execsTotal > 0 {
			// Cumulative budget: spend only what the checkpointed
			// watermark has not already covered. A resumed-and-complete
			// campaign runs nothing and just reprints its findings.
			budget = cfg.execsTotal - pool.SpentExecs()
		}
		var stats compdiff.PoolStats
		if budget > 0 {
			stats = pool.Run(ctx, budget)
		} else {
			stats = pool.Stats()
			fmt.Fprintf(stderr, "compdiff-fuzz: budget already spent (%d of %d execs per shard); reporting checkpointed findings\n",
				pool.SpentExecs(), cfg.execsTotal)
		}

		printPoolStats(stdout, pool, stats, cfg.checkpoint != "")
		return nil
	}

	campaign, err := compdiff.NewCampaign(src, corpus, opts)
	if err != nil {
		return err
	}
	defer campaign.Close()
	stats := campaign.Run(cfg.execs)

	fmt.Fprintf(stdout, "executions     : %d\n", stats.Execs)
	fmt.Fprintf(stdout, "corpus         : %d seeds\n", stats.Seeds)
	fmt.Fprintf(stdout, "unique crashes : %d\n", stats.UniqueCrashes)
	fmt.Fprintf(stdout, "diff inputs    : %d (%d unique discrepancies, %d triage buckets)\n",
		campaign.TotalDiffInputs(), len(campaign.Diffs()), len(campaign.Buckets()))
	fmt.Fprintf(stdout, "diff execs     : %d across %d implementations\n",
		campaign.DiffExecs, len(campaign.ImplNames()))
	fmt.Fprintf(stdout, "persist errors : %d\n", campaign.PersistErrors())
	printTelemetry(stdout, campaign.ImplSummaries(), campaign.Snapshots())
	fmt.Fprintln(stdout)

	// One report per triage bucket, not per raw signature: findings
	// whose fingerprints coincide are the same underlying bug.
	for _, b := range campaign.Buckets() {
		fmt.Fprintln(stdout, b.Report(campaign.ImplNames()))
	}
	for _, c := range campaign.Crashes() {
		fmt.Fprintf(stdout, "crash %s on input %q\n", c.Result.Exit, c.Input)
		if c.Result.San != nil {
			fmt.Fprintf(stdout, "  %s\n", c.Result.San)
		}
	}
	return nil
}

// heartbeatHook adapts barrier stats into the atomic heartbeat file
// the supervisor polls between checkpoints.
func heartbeatHook(path string) func(compdiff.PoolStats) {
	var seq int64
	return func(st compdiff.PoolStats) {
		seq++
		queue := 0
		retired := 0
		for _, fs := range st.ShardStats {
			queue += fs.Seeds
		}
		for _, err := range st.ShardErrors {
			if err != nil {
				retired++
			}
		}
		// Best-effort by design: a failed heartbeat write must not take
		// down the campaign the heartbeat merely observes.
		_ = telemetry.WriteHeartbeat(path, telemetry.Heartbeat{
			Pid: os.Getpid(), UnixMs: time.Now().UnixMilli(), Seq: seq,
			SpentExecs: st.SpentExecs, Execs: st.Execs, DiffExecs: st.DiffExecs,
			Queue: queue, UniqueDiffs: st.UniqueDiffs, TotalDiffInputs: st.TotalDiffInputs,
			UniqueBuckets: st.UniqueBuckets, UniqueCrashes: st.UniqueCrashes,
			PersistErrors: st.PersistErrors, Shards: st.Shards, RetiredShards: retired,
		})
	}
}

// printPoolStats renders the sharded-campaign summary and reports.
func printPoolStats(stdout io.Writer, pool *compdiff.CampaignPool, stats compdiff.PoolStats, ckpt bool) {
	fmt.Fprintf(stdout, "shards         : %d\n", stats.Shards)
	fmt.Fprintf(stdout, "executions     : %d (all shards)\n", stats.Execs)
	if ckpt {
		fmt.Fprintf(stdout, "spent budget   : %d execs per shard (across resumes)\n", stats.SpentExecs)
	}
	fmt.Fprintf(stdout, "unique crashes : %d\n", stats.UniqueCrashes)
	fmt.Fprintf(stdout, "diff inputs    : %d (%d unique discrepancies, %d triage buckets)\n",
		stats.TotalDiffInputs, stats.UniqueDiffs, stats.UniqueBuckets)
	fmt.Fprintf(stdout, "diff execs     : %d across %d implementations\n",
		stats.DiffExecs, len(pool.ImplNames()))
	fmt.Fprintf(stdout, "persist errors : %d\n", stats.PersistErrors)
	for si, fs := range stats.ShardStats {
		role := "S"
		if si == 0 {
			role = "M"
		}
		status := ""
		if stats.ShardErrors[si] != nil {
			status = "  [retired: panic]"
		}
		fmt.Fprintf(stdout, "  shard %d (-%s): %d execs, %d seeds%s\n", si, role, fs.Execs, fs.Seeds, status)
	}
	printTelemetry(stdout, pool.ImplSummaries(), pool.Snapshots())
	fmt.Fprintln(stdout)
	// One report per triage bucket, not per raw signature: findings
	// whose fingerprints coincide are the same underlying bug.
	for _, b := range pool.Buckets() {
		fmt.Fprintln(stdout, b.Report(pool.ImplNames()))
	}
	for _, c := range pool.Crashes() {
		fmt.Fprintf(stdout, "crash %s on input %q\n", c.Result.Exit, c.Input)
		if c.Result.San != nil {
			fmt.Fprintf(stdout, "  %s\n", c.Result.San)
		}
	}
}

// runServe is the farm mode: supervise -workers worker processes
// (each this same binary in single-process checkpointed mode) under
// -farm, and serve the HTTP control plane on -serve until the fleet
// completes its budget or a signal drains it.
func runServe(cfg cliConfig, seeds *seedList, stdout, stderr io.Writer) error {
	// Resolve the inputs now: an unknown target or unreadable source
	// should fail the farm up front, not crash-loop every worker.
	if _, _, _, err := loadFuzzInput(cfg, seeds); err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("cannot locate own binary for worker re-exec: %w", err)
	}
	total := cfg.execsTotal
	if total == 0 {
		total = cfg.execs
	}

	command := func(index int, dirs checkpoint.WorkerDirs) *exec.Cmd {
		args := []string{
			"-execs-total", fmt.Sprint(total),
			"-seed", fmt.Sprint(supervisor.WorkerSeed(cfg.seed, index)),
			"-shards", fmt.Sprint(cfg.shards),
			"-jobs", fmt.Sprint(cfg.jobs),
			"-checkpoint", dirs.Checkpoint,
			"-stats", dirs.Stats,
			"-diffdir", dirs.Diff,
			"-heartbeat", dirs.Heartbeat,
			"-resume",
		}
		if cfg.syncSet {
			args = append(args, "-sync", fmt.Sprint(cfg.sync))
		}
		if cfg.ckptEvery > 0 {
			args = append(args, "-checkpoint-every", fmt.Sprint(cfg.ckptEvery))
		}
		if cfg.san != "none" {
			args = append(args, "-san", cfg.san)
		}
		if cfg.target != "" {
			args = append(args, "-target", cfg.target)
		} else {
			args = append(args, "-src", cfg.src)
			for _, p := range seeds.paths {
				args = append(args, "-seedfile", p)
			}
		}
		return exec.Command(exe, args...)
	}

	sup, err := supervisor.New(supervisor.Config{
		Farm: cfg.farm, Workers: cfg.workers, TotalExecs: total, Command: command,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.serve)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: sup.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	if err := sup.Start(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "farm %s: %d workers, %d execs per shard each; control plane on http://%s\n",
		cfg.farm, cfg.workers, total, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	signaled := false
loop:
	for {
		select {
		case <-ctx.Done():
			signaled = true
			fmt.Fprintln(stderr, "compdiff-fuzz: signal received; draining workers at their barriers")
			break loop
		case <-ticker.C:
			if sup.Paused() {
				continue // a paused farm idles until /resume
			}
			st := sup.Status()
			terminal := len(st) > 0
			for _, ws := range st {
				if ws.State != supervisor.StateDone && ws.State != supervisor.StateFailed {
					terminal = false
					break
				}
			}
			if terminal {
				break loop
			}
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	stopErr := sup.Stop(drainCtx)

	fs := sup.Stats()
	fmt.Fprintf(stdout, "farm spent     : %d execs per shard across %d workers\n", fs.SpentExecs, len(fs.Workers))
	fmt.Fprintf(stdout, "merged         : %d execs, %d diff inputs, %d bucket inputs\n",
		fs.Merged.Execs, fs.TotalDiffInputs, fs.BucketTotal)
	fmt.Fprintf(stdout, "deduplicated   : %d unique signatures, %d unique buckets farm-wide\n",
		fs.UniqueSignatures, fs.UniqueBuckets)
	failed := 0
	for _, ws := range fs.Workers {
		fmt.Fprintf(stdout, "  worker %d: %s, %d execs spent, %d restarts\n",
			ws.Index, ws.State, ws.SpentExecs, ws.Restarts)
		if ws.State == supervisor.StateFailed {
			failed++
		}
	}
	if stopErr != nil {
		return stopErr
	}
	if failed > 0 && !signaled {
		return fmt.Errorf("%d worker(s) abandoned after exceeding the restart budget", failed)
	}
	return nil
}

// runProgramsCampaign is the -programs mode: a compile-oracle campaign
// over a directory of MiniC programs. The corpus is read in sorted
// filename order, so the campaign (and its checkpoint hash) is stable
// across runs.
func runProgramsCampaign(cfg cliConfig, stdout, stderr io.Writer) error {
	paths, err := filepath.Glob(filepath.Join(cfg.programs, "*.mc"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.mc programs in %s", cfg.programs)
	}
	sort.Strings(paths)
	corpus := make([]string, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		corpus[i] = string(data)
	}

	opts := compdiff.CompileCampaignOptions{
		Shards:          cfg.shards,
		SyncEvery:       int(cfg.sync),
		Parallelism:     cfg.jobs,
		StatsDir:        cfg.statsDir,
		CheckpointDir:   cfg.checkpoint,
		CheckpointEvery: cfg.ckptEvery,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	pool, err := buildCompilePool(corpus, opts, cfg.resume, stderr)
	if err != nil {
		return err
	}
	defer pool.Close()
	stats := pool.Run(ctx)

	fmt.Fprintf(stdout, "shards         : %d\n", stats.Shards)
	fmt.Fprintf(stdout, "programs       : %d of %d processed (%d accepted everywhere, %d uniform rejects)\n",
		stats.Programs, stats.CorpusLen, stats.Accepted, stats.FrontendRejects)
	fmt.Fprintf(stdout, "findings       : %d (%d triage buckets)\n", stats.Findings, stats.UniqueBuckets)
	cs := pool.CacheStats()
	fmt.Fprintf(stdout, "compile cache  : %d hits, %d misses, %d evictions (%d resident, %d bytes)\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.Bytes)
	fmt.Fprintf(stdout, "compile classes: %d accept/reject divergences, %d ICEs, %d diagnostic mismatches, %d runtime\n",
		stats.CompileDivergences, stats.ICEs, stats.DiagMismatches, stats.RuntimeBuckets)
	for si, serr := range stats.ShardErrors {
		if serr != nil {
			fmt.Fprintf(stdout, "  shard %d retired: %v\n", si, serr)
		}
	}
	fmt.Fprintln(stdout)
	for _, b := range pool.BucketStore().Buckets() {
		fmt.Fprintln(stdout, b.Report(pool.ImplNames()))
	}
	return nil
}

// buildCompilePool mirrors buildPool's -resume behavior for the
// compile-oracle campaign.
func buildCompilePool(corpus []string, opts compdiff.CompileCampaignOptions, resume bool, stderr io.Writer) (*compdiff.CompileCampaign, error) {
	if !resume {
		return compdiff.NewCompileCampaign(corpus, opts)
	}
	pool, err := compdiff.ResumeCompileCampaign(corpus, opts)
	switch {
	case err == nil:
		st := pool.Stats()
		fmt.Fprintf(stderr, "compdiff-fuzz: resumed from checkpoint %s (seq %d, %d of %d programs already processed)\n",
			opts.CheckpointDir, pool.CheckpointSeq(), st.Cursor, st.CorpusLen)
		return pool, nil
	case errors.Is(err, compdiff.ErrNoCheckpoint):
		fmt.Fprintf(stderr, "compdiff-fuzz: no checkpoint in %s; starting fresh\n", opts.CheckpointDir)
		return compdiff.NewCompileCampaign(corpus, opts)
	case errors.Is(err, compdiff.ErrCheckpointMismatch):
		return nil, usageError{err}
	default:
		return nil, err
	}
}

// runEvolveCampaign is the -evolve mode: an evolutionary
// coverage-directed campaign. No corpus is read — the founder
// population is generated from -seed and everything after that is
// bred under the composite fitness; the program budget is
// -pop × -generations genome evaluations.
func runEvolveCampaign(cfg cliConfig, stdout, stderr io.Writer) error {
	opts := compdiff.EvolveCampaignOptions{
		Pop:             cfg.pop,
		Generations:     cfg.generations,
		Seed:            cfg.seed,
		Shards:          cfg.shards,
		Parallelism:     cfg.jobs,
		StatsDir:        cfg.statsDir,
		CheckpointDir:   cfg.checkpoint,
		CheckpointEvery: cfg.ckptEvery,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	pool, err := buildEvolvePool(opts, cfg.resume, stderr)
	if err != nil {
		return err
	}
	defer pool.Close()
	stats := pool.Run(ctx)

	fmt.Fprintf(stdout, "shards         : %d\n", stats.Shards)
	fmt.Fprintf(stdout, "generations    : %d of %d evaluated (population %d)\n",
		stats.Generation, stats.Generations, stats.Pop)
	fmt.Fprintf(stdout, "programs       : %d genome evaluations (%d front-end/uniform rejects)\n",
		stats.Programs, stats.FrontendRejects)
	fmt.Fprintf(stdout, "pass coverage  : %d (implementation, pass) pairs fired\n", stats.PassCoverage)
	fmt.Fprintf(stdout, "fitness        : best %.1f, mean %.1f (last generation)\n",
		stats.BestFitness, stats.MeanFitness)
	fmt.Fprintf(stdout, "findings       : %d (%d triage buckets)\n", stats.Findings, stats.UniqueBuckets)
	cs := pool.CacheStats()
	fmt.Fprintf(stdout, "compile cache  : %d hits, %d misses, %d evictions (%d resident, %d bytes)\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.Bytes)
	fmt.Fprintf(stdout, "finding classes: %d accept/reject divergences, %d ICEs, %d diagnostic mismatches, %d runtime\n",
		stats.CompileDivergences, stats.ICEs, stats.DiagMismatches, stats.RuntimeBuckets)
	for si, serr := range stats.ShardErrors {
		if serr != nil {
			fmt.Fprintf(stdout, "  shard %d retired: %v\n", si, serr)
		}
	}
	fmt.Fprintln(stdout)
	for _, b := range pool.BucketStore().Buckets() {
		fmt.Fprintln(stdout, b.Report(pool.ImplNames()))
	}
	return nil
}

// buildEvolvePool mirrors buildPool's -resume behavior for the
// evolutionary campaign.
func buildEvolvePool(opts compdiff.EvolveCampaignOptions, resume bool, stderr io.Writer) (*compdiff.EvolveCampaign, error) {
	if !resume {
		return compdiff.NewEvolveCampaign(opts)
	}
	pool, err := compdiff.ResumeEvolveCampaign(opts)
	switch {
	case err == nil:
		st := pool.Stats()
		fmt.Fprintf(stderr, "compdiff-fuzz: resumed from checkpoint %s (seq %d, generation %d of %d already evaluated)\n",
			opts.CheckpointDir, pool.CheckpointSeq(), st.Generation, st.Generations)
		return pool, nil
	case errors.Is(err, compdiff.ErrNoCheckpoint):
		fmt.Fprintf(stderr, "compdiff-fuzz: no checkpoint in %s; starting fresh\n", opts.CheckpointDir)
		return compdiff.NewEvolveCampaign(opts)
	case errors.Is(err, compdiff.ErrCheckpointMismatch):
		return nil, usageError{err}
	default:
		return nil, err
	}
}

// buildPool constructs the campaign pool, honoring -resume: a missing
// checkpoint falls back to a fresh start (so the same command line
// works for the first run and every restart), an options mismatch is a
// user error (exit 2), and a corrupt checkpoint is fatal (exit 1) —
// never a panic, and never a silent fresh start that would clobber it.
func buildPool(src string, corpus [][]byte, opts compdiff.CampaignOptions, resume bool, stderr io.Writer) (*compdiff.CampaignPool, error) {
	if !resume {
		return compdiff.NewCampaignPool(src, corpus, opts)
	}
	pool, err := compdiff.ResumeCampaignPool(src, corpus, opts)
	switch {
	case err == nil:
		fmt.Fprintf(stderr, "compdiff-fuzz: resumed from checkpoint %s (seq %d, %d execs per shard already spent)\n",
			opts.CheckpointDir, pool.CheckpointSeq(), pool.SpentExecs())
		return pool, nil
	case errors.Is(err, compdiff.ErrNoCheckpoint):
		fmt.Fprintf(stderr, "compdiff-fuzz: no checkpoint in %s; starting fresh\n", opts.CheckpointDir)
		return compdiff.NewCampaignPool(src, corpus, opts)
	case errors.Is(err, compdiff.ErrCheckpointMismatch):
		return nil, usageError{err}
	default:
		return nil, err
	}
}

// printTelemetry renders the per-implementation summary table and the
// campaign throughput line. No-op when stats were not requested.
func printTelemetry(stdout io.Writer, impls []compdiff.ImplSummary, snaps []compdiff.CampaignSnapshot) {
	if len(impls) == 0 || len(snaps) == 0 {
		return
	}
	final := snaps[len(snaps)-1]
	fmt.Fprintf(stdout, "throughput     : %.1f execs/sec over %s (%d snapshots)\n",
		final.ExecsPerSec, (time.Duration(final.ElapsedMs) * time.Millisecond).Round(time.Millisecond),
		len(snaps))
	fmt.Fprintf(stdout, "outcomes       : %d ok, %d crash, %d step-limit-hang, %d diff\n",
		final.OK, final.Crash, final.StepLimitHang, final.Diff)

	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "implementation\truns\tok\tcrash\thang\tmean\tp50\tp99")
	for _, s := range impls {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			s.Name, s.Runs(),
			s.Outcomes[compdiff.ClassOK],
			s.Outcomes[compdiff.ClassCrash],
			s.Outcomes[compdiff.ClassStepLimitHang],
			time.Duration(s.Latency.Mean()).Round(time.Microsecond),
			time.Duration(s.Latency.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Latency.Quantile(0.99)).Round(time.Microsecond))
	}
	tw.Flush()
}
