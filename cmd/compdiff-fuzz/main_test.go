package main

import (
	"strings"
	"testing"
)

// validCfg is a baseline that passes validation; cases mutate it.
func validCfg() cliConfig {
	return cliConfig{
		target: "tcpdump",
		execs:  50_000,
		shards: 1,
		jobs:   1,
		san:    "none",
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliConfig)
		wantErr string // substring; "" means the config must pass
	}{
		{"baseline", func(c *cliConfig) {}, ""},
		{"src-instead-of-target", func(c *cliConfig) { c.target = ""; c.src = "p.mc" }, ""},
		{"sharded", func(c *cliConfig) { c.shards = 8; c.jobs = 4 }, ""},
		{"sharded-explicit-sync", func(c *cliConfig) { c.shards = 8; c.sync = 500; c.syncSet = true }, ""},
		{"list-skips-checks", func(c *cliConfig) { *c = cliConfig{list: true} }, ""},
		{"stats-every", func(c *cliConfig) { c.statsEvery = 1000 }, ""},
		{"checkpoint", func(c *cliConfig) { c.checkpoint = "ckpt" }, ""},
		{"checkpoint-every", func(c *cliConfig) { c.checkpoint = "ckpt"; c.ckptEvery = 4 }, ""},
		{"checkpoint-resume", func(c *cliConfig) { c.checkpoint = "ckpt"; c.resume = true }, ""},
		// -checkpoint-every 0 means "every barrier" and is the default,
		// so it must pass even without -checkpoint.
		{"default-checkpoint-every", func(c *cliConfig) { c.ckptEvery = 0 }, ""},

		{"no-input", func(c *cliConfig) { c.target = "" }, "need -target, -src, -programs, or -evolve"},
		{"both-inputs", func(c *cliConfig) { c.src = "p.mc" }, "mutually exclusive"},
		{"programs-mode", func(c *cliConfig) { c.target = ""; c.programs = "progs" }, ""},
		{"programs-and-target", func(c *cliConfig) { c.programs = "progs" }, "mutually exclusive"},
		{"programs-and-src", func(c *cliConfig) { c.target = ""; c.src = "p.mc"; c.programs = "progs" },
			"mutually exclusive"},
		{"programs-with-san", func(c *cliConfig) { c.target = ""; c.programs = "progs"; c.san = "asan" },
			"-programs campaign"},

		// Evolutionary campaigns: -evolve replaces the input modes and
		// owns the -pop / -generations knobs.
		{"evolve-mode", func(c *cliConfig) { c.target = ""; c.evolve = true; c.pop = 24; c.generations = 20 }, ""},
		{"evolve-checkpoint-resume", func(c *cliConfig) {
			c.target = ""
			c.evolve = true
			c.pop = 8
			c.generations = 4
			c.checkpoint = "ckpt"
			c.resume = true
		}, ""},
		{"evolve-zero-pop", func(c *cliConfig) { c.target = ""; c.evolve = true; c.pop = 0; c.generations = 20 },
			"-pop 0"},
		{"evolve-one-pop", func(c *cliConfig) { c.target = ""; c.evolve = true; c.pop = 1; c.generations = 20 },
			"-pop 1"},
		{"evolve-zero-generations", func(c *cliConfig) { c.target = ""; c.evolve = true; c.pop = 24; c.generations = 0 },
			"-generations 0"},
		{"evolve-negative-generations", func(c *cliConfig) { c.target = ""; c.evolve = true; c.pop = 24; c.generations = -3 },
			"-generations -3"},
		{"evolve-and-target", func(c *cliConfig) { c.evolve = true; c.pop = 24; c.generations = 20 },
			"-evolve generates its own programs"},
		{"evolve-and-src", func(c *cliConfig) {
			c.target = ""
			c.src = "p.mc"
			c.evolve = true
			c.pop = 24
			c.generations = 20
		}, "-evolve generates its own programs"},
		{"evolve-and-programs", func(c *cliConfig) {
			c.target = ""
			c.programs = "progs"
			c.evolve = true
			c.pop = 24
			c.generations = 20
		}, "-evolve generates its own programs"},
		{"evolve-with-san", func(c *cliConfig) {
			c.target = ""
			c.evolve = true
			c.pop = 24
			c.generations = 20
			c.san = "ubsan"
		}, "-evolve campaign"},
		{"pop-without-evolve", func(c *cliConfig) { c.pop = 24; c.popSet = true },
			"only make sense with -evolve"},
		{"generations-without-evolve", func(c *cliConfig) { c.generations = 20; c.gensSet = true },
			"only make sense with -evolve"},
		{"evolve-execs-total", func(c *cliConfig) {
			c.target = ""
			c.evolve = true
			c.pop = 24
			c.generations = 20
			c.checkpoint = "ckpt"
			c.execsTotal = 100
		}, "bounded by -pop"},
		{"serve-evolve", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.evolve = true
			c.pop = 24
			c.generations = 20
		}, "-evolve campaigns run standalone"},
		{"zero-execs", func(c *cliConfig) { c.execs = 0 }, "-execs 0"},
		{"negative-execs", func(c *cliConfig) { c.execs = -10 }, "-execs -10"},
		{"zero-shards", func(c *cliConfig) { c.shards = 0 }, "-shards 0"},
		{"negative-shards", func(c *cliConfig) { c.shards = -2 }, "-shards -2"},
		{"zero-jobs", func(c *cliConfig) { c.jobs = 0 }, "-jobs 0"},
		{"negative-jobs", func(c *cliConfig) { c.jobs = -4 }, "-jobs -4"},
		{"negative-sync", func(c *cliConfig) { c.sync = -1 }, "-sync -1"},
		{"explicit-sync-zero-sharded", func(c *cliConfig) { c.shards = 4; c.sync = 0; c.syncSet = true },
			"disable the synchronization barriers"},
		// The default -sync 0 (not explicitly set) on a sharded run is
		// fine: the pool picks budget/8.
		{"default-sync-zero-sharded", func(c *cliConfig) { c.shards = 4 }, ""},
		// An explicit -sync 0 on a single shard is also fine: there are
		// no barriers to disable.
		{"explicit-sync-zero-solo", func(c *cliConfig) { c.sync = 0; c.syncSet = true }, ""},
		{"negative-stats-every", func(c *cliConfig) { c.statsEvery = -5 }, "-stats-every -5"},
		{"bad-san", func(c *cliConfig) { c.san = "tsan" }, `-san "tsan"`},
		{"negative-checkpoint-every", func(c *cliConfig) { c.checkpoint = "ckpt"; c.ckptEvery = -3 },
			"-checkpoint-every -3"},
		{"checkpoint-every-without-dir", func(c *cliConfig) { c.ckptEvery = 4 },
			"-checkpoint-every needs -checkpoint"},
		{"resume-without-dir", func(c *cliConfig) { c.resume = true },
			"-resume needs -checkpoint"},

		// Cumulative budgets and heartbeats ride on the checkpoint.
		{"execs-total", func(c *cliConfig) { c.checkpoint = "ckpt"; c.execsTotal = 100_000 }, ""},
		{"execs-total-without-checkpoint", func(c *cliConfig) { c.execsTotal = 100_000 },
			"-execs-total needs -checkpoint"},
		{"negative-execs-total", func(c *cliConfig) { c.checkpoint = "ckpt"; c.execsTotal = -1 },
			"-execs-total -1"},
		{"execs-total-programs", func(c *cliConfig) {
			c.target = ""
			c.programs = "progs"
			c.checkpoint = "ckpt"
			c.execsTotal = 100
		}, "bounded by the corpus"},
		{"heartbeat", func(c *cliConfig) { c.checkpoint = "ckpt"; c.heartbeat = "hb.json" }, ""},
		{"heartbeat-without-checkpoint", func(c *cliConfig) { c.heartbeat = "hb.json" },
			"-heartbeat needs -checkpoint"},

		// Farm mode: -serve drives workers; per-worker paths are derived.
		{"serve", func(c *cliConfig) { c.serve = ":0"; c.farm = "farm"; c.workers = 2 }, ""},
		{"serve-src", func(c *cliConfig) {
			c.target = ""
			c.src = "p.mc"
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 4
		}, ""},
		{"serve-execs-total", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.execsTotal = 100_000
		}, ""},
		{"serve-without-farm", func(c *cliConfig) { c.serve = ":0"; c.workers = 2 },
			"-serve needs -farm"},
		{"serve-without-input", func(c *cliConfig) {
			c.target = ""
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
		}, "-serve needs -target or -src"},
		{"serve-zero-workers", func(c *cliConfig) { c.serve = ":0"; c.farm = "farm"; c.workers = 0 },
			"-workers 0"},
		{"serve-programs", func(c *cliConfig) {
			c.target = ""
			c.programs = "progs"
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
		}, "-programs campaigns run standalone"},
		{"serve-explicit-checkpoint", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.checkpoint = "ckpt"
		}, "per-worker under -serve"},
		{"serve-explicit-heartbeat", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.heartbeat = "hb.json"
		}, "per-worker under -serve"},
		{"serve-explicit-diffdir", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.diffdir = "diffs"
		}, "per-worker under -serve"},
		{"serve-explicit-stats", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.statsDir = "stats"
		}, "per-worker under -serve"},
		{"serve-resume", func(c *cliConfig) {
			c.serve = ":0"
			c.farm = "farm"
			c.workers = 2
			c.resume = true
		}, "-resume is implicit under -serve"},
		{"farm-without-serve", func(c *cliConfig) { c.farm = "farm" },
			"-farm only makes sense with -serve"},
		{"workers-without-serve", func(c *cliConfig) { c.workers = 4; c.workersSet = true },
			"-workers only makes sense with -serve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validCfg()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %q, want substring %q", cfg, err, tc.wantErr)
			}
		})
	}
}
