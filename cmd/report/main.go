// Command report regenerates the paper's evaluation tables and
// figures (§4): Tables 2-6 and Figures 1-2, plus the §5 overhead
// numbers. Absolute values reflect this repository's 1:10-scale
// simulator substrate; the shapes are the reproduction target (see
// EXPERIMENTS.md for the paper-vs-measured record).
//
// Usage:
//
//	report -all
//	report -table3 -figure1 [-scale 4]
//	report -triage [-triage-target readelf] [-triage-execs 5000]
//
// -triage runs a short fuzzing campaign against one built-in target
// and prints the bucketed triage summary: one row per divergence
// fingerprint with its hit count, merged signature count, and
// divergence stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"strings"

	"compdiff/internal/bench"
	"compdiff/internal/compiler"
	"compdiff/internal/difffuzz"
	"compdiff/internal/juliet"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/targets"
	"compdiff/internal/triage"
	"compdiff/internal/vm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	all := flag.Bool("all", false, "produce everything")
	t2 := flag.Bool("table2", false, "Table 2: selected CWE overview")
	t3 := flag.Bool("table3", false, "Table 3: detection/FP rates on the Juliet suite")
	f1 := flag.Bool("figure1", false, "Figure 1: implementation subsets on the Juliet suite")
	t4 := flag.Bool("table4", false, "Table 4: target projects")
	t5 := flag.Bool("table5", false, "Table 5: real-world bugs by root cause")
	t6 := flag.Bool("table6", false, "Table 6: sanitizer overlap")
	f2 := flag.Bool("figure2", false, "Figure 2: implementation subsets on the real-world bugs")
	ov := flag.Bool("overhead", false, "section 5 overhead measurements")
	tr := flag.Bool("triage", false, "bucketed triage summary from a short campaign")
	trTarget := flag.String("triage-target", "readelf", "built-in target for -triage")
	trExecs := flag.Int64("triage-execs", 5000, "campaign budget for -triage")
	co := flag.Bool("compile-oracle", false, "compile-stage oracle demo: the three finding classes")
	op := flag.Bool("opcode-pairs", false, "dynamic fallthrough opcode-pair histogram over the built-in corpus")
	opTop := flag.Int("opcode-pairs-top", 20, "rows to print for -opcode-pairs")
	scale := flag.Int("scale", 1, "divide Juliet category sizes by N (speed knob)")
	flag.Parse()

	if *all {
		*t2, *t3, *f1, *t4, *t5, *t6, *f2, *ov, *tr, *co = true, true, true, true, true, true, true, true, true, true
	}
	if !(*t2 || *t3 || *f1 || *t4 || *t5 || *t6 || *f2 || *ov || *tr || *co || *op) {
		flag.Usage()
		return
	}

	if *t2 {
		fmt.Println("==== Table 2: selected CWEs ====")
		fmt.Println(bench.FormatTable2())
	}

	var table3 *bench.Table3
	if *t3 || *f1 {
		suite := juliet.GenerateScaled(*scale)
		fmt.Printf("(evaluating %d Juliet cases ...)\n", len(suite.Cases))
		var err error
		table3, err = bench.ComputeTable3(suite, nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *t3 {
		fmt.Println("==== Table 3: detection and false-positive rates ====")
		fmt.Println(bench.FormatTable3(table3))
	}
	if *f1 {
		fmt.Println("==== Figure 1: implementation subsets (Juliet) ====")
		fig := bench.ComputeFigure1(table3.Matrix)
		fmt.Println(fig.Format(fmt.Sprintf("bugs detected per subset (of %d total)", len(table3.Matrix.Rows))))
	}

	if *t4 {
		fmt.Println("==== Table 4: target projects ====")
		fmt.Println(bench.FormatTable4(targets.All()))
	}

	var rw *bench.RealWorld
	if *t5 || *t6 || *f2 || *ov {
		var err error
		rw, err = bench.ComputeRealWorld(nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *t5 {
		fmt.Println("==== Table 5: real-world bugs by root cause ====")
		fmt.Println(bench.FormatTable5(rw.Targets, rw))
	}
	if *t6 {
		fmt.Println("==== Table 6: sanitizer overlap ====")
		fmt.Println(bench.FormatTable6(bench.ComputeTable6(rw)))
	}
	if *f2 {
		fmt.Println("==== Figure 2: implementation subsets (real-world bugs) ====")
		fig := bench.ComputeFigure1(rw.Matrix)
		fmt.Println(fig.Format(fmt.Sprintf("bugs detected per subset (of %d total)", len(rw.Matrix.Rows))))
	}
	if *ov {
		fmt.Println("==== Section 5: overhead ====")
		o, err := bench.ComputeOverhead(rw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(o.Format())
	}

	if *tr {
		fmt.Printf("==== Triage: bucketed findings (%s, %d execs) ====\n", *trTarget, *trExecs)
		fmt.Println(triageSummary(*trTarget, *trExecs))
	}

	if *co {
		fmt.Println("==== Compile-stage oracle: the three finding classes ====")
		fmt.Println(compileOracleSummary())
	}

	if *op {
		fmt.Println("==== Opcode-pair histogram (fallthrough pairs, built-in corpus) ====")
		fmt.Println(opcodePairSummary(*opTop))
	}
}

// opcodePairSummary runs every built-in target's seeds through the
// default implementation set under the pair profiler and renders the
// most frequent fallthrough opcode pairs — the data that justifies
// the fast loop's superinstruction set (scripts/bench.sh reports it
// next to the timing trajectory).
func opcodePairSummary(top int) string {
	var prof vm.PairProfile
	cfgs := compiler.DefaultSet()
	for _, tg := range targets.All() {
		info := sema.MustCheck(parser.MustParse(tg.Src))
		for _, cfg := range cfgs {
			res := compiler.CompileGuarded(info, cfg)
			if res.Err != nil {
				continue
			}
			m := vm.New(res.Prog, vm.Options{})
			for _, seed := range tg.Seeds {
				m.ProfilePairs(seed, &prof)
			}
		}
	}
	pairs := prof.Pairs()
	var total int64
	for _, p := range pairs {
		total += p.Count
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d instructions executed, %d fallthrough pairs (%d distinct)\n",
		prof.Steps(), total, len(pairs))
	fmt.Fprintf(&b, "%-24s %12s %7s\n", "pair", "count", "share")
	if top > len(pairs) {
		top = len(pairs)
	}
	for _, p := range pairs[:top] {
		fmt.Fprintf(&b, "%-24s %12d %6.2f%%\n",
			p.A.String()+"+"+p.B.String(), p.Count, 100*float64(p.Count)/float64(total))
	}
	return b.String()
}

// triageSummary fuzzes one built-in target briefly and renders the
// bucketed summary table: findings deduplicated by divergence
// fingerprint rather than by raw signature.
func triageSummary(name string, execs int64) string {
	tg := targets.ByName(name)
	if tg == nil {
		log.Fatalf("unknown target %q for -triage-target", name)
	}
	p, err := difffuzz.NewPool(tg.Src, tg.Seeds, difffuzz.Options{FuzzSeed: 1, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	st := p.Run(context.Background(), execs)
	kinds := p.BucketStore().KindCounts()
	return fmt.Sprintf("%d diverging inputs, %d signatures, %d buckets (%d runtime, %d compile-divergence, %d ice, %d diag-mismatch)\n%s",
		st.TotalDiffInputs, st.UniqueDiffs, st.UniqueBuckets,
		kinds[triage.KindRuntime], kinds[triage.KindCompileDivergence],
		kinds[triage.KindICE], kinds[triage.KindDiagMismatch],
		p.BucketStore().Table())
}

// compileOracleSummary runs the compile-stage oracle over a small
// demo corpus seeded with one program per finding class — a reject
// divergence (optimizing gcc refuses a constant division by zero the
// other implementations merely warn about), an expression deep enough
// to crash the O2+ lowerers, and a global initializer every
// implementation rejects with family-specific wording.
func compileOracleSummary() string {
	corpus := []string{
		"int main() {\n    int d = 1 / 0;\n    return d;\n}\n",
		"int main() {\n    int x = 1;\n    int y = x" + strings.Repeat("+1", 60) + ";\n    return y;\n}\n",
		"int g = 1 / 0;\nint main() {\n    return g;\n}\n",
	}
	p, err := difffuzz.NewCompilePool(corpus, difffuzz.CompilePoolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := p.Run(context.Background())
	var b strings.Builder
	fmt.Fprintf(&b, "%d programs: %d accept/reject divergences, %d ICEs, %d diagnostic mismatches\n%s\n",
		st.Programs, st.CompileDivergences, st.ICEs, st.DiagMismatches,
		p.BucketStore().Table())
	for _, bk := range p.BucketStore().Buckets() {
		b.WriteString(bk.Report(p.ImplNames()))
		b.WriteString("\n")
	}
	return b.String()
}
