// Command julietgen materializes the generated Juliet-style benchmark
// suite (paper §4.1, Table 2) to disk for inspection, or prints its
// statistics.
//
// Usage:
//
//	julietgen -stats
//	julietgen -out DIR [-scale N]
//
// With -out, each case is written as DIR/CWE-xxx/<name>_bad.mc and
// _good.mc, plus <name>.input when the case carries a test input.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"compdiff/internal/juliet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("julietgen: ")
	out := flag.String("out", "", "directory to write the suite to")
	scale := flag.Int("scale", 1, "divide category sizes by N")
	stats := flag.Bool("stats", false, "print per-CWE counts and exit")
	flag.Parse()

	suite := juliet.GenerateScaled(*scale)

	if *stats || *out == "" {
		fmt.Printf("%-10s %-42s %8s %8s\n", "CWE", "Description", "#Paper", "#Here")
		total, ptotal := 0, 0
		for _, info := range juliet.Catalog {
			n := len(suite.ByCWE()[info.ID])
			fmt.Printf("%-10s %-42s %8d %8d\n", info.ID, info.Description, info.PaperCount, n)
			total += n
			ptotal += info.PaperCount
		}
		fmt.Printf("%-10s %-42s %8d %8d\n", "Total", "", ptotal, total)
		if *out == "" {
			return
		}
	}

	for _, c := range suite.Cases {
		dir := filepath.Join(*out, c.CWE)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		write := func(name, data string) {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		write(c.Name+"_bad.mc", c.Bad)
		write(c.Name+"_good.mc", c.Good)
		if len(c.Input) > 0 {
			write(c.Name+".input", string(c.Input))
		}
	}
	fmt.Printf("wrote %d cases under %s\n", len(suite.Cases), *out)
}
