// Package compdiff is the public API of this repository: a Go
// implementation of compiler-driven differential testing (CompDiff)
// from "Finding Unstable Code via Compiler-Driven Differential
// Testing" (Li & Su, ASPLOS 2023), together with every substrate the
// paper's evaluation needs — a C-like language (MiniC) with ten
// divergent compiler implementations, an AFL++-style fuzzer, sanitizer
// and static-analyzer baselines, a Juliet-style benchmark suite, and
// 23 synthetic real-world targets.
//
// The core idea: compile a program under several compiler
// implementations, run every test input on all binaries, and compare
// checksums of their outputs. For a program with deterministic output,
// any discrepancy proves *unstable code* — code whose semantics the
// standard leaves undefined and which the implementations resolved
// differently.
//
// Quick start:
//
//	suite, err := compdiff.New(src, compdiff.DefaultImplementations(), compdiff.Options{})
//	outcome := suite.Run(input)
//	if outcome.Diverged { ... unstable code found ... }
//
// Fuzzing integration (CompDiff-AFL++, Algorithm 1):
//
//	c, err := compdiff.NewCampaign(src, seeds, compdiff.CampaignOptions{})
//	c.Run(100000)
//	for _, d := range c.Diffs() { fmt.Println(d.Report(c.ImplNames())) }
//
// Sharded campaigns (the paper's 64-core AFL++ -M/-S topology, §4)
// and parallel differential execution:
//
//	p, err := compdiff.NewCampaignPool(src, seeds, compdiff.CampaignOptions{Shards: 8, Parallelism: 4})
//	p.Run(ctx, 100000) // per-shard budget; barriers sync corpora and diffs
//	for _, d := range p.Diffs() { fmt.Println(d.Report(p.ImplNames())) }
package compdiff

import (
	"io"

	"compdiff/internal/checkpoint"
	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/difffuzz"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
	"compdiff/internal/vm"
)

// Implementation selects one compiler implementation: a family
// (GCC-like or Clang-like) at an optimization level, optionally with
// coverage instrumentation or sanitizer support.
type Implementation = compiler.Config

// Compiler families and optimization levels.
const (
	GCC   = compiler.GCC
	Clang = compiler.Clang
	O0    = compiler.O0
	O1    = compiler.O1
	O2    = compiler.O2
	O3    = compiler.O3
	Os    = compiler.Os
)

// Options configures a differential-testing suite (step budget,
// timeout re-run policy, output normalization).
type Options = core.Options

// Suite is a program compiled under k implementations, ready for
// differential execution.
type Suite = core.Suite

// Outcome is the result of one differential execution: per-binary
// results, normalized output hashes, and the divergence verdict.
type Outcome = core.Outcome

// Normalizer rewrites captured output before comparison, to filter
// legitimate non-determinism such as timestamps (paper RQ5).
type Normalizer = core.Normalizer

// DiffStore deduplicates bug-triggering inputs by divergence
// signature (the diffs/ directory of CompDiff-AFL++).
type DiffStore = core.DiffStore

// StoredDiff is one unique discrepancy with a representative input.
type StoredDiff = core.StoredDiff

// Campaign is a CompDiff-AFL++ fuzzing session: an AFL++-style fuzzer
// whose every generated input is cross-checked over the CompDiff
// binaries.
type Campaign = difffuzz.Campaign

// CampaignOptions configures a campaign.
type CampaignOptions = difffuzz.Options

// CampaignPool runs CampaignOptions.Shards fuzzer instances AFL
// -M/-S-style with periodic corpus/diff synchronization through a
// shared DiffStore — the paper's 64-core campaign topology (§4).
type CampaignPool = difffuzz.Pool

// PoolStats summarizes a sharded campaign run.
type PoolStats = difffuzz.PoolStats

// SanMode selects sanitizer instrumentation for the fuzzing binary.
type SanMode = vm.SanMode

// Sanitizer modes for CampaignOptions.Sanitizer.
const (
	SanNone  = vm.SanNone
	SanASan  = vm.SanASan
	SanUBSan = vm.SanUBSan
	SanMSan  = vm.SanMSan
)

// DefaultImplementations returns the paper's ten compiler
// implementations: {gcc, clang} × {-O0, -O1, -O2, -O3, -Os}.
func DefaultImplementations() []Implementation {
	return compiler.DefaultSet()
}

// RecommendedPair returns the paper's resource-constrained two-binary
// configuration: different families, one unoptimizing and one
// size-optimizing, which retains most of the detection power at ~2×
// execution cost.
func RecommendedPair() []Implementation {
	return []Implementation{
		{Family: GCC, Opt: Os},
		{Family: Clang, Opt: O0},
	}
}

// New parses, checks, and compiles MiniC source under every given
// implementation, returning the differential-testing suite.
func New(src string, impls []Implementation, opts Options) (*Suite, error) {
	return core.BuildSource(src, impls, opts)
}

// NewCampaign builds a CompDiff-AFL++ campaign over MiniC source with
// the given seed corpus.
func NewCampaign(src string, seeds [][]byte, opts CampaignOptions) (*Campaign, error) {
	return difffuzz.New(src, seeds, opts)
}

// NewCampaignPool builds a sharded campaign: opts.Shards fuzzer
// instances with distinct RNG seeds derived from opts.FuzzSeed,
// synchronized every opts.SyncEvery executions. With Shards <= 1 the
// pool degenerates to (and byte-identically reproduces) a single
// Campaign. With opts.CheckpointDir set, the pool writes a crash-safe
// snapshot at its synchronization barriers; ResumeCampaignPool picks
// a killed campaign back up from the latest one.
func NewCampaignPool(src string, seeds [][]byte, opts CampaignOptions) (*CampaignPool, error) {
	return difffuzz.NewPool(src, seeds, opts)
}

// ResumeCampaignPool rebuilds a sharded campaign from the checkpoint
// in opts.CheckpointDir. The source, seeds, and determinism-relevant
// options must match the checkpointed campaign exactly
// (ErrCheckpointMismatch otherwise); a campaign checkpointed after N
// executions and resumed for N more finds the same unique-signature
// and bucket-key sets as an uninterrupted 2N-execution run. Errors:
// ErrNoCheckpoint (nothing to resume), ErrCheckpointMismatch (options
// differ), ErrCheckpointCorrupt (damaged files).
func ResumeCampaignPool(src string, seeds [][]byte, opts CampaignOptions) (*CampaignPool, error) {
	return difffuzz.ResumePool(src, seeds, opts)
}

// CampaignHash fingerprints the determinism-relevant campaign inputs
// (source, seed corpus, options); checkpoints only resume into a
// campaign with a matching hash.
func CampaignHash(src string, seeds [][]byte, opts CampaignOptions) uint64 {
	return difffuzz.CampaignHash(src, seeds, opts)
}

// Checkpoint/resume error classes (match with errors.Is).
var (
	// ErrNoCheckpoint reports that the checkpoint directory holds no
	// checkpoint — typically a cue to start fresh.
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrCheckpointCorrupt reports a damaged or truncated checkpoint.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointMismatch reports a checkpoint written by a campaign
	// with different source, seeds, or options.
	ErrCheckpointMismatch = checkpoint.ErrMismatch
)

// DefaultNormalizer filters the non-determinism classes the paper's
// RQ5 encountered (clock timestamps, printed pointers).
func DefaultNormalizer() *Normalizer {
	return core.DefaultNormalizer()
}

// NewDiffStore creates a discrepancy store; with a non-empty dir,
// representative bug-triggering inputs are written to dir/diffs/.
func NewDiffStore(dir string) *DiffStore {
	return core.NewDiffStore(dir)
}

// Localization is a trace-diff fault-localization result: the last
// source line two disagreeing binaries share before their control
// flow separates (the paper's §5 future-work direction, realized via
// the VM's line traces).
type Localization = core.Localization

// CampaignMetrics holds a campaign's live telemetry counters: B_fuzz
// and CompDiff execution totals, per-class outcome counts, and
// per-implementation latency histograms. Enable collection with
// CampaignOptions.Stats (or StatsDir / StatsEvery); read it via
// Campaign.Metrics.
type CampaignMetrics = telemetry.CampaignMetrics

// CampaignSnapshot is one AFL-plot-style progress record; campaigns
// append them to an in-memory series and (with StatsDir set) to
// StatsDir/plot.jsonl.
type CampaignSnapshot = telemetry.Snapshot

// ShardSnapshot is one shard's state inside a pool snapshot.
type ShardSnapshot = telemetry.ShardSnapshot

// ImplSummary aggregates one implementation's run telemetry: outcome
// counts by class and a latency histogram.
type ImplSummary = telemetry.ImplSummary

// Outcome classes for CampaignMetrics / ImplSummary counters.
const (
	ClassOK            = telemetry.ClassOK
	ClassCrash         = telemetry.ClassCrash
	ClassStepLimitHang = telemetry.ClassStepLimitHang
	ClassDiff          = telemetry.ClassDiff
)

// WriteMetricsJSON dumps a campaign's metrics registry to w as one
// JSON object, expvar style: counters, per-class outcome counts, and
// per-implementation latency histograms keyed by registration name.
func WriteMetricsJSON(w io.Writer, m *CampaignMetrics) error {
	return m.Registry().WriteJSON(w)
}

// Fingerprint is a divergence fingerprint: the implementation
// agreement partition, the per-implementation outcome classes, and the
// first stage of the implementation chain that diverges. It is
// deliberately coarser than a raw discrepancy signature — checksum
// changes that keep the disagreement shape map to the same fingerprint,
// which is what lets the reducer rewrite a finding without losing its
// identity.
type Fingerprint = triage.Fingerprint

// Bucket is one fingerprint-deduplicated finding with a representative
// outcome and hit counters.
type Bucket = triage.Bucket

// BucketStore deduplicates diverging outcomes by fingerprint — the
// triage layer above the signature-keyed DiffStore.
type BucketStore = triage.BucketStore

// ReduceOptions configures a delta-debugging reduction.
type ReduceOptions = triage.ReduceOptions

// Reduction is the result of reducing one finding: the minimized
// program and input, the preserved fingerprint, and the cost spent.
type Reduction = triage.Reduction

// ErrNoDivergence reports that a finding handed to Reduce does not
// diverge, so there is nothing to preserve.
var ErrNoDivergence = triage.ErrNoDivergence

// FingerprintOf computes the divergence fingerprint of a diverging
// outcome.
func FingerprintOf(o *Outcome) Fingerprint {
	return triage.Of(o)
}

// NewBucketStore creates an empty triage bucket store.
func NewBucketStore() *BucketStore {
	return triage.NewBucketStore()
}

// Reduce delta-debugs a diverging finding (program + input) to a
// smaller reproducer with the same divergence fingerprint, using AST
// reduction passes and ddmin over the input bytes. Compile-stage
// findings reduce too: the predicate becomes compile-fingerprint
// preservation and no VM run is needed.
func Reduce(src string, input []byte, opts ReduceOptions) (*Reduction, error) {
	return triage.Reduce(src, input, opts)
}

// CompileStatus is one implementation's verdict on a program: accept,
// reject (diagnosed error), or ICE (the implementation itself crashed).
type CompileStatus = core.CompileStatus

// Compile-stage statuses.
const (
	CompileAccept = core.StatusAccept
	CompileReject = core.StatusReject
	CompileICE    = core.StatusICE
)

// ImplCompile is one implementation's compile-stage record: status,
// rendered diagnostics, and the captured ICE panic text, if any.
type ImplCompile = core.ImplCompile

// CompileOutcome is the k-way compile-stage record for one program —
// the compile-time analogue of Outcome.
type CompileOutcome = core.CompileOutcome

// FindingKind classifies a triage bucket: a runtime divergence or one
// of the compile-stage classes.
type FindingKind = triage.Kind

// Finding kinds.
const (
	KindRuntime           = triage.KindRuntime
	KindCompileDivergence = triage.KindCompileDivergence
	KindICE               = triage.KindICE
	KindDiagMismatch      = triage.KindDiagMismatch
)

// NewDifferential parses, checks, and compiles MiniC source under
// every implementation with the compile-stage oracle engaged. Parse
// and sema failures return an error (the program is malformed for
// everyone). Otherwise the CompileOutcome records every
// implementation's verdict; the Suite is non-nil only when all of them
// accepted. Use CompileFingerprintOf to decide whether a
// not-universally-accepted outcome is a finding or a mundane uniform
// reject.
func NewDifferential(src string, impls []Implementation, opts Options) (*Suite, *CompileOutcome, error) {
	return core.BuildSourceDifferential(src, impls, opts)
}

// CompileFingerprintOf classifies a compile outcome. It reports a
// fingerprint (and true) for the three compile-stage finding classes —
// accept/reject divergence, ICE, diagnostics mismatch — and false for
// universal acceptance or a uniform reject.
func CompileFingerprintOf(co *CompileOutcome) (Fingerprint, bool) {
	return triage.OfCompile(co)
}

// CompileCampaign is a sharded compile-oracle campaign over a MiniC
// *program* corpus: every program is compiled under all k
// implementations behind recover boundaries, compile-stage findings
// land in triage buckets, and universally-accepted programs are
// cross-checked at runtime too.
type CompileCampaign = difffuzz.CompilePool

// CompileCampaignOptions configures a compile-oracle campaign.
type CompileCampaignOptions = difffuzz.CompilePoolOptions

// CompileCampaignStats summarizes a compile-oracle campaign.
type CompileCampaignStats = difffuzz.CompilePoolStats

// NewCompileCampaign builds a compile-oracle campaign over a program
// corpus. With opts.CheckpointDir set, the campaign writes crash-safe
// snapshots at its barriers; ResumeCompileCampaign picks a killed
// campaign back up with an identical final bucket set.
func NewCompileCampaign(corpus []string, opts CompileCampaignOptions) (*CompileCampaign, error) {
	return difffuzz.NewCompilePool(corpus, opts)
}

// ResumeCompileCampaign rebuilds a compile-oracle campaign from the
// checkpoint in opts.CheckpointDir. Error classes match
// ResumeCampaignPool's.
func ResumeCompileCampaign(corpus []string, opts CompileCampaignOptions) (*CompileCampaign, error) {
	return difffuzz.ResumeCompilePool(corpus, opts)
}

// EvolveCampaign is an evolutionary coverage-directed campaign
// (-evolve): a population of MiniC programs is evaluated through the
// compile-stage and runtime differential oracles each generation,
// scored by a composite fitness — cumulative optimizer-pass coverage,
// divergence proximity from the checksum-agreement partition, and
// expected-length parsimony — and bred with mutation operators that
// invert the triage reduction passes (splicing in the unstable-code
// idioms reduction strips out). Every offspring is gated through the
// shared front end, and findings land in the same triage buckets as
// every other campaign mode.
type EvolveCampaign = difffuzz.EvolvePool

// EvolveCampaignOptions configures an evolutionary campaign.
type EvolveCampaignOptions = difffuzz.EvolvePoolOptions

// EvolveCampaignStats summarizes an evolutionary campaign: generation
// progress, cumulative pass coverage, last-generation fitness, and the
// finding counters shared with the other campaign modes.
type EvolveCampaignStats = difffuzz.EvolvePoolStats

// NewEvolveCampaign builds a fresh evolutionary campaign; the founder
// population is generated from opts.Seed. With opts.CheckpointDir set,
// the campaign writes a crash-safe snapshot at its generation
// barriers; ResumeEvolveCampaign picks a killed campaign back up with
// the same population sequence and final finding set as an
// uninterrupted run.
func NewEvolveCampaign(opts EvolveCampaignOptions) (*EvolveCampaign, error) {
	return difffuzz.NewEvolvePool(opts)
}

// ResumeEvolveCampaign rebuilds an evolutionary campaign from the
// checkpoint in opts.CheckpointDir. Error classes match
// ResumeCampaignPool's.
func ResumeEvolveCampaign(opts EvolveCampaignOptions) (*EvolveCampaign, error) {
	return difffuzz.ResumeEvolvePool(opts)
}

// EvolveCampaignHash fingerprints the determinism-relevant knobs of an
// evolutionary campaign; checkpoints only resume into a campaign with
// a matching hash.
func EvolveCampaignHash(opts EvolveCampaignOptions) uint64 {
	return difffuzz.EvolveCampaignHash(opts)
}
