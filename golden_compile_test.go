package compdiff_test

// The compile-stage golden layer: one pinned program per finding
// class under testdata/golden/compile_*.mc — an accept/reject
// divergence, an internal-compiler-error capture, and a diagnostics
// mismatch. Each golden file pins the fingerprint (kind, partition,
// normalized-detail key) and the full per-implementation verdict
// record, so any drift in the compile-stage oracle — a changed
// rejection policy, a different diagnostic wording, a shifted
// normalization rule — fails loudly. Refresh intentionally changed
// expectations with:
//
//	go test -run TestGoldenCompileOracle -update .

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff"
)

// renderCompileFinding formats everything the compile goldens pin:
// the finding kind, the fingerprint key, the raw outcome signature,
// and every implementation's verdict with its diagnostics or captured
// ICE text.
func renderCompileFinding(co *compdiff.CompileOutcome, fp compdiff.Fingerprint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind %s\n", fp.Kind)
	fmt.Fprintf(&b, "fingerprint %016x %s\n", fp.Key(), fp)
	fmt.Fprintf(&b, "signature %016x\n", co.Signature())
	for _, im := range co.Impls {
		fmt.Fprintf(&b, "%-12s %s\n", im.Name, im.Status)
		if im.ICE != "" {
			fmt.Fprintf(&b, "    ice: %s\n", im.ICE)
		}
		for _, d := range im.Diags {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	return b.String()
}

// compileGoldens returns the compile_*.mc corpus paths, failing if the
// three classes are not all represented.
func compileGoldens(t *testing.T) []string {
	t.Helper()
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "compile_*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) < 3 {
		t.Fatalf("want at least 3 compile golden programs (one per finding class), found %d", len(srcs))
	}
	return srcs
}

// TestGoldenCompileOracle replays the compile corpus through the
// compile-stage differential oracle, sequential and Parallelism=4
// alike, against the pinned expectation files.
func TestGoldenCompileOracle(t *testing.T) {
	kindsSeen := map[compdiff.FindingKind]bool{}
	for _, srcPath := range compileGoldens(t) {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			suite, co, err := compdiff.NewDifferential(string(src), compdiff.DefaultImplementations(), compdiff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if suite != nil {
				t.Fatal("compile golden program was accepted by every implementation; no compile-stage finding")
			}
			fp, ok := compdiff.CompileFingerprintOf(co)
			if !ok {
				t.Fatalf("outcome is not a finding: %+v", co)
			}
			kindsSeen[fp.Kind] = true
			got := renderCompileFinding(co, fp)

			// The oracle must be deterministic run-to-run and under the
			// parallel compile path alike.
			if _, co2, err := compdiff.NewDifferential(string(src), compdiff.DefaultImplementations(), compdiff.Options{}); err != nil {
				t.Fatal(err)
			} else if fp2, _ := compdiff.CompileFingerprintOf(co2); renderCompileFinding(co2, fp2) != got {
				t.Fatalf("non-deterministic compile outcome:\nfirst:\n%s\nsecond:\n%s",
					got, renderCompileFinding(co2, fp2))
			}
			if _, co4, err := compdiff.NewDifferential(string(src), compdiff.DefaultImplementations(), compdiff.Options{Parallelism: 4}); err != nil {
				t.Fatal(err)
			} else if fp4, _ := compdiff.CompileFingerprintOf(co4); renderCompileFinding(co4, fp4) != got {
				t.Fatalf("parallel compile outcome differs:\nsequential:\n%s\nparallel:\n%s",
					got, renderCompileFinding(co4, fp4))
			}

			goldenPath := strings.TrimSuffix(srcPath, ".mc") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- want\n%s--- got\n%s", name, want, got)
			}
		})
	}
	if *updateGolden {
		return
	}
	for _, kind := range []compdiff.FindingKind{
		compdiff.KindCompileDivergence, compdiff.KindICE, compdiff.KindDiagMismatch,
	} {
		if !kindsSeen[kind] {
			t.Errorf("no compile golden program exercises kind %s", kind)
		}
	}
}

// TestGoldenCompileReduce replays the bloated compile corpus through
// the reducer: every reproducer must shed at least 60% of its source
// bytes while keeping exactly the fingerprint its golden file pins —
// in sequential and Parallelism=4 modes alike — and the original plus
// its reduction must land in a single triage bucket.
func TestGoldenCompileReduce(t *testing.T) {
	for _, srcPath := range compileGoldens(t) {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			wantKey := goldenFingerprintKey(t, strings.TrimSuffix(srcPath, ".mc")+".golden")
			for _, jobs := range []int{1, 4} {
				t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
					red, err := compdiff.Reduce(string(src), nil, compdiff.ReduceOptions{
						Suite: compdiff.Options{Parallelism: jobs},
					})
					if err != nil {
						t.Fatal(err)
					}
					if red.SourceShrink() < 0.60 {
						t.Errorf("shrink %.0f%% < 60%% (%d -> %d bytes)",
							red.SourceShrink()*100, red.OrigSourceBytes, len(red.Source))
					}
					if red.Fingerprint.Key() != wantKey {
						t.Errorf("reduced fingerprint %016x != pinned %016x (%s)",
							red.Fingerprint.Key(), wantKey, red.Fingerprint)
					}
					if len(red.Input) != 0 {
						t.Errorf("compile-stage reduction kept input %q; it is irrelevant", red.Input)
					}

					// Dedup replay: the bloated original and its reduction
					// must fill exactly one bucket, keyed by the pinned
					// fingerprint.
					store := compdiff.NewBucketStore()
					for _, cand := range []string{string(src), red.Source} {
						suite, co, err := compdiff.NewDifferential(cand, compdiff.DefaultImplementations(), compdiff.Options{})
						if err != nil {
							t.Fatal(err)
						}
						if suite != nil {
							t.Fatal("finding compiles clean on replay")
						}
						if b, _ := store.AddCompile(co); b == nil {
							t.Fatal("replayed outcome is not a finding")
						}
					}
					if store.Len() != 1 {
						t.Fatalf("original + reduced span %d buckets, want 1", store.Len())
					}
					if got := store.Keys(); len(got) != 1 || got[0] != wantKey {
						t.Errorf("bucket keys %x, want [%016x]", got, wantKey)
					}
				})
			}
		})
	}
}
