package compdiff_test

// Native `go test -fuzz` target for the compile-stage differential
// oracle: arbitrary bytes are treated as MiniC source and pushed
// through NewDifferential under both the sequential and the parallel
// compile path. The invariants: no input ever panics past the ICE
// recover boundary, malformed source errors identically either way,
// and for well-formed source the per-implementation verdict record —
// and therefore the finding fingerprint — is byte-identical across
// Parallelism 1 and 4 and across repeated runs. Run as a smoke test
// via scripts/check.sh, or at length with
// `go test -fuzz=FuzzCompileOracle .`.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff"
)

func FuzzCompileOracle(f *testing.F) {
	for _, path := range []string{"compile_reject.mc", "compile_ice.mc", "compile_diag.mc"} {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", path))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(fuzzSrc)
	f.Add("int main() { return 0; }")
	f.Add("int x = ;;; garbage !!")
	f.Add("int main() { int x = 1; int y = x" + strings.Repeat("+1", 50) + "; return y; }")

	impls := compdiff.DefaultImplementations()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			src = src[:4096]
		}
		suite, co, err := compdiff.NewDifferential(src, impls, compdiff.Options{})
		psuite, pco, perr := compdiff.NewDifferential(src, impls, compdiff.Options{Parallelism: 4})

		if (err == nil) != (perr == nil) {
			t.Fatalf("error parity broken: sequential %v, parallel %v", err, perr)
		}
		if err != nil {
			return // malformed for everyone, both ways
		}
		if (suite == nil) != (psuite == nil) {
			t.Fatalf("acceptance disagrees across parallelism: sequential suite=%v, parallel suite=%v",
				suite != nil, psuite != nil)
		}
		if len(co.Impls) != len(impls) || len(pco.Impls) != len(impls) {
			t.Fatalf("%d/%d verdicts for %d implementations", len(co.Impls), len(pco.Impls), len(impls))
		}
		for i := range co.Impls {
			a, b := co.Impls[i], pco.Impls[i]
			if a.Status != b.Status || a.ICE != b.ICE || strings.Join(a.Diags, "\n") != strings.Join(b.Diags, "\n") {
				t.Fatalf("verdict %d differs across parallelism:\nsequential %+v\nparallel   %+v", i, a, b)
			}
		}
		if co.Signature() != pco.Signature() {
			t.Fatalf("signatures differ across parallelism: %016x vs %016x", co.Signature(), pco.Signature())
		}

		fp, ok := compdiff.CompileFingerprintOf(co)
		pfp, pok := compdiff.CompileFingerprintOf(pco)
		if ok != pok || (ok && !fp.Equal(pfp)) {
			t.Fatalf("fingerprints differ across parallelism: (%v %s) vs (%v %s)", ok, fp, pok, pfp)
		}
		if ok && suite != nil {
			t.Fatal("a universally-accepted program cannot be a compile-stage finding")
		}

		// Determinism: a second sequential compile reproduces the record.
		_, co2, err2 := compdiff.NewDifferential(src, impls, compdiff.Options{})
		if err2 != nil {
			t.Fatalf("second compile errored: %v", err2)
		}
		if co.Signature() != co2.Signature() {
			t.Fatalf("signature not stable across runs: %016x vs %016x", co.Signature(), co2.Signature())
		}
	})
}
