# Tier-1 gate and developer targets. `make check` is what CI runs:
# vet, build, the full test suite under the race detector, and a short
# native-fuzz smoke over the parser and the differential engine.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz-smoke cover bench bench-quick golden

check: vet build race fuzz-smoke cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) -run='^$$' ./internal/minic/parser
	$(GO) test -fuzz=FuzzSuiteRun -fuzztime=$(FUZZTIME) -run='^$$' .
	$(GO) test -fuzz=FuzzReduce -fuzztime=$(FUZZTIME) -run='^$$' ./internal/triage
	$(GO) test -fuzz=FuzzCompileOracle -fuzztime=$(FUZZTIME) -run='^$$' .

# Per-package coverage table with hard floors on the triage layer
# (internal/triage, internal/difffuzz); see scripts/cover.sh.
cover:
	scripts/cover.sh

# Benchmark trajectory: run the tier-1 benchmark set with -benchmem
# and record a BENCH_<date>.json snapshot (see scripts/bench.sh for
# knobs). bench-quick is the old smoke: every benchmark once, no file.
bench:
	scripts/bench.sh

bench-quick:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# Regenerate testdata/golden/*.golden after an *intentional* semantic
# change; review the diff before committing.
golden:
	$(GO) test -run TestGoldenCorpus -update .
