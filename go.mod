module compdiff

go 1.22
