package progen

import (
	"math/rand"
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// Failure injection: take well-defined generated programs and corrupt
// them into UB-ridden ones, then execute under every implementation
// and sanitizer. The guest may crash in any guest-level way; the HOST
// must never panic, hang, or corrupt itself. This is the repo-wide
// robustness property for running adversarial code.

// injectUB applies textual corruptions that turn defined constructs
// into undefined ones while (usually) keeping the program parseable.
func injectUB(src string, rng *rand.Rand) string {
	type mutation func(string) string
	muts := []mutation{
		// Drop the masks that keep indexes in bounds.
		func(s string) string { return strings.Replace(s, ") & 7]", ") + 7]", 1) },
		func(s string) string { return strings.Replace(s, ") & 15]", ") + 15]", 1) },
		// Break the non-zero divisor guarantee.
		func(s string) string { return strings.Replace(s, "& 15) + 1)", "& 15))", 1) },
		// Un-initialize a variable.
		func(s string) string { return strings.Replace(s, " = 0;", ";", 1) },
		// Unmask a shift count.
		func(s string) string { return strings.Replace(s, ") & 7))", ") & 255))", 1) },
		// Turn a bounded loop unbounded-ish (step limit will catch it).
		func(s string) string { return strings.Replace(s, "i < 3", "i < 1000000000", 1) },
		// Free a stack object.
		func(s string) string {
			return strings.Replace(s, "return (acc & 63);", "free((char*)&acc);\n    return (acc & 63);", 1)
		},
		// Wild pointer write.
		func(s string) string {
			return strings.Replace(s, "return (acc & 63);", "*(long*)((long)acc * 524287L) = 1L;\n    return (acc & 63);", 1)
		},
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		src = muts[rng.Intn(len(muts))](src)
	}
	return src
}

func TestHostSurvivesInjectedUB(t *testing.T) {
	nSeeds := 40
	if testing.Short() {
		nSeeds = 10
	}
	rng := rand.New(rand.NewSource(0xc4a05))
	cfgs := compiler.DefaultSet()
	executed := 0
	for seed := 0; seed < nSeeds; seed++ {
		src := injectUB(Generate(int64(seed)).Src, rng)
		prog, err := parser.Parse(src)
		if err != nil {
			continue // some corruptions break the syntax; fine
		}
		info, err := sema.Check(prog)
		if err != nil {
			continue // or the typing; fine
		}
		for _, cfg := range cfgs {
			bin, err := compiler.Compile(info, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile of checked program failed: %v", seed, cfg.Name(), err)
			}
			for _, san := range []vm.SanMode{vm.SanNone, vm.SanASan, vm.SanUBSan, vm.SanMSan} {
				m := vm.New(bin, vm.Options{San: san, StepLimit: 300_000})
				res := m.Run([]byte{1, 2, 3, 250})
				executed++
				// Any guest-level exit is acceptable; a Go panic would
				// have failed the test already. VMFault would indicate
				// a bug in this repo's compiler.
				if res.Exit == vm.VMFault {
					t.Fatalf("seed %d %s san=%v: VM fault (compiler bug)\n%s", seed, cfg.Name(), san, src)
				}
			}
		}
	}
	if executed == 0 {
		t.Fatal("no corrupted program survived parsing; mutations too destructive")
	}
	t.Logf("executed %d adversarial (program, impl, sanitizer) combinations", executed)
}

// Random byte soup must never panic the front end either.
func TestFrontEndRobustOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pieces := []string{
		"int", "main", "(", ")", "{", "}", ";", "if", "for", "while",
		"x", "*", "&", "[", "]", "128", "\"s\"", "'c'", "+", "=", "==",
		"struct", "return", ",", "->", ".", "__LINE__", "sizeof", "/", "%",
	}
	for i := 0; i < 300; i++ {
		var b strings.Builder
		n := rng.Intn(60)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteString(" ")
		}
		src := b.String()
		prog, err := parser.Parse(src)
		if err != nil || prog == nil {
			continue
		}
		// If it parsed, checking must not panic either.
		_, _ = sema.Check(prog)
	}
}
