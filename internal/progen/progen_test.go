package progen

import (
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/sanitizer"
	"compdiff/internal/vm"
)

func astPrint(p *ast.Program) string { return ast.Print(p) }

func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed)
		prog, err := parser.Parse(p.Src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, p.Src)
		}
		if _, err := sema.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, p.Src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42)
	b := Generate(42)
	if a.Src != b.Src {
		t.Fatal("same seed produced different programs")
	}
	if Generate(43).Src == a.Src {
		t.Fatal("different seeds produced identical programs")
	}
}

// The repository's central soundness property (paper Finding 5): a
// program without UB behaves identically under every compiler
// implementation, on every input. This is what makes output
// divergence a *sound* oracle for unstable code.
func TestNoUBImpliesNoDivergence(t *testing.T) {
	nSeeds := int64(60)
	if testing.Short() {
		nSeeds = 15
	}
	inputs := [][]byte{
		nil,
		{0},
		[]byte("abc"),
		{0xff, 0x80, 0x01, 0x7f, 0x00, 0x55, 0xaa, 0x0f},
		[]byte("a longer input with plenty of bytes to chew on.."),
	}
	cfgs := compiler.DefaultSet()
	for seed := int64(0); seed < nSeeds; seed++ {
		p := Generate(seed)
		suite, err := core.BuildSource(p.Src, cfgs, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Src)
		}
		for _, in := range inputs {
			o := suite.Run(in)
			if o.Diverged {
				groups := o.Groups()
				detail := ""
				for h, idxs := range groups {
					_ = h
					detail += "--- " + suite.Names()[idxs[0]] + ":\n" +
						string(o.Results[idxs[0]].Encode()) + "\n"
				}
				t.Fatalf("seed %d input %q: defined program diverged\n%s\nsource:\n%s",
					seed, in, detail, p.Src)
			}
			if o.Results[0].Exit != vm.Exited {
				t.Fatalf("seed %d input %q: generated program crashed: %s\n%s",
					seed, in, o.Results[0].Exit, p.Src)
			}
		}
	}
}

// Printing a generated program and reparsing it must yield a program
// that prints identically (the AST printer is a fixed point after one
// round trip) — checked across the generator's whole output space.
func TestPrintParseRoundTripOnGenerated(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed)
		prog1 := parser.MustParse(p.Src)
		out1 := astPrint(prog1)
		prog2, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if out2 := astPrint(prog2); out1 != out2 {
			t.Fatalf("seed %d: print not a fixed point", seed)
		}
	}
}

// Sanitizers must also stay silent on defined programs.
func TestNoUBImpliesNoSanitizerReport(t *testing.T) {
	nSeeds := int64(25)
	if testing.Short() {
		nSeeds = 8
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		p := Generate(seed)
		info := sema.MustCheck(parser.MustParse(p.Src))
		for _, tool := range sanitizer.AllTools() {
			r, err := sanitizer.NewRunner(info, tool)
			if err != nil {
				t.Fatal(err)
			}
			_, rep := r.Run([]byte{1, 2, 3})
			if rep != nil {
				t.Fatalf("seed %d: %s false positive: %s\n%s", seed, tool, rep, p.Src)
			}
		}
	}
}
