// Package progen generates random *well-defined* MiniC programs — a
// Csmith-lite. Its purpose is the repository's central soundness
// property: a program with no undefined behaviour must produce
// bit-identical output under every compiler implementation, so
// CompDiff can never false-positive (the paper's Finding 5).
//
// The generator is therefore conservative by construction:
//
//   - all arithmetic that could overflow a signed type is performed on
//     masked operands (small value domains) or in unsigned types;
//   - divisions and remainders use divisors forced non-zero;
//   - shifts mask their counts to the operand width;
//   - every variable is initialized at declaration;
//   - array indexes are masked to the array length (power-of-two
//     sizes);
//   - pointers only ever point at single live objects and are never
//     compared relationally across objects, subtracted, or leaked to
//     the output;
//   - loops have bounded trip counts;
//   - no floating point (FP contraction legitimately changes defined
//     results across implementations);
//   - calls never nest two side-effecting arguments (argument
//     evaluation order is unspecified even without UB).
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Program is one generated self-contained MiniC source.
type Program struct {
	Seed int64
	Src  string
}

// Generate produces a deterministic random program for the seed.
func Generate(seed int64) *Program {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	return &Program{Seed: seed, Src: g.program()}
}

type varInfo struct {
	name     string
	unsigned bool
	isLong   bool
}

type arrInfo struct {
	name string
	size int // power of two
}

type gen struct {
	rng    *rand.Rand
	buf    strings.Builder
	indent int

	vars    []varInfo
	arrs    []arrInfo
	nameSeq int
	depth   int
	helpers int
}

func (g *gen) w(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteString("\n")
}

func (g *gen) fresh(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *gen) program() string {
	// A couple of pure helper functions over masked domains.
	nHelpers := 1 + g.rng.Intn(3)
	names := make([]string, nHelpers)
	for i := range names {
		names[i] = fmt.Sprintf("calc%d", i)
		g.w("int %s(int a, int b) {", names[i])
		g.indent++
		g.w("int r = ((a & 1023) * (b & 1023)) + (a & 255);")
		switch g.rng.Intn(3) {
		case 0:
			g.w("r = r ^ (b & 4095);")
		case 1:
			g.w("r = r + ((a >> (b & 7)) & 511);")
		default:
			g.w("r = r - (b & 2047);")
		}
		g.w("return r;")
		g.indent--
		g.w("}")
		g.w("")
	}
	g.helpers = nHelpers

	g.w("int main() {")
	g.indent++
	// Input-dependent state.
	g.w("char inbuf[32];")
	g.w("for (int i = 0; i < 32; i++) { inbuf[i] = 0; }")
	g.w("long inlen = read_input(inbuf, 32L);")
	g.w("int acc = (int)inlen;")
	g.vars = append(g.vars, varInfo{name: "acc"})

	nVars := 2 + g.rng.Intn(4)
	for i := 0; i < nVars; i++ {
		g.declareVar()
	}
	nArrs := 1 + g.rng.Intn(2)
	for i := 0; i < nArrs; i++ {
		g.declareArray()
	}

	nStmts := 4 + g.rng.Intn(8)
	for i := 0; i < nStmts; i++ {
		g.stmt()
	}

	// Output: every variable and a digest of every array.
	for _, v := range g.vars {
		switch {
		case v.isLong:
			g.w(`printf("%s=%%ld\n", %s);`, v.name, v.name)
		case v.unsigned:
			g.w(`printf("%s=%%u\n", %s);`, v.name, v.name)
		default:
			g.w(`printf("%s=%%d\n", %s);`, v.name, v.name)
		}
	}
	for _, a := range g.arrs {
		sum := g.fresh("sum")
		g.w("int %s = 0;", sum)
		g.w("for (int i = 0; i < %d; i++) { %s = %s + (%s[i] & 255); }", a.size, sum, sum, a.name)
		g.w(`printf("%s=%%d\n", %s);`, a.name, sum)
	}
	g.w("return (acc & 63);")
	g.indent--
	g.w("}")
	return g.buf.String()
}

func (g *gen) declareVar() {
	v := varInfo{name: g.fresh("v")}
	switch g.rng.Intn(4) {
	case 0:
		v.unsigned = true
		g.w("unsigned int %s = %dU;", v.name, g.rng.Intn(1<<16))
	case 1:
		v.isLong = true
		g.w("long %s = %dL;", v.name, g.rng.Intn(1<<20))
	default:
		g.w("int %s = %d;", v.name, g.rng.Intn(1<<12))
	}
	g.vars = append(g.vars, v)
}

func (g *gen) declareArray() {
	sizes := []int{4, 8, 16}
	a := arrInfo{name: g.fresh("arr"), size: sizes[g.rng.Intn(len(sizes))]}
	g.w("int %s[%d];", a.name, a.size)
	g.w("for (int i = 0; i < %d; i++) { %s[i] = (i * %d) & 8191; }", a.size, a.name, 1+g.rng.Intn(97))
	g.arrs = append(g.arrs, a)
}

// pickVar returns a random declared variable.
func (g *gen) pickVar() varInfo {
	return g.vars[g.rng.Intn(len(g.vars))]
}

// intExpr builds a side-effect-free expression with a bounded value
// domain. Using masked operands keeps every operation defined.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(1<<10))
		case 1:
			v := g.pickVar()
			return fmt.Sprintf("((int)%s & 4095)", v.name)
		default:
			if len(g.arrs) > 0 {
				a := g.arrs[g.rng.Intn(len(g.arrs))]
				idx := g.intExpr(0)
				return fmt.Sprintf("(%s[(%s) & %d] & 2047)", a.name, idx, a.size-1)
			}
			return fmt.Sprintf("(input_byte(%dL) & 127)", g.rng.Intn(8))
		}
	}
	x := g.intExpr(depth - 1)
	y := g.intExpr(depth - 1)
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("((%s) + (%s))", x, y) // both bounded << INT_MAX
	case 1:
		return fmt.Sprintf("((%s) - (%s))", x, y)
	case 2:
		return fmt.Sprintf("(((%s) & 1023) * ((%s) & 1023))", x, y)
	case 3:
		return fmt.Sprintf("((%s) / (((%s) & 15) + 1))", x, y)
	case 4:
		return fmt.Sprintf("((%s) %% (((%s) & 15) + 1))", x, y)
	case 5:
		return fmt.Sprintf("((%s) ^ (%s))", x, y)
	default:
		return fmt.Sprintf("((%s) << ((%s) & 7))", x, y) // operand masked small
	}
}

// cond builds a defined boolean expression.
func (g *gen) cond() string {
	x := g.intExpr(1)
	y := g.intExpr(1)
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("(%s) %s (%s)", x, ops[g.rng.Intn(len(ops))], y)
}

func (g *gen) stmt() {
	if g.depth > 2 {
		g.assign()
		return
	}
	switch g.rng.Intn(6) {
	case 0:
		g.assign()
	case 1: // if/else
		g.w("if (%s) {", g.cond())
		g.indent++
		g.depth++
		g.assign()
		if g.rng.Intn(2) == 0 {
			g.stmt()
		}
		g.depth--
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.depth++
			g.assign()
			g.depth--
			g.indent--
		}
		g.w("}")
	case 2: // bounded loop
		i := g.fresh("i")
		g.w("for (int %s = 0; %s < %d; %s++) {", i, i, 2+g.rng.Intn(14), i)
		g.indent++
		g.depth++
		g.assign()
		g.depth--
		g.indent--
		g.w("}")
	case 3: // array store
		if len(g.arrs) > 0 {
			a := g.arrs[g.rng.Intn(len(g.arrs))]
			g.w("%s[(%s) & %d] = (%s) & 8191;", a.name, g.intExpr(1), a.size-1, g.intExpr(1))
			return
		}
		g.assign()
	case 4: // helper call (single side-effect-free args)
		v := g.pickVar()
		h := g.rng.Intn(g.helpers)
		g.w("acc = acc ^ (calc%d((%s), (int)%s & 511) & 65535);", h, g.intExpr(1), v.name)
	default: // heap round trip
		p := g.fresh("p")
		g.w("int* %s = (int*)malloc(16L);", p)
		g.w("if (%s != 0) {", p)
		g.indent++
		g.w("%s[0] = (%s) & 4095;", p, g.intExpr(1))
		g.w("%s[1] = %s[0] + 7;", p, p)
		g.w("acc = acc + %s[1];", p)
		g.w("free(%s);", p)
		g.indent--
		g.w("}")
	}
}

// assign writes a defined assignment to a random variable.
func (g *gen) assign() {
	v := g.pickVar()
	e := g.intExpr(2)
	switch {
	case v.isLong:
		g.w("%s = (long)((%s) & 1048575);", v.name, e)
	case v.unsigned:
		g.w("%s = (unsigned int)(%s) * 2654435761U;", v.name, e)
	default:
		g.w("%s = (%s) & 1048575;", v.name, e)
	}
}
