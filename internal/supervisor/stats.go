package supervisor

// Farm-wide aggregation. Everything here is read back from the worker
// subtrees — plot.jsonl tails for live counters, checkpoint states
// for the deduplicated finding sets — so the numbers the control
// plane serves are exactly the numbers a post-mortem of the farm
// directory would compute, regardless of which workers are alive.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"

	"compdiff/internal/checkpoint"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// FarmStats is the /stats payload: the supervision view, the summed
// live telemetry, and the cross-worker deduplicated finding counts.
type FarmStats struct {
	Paused  bool           `json:"paused"`
	Workers []WorkerStatus `json:"workers"`
	// Merged sums the workers' latest telemetry snapshots. Its Unique*
	// fields are per-worker counts summed — an upper bound on the
	// deduplicated truth below.
	Merged telemetry.Snapshot `json:"merged"`
	// UniqueSignatures / UniqueBuckets are the farm-wide deduplicated
	// counts, computed by unioning the checkpointed signature and
	// bucket-key sets across workers.
	UniqueSignatures int `json:"unique_signatures"`
	UniqueBuckets    int `json:"unique_buckets"`
	// TotalDiffInputs / BucketTotal sum every worker's input counts.
	TotalDiffInputs int `json:"total_diff_inputs"`
	BucketTotal     int `json:"bucket_total"`
	// SpentExecs sums the durable per-worker watermarks.
	SpentExecs int64 `json:"spent_execs"`
}

// dedupEntry caches one worker's checkpoint-derived finding sets,
// keyed by manifest sequence number: the checkpoint only changes when
// Seq does, so /stats polls cost one manifest read per worker, not a
// full state decode.
type dedupEntry struct {
	seq         int
	signatures  []uint64
	diffCounts  []int
	buckets     []triage.BucketSnapshot
	diffTotal   int
	bucketTotal int
}

type dedupCache struct {
	entries map[string]*dedupEntry // keyed by worker root path
}

// workerCheckpoint returns the cached checkpoint view for the worker
// at dirs, refreshing it when the manifest sequence advanced. Workers
// without a checkpoint yet (or mid-rewrite corruption — the next
// barrier fixes it) are reported as nil and excluded from the union.
func (s *Supervisor) workerCheckpoint(dirs checkpoint.WorkerDirs) *dedupEntry {
	man, err := checkpoint.ReadManifest(dirs.Checkpoint)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	e := s.dedup.entries[dirs.Root]
	s.mu.Unlock()
	if e != nil && e.seq == man.Seq {
		return e
	}
	st, _, err := checkpoint.Load(dirs.Checkpoint)
	if err != nil {
		return nil
	}
	e = &dedupEntry{seq: man.Seq, diffTotal: st.DiffTotal, bucketTotal: st.BucketTotal, buckets: st.Buckets}
	for _, d := range st.Diffs {
		e.signatures = append(e.signatures, d.Signature)
		e.diffCounts = append(e.diffCounts, d.Count)
	}
	s.mu.Lock()
	s.dedup.entries[dirs.Root] = e
	s.mu.Unlock()
	return e
}

// listWorkerDirs enumerates every worker subtree on disk — including
// ones resharded away, whose findings still count.
func (s *Supervisor) listWorkerDirs() []checkpoint.WorkerDirs {
	idx, err := checkpoint.ListWorkers(s.cfg.Farm)
	if err != nil {
		return nil
	}
	out := make([]checkpoint.WorkerDirs, len(idx))
	for i, n := range idx {
		out[i] = checkpoint.WorkerLayout(s.cfg.Farm, n)
	}
	return out
}

// Stats assembles the farm-wide view.
func (s *Supervisor) Stats() FarmStats {
	fs := FarmStats{Paused: s.Paused(), Workers: s.Status()}

	var snaps []telemetry.Snapshot
	sigs := map[uint64]bool{}
	keys := map[uint64]bool{}
	dirs := s.listWorkerDirs()
	for _, d := range dirs {
		if snap, ok := lastPlotSnapshot(filepath.Join(d.Stats, "plot.jsonl")); ok {
			snaps = append(snaps, snap)
		}
		if e := s.workerCheckpoint(d); e != nil {
			for _, sig := range e.signatures {
				sigs[sig] = true
			}
			for _, b := range e.buckets {
				keys[b.Key] = true
			}
			fs.TotalDiffInputs += e.diffTotal
			fs.BucketTotal += e.bucketTotal
		}
	}
	fs.Merged = telemetry.MergeSnapshots(snaps...)
	fs.UniqueSignatures = len(sigs)
	fs.UniqueBuckets = len(keys)
	for _, w := range fs.Workers {
		fs.SpentExecs += w.SpentExecs
	}
	return fs
}

// FarmBucket is one row of the merged /buckets table.
type FarmBucket struct {
	Key     uint64 `json:"key"`
	Kind    string `json:"kind"`
	Count   int    `json:"count"`
	Workers int    `json:"workers"` // how many workers hit this bucket
}

// Buckets merges every worker's checkpointed bucket table by triage
// key, summing input counts; sorted by count descending then key.
func (s *Supervisor) Buckets() []FarmBucket {
	merged := map[uint64]*FarmBucket{}
	for _, d := range s.listWorkerDirs() {
		e := s.workerCheckpoint(d)
		if e == nil {
			continue
		}
		for _, b := range e.buckets {
			row := merged[b.Key]
			if row == nil {
				row = &FarmBucket{Key: b.Key, Kind: b.Fingerprint.Kind.String()}
				merged[b.Key] = row
			}
			row.Count += b.Count
			row.Workers++
		}
	}
	out := make([]FarmBucket, 0, len(merged))
	for _, r := range merged {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// FarmFinding is one row of the merged /findings table.
type FarmFinding struct {
	Signature uint64 `json:"signature"`
	Count     int    `json:"count"`
	Workers   int    `json:"workers"`
}

// Findings merges every worker's checkpointed unique-discrepancy set
// by signature, summing input counts.
func (s *Supervisor) Findings() []FarmFinding {
	merged := map[uint64]*FarmFinding{}
	for _, d := range s.listWorkerDirs() {
		e := s.workerCheckpoint(d)
		if e == nil {
			continue
		}
		for j, sig := range e.signatures {
			row := merged[sig]
			if row == nil {
				row = &FarmFinding{Signature: sig}
				merged[sig] = row
			}
			row.Count += e.diffCounts[j]
			row.Workers++
		}
	}
	out := make([]FarmFinding, 0, len(merged))
	for _, r := range merged {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// lastPlotSnapshot parses the final line of a plot.jsonl. Reads the
// whole file: plot files grow one line per barrier and stay small.
func lastPlotSnapshot(path string) (telemetry.Snapshot, bool) {
	var snap telemetry.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, false
	}
	data = bytes.TrimRight(data, "\n")
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		data = data[i+1:]
	}
	if len(data) == 0 || json.Unmarshal(data, &snap) != nil {
		return snap, false
	}
	return snap, true
}

// PlotTail returns the last n raw lines of worker index's plot.jsonl
// (all lines when n <= 0). Missing file → empty: the worker has not
// reached its first barrier.
func (s *Supervisor) PlotTail(index, n int) [][]byte {
	d := checkpoint.WorkerLayout(s.cfg.Farm, index)
	data, err := os.ReadFile(filepath.Join(d.Stats, "plot.jsonl"))
	if err != nil {
		return nil
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) == 1 && len(lines[0]) == 0 {
		return nil
	}
	if n > 0 && len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return lines
}
