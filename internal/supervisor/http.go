package supervisor

// HTTP control plane. Handler returns a mux the CLI mounts on the
// -serve address:
//
//	GET  /healthz            liveness + fleet summary
//	GET  /stats              merged telemetry + supervision view
//	GET  /plot?worker=N&n=K  tail of worker N's plot.jsonl (raw JSONL)
//	GET  /buckets            cross-worker merged triage buckets
//	GET  /findings           cross-worker merged unique discrepancies
//	GET  /events?since=S     lifecycle events after watermark S
//	POST /pause              drain workers at their barriers and park
//	POST /resume             unpark
//	POST /reshard?workers=N  drain, then relaunch with N workers
//
// Everything is JSON; mutations are POST-only so a crawling browser
// cannot pause a farm.

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler builds the control-plane mux.
func (s *Supervisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/plot", s.handlePlot)
	mux.HandleFunc("/buckets", s.handleBuckets)
	mux.HandleFunc("/findings", s.handleFindings)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/pause", s.handlePause)
	mux.HandleFunc("/resume", s.handleResume)
	mux.HandleFunc("/reshard", s.handleReshard)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed (mutations are POST)", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (s *Supervisor) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	st := s.Status()
	counts := map[string]int{}
	for _, ws := range st {
		counts[ws.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"paused":  s.Paused(),
		"workers": len(st),
		"states":  counts,
	})
}

func (s *Supervisor) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Supervisor) handlePlot(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	worker, err := queryInt(r, "worker", 0)
	if err != nil {
		http.Error(w, "bad worker parameter", http.StatusBadRequest)
		return
	}
	n, err := queryInt(r, "n", 32)
	if err != nil {
		http.Error(w, "bad n parameter", http.StatusBadRequest)
		return
	}
	lines := s.PlotTail(worker, n)
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, line := range lines {
		w.Write(line)
		w.Write([]byte("\n"))
	}
}

func (s *Supervisor) handleBuckets(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	b := s.Buckets()
	writeJSON(w, http.StatusOK, map[string]any{"unique": len(b), "buckets": b})
}

func (s *Supervisor) handleFindings(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	f := s.Findings()
	writeJSON(w, http.StatusOK, map[string]any{"unique": len(f), "findings": f})
}

func (s *Supervisor) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	since, err := queryInt(r, "since", 0)
	if err != nil {
		http.Error(w, "bad since parameter", http.StatusBadRequest)
		return
	}
	events, gap := s.Events(int64(since))
	next := int64(since)
	if len(events) > 0 {
		next = events[len(events)-1].Seq
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": events, "gap": gap, "next_since": next})
}

func (s *Supervisor) handlePause(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.Pause()
	writeJSON(w, http.StatusOK, map[string]any{"paused": true})
}

func (s *Supervisor) handleResume(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	s.Resume()
	writeJSON(w, http.StatusOK, map[string]any{"paused": false})
}

func (s *Supervisor) handleReshard(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	n, err := queryInt(r, "workers", -1)
	if err != nil || n < 1 {
		http.Error(w, "reshard needs ?workers=N with N >= 1", http.StatusBadRequest)
		return
	}
	if err := s.Reshard(n); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": n})
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}
