package supervisor

// Lifecycle event log with sequence-number watermarks. Every state
// transition the supervisor performs — spawn, exit, restart, backoff,
// give-up, pause, resume, reshard, replay-gap — is appended with a
// monotonic Seq. Consumers (the /events endpoint, the e2e smoke)
// poll with a since-watermark; the log is a bounded ring, so a slow
// consumer is told about the gap instead of silently missing events.

import (
	"sync"
	"time"
)

// Event kinds. FarmWorker (-1) marks farm-level events.
const (
	EventSpawn     = "spawn"      // worker process started
	EventExit      = "exit"       // worker process exited
	EventReplayGap = "replay-gap" // unclean exit lost execs past the durable watermark
	EventBackoff   = "backoff"    // restart delayed by exponential backoff
	EventRestart   = "restart"    // worker restarting after an exit
	EventGiveUp    = "give-up"    // restart intensity exceeded; worker abandoned
	EventDone      = "done"       // worker completed its budget
	EventPause     = "pause"      // farm paused (workers drain at barriers)
	EventResume    = "resume"     // farm resumed
	EventReshard   = "reshard"    // worker count changed
	EventStop      = "stop"       // farm shutting down
)

// FarmWorker is the Worker value for events about the farm as a whole.
const FarmWorker = -1

// Event is one supervisor lifecycle transition.
type Event struct {
	Seq    int64  `json:"seq"`
	UnixMs int64  `json:"unix_ms"`
	Worker int    `json:"worker"` // worker index, or FarmWorker
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// eventLog is a fixed-capacity ring of recent events. Seq never
// resets, so a reader holding a watermark can detect eviction: if the
// oldest retained event is more than one past the watermark, events
// were lost to the ring bound.
type eventLog struct {
	mu   sync.Mutex
	buf  []Event
	seq  int64
	size int
}

func newEventLog(size int) *eventLog {
	if size < 1 {
		size = 1
	}
	return &eventLog{size: size}
}

func (l *eventLog) add(worker int, kind, detail string) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev := Event{Seq: l.seq, UnixMs: time.Now().UnixMilli(), Worker: worker, Kind: kind, Detail: detail}
	l.buf = append(l.buf, ev)
	if len(l.buf) > l.size {
		l.buf = l.buf[len(l.buf)-l.size:]
	}
	return ev
}

// since returns the retained events with Seq > watermark, plus
// whether any events in (watermark, first-retained) were evicted.
func (l *eventLog) since(watermark int64) (events []Event, gap bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := 0
	for lo < len(l.buf) && l.buf[lo].Seq <= watermark {
		lo++
	}
	events = append(events, l.buf[lo:]...)
	if len(l.buf) > 0 && l.buf[0].Seq > watermark+1 {
		gap = true
	} else if len(l.buf) == 0 && l.seq > watermark {
		gap = true
	}
	return events, gap
}
