package supervisor

// Control-plane handler tests over a synthetic farm: worker subtrees
// with hand-written checkpoints and plot files, so the merge and
// dedup arithmetic is exact, plus method/parameter enforcement.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff/internal/checkpoint"
	"compdiff/internal/core"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// synthWorker lays out worker index under farm with a checkpoint
// holding the given findings and a plot.jsonl of the given snapshots.
func synthWorker(t *testing.T, farm string, index int, spent int64, diffs []*core.StoredDiff, buckets []triage.BucketSnapshot, snaps ...telemetry.Snapshot) {
	t.Helper()
	dirs, err := checkpoint.EnsureWorker(farm, index)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := checkpoint.NewSaver(dirs.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	dt, bt := 0, 0
	for _, d := range diffs {
		dt += d.Count
	}
	for _, b := range buckets {
		bt += b.Count
	}
	st := &checkpoint.State{OptionsHash: 0xfa4e, SpentExecs: spent,
		Diffs: diffs, DiffTotal: dt, Buckets: buckets, BucketTotal: bt}
	if err := sv.Save(st); err != nil {
		t.Fatal(err)
	}
	var plot strings.Builder
	for _, s := range snaps {
		line, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		plot.Write(line)
		plot.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dirs.Stats, "plot.jsonl"), []byte(plot.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestControlPlaneMergesSyntheticFarm(t *testing.T) {
	farm := t.TempDir()
	bucket := func(key uint64, kind triage.Kind, count int) triage.BucketSnapshot {
		return triage.BucketSnapshot{Key: key, Fingerprint: triage.Fingerprint{Kind: kind}, Count: count}
	}
	// Worker 0 and worker 1 overlap on signature 0xaa and bucket 0x1:
	// the dedup union must count them once, the totals must sum.
	synthWorker(t, farm, 0, 600,
		[]*core.StoredDiff{{Signature: 0xaa, Count: 3}, {Signature: 0xbb, Count: 1}},
		[]triage.BucketSnapshot{bucket(0x1, triage.KindRuntime, 3), bucket(0x2, triage.KindICE, 1)},
		telemetry.Snapshot{UnixMs: 100, ElapsedMs: 2000, Execs: 1200, OK: 1190, Diff: 10, UniqueDiffs: 2, Queue: 7},
		telemetry.Snapshot{UnixMs: 200, ElapsedMs: 4000, Execs: 2400, OK: 2380, Diff: 20, UniqueDiffs: 2, Queue: 9})
	synthWorker(t, farm, 1, 400,
		[]*core.StoredDiff{{Signature: 0xaa, Count: 2}, {Signature: 0xcc, Count: 5}},
		[]triage.BucketSnapshot{bucket(0x1, triage.KindRuntime, 2)},
		telemetry.Snapshot{UnixMs: 150, ElapsedMs: 1000, Execs: 600, OK: 595, Diff: 5, UniqueDiffs: 2, Queue: 3})

	s, err := New(Config{Farm: farm, Workers: 2, Command: fakeCommand("fail", 0, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Paused  bool   `json:"paused"`
	}
	getJSON(t, srv.URL+"/healthz", &health)
	if health.Status != "ok" || health.Paused {
		t.Fatalf("healthz = %+v", health)
	}

	var stats FarmStats
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Merged.Execs != 3000 {
		t.Fatalf("merged execs = %d, want 2400+600", stats.Merged.Execs)
	}
	if stats.Merged.Queue != 12 {
		t.Fatalf("merged queue = %d, want 9+3 (latest lines only)", stats.Merged.Queue)
	}
	if stats.UniqueSignatures != 3 {
		t.Fatalf("unique signatures = %d, want 3 (aa shared)", stats.UniqueSignatures)
	}
	if stats.UniqueBuckets != 2 {
		t.Fatalf("unique buckets = %d, want 2 (0x1 shared)", stats.UniqueBuckets)
	}
	if stats.Merged.UniqueDiffs != 4 {
		t.Fatalf("summed per-worker unique diffs = %d, want 4 (the pre-dedup upper bound)", stats.Merged.UniqueDiffs)
	}
	if stats.TotalDiffInputs != 11 || stats.BucketTotal != 6 {
		t.Fatalf("totals = %d/%d, want 11/6", stats.TotalDiffInputs, stats.BucketTotal)
	}

	var findings struct {
		Unique   int           `json:"unique"`
		Findings []FarmFinding `json:"findings"`
	}
	getJSON(t, srv.URL+"/findings", &findings)
	if findings.Unique != 3 {
		t.Fatalf("findings unique = %d", findings.Unique)
	}
	// 0xcc has the highest merged count (5), then 0xaa (3+2 = 5 ties,
	// smaller signature first... 0xaa < 0xcc with equal counts).
	if findings.Findings[0].Signature != 0xaa || findings.Findings[0].Count != 5 || findings.Findings[0].Workers != 2 {
		t.Fatalf("top finding = %+v", findings.Findings[0])
	}

	var buckets struct {
		Unique  int          `json:"unique"`
		Buckets []FarmBucket `json:"buckets"`
	}
	getJSON(t, srv.URL+"/buckets", &buckets)
	if buckets.Unique != 2 {
		t.Fatalf("buckets unique = %d", buckets.Unique)
	}
	if b := buckets.Buckets[0]; b.Key != 0x1 || b.Count != 5 || b.Workers != 2 || b.Kind != "runtime" {
		t.Fatalf("top bucket = %+v", b)
	}
	if b := buckets.Buckets[1]; b.Key != 0x2 || b.Kind != "ice" {
		t.Fatalf("second bucket = %+v", b)
	}

	// /plot tails raw JSONL. Worker 0 has two lines; n=1 keeps the last.
	resp, err := http.Get(srv.URL + "/plot?worker=0&n=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Fatalf("plot tail has %d lines", len(lines))
	}
	var tail telemetry.Snapshot
	if err := json.Unmarshal([]byte(lines[0]), &tail); err != nil {
		t.Fatal(err)
	}
	if tail.Execs != 2400 {
		t.Fatalf("plot tail execs = %d", tail.Execs)
	}
	// A worker with no plot yet streams nothing, not an error.
	resp, err = http.Get(srv.URL + "/plot?worker=9")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("missing plot: %d %q", resp.StatusCode, body)
	}
}

func TestControlPlaneMutationsAndMethods(t *testing.T) {
	s, err := New(Config{Farm: t.TempDir(), Workers: 1, Command: fakeCommand("fail", 0, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Mutations are POST-only.
	for _, path := range []string{"/pause", "/resume", "/reshard?workers=2"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
	// Reads reject POST.
	resp, err := http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats = %d, want 405", resp.StatusCode)
	}

	post := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("/pause"); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /pause = %d", resp.StatusCode)
	}
	if !s.Paused() {
		t.Fatal("pause did not take")
	}
	var health struct {
		Paused bool `json:"paused"`
	}
	getJSON(t, srv.URL+"/healthz", &health)
	if !health.Paused {
		t.Fatal("healthz does not reflect pause")
	}
	if resp := post("/resume"); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /resume = %d", resp.StatusCode)
	}
	if s.Paused() {
		t.Fatal("resume did not take")
	}

	// Reshard parameter validation, and conflict before Start.
	if resp := post("/reshard"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /reshard without workers = %d, want 400", resp.StatusCode)
	}
	if resp := post("/reshard?workers=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /reshard?workers=0 = %d, want 400", resp.StatusCode)
	}
	if resp := post("/reshard?workers=2"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /reshard before Start = %d, want 409", resp.StatusCode)
	}

	// Events: watermark arithmetic over the supervisor's own log.
	s.events.add(0, EventSpawn, "pid 1")
	s.events.add(0, EventExit, "exit 0, spent 0")
	var events struct {
		Events    []Event `json:"events"`
		Gap       bool    `json:"gap"`
		NextSince int64   `json:"next_since"`
	}
	getJSON(t, srv.URL+"/events", &events)
	// The pause/resume above also logged farm events.
	if len(events.Events) < 2 || events.Gap {
		t.Fatalf("events = %+v", events)
	}
	if events.NextSince != events.Events[len(events.Events)-1].Seq {
		t.Fatalf("next_since = %d", events.NextSince)
	}
	getJSON(t, srv.URL+fmt.Sprintf("/events?since=%d", events.NextSince), &events)
	if len(events.Events) != 0 || events.Gap {
		t.Fatalf("caught-up events = %+v", events)
	}
	resp, err = http.Get(srv.URL + "/events?since=junk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", resp.StatusCode)
	}
}
