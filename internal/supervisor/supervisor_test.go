package supervisor

// Process-level supervision tests using the helper-process pattern:
// the test binary re-execs itself as a scriptable fake worker
// (SUPERVISOR_FAKE_WORKER=1) that speaks the real hand-off protocol —
// checkpoint manifests for the durable watermark, heartbeats for the
// live one, SIGTERM-drain for pause — without the cost of a real
// fuzzing campaign.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"testing"
	"time"

	"compdiff/internal/checkpoint"
	"compdiff/internal/difffuzz"
	"compdiff/internal/telemetry"
)

func TestMain(m *testing.M) {
	if os.Getenv("SUPERVISOR_FAKE_WORKER") == "1" {
		os.Exit(fakeWorker())
	}
	os.Exit(m.Run())
}

// fakeWorker simulates one supervised worker: every interval it
// advances its spent-exec counter by one step (a "barrier"), writes a
// heartbeat, and checkpoints every second barrier — so a crash
// between checkpoints leaves the live watermark ahead of the durable
// one, exactly like a kill -9 mid-campaign. SIGTERM drains: save and
// exit 0. Modes: "run" (to completion), "fail" (exit 1 at once),
// "crash-at" (exit 1 once spent reaches FAKE_CRASH_AT, after the
// heartbeat but before the checkpoint).
func fakeWorker() int {
	mode := os.Getenv("FAKE_MODE")
	if mode == "fail" {
		return 1
	}
	total, _ := strconv.ParseInt(os.Getenv("FAKE_TOTAL"), 10, 64)
	step, _ := strconv.ParseInt(os.Getenv("FAKE_STEP"), 10, 64)
	intervalMs, _ := strconv.Atoi(os.Getenv("FAKE_INTERVAL_MS"))
	crashAt, _ := strconv.ParseInt(os.Getenv("FAKE_CRASH_AT"), 10, 64)
	ckDir := os.Getenv("FAKE_CHECKPOINT")
	hbPath := os.Getenv("FAKE_HEARTBEAT")

	sv, err := checkpoint.NewSaver(ckDir)
	if err != nil {
		return 1
	}
	spent := int64(0)
	if man, err := checkpoint.ReadManifest(ckDir); err == nil {
		spent = man.SpentExecs
	}
	save := func() {
		_ = sv.Save(&checkpoint.State{OptionsHash: 0xfa4e, SpentExecs: spent})
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	barrier := 0
	for spent < total {
		select {
		case <-time.After(time.Duration(intervalMs) * time.Millisecond):
		case <-sig:
			save()
			return 0
		}
		spent += step
		barrier++
		_ = telemetry.WriteHeartbeat(hbPath, telemetry.Heartbeat{
			Pid: os.Getpid(), UnixMs: time.Now().UnixMilli(),
			Seq: int64(barrier), SpentExecs: spent,
		})
		if mode == "crash-at" && spent >= crashAt && spent < total {
			return 1 // heartbeat written, checkpoint (maybe) behind
		}
		if barrier%2 == 0 {
			save()
		}
	}
	save()
	return 0
}

// fakeCommand builds a Command factory that re-execs this test binary
// as a fake worker.
func fakeCommand(mode string, total, step int64, intervalMs int, extra ...string) func(int, checkpoint.WorkerDirs) *exec.Cmd {
	return func(index int, dirs checkpoint.WorkerDirs) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"SUPERVISOR_FAKE_WORKER=1",
			"FAKE_MODE="+mode,
			"FAKE_CHECKPOINT="+dirs.Checkpoint,
			"FAKE_HEARTBEAT="+dirs.Heartbeat,
			fmt.Sprintf("FAKE_TOTAL=%d", total),
			fmt.Sprintf("FAKE_STEP=%d", step),
			fmt.Sprintf("FAKE_INTERVAL_MS=%d", intervalMs),
		)
		cmd.Env = append(cmd.Env, extra...)
		return cmd
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func allIn(states []WorkerStatus, want string) bool {
	for _, ws := range states {
		if ws.State != want {
			return false
		}
	}
	return len(states) > 0
}

func TestSupervisorRunsFleetToCompletion(t *testing.T) {
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 2, TotalExecs: 600,
		Command: fakeCommand("run", 600, 200, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "both workers done", func() bool { return allIn(s.Status(), StateDone) })

	for _, ws := range s.Status() {
		if ws.SpentExecs != 600 {
			t.Fatalf("worker %d spent %d, want 600", ws.Index, ws.SpentExecs)
		}
		if ws.Restarts != 0 {
			t.Fatalf("worker %d restarted %d times during a clean run", ws.Index, ws.Restarts)
		}
	}
	if fs := s.Stats(); fs.SpentExecs != 1200 {
		t.Fatalf("farm spent %d, want 1200", fs.SpentExecs)
	}
	events, gap := s.Events(0)
	if gap {
		t.Fatal("event ring reported a gap from watermark 0")
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[EventSpawn] != 2 || kinds[EventDone] != 2 {
		t.Fatalf("event kinds = %v, want 2 spawns and 2 dones", kinds)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorRestartsKilledWorker is the acceptance property in
// miniature: kill -9 a worker mid-campaign; the supervisor restarts
// it from its checkpoint, reports the replay gap between the
// heartbeat and durable watermarks, and the fleet still converges to
// the full budget.
func TestSupervisorRestartsKilledWorker(t *testing.T) {
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 1, TotalExecs: 2000,
		Command: fakeCommand("run", 2000, 100, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it make some durable progress, then kill -9.
	waitFor(t, 10*time.Second, "first checkpoint", func() bool { return s.Status()[0].SpentExecs > 0 })
	var pid int
	waitFor(t, 5*time.Second, "running pid", func() bool { pid = s.Status()[0].Pid; return pid > 0 })
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 15*time.Second, "worker done after kill", func() bool { return s.Status()[0].State == StateDone })
	ws := s.Status()[0]
	if ws.Restarts < 1 {
		t.Fatalf("killed worker was not restarted: %+v", ws)
	}
	if ws.SpentExecs != 2000 {
		t.Fatalf("fleet converged to %d execs, want the full 2000", ws.SpentExecs)
	}
	events, _ := s.Events(0)
	var sawExit, sawRestart bool
	for _, ev := range events {
		switch ev.Kind {
		case EventExit:
			sawExit = true
		case EventRestart:
			sawRestart = true
		}
	}
	if !sawExit || !sawRestart {
		t.Fatalf("missing exit/restart events: %+v", events)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorReportsReplayGap: a crash after a heartbeat but
// before the next checkpoint must surface as a replay-gap event and a
// nonzero ReplayExecs — the "at most one sync interval lost" bound
// made visible.
func TestSupervisorReportsReplayGap(t *testing.T) {
	// Checkpoints land on even barriers (200, 400, ...); crashing at
	// spent=300 leaves heartbeat 300 vs durable 200.
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 1, TotalExecs: 1000,
		Command: fakeCommand("crash-at", 1000, 100, 5, "FAKE_CRASH_AT=300"),
		Policy:  Policy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var gapEv *Event
	waitFor(t, 10*time.Second, "replay-gap event", func() bool {
		events, _ := s.Events(0)
		for i := range events {
			if events[i].Kind == EventReplayGap {
				gapEv = &events[i]
				return true
			}
		}
		return false
	})
	if gapEv.Worker != 0 {
		t.Fatalf("replay gap attributed to worker %d", gapEv.Worker)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After the drain, the durable watermark kept everything up to the
	// last checkpoint; nothing before it was lost.
	if ws := s.Status()[0]; ws.SpentExecs < 200 {
		t.Fatalf("durable watermark regressed: %+v", ws)
	}
}

// TestSupervisorGivesUpOnCrashLoop: a worker that dies instantly
// without progress must hit the restart-intensity limit and be
// abandoned — with backoff events in between — not restarted forever.
func TestSupervisorGivesUpOnCrashLoop(t *testing.T) {
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 1, TotalExecs: 1000,
		Command: fakeCommand("fail", 0, 0, 0),
		Policy:  Policy{MaxRestarts: 3, Window: time.Minute, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker abandoned", func() bool { return s.Status()[0].State == StateFailed })

	ws := s.Status()[0]
	if ws.Restarts != 3 {
		t.Fatalf("worker restarted %d times before give-up, want 3", ws.Restarts)
	}
	events, _ := s.Events(0)
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[EventGiveUp] != 1 {
		t.Fatalf("want exactly one give-up event, got %v", kinds)
	}
	if kinds[EventBackoff] == 0 {
		t.Fatal("no backoff events before give-up")
	}
	// Backoff must grow: each consecutive no-progress exit doubles it.
	var delays []string
	for _, ev := range events {
		if ev.Kind == EventBackoff {
			delays = append(delays, ev.Detail)
		}
	}
	if len(delays) >= 2 && delays[0] == delays[1] {
		t.Fatalf("backoff did not grow: %v", delays)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorPauseResume: Pause drains every worker at a barrier
// (SIGTERM → checkpoint → exit 0) and parks the monitors; Resume
// relaunches from the checkpoints with no durable progress lost.
func TestSupervisorPauseResume(t *testing.T) {
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 2, TotalExecs: 100000,
		Command: fakeCommand("run", 100000, 50, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "workers running with progress", func() bool {
		st := s.Status()
		return allIn(st, StateRunning) && st[0].SpentExecs+st[1].SpentExecs > 0
	})

	s.Pause()
	waitFor(t, 10*time.Second, "workers parked", func() bool { return allIn(s.Status(), StatePaused) })
	spentAtPause := s.Status()[0].SpentExecs + s.Status()[1].SpentExecs
	if spentAtPause == 0 {
		t.Fatal("drain lost all durable progress")
	}
	for _, ws := range s.Status() {
		if ws.Pid != 0 {
			t.Fatalf("paused worker still has a live pid: %+v", ws)
		}
	}
	// Parked means parked: no new spawns while paused.
	evBefore, _ := s.Events(0)
	time.Sleep(100 * time.Millisecond)
	evAfter, _ := s.Events(0)
	if len(evAfter) != len(evBefore) {
		t.Fatalf("events while paused: %+v", evAfter[len(evBefore):])
	}

	s.Resume()
	waitFor(t, 10*time.Second, "workers running again past pause point", func() bool {
		st := s.Status()
		return allIn(st, StateRunning) && st[0].SpentExecs+st[1].SpentExecs >= spentAtPause
	})
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorReshard: resharding drains the fleet at barriers and
// relaunches with the new width; kept workers resume their own
// checkpoints (durable watermark preserved).
func TestSupervisorReshard(t *testing.T) {
	farm := t.TempDir()
	s, err := New(Config{
		Farm: farm, Workers: 1, TotalExecs: 100000,
		Command: fakeCommand("run", 100000, 50, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "worker progress", func() bool { return s.Status()[0].SpentExecs > 0 })
	spentBefore := s.Status()[0].SpentExecs

	if err := s.Reshard(2); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if len(st) != 2 {
		t.Fatalf("resharded fleet has %d workers, want 2", len(st))
	}
	if st[0].SpentExecs < spentBefore {
		t.Fatalf("worker 0 lost durable progress across reshard: %d < %d", st[0].SpentExecs, spentBefore)
	}
	waitFor(t, 10*time.Second, "both workers running", func() bool { return allIn(s.Status(), StateRunning) })
	waitFor(t, 10*time.Second, "new worker progress", func() bool { return s.Status()[1].SpentExecs > 0 })

	if err := s.Reshard(0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Findings/stats still see both subtrees after any future shrink:
	// the layout enumerates the farm directory, not the live fleet.
	if got, _ := checkpoint.ListWorkers(farm); len(got) != 2 {
		t.Fatalf("farm has %d worker subtrees, want 2", len(got))
	}
}

// TestSupervisorStopEscalates: a worker that ignores SIGTERM is
// SIGKILLed once the drain deadline passes, and Stop reports it.
func TestSupervisorStopEscalates(t *testing.T) {
	s, err := New(Config{
		Farm: t.TempDir(), Workers: 1, TotalExecs: 100000,
		Command: func(index int, dirs checkpoint.WorkerDirs) *exec.Cmd {
			// A worker that traps-and-ignores SIGTERM and never exits.
			cmd := exec.Command("/bin/sh", "-c", "trap '' TERM; while true; do sleep 0.05; done")
			return cmd
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "worker running", func() bool { return s.Status()[0].Pid > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := s.Stop(ctx); err == nil {
		t.Fatal("Stop returned nil despite an unkillable-by-TERM worker")
	}
	if st := s.Status()[0].State; st != StateStopped {
		t.Fatalf("worker state after escalated stop = %s", st)
	}
}

// TestWorkerSeedDistinctFromShardSeeds pins the collision freedom the
// farm depends on: worker i's base seed must differ from every shard
// seed worker 0 derives, or two processes would fuzz identically.
func TestWorkerSeedDistinctFromShardSeeds(t *testing.T) {
	const base = 7
	if WorkerSeed(base, 0) != base {
		t.Fatal("worker 0 must keep the farm seed verbatim")
	}
	seen := map[int64]string{}
	for w := 0; w < 16; w++ {
		ws := WorkerSeed(base, w)
		if prev, dup := seen[ws]; dup {
			t.Fatalf("worker %d seed collides with %s", w, prev)
		}
		seen[ws] = fmt.Sprintf("worker %d", w)
		// Every shard seed derived from every worker seed must also be
		// globally unique.
		for sh := 1; sh < 8; sh++ {
			ss := difffuzz.ShardSeed(ws, sh)
			if prev, dup := seen[ss]; dup {
				t.Fatalf("worker %d shard %d seed collides with %s", w, sh, prev)
			}
			seen[ss] = fmt.Sprintf("worker %d shard %d", w, sh)
		}
	}
}

func TestEventLogRingAndGap(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.add(0, EventSpawn, fmt.Sprintf("pid %d", i))
	}
	// Watermark far behind the ring: only the retained tail comes
	// back, flagged as gapped.
	events, gap := l.since(2)
	if !gap {
		t.Fatal("eviction not reported as a gap")
	}
	if len(events) != 4 || events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("retained tail = %+v", events)
	}
	// Watermark at the ring edge: contiguous, no gap.
	events, gap = l.since(6)
	if gap || len(events) != 4 {
		t.Fatalf("contiguous read: gap=%v events=%d", gap, len(events))
	}
	// Fully caught up.
	events, gap = l.since(10)
	if gap || len(events) != 0 {
		t.Fatalf("caught-up read: gap=%v events=%d", gap, len(events))
	}
}
