// Package supervisor runs a fleet of fuzzing worker processes under
// one farm root, in the style of an Erlang supervision tree: each
// worker is spawned, watched, and — on any exit short of its budget —
// restarted from its own crash-safe checkpoint, subject to a restart
// intensity limit and exponential backoff. The checkpoint protocol is
// the whole recovery story: a worker killed at any instant (including
// kill -9) resumes from its last synchronization barrier and loses at
// most one barrier interval of work, which the supervisor quantifies
// by reconciling the worker's live heartbeat watermark against its
// durable manifest watermark.
//
// The supervisor never parses worker stdout and holds no fuzzing
// state of its own; everything it reports ( /stats, /buckets,
// /findings ) is read back from the per-worker subtrees that
// checkpoint.WorkerLayout lays out, so the control plane observes
// exactly what a post-mortem of the farm directory would.
package supervisor

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"compdiff/internal/checkpoint"
	"compdiff/internal/telemetry"
)

// Worker states, in the order a healthy worker moves through them.
const (
	StateStarting = "starting"
	StateRunning  = "running"
	StateBackoff  = "backoff"
	StatePaused   = "paused"
	StateDone     = "done"    // budget complete
	StateFailed   = "failed"  // restart intensity exceeded; abandoned
	StateStopped  = "stopped" // supervisor shut down or resharded away
)

// Policy bounds worker restarts. A worker that keeps dying is
// restarted with exponentially growing delays, and abandoned outright
// once it has been restarted MaxRestarts times within Window — the
// Erlang restart-intensity rule, applied per worker (one hopeless
// worker must not take the farm down with it).
type Policy struct {
	// MaxRestarts within Window before the worker is abandoned.
	MaxRestarts int
	// Window is the sliding restart-intensity window.
	Window time.Duration
	// BackoffBase is the delay before the first retry after an exit
	// with no durable progress; it doubles per consecutive no-progress
	// exit, capped at BackoffMax. An exit that advanced the durable
	// watermark resets the backoff — the worker is making progress,
	// restart it immediately.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// DefaultPolicy tolerates crash loops for about a minute before
// giving up on a worker.
func DefaultPolicy() Policy {
	return Policy{MaxRestarts: 8, Window: time.Minute, BackoffBase: 100 * time.Millisecond, BackoffMax: 10 * time.Second}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = d.MaxRestarts
	}
	if p.Window <= 0 {
		p.Window = d.Window
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = d.BackoffMax
	}
	return p
}

// Config describes a farm.
type Config struct {
	// Farm is the root directory; workers live under Farm/workers/.
	Farm string
	// Workers is the initial fleet size.
	Workers int
	// TotalExecs is each worker's cumulative per-shard execution
	// budget. A worker whose durable checkpoint watermark reaches it is
	// done; any exit before that is a restart candidate. Zero means
	// run-to-clean-exit: exit 0 is done, anything else restarts.
	TotalExecs int64
	// Command builds worker index's process. The command must treat
	// dirs as its private subtree: checkpoint in dirs.Checkpoint,
	// telemetry in dirs.Stats, heartbeat at dirs.Heartbeat. Stdout and
	// stderr are captured to dirs.Log by the supervisor.
	Command func(index int, dirs checkpoint.WorkerDirs) *exec.Cmd
	Policy  Policy
	// EventLogSize bounds the lifecycle-event ring (default 256).
	EventLogSize int
}

// WorkerSeed derives worker index's base fuzzer seed from the farm
// seed. Worker 0 keeps the farm seed verbatim (a one-worker farm
// explores exactly like a single supervised process), and the mixing
// deliberately differs from difffuzz.ShardSeed — worker i's base seed
// must not collide with worker 0's shard-i seed, or two processes
// would explore identical trajectories.
func WorkerSeed(base int64, index int) int64 {
	if index == 0 {
		return base
	}
	z := uint64(base) ^ 0xd1342543de82ef95
	z += 0x2545f4914f6cdd1d * uint64(index)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// WorkerStatus is one worker's supervision snapshot.
type WorkerStatus struct {
	Index    int    `json:"index"`
	State    string `json:"state"`
	Pid      int    `json:"pid,omitempty"`
	Restarts int    `json:"restarts"`
	// SpentExecs is the durable watermark from the worker's checkpoint
	// manifest — progress that survives any crash.
	SpentExecs int64 `json:"spent_execs"`
	// ReplayExecs is the gap between the heartbeat (live) watermark
	// and the durable one at the last exit: work the restarted process
	// re-executes. Bounded by one checkpoint interval.
	ReplayExecs   int64  `json:"replay_execs,omitempty"`
	LastExit      string `json:"last_exit,omitempty"`
	NextRestartMs int64  `json:"next_restart_unix_ms,omitempty"`
}

type worker struct {
	index int
	dirs  checkpoint.WorkerDirs
	gen   int

	state        string
	pid          int
	cmd          *exec.Cmd
	restarts     []time.Time // restart times inside the intensity window
	restartCount int
	consecStalls int // consecutive exits with no durable progress
	spent        int64
	replay       int64
	lastExit     string
	nextRestart  time.Time
}

// Supervisor owns the fleet. All exported methods are safe for
// concurrent use (the HTTP control plane calls them from handler
// goroutines).
type Supervisor struct {
	cfg    Config
	policy Policy
	events *eventLog

	mu       sync.Mutex
	cond     *sync.Cond
	workers  []*worker
	gen      int
	wg       *sync.WaitGroup
	wake     chan struct{}
	paused   bool
	stopping bool
	started  bool

	dedup dedupCache
}

// New validates the configuration. Start launches the fleet.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Farm == "" {
		return nil, fmt.Errorf("supervisor: empty farm directory")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("supervisor: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.Command == nil {
		return nil, fmt.Errorf("supervisor: nil Command factory")
	}
	size := cfg.EventLogSize
	if size <= 0 {
		size = 256
	}
	s := &Supervisor{cfg: cfg, policy: cfg.Policy.withDefaults(), events: newEventLog(size), wake: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.dedup.entries = map[string]*dedupEntry{}
	return s, nil
}

// Start launches the fleet. Workers whose directories already hold
// checkpoints resume from them — restarting a farm is the same
// operation as restarting a worker.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("supervisor: already started")
	}
	if err := s.startWorkersLocked(s.cfg.Workers); err != nil {
		return err
	}
	s.started = true
	return nil
}

// startWorkersLocked builds the worker records for the current
// generation and launches their monitors. Caller holds s.mu.
func (s *Supervisor) startWorkersLocked(n int) error {
	workers := make([]*worker, n)
	for i := 0; i < n; i++ {
		dirs, err := checkpoint.EnsureWorker(s.cfg.Farm, i)
		if err != nil {
			return err
		}
		spent := int64(0)
		if man, err := checkpoint.ReadManifest(dirs.Checkpoint); err == nil {
			spent = man.SpentExecs
		}
		workers[i] = &worker{index: i, dirs: dirs, gen: s.gen, state: StateStarting, spent: spent}
	}
	s.workers = workers
	s.wg = &sync.WaitGroup{}
	for _, w := range workers {
		s.wg.Add(1)
		go s.monitor(w, s.wg)
	}
	return nil
}

// monitor is worker w's supervision loop: park while paused, spawn,
// wait, reconcile watermarks, classify the exit, and either finish or
// restart under the policy. One goroutine per worker per generation.
func (s *Supervisor) monitor(w *worker, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		s.mu.Lock()
		for s.paused && !s.stopping && w.gen == s.gen {
			w.state = StatePaused
			s.cond.Wait()
		}
		if s.stopping || w.gen != s.gen {
			w.state = StateStopped
			s.mu.Unlock()
			return
		}
		w.state = StateStarting
		spentAtStart := w.spent
		s.mu.Unlock()

		cmd := s.cfg.Command(w.index, w.dirs)
		logf, err := os.OpenFile(w.dirs.Log, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			cmd.Stdout, cmd.Stderr = logf, logf
		}
		startErr := cmd.Start()
		if logf != nil {
			logf.Close() // the child holds its own descriptor now
		}
		if startErr == nil {
			s.mu.Lock()
			w.cmd, w.pid, w.state = cmd, cmd.Process.Pid, StateRunning
			drain := s.stopping || s.paused || w.gen != s.gen
			s.mu.Unlock()
			s.events.add(w.index, EventSpawn, fmt.Sprintf("pid %d", cmd.Process.Pid))
			if drain {
				// Stop/Pause/Reshard raced with the spawn and their SIGTERM
				// sweeps missed this brand-new pid; re-deliver.
				_ = cmd.Process.Signal(syscall.SIGTERM)
			}
			startErr = cmd.Wait()
		}

		// Reconcile the watermarks: the manifest is the durable truth,
		// the heartbeat is how far the dead process had actually gotten.
		durable := int64(0)
		if man, err := checkpoint.ReadManifest(w.dirs.Checkpoint); err == nil {
			durable = man.SpentExecs
		}
		live := durable
		if hb, err := telemetry.ReadHeartbeat(w.dirs.Heartbeat); err == nil && hb.SpentExecs > live {
			live = hb.SpentExecs
		}

		s.mu.Lock()
		w.cmd, w.pid = nil, 0
		w.spent, w.replay = durable, live-durable
		w.lastExit = describeExit(startErr)
		paused, stopping, genOK := s.paused, s.stopping, w.gen == s.gen
		s.mu.Unlock()
		s.events.add(w.index, EventExit, fmt.Sprintf("%s, spent %d", w.lastExit, durable))
		if live > durable {
			s.events.add(w.index, EventReplayGap,
				fmt.Sprintf("heartbeat %d vs checkpoint %d: %d execs replay on restart", live, durable, live-durable))
		}

		if s.cfg.TotalExecs > 0 && durable >= s.cfg.TotalExecs ||
			s.cfg.TotalExecs == 0 && startErr == nil && !paused && !stopping && genOK {
			s.setState(w, StateDone)
			s.events.add(w.index, EventDone, fmt.Sprintf("spent %d", durable))
			return
		}
		if stopping || !genOK {
			s.setState(w, StateStopped)
			return
		}
		if paused {
			continue // park at the top of the loop
		}

		// Restart path: intensity check, then backoff.
		now := time.Now()
		s.mu.Lock()
		if durable > spentAtStart {
			w.consecStalls = 0
		} else {
			w.consecStalls++
		}
		live2 := w.restarts[:0]
		for _, t := range w.restarts {
			if now.Sub(t) < s.policy.Window {
				live2 = append(live2, t)
			}
		}
		w.restarts = live2
		if len(w.restarts) >= s.policy.MaxRestarts {
			w.state = StateFailed
			s.mu.Unlock()
			s.events.add(w.index, EventGiveUp,
				fmt.Sprintf("%d restarts within %s", s.policy.MaxRestarts, s.policy.Window))
			return
		}
		w.restarts = append(w.restarts, now)
		w.restartCount++
		var delay time.Duration
		if w.consecStalls > 0 {
			delay = s.policy.BackoffBase << uint(w.consecStalls-1)
			if delay > s.policy.BackoffMax || delay <= 0 {
				delay = s.policy.BackoffMax
			}
			w.state = StateBackoff
			w.nextRestart = now.Add(delay)
		}
		wake := s.wake
		s.mu.Unlock()

		if delay > 0 {
			s.events.add(w.index, EventBackoff, fmt.Sprintf("%s (stall %d)", delay, w.consecStalls))
			select {
			case <-time.After(delay):
			case <-wake:
			}
		}
		s.events.add(w.index, EventRestart, fmt.Sprintf("restart %d", w.restartCount))
	}
}

func (s *Supervisor) setState(w *worker, state string) {
	s.mu.Lock()
	w.state = state
	s.mu.Unlock()
}

func describeExit(err error) string {
	if err == nil {
		return "exit 0"
	}
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return fmt.Sprintf("signal %s", ws.Signal())
		}
		return fmt.Sprintf("exit %d", ee.ExitCode())
	}
	return err.Error()
}

// signalAllLocked delivers sig to every live worker process.
func (s *Supervisor) signalAllLocked(sig syscall.Signal) {
	for _, w := range s.workers {
		if w.cmd != nil && w.cmd.Process != nil {
			_ = w.cmd.Process.Signal(sig)
		}
	}
}

// wakeAllLocked interrupts backoff sleeps.
func (s *Supervisor) wakeAllLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Pause drains the farm: every worker receives SIGTERM, stops at its
// next synchronization barrier, checkpoints, and exits; monitors park
// instead of restarting. No work is lost — Resume (or a whole new
// supervisor) picks up from the checkpoints.
func (s *Supervisor) Pause() {
	s.mu.Lock()
	if s.paused || s.stopping {
		s.mu.Unlock()
		return
	}
	s.paused = true
	s.signalAllLocked(syscall.SIGTERM)
	s.wakeAllLocked()
	s.mu.Unlock()
	s.events.add(FarmWorker, EventPause, "draining at barriers")
}

// Resume unparks a paused farm.
func (s *Supervisor) Resume() {
	s.mu.Lock()
	if !s.paused || s.stopping {
		s.mu.Unlock()
		return
	}
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
	s.events.add(FarmWorker, EventResume, "")
}

// Reshard drains the fleet at its barriers, then relaunches with n
// workers. Shrinking strands no findings: surplus worker directories
// stay on disk and the control plane keeps merging them; growing
// starts fresh workers alongside resumed ones. Blocks until the old
// generation has fully drained and the new one is launched.
func (s *Supervisor) Reshard(n int) error {
	if n < 1 {
		return fmt.Errorf("supervisor: need at least one worker, got %d", n)
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return fmt.Errorf("supervisor: stopping")
	}
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("supervisor: not started")
	}
	old := len(s.workers)
	s.gen++
	s.signalAllLocked(syscall.SIGTERM)
	s.cond.Broadcast()
	s.wakeAllLocked()
	wg := s.wg
	s.mu.Unlock()

	// Old-generation monitors observe the bump — parked ones via the
	// broadcast, running ones at their worker's drain exit — and
	// return; a paused farm reshards parked.
	wg.Wait()

	s.mu.Lock()
	err := s.startWorkersLocked(n)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.events.add(FarmWorker, EventReshard, fmt.Sprintf("%d -> %d workers", old, n))
	return nil
}

// Stop shuts the farm down: SIGTERM everything (drain at barriers),
// wait for the monitors, and past the context deadline escalate to
// SIGKILL — which is safe, that is what the checkpoints are for.
func (s *Supervisor) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.stopping {
		wg := s.wg
		s.mu.Unlock()
		wg.Wait()
		return nil
	}
	s.stopping = true
	s.signalAllLocked(syscall.SIGTERM)
	s.cond.Broadcast()
	s.wakeAllLocked()
	wg := s.wg
	s.mu.Unlock()
	s.events.add(FarmWorker, EventStop, "")

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.signalAllLocked(syscall.SIGKILL)
		s.mu.Unlock()
		<-done
		return fmt.Errorf("supervisor: drain deadline exceeded, workers killed (checkpoints hold their progress)")
	}
}

// Paused reports whether the farm is draining/parked.
func (s *Supervisor) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// Status snapshots every worker's supervision state. The in-memory
// watermark only advances at exits, so for live workers the durable
// watermark is re-read from the checkpoint manifest — Status always
// reports progress a crash could not lose.
func (s *Supervisor) Status() []WorkerStatus {
	s.mu.Lock()
	out := make([]WorkerStatus, len(s.workers))
	dirs := make([]checkpoint.WorkerDirs, len(s.workers))
	for i, w := range s.workers {
		ws := WorkerStatus{
			Index: w.index, State: w.state, Pid: w.pid, Restarts: w.restartCount,
			SpentExecs: w.spent, ReplayExecs: w.replay, LastExit: w.lastExit,
		}
		if w.state == StateBackoff {
			ws.NextRestartMs = w.nextRestart.UnixMilli()
		}
		out[i] = ws
		dirs[i] = w.dirs
	}
	s.mu.Unlock()
	for i := range out {
		if man, err := checkpoint.ReadManifest(dirs[i].Checkpoint); err == nil && man.SpentExecs > out[i].SpentExecs {
			out[i].SpentExecs = man.SpentExecs
		}
	}
	return out
}

// Events returns the retained lifecycle events after the watermark,
// and whether older ones were evicted from the ring.
func (s *Supervisor) Events(since int64) ([]Event, bool) {
	return s.events.since(since)
}
