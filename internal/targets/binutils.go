package targets

// Binary-file analyzers: objdump, readelf, nm-new, sysdump, openssl,
// ClamAV, libzip.

// objdump: prints object addresses instead of values in two dump
// paths (the paper's "printing pointer address instead of value"
// Misc bug), plus a heap overflow in the section-name copier.
func objdump() *Target {
	src := `
void dump_symtab(char* buf, long n) {
    printf("symtab anchor %ld entries %ld\n", (long)buf, n);
}

void dump_reloc(char* buf, long n) {
    char* cursor = buf + (n & 7);
    printf("reloc cursor %ld\n", (long)cursor);
}

void copy_section_name(char* buf, long n) {
    char* name = (char*)malloc(8L);
    char* next = (char*)malloc(8L);
    if (name == 0 || next == 0) { return; }
    for (int i = 0; i < 7; i++) { next[i] = (char)(97 + i); }
    next[7] = '\0';
    memset(name, 0, 8L);
    long take = n;
    if (take > 40) { take = 40; }
    for (long i = 0; i < take; i++) { name[i] = buf[i]; }
    printf("section %s neighbor %s\n", name, next);
    free(name);
    free(next);
}

int main() {
    char buf[64];
    long n = read_input(buf, 64L);
    if (n < 2) { printf("objdump: empty object\n"); return 0; }
    if (buf[0] == 'Y') { dump_symtab(buf + 1, n - 1); return 0; }
    if (buf[0] == 'L') { dump_reloc(buf + 1, n - 1); return 0; }
    if (buf[0] == 'N') { copy_section_name(buf + 1, n - 1); return 0; }
    printf("format elf%d\n", buf[1] & 1);
    return 0;
}
`
	return &Target{
		Name: "objdump", InputType: "Binary file", Version: "2.36.1", PaperKLoC: 74,
		Src:   src,
		Seeds: [][]byte{[]byte("\x7fE"), []byte("N12345")},
		Bugs: []Bug{
			{ID: "objdump-misc-symtabptr", Cat: Misc, Trigger: []byte("Y\x01"), San: NoSan},
			{ID: "objdump-misc-relocptr", Cat: Misc, Trigger: []byte("L\x01"), San: NoSan},
			{ID: "objdump-mem-sectionname", Cat: MemError, Trigger: append([]byte("N"), seqBytes(44)...), San: ByASan},
		},
	}
}

// readelf: the paper's Listing 2 pointer comparison between two
// unrelated section objects, a multi-line __LINE__ diagnostic, and a
// print-only uninitialized ABI field.
func readelf() *Target {
	src := `
void display_debug_frames(char* buf, long n) {
    char section_a[24];
    char section_b[32];
    for (int i = 0; i < 24; i++) { section_a[i] = (char)(65 + i % 26); }
    for (int i = 0; i < 32; i++) { section_b[i] = (char)(97 + i % 26); }
    char* saved_start = section_a;
    char* look_for = section_b;
    if (n > 1) { saved_start = section_a + (n & 7); }
    if (look_for <= saved_start) {
        printf("augmentation before cie\n");
    } else {
        printf("cie before augmentation\n");
    }
}

void display_header(char* buf, long n) {
    if (n < 4) {
        printf("readelf: header truncated at line %d\n",
            __LINE__);
        return;
    }
    printf("class %d data %d\n", buf[0] & 3, buf[1] & 3);
}

void display_abi(char* buf, long n) {
    int abiversion;
    if (n >= 8) { abiversion = buf[7]; }
    printf("abi version %d\n", abiversion);
}

int main() {
    char buf[64];
    long n = read_input(buf, 64L);
    if (n < 1) { printf("readelf: no file\n"); return 0; }
    if (buf[0] == 'F') { display_debug_frames(buf + 1, n - 1); return 0; }
    if (buf[0] == 'H') { display_header(buf + 1, n - 1); return 0; }
    if (buf[0] == 'B') { display_abi(buf + 1, n - 1); return 0; }
    printf("not an ELF file\n");
    return 0;
}
`
	return &Target{
		Name: "readelf", InputType: "Binary file", Version: "2.36.1", PaperKLoC: 72,
		Src:   src,
		Seeds: [][]byte{[]byte("H\x01\x02\x03\x04"), []byte("B\x01\x02\x03\x04\x05\x06\x07\x08")},
		Bugs: []Bug{
			{ID: "readelf-ptrcmp-frames", Cat: PointerCmp, Trigger: []byte("F\x01"), San: NoSan},
			{ID: "readelf-line-header", Cat: Line, Trigger: []byte("H\x01"), San: NoSan},
			{ID: "readelf-uninit-abi", Cat: UninitMem, Trigger: []byte("B\x01"), San: NoSan},
		},
	}
}

// nm-new: two uninitialized symbol attributes that decide output
// branches, plus a raw-clock "profiling" line.
func nmNew() *Target {
	src := `
void classify_symbol(char* buf, long n) {
    int binding;
    if (n >= 3) { binding = buf[2] & 3; }
    if ((binding & 1) == 1) { printf("W weak %d\n", binding & 255); }
    else { printf("T text %d\n", binding & 255); }
}

void size_symbol(char* buf, long n) {
    long size;
    if (n >= 5) { size = buf[3] * 256 + buf[4]; }
    if ((size & 1L) == 1L) { printf("odd object %ld\n", size & 4095L); }
    else { printf("even object %ld\n", size & 4095L); }
}

void profile_pass(long n) {
    printf("pass finished t=%ld symbols=%ld\n", time_now(), n);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("nm: no symbols\n"); return 0; }
    if (buf[0] == 'C') { classify_symbol(buf + 1, n - 1); return 0; }
    if (buf[0] == 'Z') { size_symbol(buf + 1, n - 1); return 0; }
    if (buf[0] == 'P') { profile_pass(n); return 0; }
    printf("symbols %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "nm-new", InputType: "Binary file", Version: "2.36.1", PaperKLoC: 55,
		Src:   src,
		Seeds: [][]byte{[]byte("C\x01\x02\x03"), []byte("xyz")},
		Bugs: []Bug{
			{ID: "nm-uninit-binding", Cat: UninitMem, Trigger: []byte("C\x01"), San: ByMSan},
			{ID: "nm-uninit-size", Cat: UninitMem, Trigger: []byte("Z\x01\x02"), San: ByMSan},
			{ID: "nm-misc-profile", Cat: Misc, Trigger: []byte("P"), San: NoSan},
		},
	}
}

// sysdump: a use-after-free on the record buffer, an uninitialized
// record checksum, and a session-id line derived from the clock.
func sysdump() *Target {
	src := `
void dump_record(char* buf, long n) {
    char* rec = (char*)malloc(16L);
    if (rec == 0) { return; }
    for (int i = 0; i < 15; i++) { rec[i] = (char)(48 + i % 10); }
    rec[15] = '\0';
    free(rec);
    char* scratch = (char*)malloc(16L);
    if (scratch == 0) { return; }
    for (int i = 0; i < 15; i++) { scratch[i] = (char)(65 + i % 26); }
    scratch[15] = '\0';
    printf("record %c%c len %ld\n", rec[0], rec[1], n);
    free(scratch);
}

void check_record(char* buf, long n) {
    int checksum;
    if (n >= 4) { checksum = buf[1] + buf[2] + buf[3]; }
    if ((checksum & 1) == 1) { printf("checksum odd %d\n", checksum & 1023); }
    else { printf("checksum even %d\n", checksum & 1023); }
}

void session_banner(long n) {
    printf("sysdump session %ld records %ld\n", time_now() & 4095L, n);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("sysdump: nothing to dump\n"); return 0; }
    if (buf[0] == 'D') { dump_record(buf + 1, n - 1); return 0; }
    if (buf[0] == 'K') { check_record(buf + 1, n - 1); return 0; }
    if (buf[0] == 'S') { session_banner(n); return 0; }
    printf("unknown record %d\n", buf[0]);
    return 0;
}
`
	return &Target{
		Name: "sysdump", InputType: "Binary file", Version: "2.36.1", PaperKLoC: 10,
		Src:   src,
		Seeds: [][]byte{[]byte("K\x01\x02\x03\x04"), []byte("q")},
		Bugs: []Bug{
			{ID: "sysdump-mem-uafrecord", Cat: MemError, Trigger: []byte("D\x01"), San: ByASan},
			{ID: "sysdump-uninit-checksum", Cat: UninitMem, Trigger: []byte("K\x01"), San: ByMSan},
			{ID: "sysdump-misc-session", Cat: Misc, Trigger: []byte("S"), San: NoSan},
		},
	}
}

// openssl: a length computation that overflows 32-bit arithmetic
// before widening, two uninitialized handshake fields, and a session
// ticket stamped with the raw clock.
func openssl() *Target {
	src := `
void compute_payload(char* buf, long n) {
    if (n < 2) { printf("payload short\n"); return; }
    int records = buf[0] * 131072;
    int recsize = buf[1] * 4096;
    long total = records * recsize;
    printf("payload bytes %ld\n", total);
}

void handshake_state(char* buf, long n) {
    int cipher;
    if (n >= 6) { cipher = buf[5]; }
    if ((cipher & 1) == 1) { printf("cipher modern %d\n", cipher & 255); }
    else { printf("cipher legacy %d\n", cipher & 255); }
}

void verify_depth(char* buf, long n) {
    int depth;
    if (n >= 3 && buf[2] != 0) { depth = buf[2] & 15; }
    if ((depth & 1) == 1) { printf("chain deep %d\n", depth & 31); }
    else { printf("chain shallow %d\n", depth & 31); }
}

void session_ticket(long n) {
    printf("ticket issued %ld lifetime %ld\n", time_now(), n * 300L);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("openssl: no input\n"); return 0; }
    if (buf[0] == 'P') { compute_payload(buf + 1, n - 1); return 0; }
    if (buf[0] == 'H') { handshake_state(buf + 1, n - 1); return 0; }
    if (buf[0] == 'V') { verify_depth(buf + 1, n - 1); return 0; }
    if (buf[0] == 'T') { session_ticket(n); return 0; }
    printf("protocol %d\n", buf[0] & 3);
    return 0;
}
`
	return &Target{
		Name: "openssl", InputType: "Binary file", Version: "3.0.0", PaperKLoC: 702,
		Src:   src,
		Seeds: [][]byte{[]byte("P\x01\x01"), []byte("H\x01\x02\x03\x04\x05\x06")},
		Bugs: []Bug{
			{ID: "openssl-int-payload", Cat: IntError, Trigger: []byte("P\xc8\xc8"), San: ByUBSan},
			{ID: "openssl-uninit-cipher", Cat: UninitMem, Trigger: []byte("H\x01\x02"), San: ByMSan},
			{ID: "openssl-uninit-depth", Cat: UninitMem, Trigger: []byte("V\x01\x02\x00"), San: ByMSan},
			{ID: "openssl-misc-ticket", Cat: Misc, Trigger: []byte("T"), San: NoSan},
		},
	}
}

// ClamAV: two memory errors in signature matching (heap overflow and
// use-after-free of the pattern cache) and an uninitialized verdict.
func clamav() *Target {
	src := `
void scan_signature(char* buf, long n) {
    char* sig = (char*)malloc(12L);
    char* db = (char*)malloc(8L);
    if (sig == 0 || db == 0) { return; }
    for (int i = 0; i < 7; i++) { db[i] = (char)(48 + i); }
    db[7] = '\0';
    long take = n;
    if (take > 40) { take = 40; }
    for (long i = 0; i < take; i++) { sig[i] = buf[i]; }
    printf("sig %c%c db %s\n", sig[0], sig[1], db);
    free(sig);
    free(db);
}

void cache_lookup(char* buf, long n) {
    int* cache = (int*)malloc(16L);
    if (cache == 0) { return; }
    cache[0] = 7777;
    free(cache);
    int* fresh = (int*)malloc(16L);
    if (fresh == 0) { return; }
    fresh[0] = (int)n * 3;
    printf("cache head %d fresh %d\n", cache[0], fresh[0]);
    free(fresh);
}

void verdict(char* buf, long n) {
    int infected;
    if (n >= 4) { infected = (buf[3] & 1); }
    if ((infected & 1) == 1) { printf("FOUND %d\n", infected & 15); }
    else { printf("OK %d\n", infected & 15); }
}

int main() {
    char buf[56];
    long n = read_input(buf, 56L);
    if (n < 1) { printf("clamscan: empty file\n"); return 0; }
    if (buf[0] == 'G') { scan_signature(buf + 1, n - 1); return 0; }
    if (buf[0] == 'C') { cache_lookup(buf + 1, n - 1); return 0; }
    if (buf[0] == 'V') { verdict(buf + 1, n - 1); return 0; }
    printf("scanned %ld bytes\n", n);
    return 0;
}
`
	return &Target{
		Name: "ClamAV", InputType: "Binary file", Version: "0.103.3", PaperKLoC: 239,
		Src:   src,
		Seeds: [][]byte{[]byte("V\x01\x02\x03\x04"), []byte("data")},
		Bugs: []Bug{
			{ID: "clamav-mem-sigoverflow", Cat: MemError, Trigger: append([]byte("G"), seqBytes(44)...), San: ByASan},
			{ID: "clamav-mem-cacheuaf", Cat: MemError, Trigger: []byte("C\x01"), San: ByASan},
			{ID: "clamav-uninit-verdict", Cat: UninitMem, Trigger: []byte("V\x01"), San: ByMSan},
		},
	}
}

// libzip: central-directory parsing with a heap overflow, an
// out-of-bounds comment read, an uninitialized compression method,
// and an archive mtime taken from the clock.
func libzip() *Target {
	src := `
void read_central_dir(char* buf, long n) {
    char* entry = (char*)malloc(10L);
    char* names = (char*)malloc(8L);
    if (entry == 0 || names == 0) { return; }
    for (int i = 0; i < 7; i++) { names[i] = (char)(65 + i); }
    names[7] = '\0';
    long take = n;
    if (take > 38) { take = 38; }
    for (long i = 0; i < take; i++) { entry[i] = buf[i]; }
    printf("entry %c names %s\n", entry[0], names);
    free(entry);
    free(names);
}

void read_comment(char* buf, long n) {
    char* comment = (char*)malloc(16L);
    if (comment == 0) { return; }
    for (int i = 0; i < 15; i++) { comment[i] = (char)(97 + i % 26); }
    comment[15] = '\0';
    long off = 10 + (n & 31);
    printf("comment tail %d\n", comment[off]);
    free(comment);
}

void entry_method(char* buf, long n) {
    int method;
    if (n >= 3) { method = buf[2] & 7; }
    if ((method & 1) == 0) { printf("stored %d\n", method & 15); }
    else { printf("deflated %d\n", method & 15); }
}

void stamp_archive(long n) {
    printf("archive mtime %ld entries %ld\n", time_now(), n);
}

int main() {
    char buf[56];
    long n = read_input(buf, 56L);
    if (n < 2) { printf("libzip: not an archive\n"); return 0; }
    if (buf[0] == 'D') { read_central_dir(buf + 1, n - 1); return 0; }
    if (buf[0] == 'O') { read_comment(buf + 1, n - 1); return 0; }
    if (buf[0] == 'M') { entry_method(buf + 1, n - 1); return 0; }
    if (buf[0] == 'W') { stamp_archive(n); return 0; }
    printf("local header %d%d\n", buf[0] & 1, buf[1] & 1);
    return 0;
}
`
	return &Target{
		Name: "libzip", InputType: "Compress tool", Version: "v1.8.0", PaperKLoC: 29,
		Src:   src,
		Seeds: [][]byte{[]byte("M\x01\x02\x03"), []byte("PK")},
		Bugs: []Bug{
			{ID: "libzip-mem-centraldir", Cat: MemError, Trigger: append([]byte("D"), seqBytes(42)...), San: ByASan},
			{ID: "libzip-mem-comment", Cat: MemError, Trigger: []byte("O\x01\x02\x03\x04\x05\x06\x07\x08\x09"), San: ByASan},
			{ID: "libzip-uninit-method", Cat: UninitMem, Trigger: []byte("M\x01"), San: ByMSan},
			{ID: "libzip-misc-mtime", Cat: Misc, Trigger: []byte("W\x01"), San: NoSan},
		},
	}
}
