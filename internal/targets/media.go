package targets

// Media decoders: libsndfile, brotli, pdftotext, pdftoppm, exiv2,
// libtiff, ImageMagick, grok, gpac.

// libsndfile: frame-count arithmetic that overflows before widening, a
// heap overflow in the channel map, and a resampler coefficient whose
// fused-multiply-add rounding differs per implementation.
func libsndfile() *Target {
	src := `
void count_frames(char* buf, long n) {
    if (n < 2) { printf("wav short\n"); return; }
    int rate = buf[0] * 262144;
    int chans = buf[1] * 2048;
    long frames = rate * chans;
    printf("frames %ld\n", frames);
}

void channel_map(char* buf, long n) {
    char* map = (char*)malloc(6L);
    char* order = (char*)malloc(8L);
    if (map == 0 || order == 0) { return; }
    for (int i = 0; i < 7; i++) { order[i] = (char)(49 + i); }
    order[7] = '\0';
    long take = n;
    if (take > 36) { take = 36; }
    for (long i = 0; i < take; i++) { map[i] = buf[i]; }
    printf("map %c order %s\n", map[0], order);
    free(map);
    free(order);
}

void resample(char* buf, long n) {
    double ratio = 0.1;
    double gain = (double)(buf[0] & 7) + 10.0;
    double acc = 0.0 - 1.0;
    double coeff = ratio * gain + acc;
    printf("coeff %.17f\n", coeff * 1000000000000000.0);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("sndfile: no audio\n"); return 0; }
    if (buf[0] == 'F') { count_frames(buf + 1, n - 1); return 0; }
    if (buf[0] == 'C') { channel_map(buf + 1, n - 1); return 0; }
    if (buf[0] == 'R' && n >= 2) { resample(buf + 1, n - 1); return 0; }
    printf("riff %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "libsndfile", InputType: "Audio", Version: "1.0.31", PaperKLoC: 66,
		Src:   src,
		Seeds: [][]byte{[]byte("F\x01\x01"), []byte("riff")},
		Bugs: []Bug{
			{ID: "sndfile-int-frames", Cat: IntError, Trigger: []byte("F\xd0\xd0"), San: ByUBSan},
			{ID: "sndfile-mem-chanmap", Cat: MemError, Trigger: append([]byte("C"), seqBytes(40)...), San: ByASan},
			{ID: "sndfile-misc-resample", Cat: Misc, Trigger: []byte("R\x00"), San: NoSan},
		},
	}
}

// brotli: the paper's confirmed floating-point bug — FP imprecision
// feeding the compressor's internal state — plus a window-size
// overflow before widening.
func brotli() *Target {
	src := `
void estimate_ratio(char* buf, long n) {
    double bits = 0.1;
    double symbols = (double)((buf[0] & 15) + 10);
    double bias = 0.0 - 1.0;
    double state = bits * symbols + bias;
    long bucket = (long)(state * 100000000000000000.0);
    if (bucket > 0L) { printf("ratio bucket %ld\n", bucket); } else { printf("dense %ld\n", bucket); }
}

void window_size(char* buf, long n) {
    if (n < 2) { printf("window default\n"); return; }
    int lgwin = buf[0] * 524288;
    int blocks = buf[1] * 8192;
    long need = lgwin * blocks;
    printf("window bytes %ld\n", need);
}

int main() {
    char buf[40];
    long n = read_input(buf, 40L);
    if (n < 1) { printf("brotli: empty stream\n"); return 0; }
    if (buf[0] == 'Q' && n >= 2) { estimate_ratio(buf + 1, n - 1); return 0; }
    if (buf[0] == 'W') { window_size(buf + 1, n - 1); return 0; }
    printf("stream %ld bytes\n", n);
    return 0;
}
`
	return &Target{
		Name: "brotli", InputType: "Compress tool", Version: "v1.0.9", PaperKLoC: 55,
		Src:   src,
		Seeds: [][]byte{[]byte("W\x00\x01"), []byte("data")},
		Bugs: []Bug{
			{ID: "brotli-misc-fpstate", Cat: Misc, Trigger: []byte("Q\x00"), San: NoSan},
			{ID: "brotli-int-window", Cat: IntError, Trigger: []byte("W\xc0\xc0"), San: ByUBSan},
		},
	}
}

// pdftotext: a glyph-table overflow, two uninitialized text-state
// fields, and a document-id derived from the clock.
func pdftotext() *Target {
	src := `
void extract_glyphs(char* buf, long n) {
    char* glyphs = (char*)malloc(9L);
    char* widths = (char*)malloc(8L);
    if (glyphs == 0 || widths == 0) { return; }
    for (int i = 0; i < 7; i++) { widths[i] = (char)(48 + i); }
    widths[7] = '\0';
    long take = n;
    if (take > 42) { take = 42; }
    for (long i = 0; i < take; i++) { glyphs[i] = buf[i]; }
    printf("glyph %c widths %s\n", glyphs[0], widths);
    free(glyphs);
    free(widths);
}

void text_state(char* buf, long n) {
    int fontsize;
    if (n >= 4) { fontsize = buf[3] & 63; }
    if ((fontsize & 1) == 1) { printf("italic pt %d\n", fontsize & 127); }
    else { printf("roman pt %d\n", fontsize & 127); }
}

void char_spacing(char* buf, long n) {
    int spacing;
    if (n >= 5 && buf[4] != 0) { spacing = buf[4]; }
    if ((spacing & 1) == 0) { printf("spacing even %d\n", spacing & 255); }
    else { printf("spacing odd %d\n", spacing & 255); }
}

void doc_id(long n) {
    printf("docid %ld pages %ld\n", time_now() & 65535L, n);
}

int main() {
    char buf[56];
    long n = read_input(buf, 56L);
    if (n < 1) { printf("pdftotext: not a pdf\n"); return 0; }
    if (buf[0] == 'G') { extract_glyphs(buf + 1, n - 1); return 0; }
    if (buf[0] == 'X') { text_state(buf + 1, n - 1); return 0; }
    if (buf[0] == 'S') { char_spacing(buf + 1, n - 1); return 0; }
    if (buf[0] == 'I') { doc_id(n); return 0; }
    printf("%%PDF %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "pdftotext", InputType: "PDF", Version: "4.03", PaperKLoC: 130,
		Src:   src,
		Seeds: [][]byte{[]byte("X\x01\x02\x03\x0c"), []byte("%PDF")},
		Bugs: []Bug{
			{ID: "pdftotext-mem-glyphs", Cat: MemError, Trigger: append([]byte("G"), seqBytes(44)...), San: ByASan},
			{ID: "pdftotext-uninit-fontsize", Cat: UninitMem, Trigger: []byte("X\x01\x02"), San: ByMSan},
			{ID: "pdftotext-uninit-spacing", Cat: UninitMem, Trigger: []byte("S\x01\x02\x03\x00"), San: ByMSan},
			{ID: "pdftotext-misc-docid", Cat: Misc, Trigger: []byte("I"), San: NoSan},
		},
	}
}

// pdftoppm: a scanline buffer overflow, an uninitialized gamma, and a
// bitmap dimension overflow before widening.
func pdftoppm() *Target {
	src := `
void render_scanline(char* buf, long n) {
    char* line = (char*)malloc(11L);
    char* palette = (char*)malloc(8L);
    if (line == 0 || palette == 0) { return; }
    for (int i = 0; i < 7; i++) { palette[i] = (char)(65 + i); }
    palette[7] = '\0';
    long take = n;
    if (take > 44) { take = 44; }
    for (long i = 0; i < take; i++) { line[i] = buf[i]; }
    printf("line %c palette %s\n", line[0], palette);
    free(line);
    free(palette);
}

void apply_gamma(char* buf, long n) {
    int gamma;
    if (n >= 3) { gamma = buf[2] & 31; }
    if ((gamma & 1) == 0) { printf("gamma even %d\n", gamma & 63); }
    else { printf("gamma odd %d\n", gamma & 63); }
}

void bitmap_size(char* buf, long n) {
    if (n < 2) { printf("dims missing\n"); return; }
    int width = buf[0] * 98304;
    int height = buf[1] * 24576;
    long pixels = width * height;
    printf("pixels %ld\n", pixels);
}

int main() {
    char buf[56];
    long n = read_input(buf, 56L);
    if (n < 1) { printf("pdftoppm: not a pdf\n"); return 0; }
    if (buf[0] == 'L') { render_scanline(buf + 1, n - 1); return 0; }
    if (buf[0] == 'A') { apply_gamma(buf + 1, n - 1); return 0; }
    if (buf[0] == 'Z') { bitmap_size(buf + 1, n - 1); return 0; }
    printf("ppm P%d\n", (buf[0] & 3) + 1);
    return 0;
}
`
	return &Target{
		Name: "pdftoppm", InputType: "PDF", Version: "21.11.0", PaperKLoC: 203,
		Src:   src,
		Seeds: [][]byte{[]byte("A\x01\x02\x03"), []byte("Z\x00\x01")},
		Bugs: []Bug{
			{ID: "pdftoppm-mem-scanline", Cat: MemError, Trigger: append([]byte("L"), seqBytes(46)...), San: ByASan},
			{ID: "pdftoppm-uninit-gamma", Cat: UninitMem, Trigger: []byte("A\x01"), San: ByMSan},
			{ID: "pdftoppm-int-bitmap", Cat: IntError, Trigger: []byte("Z\xe0\xe0"), San: ByUBSan},
		},
	}
}

// exiv2: three uninitialized-read bugs in maker-note printers, the
// paper's Listing 4 shape: the value is only parsed when the field is
// present, then printed regardless — all three invisible to MSan.
func exiv2() *Target {
	src := `
void print_0x000c(char* buf, long n) {
    int l;
    if (n >= 2 && buf[1] != 0) { l = buf[1] * 7; }
    printf("serial %d\n", (l & 65535) >> 1);
}

void print_0x0095(char* buf, long n) {
    int lens;
    if (n >= 3 && buf[2] != 0) { lens = buf[2] + 100; }
    printf("lens id %d\n", lens & 4095);
}

void print_0x00b4(char* buf, long n) {
    int wb;
    if (n >= 4 && buf[3] != 0) { wb = buf[3] & 15; }
    printf("white balance %d\n", wb & 255);
}

int main() {
    char buf[40];
    long n = read_input(buf, 40L);
    if (n < 1) { printf("exiv2: no image\n"); return 0; }
    if (buf[0] == 'S') { print_0x000c(buf + 1, n - 1); return 0; }
    if (buf[0] == 'L') { print_0x0095(buf + 1, n - 1); return 0; }
    if (buf[0] == 'W') { print_0x00b4(buf + 1, n - 1); return 0; }
    printf("exif entries %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "exiv2", InputType: "Exiv2 image", Version: "0.27.5", PaperKLoC: 384,
		Src:   src,
		Seeds: [][]byte{[]byte("S\x01\x05"), []byte("II*")},
		Bugs: []Bug{
			{ID: "exiv2-uninit-serial", Cat: UninitMem, Trigger: []byte("S\x01\x00"), San: NoSan},
			{ID: "exiv2-uninit-lens", Cat: UninitMem, Trigger: []byte("L\x01\x02\x00"), San: NoSan},
			{ID: "exiv2-uninit-wb", Cat: UninitMem, Trigger: []byte("W\x01\x02\x03\x00"), San: NoSan},
		},
	}
}

// libtiff: a strip offset diagnostic printed with __LINE__, the
// paper's "bad random value" (clock-seeded), a predictor whose FMA
// rounding differs, and an uninitialized fill order that decides a
// branch.
func libtiff() *Target {
	src := `
void read_strip(char* buf, long n) {
    if (n < 4) {
        printf("tiff: strip offset missing at line %d\n",
            __LINE__);
        return;
    }
    printf("strip %d at %d\n", buf[0], buf[1] * 256 + buf[2]);
}

void tile_hash(long n) {
    long seed = time_now();
    long h = (seed * 1103515245L + 12345L) & 262143L;
    printf("tile hash %ld of %ld\n", h, n);
}

void predictor(char* buf, long n) {
    double delta = 0.1;
    double scale = (double)((buf[0] & 7) + 10);
    double base = 0.0 - 1.0;
    double pred = delta * scale + base;
    printf("pred %.17f\n", pred * 1000000000000000.0);
}

void fill_order(char* buf, long n) {
    int order;
    if (n >= 3) { order = buf[2] & 1; }
    if ((order & 1) == 1) { printf("msb2lsb %d\n", order & 7); }
    else { printf("lsb2msb %d\n", order & 7); }
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("libtiff: empty\n"); return 0; }
    if (buf[0] == 'T') { read_strip(buf + 1, n - 1); return 0; }
    if (buf[0] == 'H') { tile_hash(n); return 0; }
    if (buf[0] == 'P' && n >= 2) { predictor(buf + 1, n - 1); return 0; }
    if (buf[0] == 'O') { fill_order(buf + 1, n - 1); return 0; }
    printf("II magic %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "libtiff", InputType: "Tiff image", Version: "4.3.0", PaperKLoC: 37,
		Src:   src,
		Seeds: [][]byte{[]byte("T\x01\x02\x03\x04"), []byte("II*\x00")},
		Bugs: []Bug{
			{ID: "libtiff-line-strip", Cat: Line, Trigger: []byte("T\x01"), San: NoSan},
			{ID: "libtiff-misc-badrandom", Cat: Misc, Trigger: []byte("H"), San: NoSan},
			{ID: "libtiff-misc-predictor", Cat: Misc, Trigger: []byte("P\x00"), San: NoSan},
			{ID: "libtiff-uninit-fillorder", Cat: UninitMem, Trigger: []byte("O\x01"), San: ByMSan},
		},
	}
}

// ImageMagick: a delegate error printed with __LINE__, pixel-cache
// overflow and use-after-free, and two uninitialized channel values.
func imagemagick() *Target {
	src := `
void delegate_error(char* buf, long n) {
    if (n < 3) {
        printf("magick: delegate failed at line %d\n",
            __LINE__);
        return;
    }
    printf("delegate %c ok\n", buf[0]);
}

void pixel_cache(char* buf, long n) {
    char* pixels = (char*)malloc(13L);
    char* morph = (char*)malloc(8L);
    if (pixels == 0 || morph == 0) { return; }
    for (int i = 0; i < 7; i++) { morph[i] = (char)(77 + i); }
    morph[7] = '\0';
    long take = n;
    if (take > 46) { take = 46; }
    for (long i = 0; i < take; i++) { pixels[i] = buf[i]; }
    printf("cache %c morph %s\n", pixels[0], morph);
    free(pixels);
    free(morph);
}

void clone_image(char* buf, long n) {
    int* frame = (int*)malloc(16L);
    if (frame == 0) { return; }
    frame[0] = 4242;
    free(frame);
    int* clone = (int*)malloc(16L);
    if (clone == 0) { return; }
    clone[0] = (int)n * 17;
    printf("frame %d clone %d\n", frame[0], clone[0]);
    free(clone);
}

void alpha_channel(char* buf, long n) {
    int alpha;
    if (n >= 5) { alpha = buf[4] & 127; }
    if ((alpha & 1) == 0) { printf("alpha even %d\n", alpha & 255); }
    else { printf("alpha odd %d\n", alpha & 255); }
}

void gamma_channel(char* buf, long n) {
    int gamma;
    if (n >= 6 && buf[5] != 0) { gamma = buf[5]; }
    if ((gamma & 2) == 0) { printf("gamma lo %d\n", gamma & 255); }
    else { printf("gamma hi %d\n", gamma & 255); }
}

int main() {
    char buf[64];
    long n = read_input(buf, 64L);
    if (n < 1) { printf("magick: no image\n"); return 0; }
    if (buf[0] == 'D') { delegate_error(buf + 1, n - 1); return 0; }
    if (buf[0] == 'P') { pixel_cache(buf + 1, n - 1); return 0; }
    if (buf[0] == 'C') { clone_image(buf + 1, n - 1); return 0; }
    if (buf[0] == 'A') { alpha_channel(buf + 1, n - 1); return 0; }
    if (buf[0] == 'M') { gamma_channel(buf + 1, n - 1); return 0; }
    printf("geometry %ldx%d\n", n, buf[0] & 7);
    return 0;
}
`
	return &Target{
		Name: "ImageMagick", InputType: "Image", Version: "7.1.0-23", PaperKLoC: 655,
		Src:              src,
		NonDeterministic: true,
		Seeds:            [][]byte{[]byte("D\x01\x02\x03"), []byte("GIF8")},
		Bugs: []Bug{
			{ID: "magick-line-delegate", Cat: Line, Trigger: []byte("D\x01"), San: NoSan},
			{ID: "magick-mem-pixelcache", Cat: MemError, Trigger: append([]byte("P"), seqBytes(48)...), San: ByASan},
			{ID: "magick-mem-cloneuaf", Cat: MemError, Trigger: []byte("C\x01"), San: ByASan},
			{ID: "magick-uninit-alpha", Cat: UninitMem, Trigger: []byte("A\x01\x02"), San: ByMSan},
			{ID: "magick-uninit-gamma", Cat: UninitMem, Trigger: []byte("M\x01\x02\x03\x04\x00"), San: ByMSan},
		},
	}
}

// grok: two tile-arithmetic overflows before widening, an
// uninitialized quality layer, and a rate-distortion estimate whose
// pow() path differs per implementation.
func grok() *Target {
	src := `
void tile_grid(char* buf, long n) {
    if (n < 2) { printf("grid default\n"); return; }
    int tw = buf[0] * 147456;
    int th = buf[1] * 18432;
    long tiles = tw * th;
    printf("tiles %ld\n", tiles);
}

void precinct_size(char* buf, long n) {
    if (n < 3) { printf("precinct default\n"); return; }
    int pw = buf[1] * 229376;
    int ph = buf[2] * 12288;
    long area = pw * ph;
    printf("precinct %ld\n", area);
}

void quality_layer(char* buf, long n) {
    int layers;
    if (n >= 4) { layers = buf[3] & 31; }
    if ((layers & 1) == 1) { printf("layers odd %d\n", layers & 63); }
    else { printf("layers even %d\n", layers & 63); }
}

void rate_estimate(char* buf, long n) {
    double rate = pow(1.5, (double)((buf[0] & 7)) + 0.5);
    printf("rd %.15f\n", rate);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("grok: no codestream\n"); return 0; }
    if (buf[0] == 'G') { tile_grid(buf + 1, n - 1); return 0; }
    if (buf[0] == 'P') { precinct_size(buf + 1, n - 1); return 0; }
    if (buf[0] == 'Q') { quality_layer(buf + 1, n - 1); return 0; }
    if (buf[0] == 'E' && n >= 2) { rate_estimate(buf + 1, n - 1); return 0; }
    printf("soc marker %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "grok", InputType: "JPEG 2000", Version: "9.7.0", PaperKLoC: 127,
		Src:              src,
		NonDeterministic: true,
		Seeds:            [][]byte{[]byte("G\x00\x01"), []byte("Q\x01\x02\x03\x04")},
		Bugs: []Bug{
			{ID: "grok-int-tilegrid", Cat: IntError, Trigger: []byte("G\xd0\xd0"), San: ByUBSan},
			{ID: "grok-int-precinct", Cat: IntError, Trigger: []byte("P\x01\xd0\xd0"), San: ByUBSan},
			{ID: "grok-uninit-layers", Cat: UninitMem, Trigger: []byte("Q\x01\x02"), San: ByMSan},
			{ID: "grok-misc-rate", Cat: Misc, Trigger: []byte("E\x03"), San: NoSan},
		},
	}
}

// gpac: a track-duration sum printed against the wall clock, a
// bitrate estimate through pow(), and a sample-count overflow.
func gpac() *Target {
	src := `
void track_timeline(char* buf, long n) {
    printf("track imported at %ld duration %ld\n", time_now() & 1048575L, n * 40L);
}

void bitrate_estimate(char* buf, long n) {
    double mbps = pow(2.2, (double)((buf[0] & 7)) + 0.25);
    printf("bitrate %.15f\n", mbps);
}

void sample_count(char* buf, long n) {
    if (n < 2) { printf("samples default\n"); return; }
    int chunks = buf[0] * 180224;
    int per = buf[1] * 14336;
    long samples = chunks * per;
    printf("samples %ld\n", samples);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("gpac: no mp4\n"); return 0; }
    if (buf[0] == 'K') { track_timeline(buf + 1, n - 1); return 0; }
    if (buf[0] == 'B' && n >= 2) { bitrate_estimate(buf + 1, n - 1); return 0; }
    if (buf[0] == 'S') { sample_count(buf + 1, n - 1); return 0; }
    printf("ftyp %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "gpac", InputType: "Video", Version: "2.0.0", PaperKLoC: 597,
		Src:              src,
		NonDeterministic: true,
		Seeds:            [][]byte{[]byte("S\x00\x01"), []byte("ftyp")},
		Bugs: []Bug{
			{ID: "gpac-misc-timeline", Cat: Misc, Trigger: []byte("K"), San: NoSan},
			{ID: "gpac-misc-bitrate", Cat: Misc, Trigger: []byte("B\x05"), San: NoSan},
			{ID: "gpac-int-samples", Cat: IntError, Trigger: []byte("S\xd8\xd8"), San: ByUBSan},
		},
	}
}

// seqBytes returns n distinct non-zero bytes, used by overflow
// triggers whose corruption must be position-dependent.
func seqBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(1 + i%250)
	}
	return out
}
