// Package targets provides the 23 synthetic "real-world" projects of
// the paper's §4.3 evaluation (Table 4) with the 78 planted bugs of
// Table 5, distributed by root cause exactly as reported:
//
//	EvalOrder 2, UninitMem 27, IntError 8, MemError 13, PointerCmp 1,
//	LINE 6, Misc 21.
//
// Each target is a MiniC program in its project's domain (packet
// parser, binary-file dumper, media decoder, language interpreter...)
// whose bugs hide behind input conditions a fuzzer can reach. Every
// bug carries its triggering input, its Table 5 outcome (confirmed /
// fixed, which are recorded report outcomes, not computable ones), and
// its expected sanitizer visibility (Table 6: ASan sees the 13
// MemErrors, UBSan the 8 IntErrors, MSan 21 of the 27 UninitMems, and
// nothing sees the rest).
//
// Substitutions (documented in DESIGN.md): the paper's three MuJS
// compiler miscompilations and four floating-point imprecision cases
// are both represented by deliberate implementation-divergent floating
// paths (FMA contraction and the pow→exp2 libcall), since this repo's
// compilers are bug-free by construction; timestamp/randomness Misc
// bugs use the time_now builtin, the repo's wall-clock analog.
package targets

import "fmt"

// Category is a Table 5 root-cause column.
type Category int

const (
	EvalOrder Category = iota
	UninitMem
	IntError
	MemError
	PointerCmp
	Line
	Misc
	NumCategories
)

var categoryNames = [...]string{
	"EvalOrder", "UninitMem", "IntError", "MemError", "PointerCmp", "LINE", "Misc",
}

// String names the category.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// SanTool mirrors Table 6's sanitizer columns.
type SanTool int

const (
	NoSan SanTool = iota
	ByASan
	ByUBSan
	ByMSan
)

// Bug is one planted real-world bug.
type Bug struct {
	ID      string
	Cat     Category
	Trigger []byte // input that reaches and exposes the bug

	// Table 5 report outcomes (metadata recorded from the paper's
	// tracker interactions; not computable from code).
	Confirmed bool
	Fixed     bool

	// San is the sanitizer expected to also catch this bug (Table 6);
	// NoSan for the 36 CompDiff-only bugs.
	San SanTool
}

// Target is one of the 23 projects.
type Target struct {
	Name      string
	InputType string
	Version   string // the paper's evaluated version
	PaperKLoC int    // the paper's reported project size
	Src       string
	Seeds     [][]byte
	Bugs      []Bug

	// NonDeterministic marks the six projects §4.3/RQ5 calls
	// non-deterministic or multi-threaded.
	NonDeterministic bool

	// NeedsNormalizer marks targets whose *legitimate* output contains
	// wall-clock fields that must be filtered before comparison (the
	// wireshark example of RQ5).
	NeedsNormalizer bool
}

// All returns the 23 targets in Table 4 order, with the recorded
// Table 5 report outcomes applied.
func All() []*Target {
	return applyOutcomes([]*Target{
		tcpdump(), wireshark(), objdump(), readelf(), nmNew(), sysdump(),
		openssl(), clamav(), libsndfile(), libzip(), brotli(), php(),
		mujs(), pdftotext(), pdftoppm(), jq(), exiv2(), libtiff(),
		imagemagick(), grok(), libxml2(), curl(), gpac(),
	})
}

// ByName returns one target.
func ByName(name string) *Target {
	for _, t := range All() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// CategoryCounts tallies bugs per category across targets.
func CategoryCounts(ts []*Target) map[Category]int {
	out := map[Category]int{}
	for _, t := range ts {
		for _, b := range t.Bugs {
			out[b.Cat]++
		}
	}
	return out
}

// Table5 aggregates the reported/confirmed/fixed counts per category.
type Table5 struct {
	Reported  map[Category]int
	Confirmed map[Category]int
	Fixed     map[Category]int
}

// ComputeTable5 tallies the recorded outcomes.
func ComputeTable5(ts []*Target) *Table5 {
	t5 := &Table5{
		Reported:  map[Category]int{},
		Confirmed: map[Category]int{},
		Fixed:     map[Category]int{},
	}
	for _, t := range ts {
		for _, b := range t.Bugs {
			t5.Reported[b.Cat]++
			if b.Confirmed {
				t5.Confirmed[b.Cat]++
			}
			if b.Fixed {
				t5.Fixed[b.Cat]++
			}
		}
	}
	return t5
}
