package targets

// Network-facing targets: tcpdump, wireshark, curl.

// tcpdump: the paper's flagship EvalOrder case (Listing 3). Two print
// routines share static buffers and are both called inside one printf
// argument list; a third handler leaves a length field uninitialized
// on truncated packets.
func tcpdump() *Target {
	src := `
static char addrbuf[16];
char* fmt_addr(int hi, int lo) {
    addrbuf[0] = (char)(48 + (hi & 7));
    addrbuf[1] = '.';
    addrbuf[2] = (char)(48 + (lo & 7));
    addrbuf[3] = '\0';
    return addrbuf;
}

static char portbuf[16];
char* fmt_port(int p) {
    int v = p & 255;
    portbuf[0] = (char)(48 + v / 100);
    portbuf[1] = (char)(48 + (v / 10) % 10);
    portbuf[2] = (char)(48 + v % 10);
    portbuf[3] = '\0';
    return portbuf;
}

void print_arp(char* pkt, long n) {
    if (n < 4) { printf("arp truncated\n"); return; }
    printf("who-is %s tell %s\n",
        fmt_addr(pkt[0], pkt[1]),
        fmt_addr(pkt[2], pkt[3]));
}

void print_tcp(char* pkt, long n) {
    if (n < 4) { printf("tcp truncated\n"); return; }
    printf("ports %s > %s\n",
        fmt_port(pkt[0]),
        fmt_port(pkt[2]));
}

void print_udp(char* pkt, long n) {
    int len;
    if (n >= 6) { len = pkt[4] * 256 + pkt[5]; }
    printf("udp payload len %d\n", len);
}

int main() {
    char pkt[64];
    long n = read_input(pkt, 64L);
    if (n < 1) { printf("no capture\n"); return 0; }
    if (pkt[0] == 'A') { print_arp(pkt + 1, n - 1); return 0; }
    if (pkt[0] == 'T') { print_tcp(pkt + 1, n - 1); return 0; }
    if (pkt[0] == 'U') { print_udp(pkt + 1, n - 1); return 0; }
    printf("ether type %d\n", pkt[0]);
    return 0;
}
`
	return &Target{
		Name: "tcpdump", InputType: "Network packet", Version: "4.99.1", PaperKLoC: 99,
		Src:              src,
		NonDeterministic: true,
		Seeds:            [][]byte{[]byte("A"), []byte("T\x11"), {0x7f}},
		Bugs: []Bug{
			{ID: "tcpdump-evalorder-arp", Cat: EvalOrder, Trigger: []byte("A\x01\x02\x03\x04"), San: NoSan},
			{ID: "tcpdump-evalorder-tcp", Cat: EvalOrder, Trigger: []byte("T\x01\x02\x03\x04"), San: NoSan},
			{ID: "tcpdump-uninit-udplen", Cat: UninitMem, Trigger: []byte("U\x01\x02\x03\x04"), San: NoSan},
		},
	}
}

// wireshark: legitimate output carries wall-clock timestamps (the RQ5
// normalization example); the bugs are a raw capture-time leak, a
// pointer-identity print ("unknown reason" in the paper's triage), a
// multi-line __LINE__ diagnostic, and an uninitialized flags field.
func wireshark() *Target {
	src := `
void epan_banner() {
    long ts = time_now();
    printf("1%d:0%d:2%d.40583%d [Epan WARNING]\n",
        (int)(ts & 7), (int)((ts >> 3) & 7) % 6, (int)((ts >> 6) & 7), (int)(ts & 7));
}

void dissect_frame(char* buf, long n) {
    epan_banner();
    if (n < 3) { printf("frame short\n"); return; }
    printf("frame proto %d len %ld\n", buf[0], n);
}

void dissect_stats(char* buf, long n) {
    epan_banner();
    printf("capture started at %ld\n", time_now());
    printf("packets %ld\n", n);
}

void dissect_ring(char* buf, long n) {
    epan_banner();
    printf("ring buffer id %ld\n", (long)buf);
    printf("slots %ld\n", n);
}

void dissect_expert(char* buf, long n) {
    epan_banner();
    if (n < 2) {
        printf("expert info missing at line %d\n",
            __LINE__);
        return;
    }
    printf("expert severity %d\n", buf[1]);
}

void dissect_vlan(char* buf, long n) {
    epan_banner();
    int flags;
    if (n >= 4) { flags = buf[2] * 8 + buf[3]; }
    if ((flags & 1) == 1) { printf("vlan tagged %d\n", flags & 255); }
    else { printf("vlan plain %d\n", flags & 255); }
}

int main() {
    char buf[96];
    long n = read_input(buf, 96L);
    if (n < 1) { printf("empty capture\n"); return 0; }
    if (buf[0] == 'S') { dissect_stats(buf + 1, n - 1); return 0; }
    if (buf[0] == 'R') { dissect_ring(buf + 1, n - 1); return 0; }
    if (buf[0] == 'E') { dissect_expert(buf + 1, n - 1); return 0; }
    if (buf[0] == 'V') { dissect_vlan(buf + 1, n - 1); return 0; }
    dissect_frame(buf, n);
    return 0;
}
`
	return &Target{
		Name: "wireshark", InputType: "Network packet", Version: "3.4.5", PaperKLoC: 4600,
		Src:              src,
		NonDeterministic: true,
		NeedsNormalizer:  true,
		Seeds:            [][]byte{[]byte("\x01\x02\x03"), []byte("E\x05\x06")},
		Bugs: []Bug{
			{ID: "wireshark-misc-rawtime", Cat: Misc, Trigger: []byte("S\x01"), San: NoSan},
			{ID: "wireshark-misc-ringptr", Cat: Misc, Trigger: []byte("R\x01"), San: NoSan},
			{ID: "wireshark-line-expert", Cat: Line, Trigger: []byte("E"), San: NoSan},
			{ID: "wireshark-uninit-vlan", Cat: UninitMem, Trigger: []byte("V\x01\x02"), San: ByMSan},
		},
	}
}

// curl: URL parser. The retry planner prints the raw clock; the port
// field stays uninitialized when the URL has no colon and is printed
// as-is (MSan-invisible: never branched on).
func curl() *Target {
	src := `
long find_colon(char* s, long n) {
    for (long i = 0; i < n; i++) {
        if (s[i] == ':') { return i; }
    }
    return 0 - 1;
}

void handle_retry(char* buf, long n) {
    printf("retry-after baseline %ld\n", time_now());
    printf("attempts %ld\n", n);
}

void handle_url(char* buf, long n) {
    int port;
    long c = find_colon(buf, n);
    if (c >= 0 && c + 1 < n) {
        port = buf[c + 1] * 256 + (c + 2 < n ? buf[c + 2] : 0);
    }
    printf("host bytes %ld port %d\n", n, port);
}

int main() {
    char buf[80];
    long n = read_input(buf, 80L);
    if (n < 1) { printf("usage: curl URL\n"); return 0; }
    if (buf[0] == 'R') { handle_retry(buf + 1, n - 1); return 0; }
    handle_url(buf, n);
    return 0;
}
`
	return &Target{
		Name: "curl", InputType: "URL", Version: "7.80.0", PaperKLoC: 13,
		Src:   src,
		Seeds: [][]byte{[]byte("example:80"), []byte("host:x1")},
		Bugs: []Bug{
			{ID: "curl-misc-retrytime", Cat: Misc, Trigger: []byte("R1"), San: NoSan},
			{ID: "curl-uninit-port", Cat: UninitMem, Trigger: []byte("example"), San: NoSan},
		},
	}
}
