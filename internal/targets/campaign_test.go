package targets

import (
	"strings"
	"testing"

	"compdiff/internal/core"
	"compdiff/internal/difffuzz"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// End-to-end §4.3: CompDiff-AFL++ campaigns against the real-world
// targets discover planted bugs from benign seeds — the paper's
// pipeline, not just trigger-replay.

func runCampaign(t *testing.T, name string, budget int64) *difffuzz.Campaign {
	t.Helper()
	tg := ByName(name)
	if tg == nil {
		t.Fatalf("no target %s", name)
	}
	info, err := sema.Check(parser.MustParse(tg.Src))
	if err != nil {
		t.Fatal(err)
	}
	var norm *core.Normalizer
	if tg.NeedsNormalizer {
		norm = core.DefaultNormalizer()
	}
	c, err := difffuzz.NewChecked(info, tg.Seeds, difffuzz.Options{
		FuzzSeed:    1337,
		MaxInputLen: 64,
		Normalizer:  norm,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(budget)
	return c
}

func TestCampaignFindsTcpdumpEvalOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	c := runCampaign(t, "tcpdump", 20_000)
	if len(c.Diffs()) == 0 {
		t.Fatalf("campaign found nothing; stats %+v", c.Stats())
	}
	// At least one discrepancy must be the ARP/TCP eval-order bug:
	// its report shows the family split (all gcc vs all clang).
	foundFamilySplit := false
	for _, d := range c.Diffs() {
		rep := d.Report(c.ImplNames())
		if strings.Contains(rep, "who-is") || strings.Contains(rep, "ports") {
			foundFamilySplit = true
		}
	}
	if !foundFamilySplit {
		t.Log("eval-order bug not among diffs; found:")
		for _, d := range c.Diffs() {
			t.Log(d.Report(c.ImplNames()))
		}
		t.Fatal("expected the Listing 3 discrepancy")
	}
}

func TestCampaignFindsReadelfBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	c := runCampaign(t, "readelf", 15_000)
	if got := len(c.Diffs()); got < 2 {
		t.Fatalf("unique discrepancies = %d, want >= 2 (ptr-compare, LINE, uninit)", got)
	}
}

func TestCampaignFindsExiv2Listing4(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	c := runCampaign(t, "exiv2", 15_000)
	if len(c.Diffs()) == 0 {
		t.Fatal("exiv2 campaign found no uninitialized-read discrepancies")
	}
}
