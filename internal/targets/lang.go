package targets

// Language implementations: php, MuJS, jq, libxml2.

// php: the paper's __LINE__ example — diagnostics attribute errors to
// different lines across implementations — plus two uninitialized
// zval-ish fields.
func php() *Target {
	src := `
void runtime_error(char* buf, long n) {
    if (n < 2) {
        printf("PHP Fatal error: in script on line %d\n",
            __LINE__);
        return;
    }
    printf("ok statement %c\n", buf[0]);
}

void parse_warning(char* buf, long n) {
    if (n >= 2 && buf[1] == '$') {
        printf("PHP Warning: undefined variable on line %d\n",
            __LINE__);
        return;
    }
    printf("parsed %ld tokens\n", n);
}

void zval_type(char* buf, long n) {
    int ztype;
    if (n >= 3) { ztype = buf[2] & 7; }
    if ((ztype & 1) == 1) { printf("IS_STRING %d\n", ztype & 15); }
    else { printf("IS_LONG %d\n", ztype & 15); }
}

void refcount(char* buf, long n) {
    int rc;
    if (n >= 4 && buf[3] != 0) { rc = buf[3] & 31; }
    if ((rc & 1) == 0) { printf("refcount even %d\n", rc & 63); }
    else { printf("refcount odd %d\n", rc & 63); }
}

int main() {
    char buf[64];
    long n = read_input(buf, 64L);
    if (n < 1) { printf("php: no script\n"); return 0; }
    if (buf[0] == 'E') { runtime_error(buf + 1, n - 1); return 0; }
    if (buf[0] == 'W') { parse_warning(buf + 1, n - 1); return 0; }
    if (buf[0] == 'Z') { zval_type(buf + 1, n - 1); return 0; }
    if (buf[0] == 'R') { refcount(buf + 1, n - 1); return 0; }
    printf("<?php %ld bytes\n", n);
    return 0;
}
`
	return &Target{
		Name: "php", InputType: "PHP", Version: "7.4.26", PaperKLoC: 1400,
		Src:   src,
		Seeds: [][]byte{[]byte("Z\x01\x02\x03"), []byte("<?php")},
		Bugs: []Bug{
			{ID: "php-line-fatal", Cat: Line, Trigger: []byte("E\x01"), San: NoSan},
			{ID: "php-line-warning", Cat: Line, Trigger: []byte("W\x01$"), San: NoSan},
			{ID: "php-uninit-zval", Cat: UninitMem, Trigger: []byte("Z\x01"), San: ByMSan},
			{ID: "php-uninit-refcount", Cat: UninitMem, Trigger: []byte("R\x01\x02\x03\x00"), San: ByMSan},
		},
	}
}

// MuJS: the paper found three compiler miscompilations here. This
// repo's compilers are correct by construction, so the same *symptom*
// — numeric results that differ per compiler despite a bug-free
// interpreter — is reproduced through implementation-divergent
// floating-point lowering (FMA contraction) in the number formatter,
// the JS arithmetic core, and the string-index hash (substitution
// documented in DESIGN.md).
func mujs() *Target {
	src := `
void js_tostring(char* buf, long n) {
    double mantissa = 0.1;
    double exponent = (double)((buf[0] & 7) + 10);
    double round = 0.0 - 1.0;
    double repr = mantissa * exponent + round;
    printf("Number(%.17f)\n", repr * 10000000000000000.0);
}

void js_arith(char* buf, long n) {
    double a = 0.2;
    double b = (double)((buf[0] & 3) + 5);
    double c = 0.0 - 1.0;
    double v = a * b + c;
    printf("eval %.17f\n", v * 1000000000000000.0);
}

void js_strindex(char* buf, long n) {
    double x = 0.7;
    double y = (double)((buf[0] & 7) + 3);
    double z = 0.0 - 2.0;
    double h = x * y + z;
    printf("idx %.17f\n", h * 100000000000000.0);
}

int main() {
    char buf[40];
    long n = read_input(buf, 40L);
    if (n < 2) { printf("mujs: empty program\n"); return 0; }
    if (buf[0] == 'N') { js_tostring(buf + 1, n - 1); return 0; }
    if (buf[0] == 'A') { js_arith(buf + 1, n - 1); return 0; }
    if (buf[0] == 'X') { js_strindex(buf + 1, n - 1); return 0; }
    printf("undefined %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "MuJS", InputType: "JavaScript", Version: "1.1.3", PaperKLoC: 18,
		Src:              src,
		NonDeterministic: true,
		Seeds:            [][]byte{[]byte("var x"), []byte("1+1")},
		Bugs: []Bug{
			{ID: "mujs-misc-tostring", Cat: Misc, Trigger: []byte("N\x00"), San: NoSan},
			{ID: "mujs-misc-arith", Cat: Misc, Trigger: []byte("A\x00"), San: NoSan},
			{ID: "mujs-misc-strindex", Cat: Misc, Trigger: []byte("X\x00"), San: NoSan},
		},
	}
}

// jq: two uninitialized parser fields, a precision overflow before
// widening, and number formatting through pow().
func jq() *Target {
	src := `
void parse_number(char* buf, long n) {
    int exponent;
    if (n >= 3 && buf[2] != '0') { exponent = buf[2] - '0'; }
    if ((exponent & 1) == 1) { printf("exp odd %d\n", exponent & 31); }
    else { printf("exp even %d\n", exponent & 31); }
}

void parse_depth(char* buf, long n) {
    int depth;
    if (n >= 2) { depth = buf[1] & 63; }
    if ((depth & 2) == 0) { printf("shallow %d\n", depth & 127); }
    else { printf("nested %d\n", depth & 127); }
}

void array_prealloc(char* buf, long n) {
    if (n < 2) { printf("alloc default\n"); return; }
    int elems = buf[0] * 196608;
    int esize = buf[1] * 16384;
    long bytes = elems * esize;
    printf("prealloc %ld\n", bytes);
}

void format_number(char* buf, long n) {
    double v = pow(10.0, (double)((buf[0] & 7)) + 0.5);
    printf("%.15f\n", v);
}

int main() {
    char buf[48];
    long n = read_input(buf, 48L);
    if (n < 1) { printf("jq: null\n"); return 0; }
    if (buf[0] == 'N') { parse_number(buf + 1, n - 1); return 0; }
    if (buf[0] == 'D') { parse_depth(buf + 1, n - 1); return 0; }
    if (buf[0] == 'A') { array_prealloc(buf + 1, n - 1); return 0; }
    if (buf[0] == 'F' && n >= 2) { format_number(buf + 1, n - 1); return 0; }
    printf("{} %ld\n", n);
    return 0;
}
`
	return &Target{
		Name: "jq", InputType: "json", Version: "1.6", PaperKLoC: 46,
		Src:   src,
		Seeds: [][]byte{[]byte("{\"a\":1}"), []byte("D\x01\x02")},
		Bugs: []Bug{
			{ID: "jq-uninit-exponent", Cat: UninitMem, Trigger: []byte("N\x011\x30"), San: ByMSan},
			{ID: "jq-uninit-depth", Cat: UninitMem, Trigger: []byte("D"), San: ByMSan},
			{ID: "jq-int-prealloc", Cat: IntError, Trigger: []byte("A\xd4\xd4"), San: ByUBSan},
			{ID: "jq-misc-format", Cat: Misc, Trigger: []byte("F\x06"), San: NoSan},
		},
	}
}

// libxml2: entity-buffer overflow, a namespace-cache use-after-free,
// and two uninitialized parser-state fields.
func libxml2() *Target {
	src := `
void expand_entity(char* buf, long n) {
    char* entity = (char*)malloc(7L);
    char* dict = (char*)malloc(8L);
    if (entity == 0 || dict == 0) { return; }
    for (int i = 0; i < 7; i++) { dict[i] = (char)(110 + i); }
    dict[7] = '\0';
    long take = n;
    if (take > 38) { take = 38; }
    for (long i = 0; i < take; i++) { entity[i] = buf[i]; }
    printf("entity %c dict %s\n", entity[0], dict);
    free(entity);
    free(dict);
}

void ns_cache(char* buf, long n) {
    int* ns = (int*)malloc(16L);
    if (ns == 0) { return; }
    ns[0] = 31337;
    free(ns);
    int* reuse = (int*)malloc(16L);
    if (reuse == 0) { return; }
    reuse[0] = (int)n * 11;
    printf("ns %d reuse %d\n", ns[0], reuse[0]);
    free(reuse);
}

void parser_state(char* buf, long n) {
    int standalone;
    if (n >= 3) { standalone = buf[2] & 1; }
    if ((standalone & 1) == 1) { printf("standalone yes %d\n", standalone & 3); }
    else { printf("standalone no %d\n", standalone & 3); }
}

void doc_encoding(char* buf, long n) {
    int enc;
    if (n >= 4 && buf[3] != 0) { enc = buf[3] & 15; }
    if ((enc & 4) == 0) { printf("utf8-ish %d\n", enc & 31); }
    else { printf("legacy %d\n", enc & 31); }
}

int main() {
    char buf[56];
    long n = read_input(buf, 56L);
    if (n < 1) { printf("xml: empty document\n"); return 0; }
    if (buf[0] == 'X') { expand_entity(buf + 1, n - 1); return 0; }
    if (buf[0] == 'M') { ns_cache(buf + 1, n - 1); return 0; }
    if (buf[0] == 'P') { parser_state(buf + 1, n - 1); return 0; }
    if (buf[0] == 'C') { doc_encoding(buf + 1, n - 1); return 0; }
    printf("<doc len=%ld>\n", n);
    return 0;
}
`
	return &Target{
		Name: "libxml2", InputType: "XML", Version: "2.9.12", PaperKLoC: 458,
		Src:   src,
		Seeds: [][]byte{[]byte("<a/>"), []byte("P\x01\x02\x03")},
		Bugs: []Bug{
			{ID: "libxml2-mem-entity", Cat: MemError, Trigger: append([]byte("X"), seqBytes(40)...), San: ByASan},
			{ID: "libxml2-mem-nsuaf", Cat: MemError, Trigger: []byte("M\x01"), San: ByASan},
			{ID: "libxml2-uninit-standalone", Cat: UninitMem, Trigger: []byte("P\x01"), San: ByMSan},
			{ID: "libxml2-uninit-encoding", Cat: UninitMem, Trigger: []byte("C\x01\x02\x03\x00"), San: ByMSan},
		},
	}
}
