package targets

// Table 5's confirmed/fixed rows are report outcomes the paper
// recorded from the projects' trackers. They are not computable from
// code, so they are applied here as per-category quotas over the bug
// list in its stable (target, bug) order:
//
//	            EvalOrder UninitMem IntError MemError PointerCmp LINE Misc
//	Reported        2        27        8       13         1        6   21
//	Confirmed       2        19        8       13         1        5   17
//	Fixed           2        17        6       12         1        5    9
var (
	confirmedQuota = map[Category]int{
		EvalOrder: 2, UninitMem: 19, IntError: 8, MemError: 13,
		PointerCmp: 1, Line: 5, Misc: 17,
	}
	fixedQuota = map[Category]int{
		EvalOrder: 2, UninitMem: 17, IntError: 6, MemError: 12,
		PointerCmp: 1, Line: 5, Misc: 9,
	}
)

// applyOutcomes marks the first quota-many bugs of each category as
// confirmed/fixed, walking targets in registry order. Deterministic,
// and fixed ⊆ confirmed by construction (fixed quotas are smaller).
func applyOutcomes(ts []*Target) []*Target {
	conf := map[Category]int{}
	fixd := map[Category]int{}
	for _, t := range ts {
		for i := range t.Bugs {
			b := &t.Bugs[i]
			if conf[b.Cat] < confirmedQuota[b.Cat] {
				conf[b.Cat]++
				b.Confirmed = true
			}
			if b.Confirmed && fixd[b.Cat] < fixedQuota[b.Cat] {
				fixd[b.Cat]++
				b.Fixed = true
			}
		}
	}
	return ts
}
