package targets

import (
	"fmt"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/sanitizer"
	"compdiff/internal/vm"
)

func TestTwentyThreeTargets(t *testing.T) {
	ts := All()
	if len(ts) != 23 {
		t.Fatalf("targets = %d, want 23", len(ts))
	}
	seen := map[string]bool{}
	for _, tg := range ts {
		if seen[tg.Name] {
			t.Errorf("duplicate target %s", tg.Name)
		}
		seen[tg.Name] = true
		if tg.Version == "" || tg.PaperKLoC == 0 || tg.InputType == "" {
			t.Errorf("%s: missing Table 4 metadata", tg.Name)
		}
		if len(tg.Seeds) == 0 {
			t.Errorf("%s: no seeds", tg.Name)
		}
	}
}

func TestSixNonDeterministicTargets(t *testing.T) {
	// §4.3 RQ5: tcpdump, wireshark, MuJS, ImageMagick, grok, gpac.
	want := map[string]bool{
		"tcpdump": true, "wireshark": true, "MuJS": true,
		"ImageMagick": true, "grok": true, "gpac": true,
	}
	for _, tg := range All() {
		if tg.NonDeterministic != want[tg.Name] {
			t.Errorf("%s: NonDeterministic = %v, want %v", tg.Name, tg.NonDeterministic, want[tg.Name])
		}
	}
}

func TestTable5Distribution(t *testing.T) {
	ts := All()
	counts := CategoryCounts(ts)
	want := map[Category]int{
		EvalOrder: 2, UninitMem: 27, IntError: 8, MemError: 13,
		PointerCmp: 1, Line: 6, Misc: 21,
	}
	total := 0
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%s: %d bugs, want %d", cat, counts[cat], n)
		}
		total += n
	}
	if total != 78 {
		t.Fatalf("category plan sums to %d, want 78", total)
	}
	t5 := ComputeTable5(ts)
	sum := func(m map[Category]int) int {
		s := 0
		for _, v := range m {
			s += v
		}
		return s
	}
	if got := sum(t5.Reported); got != 78 {
		t.Errorf("reported = %d, want 78", got)
	}
	if got := sum(t5.Confirmed); got != 65 {
		t.Errorf("confirmed = %d, want 65", got)
	}
	if got := sum(t5.Fixed); got != 52 {
		t.Errorf("fixed = %d, want 52", got)
	}
	// Fixed bugs must be confirmed.
	for _, tg := range ts {
		for _, b := range tg.Bugs {
			if b.Fixed && !b.Confirmed {
				t.Errorf("%s: fixed but not confirmed", b.ID)
			}
		}
	}
}

func TestTable6SanPlan(t *testing.T) {
	// ASan 13 MemError, UBSan 8 IntError, MSan 21 of 27 UninitMem;
	// 36 bugs with no sanitizer coverage.
	byTool := map[SanTool]int{}
	for _, tg := range All() {
		for _, b := range tg.Bugs {
			byTool[b.San]++
			switch b.San {
			case ByASan:
				if b.Cat != MemError {
					t.Errorf("%s: ASan expectation on %s", b.ID, b.Cat)
				}
			case ByUBSan:
				if b.Cat != IntError {
					t.Errorf("%s: UBSan expectation on %s", b.ID, b.Cat)
				}
			case ByMSan:
				if b.Cat != UninitMem {
					t.Errorf("%s: MSan expectation on %s", b.ID, b.Cat)
				}
			}
		}
	}
	if byTool[ByASan] != 13 || byTool[ByUBSan] != 8 || byTool[ByMSan] != 21 {
		t.Errorf("sanitizer plan = ASan %d / UBSan %d / MSan %d, want 13/8/21",
			byTool[ByASan], byTool[ByUBSan], byTool[ByMSan])
	}
	if byTool[NoSan] != 36 {
		t.Errorf("CompDiff-only bugs = %d, want 36", byTool[NoSan])
	}
}

func buildSuite(t *testing.T, tg *Target) *core.Suite {
	t.Helper()
	opts := core.Options{}
	if tg.NeedsNormalizer {
		opts.Normalizer = core.DefaultNormalizer()
	}
	s, err := core.BuildSource(tg.Src, compiler.DefaultSet(), opts)
	if err != nil {
		t.Fatalf("%s: %v", tg.Name, err)
	}
	return s
}

// Every planted bug must be CompDiff-detectable on its trigger input:
// Table 5's premise is that CompDiff-AFL++ found all 78.
func TestEveryBugTriggersDivergence(t *testing.T) {
	for _, tg := range All() {
		suite := buildSuite(t, tg)
		for _, b := range tg.Bugs {
			o := suite.Run(b.Trigger)
			if !o.Diverged {
				enc := o.Results[0].Encode()
				t.Errorf("%s: trigger %q did not diverge; common output:\n%s",
					b.ID, b.Trigger, enc)
			}
		}
	}
}

// Benign seeds must not diverge (after RQ5 normalization where the
// target legitimately prints clock fields) — otherwise triage would
// drown in noise.
func TestSeedsAreQuiet(t *testing.T) {
	for _, tg := range All() {
		suite := buildSuite(t, tg)
		for i, seed := range tg.Seeds {
			if o := suite.Run(seed); o.Diverged {
				t.Errorf("%s: seed %d %q diverges", tg.Name, i, seed)
			}
		}
	}
}

// Table 6: the sanitizer expectations hold on the trigger inputs.
func TestSanitizerExpectations(t *testing.T) {
	toolFor := map[SanTool]sanitizer.Tool{
		ByASan: sanitizer.ASan, ByUBSan: sanitizer.UBSan, ByMSan: sanitizer.MSan,
	}
	for _, tg := range All() {
		info, err := checkedInfo(tg)
		if err != nil {
			t.Fatalf("%s: %v", tg.Name, err)
		}
		runners := map[sanitizer.Tool]*sanitizer.Runner{}
		for _, tool := range sanitizer.AllTools() {
			r, err := sanitizer.NewRunner(info, tool)
			if err != nil {
				t.Fatalf("%s: %v", tg.Name, err)
			}
			runners[tool] = r
		}
		for _, b := range tg.Bugs {
			if want, ok := toolFor[b.San]; ok {
				_, rep := runners[want].Run(b.Trigger)
				if rep == nil {
					t.Errorf("%s: %s expected to report but stayed silent", b.ID, want)
				}
			} else {
				for tool, r := range runners {
					if _, rep := r.Run(b.Trigger); rep != nil {
						t.Errorf("%s: expected CompDiff-only, but %s reported %s", b.ID, tool, rep)
					}
				}
			}
		}
	}
}

func checkedInfo(tg *Target) (*sema.Info, error) {
	prog, err := parser.Parse(tg.Src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return sema.Check(prog)
}

// Targets must also run cleanly (no crash) on their seeds under the
// plain baseline implementation.
func TestSeedsRunCleanly(t *testing.T) {
	for _, tg := range All() {
		info, err := checkedInfo(tg)
		if err != nil {
			t.Fatalf("%s: %v", tg.Name, err)
		}
		bin, err := compiler.Compile(info, compiler.Config{Family: compiler.GCC, Opt: compiler.O0})
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(bin, vm.Options{})
		for i, seed := range tg.Seeds {
			res := m.Run(seed)
			if res.Crashed() {
				t.Errorf("%s: seed %d crashed: %s", tg.Name, i, res.Exit)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("tcpdump") == nil || ByName("gpac") == nil {
		t.Fatal("lookup failed")
	}
	if ByName("nonesuch") != nil {
		t.Fatal("phantom target")
	}
}
