package difffuzz

// Tests for the evolutionary campaign pool: same-seed determinism
// under different shard counts, kill-9-mid-generation resume
// equivalence, campaign-hash coverage of the evolve knobs, and the
// ISSUE's acceptance property — an -evolve campaign reaches strictly
// higher cumulative pass coverage and at least as many unique triage
// buckets as a blind progen campaign on the same program budget.

import (
	"context"
	"errors"
	"math/bits"
	"reflect"
	"testing"

	"compdiff/internal/checkpoint"
	"compdiff/internal/compiler"
	"compdiff/internal/progcache"
	"compdiff/internal/progen"
)

// evolveTestOpts is a small but non-trivial campaign: enough
// generations for the idiom mutators to engage, small enough to stay
// test-speed.
func evolveTestOpts() EvolvePoolOptions {
	return EvolvePoolOptions{Pop: 8, Generations: 4, Seed: 1234, StepLimit: 2_000_000}
}

func runEvolve(t *testing.T, opts EvolvePoolOptions) (*EvolvePool, EvolvePoolStats) {
	t.Helper()
	p, err := NewEvolvePool(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run(context.Background())
	for s, err := range st.ShardErrors {
		if err != nil {
			t.Fatalf("shard %d died: %v", s, err)
		}
	}
	return p, st
}

func TestEvolvePoolShardCountInvariance(t *testing.T) {
	o1 := evolveTestOpts()
	o1.Shards = 1
	p1, s1 := runEvolve(t, o1)
	o4 := evolveTestOpts()
	o4.Shards = 4
	p4, s4 := runEvolve(t, o4)

	if s1.PopulationSignature != s4.PopulationSignature {
		t.Fatalf("population signatures differ across shard counts: %016x vs %016x",
			s1.PopulationSignature, s4.PopulationSignature)
	}
	if !reflect.DeepEqual(p1.BucketKeys(), p4.BucketKeys()) {
		t.Fatalf("bucket keys differ across shard counts:\n1: %x\n4: %x", p1.BucketKeys(), p4.BucketKeys())
	}
	if !reflect.DeepEqual(p1.PassCoverageBits(), p4.PassCoverageBits()) {
		t.Fatalf("pass coverage differs across shard counts:\n1: %v\n4: %v",
			p1.PassCoverageBits(), p4.PassCoverageBits())
	}
	if s1.Programs != s4.Programs || s1.Findings != s4.Findings || s1.FrontendRejects != s4.FrontendRejects {
		t.Fatalf("counters differ across shard counts: %+v vs %+v", s1, s4)
	}
	if s1.BestFitness != s4.BestFitness || s1.MeanFitness != s4.MeanFitness {
		t.Fatalf("fitness telemetry differs across shard counts: %v/%v vs %v/%v",
			s1.BestFitness, s1.MeanFitness, s4.BestFitness, s4.MeanFitness)
	}
}

func TestEvolvePoolKillMidGenerationResumeEquivalence(t *testing.T) {
	// Uninterrupted reference run.
	ref := evolveTestOpts()
	ref.CheckpointDir = t.TempDir()
	pRef, sRef := runEvolve(t, ref)

	// Interrupted run: cancelled in the middle of generation 2's
	// evaluation — after some genomes of the generation are already
	// measured, before the barrier merges anything.
	dir := t.TempDir()
	killed := evolveTestOpts()
	killed.CheckpointDir = dir
	pK, err := NewEvolvePool(killed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pK.evalHook = func(gen, genome int) {
		if gen == 2 && genome >= 3 {
			cancel()
		}
	}
	stK := pK.Run(ctx)
	if stK.Generation != 2 {
		t.Fatalf("interrupted run stopped at generation %d, want 2", stK.Generation)
	}

	// Resume in a new pool (simulating a new process) and finish.
	resumed := evolveTestOpts()
	resumed.CheckpointDir = dir
	pR, err := ResumeEvolvePool(resumed)
	if err != nil {
		t.Fatal(err)
	}
	sR := pR.Run(context.Background())

	if sR.Generation != sRef.Generation {
		t.Fatalf("resumed run finished at generation %d, reference %d", sR.Generation, sRef.Generation)
	}
	if sR.PopulationSignature != sRef.PopulationSignature {
		t.Fatalf("resumed population signature %016x != uninterrupted %016x",
			sR.PopulationSignature, sRef.PopulationSignature)
	}
	if !reflect.DeepEqual(pR.BucketKeys(), pRef.BucketKeys()) {
		t.Fatalf("resumed bucket keys differ:\nresumed: %x\nref:     %x", pR.BucketKeys(), pRef.BucketKeys())
	}
	if !reflect.DeepEqual(pR.PassCoverageBits(), pRef.PassCoverageBits()) {
		t.Fatalf("resumed pass coverage differs: %v vs %v", pR.PassCoverageBits(), pRef.PassCoverageBits())
	}
	if sR.Programs != sRef.Programs || sR.Findings != sRef.Findings {
		t.Fatalf("resumed counters differ: %+v vs %+v", sR, sRef)
	}
	if sR.BestFitness != sRef.BestFitness || sR.MeanFitness != sRef.MeanFitness {
		t.Fatalf("resumed fitness telemetry differs: %v/%v vs %v/%v",
			sR.BestFitness, sR.MeanFitness, sRef.BestFitness, sRef.MeanFitness)
	}

	// A resume of the now-complete campaign runs nothing and must
	// reprint the checkpointed summary — including the fitness fields,
	// which therefore live in the checkpoint.
	again := evolveTestOpts()
	again.CheckpointDir = dir
	pA, err := ResumeEvolvePool(again)
	if err != nil {
		t.Fatal(err)
	}
	sA := pA.Run(context.Background())
	if sA.BestFitness != sRef.BestFitness || sA.MeanFitness != sRef.MeanFitness {
		t.Fatalf("reprint fitness %v/%v != checkpointed %v/%v",
			sA.BestFitness, sA.MeanFitness, sRef.BestFitness, sRef.MeanFitness)
	}
	if sA.Programs != sRef.Programs || !reflect.DeepEqual(pA.BucketKeys(), pRef.BucketKeys()) {
		t.Fatal("reprint of a complete campaign lost state")
	}
}

func TestEvolvePoolResumeErrorClasses(t *testing.T) {
	opts := evolveTestOpts()
	if _, err := ResumeEvolvePool(opts); err == nil {
		t.Fatal("resume without CheckpointDir succeeded")
	}
	opts.CheckpointDir = t.TempDir()
	if _, err := ResumeEvolvePool(opts); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("resume of empty dir: %v, want ErrNoCheckpoint", err)
	}

	// Write a checkpoint, then resume with different knobs: mismatch.
	p, err := NewEvolvePool(opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background())
	changed := opts
	changed.Seed++
	if _, err := ResumeEvolvePool(changed); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("resume with changed seed: %v, want ErrMismatch", err)
	}
	// A fresh pool must refuse to clobber the existing campaign.
	if _, err := NewEvolvePool(opts); err == nil {
		t.Fatal("fresh pool clobbered an existing checkpoint directory")
	}
}

func TestEvolveCampaignHashCoversKnobs(t *testing.T) {
	base := EvolveCampaignHash(evolveTestOpts())
	for name, mut := range map[string]func(*EvolvePoolOptions){
		"pop":         func(o *EvolvePoolOptions) { o.Pop++ },
		"generations": func(o *EvolvePoolOptions) { o.Generations++ },
		"seed":        func(o *EvolvePoolOptions) { o.Seed++ },
		"shards":      func(o *EvolvePoolOptions) { o.Shards = 3 },
		"steplimit":   func(o *EvolvePoolOptions) { o.StepLimit++ },
		"inputs":      func(o *EvolvePoolOptions) { o.RuntimeInputs = [][]byte{[]byte("x")} },
	} {
		o := evolveTestOpts()
		mut(&o)
		if EvolveCampaignHash(o) == base {
			t.Errorf("changing %s does not change the campaign hash", name)
		}
	}
	// Observability, cache, and parallelism knobs must not change it.
	o := evolveTestOpts()
	o.Parallelism = 7
	o.CacheBudget = 123
	o.StatsDir = "/tmp/x"
	o.CheckpointDir = "/tmp/y"
	if EvolveCampaignHash(o) != base {
		t.Error("an observability knob changed the campaign hash")
	}
}

func TestEvolvePoolTelemetry(t *testing.T) {
	opts := evolveTestOpts()
	opts.StatsDir = t.TempDir()
	p, st := runEvolve(t, opts)
	defer p.Close()
	snaps := p.Snapshots()
	if len(snaps) != opts.Generations {
		t.Fatalf("%d snapshots, want one per generation (%d)", len(snaps), opts.Generations)
	}
	last := snaps[len(snaps)-1]
	if last.Generation != opts.Generations {
		t.Fatalf("last snapshot generation %d, want %d", last.Generation, opts.Generations)
	}
	if last.Programs != int64(opts.Pop*opts.Generations) {
		t.Fatalf("last snapshot programs %d, want %d", last.Programs, opts.Pop*opts.Generations)
	}
	if last.PassCoverage == 0 {
		t.Fatal("campaign fired no passes at all; fitness telemetry is dead")
	}
	if last.BestFitness == 0 && last.MeanFitness == 0 {
		t.Fatal("fitness telemetry is all zero")
	}
	if st.PassCoverage != last.PassCoverage {
		t.Fatalf("stats coverage %d != snapshot coverage %d", st.PassCoverage, last.PassCoverage)
	}
}

// TestEvolveBeatsBlindProgen is the ISSUE's acceptance property: on
// the same program budget and seed, the evolutionary campaign reaches
// strictly higher cumulative pass coverage and at least as many
// unique triage buckets as blind progen sampling. The mechanism is
// structural — progen is UB-free and conservative by construction, so
// it can never emit the overflow-guard, deref-null-check, dead-load,
// or wrapping-multiply idioms the instrumented rewrites key on, while
// the evolve mutators insert exactly those shapes.
func TestEvolveBeatsBlindProgen(t *testing.T) {
	opts := evolveTestOpts()
	opts.Generations = 6
	pEvo, sEvo := runEvolve(t, opts)
	budget := opts.Pop * opts.Generations

	// Blind campaign: the same number of progen programs on the same
	// founder seed stream, through the compile-oracle pool.
	corpus := make([]string, 0, budget)
	for i := 0; i < budget; i++ {
		corpus = append(corpus, progen.Generate(opts.Seed+int64(i)).Src)
	}
	pBlind, err := NewCompilePool(corpus, CompilePoolOptions{StepLimit: opts.StepLimit})
	if err != nil {
		t.Fatal(err)
	}
	pBlind.Run(context.Background())

	// The compile pool does not track pass coverage; union it the same
	// way the evolve pool does, over the same configs.
	cfgs := compiler.DefaultSet()
	blindCum := make([]compiler.PassBits, len(cfgs))
	for _, src := range corpus {
		comp := progcache.Compile(src, cfgs, 1)
		for i, r := range comp.Results {
			blindCum[i] |= r.PassBits
		}
	}
	blindCov := 0
	for _, b := range blindCum {
		blindCov += bits.OnesCount32(uint32(b))
	}

	if sEvo.PassCoverage <= blindCov {
		t.Fatalf("evolve coverage %d not strictly above blind coverage %d on budget %d",
			sEvo.PassCoverage, blindCov, budget)
	}
	evoBuckets := len(pEvo.BucketKeys())
	blindBuckets := len(pBlind.BucketKeys())
	if evoBuckets < blindBuckets {
		t.Fatalf("evolve found %d buckets, blind %d", evoBuckets, blindBuckets)
	}
	if evoBuckets == 0 {
		t.Fatal("evolve campaign found no buckets at all; the unstable-code idioms never landed")
	}
	t.Logf("budget %d: evolve coverage %d / buckets %d, blind coverage %d / buckets %d",
		budget, sEvo.PassCoverage, evoBuckets, blindCov, blindBuckets)
}
