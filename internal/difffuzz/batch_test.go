package difffuzz

// Batch-mode regression tests: BatchSize changes when cross-checks
// happen, never what they find. A batched pool must produce the same
// signatures, buckets, and exec totals as an unbatched one; a batched
// campaign interrupted mid-chunk must resume into the same findings;
// and CampaignHash must ignore BatchSize so a checkpoint taken at one
// batch size resumes at any other.

import (
	"context"
	"testing"
)

// poolStatsMatch asserts the throughput-independent campaign totals
// agree: fuzzer-side shard stats, differential exec counts, and the
// cumulative budget.
func poolStatsMatch(t *testing.T, a, b *Pool) {
	t.Helper()
	as, bs := a.Stats(), b.Stats()
	if as.Execs != bs.Execs || as.DiffExecs != bs.DiffExecs {
		t.Fatalf("exec totals diverged: (%d execs, %d diff) vs (%d execs, %d diff)",
			as.Execs, as.DiffExecs, bs.Execs, bs.DiffExecs)
	}
	if a.SpentExecs() != b.SpentExecs() {
		t.Fatalf("spent budgets diverged: %d vs %d", a.SpentExecs(), b.SpentExecs())
	}
	for si := range as.ShardStats {
		if as.ShardStats[si] != bs.ShardStats[si] {
			t.Fatalf("shard %d stats diverged:\n%+v\n%+v", si, as.ShardStats[si], bs.ShardStats[si])
		}
	}
}

// TestPoolBatchMatchesUnbatched: a BatchSize=64 pool is byte-identical
// to a BatchSize=1 pool over the same budget — same signature and
// bucket sets, same per-signature counts, same exec totals. This is
// the campaign-level face of the core RunBatch self-test.
func TestPoolBatchMatchesUnbatched(t *testing.T) {
	tg := poolTarget(t)
	base := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300}

	unbatched, err := NewPool(tg.Src, tg.Seeds, base)
	if err != nil {
		t.Fatal(err)
	}
	unbatched.Run(context.Background(), 900)

	batchedOpts := base
	batchedOpts.BatchSize = 64
	batched, err := NewPool(tg.Src, tg.Seeds, batchedOpts)
	if err != nil {
		t.Fatal(err)
	}
	batched.Run(context.Background(), 900)

	comparePoolFindings(t, unbatched, batched)
	poolStatsMatch(t, unbatched, batched)
}

// TestPoolBatchResumeEquivalence is the mid-chunk resume regression:
// with SyncEvery=300 and BatchSize=64, every barrier lands mid-chunk
// (300 % 64 != 0), so the flush-at-Run-boundary path is what makes the
// checkpoint complete. An interrupted-and-resumed batched campaign
// must match an uninterrupted unbatched one — signatures, buckets,
// and exec totals.
func TestPoolBatchResumeEquivalence(t *testing.T) {
	tg := poolTarget(t)
	opts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300, BatchSize: 64}
	if opts.SyncEvery%int64(opts.BatchSize) == 0 {
		t.Fatal("test needs a barrier that splits a batch chunk")
	}

	freshOpts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300}
	fresh, err := NewPool(tg.Src, tg.Seeds, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background(), 1200)

	ckptOpts := opts
	ckptOpts.CheckpointDir = t.TempDir()
	first, err := NewPool(tg.Src, tg.Seeds, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	first.Run(context.Background(), 600)

	resumed, err := ResumePool(tg.Src, tg.Seeds, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.SpentExecs(); got != 600 {
		t.Fatalf("resumed pool reports %d spent execs, checkpoint held 600", got)
	}
	resumed.Run(context.Background(), 600)
	if got := resumed.SpentExecs(); got != 1200 {
		t.Fatalf("resumed pool spent %d total, want 1200", got)
	}

	comparePoolFindings(t, fresh, resumed)
	poolStatsMatch(t, fresh, resumed)
}

// TestCampaignHashIgnoresBatchSize pins the exclusion both ways: the
// hash is equal at BatchSize 1 and 64, and a checkpoint written by a
// batched campaign resumes under a different batch size (the knob is
// operational, not semantic — changing it must never strand a
// checkpoint behind ErrMismatch).
func TestCampaignHashIgnoresBatchSize(t *testing.T) {
	tg := poolTarget(t)
	base := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300}
	b1, b64 := base, base
	b1.BatchSize = 1
	b64.BatchSize = 64
	h1 := CampaignHash(tg.Src, tg.Seeds, b1)
	h64 := CampaignHash(tg.Src, tg.Seeds, b64)
	if h1 != h64 {
		t.Fatalf("CampaignHash depends on BatchSize: %016x (1) vs %016x (64)", h1, h64)
	}
	if h0 := CampaignHash(tg.Src, tg.Seeds, base); h0 != h1 {
		t.Fatalf("CampaignHash depends on unset BatchSize: %016x vs %016x", h0, h1)
	}

	ckptOpts := b64
	ckptOpts.CheckpointDir = t.TempDir()
	p, err := NewPool(tg.Src, tg.Seeds, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), 600)

	crossOpts := ckptOpts
	crossOpts.BatchSize = 1
	resumed, err := ResumePool(tg.Src, tg.Seeds, crossOpts)
	if err != nil {
		t.Fatalf("resume across a BatchSize change must succeed: %v", err)
	}
	resumed.Run(context.Background(), 600)

	fresh, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background(), 1200)
	comparePoolFindings(t, fresh, resumed)
}
