package difffuzz

// Telemetry wiring tests: determinism of the counters, the per-class
// partition invariant, periodic snapshot emission, and the pool's
// barrier snapshots (including plot.jsonl persistence).

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"compdiff/internal/telemetry"
)

func statsCampaign(t *testing.T, opts Options) *Campaign {
	t.Helper()
	c, err := New(listing1Target, [][]byte{[]byte("DT\x01\x02\x03\x04\x05\x06")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCampaignTelemetryDeterminism: with a fixed seed, two runs of the
// same campaign record identical counters — classification and
// counting must not perturb (or depend on) the fuzzing schedule.
func TestCampaignTelemetryDeterminism(t *testing.T) {
	final := func() (telemetry.Snapshot, []telemetry.ImplSummary) {
		c := statsCampaign(t, Options{FuzzSeed: 7, MaxInputLen: 8, Stats: true})
		c.Run(3000)
		snaps := c.Snapshots()
		if len(snaps) != 1 {
			t.Fatalf("want exactly the final snapshot, got %d", len(snaps))
		}
		return snaps[0], c.ImplSummaries()
	}
	s1, impls1 := final()
	s2, impls2 := final()

	if s1.Execs != s2.Execs || s1.DiffExecs != s2.DiffExecs {
		t.Fatalf("exec counters differ run-to-run: %+v vs %+v", s1, s2)
	}
	if s1.OK != s2.OK || s1.Crash != s2.Crash ||
		s1.StepLimitHang != s2.StepLimitHang || s1.Diff != s2.Diff {
		t.Fatalf("class counters differ run-to-run: %+v vs %+v", s1, s2)
	}
	if s1.UniqueDiffs != s2.UniqueDiffs || s1.TotalDiffInputs != s2.TotalDiffInputs {
		t.Fatalf("diff counters differ run-to-run: %+v vs %+v", s1, s2)
	}
	for i := range impls1 {
		// Latency sums are wall-clock and vary; the outcome counts (and
		// so the histogram totals) must not.
		if impls1[i].Outcomes != impls2[i].Outcomes {
			t.Fatalf("impl %s outcomes differ: %v vs %v",
				impls1[i].Name, impls1[i].Outcomes, impls2[i].Outcomes)
		}
		if impls1[i].Latency.Count != impls2[i].Latency.Count {
			t.Fatalf("impl %s latency count differs: %d vs %d",
				impls1[i].Name, impls1[i].Latency.Count, impls2[i].Latency.Count)
		}
	}
}

// TestCampaignTelemetryClassPartition: every generated input lands in
// exactly one class, so the per-class counts sum to Execs, and each
// implementation observed at least one VM run per generated input.
func TestCampaignTelemetryClassPartition(t *testing.T) {
	c := statsCampaign(t, Options{FuzzSeed: 11, MaxInputLen: 8, Stats: true})
	c.Run(3000)
	m := c.Metrics()
	if m == nil {
		t.Fatal("Stats: true built no metrics")
	}
	execs := m.Execs.Load()
	if execs == 0 {
		t.Fatal("no executions recorded")
	}
	if got := m.Classes.Total(); got != execs {
		t.Fatalf("class counts sum to %d, want execs %d", got, execs)
	}
	s := c.Snapshots()[0]
	if s.ClassTotal() != s.Execs {
		t.Fatalf("snapshot classes sum to %d, want execs %d", s.ClassTotal(), s.Execs)
	}
	if s.Diff == 0 {
		t.Fatal("campaign found diffs but classified none")
	}
	for _, sum := range c.ImplSummaries() {
		if sum.Runs() < execs {
			t.Fatalf("impl %s recorded %d runs for %d generated inputs",
				sum.Name, sum.Runs(), execs)
		}
		if sum.Latency.Count != sum.Runs() {
			t.Fatalf("impl %s: latency count %d != outcome count %d",
				sum.Name, sum.Latency.Count, sum.Runs())
		}
	}
}

// TestCampaignPeriodicSnapshots: StatsEvery emits a snapshot every N
// generated inputs, with monotonically nondecreasing counters.
func TestCampaignPeriodicSnapshots(t *testing.T) {
	c := statsCampaign(t, Options{FuzzSeed: 7, MaxInputLen: 8, StatsEvery: 500})
	c.Run(2500)
	snaps := c.Snapshots()
	// Seed ingestion plus the fuzz loop generate a touch more than the
	// budget, so at least budget/StatsEvery periodic snapshots plus the
	// final one exist.
	if len(snaps) < 6 {
		t.Fatalf("got %d snapshots, want >= 6", len(snaps))
	}
	assertMonotonic(t, snaps)
}

func assertMonotonic(t *testing.T, snaps []telemetry.Snapshot) {
	t.Helper()
	var prev telemetry.Snapshot
	for i, s := range snaps {
		if s.ClassTotal() != s.Execs {
			t.Fatalf("snapshot %d: classes sum to %d, execs %d", i, s.ClassTotal(), s.Execs)
		}
		if i > 0 {
			if s.Execs < prev.Execs || s.DiffExecs < prev.DiffExecs ||
				s.UniqueDiffs < prev.UniqueDiffs || s.ElapsedMs < prev.ElapsedMs {
				t.Fatalf("snapshot %d not monotonic: %+v after %+v", i, s, prev)
			}
		}
		prev = s
	}
}

// TestPoolTelemetryBarrierSnapshots runs a sharded pool with parallel
// cross-checks (the -race configuration the suite's concurrency claims
// are checked under), then validates the snapshot series and the
// plot.jsonl it persisted.
func TestPoolTelemetryBarrierSnapshots(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPool(listing1Target, [][]byte{[]byte("DT\x01\x02\x03\x04\x05\x06")}, Options{
		FuzzSeed:    7,
		MaxInputLen: 8,
		Shards:      4,
		SyncEvery:   500,
		Parallelism: 4,
		StatsDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stats := p.Run(nil, 2000)

	snaps := p.Snapshots()
	if len(snaps) != 4 { // 2000 budget / 500 sync = 4 barriers
		t.Fatalf("got %d snapshots, want 4", len(snaps))
	}
	assertMonotonic(t, snaps)

	last := snaps[len(snaps)-1]
	if last.Execs == 0 || last.ExecsPerSec <= 0 {
		t.Fatalf("final snapshot has no throughput: %+v", last)
	}
	if len(last.Shards) != 4 {
		t.Fatalf("final snapshot has %d shard entries, want 4", len(last.Shards))
	}
	var shardExecs int64
	for si, ss := range last.Shards {
		wantRole := "secondary"
		if si == 0 {
			wantRole = "main"
		}
		if ss.Shard != si || ss.Role != wantRole {
			t.Fatalf("shard entry %d: %+v", si, ss)
		}
		if ss.Retired {
			t.Fatalf("healthy shard %d marked retired", si)
		}
		shardExecs += ss.Execs
	}
	if shardExecs != last.Execs {
		t.Fatalf("shard execs sum to %d, pool total %d", shardExecs, last.Execs)
	}
	if last.UniqueDiffs != stats.UniqueDiffs || last.UniqueDiffs == 0 {
		t.Fatalf("final snapshot diffs %d, pool stats %d", last.UniqueDiffs, stats.UniqueDiffs)
	}

	// The merged per-implementation view covers every generated input.
	impls := p.ImplSummaries()
	if len(impls) == 0 {
		t.Fatal("no merged impl summaries")
	}
	for _, sum := range impls {
		if sum.Runs() < last.Execs {
			t.Fatalf("impl %s: %d runs for %d generated inputs", sum.Name, sum.Runs(), last.Execs)
		}
	}

	// plot.jsonl: parseable line-by-line, counters matching the
	// in-memory series.
	f, err := os.Open(filepath.Join(dir, "plot.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var fromFile []telemetry.Snapshot
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s telemetry.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad plot line %q: %v", sc.Text(), err)
		}
		fromFile = append(fromFile, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(fromFile) != len(snaps) {
		t.Fatalf("plot.jsonl has %d lines, in-memory series %d", len(fromFile), len(snaps))
	}
	for i := range fromFile {
		if fromFile[i].Execs != snaps[i].Execs || fromFile[i].ClassTotal() != snaps[i].Execs {
			t.Fatalf("plot line %d disagrees with series: %+v vs %+v", i, fromFile[i], snaps[i])
		}
	}
}

// TestPoolStatsOffByDefault: without stats options the campaign runs
// uninstrumented — no metrics, no recorder, no snapshot series.
func TestPoolStatsOffByDefault(t *testing.T) {
	c := statsCampaign(t, Options{FuzzSeed: 7, MaxInputLen: 8})
	c.Run(500)
	if c.Metrics() != nil || c.Snapshots() != nil || c.ImplSummaries() != nil {
		t.Fatal("stats collected without being asked for")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
