package difffuzz

// Concurrency regression tests for the control-plane read path: the
// supervisor's HTTP handlers call Pool.Stats while the campaign is
// executing, so every field it reads must be either atomic,
// mutex-guarded, or barrier-cached. Run under -race (scripts/check.sh
// runs the whole package that way), this pins the persistErrs
// plain-increment fix and the barrier-consistent shard-stat cache.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestPoolStatsConcurrentWithRun hammers Stats from several reader
// goroutines for the full duration of a sharded campaign. Beyond
// surviving the race detector, the reads must be sane: barrier
// monotonicity (execs, spent budget, and persist errors never go
// backwards) and internal consistency of each snapshot.
func TestPoolStatsConcurrentWithRun(t *testing.T) {
	tg := poolTarget(t)
	// A blocked diffs/ path makes persistence fail at every barrier, so
	// the hammered reads cover the persistErrs counter too — the field
	// whose plain increment used to race with exactly this read.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "diffs"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 150, DiffDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastExecs, lastSpent, lastPersist int64
			for {
				select {
				case <-done:
					return
				default:
				}
				st := p.Stats()
				if st.Execs < lastExecs || st.SpentExecs < lastSpent || st.PersistErrors < lastPersist {
					t.Errorf("stats went backwards: execs %d->%d, spent %d->%d, persist %d->%d",
						lastExecs, st.Execs, lastSpent, st.SpentExecs, lastPersist, st.PersistErrors)
					return
				}
				lastExecs, lastSpent, lastPersist = st.Execs, st.SpentExecs, st.PersistErrors
				if len(st.ShardStats) != st.Shards || len(st.ShardErrors) != st.Shards {
					t.Errorf("snapshot shape: %d shards but %d stats, %d errors",
						st.Shards, len(st.ShardStats), len(st.ShardErrors))
					return
				}
			}
		}()
	}

	final := p.Run(context.Background(), 1500)
	close(done)
	wg.Wait()

	if final.UniqueDiffs == 0 {
		t.Fatal("campaign found no discrepancies; the concurrent-read check barely exercised the stores")
	}
	if final.PersistErrors == 0 {
		t.Fatal("blocked DiffDir produced no persist errors; the racy counter path went unexercised")
	}
	// A post-Run Stats call must agree with the value Run returned —
	// the cache is refreshed at the final barrier.
	if again := p.Stats(); again.Execs != final.Execs || again.SpentExecs != final.SpentExecs ||
		again.UniqueCrashes != final.UniqueCrashes || again.PersistErrors != final.PersistErrors {
		t.Fatalf("post-Run Stats %+v disagrees with Run result %+v", again, final)
	}
}

// TestPoolBarrierHookRuns: the hook fires once per barrier with
// barrier-consistent stats, and its spent-budget view is monotonic.
func TestPoolBarrierHookRuns(t *testing.T) {
	tg := poolTarget(t)
	var spents []int64
	opts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 250,
		BarrierHook: func(st PoolStats) { spents = append(spents, st.SpentExecs) }}
	p, err := NewPool(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), 1000)
	if len(spents) != 4 {
		t.Fatalf("barrier hook ran %d times, want 4 (budget 1000 / sync 250)", len(spents))
	}
	for i, s := range spents {
		if want := int64(250 * (i + 1)); s != want {
			t.Fatalf("hook %d saw spent budget %d, want %d", i, s, want)
		}
	}
}
