package difffuzz

// CompilePool drives the compile-stage differential oracle over a
// *program* corpus, the way Pool drives the runtime oracle over an
// input corpus. Every program is compiled under all k implementations
// behind recover boundaries; accept/reject splits, ICEs, and
// diagnostic mismatches land in triage buckets (a crashing compiler is
// a finding, never a dead shard), and programs every implementation
// accepts are additionally run through the runtime differential on a
// configurable input set. Shards partition the corpus round-robin by
// index, merge shard-local buckets at barriers in shard order
// (merge-then-recount, like Pool), and checkpoint a durable corpus
// cursor so kill-9/resume reproduces an uninterrupted run's buckets
// exactly.

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"

	"compdiff/internal/checkpoint"
	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/hash"
	"compdiff/internal/progcache"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// CompilePoolOptions configures a compile-oracle campaign.
type CompilePoolOptions struct {
	// Configs are the implementations to cross-check. Defaults to the
	// paper's ten.
	Configs []compiler.Config
	// Shards is the number of worker shards (default 1). Program i is
	// owned by shard i mod Shards, independent of progress, so the
	// assignment is stable across resume.
	Shards int
	// SyncEvery is the number of corpus programs processed between
	// barriers, across all shards. Zero processes the whole corpus in
	// one epoch. Barriers are the merge and checkpoint points.
	SyncEvery int
	// StepLimit bounds each runtime cross-check execution.
	StepLimit int64
	// Parallelism is the per-program compile and suite parallelism.
	// Scheduling only — results are positional and deterministic.
	Parallelism int
	// RuntimeInputs are run differentially on every program all
	// implementations accept, so a program corpus feeds the runtime
	// oracle too. Default: just the empty input.
	RuntimeInputs [][]byte
	// CacheBudget is the byte budget of the shared compiled-program
	// cache (internal/progcache): every corpus program is compiled at
	// most once per distinct source text, and revisits — duplicate
	// corpus entries, or the future -evolve progen revisit path — cost
	// one hash and a map probe. 0 selects progcache.DefaultBudget, a
	// negative budget disables bounding, and setting it has no effect
	// on findings (a cached record is a pure function of the source),
	// which is why it stays out of CompileCampaignHash.
	CacheBudget int64
	// StatsDir, when set, streams one telemetry snapshot per barrier
	// to <dir>/plot.jsonl.
	StatsDir string
	// CheckpointDir enables durable snapshots; CheckpointEvery is the
	// number of barriers between them (default 1).
	CheckpointDir   string
	CheckpointEvery int64

	// resume marks pools built by ResumeCompilePool, which may (must)
	// find an existing checkpoint in CheckpointDir.
	resume bool
}

func (o CompilePoolOptions) configs() []compiler.Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return compiler.DefaultSet()
}

func (o CompilePoolOptions) runtimeInputs() [][]byte {
	if len(o.RuntimeInputs) > 0 {
		return o.RuntimeInputs
	}
	return [][]byte{nil}
}

// CompilePoolStats is the campaign summary.
type CompilePoolStats struct {
	Shards int
	// Programs is the number of corpus programs processed (a dead
	// shard's unprocessed programs are not counted).
	Programs int64
	// Accepted counts programs every implementation compiled.
	Accepted int64
	// FrontendRejects counts programs rejected uniformly — parse and
	// sema failures plus identical-diagnostic rejects. Not findings.
	FrontendRejects int64
	// Findings counts finding-producing programs before dedup
	// (compile-stage findings plus runtime divergences).
	Findings int64
	// UniqueBuckets is the deduplicated finding count, broken down by
	// kind below (RuntimeBuckets counts the runtime-oracle remainder).
	UniqueBuckets      int
	CompileDivergences int
	ICEs               int
	DiagMismatches     int
	RuntimeBuckets     int
	// Cursor is the number of corpus programs consumed (processed or
	// skipped by a retired shard); CorpusLen the corpus size.
	Cursor    int
	CorpusLen int
	// ShardErrors has one entry per shard; non-nil marks a retired
	// shard. ICEs never retire a shard — only a harness bug does.
	ShardErrors []error
}

// compileShard is one worker's slice of the campaign. Its counters
// and store are written only by the shard goroutine during an epoch
// and read only at barriers.
type compileShard struct {
	index         int
	buckets       *triage.BucketStore
	bucketsSynced int

	programs        int64
	accepted        int64
	frontendRejects int64
	findings        int64

	dead bool
	err  error
}

// CompilePool is the sharded compile-oracle campaign.
type CompilePool struct {
	opts   CompilePoolOptions
	cfgs   []compiler.Config
	corpus []string
	cursor int

	shards  []*compileShard
	buckets *triage.BucketStore
	cache   *progcache.Cache

	saver       *checkpoint.Saver
	ckptEvery   int64
	sinceCkpt   int64
	ckptLogged  bool
	optionsHash uint64

	recorder *telemetry.Recorder

	// epochHook runs at the top of each epoch (test seam, like Pool's).
	epochHook func(epoch int)
}

// CompileCampaignHash fingerprints everything that determines a
// compile-oracle campaign's findings: implementations, sharding,
// barrier cadence, runtime cross-check inputs, and the corpus itself.
// Parallelism and the observability knobs are excluded, as in
// CampaignHash.
func CompileCampaignHash(corpus []string, opts CompilePoolOptions) uint64 {
	d := hash.New128(0xcc01)
	for _, cfg := range opts.configs() {
		fmt.Fprintf(d, "cfg:%s\n", cfg.Name())
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	fmt.Fprintf(d, "step:%d shards:%d sync:%d\n", opts.StepLimit, shards, opts.SyncEvery)
	for _, in := range opts.runtimeInputs() {
		fmt.Fprintf(d, "input:%d:", len(in))
		d.Write(in)
	}
	for _, src := range corpus {
		fmt.Fprintf(d, "prog:%d:%s", len(src), src)
	}
	h1, _ := d.Sum128()
	return h1
}

// NewCompilePool builds a compile-oracle campaign over corpus.
func NewCompilePool(corpus []string, opts CompilePoolOptions) (*CompilePool, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("difffuzz: compile pool needs a non-empty program corpus")
	}
	cfgs := opts.configs()
	if len(cfgs) < 2 {
		return nil, fmt.Errorf("difffuzz: need at least 2 compiler implementations, got %d", len(cfgs))
	}
	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	opts.Shards = nshards
	if opts.CheckpointDir != "" && !opts.resume && checkpoint.Exists(opts.CheckpointDir) {
		return nil, fmt.Errorf("difffuzz: checkpoint directory %s already holds a campaign (resume it, or use a fresh directory)", opts.CheckpointDir)
	}

	p := &CompilePool{
		opts:        opts,
		cfgs:        cfgs,
		corpus:      append([]string(nil), corpus...),
		buckets:     triage.NewBucketStore(),
		cache:       progcache.New(opts.CacheBudget),
		optionsHash: CompileCampaignHash(corpus, opts),
	}
	for i := 0; i < nshards; i++ {
		p.shards = append(p.shards, &compileShard{index: i, buckets: triage.NewBucketStore()})
	}
	if opts.StatsDir != "" {
		rec, err := telemetry.NewRecorder(opts.StatsDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: stats: %w", err)
		}
		p.recorder = rec
	}
	if opts.CheckpointDir != "" {
		saver, err := checkpoint.NewSaver(opts.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: %w", err)
		}
		p.saver = saver
		p.ckptEvery = opts.CheckpointEvery
		if p.ckptEvery < 1 {
			p.ckptEvery = 1
		}
	}
	return p, nil
}

// ResumeCompilePool rebuilds a compile pool from the checkpoint in
// opts.CheckpointDir. Error classification matches ResumePool:
// ErrNoCheckpoint, ErrMismatch, ErrCorrupt.
func ResumeCompilePool(corpus []string, opts CompilePoolOptions) (*CompilePool, error) {
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("difffuzz: resume requires CheckpointDir")
	}
	st, _, err := checkpoint.Load(opts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	h := CompileCampaignHash(corpus, opts)
	if st.OptionsHash != h {
		return nil, fmt.Errorf("%w: checkpoint options hash %016x, this campaign hashes to %016x (same corpus and campaign options required)",
			checkpoint.ErrMismatch, st.OptionsHash, h)
	}
	opts.resume = true
	p, err := NewCompilePool(corpus, opts)
	if err != nil {
		return nil, err
	}
	if err := p.restore(st); err != nil {
		return nil, fmt.Errorf("%w: %v", checkpoint.ErrCorrupt, err)
	}
	return p, nil
}

// Run processes the corpus from the current cursor to the end (or
// until ctx is cancelled), merging and checkpointing at barriers.
// Safe to call again after cancellation to finish the remainder.
func (p *CompilePool) Run(ctx context.Context) CompilePoolStats {
	if ctx == nil {
		ctx = context.Background()
	}
	chunk := p.opts.SyncEvery
	if chunk <= 0 {
		chunk = len(p.corpus)
	}
	epoch := 0
	for p.cursor < len(p.corpus) && ctx.Err() == nil {
		if p.epochHook != nil {
			p.epochHook(epoch)
		}
		if ctx.Err() != nil {
			break
		}
		end := p.cursor + chunk
		if end > len(p.corpus) {
			end = len(p.corpus)
		}
		start := p.cursor
		var wg sync.WaitGroup
		for _, sh := range p.shards {
			if sh.dead {
				continue
			}
			wg.Add(1)
			go func(sh *compileShard) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						sh.dead = true
						sh.err = fmt.Errorf("difffuzz: compile shard %d panicked: %v\n%s", sh.index, r, debug.Stack())
					}
				}()
				for i := start; i < end; i++ {
					if i%len(p.shards) == sh.index {
						p.processProgram(sh, p.corpus[i])
					}
				}
			}(sh)
		}
		wg.Wait()
		p.cursor = end
		epoch++
		p.synchronizeCompile()
		if p.recorder != nil {
			p.recorder.Record(p.snapshotCompile())
		}
		if p.saver != nil {
			p.sinceCkpt++
			if p.sinceCkpt >= p.ckptEvery {
				p.saveCompileCheckpoint()
			}
		}
	}
	if p.saver != nil && p.sinceCkpt > 0 {
		p.saveCompileCheckpoint()
	}
	if p.recorder != nil {
		// A cancelled epoch never reached its barrier snapshot; record
		// the final state, then flush so process exit cannot lose it.
		// On cancellation the recorder is closed outright, matching the
		// runtime pool: a signal-driven exit path may never call Close,
		// and the plot.jsonl tail must be complete anyway (Close stays
		// a no-op afterwards).
		if ctx.Err() != nil {
			p.recorder.Record(p.snapshotCompile())
			_ = p.recorder.Sync()
			_ = p.recorder.Close()
		} else {
			_ = p.recorder.Sync()
		}
	}
	return p.Stats()
}

// processProgram feeds one corpus program through the compile oracle
// and, when universally accepted, the runtime oracle.
func (p *CompilePool) processProgram(sh *compileShard, src string) {
	sh.programs++
	// The cache serves revisits of an already-seen source without
	// re-running the front end or the k lowerings; the record is a
	// pure function of the source, so hit and miss paths produce
	// identical outcomes. Machines are built fresh per call — shards
	// share compiled programs read-only, never execution state.
	comp := p.cache.Get(src, p.cfgs, p.opts.Parallelism)
	if comp.FrontendErr != nil {
		sh.frontendRejects++
		return
	}
	suite, co, err := core.AssembleDifferential(comp.Results, p.cfgs, core.Options{
		StepLimit:   p.opts.StepLimit,
		Parallelism: p.opts.Parallelism,
	})
	if err != nil {
		sh.frontendRejects++
		return
	}
	if suite == nil {
		// Some implementation rejected or crashed: a finding exactly
		// when the partition or the normalized messages differ.
		if b, _ := sh.buckets.AddCompile(co); b != nil {
			sh.findings++
		} else {
			sh.frontendRejects++
		}
		return
	}
	sh.accepted++
	for _, in := range p.opts.runtimeInputs() {
		if o := suite.Run(in); o != nil && o.Diverged {
			sh.findings++
			sh.buckets.Add(o)
		}
	}
}

// synchronizeCompile is the barrier body: merge-then-recount of the
// shard-local bucket stores, in shard order, exactly like Pool's.
func (p *CompilePool) synchronizeCompile() {
	for _, sh := range p.shards {
		delta := sh.buckets.Since(sh.bucketsSynced)
		sh.bucketsSynced += len(delta)
		p.buckets.Absorb(delta)
	}
	totals := map[uint64]int{}
	for _, sh := range p.shards {
		for key, c := range sh.buckets.Counts() {
			totals[key] += c
		}
	}
	p.buckets.Recount(totals)
}

// saveCompileCheckpoint snapshots the pool at a barrier. Failures
// never stop the campaign; the previous checkpoint stays loadable.
func (p *CompilePool) saveCompileCheckpoint() {
	p.sinceCkpt = 0
	if err := p.saver.Save(p.exportCompileState()); err != nil {
		if !p.ckptLogged {
			log.Printf("difffuzz: checkpoint save failed (campaign continues on the previous checkpoint): %v", err)
			p.ckptLogged = true
		}
	}
}

// exportCompileState builds the durable snapshot: pool buckets in
// full, shard buckets as skeletons, and the corpus cursor.
func (p *CompilePool) exportCompileState() *checkpoint.State {
	st := &checkpoint.State{
		Version:     checkpoint.Version,
		OptionsHash: p.optionsHash,
		SpentExecs:  int64(p.cursor),
	}
	st.Buckets, st.BucketTotal = p.buckets.Export()
	cs := &checkpoint.CompileCampaignState{Cursor: p.cursor, CorpusLen: len(p.corpus)}
	for _, sh := range p.shards {
		snaps, total := sh.buckets.Export()
		for i := range snaps {
			snaps[i].Outcome = nil // skeleton: keys, counts, signatures
			snaps[i].Compile = nil
		}
		cs.Shards = append(cs.Shards, checkpoint.CompileShardState{
			Index:           sh.index,
			Dead:            sh.dead,
			Programs:        sh.programs,
			Accepted:        sh.accepted,
			FrontendRejects: sh.frontendRejects,
			Findings:        sh.findings,
			Buckets:         snaps,
			BucketTotal:     total,
		})
	}
	st.Compile = cs
	return st
}

// restore rebuilds pool state from a loaded snapshot.
func (p *CompilePool) restore(st *checkpoint.State) error {
	cs := st.Compile
	if cs == nil {
		return fmt.Errorf("checkpoint holds an input-fuzzing campaign, not a compile-oracle one")
	}
	if cs.CorpusLen != len(p.corpus) {
		return fmt.Errorf("checkpoint corpus length %d != %d", cs.CorpusLen, len(p.corpus))
	}
	if len(cs.Shards) != len(p.shards) {
		return fmt.Errorf("checkpoint has %d shards, pool has %d", len(cs.Shards), len(p.shards))
	}
	if cs.Cursor < 0 || cs.Cursor > len(p.corpus) {
		return fmt.Errorf("checkpoint cursor %d out of range", cs.Cursor)
	}
	p.cursor = cs.Cursor
	p.buckets = triage.RestoreBucketStore(st.Buckets, st.BucketTotal)
	for i, ss := range cs.Shards {
		sh := p.shards[i]
		sh.buckets = triage.RestoreBucketStore(ss.Buckets, ss.BucketTotal)
		sh.bucketsSynced = len(ss.Buckets)
		sh.dead = ss.Dead
		sh.programs = ss.Programs
		sh.accepted = ss.Accepted
		sh.frontendRejects = ss.FrontendRejects
		sh.findings = ss.Findings
	}
	return nil
}

// snapshotCompile aggregates shard counters into a telemetry record.
// Execs counts processed programs (each is one k-way compile).
func (p *CompilePool) snapshotCompile() telemetry.Snapshot {
	var s telemetry.Snapshot
	for _, sh := range p.shards {
		s.Programs += sh.programs
	}
	s.Execs = s.Programs
	s.UniqueBuckets = p.buckets.Len()
	kinds := p.buckets.KindCounts()
	s.CompileDivergences = kinds[triage.KindCompileDivergence]
	s.ICEs = kinds[triage.KindICE]
	s.DiagMismatches = kinds[triage.KindDiagMismatch]
	return s
}

// Stats summarizes the campaign so far.
func (p *CompilePool) Stats() CompilePoolStats {
	st := CompilePoolStats{
		Shards:    len(p.shards),
		Cursor:    p.cursor,
		CorpusLen: len(p.corpus),
	}
	for _, sh := range p.shards {
		st.Programs += sh.programs
		st.Accepted += sh.accepted
		st.FrontendRejects += sh.frontendRejects
		st.Findings += sh.findings
		st.ShardErrors = append(st.ShardErrors, sh.err)
	}
	st.UniqueBuckets = p.buckets.Len()
	kinds := p.buckets.KindCounts()
	st.CompileDivergences = kinds[triage.KindCompileDivergence]
	st.ICEs = kinds[triage.KindICE]
	st.DiagMismatches = kinds[triage.KindDiagMismatch]
	st.RuntimeBuckets = kinds[triage.KindRuntime]
	return st
}

// CacheStats exposes the compiled-program cache counters: hits are
// corpus revisits served without recompilation. Deliberately not part
// of CompilePoolStats — the counters are process-local (a resumed
// pool starts cold), while the stats struct is the cross-resume
// determinism fingerprint.
func (p *CompilePool) CacheStats() progcache.Stats { return p.cache.Stats() }

// BucketStore exposes the pool-wide store (reports, tables).
func (p *CompilePool) BucketStore() *triage.BucketStore { return p.buckets }

// BucketKeys is the sorted bucket-key set — the order-independent
// fingerprint of the campaign's findings.
func (p *CompilePool) BucketKeys() []uint64 { return p.buckets.Keys() }

// ImplNames returns the implementation names, suite order.
func (p *CompilePool) ImplNames() []string {
	names := make([]string, len(p.cfgs))
	for i, cfg := range p.cfgs {
		names[i] = cfg.Name()
	}
	return names
}

// CheckpointSeq is the last durable checkpoint's sequence number (0
// when none was written).
func (p *CompilePool) CheckpointSeq() int {
	if p.saver == nil {
		return 0
	}
	return p.saver.Seq()
}

// Snapshots returns the recorded progress series — one entry per
// synchronization barrier, plus the final post-cancel snapshot when a
// run was cancelled (empty when stats are disabled).
func (p *CompilePool) Snapshots() []telemetry.Snapshot {
	if p.recorder == nil {
		return nil
	}
	return p.recorder.Snapshots()
}

// Close releases observability resources (the stats recorder). A
// no-op when the recorder was already closed by a cancelled Run.
func (p *CompilePool) Close() {
	if p.recorder != nil {
		_ = p.recorder.Close()
	}
}
