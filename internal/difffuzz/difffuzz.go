// Package difffuzz implements CompDiff-AFL++ (paper §3.2, Algorithm
// 1): the AFL++-style fuzzer drives input generation against an
// instrumented binary B_fuzz, and every generated input is
// additionally executed on the k CompDiff binaries, whose outputs are
// cross-checked; diverging inputs land in the diffs/ store. The fuzzer
// core is untouched — CompDiff rides the execution hook — so any other
// fuzzing enhancement (sanitizers on B_fuzz included) composes with it,
// exactly as the paper argues.
package difffuzz

import (
	"fmt"
	"log"
	"sync/atomic"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/fuzz"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
	"compdiff/internal/vm"
)

// Options configures a campaign.
type Options struct {
	// Configs are the CompDiff compiler implementations (defaults to
	// the paper's ten).
	Configs []compiler.Config
	// FuzzSeed seeds the fuzzer RNG.
	FuzzSeed int64
	// StepLimit is the per-run budget for every binary.
	StepLimit int64
	// MaxInputLen caps generated inputs.
	MaxInputLen int
	// Sanitizer optionally instruments B_fuzz with a sanitizer, as
	// AFL++ users commonly do; CompDiff composes with it.
	Sanitizer vm.SanMode
	// Normalizer post-processes outputs before comparison (RQ5).
	Normalizer *core.Normalizer
	// DiffDir, when set, persists bug-triggering inputs under
	// DiffDir/diffs/.
	DiffDir string

	// SkipDeterministic disables the fuzzer's deterministic stage
	// (AFL's -d), trading systematic shallow exploration for havoc
	// throughput.
	SkipDeterministic bool

	// DivergenceFeedback adds inputs that trigger *new* discrepancy
	// signatures to the fuzzer's queue even when they contribute no
	// new coverage — the NEZHA-style behavioral-asymmetry feedback the
	// paper proposes as future work (§5). Because CompDiff's binaries
	// share one source, the signature partition is a cheap, stable
	// asymmetry fingerprint.
	DivergenceFeedback bool

	// Parallelism fans each differential cross-check across this many
	// worker goroutines (core.Options.Parallelism). <= 1 keeps the
	// sequential path.
	Parallelism int

	// BatchSize buffers this many generated inputs and cross-checks
	// them in one core.Suite.RunBatch call — one warm machine-set
	// borrow per batch instead of per exec. Values <= 1 keep the
	// per-exec path. Batching is throughput-only: the differential
	// verdicts are byte-identical at any batch size (the self-test
	// layer pins this), so BatchSize is excluded from CampaignHash and
	// a checkpoint may be resumed under a different batch size.
	// Ignored (clamped to 1) when DivergenceFeedback is on: feedback
	// must see each verdict before the next input is generated, which
	// is inherently per-exec.
	BatchSize int

	// Shards is the number of parallel fuzzer instances NewPool runs,
	// mirroring AFL++'s -M/-S multi-instance setup: shard 0 is the
	// main (deterministic stage enabled), secondaries run havoc-only,
	// and every shard derives a distinct RNG seed from FuzzSeed.
	// Values <= 1 mean a single shard. Ignored by New.
	Shards int

	// SyncEvery is the per-shard execution count a pool runs between
	// corpus/diff synchronization barriers. Zero picks budget/8. A
	// single-shard pool always runs its whole budget in one chunk,
	// which makes Shards=1 byte-identical to a plain Campaign.
	SyncEvery int64

	// Stats enables the telemetry layer: outcome classification of
	// every generated input, per-implementation latency histograms, and
	// AFL-plot-style progress snapshots. Off by default — the campaign
	// then runs with zero instrumentation on the hot path.
	Stats bool
	// StatsDir, when set (implies Stats), receives plot.jsonl: one JSON
	// snapshot per line, append-only, AFL plot_data style.
	StatsDir string
	// StatsEvery emits a periodic snapshot every N generated inputs
	// (implies Stats). Zero leaves only the per-Run final snapshot (and,
	// for pools, the per-barrier snapshots).
	StatsEvery int64

	// CheckpointDir, when set, makes the pool write a crash-safe
	// campaign snapshot (internal/checkpoint) at its synchronization
	// barriers, so a killed campaign resumes via ResumePool with the
	// findings and determinism of an uninterrupted run. Requires the
	// source-level constructors (NewPool / ResumePool), which compute
	// the options hash that guards against resuming under different
	// settings. A single-shard pool with checkpointing runs in
	// SyncEvery-sized chunks (it needs barriers to snapshot at), so
	// enable it on the fresh run too when comparing runs bit-for-bit.
	CheckpointDir string
	// CheckpointEvery is the number of synchronization barriers between
	// snapshots; <= 0 means every barrier.
	CheckpointEvery int64

	// BarrierHook, when set, runs at the end of every pool
	// synchronization barrier — single-threaded, after the merge, the
	// telemetry snapshot, and any checkpoint save — with the pool's
	// barrier-consistent stats. Worker processes under a supervisor use
	// it to publish an atomic heartbeat file per barrier. Observability
	// only: excluded from CampaignHash, ignored by plain Campaigns
	// (which have no barriers).
	BarrierHook func(PoolStats)

	// poolShard marks a campaign built as a pool shard: it keeps its
	// counters but no recorder — the pool snapshots at barriers, where
	// all shard goroutines have joined.
	poolShard bool
	// resume marks a pool being rebuilt over an existing checkpoint
	// (set only by ResumePool); without it, NewPool refuses a
	// CheckpointDir that already holds one.
	resume bool
	// ckptHash is the precomputed CampaignHash (set by NewPool before
	// it delegates to NewPoolChecked).
	ckptHash uint64
}

// statsEnabled reports whether any stats option asks for telemetry.
func (o Options) statsEnabled() bool {
	return o.Stats || o.StatsDir != "" || o.StatsEvery > 0
}

// Campaign is a CompDiff-AFL++ fuzzing session on one target. A
// Campaign is single-goroutine (the pool gives each shard its own);
// only DiffExecs may be read concurrently, via atomic load.
type Campaign struct {
	fuzzer *fuzz.Fuzzer
	suite  *core.Suite
	diffs  *core.DiffStore
	// buckets deduplicates the diverging outcomes by divergence
	// fingerprint (the triage layer). The signature-keyed DiffStore
	// stays authoritative for persistence and DivergenceFeedback;
	// buckets is the reporting view.
	buckets *triage.BucketStore

	// DiffExecs counts executions spent on the CompDiff binaries
	// (k per generated input) — the overhead the paper discusses.
	// Updated atomically so pool-level progress reporting can read it
	// while the shard runs.
	DiffExecs int64

	// persistErrs counts DiffStore persistence failures (disk-full,
	// permission loss). The campaign keeps running on such errors, but
	// they must not vanish: the count surfaces in snapshots, stats, and
	// the CLI summary, and the first occurrence is logged.
	persistErrs int64

	// metrics is nil unless Options ask for stats; every instrumented
	// branch on the hot path is a single nil check.
	metrics *telemetry.CampaignMetrics
	// recorder collects snapshots for a standalone campaign. Pool
	// shards have metrics but no recorder: the pool snapshots at its
	// barriers instead.
	recorder   *telemetry.Recorder
	statsEvery int64

	// Batch executor state (Options.BatchSize > 1). Generated inputs
	// are copied into batchBuf (the fuzzer reuses its mutation buffer,
	// so deferral requires ownership) and cross-checked batchSize at a
	// time through Suite.RunBatch. batchOffs holds len(batch)+1 prefix
	// offsets into batchBuf; batchCls the per-input B_fuzz class when
	// stats are on. batchIn/batchOuts are flush-time scratch.
	batchSize int
	batchBuf  []byte
	batchOffs []int
	batchCls  []telemetry.Class
	batchIn   [][]byte
	batchOuts []*core.Outcome
}

// New builds a campaign for the MiniC source with initial seeds.
func New(src string, seeds [][]byte, opts Options) (*Campaign, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: parse: %w", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: check: %w", err)
	}
	return NewChecked(info, seeds, opts)
}

// NewChecked builds a campaign from an already-checked program.
func NewChecked(info *sema.Info, seeds [][]byte, opts Options) (*Campaign, error) {
	cfgs := opts.Configs
	if len(cfgs) == 0 {
		cfgs = compiler.DefaultSet()
	}

	// B_fuzz: the fuzzer-configured binary with coverage
	// instrumentation (and optionally a sanitizer), compiled exactly
	// as in normal AFL++.
	fuzzCfg := compiler.Config{
		Family:     compiler.Clang,
		Opt:        O1ForSan(opts.Sanitizer),
		Instrument: true,
		ASan:       opts.Sanitizer == vm.SanASan,
		Sanitize:   opts.Sanitizer != vm.SanNone,
	}
	bfuzz, err := compiler.Compile(info, fuzzCfg)
	if err != nil {
		return nil, err
	}
	machine := vm.New(bfuzz, vm.Options{
		Coverage:  true,
		StepLimit: opts.StepLimit,
		San:       opts.Sanitizer,
	})

	var metrics *telemetry.CampaignMetrics
	var recorder *telemetry.Recorder
	if opts.statsEnabled() {
		names := make([]string, len(cfgs))
		for i, cfg := range cfgs {
			names[i] = cfg.Name()
		}
		metrics = telemetry.NewCampaignMetrics(names)
		if !opts.poolShard {
			recorder, err = telemetry.NewRecorder(opts.StatsDir)
			if err != nil {
				return nil, fmt.Errorf("difffuzz: stats: %w", err)
			}
		}
	}

	copts := core.Options{
		StepLimit:   opts.StepLimit,
		Normalizer:  opts.Normalizer,
		Parallelism: opts.Parallelism,
	}
	if metrics != nil {
		copts.Metrics = metrics.Suite
	}
	suite, err := core.Build(info, cfgs, copts)
	if err != nil {
		return nil, err
	}

	batch := opts.BatchSize
	if batch < 1 || opts.DivergenceFeedback {
		// Feedback consumes each verdict before the next mutation;
		// deferring verdicts would starve it, so clamp to per-exec.
		batch = 1
	}
	c := &Campaign{
		suite:      suite,
		diffs:      core.NewDiffStore(opts.DiffDir),
		buckets:    triage.NewBucketStore(),
		metrics:    metrics,
		recorder:   recorder,
		statsEvery: opts.StatsEvery,
		batchSize:  batch,
	}
	if batch > 1 {
		c.batchOffs = make([]int, 1, batch+1)
	}
	c.fuzzer = fuzz.New(machine, seeds, fuzz.Options{
		Seed:              opts.FuzzSeed,
		MaxInputLen:       opts.MaxInputLen,
		SkipDeterministic: opts.SkipDeterministic,
		// Algorithm 1, lines 9-12: run every generated input through
		// the CompDiff binaries and save it on output discrepancy.
		OnExec: func(input []byte, res *vm.Result) {
			// Batch path: defer the cross-check until batchSize inputs
			// have accumulated. Initial-corpus ingestion (c.fuzzer nil)
			// always takes the per-exec path so seed verdicts are
			// available the moment New returns, batched or not.
			if c.batchSize > 1 && c.fuzzer != nil {
				c.enqueue(input, res)
				return
			}
			// Fast path: outputs are checksummed in machine-owned
			// buffers; o.Results is materialized only on divergence,
			// which is exactly when diffs.Add needs the bytes.
			o := c.suite.RunFast(input)
			var cls telemetry.Class
			if c.metrics != nil {
				cls = core.ClassifyResult(res)
			}
			c.observe(input, o, cls, opts.DivergenceFeedback)
		},
	})
	return c, nil
}

// enqueue copies one generated input into the pending batch and
// flushes when it reaches batchSize. The copy is required: the fuzzer
// owns input and reuses the buffer for its next mutation.
func (c *Campaign) enqueue(input []byte, res *vm.Result) {
	c.batchBuf = append(c.batchBuf, input...)
	c.batchOffs = append(c.batchOffs, len(c.batchBuf))
	if c.metrics != nil {
		// Classify against the live B_fuzz result now; it is
		// machine-owned and invalid by flush time.
		c.batchCls = append(c.batchCls, core.ClassifyResult(res))
	}
	if len(c.batchOffs)-1 >= c.batchSize {
		c.flushBatch()
	}
}

// flushBatch cross-checks every pending input in one RunBatch call
// and feeds the outcomes through the same observation path the
// per-exec mode uses, in the same order the fuzzer generated them.
func (c *Campaign) flushBatch() {
	nb := len(c.batchOffs) - 1
	if nb <= 0 {
		return
	}
	c.batchIn = c.batchIn[:0]
	for i := 0; i < nb; i++ {
		c.batchIn = append(c.batchIn, c.batchBuf[c.batchOffs[i]:c.batchOffs[i+1]])
	}
	c.batchOuts = c.suite.RunBatch(c.batchIn, c.batchOuts[:0])
	for i, o := range c.batchOuts {
		if o.Diverged {
			// Diverged outcomes are retained by the diff store, but
			// o.Input aliases batchBuf, which the next batch reuses:
			// give the outcome its own copy.
			o.Input = append([]byte(nil), o.Input...)
		}
		var cls telemetry.Class
		if c.metrics != nil {
			cls = c.batchCls[i]
		}
		// Feedback is always off here: NewChecked clamps batchSize to 1
		// when DivergenceFeedback is requested.
		c.observe(o.Input, o, cls, false)
		c.batchOuts[i] = nil
	}
	c.batchBuf = c.batchBuf[:0]
	c.batchOffs = c.batchOffs[:1]
	c.batchCls = c.batchCls[:0]
}

// observe records one cross-checked input: divergence bookkeeping,
// optional fuzzer feedback, and telemetry. Shared verbatim by the
// per-exec and batch paths so their observable state is identical.
func (c *Campaign) observe(input []byte, o *core.Outcome, cls telemetry.Class, feedback bool) {
	atomic.AddInt64(&c.DiffExecs, int64(len(c.suite.Impls)))
	if o.Diverged {
		fresh, err := c.diffs.Add(o)
		if err != nil {
			// Persistence failure must not kill the campaign —
			// the in-memory record is kept regardless — but it
			// must not vanish either: the on-disk evidence is now
			// incomplete, so count it and log the first one.
			if atomic.AddInt64(&c.persistErrs, 1) == 1 {
				log.Printf("difffuzz: diff persistence failed (campaign continues, on-disk evidence incomplete): %v", err)
			}
		}
		c.buckets.Add(o)
		// c.fuzzer is nil while the initial corpus is being
		// ingested inside fuzz.New; those seeds are already
		// queued.
		if fresh && feedback && c.fuzzer != nil {
			c.fuzzer.ForceSeed(input)
		}
	}
	if m := c.metrics; m != nil {
		execs := m.Execs.Inc()
		m.DiffExecs.Add(int64(len(c.suite.Impls)))
		// Each generated input lands in exactly one class:
		// divergence dominates, otherwise the input is classed
		// by its B_fuzz result. The per-class counts therefore
		// always sum to Execs.
		if o.Diverged {
			cls = telemetry.ClassDiff
		}
		m.Classes.Inc(cls)
		// Periodic snapshot, AFL plot_data style. Skipped while
		// fuzz.New ingests the initial corpus (c.fuzzer nil).
		if c.recorder != nil && c.statsEvery > 0 &&
			execs%c.statsEvery == 0 && c.fuzzer != nil {
			c.recorder.Record(c.snapshot())
		}
	}
}

// O1ForSan picks the conventional optimization level for a sanitizer
// build (-O1), or -O2 for a plain fuzzing binary.
func O1ForSan(san vm.SanMode) compiler.OptLevel {
	if san != vm.SanNone {
		return compiler.O1
	}
	return compiler.O2
}

// Run fuzzes for the given number of executions on B_fuzz. With stats
// enabled, a final snapshot is recorded when the budget is spent.
func (c *Campaign) Run(budget int64) fuzz.Stats {
	st := c.fuzzer.Run(budget)
	// Drain any partial batch so the campaign's observable state
	// (diffs, buckets, counters) is complete at every Run boundary —
	// this is what makes pool barriers, checkpoints, and end-of-budget
	// reporting batch-size-invariant.
	c.flushBatch()
	if c.recorder != nil {
		c.recorder.Record(c.snapshot())
	}
	return st
}

// snapshot assembles the campaign's current progress record. Callers
// hold no locks: every source is either atomic or owned by the
// campaign goroutine.
func (c *Campaign) snapshot() telemetry.Snapshot {
	m := c.metrics
	st := c.fuzzer.Stats()
	s := telemetry.Snapshot{
		Execs:           m.Execs.Load(),
		DiffExecs:       m.DiffExecs.Load(),
		Queue:           st.Seeds,
		UniqueDiffs:     c.diffs.Len(),
		TotalDiffInputs: c.diffs.Total(),
		UniqueBuckets:   c.buckets.Len(),
		UniqueCrashes:   st.UniqueCrashes,
		PlateauExecs:    st.Execs - st.LastNewPath,
		PersistErrors:   atomic.LoadInt64(&c.persistErrs),
	}
	s.SetClasses(m.Classes.Snapshot())
	return s
}

// PersistErrors is the number of DiffStore persistence failures so
// far. Non-zero means the campaign ran to completion but dir-backed
// evidence is incomplete.
func (c *Campaign) PersistErrors() int64 {
	return atomic.LoadInt64(&c.persistErrs)
}

// Metrics returns the campaign's live counters, or nil when stats are
// disabled.
func (c *Campaign) Metrics() *telemetry.CampaignMetrics { return c.metrics }

// Snapshots returns the recorded progress series (empty when stats are
// disabled).
func (c *Campaign) Snapshots() []telemetry.Snapshot {
	if c.recorder == nil {
		return nil
	}
	return c.recorder.Snapshots()
}

// ImplSummaries returns per-implementation outcome counts and latency
// histograms, or nil when stats are disabled.
func (c *Campaign) ImplSummaries() []telemetry.ImplSummary {
	if c.metrics == nil {
		return nil
	}
	return c.metrics.Suite.Summaries()
}

// Close releases the stats recorder's plot file, if any.
func (c *Campaign) Close() error {
	if c.recorder == nil {
		return nil
	}
	return c.recorder.Close()
}

// Diffs returns the unique discrepancies found so far.
func (c *Campaign) Diffs() []*core.StoredDiff { return c.diffs.Unique() }

// Buckets returns the fingerprint-deduplicated findings in discovery
// order.
func (c *Campaign) Buckets() []*triage.Bucket { return c.buckets.Buckets() }

// BucketStore exposes the campaign's triage store (reporting and
// pool-merge use).
func (c *Campaign) BucketStore() *triage.BucketStore { return c.buckets }

// TotalDiffInputs is the number of diverging inputs seen, pre-dedup.
func (c *Campaign) TotalDiffInputs() int { return c.diffs.Total() }

// Crashes returns B_fuzz crashes (AFL++'s native findings, including
// sanitizer aborts when a sanitizer is enabled).
func (c *Campaign) Crashes() []*fuzz.Crash { return c.fuzzer.Crashes() }

// Stats returns fuzzer statistics.
func (c *Campaign) Stats() fuzz.Stats { return c.fuzzer.Stats() }

// ImplNames lists the CompDiff implementation names.
func (c *Campaign) ImplNames() []string { return c.suite.Names() }
