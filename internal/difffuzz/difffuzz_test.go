package difffuzz

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/vm"
)

// A target with a fuzzer-reachable unstable guard (Listing 1 shape):
// the bug triggers only when the input drives offset+len into signed
// overflow, so finding it requires both coverage-guided input
// generation and the differential oracle.
const listing1Target = `
int dump_data(int offset, int len, int size) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    if (offset > size) { return -2; }
    return offset + len;
}
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 8) { return 0; }
    if (buf[0] != 'D' || buf[1] != 'T') { return 0; }
    int offset = 0;
    int len = 0;
    memcpy((char*)&offset, buf, 4L);
    memcpy((char*)&len, buf + 4, 4L);
    offset = offset & 2147483647;
    len = len & 2147483647;
    printf("r=%d\n", dump_data(offset, len, 2147483647));
    return 0;
}
`

// A target with a plain crash (what AFL++ itself finds) and no
// unstable code.
const crashTarget = `
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n >= 2 && buf[0] == 'G' && buf[1] == 'O') {
        int* p = 0;
        *p = 1;
    }
    printf("bye\n");
    return 0;
}
`

func TestCampaignFindsUnstableCode(t *testing.T) {
	c, err := New(listing1Target, [][]byte{[]byte("DT\x01\x02\x03\x04\x05\x06")}, Options{
		FuzzSeed:    7,
		MaxInputLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30_000)
	if len(c.Diffs()) == 0 {
		t.Fatalf("no discrepancies found; stats=%+v", c.Stats())
	}
	d := c.Diffs()[0]
	rep := d.Report(c.ImplNames())
	if !strings.Contains(rep, "reproducers:") {
		t.Fatalf("bad report:\n%s", rep)
	}
	// The diff-triggering input must reproduce deterministically.
	if c.DiffExecs == 0 {
		t.Fatal("differential oracle never ran")
	}
}

func TestCampaignCrashesStillCaught(t *testing.T) {
	c, err := New(crashTarget, [][]byte{[]byte("AA")}, Options{FuzzSeed: 3, MaxInputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(20_000)
	if len(c.Crashes()) == 0 {
		t.Fatal("fuzzer lost its native crash detection")
	}
	// All binaries crash identically on the crashing input; the only
	// expected divergences would be unrelated. A SIGSEGV on every
	// implementation is not a discrepancy.
	for _, d := range c.Diffs() {
		t.Fatalf("unexpected discrepancy on stable target: %s", d.Report(c.ImplNames()))
	}
}

func TestCampaignComposesWithASan(t *testing.T) {
	// Sanitizers work on B_fuzz exactly as in stock AFL++ (§3.2).
	src := `
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    if (n >= 2 && buf[0] == 'H' && buf[1] == 'O') {
        char* p = (char*)malloc(4L);
        p[buf[2] & 15] = 1;
        free(p);
    }
    return 0;
}
`
	c, err := New(src, [][]byte{[]byte("HO\x0f")}, Options{
		FuzzSeed:  11,
		Sanitizer: vm.SanASan,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5_000)
	found := false
	for _, cr := range c.Crashes() {
		if cr.Result.San != nil && cr.Result.San.Kind == "heap-buffer-overflow" {
			found = true
		}
	}
	if !found {
		t.Fatal("ASan on B_fuzz found nothing")
	}
}

func TestCampaignWithSubsetOfImplementations(t *testing.T) {
	// The 2-implementation configuration the paper recommends under
	// resource constraints: one unoptimizing, one aggressively
	// optimizing, from different families.
	cfgs := []compiler.Config{
		{Family: compiler.GCC, Opt: compiler.O0},
		{Family: compiler.Clang, Opt: compiler.O3},
	}
	c, err := New(listing1Target, [][]byte{[]byte("DT\x01\x02\x03\x04\x05\x06")}, Options{
		FuzzSeed:    7,
		Configs:     cfgs,
		MaxInputLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30_000)
	if len(c.Diffs()) == 0 {
		t.Fatal("the O0/O3 cross-family pair should still catch Listing 1")
	}
	if got := len(c.ImplNames()); got != 2 {
		t.Fatalf("impls = %d", got)
	}
}

func TestDiffDirPersistsInputs(t *testing.T) {
	dir := t.TempDir()
	c, err := New(listing1Target, [][]byte{[]byte("DT\x7f\xff\xff\x7f\xff\x7f")}, Options{
		FuzzSeed:    1,
		MaxInputLen: 8,
		DiffDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(20_000)
	if len(c.Diffs()) == 0 {
		t.Skip("campaign found nothing with this seed; covered elsewhere")
	}
	// The store wrote at least one representative input.
	if c.TotalDiffInputs() < len(c.Diffs()) {
		t.Fatal("total < unique")
	}
}
