package difffuzz

// The sharded campaign orchestrator: the AFL++ -M/-S topology the
// paper's evaluation used on its 64-core server (§4, Tables 5-6),
// reproduced as a pool of N in-process fuzzer shards. Shard 0 is the
// main instance (deterministic stage enabled, like -M); secondaries
// run havoc-only (like -S). Each shard owns its fuzzer, its B_fuzz
// machine, its CompDiff suite, and a shard-local DiffStore, so the
// shards never contend mid-epoch and a fixed FuzzSeed yields the same
// findings regardless of goroutine scheduling.
//
// Shards meet at synchronization barriers every SyncEvery executions.
// A barrier, run single-threaded in shard-index order, does what
// AFL's periodic queue-directory scans do: it merges each shard's new
// discrepancies into the shared mutex-guarded DiffStore, recounts the
// shared totals, and cross-pollinates both the diff-triggering inputs
// and the coverage-fresh queue entries into every sibling shard.
// Because barriers are the only cross-shard channel, the set of
// discrepancy signatures a pool finds is a deterministic function of
// (source, seeds, options) — discovery *order* inside an epoch is the
// only thing scheduling can vary, and the shared store absorbs in
// shard order, so even that is stable.

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"compdiff/internal/checkpoint"
	"compdiff/internal/core"
	"compdiff/internal/fuzz"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// Pool runs N campaign shards over one target.
type Pool struct {
	opts   Options
	shards []*shard
	store  *core.DiffStore // shared; shard stores merge into it at barriers
	// buckets is the pool-wide triage store: shard-local bucket stores
	// merge into it at the same barriers, so two shards hitting the
	// same underlying bug yield exactly one pool-wide bucket.
	buckets *triage.BucketStore

	// mu guards the shard health fields a panicking shard goroutine
	// writes during an epoch, plus the barrier-consistent stat caches
	// below — the data a concurrent Stats reader (the control plane)
	// touches while an epoch runs.
	mu sync.Mutex
	// statShards / statCrashes are barrier-consistent copies of the
	// per-shard fuzzer stats and the content-deduplicated crash-input
	// set. Shard fuzzers are goroutine-confined, so a live Stats call
	// must not touch them mid-epoch; these caches are refreshed at
	// every synchronization barrier (and at construction/restore),
	// which is also the only moment the numbers are mutually
	// consistent.
	statShards  []fuzz.Stats
	statCrashes map[string]bool

	// recorder is nil unless Options ask for stats. Snapshots are taken
	// at synchronization barriers (all shard goroutines joined, so the
	// per-class counters sum to the exec total exactly) and once more
	// when Run returns.
	recorder *telemetry.Recorder

	// epochHook, when set, runs at the start of every shard epoch
	// inside the panic-recovery scope. Tests use it to wedge a shard.
	epochHook func(shardIndex int)

	// saver is nil unless Options ask for checkpointing. Snapshots are
	// taken at barriers — the only single-threaded moment — every
	// ckptEvery barriers and once more when Run returns.
	saver     *checkpoint.Saver
	ckptEvery int64
	sinceCkpt int64
	// optionsHash guards resume: a checkpoint only loads into a pool
	// whose CampaignHash matches.
	optionsHash uint64
	// spentTotal accumulates the per-shard budget across Run calls
	// (restored on resume, so it spans process lifetimes). Atomic so a
	// concurrent Stats reader sees a coherent value mid-campaign.
	spentTotal atomic.Int64
	// persistErrs counts shared-store persistence failures observed at
	// barriers. Atomic: the control plane reads stats while the
	// campaign runs, and the shard counters it is summed with are
	// already atomics — a plain increment here was the one racy read
	// in that path. persistLogged / ckptLogged keep the logs to one
	// line per failure kind per campaign.
	persistErrs   atomic.Int64
	persistLogged bool
	ckptLogged    bool
}

// shard is one fuzzer instance plus its synchronization bookkeeping.
type shard struct {
	c *Campaign

	diffsSynced   int             // shard-local store entries already merged
	bucketsSynced int             // shard-local buckets already merged
	queueSeen     map[uint64]bool // queue entry hashes already cross-pollinated
	dead          bool            // a panicking shard is retired, not restarted
	err           error
}

// PoolStats summarizes a pool run.
type PoolStats struct {
	Shards int
	// Execs is the total number of B_fuzz executions across shards.
	Execs int64
	// DiffExecs is the total spent on the CompDiff binaries.
	DiffExecs int64
	// UniqueDiffs and TotalDiffInputs mirror the shared store.
	UniqueDiffs     int
	TotalDiffInputs int
	// UniqueBuckets is the pool-wide count of fingerprint-deduplicated
	// findings — the triage layer's view of UniqueDiffs.
	UniqueBuckets int
	// CompileDivergences, ICEs, and DiagMismatches break UniqueBuckets
	// down by compile-stage finding kind. All zero in input-fuzzing
	// pools, whose findings are runtime-kind by construction; the
	// compile-oracle pool shares this stats shape.
	CompileDivergences int
	ICEs               int
	DiagMismatches     int
	// UniqueCrashes counts content-distinct B_fuzz crashes pool-wide.
	UniqueCrashes int
	// ShardStats holds each shard's fuzzer statistics.
	ShardStats []fuzz.Stats
	// ShardErrors has one entry per shard; non-nil marks a shard that
	// panicked and was retired. The campaign itself keeps running.
	ShardErrors []error
	// PersistErrors counts DiffStore persistence failures (shared store
	// and shards). Non-zero means the campaign completed but DiffDir is
	// missing evidence files.
	PersistErrors int64
	// SpentExecs is the cumulative per-shard budget across Run calls,
	// including runs before a resume.
	SpentExecs int64
}

// NewPool parses and checks src once, then builds opts.Shards
// campaign shards with AFL -M/-S roles and ShardSeed-derived RNG
// seeds. Bug-triggering inputs persist (when opts.DiffDir is set)
// only through the shared store, so shards never contend on files.
func NewPool(src string, seeds [][]byte, opts Options) (*Pool, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: parse: %w", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: check: %w", err)
	}
	if opts.CheckpointDir != "" {
		// Only the source-level constructor can compute the hash that
		// guards resume (NewPoolChecked never sees the source text).
		opts.ckptHash = CampaignHash(src, seeds, opts)
	}
	return NewPoolChecked(info, seeds, opts)
}

// NewPoolChecked builds a pool from an already-checked program.
func NewPoolChecked(info *sema.Info, seeds [][]byte, opts Options) (*Pool, error) {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	p := &Pool{
		opts:    opts,
		store:   core.NewDiffStore(opts.DiffDir),
		buckets: triage.NewBucketStore(),
	}
	if opts.CheckpointDir != "" {
		if opts.ckptHash == 0 {
			return nil, fmt.Errorf("difffuzz: checkpointing requires NewPool or ResumePool (the source-level constructors)")
		}
		if !opts.resume && checkpoint.Exists(opts.CheckpointDir) {
			return nil, fmt.Errorf("difffuzz: %s already holds a checkpoint; resume it or pick a fresh directory", opts.CheckpointDir)
		}
		saver, err := checkpoint.NewSaver(opts.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: %w", err)
		}
		p.saver = saver
		p.optionsHash = opts.ckptHash
		p.ckptEvery = opts.CheckpointEvery
		if p.ckptEvery <= 0 {
			p.ckptEvery = 1
		}
	}
	if opts.statsEnabled() {
		rec, err := telemetry.NewRecorder(opts.StatsDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: stats: %w", err)
		}
		p.recorder = rec
	}
	for si := 0; si < n; si++ {
		sopts := opts
		sopts.FuzzSeed = ShardSeed(opts.FuzzSeed, si)
		sopts.DiffDir = "" // shard-local stores stay in memory
		if opts.statsEnabled() {
			// Shards keep their counters but the pool owns the snapshot
			// series and the plot file.
			sopts.Stats = true
			sopts.StatsDir = ""
			sopts.StatsEvery = 0
			sopts.poolShard = true
		}
		if si > 0 {
			// Secondaries skip the deterministic stage, AFL -S style:
			// systematic shallow exploration is the main's job.
			sopts.SkipDeterministic = true
		}
		c, err := NewChecked(info, seeds, sopts)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: shard %d: %w", si, err)
		}
		p.shards = append(p.shards, &shard{c: c, queueSeen: map[uint64]bool{}})
	}
	p.refreshStatCache()
	return p, nil
}

// refreshStatCache recomputes the barrier-consistent shard-stat and
// crash-set caches that a concurrent Stats reader consumes. Called
// only when no shard goroutine is running: at construction, at every
// synchronization barrier, and after a checkpoint restore.
func (p *Pool) refreshStatCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.statShards == nil {
		p.statShards = make([]fuzz.Stats, len(p.shards))
	}
	if p.statCrashes == nil {
		p.statCrashes = map[string]bool{}
	}
	for si, s := range p.shards {
		p.statShards[si] = s.c.Stats()
		for _, cr := range s.c.Crashes() {
			p.statCrashes[string(cr.Input)] = true
		}
	}
}

// ShardSeed derives shard si's fuzzer RNG seed from the base seed.
// Shard 0 keeps the base seed verbatim, so a single-shard pool is
// byte-identical to a plain Campaign; the rest get splitmix64-mixed
// values, distinct even for adjacent bases.
func ShardSeed(base int64, si int) int64 {
	if si == 0 {
		return base
	}
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(si)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run fuzzes every live shard for budget executions (per shard),
// pausing at synchronization barriers. Cancellation is checked at
// every barrier: on ctx.Done the current epoch finishes (epochs are
// bounded by SyncEvery, and every VM run is step-limited, so a shard
// cannot wedge an epoch open), findings so far are merged, and Run
// returns. A shard that panics is retired with its error recorded;
// the remaining shards keep fuzzing.
func (p *Pool) Run(ctx context.Context, budget int64) PoolStats {
	if ctx == nil {
		ctx = context.Background()
	}
	chunk := p.opts.SyncEvery
	if chunk <= 0 {
		chunk = budget / 8
	}
	if len(p.shards) == 1 && p.saver == nil {
		// A single shard needs no barriers, so the whole budget runs in
		// one chunk — keeping Shards=1 byte-identical to a plain
		// Campaign. With checkpointing on, barriers are the snapshot
		// points, so the shard chunks like a multi-shard pool; fresh
		// and resumed runs then share the same chunking, which is what
		// makes resume execution-equivalent.
		chunk = budget
	}
	if chunk < 1 {
		chunk = budget
	}
	var spent int64
	for spent < budget && ctx.Err() == nil {
		step := chunk
		if rem := budget - spent; step > rem {
			step = rem
		}
		var wg sync.WaitGroup
		for si, s := range p.shards {
			if s.dead {
				continue
			}
			wg.Add(1)
			go func(si int, s *shard) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						p.mu.Lock()
						s.dead = true
						s.err = fmt.Errorf("difffuzz: shard %d panicked: %v\n%s", si, r, debug.Stack())
						p.mu.Unlock()
					}
				}()
				if p.epochHook != nil {
					p.epochHook(si)
				}
				s.c.Run(step)
			}(si, s)
		}
		wg.Wait()
		spent += step
		p.spentTotal.Add(step)
		p.synchronize()
		if p.recorder != nil {
			p.recorder.Record(p.snapshot())
		}
		if p.saver != nil {
			p.sinceCkpt++
			if p.sinceCkpt >= p.ckptEvery {
				p.saveCheckpoint()
			}
		}
		if p.opts.BarrierHook != nil {
			// Last, so the hook observes the post-merge, post-checkpoint
			// state: a heartbeat written here never claims progress the
			// durable checkpoint does not yet hold beyond one interval.
			p.opts.BarrierHook(p.Stats())
		}
		if p.liveShards() == 0 {
			break
		}
	}
	// A checkpoint-due barrier may not have been the last one (or the
	// budget may not divide evenly); make the final state durable so a
	// follow-up resume loses nothing.
	if p.saver != nil && p.sinceCkpt > 0 {
		p.saveCheckpoint()
	}
	if ctx.Err() != nil {
		// Cancellation ends the campaign mid-budget: emit a final
		// snapshot reflecting the merged post-barrier state and flush
		// the plot file, so the telemetry tail is not lost if the
		// process exits without calling Close.
		if p.recorder != nil {
			p.recorder.Record(p.snapshot())
			_ = p.recorder.Sync()
			_ = p.recorder.Close()
		}
	}
	return p.Stats()
}

// saveCheckpoint snapshots the pool at a barrier. Save failures never
// stop the campaign — the previous checkpoint (if any) stays loadable
// — but the first one is logged.
func (p *Pool) saveCheckpoint() {
	p.sinceCkpt = 0
	if err := p.saver.Save(p.exportState()); err != nil {
		if !p.ckptLogged {
			log.Printf("difffuzz: checkpoint save failed (campaign continues on the previous checkpoint): %v", err)
			p.ckptLogged = true
		}
	}
}

// snapshot aggregates the shard counters into one pool-wide progress
// record. Called only between epochs (barrier or after Run), when no
// shard goroutine is running.
func (p *Pool) snapshot() telemetry.Snapshot {
	var s telemetry.Snapshot
	var classes [telemetry.NumClasses]int64
	crashes := map[string]bool{}
	plateau := int64(-1)
	for si, sh := range p.shards {
		m := sh.c.metrics
		st := sh.c.fuzzer.Stats()
		s.Execs += m.Execs.Load()
		s.DiffExecs += m.DiffExecs.Load()
		for k, n := range m.Classes.Snapshot() {
			classes[k] += n
		}
		s.Queue += st.Seeds
		for _, cr := range sh.c.Crashes() {
			crashes[string(cr.Input)] = true
		}
		age := st.Execs - st.LastNewPath
		if !sh.dead && (plateau < 0 || age < plateau) {
			plateau = age
		}
		role := "main"
		if si > 0 {
			role = "secondary"
		}
		s.Shards = append(s.Shards, telemetry.ShardSnapshot{
			Shard:         si,
			Role:          role,
			Execs:         m.Execs.Load(),
			Queue:         st.Seeds,
			UniqueDiffs:   sh.c.diffs.Len(),
			UniqueBuckets: sh.c.buckets.Len(),
			PlateauExecs:  age,
			Retired:       sh.dead,
		})
	}
	s.SetClasses(classes)
	s.UniqueDiffs = p.store.Len()
	s.TotalDiffInputs = p.store.Total()
	s.UniqueBuckets = p.buckets.Len()
	s.UniqueCrashes = len(crashes)
	s.PersistErrors = p.persistErrors()
	if plateau > 0 {
		s.PlateauExecs = plateau
	}
	return s
}

// persistErrors totals persistence failures across the shared store
// and the shards. Every term is atomic, so this is safe mid-epoch.
func (p *Pool) persistErrors() int64 {
	n := p.persistErrs.Load()
	for _, s := range p.shards {
		n += atomic.LoadInt64(&s.c.persistErrs)
	}
	return n
}

func (p *Pool) liveShards() int {
	n := 0
	for _, s := range p.shards {
		if !s.dead {
			n++
		}
	}
	return n
}

// synchronize is the barrier body. It runs single-threaded (all
// shard goroutines have joined), in shard-index order, which keeps
// the shared store's discovery order deterministic.
func (p *Pool) synchronize() {
	// 1. Merge each shard's new discrepancies into the shared store
	// and remember the diff-triggering inputs that were new pool-wide.
	var freshInputs [][]byte
	for _, s := range p.shards {
		delta := s.c.diffs.Since(s.diffsSynced)
		s.diffsSynced += len(delta)
		// A persistence error must not stop the campaign (the
		// in-memory merge always completes), but dropping it on the
		// floor hid incomplete DiffDir evidence from every report:
		// count it and log the first occurrence.
		fresh, err := p.store.Absorb(delta)
		if err != nil {
			p.persistErrs.Add(1)
			if !p.persistLogged {
				log.Printf("difffuzz: diff persistence failed (campaign continues, on-disk evidence incomplete): %v", err)
				p.persistLogged = true
			}
		}
		for _, d := range fresh {
			freshInputs = append(freshInputs, d.Outcome.Input)
		}
	}

	// 2. Recount: the shared store's per-signature counts become the
	// exact sum over shard-local stores.
	totals := map[uint64]int{}
	for _, s := range p.shards {
		for sig, c := range s.c.diffs.Counts() {
			totals[sig] += c
		}
	}
	p.store.Recount(totals)

	// 2b. Same merge-then-recount for the triage buckets: new bucket
	// keys are absorbed in shard order, and per-bucket hit counts
	// become the exact sum over shard-local stores.
	for _, s := range p.shards {
		delta := s.c.buckets.Since(s.bucketsSynced)
		s.bucketsSynced += len(delta)
		p.buckets.Absorb(delta)
	}
	bucketTotals := map[uint64]int{}
	for _, s := range p.shards {
		for key, c := range s.c.buckets.Counts() {
			bucketTotals[key] += c
		}
	}
	p.buckets.Recount(bucketTotals)

	// 3. Cross-pollinate, AFL -M/-S style: every sibling imports the
	// coverage-fresh queue entries and new diff inputs it has not
	// seen. ForceSeed content-deduplicates on the receiving side.
	for _, s := range p.shards {
		var newSeeds [][]byte
		for _, q := range s.c.fuzzer.Queue() {
			if !s.queueSeen[q.Hash] {
				s.queueSeen[q.Hash] = true
				newSeeds = append(newSeeds, q.Data)
			}
		}
		for _, other := range p.shards {
			if other == s || other.dead {
				continue
			}
			for _, data := range newSeeds {
				other.c.fuzzer.ForceSeed(data)
			}
		}
	}
	for _, s := range p.shards {
		if s.dead {
			continue
		}
		for _, data := range freshInputs {
			s.c.fuzzer.ForceSeed(data)
		}
	}

	// 4. Refresh the barrier-consistent caches a concurrent Stats
	// reader (the control plane) consumes while the next epoch runs.
	p.refreshStatCache()
}

// Stats aggregates pool-wide statistics. Safe to call concurrently
// with Run — the control plane polls it while a campaign executes.
// Per-shard fuzzer numbers and the crash count are barrier-consistent
// (refreshed at every synchronization barrier, so a mid-epoch read
// reports the last barrier's state); the shared stores and the atomic
// counters are read live. After Run returns the last barrier has run,
// so every field is exact.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Shards: len(p.shards)}
	p.mu.Lock()
	st.ShardStats = append([]fuzz.Stats(nil), p.statShards...)
	st.UniqueCrashes = len(p.statCrashes)
	for _, s := range p.shards {
		st.ShardErrors = append(st.ShardErrors, s.err)
	}
	p.mu.Unlock()
	for _, fs := range st.ShardStats {
		st.Execs += fs.Execs
	}
	for _, s := range p.shards {
		st.DiffExecs += atomic.LoadInt64(&s.c.DiffExecs)
	}
	st.UniqueDiffs = p.store.Len()
	st.TotalDiffInputs = p.store.Total()
	st.UniqueBuckets = p.buckets.Len()
	kinds := p.buckets.KindCounts()
	st.CompileDivergences = kinds[triage.KindCompileDivergence]
	st.ICEs = kinds[triage.KindICE]
	st.DiagMismatches = kinds[triage.KindDiagMismatch]
	st.PersistErrors = p.persistErrors()
	st.SpentExecs = p.spentTotal.Load()
	return st
}

// Diffs returns the pool-wide unique discrepancies (shared store,
// merge order).
func (p *Pool) Diffs() []*core.StoredDiff { return p.store.Unique() }

// TotalDiffInputs is the pool-wide count of diverging inputs seen.
func (p *Pool) TotalDiffInputs() int { return p.store.Total() }

// Signatures returns the sorted discrepancy-signature set — the
// stable, order-independent fingerprint of a campaign's findings that
// the determinism tests compare.
func (p *Pool) Signatures() []uint64 {
	diffs := p.store.Unique()
	sigs := make([]uint64, 0, len(diffs))
	for _, d := range diffs {
		sigs = append(sigs, d.Signature)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	return sigs
}

// Buckets returns the pool-wide fingerprint-deduplicated findings in
// merge order.
func (p *Pool) Buckets() []*triage.Bucket { return p.buckets.Buckets() }

// BucketStore exposes the pool-wide triage store.
func (p *Pool) BucketStore() *triage.BucketStore { return p.buckets }

// BucketKeys returns the sorted bucket-key set — the triage analog of
// Signatures, stable across shard counts and scheduling.
func (p *Pool) BucketKeys() []uint64 { return p.buckets.Keys() }

// Crashes returns every shard's B_fuzz crashes, content-deduplicated,
// in deterministic (shard, fuzzer) order.
func (p *Pool) Crashes() []*fuzz.Crash {
	seen := map[string]bool{}
	var out []*fuzz.Crash
	for _, s := range p.shards {
		for _, cr := range s.c.Crashes() {
			if !seen[string(cr.Input)] {
				seen[string(cr.Input)] = true
				out = append(out, cr)
			}
		}
	}
	return out
}

// ImplNames lists the CompDiff implementation names (identical across
// shards).
func (p *Pool) ImplNames() []string { return p.shards[0].c.ImplNames() }

// ShardCampaign exposes shard si's campaign (read-only use between
// Run calls; campaigns are not concurrency-safe).
func (p *Pool) ShardCampaign(si int) *Campaign { return p.shards[si].c }

// Snapshots returns the pool's recorded progress series — one entry
// per synchronization barrier (empty when stats are disabled).
func (p *Pool) Snapshots() []telemetry.Snapshot {
	if p.recorder == nil {
		return nil
	}
	return p.recorder.Snapshots()
}

// ImplSummaries merges the per-implementation telemetry across shards
// (shards share the implementation set, so position identifies the
// implementation). Nil when stats are disabled.
func (p *Pool) ImplSummaries() []telemetry.ImplSummary {
	var out []telemetry.ImplSummary
	for _, s := range p.shards {
		if s.c.metrics == nil {
			return nil
		}
		out = telemetry.MergeImplSummaries(out, s.c.metrics.Suite.Summaries())
	}
	return out
}

// Close releases the stats recorder's plot file, if any.
func (p *Pool) Close() error {
	if p.recorder == nil {
		return nil
	}
	return p.recorder.Close()
}
