package difffuzz

import (
	"testing"
)

// A staged target where divergence feedback matters: the first-stage
// discrepancy input is the *prefix* of the second-stage one, so a
// fuzzer that keeps mutating discrepancy inputs reaches the deep bug
// faster than one guided by coverage alone (coverage saturates at
// stage one — the branches are the same, only the uninitialized
// values differ).
const stagedTarget = `
int stage_two(char* buf, long n) {
    int deep;
    if (n >= 6 && buf[5] == 'Z') {
        printf("deep %d\n", deep & 4095);
        return 1;
    }
    return 0;
}
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    if (n < 4) { printf("short\n"); return 0; }
    if (buf[0] != 'S' || buf[1] != 'T') { printf("magic\n"); return 0; }
    int shallow;
    if (buf[2] == 'G') {
        printf("shallow %d\n", shallow & 4095);
        stage_two(buf, n);
        return 0;
    }
    printf("plain\n");
    return 0;
}
`

func runStaged(t *testing.T, feedback bool, budget int64) int {
	t.Helper()
	c, err := New(stagedTarget, [][]byte{[]byte("STG\x01\x02\x03")}, Options{
		FuzzSeed:           99,
		MaxInputLen:        16,
		DivergenceFeedback: feedback,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(budget)
	return len(c.Diffs())
}

func TestDivergenceFeedbackMechanism(t *testing.T) {
	c, err := New(stagedTarget, [][]byte{[]byte("STG\x01")}, Options{
		FuzzSeed:           5,
		MaxInputLen:        16,
		DivergenceFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats().Seeds
	c.Run(2_000)
	if len(c.Diffs()) == 0 {
		t.Fatal("no discrepancies found")
	}
	// The diverging seed input itself must have been promoted into the
	// queue (coverage alone would not add it: the path is the seed's).
	if c.Stats().Seeds <= before {
		t.Fatalf("queue did not grow beyond %d", before)
	}
}

func TestDivergenceFeedbackFindsAtLeastAsMuch(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation")
	}
	budget := int64(12_000)
	with := runStaged(t, true, budget)
	without := runStaged(t, false, budget)
	if with < without {
		t.Fatalf("feedback found %d < baseline %d discrepancies", with, without)
	}
	if with == 0 {
		t.Fatal("feedback campaign found nothing")
	}
	t.Logf("discrepancies at %d execs: with feedback %d, without %d", budget, with, without)
}
