package difffuzz

// EvolvePool drives the evolutionary coverage-directed campaign: a
// population of MiniC genomes (internal/evolve) is evaluated through
// the compile-stage and runtime differential oracles each generation,
// scored by the composite fitness (pass coverage, divergence
// proximity, parsimony), and bred into the next generation at a
// single-threaded barrier. Evaluation is sharded — genome i is owned
// by shard i mod Shards — but every fitness input is merged at the
// barrier in genome-index order, so the population sequence is
// invariant under the shard count. Checkpoints are taken only at
// generation barriers; a kill mid-generation resumes by re-evaluating
// the checkpointed population, which is deterministic, so resume is
// indistinguishable from an uninterrupted run.

import (
	"context"
	"fmt"
	"log"
	"math/bits"
	"runtime/debug"
	"sync"

	"compdiff/internal/checkpoint"
	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/evolve"
	"compdiff/internal/hash"
	"compdiff/internal/progcache"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// EvolvePoolOptions configures an evolutionary campaign.
type EvolvePoolOptions struct {
	// Configs are the implementations to cross-check. Defaults to the
	// paper's ten.
	Configs []compiler.Config
	// Pop is the population size (default 24, minimum 2).
	Pop int
	// Generations is the number of generations to evaluate (default
	// 20). The campaign's program budget is Pop × Generations k-way
	// compiles, before cache hits.
	Generations int
	// Seed derives the founder population and every per-generation
	// RNG stream.
	Seed int64
	// Shards is the number of evaluation worker shards (default 1).
	// Scheduling only at the evaluation level, but part of the
	// campaign hash for consistency with the other pools.
	Shards int
	// StepLimit bounds each runtime oracle execution.
	StepLimit int64
	// Parallelism is the per-genome compile and suite parallelism.
	Parallelism int
	// RuntimeInputs are run differentially on every genome all
	// implementations accept. Default: just the empty input.
	RuntimeInputs [][]byte
	// CacheBudget bounds the shared compiled-program cache. Elites
	// and revisited offspring are cache hits; like the compile pool,
	// the budget cannot change findings and stays out of the hash.
	CacheBudget int64
	// StatsDir, when set, streams one telemetry snapshot per
	// generation to <dir>/plot.jsonl.
	StatsDir string
	// CheckpointDir enables durable snapshots; CheckpointEvery is the
	// number of generation barriers between them (default 1).
	CheckpointDir   string
	CheckpointEvery int64

	// resume marks pools built by ResumeEvolvePool.
	resume bool
}

func (o EvolvePoolOptions) configs() []compiler.Config {
	if len(o.Configs) > 0 {
		return o.Configs
	}
	return compiler.DefaultSet()
}

func (o EvolvePoolOptions) runtimeInputs() [][]byte {
	if len(o.RuntimeInputs) > 0 {
		return o.RuntimeInputs
	}
	return [][]byte{nil}
}

func (o EvolvePoolOptions) withDefaults() EvolvePoolOptions {
	if o.Pop == 0 {
		o.Pop = 24
	}
	if o.Generations == 0 {
		o.Generations = 20
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// evolveOpts maps the pool knobs onto the evolve engine's options.
// The engine's remaining knobs stay at their defaults, which the
// campaign hash therefore pins implicitly.
func (o EvolvePoolOptions) evolveOpts() evolve.Options {
	return evolve.Options{Seed: o.Seed}
}

// EvolvePoolStats is the campaign summary.
type EvolvePoolStats struct {
	Shards int
	// Generation is the number of fully evaluated generations;
	// Generations the configured total.
	Generation  int
	Generations int
	Pop         int
	// Programs counts genome evaluations (one k-way compile each,
	// before cache hits).
	Programs int64
	// FrontendRejects counts genomes the shared front end refused plus
	// uniform-diagnostic rejects; gated mutation keeps this at zero in
	// practice.
	FrontendRejects int64
	// Findings counts oracle hits before dedup.
	Findings int64
	// UniqueBuckets is the deduplicated finding count, broken down by
	// kind below.
	UniqueBuckets      int
	CompileDivergences int
	ICEs               int
	DiagMismatches     int
	RuntimeBuckets     int
	// PassCoverage counts distinct (implementation, pass) pairs fired.
	PassCoverage int
	// BestFitness and MeanFitness are from the last evaluated
	// generation.
	BestFitness float64
	MeanFitness float64
	// PopulationSignature is the order-independent identity of the
	// current population — the cross-shard/cross-resume determinism
	// fingerprint.
	PopulationSignature uint64
	// ShardErrors has one entry per shard; non-nil marks a shard that
	// panicked during the last evaluation.
	ShardErrors []error
}

// genomeEval is one genome's raw oracle measurements, produced by a
// shard and folded into fitness at the barrier.
type genomeEval struct {
	eval     evolve.Eval
	co       *core.CompileOutcome // non-nil when some implementation rejected/ICEd
	outcomes []*core.Outcome      // diverged runtime outcomes
}

// EvolvePool is the sharded evolutionary campaign.
type EvolvePool struct {
	opts EvolvePoolOptions
	cfgs []compiler.Config

	pop        []*evolve.Genome
	generation int
	// cum is the cumulative per-implementation fired-rewrite bitmap —
	// the base the NewBits fitness term is scored against.
	cum []compiler.PassBits

	buckets *triage.BucketStore
	cache   *progcache.Cache

	programs        int64
	frontendRejects int64
	findings        int64
	lastBest        float64
	lastMean        float64
	shardErrs       []error

	saver       *checkpoint.Saver
	ckptEvery   int64
	sinceCkpt   int64
	ckptLogged  bool
	optionsHash uint64

	recorder *telemetry.Recorder

	// genHook runs at the top of each generation; evalHook before each
	// genome evaluation (test seams, like the other pools').
	genHook  func(gen int)
	evalHook func(gen, genome int)
}

// EvolveCampaignHash fingerprints everything that determines an
// evolutionary campaign's population sequence and findings:
// implementations, population size, generations, seed, sharding,
// step limit, and runtime inputs. Parallelism and the observability
// and cache knobs are excluded, as in the other campaign hashes.
func EvolveCampaignHash(opts EvolvePoolOptions) uint64 {
	opts = opts.withDefaults()
	d := hash.New128(0xe701)
	for _, cfg := range opts.configs() {
		fmt.Fprintf(d, "cfg:%s\n", cfg.Name())
	}
	fmt.Fprintf(d, "pop:%d gens:%d seed:%d shards:%d step:%d\n",
		opts.Pop, opts.Generations, opts.Seed, opts.Shards, opts.StepLimit)
	for _, in := range opts.runtimeInputs() {
		fmt.Fprintf(d, "input:%d:", len(in))
		d.Write(in)
	}
	h1, _ := d.Sum128()
	return h1
}

// NewEvolvePool builds a fresh evolutionary campaign: the founder
// population is progen on consecutive seeds from opts.Seed.
func NewEvolvePool(opts EvolvePoolOptions) (*EvolvePool, error) {
	opts = opts.withDefaults()
	if opts.Pop < 2 {
		return nil, fmt.Errorf("difffuzz: evolve population must be at least 2, got %d", opts.Pop)
	}
	if opts.Generations < 1 {
		return nil, fmt.Errorf("difffuzz: evolve needs at least 1 generation, got %d", opts.Generations)
	}
	cfgs := opts.configs()
	if len(cfgs) < 2 {
		return nil, fmt.Errorf("difffuzz: need at least 2 compiler implementations, got %d", len(cfgs))
	}
	if opts.CheckpointDir != "" && !opts.resume && checkpoint.Exists(opts.CheckpointDir) {
		return nil, fmt.Errorf("difffuzz: checkpoint directory %s already holds a campaign (resume it, or use a fresh directory)", opts.CheckpointDir)
	}

	p := &EvolvePool{
		opts:        opts,
		cfgs:        cfgs,
		pop:         evolve.SeedPopulation(opts.Seed, opts.Pop),
		cum:         make([]compiler.PassBits, len(cfgs)),
		buckets:     triage.NewBucketStore(),
		cache:       progcache.New(opts.CacheBudget),
		shardErrs:   make([]error, opts.Shards),
		optionsHash: EvolveCampaignHash(opts),
	}
	if opts.StatsDir != "" {
		rec, err := telemetry.NewRecorder(opts.StatsDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: stats: %w", err)
		}
		p.recorder = rec
	}
	if opts.CheckpointDir != "" {
		saver, err := checkpoint.NewSaver(opts.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("difffuzz: %w", err)
		}
		p.saver = saver
		p.ckptEvery = opts.CheckpointEvery
		if p.ckptEvery < 1 {
			p.ckptEvery = 1
		}
	}
	return p, nil
}

// ResumeEvolvePool rebuilds an evolve pool from the checkpoint in
// opts.CheckpointDir. Error classification matches the other pools:
// ErrNoCheckpoint, ErrMismatch, ErrCorrupt.
func ResumeEvolvePool(opts EvolvePoolOptions) (*EvolvePool, error) {
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("difffuzz: resume requires CheckpointDir")
	}
	st, _, err := checkpoint.Load(opts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	h := EvolveCampaignHash(opts)
	if st.OptionsHash != h {
		return nil, fmt.Errorf("%w: checkpoint options hash %016x, this campaign hashes to %016x (same seed, population, and campaign options required)",
			checkpoint.ErrMismatch, st.OptionsHash, h)
	}
	opts.resume = true
	p, err := NewEvolvePool(opts)
	if err != nil {
		return nil, err
	}
	if err := p.restore(st); err != nil {
		return nil, fmt.Errorf("%w: %v", checkpoint.ErrCorrupt, err)
	}
	return p, nil
}

// Run evolves from the current generation to the configured total (or
// until ctx is cancelled), evaluating each generation sharded and
// breeding at the barrier. Safe to call again after cancellation.
func (p *EvolvePool) Run(ctx context.Context) EvolvePoolStats {
	if ctx == nil {
		ctx = context.Background()
	}
	for p.generation < p.opts.Generations && ctx.Err() == nil {
		if p.genHook != nil {
			p.genHook(p.generation)
		}
		if ctx.Err() != nil {
			break
		}
		evals, complete := p.evaluate(ctx)
		if !complete {
			// Cancelled mid-generation: nothing is merged, so the
			// checkpointed barrier state stays the resume point and
			// resume re-evaluates this generation identically.
			break
		}
		fits := p.barrier(evals)
		p.pop = evolve.NextGeneration(p.pop, fits, p.generation, p.opts.evolveOpts())
		p.generation++
		if p.recorder != nil {
			p.recorder.Record(p.snapshotEvolve())
		}
		if p.saver != nil {
			p.sinceCkpt++
			if p.sinceCkpt >= p.ckptEvery {
				p.saveEvolveCheckpoint()
			}
		}
	}
	if p.saver != nil && p.sinceCkpt > 0 {
		p.saveEvolveCheckpoint()
	}
	if p.recorder != nil {
		// Mirror the compile pool's cancellation discipline: on a
		// cancelled run, record the final state and close outright so a
		// signal-driven exit cannot lose the plot tail.
		if ctx.Err() != nil {
			p.recorder.Record(p.snapshotEvolve())
			_ = p.recorder.Sync()
			_ = p.recorder.Close()
		} else {
			_ = p.recorder.Sync()
		}
	}
	return p.Stats()
}

// evaluate measures every genome through the oracles, sharded by
// genome index. Results are positional; complete is false when ctx
// was cancelled before every live shard finished its slice.
func (p *EvolvePool) evaluate(ctx context.Context) ([]genomeEval, bool) {
	evals := make([]genomeEval, len(p.pop))
	nshards := p.opts.Shards
	var wg sync.WaitGroup
	var cancelled bool
	var mu sync.Mutex
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					p.shardErrs[s] = fmt.Errorf("difffuzz: evolve shard %d panicked: %v\n%s", s, r, debug.Stack())
					cancelled = true
					mu.Unlock()
				}
			}()
			for i := s; i < len(p.pop); i += nshards {
				if p.evalHook != nil {
					p.evalHook(p.generation, i)
				}
				if ctx.Err() != nil {
					mu.Lock()
					cancelled = true
					mu.Unlock()
					return
				}
				evals[i] = p.evalGenome(p.pop[i])
			}
		}(s)
	}
	wg.Wait()
	return evals, !cancelled
}

// evalGenome runs one genome through the k-way compile (cached) and,
// when universally accepted, the runtime oracle on every input.
func (p *EvolvePool) evalGenome(g *evolve.Genome) genomeEval {
	var ge genomeEval
	comp := p.cache.Get(g.Src, p.cfgs, p.opts.Parallelism)
	if comp.FrontendErr != nil {
		ge.eval.FrontendReject = true
		return ge
	}
	ge.eval.ImplBits = make([]compiler.PassBits, len(comp.Results))
	for i := range comp.Results {
		ge.eval.ImplBits[i] = comp.Results[i].PassBits
	}
	suite, co, err := core.AssembleDifferential(comp.Results, p.cfgs, core.Options{
		StepLimit:   p.opts.StepLimit,
		Parallelism: p.opts.Parallelism,
	})
	if err != nil {
		ge.eval.FrontendReject = true
		return ge
	}
	if suite == nil {
		ge.co = co
		return ge
	}
	ge.eval.Classes = 1
	for _, in := range p.opts.runtimeInputs() {
		o := suite.Run(in)
		if o == nil {
			continue
		}
		if c := distinctHashes(o.Hashes); c > ge.eval.Classes {
			ge.eval.Classes = c
		}
		if o.Diverged {
			ge.outcomes = append(ge.outcomes, o)
		}
	}
	return ge
}

// distinctHashes counts output-checksum partition classes.
func distinctHashes(hs []uint64) int {
	n := 0
	for i, h := range hs {
		fresh := true
		for j := 0; j < i; j++ {
			if hs[j] == h {
				fresh = false
				break
			}
		}
		if fresh {
			n++
		}
	}
	return n
}

// barrier folds the generation's raw measurements into the global
// bucket store, cumulative coverage, and fitness — single-threaded,
// in genome-index order, so the result is independent of how
// evaluation was sharded.
func (p *EvolvePool) barrier(evals []genomeEval) []float64 {
	cumStart := make([]compiler.PassBits, len(p.cum))
	copy(cumStart, p.cum)
	fits := make([]float64, len(evals))
	var sum float64
	best := 0.0
	for i := range evals {
		ge := &evals[i]
		p.programs++
		if ge.eval.FrontendReject {
			p.frontendRejects++
		}
		if ge.co != nil {
			if b, fresh := p.buckets.AddCompile(ge.co); b != nil {
				p.findings++
				ge.eval.Findings++
				if fresh {
					ge.eval.NewBuckets++
				}
			} else {
				p.frontendRejects++ // uniform reject: not a finding
			}
		}
		for _, o := range ge.outcomes {
			_, fresh := p.buckets.Add(o)
			p.findings++
			ge.eval.Findings++
			if fresh {
				ge.eval.NewBuckets++
			}
		}
		for k, b := range ge.eval.ImplBits {
			ge.eval.NewBits += bits.OnesCount32(uint32(b &^ cumStart[k]))
			p.cum[k] |= b
		}
		fits[i] = evolve.Fitness(p.pop[i], ge.eval, p.opts.evolveOpts())
		sum += fits[i]
		if i == 0 || fits[i] > best {
			best = fits[i]
		}
	}
	p.lastBest = best
	if len(evals) > 0 {
		p.lastMean = sum / float64(len(evals))
	}
	return fits
}

// passCoverage counts distinct (implementation, pass) pairs fired.
func (p *EvolvePool) passCoverage() int {
	n := 0
	for _, b := range p.cum {
		n += b.Count()
	}
	return n
}

// saveEvolveCheckpoint snapshots the pool at a generation barrier.
// Failures never stop the campaign.
func (p *EvolvePool) saveEvolveCheckpoint() {
	p.sinceCkpt = 0
	if err := p.saver.Save(p.exportEvolveState()); err != nil {
		if !p.ckptLogged {
			log.Printf("difffuzz: checkpoint save failed (campaign continues on the previous checkpoint): %v", err)
			p.ckptLogged = true
		}
	}
}

// exportEvolveState builds the durable snapshot: the population,
// generation, cumulative coverage, counters, and pool buckets in full.
func (p *EvolvePool) exportEvolveState() *checkpoint.State {
	st := &checkpoint.State{
		Version:     checkpoint.Version,
		OptionsHash: p.optionsHash,
		SpentExecs:  p.programs,
	}
	st.Buckets, st.BucketTotal = p.buckets.Export()
	es := &checkpoint.EvolveCampaignState{
		Generation:      p.generation,
		CumBits:         make([]uint32, len(p.cum)),
		Programs:        p.programs,
		FrontendRejects: p.frontendRejects,
		Findings:        p.findings,
		BestFitness:     p.lastBest,
		MeanFitness:     p.lastMean,
	}
	for i, b := range p.cum {
		es.CumBits[i] = uint32(b)
	}
	for _, g := range p.pop {
		es.Genomes = append(es.Genomes, *g)
	}
	st.Evolve = es
	return st
}

// restore rebuilds pool state from a loaded snapshot.
func (p *EvolvePool) restore(st *checkpoint.State) error {
	es := st.Evolve
	if es == nil {
		return fmt.Errorf("checkpoint does not hold an evolutionary campaign")
	}
	if len(es.Genomes) != p.opts.Pop {
		return fmt.Errorf("checkpoint population %d != %d", len(es.Genomes), p.opts.Pop)
	}
	if es.Generation < 0 || es.Generation > p.opts.Generations {
		return fmt.Errorf("checkpoint generation %d out of range", es.Generation)
	}
	if len(es.CumBits) != len(p.cfgs) {
		return fmt.Errorf("checkpoint has %d coverage maps, %d implementations", len(es.CumBits), len(p.cfgs))
	}
	p.generation = es.Generation
	p.pop = p.pop[:0]
	for i := range es.Genomes {
		g := es.Genomes[i]
		p.pop = append(p.pop, &g)
	}
	for i, b := range es.CumBits {
		p.cum[i] = compiler.PassBits(b)
	}
	p.programs = es.Programs
	p.frontendRejects = es.FrontendRejects
	p.findings = es.Findings
	p.lastBest = es.BestFitness
	p.lastMean = es.MeanFitness
	p.buckets = triage.RestoreBucketStore(st.Buckets, st.BucketTotal)
	return nil
}

// snapshotEvolve aggregates the campaign into a telemetry record.
// Execs counts genome evaluations (each is one k-way compile).
func (p *EvolvePool) snapshotEvolve() telemetry.Snapshot {
	var s telemetry.Snapshot
	s.Programs = p.programs
	s.Execs = p.programs
	s.UniqueBuckets = p.buckets.Len()
	kinds := p.buckets.KindCounts()
	s.CompileDivergences = kinds[triage.KindCompileDivergence]
	s.ICEs = kinds[triage.KindICE]
	s.DiagMismatches = kinds[triage.KindDiagMismatch]
	s.Generation = p.generation
	s.BestFitness = p.lastBest
	s.MeanFitness = p.lastMean
	s.PassCoverage = p.passCoverage()
	return s
}

// Stats summarizes the campaign so far.
func (p *EvolvePool) Stats() EvolvePoolStats {
	st := EvolvePoolStats{
		Shards:              p.opts.Shards,
		Generation:          p.generation,
		Generations:         p.opts.Generations,
		Pop:                 p.opts.Pop,
		Programs:            p.programs,
		FrontendRejects:     p.frontendRejects,
		Findings:            p.findings,
		UniqueBuckets:       p.buckets.Len(),
		PassCoverage:        p.passCoverage(),
		BestFitness:         p.lastBest,
		MeanFitness:         p.lastMean,
		PopulationSignature: evolve.Signature(p.pop),
		ShardErrors:         append([]error(nil), p.shardErrs...),
	}
	kinds := p.buckets.KindCounts()
	st.CompileDivergences = kinds[triage.KindCompileDivergence]
	st.ICEs = kinds[triage.KindICE]
	st.DiagMismatches = kinds[triage.KindDiagMismatch]
	st.RuntimeBuckets = kinds[triage.KindRuntime]
	return st
}

// PassCoverageBits returns the cumulative per-implementation
// fired-rewrite bitmaps (suite order) — the coverage the campaign has
// reached so far.
func (p *EvolvePool) PassCoverageBits() []compiler.PassBits {
	return append([]compiler.PassBits(nil), p.cum...)
}

// CacheStats exposes the compiled-program cache counters (hits are
// elite and revisited-offspring re-evaluations served without
// recompiling). Process-local, like the compile pool's.
func (p *EvolvePool) CacheStats() progcache.Stats { return p.cache.Stats() }

// BucketStore exposes the pool-wide store (reports, tables).
func (p *EvolvePool) BucketStore() *triage.BucketStore { return p.buckets }

// BucketKeys is the sorted bucket-key set — the order-independent
// fingerprint of the campaign's findings.
func (p *EvolvePool) BucketKeys() []uint64 { return p.buckets.Keys() }

// Population returns the current genomes (read-only view).
func (p *EvolvePool) Population() []*evolve.Genome {
	return append([]*evolve.Genome(nil), p.pop...)
}

// ImplNames returns the implementation names, suite order.
func (p *EvolvePool) ImplNames() []string {
	names := make([]string, len(p.cfgs))
	for i, cfg := range p.cfgs {
		names[i] = cfg.Name()
	}
	return names
}

// CheckpointSeq is the last durable checkpoint's sequence number (0
// when none was written).
func (p *EvolvePool) CheckpointSeq() int {
	if p.saver == nil {
		return 0
	}
	return p.saver.Seq()
}

// Snapshots returns the recorded progress series — one entry per
// generation barrier, plus the final post-cancel snapshot when a run
// was cancelled (empty when stats are disabled).
func (p *EvolvePool) Snapshots() []telemetry.Snapshot {
	if p.recorder == nil {
		return nil
	}
	return p.recorder.Snapshots()
}

// Close releases observability resources (the stats recorder).
func (p *EvolvePool) Close() {
	if p.recorder != nil {
		_ = p.recorder.Close()
	}
}
