package difffuzz

// Checkpoint/resume wiring for the sharded campaign pool. The pool
// snapshots at synchronization barriers — the single-threaded moment
// when shard stores, the shared stores, and the telemetry counters are
// mutually consistent — and ResumePool rebuilds an equivalent pool: a
// campaign checkpointed after N executions and resumed for N more
// finds exactly the unique-signature and bucket-key sets an
// uninterrupted 2N-execution campaign finds.

import (
	"fmt"
	"sort"
	"sync/atomic"

	"compdiff/internal/checkpoint"
	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/hash"
	"compdiff/internal/triage"
)

// CampaignHash fingerprints everything that determines a campaign's
// behavior: the source, the seed corpus, and the determinism-relevant
// options. Resuming demands an exact match — a checkpoint replayed
// under different settings would silently diverge from both the
// original and a fresh run. Deliberately excluded: Parallelism and
// BatchSize (scheduling/throughput only — the differential verdicts
// are byte-identical at any batch size, see the self-test layer),
// DiffDir and the Stats/Checkpoint knobs (observability only) — a
// campaign may legitimately resume with more workers, a different
// batch size, or a different stats directory.
func CampaignHash(src string, seeds [][]byte, opts Options) uint64 {
	d := hash.New128(0xca3b)
	cfgs := opts.Configs
	if len(cfgs) == 0 {
		cfgs = compiler.DefaultSet()
	}
	for _, cfg := range cfgs {
		fmt.Fprintf(d, "cfg:%s\n", cfg.Name())
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	fmt.Fprintf(d, "seed:%d step:%d maxlen:%d san:%d skipdet:%t divfb:%t shards:%d sync:%d norm:%t\n",
		opts.FuzzSeed, opts.StepLimit, opts.MaxInputLen, opts.Sanitizer,
		opts.SkipDeterministic, opts.DivergenceFeedback, shards, opts.SyncEvery,
		opts.Normalizer != nil)
	fmt.Fprintf(d, "src:%d:%s", len(src), src)
	for _, s := range seeds {
		fmt.Fprintf(d, "corpus:%d:", len(s))
		d.Write(s)
	}
	h1, _ := d.Sum128()
	return h1
}

// ResumePool rebuilds a pool from the checkpoint in
// opts.CheckpointDir and restores its state, ready for further Run
// calls. Errors are classified for callers: checkpoint.ErrNoCheckpoint
// (nothing to resume — start fresh), checkpoint.ErrMismatch (the
// campaign options differ from the checkpointed ones — a user error),
// and checkpoint.ErrCorrupt (damaged files).
func ResumePool(src string, seeds [][]byte, opts Options) (*Pool, error) {
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("difffuzz: resume requires CheckpointDir")
	}
	st, _, err := checkpoint.Load(opts.CheckpointDir)
	if err != nil {
		return nil, err
	}
	h := CampaignHash(src, seeds, opts)
	if st.OptionsHash != h {
		return nil, fmt.Errorf("%w: checkpoint options hash %016x, this campaign hashes to %016x (same source, seeds, and campaign options required)",
			checkpoint.ErrMismatch, st.OptionsHash, h)
	}
	opts.resume = true
	p, err := NewPool(src, seeds, opts)
	if err != nil {
		return nil, err
	}
	if err := p.restore(st); err != nil {
		p.Close()
		return nil, fmt.Errorf("%w: %v", checkpoint.ErrCorrupt, err)
	}
	return p, nil
}

// SpentExecs is the cumulative per-shard execution budget consumed
// across all Run calls, including runs before a resume.
func (p *Pool) SpentExecs() int64 { return p.spentTotal.Load() }

// CheckpointSeq is the sequence number of the last durable checkpoint
// (0 when checkpointing is off or nothing has been saved).
func (p *Pool) CheckpointSeq() int {
	if p.saver == nil {
		return 0
	}
	return p.saver.Seq()
}

// exportState assembles the pool's complete snapshot. Called only at
// barriers (and after Run), when no shard goroutine is running.
func (p *Pool) exportState() *checkpoint.State {
	st := &checkpoint.State{
		Version:       checkpoint.Version,
		OptionsHash:   p.optionsHash,
		SpentExecs:    p.spentTotal.Load(),
		PersistErrors: p.persistErrs.Load(),
	}
	for si, s := range p.shards {
		ss := checkpoint.ShardState{
			Index:         si,
			Dead:          s.dead,
			Fuzzer:        s.c.fuzzer.ExportState(),
			DiffExecs:     atomic.LoadInt64(&s.c.DiffExecs),
			PersistErrors: atomic.LoadInt64(&s.c.persistErrs),
		}
		ss.QueueSeen = make([]uint64, 0, len(s.queueSeen))
		for h := range s.queueSeen {
			ss.QueueSeen = append(ss.QueueSeen, h)
		}
		sort.Slice(ss.QueueSeen, func(i, j int) bool { return ss.QueueSeen[i] < ss.QueueSeen[j] })
		// Shard-local stores travel as skeletons: signatures and counts
		// keep dedup freshness and barrier recounts exact after a
		// resume, while the representative outcomes (which the shared
		// store already carries for every pool-wide-fresh signature)
		// are shed.
		for _, d := range s.c.diffs.Unique() {
			ss.Diffs = append(ss.Diffs, &core.StoredDiff{Signature: d.Signature, Count: d.Count})
		}
		ss.DiffTotal = s.c.diffs.Total()
		snaps, btotal := s.c.buckets.Export()
		for i := range snaps {
			snaps[i].Outcome = nil
		}
		ss.Buckets = snaps
		ss.BucketTotal = btotal
		if m := s.c.metrics; m != nil {
			ss.Metrics = &checkpoint.MetricsState{
				Execs:     m.Execs.Load(),
				DiffExecs: m.DiffExecs.Load(),
				Classes:   m.Classes.Snapshot(),
				Impls:     m.Suite.Summaries(),
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	st.Diffs = p.store.Unique()
	st.DiffTotal = p.store.Total()
	st.Buckets, st.BucketTotal = p.buckets.Export()
	return st
}

// restore overwrites the pool's state with a loaded checkpoint. The
// pool must have been built from the same (source, seeds, options) —
// ResumePool enforces that via CampaignHash before calling.
func (p *Pool) restore(st *checkpoint.State) error {
	if len(st.Shards) != len(p.shards) {
		return fmt.Errorf("difffuzz: checkpoint has %d shards, pool has %d", len(st.Shards), len(p.shards))
	}
	// The shared stores are replaced wholesale; the DiffDir files from
	// the original run are already on disk, so the restored store does
	// not rewrite them (and O_EXCL keeps any name collisions from new
	// findings non-destructive).
	p.store = core.RestoreDiffStore(p.opts.DiffDir, st.Diffs, st.DiffTotal)
	p.buckets = triage.RestoreBucketStore(st.Buckets, st.BucketTotal)
	p.spentTotal.Store(st.SpentExecs)
	p.persistErrs.Store(st.PersistErrors)
	for i, s := range p.shards {
		ss := &st.Shards[i]
		if ss.Index != i {
			return fmt.Errorf("difffuzz: checkpoint shard %d carries index %d", i, ss.Index)
		}
		if err := s.c.restoreShard(ss); err != nil {
			return fmt.Errorf("difffuzz: shard %d: %w", i, err)
		}
		s.dead = ss.Dead
		// Barrier cursors always equal the store lengths at a barrier,
		// which is when the snapshot was taken.
		s.diffsSynced = len(ss.Diffs)
		s.bucketsSynced = len(ss.Buckets)
		s.queueSeen = make(map[uint64]bool, len(ss.QueueSeen))
		for _, h := range ss.QueueSeen {
			s.queueSeen[h] = true
		}
	}
	// The caches a concurrent Stats reader sees must reflect the
	// restored shard state, not the discarded construction-time state.
	p.statCrashes = nil
	p.refreshStatCache()
	return nil
}

// restoreShard overwrites one shard campaign's state. Whatever seed
// ingestion the constructor performed is discarded: the fuzzer restore
// replaces the queue, the stores are replaced, and the counters are
// overwritten with checkpointed values (which already include the
// original run's construction-time ingestion).
func (c *Campaign) restoreShard(ss *checkpoint.ShardState) error {
	if err := c.fuzzer.RestoreState(ss.Fuzzer); err != nil {
		return err
	}
	c.diffs = core.RestoreDiffStore("", ss.Diffs, ss.DiffTotal)
	c.buckets = triage.RestoreBucketStore(ss.Buckets, ss.BucketTotal)
	atomic.StoreInt64(&c.DiffExecs, ss.DiffExecs)
	atomic.StoreInt64(&c.persistErrs, ss.PersistErrors)
	if m := c.metrics; m != nil && ss.Metrics != nil {
		m.Execs.Store(ss.Metrics.Execs)
		m.DiffExecs.Store(ss.Metrics.DiffExecs)
		m.Classes.Store(ss.Metrics.Classes)
		m.Suite.Restore(ss.Metrics.Impls)
	}
	return nil
}
