package difffuzz

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff/internal/telemetry"
)

// TestCompilePoolCancelFlushesTelemetry is the compile-oracle mirror
// of TestPoolCancelFlushesTelemetry: a ctx-cancelled sweep must leave
// a complete plot.jsonl — the final post-cancel snapshot recorded,
// flushed, and the recorder closed — rather than truncating the
// series at the last pre-cancel barrier as it used to.
func TestCompilePoolCancelFlushesTelemetry(t *testing.T) {
	corpus := compileCorpus()
	dir := t.TempDir()
	p, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 2, SyncEvery: 2, StatsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.epochHook = func(epoch int) {
		if epoch == 2 {
			cancel()
		}
	}
	st := p.Run(ctx)
	if st.Programs >= int64(len(corpus)) {
		t.Fatal("cancellation did not stop the sweep")
	}

	data, err := os.ReadFile(filepath.Join(dir, "plot.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	snaps := p.Snapshots()
	if len(lines) != len(snaps) || len(snaps) < 2 {
		t.Fatalf("plot.jsonl has %d lines, in-memory series %d snapshots", len(lines), len(snaps))
	}
	var tail telemetry.Snapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatalf("tail line does not parse: %v", err)
	}
	want := snaps[len(snaps)-1]
	if tail.Programs != want.Programs || tail.UniqueBuckets != want.UniqueBuckets ||
		tail.CompileDivergences != want.CompileDivergences || tail.ICEs != want.ICEs ||
		tail.DiagMismatches != want.DiagMismatches {
		t.Fatalf("tail line %+v does not match final snapshot %+v", tail, want)
	}
	// Cancellation is observed at epoch boundaries, so two epochs ran
	// two barrier records; the cancel path must append one more final
	// snapshot (the line a signal-driven exit would otherwise lose).
	if len(lines) != 3 {
		t.Fatalf("plot.jsonl has %d lines, want 3 (2 barriers + post-cancel flush)", len(lines))
	}
	if tail.Programs != st.Programs {
		t.Fatalf("tail records %d programs, Run returned %d", tail.Programs, st.Programs)
	}
	// The recorder was closed by the cancelled Run; Close is a no-op.
	p.Close()
}
