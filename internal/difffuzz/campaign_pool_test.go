package difffuzz

import (
	"bytes"
	"context"
	"testing"

	"compdiff/internal/targets"
)

func poolTarget(t testing.TB) *targets.Target {
	t.Helper()
	tg := targets.ByName("readelf")
	if tg == nil {
		t.Fatal("missing built-in target readelf")
	}
	return tg
}

func runPool(t testing.TB, opts Options, budget int64) *Pool {
	t.Helper()
	tg := poolTarget(t)
	p, err := NewPool(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), budget)
	return p
}

// TestPoolDeterministicSignatures: two sharded runs with identical
// seeds must find the identical set of discrepancy signatures —
// goroutine scheduling may only reorder work inside an epoch, never
// change what is found.
func TestPoolDeterministicSignatures(t *testing.T) {
	opts := Options{FuzzSeed: 7, Shards: 4, SyncEvery: 300}
	a := runPool(t, opts, 1500)
	b := runPool(t, opts, 1500)

	sa, sb := a.Signatures(), b.Signatures()
	if len(sa) == 0 {
		t.Fatal("campaign found no discrepancies; the determinism check is vacuous")
	}
	if len(sa) != len(sb) {
		t.Fatalf("signature sets differ in size: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("signature sets differ at %d: %016x vs %016x", i, sa[i], sb[i])
		}
	}
	// The shared store's totals must equal the sum over shards.
	var wantTotal int
	for si := 0; si < 4; si++ {
		wantTotal += a.ShardCampaign(si).TotalDiffInputs()
	}
	if got := a.TotalDiffInputs(); got != wantTotal {
		t.Fatalf("pool TotalDiffInputs = %d, want shard sum %d", got, wantTotal)
	}
}

// TestPoolSingleShardMatchesCampaign: Shards=1 + Parallelism=1 must
// reproduce a plain Campaign byte-for-byte — same signatures in the
// same discovery order, same representative inputs, same stats.
func TestPoolSingleShardMatchesCampaign(t *testing.T) {
	tg := poolTarget(t)
	opts := Options{FuzzSeed: 7}

	c, err := New(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := c.Run(2000)

	p := runPool(t, opts, 2000)
	ps := p.Stats()

	if ps.Execs != cs.Execs || ps.UniqueCrashes != cs.UniqueCrashes {
		t.Fatalf("pool stats (execs=%d crashes=%d) != campaign (execs=%d crashes=%d)",
			ps.Execs, ps.UniqueCrashes, cs.Execs, cs.UniqueCrashes)
	}
	cd, pd := c.Diffs(), p.Diffs()
	if len(cd) != len(pd) {
		t.Fatalf("pool found %d unique diffs, campaign %d", len(pd), len(cd))
	}
	for i := range cd {
		if cd[i].Signature != pd[i].Signature {
			t.Fatalf("diff %d: signature %016x != %016x", i, pd[i].Signature, cd[i].Signature)
		}
		if !bytes.Equal(cd[i].Outcome.Input, pd[i].Outcome.Input) {
			t.Fatalf("diff %d: representative inputs differ", i)
		}
		if cd[i].Count != pd[i].Count {
			t.Fatalf("diff %d: count %d != %d", i, pd[i].Count, cd[i].Count)
		}
	}
	if p.TotalDiffInputs() != c.TotalDiffInputs() {
		t.Fatalf("total diff inputs %d != %d", p.TotalDiffInputs(), c.TotalDiffInputs())
	}
}

// TestPoolShardSeedsDistinct: every shard must fuzz with its own RNG
// stream; colliding seeds would make shards redundant clones.
func TestPoolShardSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 7, -3} {
		for si := 0; si < 16; si++ {
			s := ShardSeed(base, si)
			if seen[s] {
				t.Fatalf("ShardSeed(%d, %d) = %d collides", base, si, s)
			}
			seen[s] = true
		}
		if ShardSeed(base, 0) != base {
			t.Fatalf("shard 0 must keep the base seed %d", base)
		}
	}
}

// TestPoolPanicRecovery wedges one shard via the epoch hook and
// checks the pool retires it, records the error, and lets the other
// shards finish their budget.
func TestPoolPanicRecovery(t *testing.T) {
	tg := poolTarget(t)
	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 3, SyncEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	p.epochHook = func(si int) {
		if si == 1 {
			panic("injected shard failure")
		}
	}
	base := p.Stats() // seed ingestion at construction already cost execs
	stats := p.Run(context.Background(), 1000)

	if stats.ShardErrors[1] == nil {
		t.Fatal("shard 1 panicked but no error was recorded")
	}
	if stats.ShardErrors[0] != nil || stats.ShardErrors[2] != nil {
		t.Fatalf("healthy shards reported errors: %v, %v", stats.ShardErrors[0], stats.ShardErrors[2])
	}
	for _, si := range []int{0, 2} {
		if got := stats.ShardStats[si].Execs - base.ShardStats[si].Execs; got < 1000 {
			t.Fatalf("healthy shard %d ran %d execs, want full budget 1000", si, got)
		}
	}
	if got := stats.ShardStats[1].Execs; got != base.ShardStats[1].Execs {
		t.Fatalf("wedged shard ran %d execs past ingestion, want 0", got-base.ShardStats[1].Execs)
	}
}

// TestPoolAllShardsDead: when every shard is retired the pool must
// return instead of spinning through empty epochs.
func TestPoolAllShardsDead(t *testing.T) {
	tg := poolTarget(t)
	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	p.epochHook = func(int) { panic("boom") }
	base := p.Stats()
	stats := p.Run(context.Background(), 1_000_000)
	if stats.Execs != base.Execs {
		t.Fatalf("dead pool ran %d execs", stats.Execs-base.Execs)
	}
	for si, e := range stats.ShardErrors {
		if e == nil {
			t.Fatalf("shard %d: missing panic error", si)
		}
	}
}

// TestPoolCancellation: a canceled context stops the pool at the next
// barrier, well short of the budget, and findings so far are merged.
func TestPoolCancellation(t *testing.T) {
	tg := poolTarget(t)
	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// The hook runs on every shard goroutine concurrently; context
	// cancellation is already concurrency-safe.
	p.epochHook = func(si int) { cancel() }
	stats := p.Run(ctx, 1_000_000)
	if stats.Execs == 0 {
		t.Fatal("cancellation should still let the in-flight epoch finish")
	}
	if stats.Execs >= 1_000_000 {
		t.Fatalf("cancellation did not stop the pool (execs=%d)", stats.Execs)
	}

	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	p2, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	base2 := p2.Stats()
	if got := p2.Run(canceled, 1_000_000); got.Execs != base2.Execs {
		t.Fatalf("pre-canceled pool ran %d execs", got.Execs-base2.Execs)
	}
}

// TestPoolCrossPollination: with synchronization on, a secondary
// shard's queue should come to include imported entries beyond what
// its own coverage discovered (ForceSeed imports at barriers).
func TestPoolCrossPollination(t *testing.T) {
	tg := poolTarget(t)
	solo, err := New(tg.Src, tg.Seeds, Options{FuzzSeed: ShardSeed(7, 1), SkipDeterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	solo.Run(1000)

	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 250})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), 1000)
	pooled := p.ShardCampaign(1)

	if pooled.Stats().Seeds <= solo.Stats().Seeds {
		t.Fatalf("sharded secondary has %d seeds, solo run %d — no evidence of imports",
			pooled.Stats().Seeds, solo.Stats().Seeds)
	}
}
