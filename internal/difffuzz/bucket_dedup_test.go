package difffuzz

import (
	"context"
	"testing"
)

// twoFlavorSrc is one underlying bug (division by an input-size-derived
// zero) reachable through two surface flavors: the default path traps
// with SIGFPE at O0/O1, and the 'w' path aborts in a double free first
// (SIGABRT at O0/O1, silent corruption at O2+). Both flavors produce
// the same implementation partition and the same outcome classes, so
// the raw discrepancy signatures differ while the divergence
// fingerprint — and therefore the triage bucket — is shared.
const twoFlavorSrc = `
int main() {
    char buf[4];
    long n = read_input(buf, 4L);
    int d = (int)(n % 1L);
    if (n >= 1 && buf[0] == 'w') {
        char* p = (char*)malloc(8L);
        free(p);
        free(p);
        printf("w %d\n", 100 / d);
        return 0;
    }
    printf("d %d\n", 100 / d);
    return 0;
}
`

// TestPoolBucketDedupAcrossShards is the ISSUE's regression: a
// two-shard pool in which every shard hits the same underlying bug
// (through both flavors) must end with exactly one pool-wide bucket,
// even though the signature-keyed diff store reports two distinct
// discrepancies.
func TestPoolBucketDedupAcrossShards(t *testing.T) {
	p, err := NewPool(twoFlavorSrc, [][]byte{nil, []byte("w")}, Options{
		FuzzSeed:  11,
		Shards:    2,
		SyncEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run(context.Background(), 300)

	// Both shards must have hit the bug locally; the seeds alone
	// guarantee it, since each shard ingests the full seed corpus.
	for si := 0; si < 2; si++ {
		if n := p.ShardCampaign(si).BucketStore().Len(); n != 1 {
			t.Fatalf("shard %d has %d buckets, want 1", si, n)
		}
	}

	if st.UniqueDiffs < 2 {
		t.Fatalf("found %d signatures, want >= 2 (both flavors)", st.UniqueDiffs)
	}
	if st.UniqueBuckets != 1 {
		t.Fatalf("pool has %d buckets, want exactly 1", st.UniqueBuckets)
	}

	buckets := p.Buckets()
	if len(buckets) != 1 {
		t.Fatalf("Buckets() returned %d, want 1", len(buckets))
	}
	b := buckets[0]
	if b.Signatures != st.UniqueDiffs {
		t.Fatalf("bucket merged %d signatures, diff store has %d", b.Signatures, st.UniqueDiffs)
	}
	// After the barrier recount, the single bucket's hit count is the
	// exact pool-wide diverging-input total.
	if b.Count != p.TotalDiffInputs() {
		t.Fatalf("bucket count %d != pool diverging inputs %d", b.Count, p.TotalDiffInputs())
	}
	if keys := p.BucketKeys(); len(keys) != 1 || keys[0] != b.Key {
		t.Fatalf("BucketKeys() = %v, want [%016x]", keys, b.Key)
	}
}

// TestPoolBucketKeysDeterministic extends the pool determinism
// guarantee to the triage layer: identical options must yield the
// identical bucket-key set, and the bucket view must stay consistent
// with the signature view (never more buckets than signatures, hit
// totals equal).
func TestPoolBucketKeysDeterministic(t *testing.T) {
	opts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300}
	a := runPool(t, opts, 1000)
	b := runPool(t, opts, 1000)

	ka, kb := a.BucketKeys(), b.BucketKeys()
	if len(ka) == 0 {
		t.Fatal("campaign found no buckets; the determinism check is vacuous")
	}
	if len(ka) != len(kb) {
		t.Fatalf("bucket-key sets differ in size: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("bucket keys differ at %d: %016x vs %016x", i, ka[i], kb[i])
		}
	}

	st := a.Stats()
	if st.UniqueBuckets > st.UniqueDiffs {
		t.Fatalf("%d buckets exceed %d signatures; the fingerprint must coarsen",
			st.UniqueBuckets, st.UniqueDiffs)
	}
	if got := a.BucketStore().Total(); got != a.TotalDiffInputs() {
		t.Fatalf("bucket hit total %d != diverging input total %d", got, a.TotalDiffInputs())
	}
}
