package difffuzz

// Checkpoint/resume tests for the sharded campaign pool: the
// resume-equivalence property (interrupted-and-resumed == fresh),
// kill-at-a-barrier fault injection, the ctx-cancel telemetry flush,
// and the resume error classification.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff/internal/checkpoint"
	"compdiff/internal/telemetry"
)

// comparePoolFindings asserts two pools found the same discrepancies:
// same sorted signature set, same sorted bucket-key set, same
// per-signature counts in the same shared-store order.
func comparePoolFindings(t *testing.T, fresh, resumed *Pool) {
	t.Helper()
	fs, rs := fresh.Signatures(), resumed.Signatures()
	if len(fs) == 0 {
		t.Fatal("fresh campaign found no discrepancies; the equivalence check is vacuous")
	}
	if len(fs) != len(rs) {
		t.Fatalf("signature sets differ in size: fresh %d, resumed %d", len(fs), len(rs))
	}
	for i := range fs {
		if fs[i] != rs[i] {
			t.Fatalf("signature sets differ at %d: fresh %016x, resumed %016x", i, fs[i], rs[i])
		}
	}
	fk, rk := fresh.BucketKeys(), resumed.BucketKeys()
	if len(fk) != len(rk) {
		t.Fatalf("bucket-key sets differ in size: fresh %d, resumed %d", len(fk), len(rk))
	}
	for i := range fk {
		if fk[i] != rk[i] {
			t.Fatalf("bucket keys differ at %d: fresh %016x, resumed %016x", i, fk[i], rk[i])
		}
	}
	fd, rd := fresh.Diffs(), resumed.Diffs()
	for i := range fd {
		if fd[i].Signature != rd[i].Signature || fd[i].Count != rd[i].Count {
			t.Fatalf("store entry %d: fresh (%016x, %d), resumed (%016x, %d)",
				i, fd[i].Signature, fd[i].Count, rd[i].Signature, rd[i].Count)
		}
	}
}

// resumeEquivalence runs the acceptance property at a given shard
// count: a campaign checkpointed after budget executions and resumed
// for budget more must find what an uninterrupted 2×budget campaign
// finds.
func resumeEquivalence(t *testing.T, shards int, budget int64) {
	tg := poolTarget(t)
	opts := Options{FuzzSeed: 7, Shards: shards, SyncEvery: 300}

	freshOpts := opts
	freshOpts.CheckpointDir = t.TempDir()
	fresh, err := NewPool(tg.Src, tg.Seeds, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background(), 2*budget)

	// The interrupted run: first process fuzzes budget execs and is
	// "killed" (dropped — its last barrier checkpoint is durable)...
	ckptOpts := opts
	ckptOpts.CheckpointDir = t.TempDir()
	first, err := NewPool(tg.Src, tg.Seeds, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	first.Run(context.Background(), budget)

	// ...and a second process resumes for the remaining budget.
	resumed, err := ResumePool(tg.Src, tg.Seeds, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.SpentExecs(); got != budget {
		t.Fatalf("resumed pool reports %d spent execs, checkpoint held %d", got, budget)
	}
	resumed.Run(context.Background(), budget)

	if got := resumed.SpentExecs(); got != 2*budget {
		t.Fatalf("resumed pool spent %d total, want %d", got, 2*budget)
	}
	if got := fresh.SpentExecs(); got != 2*budget {
		t.Fatalf("fresh pool spent %d total, want %d", got, 2*budget)
	}
	comparePoolFindings(t, fresh, resumed)

	// The fuzzer-level stats must agree too — resume restores the exact
	// RNG and queue positions, not just the finding sets.
	fst, rst := fresh.Stats(), resumed.Stats()
	for si := range fst.ShardStats {
		if fst.ShardStats[si] != rst.ShardStats[si] {
			t.Fatalf("shard %d stats diverged:\nfresh   %+v\nresumed %+v",
				si, fst.ShardStats[si], rst.ShardStats[si])
		}
	}
}

// TestPoolResumeEquivalence: the single-shard acceptance criterion.
func TestPoolResumeEquivalence(t *testing.T) {
	resumeEquivalence(t, 1, 900)
}

// TestPoolResumeEquivalenceSharded: the Shards=4 acceptance criterion.
func TestPoolResumeEquivalenceSharded(t *testing.T) {
	resumeEquivalence(t, 4, 600)
}

// TestPoolResumeReExportIdentical: loading a checkpoint into a fresh
// pool and exporting again must reproduce the state byte-for-byte —
// nothing is lost or reinterpreted on the way through restore. Stats
// are enabled so the telemetry counters ride along.
func TestPoolResumeReExportIdentical(t *testing.T) {
	tg := poolTarget(t)
	opts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 300, Stats: true,
		CheckpointDir: t.TempDir()}
	p, err := NewPool(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), 600)

	want, _, err := checkpoint.Load(opts.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumePool(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.exportState()

	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("re-exported state differs from the loaded checkpoint:\nloaded    %s\nre-export %s", wb, gb)
	}
}

// TestPoolCheckpointFaultInjection kills the saver at assorted file
// operations during a barrier save — the moments a SIGKILL would hit —
// and checks the directory still resumes from the last durable
// checkpoint, with the resumed campaign equivalent to a fresh one.
func TestPoolCheckpointFaultInjection(t *testing.T) {
	tg := poolTarget(t)
	opts := Options{FuzzSeed: 7, Shards: 2, SyncEvery: 150}

	freshOpts := opts
	freshOpts.CheckpointDir = t.TempDir()
	fresh, err := NewPool(tg.Src, tg.Seeds, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background(), 600)

	for _, ops := range []int{0, 2, 6} {
		ckptOpts := opts
		ckptOpts.CheckpointDir = t.TempDir()
		first, err := NewPool(tg.Src, tg.Seeds, ckptOpts)
		if err != nil {
			t.Fatal(err)
		}
		// Two clean barrier saves (150, 300)...
		first.Run(context.Background(), 300)
		// ...then the save at barrier 450 dies ops file-operations in,
		// leaving whatever a kill would leave.
		first.saver.InjectFault(ops)
		first.Run(context.Background(), 150)

		st, _, err := checkpoint.Load(ckptOpts.CheckpointDir)
		if err != nil {
			t.Fatalf("ops=%d: torn save corrupted the directory: %v", ops, err)
		}
		if st.SpentExecs != 300 && st.SpentExecs != 450 {
			t.Fatalf("ops=%d: loadable checkpoint holds %d spent execs, want 300 (old) or 450 (new)",
				ops, st.SpentExecs)
		}

		resumed, err := ResumePool(tg.Src, tg.Seeds, ckptOpts)
		if err != nil {
			t.Fatalf("ops=%d: resume after torn save: %v", ops, err)
		}
		resumed.Run(context.Background(), 600-st.SpentExecs)
		comparePoolFindings(t, fresh, resumed)
	}
}

// TestPoolCancelFlushesTelemetry: context cancellation mid-campaign
// must still leave a complete plot.jsonl — a final snapshot recorded,
// flushed, and the file closed — even though Close is never called.
func TestPoolCancelFlushesTelemetry(t *testing.T) {
	tg := poolTarget(t)
	dir := t.TempDir()
	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 100, StatsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.epochHook = func(int) { cancel() }
	stats := p.Run(ctx, 1_000_000)
	if stats.Execs >= 1_000_000 {
		t.Fatal("cancellation did not stop the pool")
	}

	data, err := os.ReadFile(filepath.Join(dir, "plot.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	snaps := p.Snapshots()
	if len(lines) != len(snaps) || len(snaps) < 2 {
		t.Fatalf("plot.jsonl has %d lines, in-memory series %d snapshots", len(lines), len(snaps))
	}
	var tail telemetry.Snapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatalf("tail line does not parse: %v", err)
	}
	// The tail line is the final post-cancel snapshot and must match
	// the pool's final state exactly.
	want := snaps[len(snaps)-1]
	if tail.Execs != want.Execs || tail.DiffExecs != want.DiffExecs ||
		tail.UniqueDiffs != want.UniqueDiffs || tail.UniqueBuckets != want.UniqueBuckets ||
		tail.UniqueCrashes != want.UniqueCrashes || tail.Queue != want.Queue ||
		tail.ClassTotal() != want.ClassTotal() || tail.PersistErrors != want.PersistErrors {
		t.Fatalf("tail line %+v does not match final snapshot %+v", tail, want)
	}
	if tail.ClassTotal() != tail.Execs {
		t.Fatalf("tail classes sum to %d, execs %d — counters recorded mid-epoch?", tail.ClassTotal(), tail.Execs)
	}
	// The recorder was closed by Run; a second Close must be a no-op.
	if err := p.Close(); err != nil {
		t.Fatalf("Close after cancel-close: %v", err)
	}
}

// TestPoolResumeErrorClasses: each failure mode must map to its
// sentinel — no checkpoint, mismatched options, corrupt files — and a
// fresh pool must refuse a directory that already holds a checkpoint.
func TestPoolResumeErrorClasses(t *testing.T) {
	tg := poolTarget(t)

	t.Run("no-checkpoint", func(t *testing.T) {
		_, err := ResumePool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, CheckpointDir: t.TempDir()})
		if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
			t.Fatalf("got %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("no-dir-at-all", func(t *testing.T) {
		_, err := ResumePool(tg.Src, tg.Seeds, Options{FuzzSeed: 7})
		if err == nil || errors.Is(err, checkpoint.ErrNoCheckpoint) {
			t.Fatalf("resume without CheckpointDir: got %v, want a plain usage error", err)
		}
	})

	// One real checkpoint for the remaining cases.
	opts := Options{FuzzSeed: 7, SyncEvery: 300, CheckpointDir: t.TempDir()}
	p, err := NewPool(tg.Src, tg.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background(), 300)

	t.Run("mismatch", func(t *testing.T) {
		bad := opts
		bad.FuzzSeed = 8
		_, err := ResumePool(tg.Src, tg.Seeds, bad)
		if !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("got %v, want ErrMismatch", err)
		}
		bad = opts
		bad.StepLimit = 12345
		if _, err := ResumePool(tg.Src, tg.Seeds, bad); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("changed StepLimit: got %v, want ErrMismatch", err)
		}
		if _, err := ResumePool(tg.Src+"\n", tg.Seeds, opts); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("changed source: got %v, want ErrMismatch", err)
		}
	})

	t.Run("refuse-clobber", func(t *testing.T) {
		_, err := NewPool(tg.Src, tg.Seeds, opts)
		if err == nil || !strings.Contains(err.Error(), "resume") {
			t.Fatalf("fresh pool over an existing checkpoint: got %v, want a refusal mentioning resume", err)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		m, err := os.ReadFile(filepath.Join(opts.CheckpointDir, "MANIFEST.json"))
		if err != nil {
			t.Fatal(err)
		}
		var man checkpoint.Manifest
		if err := json.Unmarshal(m, &man); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(opts.CheckpointDir, man.StateFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumePool(tg.Src, tg.Seeds, opts); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestPoolCountsPersistErrors: a DiffDir whose diffs/ path cannot be
// created must not kill the campaign, but every dropped evidence file
// must be counted and surfaced through PoolStats.
func TestPoolCountsPersistErrors(t *testing.T) {
	tg := poolTarget(t)
	dir := t.TempDir()
	// Occupy the diffs/ path with a regular file so persistence fails.
	if err := os.WriteFile(filepath.Join(dir, "diffs"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 500, DiffDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stats := p.Run(context.Background(), 1000)
	if stats.UniqueDiffs == 0 {
		t.Fatal("campaign found no discrepancies; the persist-error check is vacuous")
	}
	if stats.PersistErrors == 0 {
		t.Fatal("persistence failures were swallowed: PoolStats.PersistErrors = 0")
	}
	// The healthy-path counterpart: a writable DiffDir reports zero.
	q, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, Shards: 2, SyncEvery: 500, DiffDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if s := q.Run(context.Background(), 1000); s.PersistErrors != 0 {
		t.Fatalf("healthy campaign reports %d persist errors", s.PersistErrors)
	}
}

// TestCampaignCountsPersistErrors: the single-campaign Add path must
// count (not swallow) persistence failures too.
func TestCampaignCountsPersistErrors(t *testing.T) {
	tg := poolTarget(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "diffs"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(tg.Src, tg.Seeds, Options{FuzzSeed: 7, DiffDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2000)
	if len(c.Diffs()) == 0 {
		t.Fatal("campaign found no discrepancies; the persist-error check is vacuous")
	}
	if c.PersistErrors() == 0 {
		t.Fatal("persistence failures were swallowed: Campaign.PersistErrors() = 0")
	}
}
