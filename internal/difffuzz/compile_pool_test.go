package difffuzz

// Tests for the compile-oracle campaign pool: the three compile-stage
// finding classes land in distinct buckets, an ICE-provoking program
// never retires its shard, the runtime cross-check still fires on
// universally-accepted programs, and the checkpoint/resume machinery
// upholds the same equivalence and fault-tolerance properties as the
// input-fuzzing pool's.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"compdiff/internal/checkpoint"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// The four interesting corpus shapes. rejectDivergent trips the
// strict-const-UB reject on optimizing gcc only; iceProgram exceeds
// the O2+ expression-depth limit; diagDivergent is rejected everywhere
// with family-specific wording; runtimeDivergent compiles everywhere
// and diverges on the empty input (division by input_size() == 0).
const (
	benignProgram = `int main() {
    printf("%d\n", 7);
    return 0;
}
`
	rejectDivergent = `int main() {
    int d = 1 / 0;
    return d;
}
`
	diagDivergent = `int g = 1 / 0;
int main() {
    return g;
}
`
	runtimeDivergent = `int main() {
    int d = (int)input_size();
    printf("%d\n", 100 / d);
    return 0;
}
`
)

// iceProgram builds a non-constant expression chain deeper than the
// O2+ nesting limit, panicking the optimizing lowerers.
func iceProgram() string {
	return "int main() {\n    int x = 1;\n    int y = x" +
		strings.Repeat("+1", 60) + ";\n    return y;\n}\n"
}

// compileCorpus mixes every finding class with benign and duplicate
// programs so dedup, sharding, and the runtime cross-check all engage.
func compileCorpus() []string {
	return []string{
		benignProgram,
		rejectDivergent,
		iceProgram(),
		benignProgram,
		diagDivergent,
		runtimeDivergent,
		"int orphan = 3;\n", // no main: uniformly rejected, not a finding
		iceProgram(),
		rejectDivergent,
		diagDivergent,
		benignProgram,
		runtimeDivergent,
	}
}

// TestCompilePoolFindsThreeClasses is the acceptance campaign: a
// corpus seeded with one reject-divergent, one ICE-provoking, and one
// diagnostics-divergent program yields exactly three distinct
// compile-stage buckets (plus the runtime one), with every shard
// alive at the end.
func TestCompilePoolFindsThreeClasses(t *testing.T) {
	corpus := compileCorpus()
	p, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 2, SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run(context.Background())

	if st.Programs != int64(len(corpus)) {
		t.Fatalf("processed %d programs, corpus has %d", st.Programs, len(corpus))
	}
	if st.CompileDivergences != 1 || st.ICEs != 1 || st.DiagMismatches != 1 {
		t.Fatalf("want one bucket per compile-stage class, got divergences=%d ices=%d diags=%d",
			st.CompileDivergences, st.ICEs, st.DiagMismatches)
	}
	if st.RuntimeBuckets != 1 {
		t.Fatalf("runtime cross-check found %d buckets, want 1", st.RuntimeBuckets)
	}
	if st.UniqueBuckets != 4 {
		t.Fatalf("UniqueBuckets = %d, want 4", st.UniqueBuckets)
	}
	for i, err := range st.ShardErrors {
		if err != nil {
			t.Fatalf("shard %d retired: %v", i, err)
		}
	}
	// Benign programs and the universally-accepted runtime one compile
	// clean everywhere; the orphan is a uniform reject, not a finding.
	if st.Accepted != 5 {
		t.Fatalf("Accepted = %d, want 5 (3 benign + 2 runtime)", st.Accepted)
	}
	if st.FrontendRejects != 1 {
		t.Fatalf("FrontendRejects = %d, want 1 (the no-main orphan)", st.FrontendRejects)
	}
	// Duplicate findings dedup into the same bucket but keep counting.
	if st.Findings != 8 {
		t.Fatalf("Findings = %d, want 8 (2 reject + 2 ice + 2 diag + 2 runtime)", st.Findings)
	}
}

// TestCompilePoolICEKeepsShardAlive is the regression for the
// retire-on-compiler-panic bug: an ICE-provoking program must become
// a bucketed finding while its shard goes on to process every
// subsequent program, including runtime executions.
func TestCompilePoolICEKeepsShardAlive(t *testing.T) {
	corpus := []string{iceProgram(), benignProgram, runtimeDivergent}
	p, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run(context.Background())
	if st.ShardErrors[0] != nil {
		t.Fatalf("compiler panic retired the shard: %v", st.ShardErrors[0])
	}
	if st.ICEs != 1 {
		t.Fatalf("ICEs = %d, want 1", st.ICEs)
	}
	if st.Programs != 3 || st.Accepted != 2 {
		t.Fatalf("shard stopped early after the ICE: programs=%d accepted=%d, want 3/2",
			st.Programs, st.Accepted)
	}
	if st.RuntimeBuckets != 1 {
		t.Fatalf("post-ICE runtime cross-check found %d buckets, want 1", st.RuntimeBuckets)
	}
}

// compareCompilePools asserts two compile campaigns found identical
// results: same sorted bucket keys, same per-key counts, same kinds,
// same aggregate counters.
func compareCompilePools(t *testing.T, fresh, resumed *CompilePool) {
	t.Helper()
	fk, rk := fresh.BucketKeys(), resumed.BucketKeys()
	if len(fk) == 0 {
		t.Fatal("fresh campaign found no buckets; the equivalence check is vacuous")
	}
	if len(fk) != len(rk) {
		t.Fatalf("bucket-key sets differ in size: fresh %d, resumed %d", len(fk), len(rk))
	}
	for i := range fk {
		if fk[i] != rk[i] {
			t.Fatalf("bucket keys differ at %d: fresh %016x, resumed %016x", i, fk[i], rk[i])
		}
	}
	fc, rc := fresh.BucketStore().Counts(), resumed.BucketStore().Counts()
	for key, n := range fc {
		if rc[key] != n {
			t.Fatalf("bucket %016x: fresh count %d, resumed %d", key, n, rc[key])
		}
	}
	fs, rs := fresh.Stats(), resumed.Stats()
	fs.ShardErrors, rs.ShardErrors = nil, nil
	if !reflect.DeepEqual(fs, rs) {
		t.Fatalf("stats diverged:\nfresh   %+v\nresumed %+v", fs, rs)
	}
}

// TestCompilePoolResumeEquivalence: a campaign killed at a barrier and
// resumed must end with exactly the bucket set, counts, and counters
// of an uninterrupted run — including the ICE and reject buckets.
func TestCompilePoolResumeEquivalence(t *testing.T) {
	corpus := compileCorpus()
	opts := CompilePoolOptions{Shards: 2, SyncEvery: 2}

	freshOpts := opts
	freshOpts.CheckpointDir = t.TempDir()
	fresh, err := NewCompilePool(corpus, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background())

	// The interrupted run: cancel at the third epoch — the last durable
	// barrier checkpoint (cursor 6) is what a kill-9 would leave.
	ckptOpts := opts
	ckptOpts.CheckpointDir = t.TempDir()
	first, err := NewCompilePool(corpus, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	first.epochHook = func(epoch int) {
		if epoch == 3 {
			cancel()
		}
	}
	first.Run(ctx)
	if first.cursor == 0 || first.cursor >= len(corpus) {
		t.Fatalf("interruption landed at cursor %d; want mid-corpus", first.cursor)
	}

	resumed, err := ResumeCompilePool(corpus, ckptOpts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.cursor != first.cursor {
		t.Fatalf("resumed at cursor %d, checkpoint held %d", resumed.cursor, first.cursor)
	}
	resumed.Run(context.Background())
	compareCompilePools(t, fresh, resumed)
}

// TestCompilePoolResumeReExportIdentical: restore must be lossless —
// re-exporting a just-loaded checkpoint reproduces it byte-for-byte,
// compile outcomes and ICE texts included.
func TestCompilePoolResumeReExportIdentical(t *testing.T) {
	corpus := compileCorpus()
	opts := CompilePoolOptions{Shards: 2, SyncEvery: 3, CheckpointDir: t.TempDir()}
	p, err := NewCompilePool(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background())

	want, _, err := checkpoint.Load(opts.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCompilePool(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.exportCompileState()

	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("re-exported state differs from the loaded checkpoint:\nloaded    %s\nre-export %s", wb, gb)
	}
}

// TestCompilePoolCheckpointFaultInjection kills the saver at assorted
// file operations during a barrier save and checks the directory still
// resumes from the last durable checkpoint, equivalent to a fresh run.
func TestCompilePoolCheckpointFaultInjection(t *testing.T) {
	corpus := compileCorpus()
	opts := CompilePoolOptions{Shards: 2, SyncEvery: 2}

	freshOpts := opts
	freshOpts.CheckpointDir = t.TempDir()
	fresh, err := NewCompilePool(corpus, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Run(context.Background())

	for _, ops := range []int{0, 2, 6} {
		ckptOpts := opts
		ckptOpts.CheckpointDir = t.TempDir()
		first, err := NewCompilePool(corpus, ckptOpts)
		if err != nil {
			t.Fatal(err)
		}
		// Two clean barriers, then the save at the third dies ops file
		// operations in, leaving whatever a kill would leave.
		ctx, cancel := context.WithCancel(context.Background())
		first.epochHook = func(epoch int) {
			switch epoch {
			case 2:
				first.saver.InjectFault(ops)
			case 3:
				cancel()
			}
		}
		first.Run(ctx)

		st, _, err := checkpoint.Load(ckptOpts.CheckpointDir)
		if err != nil {
			t.Fatalf("ops=%d: torn save corrupted the directory: %v", ops, err)
		}
		if c := st.Compile.Cursor; c != 4 && c != 6 {
			t.Fatalf("ops=%d: loadable checkpoint holds cursor %d, want 4 (old) or 6 (new)", ops, c)
		}

		resumed, err := ResumeCompilePool(corpus, ckptOpts)
		if err != nil {
			t.Fatalf("ops=%d: resume after torn save: %v", ops, err)
		}
		resumed.Run(context.Background())
		compareCompilePools(t, fresh, resumed)
	}
}

// TestCompilePoolResumeErrorClasses: each failure mode maps to its
// sentinel, a fresh pool refuses to clobber, and Parallelism — a
// scheduling knob — is explicitly resumable.
func TestCompilePoolResumeErrorClasses(t *testing.T) {
	corpus := compileCorpus()

	t.Run("no-checkpoint", func(t *testing.T) {
		_, err := ResumeCompilePool(corpus, CompilePoolOptions{CheckpointDir: t.TempDir()})
		if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
			t.Fatalf("got %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("no-dir-at-all", func(t *testing.T) {
		_, err := ResumeCompilePool(corpus, CompilePoolOptions{})
		if err == nil || errors.Is(err, checkpoint.ErrNoCheckpoint) {
			t.Fatalf("resume without CheckpointDir: got %v, want a plain usage error", err)
		}
	})

	opts := CompilePoolOptions{Shards: 2, SyncEvery: 3, CheckpointDir: t.TempDir()}
	p, err := NewCompilePool(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background())

	t.Run("mismatch", func(t *testing.T) {
		if _, err := ResumeCompilePool(corpus[:len(corpus)-1], opts); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("shrunk corpus: got %v, want ErrMismatch", err)
		}
		bad := opts
		bad.SyncEvery = 5
		if _, err := ResumeCompilePool(corpus, bad); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("changed SyncEvery: got %v, want ErrMismatch", err)
		}
		bad = opts
		bad.RuntimeInputs = [][]byte{[]byte("x")}
		if _, err := ResumeCompilePool(corpus, bad); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("changed RuntimeInputs: got %v, want ErrMismatch", err)
		}
	})

	t.Run("parallelism-is-resumable", func(t *testing.T) {
		ok := opts
		ok.Parallelism = 4
		q, err := ResumeCompilePool(corpus, ok)
		if err != nil {
			t.Fatalf("changed Parallelism must still resume: %v", err)
		}
		q.Close()
	})

	t.Run("refuse-clobber", func(t *testing.T) {
		_, err := NewCompilePool(corpus, opts)
		if err == nil || !strings.Contains(err.Error(), "resume") {
			t.Fatalf("fresh pool over an existing checkpoint: got %v, want a refusal mentioning resume", err)
		}
	})

	t.Run("wrong-campaign-type", func(t *testing.T) {
		// An input-fuzzing checkpoint hashes under a different seed, so
		// the compile pool classifies it as an options mismatch.
		tg := poolTarget(t)
		dir := t.TempDir()
		ip, err := NewPool(tg.Src, tg.Seeds, Options{FuzzSeed: 7, SyncEvery: 300, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ip.Run(context.Background(), 300)
		ro := opts
		ro.CheckpointDir = dir
		if _, err := ResumeCompilePool(corpus, ro); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("got %v, want ErrMismatch", err)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		m, err := os.ReadFile(filepath.Join(opts.CheckpointDir, "MANIFEST.json"))
		if err != nil {
			t.Fatal(err)
		}
		var man checkpoint.Manifest
		if err := json.Unmarshal(m, &man); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(opts.CheckpointDir, man.StateFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeCompilePool(corpus, opts); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestCompilePoolParallelismDeterminism: per-program compile
// parallelism is scheduling only — the bucket sets and counters of a
// Parallelism=4 campaign match the sequential one exactly.
func TestCompilePoolParallelismDeterminism(t *testing.T) {
	corpus := compileCorpus()
	seq, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 2, SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(context.Background())
	par, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 2, SyncEvery: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	par.Run(context.Background())
	compareCompilePools(t, seq, par)
}

// TestCompilePoolTelemetry: the stats stream carries the
// compile-oracle counters, and cancellation still flushes a final
// parseable snapshot to plot.jsonl.
func TestCompilePoolTelemetry(t *testing.T) {
	corpus := compileCorpus()
	dir := t.TempDir()
	p, err := NewCompilePool(corpus, CompilePoolOptions{Shards: 2, SyncEvery: 3, StatsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background())
	p.Close()

	data, err := os.ReadFile(filepath.Join(dir, "plot.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // 12 programs / SyncEvery 3
		t.Fatalf("plot.jsonl has %d lines, want 4 barrier snapshots", len(lines))
	}
	var tail telemetry.Snapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatalf("tail line does not parse: %v", err)
	}
	st := p.Stats()
	if tail.Programs != st.Programs || tail.Execs != st.Programs {
		t.Fatalf("tail programs=%d execs=%d, campaign processed %d", tail.Programs, tail.Execs, st.Programs)
	}
	if tail.CompileDivergences != st.CompileDivergences || tail.ICEs != st.ICEs ||
		tail.DiagMismatches != st.DiagMismatches || tail.UniqueBuckets != st.UniqueBuckets {
		t.Fatalf("tail compile counters %+v do not match stats %+v", tail, st)
	}
}

// TestCompilePoolReport: the pool's bucket store renders compile-stage
// findings through the triage report path — one section per kind, with
// the ICE text and the per-implementation statuses visible.
func TestCompilePoolReport(t *testing.T) {
	corpus := compileCorpus()
	p, err := NewCompilePool(corpus, CompilePoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(context.Background())
	var sb strings.Builder
	for _, b := range p.BucketStore().Buckets() {
		sb.WriteString(b.Report(p.ImplNames()))
		sb.WriteString("\n")
	}
	rep := sb.String()
	for _, want := range []string{
		triage.KindCompileDivergence.String(),
		triage.KindICE.String(),
		triage.KindDiagMismatch.String(),
		"internal compiler error",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
