package hash

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x64/128, produced by the canonical
// C++ implementation (smhasher).
func TestSum128ReferenceVectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint32
		h1   uint64
		h2   uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"", 1, 0x4610abe56eff5cb5, 0x51622daa78f83583},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.in), c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Sum128(%q, %d) = %#x,%#x; want %#x,%#x", c.in, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestSum32ReferenceVectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"hello", 0, 0x248bfa47},
		{"hello, world", 0, 0x149bbb7f},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xd5c48bfc},
	}
	for _, c := range cases {
		if got := Sum32([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum32(%q, %d) = %#x; want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestSum64IsFirstHalf(t *testing.T) {
	data := []byte("compdiff output channel")
	h1, _ := Sum128(data, 7)
	if got := Sum64(data, 7); got != h1 {
		t.Fatalf("Sum64 = %#x, want %#x", got, h1)
	}
}

// Streaming digest must agree with the one-shot function for every
// split of the input.
func TestDigestMatchesOneShotAllSplits(t *testing.T) {
	data := []byte("MurmurHash3 was written by Austin Appleby, and is placed in the public domain.")
	want1, want2 := Sum128(data, 42)
	for split := 0; split <= len(data); split++ {
		d := New128(42)
		d.Write(data[:split])
		d.Write(data[split:])
		h1, h2 := d.Sum128()
		if h1 != want1 || h2 != want2 {
			t.Fatalf("split %d: digest = %#x,%#x; want %#x,%#x", split, h1, h2, want1, want2)
		}
	}
}

func TestDigestSumDoesNotConsumeState(t *testing.T) {
	d := New128(0)
	d.Write([]byte("part one "))
	a1, a2 := d.Sum128()
	b1, b2 := d.Sum128()
	if a1 != b1 || a2 != b2 {
		t.Fatal("Sum128 mutated digest state")
	}
	d.Write([]byte("part two"))
	c1, c2 := d.Sum128()
	w1, w2 := Sum128([]byte("part one part two"), 0)
	if c1 != w1 || c2 != w2 {
		t.Fatalf("continued digest = %#x,%#x; want %#x,%#x", c1, c2, w1, w2)
	}
}

// Reset must make a used digest indistinguishable from a fresh one, for
// any seed and regardless of how much unfinalized state it held —
// that's what lets the suite hot path pool digests instead of
// allocating one per hashed stream.
func TestDigestReset(t *testing.T) {
	d := New128(7)
	d.Write([]byte("stale partial state that must vanish on reset, including tail bytes"))
	for _, seed := range []uint32{0, 7, 42, 0xaf1d, 0xffffffff} {
		data := []byte("fresh stream hashed after a Reset")
		d.Reset(seed)
		d.Write(data[:11])
		d.Write(data[11:])
		h1, h2 := d.Sum128()
		w1, w2 := Sum128(data, seed)
		if h1 != w1 || h2 != w2 {
			t.Fatalf("seed %#x: reset digest = %#x,%#x; want %#x,%#x", seed, h1, h2, w1, w2)
		}
	}
	// Reset of an empty-but-seeded digest is also a no-op semantically.
	d.Reset(3)
	h1, h2 := d.Sum128()
	w1, w2 := Sum128(nil, 3)
	if h1 != w1 || h2 != w2 {
		t.Fatalf("reset-empty digest = %#x,%#x; want %#x,%#x", h1, h2, w1, w2)
	}
}

// Property: streaming equals one-shot for arbitrary data and chunkings.
func TestQuickDigestEquivalence(t *testing.T) {
	f := func(data []byte, seed uint32, cut uint8) bool {
		k := int(cut)
		if k > len(data) {
			k = len(data)
		}
		d := New128(seed)
		d.Write(data[:k])
		d.Write(data[k:])
		h1, h2 := d.Sum128()
		w1, w2 := Sum128(data, seed)
		return h1 == w1 && h2 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: different single-byte perturbations change the hash
// (collision over a small sample would indicate a broken implementation).
func TestQuickPerturbationChangesHash(t *testing.T) {
	f := func(data []byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		mut := bytes.Clone(data)
		mut[i] ^= 0xff
		a1, a2 := Sum128(data, 0)
		b1, b2 := Sum128(mut, 0)
		return a1 != b1 || a2 != b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedChangesHash(t *testing.T) {
	data := []byte("same bytes")
	a, _ := Sum128(data, 1)
	b, _ := Sum128(data, 2)
	if a == b {
		t.Fatal("different seeds produced identical hashes")
	}
}

func BenchmarkSum128_1K(b *testing.B) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}
