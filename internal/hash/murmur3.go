// Package hash implements the MurmurHash3 family of non-cryptographic
// hash functions (Austin Appleby, public domain). CompDiff uses
// MurmurHash3 checksums of captured program output to compare the
// behaviour of binaries produced by different compiler implementations,
// mirroring the checksum mechanism AFL++ ships with.
package hash

import "math/bits"

const (
	c1x64 = 0x87c37b91114253d5
	c2x64 = 0x4cf5ad432745937f
)

// Sum128 computes the x64 variant of MurmurHash3 with a 128-bit result
// over data using the given seed. The two halves are returned as h1, h2.
func Sum128(data []byte, seed uint32) (uint64, uint64) {
	h1 := uint64(seed)
	h2 := uint64(seed)
	n := len(data)

	// Body: 16-byte blocks.
	nblocks := n / 16
	for i := 0; i < nblocks; i++ {
		k1 := le64(data[i*16:])
		k2 := le64(data[i*16+8:])

		k1 *= c1x64
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2x64
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2x64
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1x64
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2x64
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1x64
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1x64
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2x64
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Sum64 returns the first half of Sum128, a convenient 64-bit digest.
func Sum64(data []byte, seed uint32) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// Sum32 computes the x86 32-bit variant of MurmurHash3.
func Sum32(data []byte, seed uint32) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(data)

	nblocks := n / 4
	for i := 0; i < nblocks; i++ {
		k := le32(data[i*4:])
		k *= c1
		k = bits.RotateLeft32(k, 15)
		k *= c2
		h ^= k
		h = bits.RotateLeft32(h, 13)
		h = h*5 + 0xe6546b64
	}

	var k uint32
	tail := data[nblocks*4:]
	switch len(tail) & 3 {
	case 3:
		k ^= uint32(tail[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(tail[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(tail[0])
		k *= c1
		k = bits.RotateLeft32(k, 15)
		k *= c2
		h ^= k
	}

	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// A Digest accumulates bytes for a streaming 128-bit MurmurHash3 (x64).
// The zero value is not ready for use; call New128.
type Digest struct {
	h1, h2 uint64
	buf    [16]byte
	nbuf   int
	total  int
}

// New128 returns a streaming digest with the given seed.
func New128(seed uint32) *Digest {
	return &Digest{h1: uint64(seed), h2: uint64(seed)}
}

// Reset rewinds the digest to the initial state for the given seed, so
// one allocation can hash many independent streams. A reset digest is
// indistinguishable from a fresh New128(seed).
func (d *Digest) Reset(seed uint32) {
	d.h1 = uint64(seed)
	d.h2 = uint64(seed)
	d.nbuf = 0
	d.total = 0
}

// Write adds data to the running hash. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.total += n
	if d.nbuf > 0 {
		c := copy(d.buf[d.nbuf:], p)
		d.nbuf += c
		p = p[c:]
		if d.nbuf == 16 {
			d.block(d.buf[:])
			d.nbuf = 0
		}
	}
	if len(p) >= 16 {
		p = d.blocks(p)
	}
	if len(p) > 0 {
		copy(d.buf[:], p)
		d.nbuf = len(p)
	}
	return n, nil
}

// blocks consumes every full 16-byte block of p with the hash state in
// registers — one state load and store for the whole run instead of
// one per block — and returns the unconsumed tail.
func (d *Digest) blocks(p []byte) []byte {
	h1, h2 := d.h1, d.h2
	for len(p) >= 16 {
		k1 := le64(p)
		k2 := le64(p[8:])
		p = p[16:]

		k1 *= c1x64
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2x64
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2x64
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1x64
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}
	d.h1, d.h2 = h1, h2
	return p
}

func (d *Digest) block(b []byte) {
	k1 := le64(b)
	k2 := le64(b[8:])

	k1 *= c1x64
	k1 = bits.RotateLeft64(k1, 31)
	k1 *= c2x64
	d.h1 ^= k1

	d.h1 = bits.RotateLeft64(d.h1, 27)
	d.h1 += d.h2
	d.h1 = d.h1*5 + 0x52dce729

	k2 *= c2x64
	k2 = bits.RotateLeft64(k2, 33)
	k2 *= c1x64
	d.h2 ^= k2

	d.h2 = bits.RotateLeft64(d.h2, 31)
	d.h2 += d.h1
	d.h2 = d.h2*5 + 0x38495ab5
}

// Sum128 finalizes the digest and returns the 128-bit hash. The digest
// remains usable: finalization operates on a copy of the state.
func (d *Digest) Sum128() (uint64, uint64) {
	h1, h2 := d.h1, d.h2

	var k1, k2 uint64
	tail := d.buf[:d.nbuf]
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2x64
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1x64
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1x64
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2x64
		h1 ^= k1
	}

	h1 ^= uint64(d.total)
	h2 ^= uint64(d.total)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
