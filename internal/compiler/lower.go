package compiler

import (
	"fmt"
	"math"

	"compdiff/internal/ir"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/sema"
	"compdiff/internal/minic/types"
)

// Compile lowers a checked program to bytecode under one compiler
// implementation. The AST is never mutated, so the same Info can be
// compiled under many configurations, including concurrently.
// A lowering bug panics through to the caller; use CompileGuarded to
// capture it as an ICE finding instead.
func Compile(info *sema.Info, cfg Config) (*ir.Program, error) {
	lw := newLowerer(info, cfg)
	prog, err := lw.compile()
	if err != nil {
		return nil, fmt.Errorf("compile [%s]: %w", cfg.Name(), err)
	}
	return prog, nil
}

// MustCompile compiles a known-good program, panicking on error.
func MustCompile(info *sema.Info, cfg Config) *ir.Program {
	p, err := Compile(info, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func newLowerer(info *sema.Info, cfg Config) *lowerer {
	return &lowerer{
		info:      info,
		cfg:       cfg,
		ps:        cfg.passes(),
		strOff:    map[string]int64{},
		funcIdx:   map[string]int{},
		globalOff: map[*ast.Symbol]int64{},
	}
}

type lowerer struct {
	info *sema.Info
	cfg  Config
	ps   passSet

	rodata    []byte
	strOff    map[string]int64
	funcIdx   map[string]int
	globalOff map[*ast.Symbol]int64

	// diags accumulates rendered warnings/errors (see diag.go); depth
	// tracks expression-lowering recursion for the ICE ceiling.
	diags []string
	depth int

	// passBits accumulates the fired-rewrite bitmap across the whole
	// compilation: analyzeFunc decisions merged per function, plus the
	// rewrites only known at lowering time (constant folds, widening,
	// FMA contraction). Surfaced through Result.PassBits.
	passBits PassBits

	// Per-function state.
	fl     *frameLayout
	dec    *decisions
	fn     *ast.FuncDecl
	code   []ir.Instr
	line   int32
	brk    [][]int // break patch lists, one per enclosing loop
	cont   [][]int // continue patch lists
	edgeID int
}

func (lw *lowerer) compile() (*ir.Program, error) {
	prog := &ir.Program{
		FuncIndex: map[string]int{},
		Compiler:  lw.cfg.Name(),
		Profile:   lw.cfg.profile(),
		Main:      -1,
	}
	for i, f := range lw.info.Prog.Funcs {
		lw.funcIdx[f.Name] = i
		prog.FuncIndex[f.Name] = i
		if f.Name == "main" {
			prog.Main = i
		}
	}
	if prog.Main < 0 {
		return nil, fmt.Errorf("program has no main function")
	}

	// Front-end diagnostics pass: constant-UB sites warn (or, under a
	// strict personality, reject) before any code is generated.
	if err := lw.scanConstUB(); err != nil {
		return nil, err
	}

	offs, glen := planGlobals(lw.cfg, lw.info.Globals)
	lw.globalOff = offs
	prog.GlobalsLen = glen
	if glen > ir.GlobalsMax-ir.GlobalsBase {
		return nil, fmt.Errorf("globals segment overflow: %d bytes", glen)
	}

	// Global and static-local initializers become data-segment images.
	appendInit := func(sym *ast.Symbol, declType *types.Type, init ast.Expr) error {
		v, ok := evalConst(init)
		if !ok {
			return lw.rejectf(init.Pos().Line, initNotConstText(lw.cfg.Family))
		}
		data, needStr := globalInitBytes(declType, v)
		if needStr {
			addr := uint64(ir.RodataBase + lw.internString(v.str))
			data = make([]byte, 8)
			for i := 0; i < 8; i++ {
				data[i] = byte(addr >> (8 * i))
			}
		}
		prog.GlobalInit = append(prog.GlobalInit, ir.GlobalInit{Offset: lw.globalOff[sym], Data: data})
		return nil
	}
	for _, g := range lw.info.Prog.Globals {
		if g.Init == nil || g.Sym == nil {
			continue
		}
		if err := appendInit(g.Sym, g.DeclType, g.Init); err != nil {
			return nil, err
		}
	}
	var initErr error
	for _, f := range lw.info.Prog.Funcs {
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			ds, ok := s.(*ast.DeclStmt)
			if !ok {
				return true
			}
			for _, d := range ds.Decls {
				if d.Storage == ast.Static && d.Init != nil && d.Sym != nil {
					if err := appendInit(d.Sym, d.DeclType, d.Init); err != nil && initErr == nil {
						initErr = err
					}
				}
			}
			return true
		})
	}
	if initErr != nil {
		return nil, initErr
	}

	for _, f := range lw.info.Prog.Funcs {
		fn, err := lw.lowerFunc(f)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	prog.Rodata = lw.rodata
	if lw.cfg.Instrument {
		prog.NumEdges = lw.edgeID
	}
	if int64(len(prog.Rodata)) > ir.RodataMax-ir.RodataBase {
		return nil, fmt.Errorf("rodata segment overflow: %d bytes", len(prog.Rodata))
	}
	return prog, nil
}

// internString places a NUL-terminated string in rodata, deduplicated,
// and returns its offset.
func (lw *lowerer) internString(s string) int64 {
	if off, ok := lw.strOff[s]; ok {
		return off
	}
	off := int64(len(lw.rodata))
	lw.rodata = append(lw.rodata, s...)
	lw.rodata = append(lw.rodata, 0)
	lw.strOff[s] = off
	return off
}

// ---------------------------------------------------------------------------
// Function lowering

func (lw *lowerer) lowerFunc(f *ast.FuncDecl) (*ir.Func, error) {
	lw.fn = f
	lw.dec = analyzeFunc(lw.ps, f)
	lw.passBits |= lw.dec.fired
	var params, locals []*ast.Symbol
	params = lw.info.Params[f]
	locals = lw.info.Locals[f]
	lw.fl = planFrame(lw.cfg, f, params, locals)
	lw.code = nil
	lw.brk, lw.cont = nil, nil

	lw.edge()
	lw.stmt(f.Body)

	// A non-void function that falls off the end returns garbage (UB);
	// the value is an implementation-determined poison.
	if !f.Result.IsVoid() {
		lw.emit(ir.Instr{Op: ir.Poison, Imm: int64(lw.funcIdx[f.Name])})
		lw.emit(ir.Instr{Op: ir.Ret, A: 1})
	} else {
		lw.emit(ir.Instr{Op: ir.Ret})
	}

	return &ir.Func{
		Name:      f.Name,
		FrameSize: lw.fl.size,
		ParamOff:  lw.fl.paramOff,
		ParamKind: lw.fl.paramKind,
		Slots:     lw.fl.slots,
		Code:      peepholeFold(lw.code),
	}, nil
}

func (lw *lowerer) emit(i ir.Instr) int {
	i.Line = lw.line
	lw.code = append(lw.code, i)
	return len(lw.code) - 1
}

func (lw *lowerer) here() int64 { return int64(len(lw.code)) }

func (lw *lowerer) patch(idx int) { lw.code[idx].Imm = lw.here() }

func (lw *lowerer) edge() {
	if lw.cfg.Instrument {
		lw.emit(ir.Instr{Op: ir.Edge, Imm: int64(lw.edgeID)})
		lw.edgeID++
	}
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) stmt(s ast.Stmt) {
	if s == nil || lw.dec.dead[s] {
		return
	}
	if p := s.Pos(); p.Line > 0 {
		lw.line = int32(p.Line)
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, c := range s.Stmts {
			lw.stmt(c)
		}
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			if d.Storage == ast.Static || d.Sym == nil {
				continue // static locals live in the data segment
			}
			if d.Init == nil {
				continue // uninitialized: the slot holds stack garbage
			}
			lw.emit(ir.Instr{Op: ir.FrameAddr, Imm: lw.fl.offsets[d.Sym]})
			lw.exprConv(d.Init, d.DeclType)
			lw.store(d.DeclType)
		}
	case *ast.ExprStmt:
		lw.exprForEffect(s.X)
	case *ast.IfStmt:
		lw.lowerIf(s)
	case *ast.WhileStmt:
		lw.lowerWhile(s)
	case *ast.ForStmt:
		lw.lowerFor(s)
	case *ast.ReturnStmt:
		if s.Value != nil {
			lw.exprConv(s.Value, lw.fn.Result)
			lw.emit(ir.Instr{Op: ir.Ret, A: 1})
		} else {
			lw.emit(ir.Instr{Op: ir.Ret})
		}
	case *ast.BreakStmt:
		j := lw.emit(ir.Instr{Op: ir.Jmp})
		lw.brk[len(lw.brk)-1] = append(lw.brk[len(lw.brk)-1], j)
	case *ast.ContinueStmt:
		j := lw.emit(ir.Instr{Op: ir.Jmp})
		lw.cont[len(lw.cont)-1] = append(lw.cont[len(lw.cont)-1], j)
	}
}

// constCond resolves a condition that the implementation decided (or
// could prove) is constant: optimizer folds first, then plain constant
// folding at -O1+.
func (lw *lowerer) constCond(e ast.Expr) (bool, bool) {
	if v, ok := lw.dec.fold[e]; ok {
		return v != 0, true
	}
	if lw.ps.ConstFold {
		if v, ok := evalConst(e); ok && !v.isStr {
			lw.passBits |= PassConstFold
			return !v.isZero(), true
		}
	}
	return false, false
}

func (lw *lowerer) lowerIf(s *ast.IfStmt) {
	if taken, known := lw.constCond(s.Cond); known {
		if taken {
			lw.stmt(s.Then)
		} else if s.Else != nil {
			lw.stmt(s.Else)
		}
		return
	}
	lw.truthy(s.Cond)
	jz := lw.emit(ir.Instr{Op: ir.Jz})
	lw.edge()
	lw.stmt(s.Then)
	if s.Else == nil {
		lw.patch(jz)
		return
	}
	jend := lw.emit(ir.Instr{Op: ir.Jmp})
	lw.patch(jz)
	lw.edge()
	lw.stmt(s.Else)
	lw.patch(jend)
}

func (lw *lowerer) pushLoop() {
	lw.brk = append(lw.brk, nil)
	lw.cont = append(lw.cont, nil)
}

func (lw *lowerer) popLoop(contTarget int64) {
	for _, j := range lw.cont[len(lw.cont)-1] {
		lw.code[j].Imm = contTarget
	}
	for _, j := range lw.brk[len(lw.brk)-1] {
		lw.code[j].Imm = lw.here()
	}
	lw.brk = lw.brk[:len(lw.brk)-1]
	lw.cont = lw.cont[:len(lw.cont)-1]
}

func (lw *lowerer) lowerWhile(s *ast.WhileStmt) {
	if taken, known := lw.constCond(s.Cond); known && !taken {
		return
	}
	start := lw.here()
	var jz int = -1
	if taken, known := lw.constCond(s.Cond); !known || !taken {
		lw.truthy(s.Cond)
		jz = lw.emit(ir.Instr{Op: ir.Jz})
	}
	lw.pushLoop()
	lw.edge()
	lw.stmt(s.Body)
	lw.emit(ir.Instr{Op: ir.Jmp, Imm: start})
	if jz >= 0 {
		lw.patch(jz)
	}
	lw.popLoop(start)
	lw.edge()
}

func (lw *lowerer) lowerFor(s *ast.ForStmt) {
	lw.stmt(s.Init)
	start := lw.here()
	jz := -1
	if s.Cond != nil {
		if taken, known := lw.constCond(s.Cond); known {
			if !taken {
				return
			}
		} else {
			lw.truthy(s.Cond)
			jz = lw.emit(ir.Instr{Op: ir.Jz})
		}
	}
	lw.pushLoop()
	lw.edge()
	lw.stmt(s.Body)
	contTarget := lw.here()
	if s.Post != nil {
		lw.exprForEffect(s.Post)
	}
	lw.emit(ir.Instr{Op: ir.Jmp, Imm: start})
	if jz >= 0 {
		lw.patch(jz)
	}
	lw.popLoop(contTarget)
	lw.edge()
}

// ---------------------------------------------------------------------------
// Expressions

// exprForEffect lowers e discarding its value.
func (lw *lowerer) exprForEffect(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Assign:
		lw.lowerAssign(e, false)
		return
	case *ast.Unary:
		switch e.Op {
		case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
			lw.lowerIncDec(e, false)
			return
		}
	case *ast.Call:
		lw.lowerCall(e)
		if !e.Type().IsVoid() {
			lw.emit(ir.Instr{Op: ir.Pop})
		}
		return
	}
	lw.expr(e)
	if !e.Type().IsVoid() {
		lw.emit(ir.Instr{Op: ir.Pop})
	}
}

// expr lowers e, pushing its value in canonical form for typeCode(e.Type()).
func (lw *lowerer) expr(e ast.Expr) {
	if lim := lw.ps.ExprDepthLimit; lim > 0 {
		// Simplifier recursion ceiling: the deliberately reproducible
		// ICE of this compiler model. Deeply nested expressions blow it
		// at optimizing levels, exactly the kind of input-dependent
		// front-end crash differential campaigns must survive.
		lw.depth++
		if lw.depth > lim {
			panic(lw.iceDepth(e))
		}
		defer func() { lw.depth-- }()
	}
	if p := e.Pos(); p.Line > 0 {
		lw.line = int32(p.Line)
	}
	if v, ok := lw.dec.fold[e]; ok {
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: int64(v)})
		return
	}
	switch e := e.(type) {
	case *ast.IntLit:
		tc := typeCode(e.Type())
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: int64(ir.Canon(tc, uint64(e.Value)))})
	case *ast.FloatLit:
		v := e.Value
		if typeCode(e.Type()) == ir.F32 {
			v = float64(float32(v))
		}
		lw.emit(ir.Instr{Op: ir.ConstF, FImm: v})
	case *ast.StrLit:
		lw.emit(ir.Instr{Op: ir.StrAddr, Imm: lw.internString(e.Value)})
	case *ast.LineExpr:
		line := e.KwPos.Line
		if lw.ps.LineIsStmtStart && e.StmtLine > 0 {
			line = e.StmtLine
		}
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: int64(line)})
	case *ast.Ident:
		lw.loadLValue(e)
	case *ast.Unary:
		lw.lowerUnary(e)
	case *ast.Binary:
		lw.lowerBinary(e)
	case *ast.Assign:
		lw.lowerAssign(e, true)
	case *ast.Cond:
		lw.lowerCond(e)
	case *ast.Call:
		lw.lowerCall(e)
	case *ast.Index, *ast.Member:
		lw.loadLValue(e)
	case *ast.CastExpr:
		lw.exprConv(e.X, e.To)
	case *ast.SizeofExpr:
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: e.Of.Size()})
	default:
		lw.emit(ir.Instr{Op: ir.Unreach})
	}
}

// exprConv lowers e and converts the result to type `to`. This is also
// the hook for the arithmetic-widening divergence: when the target is
// 64-bit and the implementation widens, a signed 32-bit +,-,* chain is
// evaluated directly in 64 bits (changing results only under signed
// overflow, which is UB).
func (lw *lowerer) exprConv(e ast.Expr, to *types.Type) {
	toCode := typeCode(to)
	if toCode == ir.I64 && lw.ps.WidenMulToLong && lw.widenable(e) {
		lw.passBits |= PassWidenMul
		lw.lowerWidened(e)
		return
	}
	lw.expr(e)
	lw.convCode(typeCode(e.Type()), toCode)
}

// widenable reports whether e is a signed-int arithmetic chain the
// widening pass evaluates in 64-bit.
func (lw *lowerer) widenable(e ast.Expr) bool {
	bin, ok := e.(*ast.Binary)
	if !ok {
		return false
	}
	if _, folded := lw.dec.fold[e]; folded {
		return false
	}
	switch bin.Op {
	case ast.Add, ast.Sub, ast.Mul:
	default:
		return false
	}
	// Must contain at least one multiplication to match the real
	// pattern (cheap reassociation of multiplies into wider registers).
	if bin.Op != ast.Mul {
		_, xm := bin.X.(*ast.Binary)
		_, ym := bin.Y.(*ast.Binary)
		if !xm && !ym {
			return false
		}
	}
	return bin.CommonType != nil && bin.CommonType.Kind == types.Int &&
		bin.X.Type().IsInteger() && bin.Y.Type().IsInteger()
}

// lowerWidened evaluates a signed-int +,-,* tree in I64.
func (lw *lowerer) lowerWidened(e ast.Expr) {
	if bin, ok := e.(*ast.Binary); ok && lw.widenableNode(bin) {
		lw.lowerWidened(bin.X)
		lw.lowerWidened(bin.Y)
		op, _ := binOpToIR(bin.Op)
		lw.emit(ir.Instr{Op: op, A: uint8(ir.I64)})
		return
	}
	lw.expr(e)
	lw.convCode(typeCode(e.Type()), ir.I64)
}

func (lw *lowerer) widenableNode(bin *ast.Binary) bool {
	if _, folded := lw.dec.fold[bin]; folded {
		return false
	}
	switch bin.Op {
	case ast.Add, ast.Sub, ast.Mul:
		return bin.CommonType != nil && bin.CommonType.Kind == types.Int &&
			bin.X.Type().IsInteger() && bin.Y.Type().IsInteger()
	}
	return false
}

func (lw *lowerer) convCode(from, to ir.TypeCode) {
	if from == to {
		return
	}
	lw.emit(ir.Instr{Op: ir.Conv, A: uint8(from), B: uint8(to)})
}

// truthy lowers e so that the top of stack is nonzero iff e is true.
func (lw *lowerer) truthy(e ast.Expr) {
	lw.expr(e)
	tc := typeCode(e.Type())
	if tc.IsFloat() {
		lw.emit(ir.Instr{Op: ir.ConstF, FImm: 0})
		lw.emit(ir.Instr{Op: ir.CmpNe, A: uint8(tc)})
	}
}

// ---------------------------------------------------------------------------
// L-values

// addr pushes the address of lvalue e.
func (lw *lowerer) addr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		sym := e.Sym
		switch sym.Kind {
		case ast.SymLocal, ast.SymParam:
			lw.emit(ir.Instr{Op: ir.FrameAddr, Imm: lw.fl.offsets[sym]})
		case ast.SymGlobal, ast.SymStaticLocal:
			lw.emit(ir.Instr{Op: ir.GlobalAddr, Imm: lw.globalOff[sym]})
		default:
			lw.emit(ir.Instr{Op: ir.Unreach})
		}
	case *ast.Unary:
		if e.Op != ast.Deref {
			lw.emit(ir.Instr{Op: ir.Unreach})
			return
		}
		lw.expr(e.X)
	case *ast.Index:
		lw.expr(e.X) // pointer value (arrays decayed)
		lw.exprConv(e.Idx, types.LongType)
		elem := e.Type()
		if sz := elem.Size(); sz != 1 {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: sz})
			lw.emit(ir.Instr{Op: ir.Mul, A: uint8(ir.I64)})
		}
		lw.emit(ir.Instr{Op: ir.Add, A: uint8(ir.U64)})
	case *ast.Member:
		if e.Arrow {
			lw.expr(e.X)
		} else {
			lw.addr(e.X)
		}
		if e.Field.Offset != 0 {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: e.Field.Offset})
			lw.emit(ir.Instr{Op: ir.Add, A: uint8(ir.U64)})
		}
	default:
		lw.emit(ir.Instr{Op: ir.Unreach})
	}
}

// loadLValue pushes the value of lvalue e (or its address, for arrays).
func (lw *lowerer) loadLValue(e ast.Expr) {
	// Arrays do not load; their value is their address.
	if id, ok := e.(*ast.Ident); ok && id.Sym != nil && id.Sym.Type.Kind == types.Array {
		lw.addr(e)
		return
	}
	if m, ok := e.(*ast.Member); ok && m.Field.Type != nil && m.Field.Type.Kind == types.Array {
		lw.addr(e)
		return
	}
	if ix, ok := e.(*ast.Index); ok {
		if at := indexElemType(ix); at != nil && at.Kind == types.Array {
			lw.addr(e)
			return
		}
	}
	lw.addr(e)
	lw.load(lvalueType(e))
}

func indexElemType(ix *ast.Index) *types.Type {
	xt := ix.X.Type()
	if xt != nil && xt.IsPtr() {
		return xt.Elem
	}
	return nil
}

// lvalueType is the declared (non-decayed) type of the storage.
func lvalueType(e ast.Expr) *types.Type {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Sym.Type
	case *ast.Member:
		return e.Field.Type
	case *ast.Index:
		if t := indexElemType(e); t != nil {
			return t
		}
	case *ast.Unary:
		if e.Op == ast.Deref {
			if xt := e.X.Type(); xt != nil && xt.IsPtr() {
				return xt.Elem
			}
		}
	}
	return e.Type()
}

// load emits a Load for storage of type t (address on stack).
func (lw *lowerer) load(t *types.Type) {
	tc := typeCode(t)
	in := ir.Instr{Op: ir.Load, A: uint8(storeWidth(t))}
	switch {
	case tc == ir.F32:
		in.B = 2
	case tc == ir.F64:
		in.B = 3
	case tc.Signed():
		in.B = 1
	}
	lw.emit(in)
}

// store emits a Store for storage of type t (stack: [addr, value]).
func (lw *lowerer) store(t *types.Type) {
	in := ir.Instr{Op: ir.Store, A: uint8(storeWidth(t))}
	if typeCode(t) == ir.F32 {
		in.B = 2
	}
	lw.emit(in)
}

// ---------------------------------------------------------------------------
// Operators

func (lw *lowerer) lowerUnary(e *ast.Unary) {
	switch e.Op {
	case ast.Neg:
		lw.exprConv(e.X, e.Type())
		tc := typeCode(e.Type())
		if tc.IsFloat() {
			lw.emit(ir.Instr{Op: ir.FNeg, A: uint8(tc)})
		} else {
			lw.emit(ir.Instr{Op: ir.Neg, A: uint8(tc)})
		}
	case ast.BitNot:
		lw.exprConv(e.X, e.Type())
		lw.emit(ir.Instr{Op: ir.BitNot, A: uint8(typeCode(e.Type()))})
	case ast.LogicalNot:
		lw.expr(e.X)
		tc := typeCode(e.X.Type())
		if tc.IsFloat() {
			lw.emit(ir.Instr{Op: ir.ConstF, FImm: 0})
		} else {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: 0})
		}
		lw.emit(ir.Instr{Op: ir.CmpEq, A: uint8(tc)})
	case ast.Deref:
		lw.expr(e.X)
		lw.load(e.Type())
	case ast.AddrOf:
		lw.addr(e.X)
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		lw.lowerIncDec(e, true)
	default:
		lw.emit(ir.Instr{Op: ir.Unreach})
	}
}

// lowerIncDec lowers ++/-- with or without a result value.
func (lw *lowerer) lowerIncDec(e *ast.Unary, needValue bool) {
	t := lvalueType(e.X)
	tc := typeCode(t)
	isSub := e.Op == ast.PreDec || e.Op == ast.PostDec
	isPost := e.Op == ast.PostInc || e.Op == ast.PostDec

	lw.addr(e.X)
	lw.emit(ir.Instr{Op: ir.Dup})
	lw.load(t)
	if needValue && isPost {
		lw.emit(ir.Instr{Op: ir.TSet})
		lw.emit(ir.Instr{Op: ir.TGet})
	}
	// Step: 1, or the element size for pointers.
	step := int64(1)
	opCode := tc
	if t.IsPtr() {
		step = t.Elem.Size()
		opCode = ir.U64
	}
	if tc.IsFloat() {
		lw.emit(ir.Instr{Op: ir.ConstF, FImm: 1})
		if isSub {
			lw.emit(ir.Instr{Op: ir.FSub, A: uint8(tc)})
		} else {
			lw.emit(ir.Instr{Op: ir.FAdd, A: uint8(tc)})
		}
	} else {
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: step})
		op := ir.Add
		if isSub {
			op = ir.Sub
		}
		lw.emit(ir.Instr{Op: op, A: uint8(opCode)})
	}
	if needValue && !isPost {
		lw.emit(ir.Instr{Op: ir.TSet})
		lw.emit(ir.Instr{Op: ir.TGet})
	}
	lw.store(t)
	if needValue {
		lw.emit(ir.Instr{Op: ir.TGet})
		lw.emit(ir.Instr{Op: ir.TPop})
	}
}

func (lw *lowerer) lowerBinary(e *ast.Binary) {
	// Implementation-level constant folding (never of UB constants).
	if lw.ps.ConstFold {
		if v, ok := evalConst(e); ok && !v.isStr {
			lw.passBits |= PassConstFold
			if v.tc.IsFloat() {
				lw.emit(ir.Instr{Op: ir.ConstF, FImm: math.Float64frombits(v.word)})
			} else {
				lw.emit(ir.Instr{Op: ir.ConstI, Imm: int64(v.word)})
			}
			return
		}
	}
	switch e.Op {
	case ast.LogAnd, ast.LogOr:
		lw.lowerShortCircuit(e)
		return
	}

	xt, yt := e.X.Type(), e.Y.Type()

	// Pointer arithmetic.
	if e.Op == ast.Add && xt.IsPtr() && yt.IsInteger() {
		lw.ptrOffset(e.X, e.Y, xt.Elem.Size(), false)
		return
	}
	if e.Op == ast.Add && yt.IsPtr() && xt.IsInteger() {
		// Evaluate left to right: scale the integer first.
		lw.exprConv(e.X, types.LongType)
		if sz := yt.Elem.Size(); sz != 1 {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: sz})
			lw.emit(ir.Instr{Op: ir.Mul, A: uint8(ir.I64)})
		}
		lw.expr(e.Y)
		lw.emit(ir.Instr{Op: ir.Add, A: uint8(ir.U64)})
		return
	}
	if e.Op == ast.Sub && xt.IsPtr() && yt.IsInteger() {
		lw.ptrOffset(e.X, e.Y, xt.Elem.Size(), true)
		return
	}
	if e.Op == ast.Sub && xt.IsPtr() && yt.IsPtr() {
		// Pointer difference: UB across objects (CWE-469); the result
		// is whatever the addresses make it.
		lw.expr(e.X)
		lw.expr(e.Y)
		lw.emit(ir.Instr{Op: ir.Sub, A: uint8(ir.I64)})
		if sz := xt.Elem.Size(); sz != 1 {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: sz})
			lw.emit(ir.Instr{Op: ir.Div, A: uint8(ir.I64)})
		}
		return
	}

	// Comparisons (including the UB unrelated-pointer relations).
	if op, isCmp := binOpToIR(e.Op); isCmp {
		common := e.CommonType
		tc := ir.U64
		if common != nil && !common.IsPtr() {
			tc = typeCode(common)
		}
		if common != nil && common.IsPtr() {
			lw.expr(e.X)
			lw.expr(e.Y)
		} else {
			ct := common
			if ct == nil {
				ct = types.ULongType
			}
			lw.exprOperand(e.X, ct)
			lw.exprOperand(e.Y, ct)
		}
		lw.emit(ir.Instr{Op: op, A: uint8(tc)})
		return
	}

	// FMA contraction: a*b + c in double, fused into one rounding.
	if e.Op == ast.Add && lw.ps.ContractFMA && typeCode(e.CommonType) == ir.F64 {
		if mul, ok := e.X.(*ast.Binary); ok && mul.Op == ast.Mul && typeCode(mul.CommonType) == ir.F64 {
			if _, folded := lw.dec.fold[e.X]; !folded {
				lw.passBits |= PassContractFMA
				lw.exprOperand(mul.X, e.CommonType)
				lw.exprOperand(mul.Y, e.CommonType)
				lw.exprOperand(e.Y, e.CommonType)
				lw.emit(ir.Instr{Op: ir.FMulAdd, A: uint8(ir.F64)})
				return
			}
		}
	}

	common := e.CommonType
	tc := typeCode(common)
	op, _ := binOpToIR(e.Op)
	if tc.IsFloat() {
		switch e.Op {
		case ast.Add:
			op = ir.FAdd
		case ast.Sub:
			op = ir.FSub
		case ast.Mul:
			op = ir.FMul
		case ast.Div:
			op = ir.FDiv
		}
		lw.exprOperand(e.X, common)
		lw.exprOperand(e.Y, common)
		lw.emit(ir.Instr{Op: op, A: uint8(tc)})
		return
	}
	lw.exprOperand(e.X, common)
	if e.Op == ast.Shl || e.Op == ast.Shr {
		lw.exprConv(e.Y, types.LongType) // shift count
	} else {
		lw.exprOperand(e.Y, common)
	}
	lw.emit(ir.Instr{Op: op, A: uint8(tc)})
}

// exprOperand converts an operand to the operation's common type,
// applying the widening hook.
func (lw *lowerer) exprOperand(e ast.Expr, common *types.Type) {
	lw.exprConv(e, common)
}

// ptrOffset lowers ptr ± intExpr*size.
func (lw *lowerer) ptrOffset(p, idx ast.Expr, size int64, sub bool) {
	lw.expr(p)
	lw.exprConv(idx, types.LongType)
	if size != 1 {
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: size})
		lw.emit(ir.Instr{Op: ir.Mul, A: uint8(ir.I64)})
	}
	op := ir.Add
	if sub {
		op = ir.Sub
	}
	lw.emit(ir.Instr{Op: op, A: uint8(ir.U64)})
}

func (lw *lowerer) lowerShortCircuit(e *ast.Binary) {
	if e.Op == ast.LogAnd {
		lw.truthy(e.X)
		j1 := lw.emit(ir.Instr{Op: ir.Jz})
		lw.truthy(e.Y)
		j2 := lw.emit(ir.Instr{Op: ir.Jz})
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: 1})
		jend := lw.emit(ir.Instr{Op: ir.Jmp})
		lw.patch(j1)
		lw.patch(j2)
		lw.emit(ir.Instr{Op: ir.ConstI, Imm: 0})
		lw.patch(jend)
		return
	}
	lw.truthy(e.X)
	j1 := lw.emit(ir.Instr{Op: ir.Jnz})
	lw.truthy(e.Y)
	j2 := lw.emit(ir.Instr{Op: ir.Jnz})
	lw.emit(ir.Instr{Op: ir.ConstI, Imm: 0})
	jend := lw.emit(ir.Instr{Op: ir.Jmp})
	lw.patch(j1)
	lw.patch(j2)
	lw.emit(ir.Instr{Op: ir.ConstI, Imm: 1})
	lw.patch(jend)
}

func (lw *lowerer) lowerCond(e *ast.Cond) {
	lw.truthy(e.C)
	jz := lw.emit(ir.Instr{Op: ir.Jz})
	lw.exprConv(e.X, e.Type())
	jend := lw.emit(ir.Instr{Op: ir.Jmp})
	lw.patch(jz)
	lw.exprConv(e.Y, e.Type())
	lw.patch(jend)
}

// lowerAssign lowers plain and compound assignment.
func (lw *lowerer) lowerAssign(e *ast.Assign, needValue bool) {
	lhsT := lvalueType(e.LHS)

	if e.Op == ast.PlainAssign {
		if needValue {
			lw.exprConv(e.RHS, lhsT)
			lw.emit(ir.Instr{Op: ir.TSet})
			lw.addr(e.LHS)
			lw.emit(ir.Instr{Op: ir.TGet})
			lw.store(lhsT)
			lw.emit(ir.Instr{Op: ir.TGet})
			lw.emit(ir.Instr{Op: ir.TPop})
			return
		}
		lw.addr(e.LHS)
		lw.exprConv(e.RHS, lhsT)
		lw.store(lhsT)
		return
	}

	// Compound assignment: load, operate, store back.
	lw.addr(e.LHS)
	lw.emit(ir.Instr{Op: ir.Dup})
	lw.load(lhsT)

	if lhsT.IsPtr() && (e.Op == ast.Add || e.Op == ast.Sub) {
		lw.exprConv(e.RHS, types.LongType)
		if sz := lhsT.Elem.Size(); sz != 1 {
			lw.emit(ir.Instr{Op: ir.ConstI, Imm: sz})
			lw.emit(ir.Instr{Op: ir.Mul, A: uint8(ir.I64)})
		}
		op := ir.Add
		if e.Op == ast.Sub {
			op = ir.Sub
		}
		lw.emit(ir.Instr{Op: op, A: uint8(ir.U64)})
	} else {
		common := types.Common(lhsT, e.RHS.Type())
		tc := typeCode(common)
		lw.convCode(typeCode(lhsT), tc)
		if e.Op == ast.Shl || e.Op == ast.Shr {
			common = types.Promote(lhsT)
			tc = typeCode(common)
			// The loaded value was converted to Common above; correct
			// the conversion target for shifts (left-operand type).
		}
		op, _ := binOpToIR(e.Op)
		if tc.IsFloat() {
			switch e.Op {
			case ast.Add:
				op = ir.FAdd
			case ast.Sub:
				op = ir.FSub
			case ast.Mul:
				op = ir.FMul
			case ast.Div:
				op = ir.FDiv
			}
		}
		if e.Op == ast.Shl || e.Op == ast.Shr {
			lw.exprConv(e.RHS, types.LongType)
		} else {
			lw.exprConv(e.RHS, common)
		}
		lw.emit(ir.Instr{Op: op, A: uint8(tc)})
		// Convert the result back to the storage type.
		lw.convCode(tc, typeCode(lhsT))
	}

	if needValue {
		lw.emit(ir.Instr{Op: ir.TSet})
		lw.emit(ir.Instr{Op: ir.TGet})
		lw.store(lhsT)
		lw.emit(ir.Instr{Op: ir.TGet})
		lw.emit(ir.Instr{Op: ir.TPop})
		return
	}
	lw.store(lhsT)
}

// ---------------------------------------------------------------------------
// Calls

func (lw *lowerer) lowerCall(e *ast.Call) {
	sym := e.Fun.Sym
	if sym == nil {
		lw.emit(ir.Instr{Op: ir.Unreach})
		return
	}
	rtl := lw.ps.ArgsRightToLeft
	emitArgs := func(paramType func(i int) *types.Type) {
		idx := make([]int, len(e.Args))
		for i := range idx {
			idx[i] = i
		}
		if rtl {
			for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
		for _, i := range idx {
			a := e.Args[i]
			if pt := paramType(i); pt != nil {
				lw.exprConv(a, pt)
			} else {
				// Default argument promotions for varargs/extra args.
				at := a.Type()
				switch {
				case at.Kind == types.Float:
					lw.exprConv(a, types.DoubleType)
				case at.IsInteger():
					lw.exprConv(a, types.Promote(at))
				default:
					lw.expr(a)
				}
			}
		}
	}

	rtlFlag := uint8(0)
	if rtl {
		rtlFlag = 1
	}

	if sym.Kind == ast.SymBuiltin {
		sig := sema.Builtins[sym.Builtin]
		emitArgs(func(i int) *types.Type {
			if i < len(sig.Params) {
				return sig.Params[i]
			}
			return nil
		})
		lw.emit(ir.Instr{Op: ir.CallB, Imm: int64(sym.Builtin), A: uint8(len(e.Args)), B: rtlFlag})
		return
	}

	fn := sym.Func
	emitArgs(func(i int) *types.Type {
		if fn != nil && i < len(fn.Params) {
			return fn.Params[i].DeclType
		}
		return nil
	})
	lw.emit(ir.Instr{Op: ir.Call, Imm: int64(lw.funcIdx[fn.Name]), A: uint8(len(e.Args)), B: rtlFlag})
}
