package compiler

import (
	"fmt"

	"compdiff/internal/ir"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/sema"
)

// This file is the compile-stage half of the differential oracle:
// per-implementation diagnostics, the accept/reject policy split, and
// the recover boundary that turns a lowering panic into an ICE record
// instead of a dead fuzzing shard.
//
// Real compiler front ends disagree about much more than generated
// code: one rejects what the other accepts (gcc promotes constant
// division by zero to an error under optimization, clang warns and
// moves on), both reject with differently worded diagnostics, and
// either can die with an internal compiler error. Each divergence
// class is modelled here with deterministic, family-specific behaviour
// so the differential harness can treat compile-stage disagreement as
// a first-class finding.

// Result is the complete outcome of one guarded compilation.
type Result struct {
	// Prog is the lowered program; nil when the implementation
	// rejected the input or crashed.
	Prog *ir.Program
	// Diags are the rendered warnings and errors, in emission order.
	// They are produced deterministically from (program, family,
	// strictness), never from incidental compiler state.
	Diags []string
	// Err is non-nil when the implementation did not produce a
	// program, wrapped exactly like Compile's error.
	Err error
	// ICE is the raw panic text when compilation crashed. Err is also
	// set in that case; Diags keep whatever was emitted before the
	// crash.
	ICE string
	// PassBits is the fired-rewrite bitmap: which UB-exploiting
	// optimizer passes this implementation actually applied. On reject
	// and ICE paths it keeps whatever fired before the failure, the
	// same way Diags does.
	PassBits PassBits
}

// Accepted reports whether the implementation produced a program.
func (r Result) Accepted() bool { return r.Err == nil }

// CompileGuarded lowers a checked program under one implementation
// with a recover boundary: a panic anywhere in lowering becomes an
// ICE record in the Result instead of unwinding into the caller. This
// is the entry point differential suite construction uses — a crashed
// implementation is a finding, not a crashed fuzzer.
func CompileGuarded(info *sema.Info, cfg Config) Result {
	lw := newLowerer(info, cfg)
	var res Result
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Prog = nil
				res.ICE = fmt.Sprint(p)
				res.Err = fmt.Errorf("compile [%s]: internal compiler error: %v", cfg.Name(), p)
			}
		}()
		prog, err := lw.compile()
		if err != nil {
			res.Err = fmt.Errorf("compile [%s]: %w", cfg.Name(), err)
			return
		}
		res.Prog = prog
	}()
	res.Diags = append([]string(nil), lw.diags...)
	res.PassBits = lw.passBits
	return res
}

// diag records one rendered diagnostic. There is no real file name in
// a single-source pipeline, so the spelling uses <source>.
func (lw *lowerer) diag(sev string, line int, text string) {
	lw.diags = append(lw.diags, fmt.Sprintf("<source>:%d: %s: %s", line, sev, text))
}

// rejectf records an error diagnostic and returns it as the
// compilation error.
func (lw *lowerer) rejectf(line int, text string) error {
	lw.diag("error", line, text)
	return fmt.Errorf("<source>:%d: %s", line, text)
}

// ubKind classifies a constant expression whose value is undefined.
type ubKind int

const (
	ubDivZero ubKind = iota
	ubOverflow
	ubShiftNeg
	ubShiftWide
)

// constUBAt reports whether e is an integer binary operation with both
// operands compile-time constant whose result is undefined — exactly
// the expressions evalConst refuses to fold. Sites whose operands are
// not both constant are resolved at run time by the execution profile
// and are invisible to the front end.
func constUBAt(e *ast.Binary) (ubKind, bool) {
	switch e.Op {
	case ast.Add, ast.Sub, ast.Mul, ast.Div, ast.Mod, ast.Shl, ast.Shr:
	default:
		return 0, false
	}
	if e.CommonType == nil {
		return 0, false
	}
	tc := typeCode(e.CommonType)
	if tc.IsFloat() {
		return 0, false
	}
	x, ok := evalConst(e.X)
	if !ok || x.isStr {
		return 0, false
	}
	y, ok := evalConst(e.Y)
	if !ok || y.isStr {
		return 0, false
	}
	op, _ := binOpToIR(e.Op)
	xv := ir.ConvWord(x.tc, tc, x.word)
	yv := yWord(e, y, tc)
	if _, defined := ir.IntBinOK(op, tc, xv, yv); defined {
		return 0, false
	}
	switch e.Op {
	case ast.Div, ast.Mod:
		if yv == 0 {
			return ubDivZero, true
		}
		return ubOverflow, true // INT_MIN / -1
	case ast.Shl, ast.Shr:
		if int64(yv) < 0 {
			return ubShiftNeg, true
		}
		return ubShiftWide, true
	default:
		return ubOverflow, true
	}
}

// ubWarnText is the family's warning wording for a constant-UB site.
func ubWarnText(f Family, op ast.BinOp, kind ubKind) string {
	gcc := f == GCC
	switch kind {
	case ubDivZero:
		if gcc {
			return "division by zero [-Wdiv-by-zero]"
		}
		if op == ast.Mod {
			return "remainder by zero is undefined [-Wdivision-by-zero]"
		}
		return "division by zero is undefined [-Wdivision-by-zero]"
	case ubOverflow:
		if gcc {
			return "integer overflow in expression [-Woverflow]"
		}
		return "overflow in expression; result is undefined [-Winteger-overflow]"
	case ubShiftNeg:
		if gcc {
			return shiftDir(op) + " shift count is negative [-Wshift-count-negative]"
		}
		return "shift count is negative [-Wshift-count-negative]"
	default: // ubShiftWide
		if gcc {
			return shiftDir(op) + " shift count >= width of type [-Wshift-count-overflow]"
		}
		return "shift count >= width of type [-Wshift-count-overflow]"
	}
}

func shiftDir(op ast.BinOp) string {
	if op == ast.Shl {
		return "left"
	}
	return "right"
}

// scanConstUB walks every function body for constant-UB sites and
// emits the family's diagnostics. Implementations with StrictConstUB
// (the gcc personality under optimization, where the folder meets the
// undefined value and refuses) reject constant division/remainder by
// zero outright; everyone else warns and leaves the operation for the
// execution profile. The scan is purely syntactic — it ignores
// optimizer reachability, like the real front-end warnings do — so the
// diagnostic set depends only on (program, family, strictness).
func (lw *lowerer) scanConstUB() error {
	var firstErr error
	for _, f := range lw.info.Prog.Funcs {
		ast.WalkExprs(f.Body, func(e ast.Expr) {
			bin, ok := e.(*ast.Binary)
			if !ok {
				return
			}
			kind, ok := constUBAt(bin)
			if !ok {
				return
			}
			line := bin.Pos().Line
			if kind == ubDivZero && lw.ps.StrictConstUB {
				text := "division by zero [-Werror=div-by-zero]"
				if bin.Op == ast.Mod {
					text = "remainder by zero [-Werror=div-by-zero]"
				}
				err := lw.rejectf(line, text)
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			lw.diag("warning", line, ubWarnText(lw.cfg.Family, bin.Op, kind))
		})
	}
	return firstErr
}

// initNotConstText is the family wording for a non-constant global or
// static initializer — both families reject, with different words,
// which is the diagnostics-differential class in miniature.
func initNotConstText(f Family) string {
	if f == GCC {
		return "initializer element is not constant"
	}
	return "initializer element is not a compile-time constant"
}

// iceDepth builds the panic payload for the simplifier recursion
// ceiling. The text deliberately carries the noise a real ICE does —
// an internal source location, a depth counter, a frame address — but
// derives all of it deterministically from the configuration and the
// program point, so the same (program, config) pair always crashes
// with byte-identical text and the *normalized* fingerprint is stable
// across the family's optimization levels.
func (lw *lowerer) iceDepth(e ast.Expr) string {
	line := int(lw.line)
	if p := e.Pos(); p.Line > 0 {
		line = p.Line
	}
	depth := lw.depth
	addr := lw.cfg.personality() ^ uint64(depth)<<12
	if lw.cfg.Family == GCC {
		return fmt.Sprintf(
			"internal compiler error: in simplify_expr, at expr.cc:%d: expression nesting depth %d exceeds %d at <source>:%d (frame 0x%x)",
			4100+depth, depth, lw.ps.ExprDepthLimit, line, addr)
	}
	return fmt.Sprintf(
		"fatal error: error in backend: simplifier recursion limit %d reached at depth %d lowering <source>:%d (address 0x%x); please submit a bug report",
		lw.ps.ExprDepthLimit, depth, line, addr)
}
