package compiler

import (
	"testing"
)

// guarded compiles src under cfg through the recover boundary and
// returns the full Result (pass bitmap included).
func guarded(t *testing.T, src string, cfg Config) Result {
	t.Helper()
	return CompileGuarded(checked(t, src), cfg)
}

func TestPassBitsFoldOverflow(t *testing.T) {
	src := `
int main() {
  int v = 2147483600;
  if (((v + 99)) < v) { return 1; }
  return 0;
}`
	// Clang folds overflow guards at O2+; O0 applies no passes.
	hot := guarded(t, src, Config{Family: Clang, Opt: O2})
	if hot.PassBits&PassFoldOverflow == 0 {
		t.Fatalf("clang -O2 PassBits = %v, want fold-overflow-check", hot.PassBits)
	}
	cold := guarded(t, src, Config{Family: Clang, Opt: O0})
	if cold.PassBits != 0 {
		t.Fatalf("clang -O0 PassBits = %v, want none", cold.PassBits)
	}
}

func TestPassBitsFoldNull(t *testing.T) {
	src := `
int main() {
  int v = 7;
  int* p = &v;
  int d = *p;
  if ((p == 0)) { d = 0; }
  return d;
}`
	hot := guarded(t, src, Config{Family: Clang, Opt: O2})
	if hot.PassBits&PassFoldNull == 0 {
		t.Fatalf("clang -O2 PassBits = %v, want fold-null-check", hot.PassBits)
	}
}

func TestPassBitsDeadLoad(t *testing.T) {
	src := `
int main() {
  int v = 7;
  int* p = &v;
  *p;
  return 0;
}`
	hot := guarded(t, src, Config{Family: GCC, Opt: O2})
	if hot.PassBits&PassDeadLoad == 0 {
		t.Fatalf("gcc -O2 PassBits = %v, want dead-load-elim", hot.PassBits)
	}
	cold := guarded(t, src, Config{Family: GCC, Opt: O0})
	if cold.PassBits&PassDeadLoad != 0 {
		t.Fatalf("gcc -O0 PassBits = %v, want no dead-load-elim", cold.PassBits)
	}
}

func TestPassBitsConstFoldAndWiden(t *testing.T) {
	src := `
int main() {
  int a = 100000;
  long r = (long)(a * a);
  int c = (3 + 4);
  return (int)(r & 63) + c;
}`
	// Clang widens int multiplies into long at O1+, and const-folds.
	hot := guarded(t, src, Config{Family: Clang, Opt: O1})
	if hot.PassBits&PassWidenMul == 0 {
		t.Fatalf("clang -O1 PassBits = %v, want widen-mul-to-long", hot.PassBits)
	}
	if hot.PassBits&PassConstFold == 0 {
		t.Fatalf("clang -O1 PassBits = %v, want const-fold", hot.PassBits)
	}
}

func TestPassBitsFMA(t *testing.T) {
	src := `
int main() {
  double a = 1.5;
  double b = 2.5;
  double c = 3.5;
  double r = a * b + c;
  return (int)r;
}`
	// ContractFMA is gcc at O2+, clang at O3+.
	hot := guarded(t, src, Config{Family: GCC, Opt: O2})
	if hot.PassBits&PassContractFMA == 0 {
		t.Fatalf("gcc -O2 PassBits = %v, want contract-fma", hot.PassBits)
	}
}

func TestPassBitsSurviveICE(t *testing.T) {
	// Deep nesting blows the simplifier ceiling at O2+; bits fired
	// before the crash must survive on the Result, like Diags do.
	expr := "v"
	for i := 0; i < 60; i++ {
		expr = "(" + expr + " + 1)"
	}
	src := "int main() { int v = (3 + 4); int x = " + expr + "; return x & 1; }"
	res := guarded(t, src, Config{Family: Clang, Opt: O2})
	if res.ICE == "" {
		t.Fatal("expected an ICE from the depth ceiling")
	}
	if res.PassBits&PassConstFold == 0 {
		t.Fatalf("PassBits = %v after ICE, want const-fold from the earlier decl", res.PassBits)
	}
}

func TestPassBitsNamesAndString(t *testing.T) {
	b := PassFoldOverflow | PassConstFold
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "fold-overflow-check" || names[1] != "const-fold" {
		t.Fatalf("Names = %v", names)
	}
	if PassBits(0).String() != "none" {
		t.Fatalf("zero String = %q", PassBits(0).String())
	}
	for i := 0; i < NumPassKinds; i++ {
		if PassName(i) == "" {
			t.Fatalf("pass bit %d has no name", i)
		}
	}
}
