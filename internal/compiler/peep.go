package compiler

import "compdiff/internal/ir"

// Compile-time constant folds over the lowered bytecode. These are
// the static half of the superinstruction work: the fast loop fuses
// hot fallthrough pairs at dispatch time, and this pass removes the
// pairs whose fusion needs no runtime information at all, so every
// implementation's binary executes fewer steps to produce the same
// observable output. Two shapes, both chosen from the corpus
// opcode-pair histogram (`report -opcode-pairs`):
//
//	ConstI; Conv                  -> ConstI with the converted imm
//	(Frame|Global|Str)Addr; ConstI; Add(u64) -> Addr with summed imm
//
// plus the superinstruction rewrites, which fuse the top remaining
// pairs into the dedicated opcodes both interpreter loops implement:
//
//	FrameAddr; Load               -> LdLoc
//	ConstI; Cmp* (integer)        -> CmpImm
//	ConstI; Add|Sub|Mul|BitAnd|BitOr|BitXor -> AluImm
//
// Both are output-invariant: Conv of a constant is ir.ConvWord at
// compile time, and a u64 add onto an address base commutes into the
// base's displacement (unsigned, so no sanitizer report can be
// elided). Only Result.Steps shrinks, and step counts never enter
// divergence signatures (Result.EncodeTo hashes exit+output only).
// The pass runs for every configuration, so it cannot introduce a
// cross-implementation divergence either.

// peepholeFold rewrites one function's code to a fixpoint of the
// folds above, remapping branch targets around removed instructions.
func peepholeFold(code []ir.Instr) []ir.Instr {
	for {
		next, changed := foldOnce(code)
		code = next
		if !changed {
			return code
		}
	}
}

func foldOnce(code []ir.Instr) ([]ir.Instr, bool) {
	n := len(code)
	// A fold window may only swallow instructions no branch lands on;
	// jumping into the middle of a fused pair would change behaviour.
	isTarget := make([]bool, n+1)
	for i := range code {
		switch code[i].Op {
		case ir.Jmp, ir.Jz, ir.Jnz:
			if t := code[i].Imm; t >= 0 && t <= int64(n) {
				isTarget[t] = true
			}
		}
	}
	out := make([]ir.Instr, 0, n)
	newIdx := make([]int, n+1)
	changed := false
	i := 0
	for i < n {
		newIdx[i] = len(out)
		in := code[i]
		if in.Op == ir.ConstI && i+1 < n && code[i+1].Op == ir.Conv && !isTarget[i+1] {
			cv := &code[i+1]
			in.Imm = int64(ir.ConvWord(ir.TypeCode(cv.A), ir.TypeCode(cv.B), uint64(in.Imm)))
			newIdx[i+1] = len(out)
			out = append(out, in)
			i += 2
			changed = true
			continue
		}
		if (in.Op == ir.FrameAddr || in.Op == ir.GlobalAddr || in.Op == ir.StrAddr) &&
			i+2 < n && code[i+1].Op == ir.ConstI && code[i+2].Op == ir.Add &&
			ir.TypeCode(code[i+2].A) == ir.U64 && !isTarget[i+1] && !isTarget[i+2] {
			in.Imm += code[i+1].Imm
			newIdx[i+1] = len(out)
			newIdx[i+2] = len(out)
			out = append(out, in)
			i += 3
			changed = true
			continue
		}
		if in.Op == ir.FrameAddr && i+1 < n && code[i+1].Op == ir.Load && !isTarget[i+1] {
			ld := &code[i+1]
			out = append(out, ir.Instr{Op: ir.LdLoc, A: ld.A, B: ld.B, Imm: in.Imm, Line: ld.Line})
			newIdx[i+1] = len(out) - 1
			i += 2
			changed = true
			continue
		}
		if in.Op == ir.ConstI && i+1 < n && !isTarget[i+1] {
			switch nx := &code[i+1]; nx.Op {
			case ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
				if !ir.TypeCode(nx.A).IsFloat() {
					out = append(out, ir.Instr{Op: ir.CmpImm, A: nx.A, B: uint8(nx.Op - ir.CmpEq), Imm: in.Imm, Line: nx.Line})
					newIdx[i+1] = len(out) - 1
					i += 2
					changed = true
					continue
				}
			case ir.Add, ir.Sub, ir.Mul, ir.BitAnd, ir.BitOr, ir.BitXor:
				out = append(out, ir.Instr{Op: ir.AluImm, A: nx.A, B: uint8(nx.Op - ir.Add), Imm: in.Imm, Line: nx.Line})
				newIdx[i+1] = len(out) - 1
				i += 2
				changed = true
				continue
			}
		}
		out = append(out, in)
		i++
	}
	newIdx[n] = len(out)
	if !changed {
		return code, false
	}
	for j := range out {
		switch out[j].Op {
		case ir.Jmp, ir.Jz, ir.Jnz:
			out[j].Imm = int64(newIdx[out[j].Imm])
		}
	}
	return out, true
}
