package compiler

import (
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/types"
)

// decisions records the UB-exploiting transformations an
// implementation decided to apply to one function. The shared AST is
// never mutated — the same program object is compiled under many
// configurations concurrently — so lowering consults these side
// tables instead.
type decisions struct {
	// fold maps an expression to the constant (0 or 1) that replaces
	// it: eliminated overflow checks and null checks. Every fold here
	// is sound under the standard's "UB never happens" licence.
	fold map[ast.Expr]uint64
	// dead marks statements the optimizer drops (dead loads).
	dead map[ast.Stmt]bool
	// fired is the pass-coverage bitmap for this function: which
	// rewrite kinds the side tables above record. The lowerer unions it
	// (plus the lowering-time passes) into the per-compilation bitmap.
	fired PassBits
}

// analyzeFunc runs the flow-sensitive UB-exploitation analysis over a
// function for the given pass set.
func analyzeFunc(ps passSet, fn *ast.FuncDecl) *decisions {
	dec := &decisions{fold: map[ast.Expr]uint64{}, dead: map[ast.Stmt]bool{}}
	if !ps.FoldOverflowChecks && !ps.FoldNullChecks && !ps.DeadLoadElim {
		return dec
	}
	a := &analyzer{ps: ps, dec: dec}
	a.stmts(fn.Body.Stmts, newFacts())
	return dec
}

// facts is the per-program-point dataflow state: which symbols are
// known non-negative (established by earlier guards) and which
// pointers have already been dereferenced on every path here.
type facts struct {
	nonneg  map[*ast.Symbol]bool
	derefed map[*ast.Symbol]bool
}

func newFacts() *facts {
	return &facts{nonneg: map[*ast.Symbol]bool{}, derefed: map[*ast.Symbol]bool{}}
}

func (f *facts) clone() *facts {
	c := newFacts()
	for k := range f.nonneg {
		c.nonneg[k] = true
	}
	for k := range f.derefed {
		c.derefed[k] = true
	}
	return c
}

func (f *facts) kill(sym *ast.Symbol) {
	delete(f.nonneg, sym)
	delete(f.derefed, sym)
}

type analyzer struct {
	ps  passSet
	dec *decisions
}

// stmts processes a statement list, threading facts forward.
func (a *analyzer) stmts(list []ast.Stmt, f *facts) {
	for _, s := range list {
		a.stmt(s, f)
	}
}

func (a *analyzer) stmt(s ast.Stmt, f *facts) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		a.stmts(s.Stmts, f)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				a.applyFolds(d.Init, f)
				a.recordDerefs(d.Init, f)
			}
			if d.Sym != nil {
				f.kill(d.Sym)
			}
		}
	case *ast.ExprStmt:
		a.applyFolds(s.X, f)
		if a.ps.DeadLoadElim && pureExpr(s.X) {
			a.dec.dead[s] = true
			a.dec.fired |= PassDeadLoad
			return // the optimizer never executes it: no facts from it
		}
		a.recordDerefs(s.X, f)
		killAssigned(s.X, f)
	case *ast.ReturnStmt:
		if s.Value != nil {
			a.applyFolds(s.Value, f)
			a.recordDerefs(s.Value, f)
		}
	case *ast.IfStmt:
		a.applyFolds(s.Cond, f)
		a.recordDerefs(s.Cond, f)
		tf := f.clone()
		a.stmt(s.Then, tf)
		if s.Else != nil {
			ef := f.clone()
			a.stmt(s.Else, ef)
		}
		// Anything either branch may write is unknown afterwards.
		killAssignedInStmt(s.Then, f)
		if s.Else != nil {
			killAssignedInStmt(s.Else, f)
		}
		// A guard of the form `if (... || x < 0 || ...) return;`
		// establishes x >= 0 afterwards (the branch not taken means
		// every disjunct was false).
		if s.Else == nil && terminates(s.Then) {
			for _, sym := range nonnegGuards(s.Cond) {
				if !assignedIn(s.Then, sym) {
					f.nonneg[sym] = true
				}
			}
		}
	case *ast.WhileStmt:
		a.applyFolds(s.Cond, f)
		bf := f.clone()
		killAssignedInStmt(s.Body, bf)
		a.stmt(s.Body, bf)
		killAssignedInStmt(s.Body, f)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, f)
		}
		if s.Cond != nil {
			a.applyFolds(s.Cond, f)
		}
		bf := f.clone()
		killAssignedInStmt(s.Body, bf)
		if s.Post != nil {
			killAssigned(s.Post, bf)
		}
		a.stmt(s.Body, bf)
		if s.Post != nil {
			a.applyFolds(s.Post, bf)
		}
		killAssignedInStmt(s.Body, f)
		if s.Post != nil {
			killAssigned(s.Post, f)
		}
	}
}

// applyFolds walks the expression tree and records every fold the pass
// set licenses under the current facts.
func (a *analyzer) applyFolds(e ast.Expr, f *facts) {
	walk(e, func(x ast.Expr) {
		if a.ps.FoldOverflowChecks {
			if v, ok := matchOverflowCheck(x, f); ok {
				a.dec.fold[x] = v
				a.dec.fired |= PassFoldOverflow
			}
		}
		if a.ps.FoldNullChecks {
			if sym, eqZero, ok := matchNullCheck(x); ok && f.derefed[sym] {
				if eqZero {
					a.dec.fold[x] = 0 // p was dereferenced: p == 0 is "never" true
				} else {
					a.dec.fold[x] = 1
				}
				a.dec.fired |= PassFoldNull
			}
		}
	})
}

// recordDerefs adds pointers unconditionally dereferenced by e.
func (a *analyzer) recordDerefs(e ast.Expr, f *facts) {
	for _, sym := range derefSyms(e) {
		f.derefed[sym] = true
	}
}

func walk(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *ast.Unary:
		walk(e.X, fn)
	case *ast.Binary:
		walk(e.X, fn)
		walk(e.Y, fn)
	case *ast.Assign:
		walk(e.LHS, fn)
		walk(e.RHS, fn)
	case *ast.Cond:
		walk(e.C, fn)
		walk(e.X, fn)
		walk(e.Y, fn)
	case *ast.Call:
		for _, x := range e.Args {
			walk(x, fn)
		}
	case *ast.Index:
		walk(e.X, fn)
		walk(e.Idx, fn)
	case *ast.Member:
		walk(e.X, fn)
	case *ast.CastExpr:
		walk(e.X, fn)
	}
}

// matchOverflowCheck recognizes the signed-overflow guard idioms the
// paper's Listing 1 exemplifies. With b known non-negative and signed
// overflow assumed impossible:
//
//	a + b <  a  -> 0        a + b >= a  -> 1
//	a >  a + b  -> 0        a <= a + b  -> 1
//
// (and symmetrically with the roles of a and b swapped).
func matchOverflowCheck(e ast.Expr, f *facts) (uint64, bool) {
	bin, ok := e.(*ast.Binary)
	if !ok || bin.CommonType == nil || !bin.CommonType.IsSigned() || !bin.CommonType.IsInteger() {
		return 0, false
	}
	var sum *ast.Binary
	var other ast.Expr
	var val uint64
	switch bin.Op {
	case ast.Lt, ast.Ge: // sum on the left
		s, ok := bin.X.(*ast.Binary)
		if !ok || s.Op != ast.Add {
			return 0, false
		}
		sum, other = s, bin.Y
		if bin.Op == ast.Lt {
			val = 0
		} else {
			val = 1
		}
	case ast.Gt, ast.Le: // sum on the right
		s, ok := bin.Y.(*ast.Binary)
		if !ok || s.Op != ast.Add {
			return 0, false
		}
		sum, other = s, bin.X
		if bin.Op == ast.Gt {
			val = 0
		} else {
			val = 1
		}
	default:
		return 0, false
	}
	if sum.CommonType == nil || !sum.CommonType.IsSigned() {
		return 0, false
	}
	if !pureExpr(sum.X) || !pureExpr(sum.Y) || !pureExpr(other) {
		return 0, false
	}
	// other must equal one addend; the remaining addend must be known
	// non-negative.
	var addend ast.Expr
	switch {
	case exprEqual(other, sum.X):
		addend = sum.Y
	case exprEqual(other, sum.Y):
		addend = sum.X
	default:
		return 0, false
	}
	if !knownNonneg(addend, f) {
		return 0, false
	}
	return val, true
}

func knownNonneg(e ast.Expr, f *facts) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value >= 0
	case *ast.Ident:
		return e.Sym != nil && f.nonneg[e.Sym]
	}
	return false
}

// matchNullCheck recognizes `p == 0`, `0 == p`, `p != 0`, `!p` over a
// plain pointer variable.
func matchNullCheck(e ast.Expr) (*ast.Symbol, bool, bool) {
	switch e := e.(type) {
	case *ast.Binary:
		if e.Op != ast.Eq && e.Op != ast.Ne {
			return nil, false, false
		}
		var id *ast.Ident
		if i, ok := e.X.(*ast.Ident); ok && isZeroLit(e.Y) {
			id = i
		} else if i, ok := e.Y.(*ast.Ident); ok && isZeroLit(e.X) {
			id = i
		}
		if id == nil || id.Sym == nil || id.Sym.Type == nil || !id.Sym.Type.IsPtr() {
			return nil, false, false
		}
		return id.Sym, e.Op == ast.Eq, true
	case *ast.Unary:
		if e.Op != ast.LogicalNot {
			return nil, false, false
		}
		id, ok := e.X.(*ast.Ident)
		if !ok || id.Sym == nil || id.Sym.Type == nil || !id.Sym.Type.IsPtr() {
			return nil, false, false
		}
		return id.Sym, true, true
	}
	return nil, false, false
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value == 0
}

// derefSyms collects pointer variables unconditionally dereferenced by
// e: *p, p[i], p->f. Short-circuit right-hand sides and conditional
// arms are skipped — they may not execute.
func derefSyms(e ast.Expr) []*ast.Symbol {
	var out []*ast.Symbol
	var visit func(ast.Expr)
	add := func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok && id.Sym != nil && id.Sym.Type != nil && id.Sym.Type.IsPtr() {
			out = append(out, id.Sym)
		}
	}
	visit = func(x ast.Expr) {
		switch x := x.(type) {
		case *ast.Unary:
			if x.Op == ast.Deref {
				add(x.X)
			}
			visit(x.X)
		case *ast.Index:
			add(x.X)
			visit(x.X)
			visit(x.Idx)
		case *ast.Member:
			if x.Arrow {
				add(x.X)
			}
			visit(x.X)
		case *ast.Binary:
			visit(x.X)
			if x.Op != ast.LogAnd && x.Op != ast.LogOr {
				visit(x.Y)
			}
		case *ast.Assign:
			visit(x.LHS)
			visit(x.RHS)
		case *ast.Call:
			for _, a := range x.Args {
				visit(a)
			}
		case *ast.Cond:
			visit(x.C)
		case *ast.CastExpr:
			visit(x.X)
		}
	}
	visit(e)
	return out
}

// pureExpr reports whether evaluating e has no side effects (no calls,
// assignments, or increments). Loads are considered pure; the dead
// load they perform is exactly what DeadLoadElim removes.
func pureExpr(e ast.Expr) bool {
	pure := true
	walk(e, func(x ast.Expr) {
		switch x := x.(type) {
		case *ast.Call, *ast.Assign:
			pure = false
		case *ast.Unary:
			switch x.Op {
			case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
				pure = false
			}
		}
	})
	return pure
}

// exprEqual is syntactic expression equality over resolved ASTs.
func exprEqual(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Sym != nil && a.Sym == b.Sym
	case *ast.IntLit:
		b, ok := b.(*ast.IntLit)
		return ok && a.Value == b.Value
	case *ast.Unary:
		b, ok := b.(*ast.Unary)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X)
	case *ast.Binary:
		b, ok := b.(*ast.Binary)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X) && exprEqual(a.Y, b.Y)
	case *ast.Member:
		b, ok := b.(*ast.Member)
		return ok && a.Name == b.Name && a.Arrow == b.Arrow && exprEqual(a.X, b.X)
	case *ast.Index:
		b, ok := b.(*ast.Index)
		return ok && exprEqual(a.X, b.X) && exprEqual(a.Idx, b.Idx)
	case *ast.CastExpr:
		b, ok := b.(*ast.CastExpr)
		return ok && types.Equal(a.To, b.To) && exprEqual(a.X, b.X)
	}
	return false
}

// nonnegGuards extracts symbols x for which a false guard condition
// implies x >= 0: the disjuncts of the form `x < 0` (or `x < 0 || ...`).
func nonnegGuards(cond ast.Expr) []*ast.Symbol {
	var out []*ast.Symbol
	var split func(ast.Expr)
	split = func(e ast.Expr) {
		if bin, ok := e.(*ast.Binary); ok {
			if bin.Op == ast.LogOr {
				split(bin.X)
				split(bin.Y)
				return
			}
			if bin.Op == ast.Lt && isZeroLit(bin.Y) {
				if id, ok := bin.X.(*ast.Ident); ok && id.Sym != nil &&
					id.Sym.Type != nil && id.Sym.Type.IsSigned() {
					out = append(out, id.Sym)
				}
			}
			if bin.Op == ast.Gt && isZeroLit(bin.X) {
				if id, ok := bin.Y.(*ast.Ident); ok && id.Sym != nil &&
					id.Sym.Type != nil && id.Sym.Type.IsSigned() {
					out = append(out, id.Sym)
				}
			}
		}
	}
	split(cond)
	return out
}

// terminates reports whether control cannot flow past s.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BreakStmt, *ast.ContinueStmt:
		return true
	case *ast.BlockStmt:
		if len(s.Stmts) == 0 {
			return false
		}
		return terminates(s.Stmts[len(s.Stmts)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Then) && terminates(s.Else)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.Call); ok {
			return call.Fun.Name == "exit"
		}
	}
	return false
}

// killAssigned removes facts about every symbol e may write (assigned,
// incremented, or address-taken).
func killAssigned(e ast.Expr, f *facts) {
	for _, sym := range assignedSyms(e) {
		f.kill(sym)
	}
}

func killAssignedInStmt(s ast.Stmt, f *facts) {
	forEachExpr(s, func(e ast.Expr) { killAssigned(e, f) })
	ast.Walk(s, func(st ast.Stmt) bool {
		if ds, ok := st.(*ast.DeclStmt); ok {
			for _, d := range ds.Decls {
				if d.Sym != nil {
					f.kill(d.Sym)
				}
			}
		}
		return true
	})
}

func forEachExpr(s ast.Stmt, fn func(ast.Expr)) {
	ast.WalkExprs(s, fn)
}

func assignedIn(s ast.Stmt, sym *ast.Symbol) bool {
	found := false
	forEachExpr(s, func(e ast.Expr) {
		for _, w := range assignedSyms(e) {
			if w == sym {
				found = true
			}
		}
	})
	return found
}

// assignedSyms lists symbols e writes or exposes to writes.
func assignedSyms(e ast.Expr) []*ast.Symbol {
	var out []*ast.Symbol
	walk(e, func(x ast.Expr) {
		switch x := x.(type) {
		case *ast.Assign:
			if id, ok := x.LHS.(*ast.Ident); ok && id.Sym != nil {
				out = append(out, id.Sym)
			}
		case *ast.Unary:
			switch x.Op {
			case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec, ast.AddrOf:
				if id, ok := x.X.(*ast.Ident); ok && id.Sym != nil {
					out = append(out, id.Sym)
				}
			}
		}
	})
	return out
}
