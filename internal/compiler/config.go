// Package compiler lowers type-checked MiniC programs to IR bytecode.
//
// A Config identifies one *compiler implementation* in the paper's
// sense: a compiler family (gcc-like or clang-like) at an optimization
// level. Each implementation makes different — individually legal —
// choices wherever the C standard leaves behaviour undefined or
// unspecified: argument evaluation order, arithmetic evaluation width,
// UB-assuming simplifications, frame layout, allocator personality,
// trap policies. Programs without undefined behaviour compile to
// semantically identical binaries under every Config (a property the
// test suite checks); programs with UB may not, which is exactly the
// signal CompDiff detects.
package compiler

import (
	"fmt"

	"compdiff/internal/hash"
	"compdiff/internal/ir"
)

// Family is a compiler family.
type Family int

const (
	GCC Family = iota
	Clang
)

// String returns the family name.
func (f Family) String() string {
	if f == GCC {
		return "gcc"
	}
	return "clang"
}

// OptLevel is an optimization level.
type OptLevel int

const (
	O0 OptLevel = iota
	O1
	O2
	O3
	Os
)

// String returns the level spelling.
func (o OptLevel) String() string {
	switch o {
	case O0:
		return "-O0"
	case O1:
		return "-O1"
	case O2:
		return "-O2"
	case O3:
		return "-O3"
	default:
		return "-Os"
	}
}

// atLeast reports whether the level applies optimizations of lvl.
// Os optimizes roughly like O2.
func (o OptLevel) atLeast(lvl OptLevel) bool {
	eff := o
	if o == Os {
		eff = O2
	}
	l := lvl
	if lvl == Os {
		l = O2
	}
	return eff >= l
}

// Config selects a compiler implementation.
type Config struct {
	Family Family
	Opt    OptLevel

	// Instrument adds edge-coverage instrumentation (the fuzzer's
	// B_fuzz binary).
	Instrument bool

	// Sanitizer layout support: ASan inserts redzones between stack
	// slots so the VM's ASan mode can poison them.
	ASan bool

	// Sanitize disables the UB-exploiting transformations, the way
	// -fsanitize builds insert their checks before the optimizer can
	// assume UB away. Without this a -O1 sanitizer binary would lose
	// the very operations (dead loads, folded checks) it must check.
	Sanitize bool
}

// Name returns the implementation name, e.g. "gcc -O2".
func (c Config) Name() string {
	n := fmt.Sprintf("%s %s", c.Family, c.Opt)
	if c.ASan {
		n += " +asan"
	}
	if c.Instrument {
		n += " +cov"
	}
	return n
}

// DefaultSet returns the paper's ten compiler implementations:
// {gcc, clang} x {O0, O1, O2, O3, Os}.
func DefaultSet() []Config {
	var out []Config
	for _, f := range []Family{GCC, Clang} {
		for _, o := range []OptLevel{O0, O1, O2, O3, Os} {
			out = append(out, Config{Family: f, Opt: o})
		}
	}
	return out
}

// personality derives the deterministic seed that parameterizes the
// implementation's incidental choices (memory fill, poison values).
func (c Config) personality() uint64 {
	return hash.Sum64([]byte(c.Name()), 0x9e3779b9)
}

// profile builds the execution personality baked into binaries this
// implementation produces. Every field is a legal implementation
// choice; they only become observable when the program executes UB.
func (c Config) profile() ir.Profile {
	p := ir.Profile{Key: c.personality()}

	// Stack growth direction: one family allocates frames downward
	// (x86-like), the other upward. Visible only through unrelated
	// pointer comparisons and out-of-bounds stack accesses.
	p.StackDown = c.Family == GCC

	// Allocator personality.
	if c.Family == GCC {
		p.HeapHeader = 16
	} else {
		p.HeapHeader = 8
	}
	// Freed-chunk reuse: eager reuse at lower optimization (dbg-ish
	// allocators), delayed at higher levels. Affects only UAF bugs.
	p.HeapReuse = !c.Opt.atLeast(O2)

	// Heap integrity checks (double free / invalid free): abort like
	// glibc at low opt, silently corrupt at high opt.
	p.FreeErrAbort = !c.Opt.atLeast(O2)

	// Division by zero: executed at O0/O1 (hardware trap); folded or
	// hoisted into poison at O2+ where the optimizer assumed it away.
	p.DivZeroTrap = !c.Opt.atLeast(O2)
	p.MinIntDivTrap = c.Family == GCC // x86 idiom traps; other lowering wraps

	// Out-of-range shift counts: mask by width (x86 semantics) vs fold
	// to zero (as if constant-propagated under the no-UB assumption).
	p.ShiftMask = !(c.Family == Clang && c.Opt.atLeast(O2))

	// Overlapping memcpy (UB, CWE-475): copy direction differs.
	p.MemcpyBackward = c.Family == GCC && c.Opt.atLeast(O1)

	// pow -> exp2 libcall substitution (FP imprecision category).
	p.PowViaExp2 = c.Family == Clang && c.Opt.atLeast(O3)

	return p
}

// passSet describes which UB-exploiting transformations this
// implementation applies. The assignments mirror the real-world
// pattern the paper reports: aggressive levels of *different* families
// diverge the most, adjacent levels of the same family the least.
type passSet struct {
	// FoldOverflowChecks removes `a + b < a`-style signed overflow
	// guards (paper Listing 1).
	FoldOverflowChecks bool
	// FoldNullChecks removes null checks dominated by a dereference of
	// the same pointer.
	FoldNullChecks bool
	// WidenMulToLong evaluates int*int feeding a long context in
	// 64-bit arithmetic (paper's IntError example, clang-O1).
	WidenMulToLong bool
	// DeadLoadElim drops expression statements without side effects
	// (makes a dead *p skip the crash the O0 binary has).
	DeadLoadElim bool
	// ContractFMA fuses a*b+c into one rounding step.
	ContractFMA bool
	// ConstFold folds constant expressions and prunes dead branches.
	ConstFold bool
	// LineIsStmtStart: __LINE__ yields the line of the enclosing
	// statement rather than the token's own line (both permissible;
	// implementation-defined divergence, paper's LINE category).
	LineIsStmtStart bool
	// ArgsRightToLeft: call arguments are evaluated right to left
	// (gcc's typical order; clang evaluates left to right).
	ArgsRightToLeft bool
	// StrictConstUB rejects constant division/remainder by zero with an
	// error instead of a warning: once the folder runs (O1+) the gcc
	// personality refuses expressions it cannot give a value, while
	// clang warns and leaves the operation for run time. This is the
	// accept/reject-divergence axis of the compile-stage oracle.
	StrictConstUB bool
	// ExprDepthLimit is the simplifier's recursion ceiling; lowering an
	// expression nested deeper panics with a deterministic internal
	// compiler error. Zero disables the ceiling (O0/O1 and all
	// instrumented or sanitizer builds, which must accept everything).
	ExprDepthLimit int
}

// exprDepthLimit is the nesting ceiling optimizing builds enforce.
const exprDepthLimit = 48

func (c Config) passes() passSet {
	var p passSet
	p.ArgsRightToLeft = c.Family == GCC
	p.LineIsStmtStart = c.Family == GCC
	p.ConstFold = c.Opt.atLeast(O1)
	if c.Sanitize {
		// Checks are inserted before optimization: keep every UB site
		// observable.
		return p
	}
	p.DeadLoadElim = c.Opt.atLeast(O1)
	// Compile-stage divergence policies apply only to the plain
	// differential implementations: instrumented (B_fuzz) and sanitizer
	// builds must accept and survive everything the campaign feeds the
	// plain builds, or a compile-stage finding would kill the harness
	// instead of landing in a bucket.
	if !c.Instrument {
		p.StrictConstUB = c.Family == GCC && c.Opt.atLeast(O1)
		if c.Opt.atLeast(O2) {
			p.ExprDepthLimit = exprDepthLimit
		}
	}
	switch c.Family {
	case Clang:
		p.WidenMulToLong = c.Opt.atLeast(O1)
		p.FoldOverflowChecks = c.Opt.atLeast(O2)
		p.FoldNullChecks = c.Opt.atLeast(O2)
		p.ContractFMA = c.Opt.atLeast(O3)
	case GCC:
		// Size-optimized gcc code reuses the 64-bit multiply-add
		// addressing forms, effectively evaluating int chains wide.
		p.WidenMulToLong = c.Opt == Os
		p.FoldOverflowChecks = c.Opt.atLeast(O3)
		p.FoldNullChecks = c.Opt.atLeast(O3)
		p.ContractFMA = c.Opt.atLeast(O2)
	}
	return p
}
