package compiler

import (
	"sort"

	"compdiff/internal/hash"
	"compdiff/internal/ir"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/types"
)

// frameLayout assigns frame offsets to a function's parameters and
// locals. Slot ordering is an implementation choice: it never affects
// a defined program, but it decides which object an out-of-bounds
// stack access hits and what uninitialized locals contain, so each
// implementation orders slots differently.
type frameLayout struct {
	offsets   map[*ast.Symbol]int64
	size      int64
	slots     []ir.Slot
	paramOff  []int64
	paramKind []ir.TypeCode
}

// planFrame computes the layout for fn under cfg.
func planFrame(cfg Config, fn *ast.FuncDecl, params, locals []*ast.Symbol) *frameLayout {
	type entry struct {
		sym   *ast.Symbol
		param bool
		src   int
	}
	var entries []entry
	for i, s := range params {
		entries = append(entries, entry{sym: s, param: true, src: i})
	}
	for i, s := range locals {
		entries = append(entries, entry{sym: s, param: false, src: len(params) + i})
	}

	// Order per implementation. O0 keeps source order for both
	// families; higher levels reorder, differently per family.
	rule := orderRule(cfg)
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		switch rule {
		case orderSource:
			return a.src < b.src
		case orderSizeDesc:
			sa, sb := a.sym.Type.Size(), b.sym.Type.Size()
			if sa != sb {
				return sa > sb
			}
			return a.src < b.src
		case orderSizeAsc:
			sa, sb := a.sym.Type.Size(), b.sym.Type.Size()
			if sa != sb {
				return sa < sb
			}
			return a.src < b.src
		case orderReverse:
			return a.src > b.src
		default: // orderHash
			ha := hash.Sum64([]byte(fn.Name+"."+a.sym.Name), uint32(cfg.personality()))
			hb := hash.Sum64([]byte(fn.Name+"."+b.sym.Name), uint32(cfg.personality()))
			if ha != hb {
				return ha < hb
			}
			return a.src < b.src
		}
	})

	fl := &frameLayout{offsets: map[*ast.Symbol]int64{}}
	var off int64
	redzone := int64(0)
	if cfg.ASan {
		redzone = 16
	}
	off += redzone
	for _, e := range entries {
		t := e.sym.Type
		off = alignUp(off, t.Align())
		fl.offsets[e.sym] = off
		fl.slots = append(fl.slots, ir.Slot{Name: e.sym.Name, Off: off, Size: t.Size(), Param: e.param})
		off += t.Size()
		off += redzone
	}
	fl.size = alignUp(off, 16)
	if fl.size == 0 {
		fl.size = 16
	}

	fl.paramOff = make([]int64, len(params))
	fl.paramKind = make([]ir.TypeCode, len(params))
	for i, s := range params {
		fl.paramOff[i] = fl.offsets[s]
		fl.paramKind[i] = typeCode(s.Type)
	}
	return fl
}

type slotOrder int

const (
	orderSource slotOrder = iota
	orderSizeDesc
	orderSizeAsc
	orderReverse
	orderHash
)

func orderRule(cfg Config) slotOrder {
	if cfg.Opt == O0 {
		return orderSource
	}
	if cfg.Family == GCC {
		switch cfg.Opt {
		case O1:
			return orderSizeDesc
		case O2:
			return orderSizeAsc
		case O3:
			return orderHash
		default: // Os
			return orderReverse
		}
	}
	switch cfg.Opt {
	case O1:
		return orderSizeAsc
	case O2:
		return orderSizeDesc
	case O3:
		return orderReverse
	default: // Os
		return orderHash
	}
}

// planGlobals assigns offsets in the globals segment. Source order at
// O0; a personality-keyed order otherwise. Globals are always
// zero-initialized (C semantics), so ordering matters only to UB.
func planGlobals(cfg Config, globals []*ast.Symbol) (map[*ast.Symbol]int64, int64) {
	order := make([]*ast.Symbol, len(globals))
	copy(order, globals)
	if cfg.Opt != O0 {
		sort.SliceStable(order, func(i, j int) bool {
			hi := hash.Sum64([]byte(order[i].Name), uint32(cfg.personality()))
			hj := hash.Sum64([]byte(order[j].Name), uint32(cfg.personality()))
			if hi != hj {
				return hi < hj
			}
			return order[i].Index < order[j].Index
		})
	}
	offsets := make(map[*ast.Symbol]int64, len(order))
	var off int64
	for _, s := range order {
		off = alignUp(off, s.Type.Align())
		offsets[s] = off
		off += s.Type.Size()
	}
	return offsets, alignUp(off, 8)
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

// typeCode maps a MiniC type to its machine type code.
func typeCode(t *types.Type) ir.TypeCode {
	switch t.Kind {
	case types.Char:
		return ir.I8
	case types.UChar:
		return ir.U8
	case types.Int:
		return ir.I32
	case types.UInt:
		return ir.U32
	case types.Long:
		return ir.I64
	case types.ULong, types.Ptr, types.Array:
		return ir.U64
	case types.Float:
		return ir.F32
	case types.Double:
		return ir.F64
	}
	return ir.I64
}

// storeWidth returns the memory width in bytes for a type.
func storeWidth(t *types.Type) int64 {
	if t.Kind == types.Ptr {
		return 8
	}
	return t.Size()
}
