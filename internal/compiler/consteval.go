package compiler

import (
	"math"

	"compdiff/internal/ir"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/types"
)

// constVal is a compile-time constant. Integer values are kept in
// canonical 64-bit form for their type code; string constants carry
// the literal for rodata interning.
type constVal struct {
	tc    ir.TypeCode
	word  uint64
	isStr bool
	str   string
}

func (v constVal) isZero() bool {
	if v.isStr {
		return false
	}
	if v.tc.IsFloat() {
		return math.Float64frombits(v.word) == 0
	}
	return v.word == 0
}

// evalConst attempts to evaluate e as a compile-time constant with
// fully defined semantics. UB constants (signed overflow, div by zero,
// oversized shifts) are refused so that they are resolved at run time
// by the execution profile, never by the folder — keeping compile-time
// and run-time arithmetic interchangeable on defined values.
func evalConst(e ast.Expr) (constVal, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		tc := typeCode(e.Type())
		return constVal{tc: tc, word: ir.Canon(tc, uint64(e.Value))}, true
	case *ast.FloatLit:
		tc := typeCode(e.Type())
		w := math.Float64bits(e.Value)
		if tc == ir.F32 {
			w = ir.ConvWord(ir.F64, ir.F32, w)
		}
		return constVal{tc: tc, word: w}, true
	case *ast.StrLit:
		return constVal{tc: ir.U64, isStr: true, str: e.Value}, true
	case *ast.SizeofExpr:
		return constVal{tc: ir.I64, word: uint64(e.Of.Size())}, true
	case *ast.CastExpr:
		v, ok := evalConst(e.X)
		if !ok || v.isStr {
			return constVal{}, false
		}
		to := typeCode(e.To)
		return constVal{tc: to, word: ir.ConvWord(v.tc, to, v.word)}, true
	case *ast.Unary:
		v, ok := evalConst(e.X)
		if !ok || v.isStr {
			return constVal{}, false
		}
		switch e.Op {
		case ast.Neg:
			if v.tc.IsFloat() {
				f := math.Float64frombits(v.word)
				return constVal{tc: v.tc, word: math.Float64bits(-f)}, true
			}
			if ir.OverflowSigned(ir.Neg, v.tc, v.word, 0) {
				return constVal{}, false
			}
			return constVal{tc: v.tc, word: ir.Canon(v.tc, -v.word)}, true
		case ast.BitNot:
			if v.tc.IsFloat() {
				return constVal{}, false
			}
			return constVal{tc: v.tc, word: ir.Canon(v.tc, ^v.word)}, true
		case ast.LogicalNot:
			w := uint64(0)
			if v.isZero() {
				w = 1
			}
			return constVal{tc: ir.I32, word: w}, true
		}
		return constVal{}, false
	case *ast.Binary:
		return evalConstBinary(e)
	case *ast.Cond:
		c, ok := evalConst(e.C)
		if !ok {
			return constVal{}, false
		}
		if !c.isZero() {
			return evalConst(e.X)
		}
		return evalConst(e.Y)
	}
	return constVal{}, false
}

func evalConstBinary(e *ast.Binary) (constVal, bool) {
	if e.Op == ast.LogAnd || e.Op == ast.LogOr {
		x, ok := evalConst(e.X)
		if !ok {
			return constVal{}, false
		}
		// Short-circuit, but only if the other side is also constant
		// (we must not hide a runtime side effect).
		y, ok := evalConst(e.Y)
		if !ok {
			return constVal{}, false
		}
		var r bool
		if e.Op == ast.LogAnd {
			r = !x.isZero() && !y.isZero()
		} else {
			r = !x.isZero() || !y.isZero()
		}
		w := uint64(0)
		if r {
			w = 1
		}
		return constVal{tc: ir.I32, word: w}, true
	}

	x, ok := evalConst(e.X)
	if !ok || x.isStr {
		return constVal{}, false
	}
	y, ok := evalConst(e.Y)
	if !ok || y.isStr {
		return constVal{}, false
	}
	if e.CommonType == nil {
		return constVal{}, false
	}
	tc := typeCode(e.CommonType)
	if tc.IsFloat() {
		// Floating constant folding is deliberately *not* performed:
		// compile-time rounding could differ from the run-time path
		// (FMA contraction), and we keep all FP evaluation at run time.
		return constVal{}, false
	}
	op, isCmp := binOpToIR(e.Op)
	xv := ir.ConvWord(x.tc, tc, x.word)
	yv := yWord(e, y, tc)
	w, ok := ir.IntBinOK(op, tc, xv, yv)
	if !ok {
		return constVal{}, false
	}
	if isCmp {
		return constVal{tc: ir.I32, word: w}, true
	}
	return constVal{tc: tc, word: w}, true
}

// yWord converts the right operand; shifts keep the count unconverted.
func yWord(e *ast.Binary, y constVal, tc ir.TypeCode) uint64 {
	if e.Op == ast.Shl || e.Op == ast.Shr {
		return ir.ConvWord(y.tc, ir.I64, y.word)
	}
	return ir.ConvWord(y.tc, tc, y.word)
}

// binOpToIR maps AST binary operators to IR opcodes.
func binOpToIR(op ast.BinOp) (ir.Op, bool) {
	switch op {
	case ast.Add:
		return ir.Add, false
	case ast.Sub:
		return ir.Sub, false
	case ast.Mul:
		return ir.Mul, false
	case ast.Div:
		return ir.Div, false
	case ast.Mod:
		return ir.Mod, false
	case ast.Shl:
		return ir.Shl, false
	case ast.Shr:
		return ir.Shr, false
	case ast.BitAnd:
		return ir.BitAnd, false
	case ast.BitOr:
		return ir.BitOr, false
	case ast.BitXor:
		return ir.BitXor, false
	case ast.Eq:
		return ir.CmpEq, true
	case ast.Ne:
		return ir.CmpNe, true
	case ast.Lt:
		return ir.CmpLt, true
	case ast.Le:
		return ir.CmpLe, true
	case ast.Gt:
		return ir.CmpGt, true
	case ast.Ge:
		return ir.CmpGe, true
	}
	return ir.Nop, false
}

// globalInitBytes encodes a constant initializer value into the byte
// representation of declType, for the globals segment image.
// String-literal initializers return needStr=true; the caller encodes
// the interned rodata address.
func globalInitBytes(declType *types.Type, v constVal) (data []byte, needStr bool) {
	if v.isStr {
		return nil, true
	}
	w := ir.ConvWord(v.tc, typeCode(declType), v.word)
	size := storeWidth(declType)
	if typeCode(declType) == ir.F32 {
		w = uint64(math.Float32bits(float32(math.Float64frombits(w))))
	}
	data = make([]byte, size)
	for i := int64(0); i < size; i++ {
		data[i] = byte(w >> (8 * i))
	}
	return data, false
}
