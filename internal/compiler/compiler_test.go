package compiler

import (
	"strings"
	"testing"

	"compdiff/internal/ir"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

func checked(t *testing.T, src string) *sema.Info {
	t.Helper()
	return sema.MustCheck(parser.MustParse(src))
}

func TestDefaultSetIsTheTen(t *testing.T) {
	set := DefaultSet()
	if len(set) != 10 {
		t.Fatalf("set = %d", len(set))
	}
	names := map[string]bool{}
	for _, cfg := range set {
		names[cfg.Name()] = true
	}
	for _, want := range []string{"gcc -O0", "gcc -O1", "gcc -O2", "gcc -O3", "gcc -Os",
		"clang -O0", "clang -O1", "clang -O2", "clang -O3", "clang -Os"} {
		if !names[want] {
			t.Errorf("missing %q", want)
		}
	}
}

func TestPersonalitiesDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, cfg := range DefaultSet() {
		k := cfg.personality()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share a personality", prev, cfg.Name())
		}
		seen[k] = cfg.Name()
	}
}

func TestProfilesEncodeTheDivergenceAxes(t *testing.T) {
	gccO0 := Config{Family: GCC, Opt: O0}.profile()
	clangO0 := Config{Family: Clang, Opt: O0}.profile()
	clangO3 := Config{Family: Clang, Opt: O3}.profile()

	if gccO0.StackDown == clangO0.StackDown {
		t.Error("families should differ in stack direction")
	}
	if gccO0.HeapHeader == clangO0.HeapHeader {
		t.Error("families should differ in heap header size")
	}
	if !gccO0.DivZeroTrap || clangO3.DivZeroTrap {
		t.Error("div-zero trap policy should depend on optimization level")
	}
	if !clangO3.PowViaExp2 || clangO0.PowViaExp2 {
		t.Error("pow substitution should be clang high-opt only")
	}
}

func TestPassAssignments(t *testing.T) {
	if !(Config{Family: GCC, Opt: O0}).passes().ArgsRightToLeft {
		t.Error("gcc evaluates args right-to-left")
	}
	if (Config{Family: Clang, Opt: O0}).passes().ArgsRightToLeft {
		t.Error("clang evaluates args left-to-right")
	}
	if !(Config{Family: Clang, Opt: O2}).passes().FoldOverflowChecks {
		t.Error("clang -O2 folds overflow checks (paper Listing 1)")
	}
	if (Config{Family: GCC, Opt: O2}).passes().FoldOverflowChecks {
		t.Error("gcc folds overflow checks only at -O3 here")
	}
	if (Config{Family: Clang, Opt: O1, Sanitize: true}).passes().DeadLoadElim {
		t.Error("sanitizer builds must keep dead loads")
	}
	if !(Config{Family: Clang, Opt: O1}).passes().WidenMulToLong {
		t.Error("clang -O1 widens (the paper's IntError example)")
	}
}

const layoutProg = `
int helper(int a, long b, char c) {
    char buf[10];
    int x = a;
    long y = b;
    buf[0] = c;
    return x + (int)y + buf[0];
}
int main() {
    return helper(1, 2L, 'x');
}
`

func TestFrameLayoutsDifferAcrossImplementations(t *testing.T) {
	info := checked(t, layoutProg)
	layouts := map[string][]string{}
	for _, cfg := range DefaultSet() {
		prog := MustCompile(info, cfg)
		f := prog.Funcs[prog.FuncIndex["helper"]]
		var order []string
		for _, s := range f.Slots {
			order = append(order, s.Name)
		}
		layouts[strings.Join(order, ",")] = append(layouts[strings.Join(order, ",")], cfg.Name())
	}
	if len(layouts) < 3 {
		t.Fatalf("expected >= 3 distinct slot orders, got %d: %v", len(layouts), layouts)
	}
}

func TestFrameLayoutDeterministic(t *testing.T) {
	info := checked(t, layoutProg)
	cfg := Config{Family: GCC, Opt: O3}
	a := MustCompile(info, cfg)
	b := MustCompile(info, cfg)
	fa := a.Funcs[a.FuncIndex["helper"]]
	fb := b.Funcs[b.FuncIndex["helper"]]
	if fa.FrameSize != fb.FrameSize || len(fa.Slots) != len(fb.Slots) {
		t.Fatal("layout not deterministic")
	}
	for i := range fa.Slots {
		if fa.Slots[i] != fb.Slots[i] {
			t.Fatalf("slot %d differs", i)
		}
	}
}

func TestASanLayoutInsertsRedzones(t *testing.T) {
	info := checked(t, layoutProg)
	plain := MustCompile(info, Config{Family: Clang, Opt: O1})
	asan := MustCompile(info, Config{Family: Clang, Opt: O1, ASan: true})
	fp := plain.Funcs[plain.FuncIndex["helper"]]
	fa := asan.Funcs[asan.FuncIndex["helper"]]
	if fa.FrameSize <= fp.FrameSize {
		t.Fatalf("asan frame %d should exceed plain %d", fa.FrameSize, fp.FrameSize)
	}
	// Slots must be separated by at least 16 bytes of redzone.
	for i := 1; i < len(fa.Slots); i++ {
		gap := fa.Slots[i].Off - (fa.Slots[i-1].Off + fa.Slots[i-1].Size)
		if gap < 16 {
			t.Fatalf("slots %d/%d gap %d < 16", i-1, i, gap)
		}
	}
}

func TestInstrumentationEmitsEdges(t *testing.T) {
	info := checked(t, `
int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        if (i > 1) { s += i; } else { s -= i; }
    }
    return s & 1;
}
`)
	plain := MustCompile(info, Config{Family: Clang, Opt: O1})
	cov := MustCompile(info, Config{Family: Clang, Opt: O1, Instrument: true})
	if plain.NumEdges != 0 {
		t.Errorf("plain binary has %d edges", plain.NumEdges)
	}
	if cov.NumEdges < 4 {
		t.Errorf("instrumented binary has %d edges, want several", cov.NumEdges)
	}
	found := 0
	for _, in := range cov.Funcs[cov.Main].Code {
		if in.Op == ir.Edge {
			found++
		}
	}
	if found != cov.NumEdges {
		t.Errorf("edge instructions %d != NumEdges %d", found, cov.NumEdges)
	}
}

func TestRodataInterning(t *testing.T) {
	info := checked(t, `
int main() {
    printf("hello");
    printf("hello");
    printf("world");
    return 0;
}
`)
	prog := MustCompile(info, Config{Family: GCC, Opt: O0})
	// "hello\0world\0" = 12 bytes: the duplicate is shared.
	if len(prog.Rodata) != 12 {
		t.Fatalf("rodata = %d bytes (%q), want 12", len(prog.Rodata), prog.Rodata)
	}
}

func TestCompileRequiresMain(t *testing.T) {
	info := checked(t, `int helper() { return 1; }`)
	if _, err := Compile(info, Config{Family: GCC, Opt: O0}); err == nil ||
		!strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalOrderingVariesAtHigherOpt(t *testing.T) {
	info := checked(t, `
int alpha = 1;
int beta = 2;
int gamma = 3;
long delta = 4L;
int main() { return alpha + beta + gamma + (int)delta; }
`)
	offsets := func(cfg Config) string {
		prog := MustCompile(info, cfg)
		_ = prog
		// Offsets are private to the lowering; compare the generated
		// initializer images, which embed the ordering.
		var b strings.Builder
		for _, gi := range prog.GlobalInit {
			b.WriteString(strings.Repeat("x", int(gi.Offset)))
			b.WriteString("|")
		}
		return b.String()
	}
	if offsets(Config{Family: GCC, Opt: O2}) == offsets(Config{Family: Clang, Opt: O2}) {
		t.Error("expected global orderings to differ across families at -O2")
	}
	if offsets(Config{Family: GCC, Opt: O0}) != offsets(Config{Family: Clang, Opt: O0}) {
		t.Error("-O0 keeps source order in both families")
	}
}

func TestOverflowCheckFoldedOnlyWithGuard(t *testing.T) {
	// Without the establishing guard, folding `a+b<a` would be unsound
	// and must not happen even at clang -O2.
	unguarded := checked(t, `
int main() {
    int a = input_byte(0L) - 5;
    int b = input_byte(1L) - 5;
    if (a + b < a) { printf("neg\n"); return 1; }
    printf("ok\n");
    return 0;
}
`)
	prog := MustCompile(unguarded, Config{Family: Clang, Opt: O2})
	// The comparison must still be present: look for a CmpLt.
	found := false
	for _, in := range prog.Funcs[prog.Main].Code {
		if in.Op == ir.CmpLt {
			found = true
		}
	}
	if !found {
		t.Fatal("unguarded overflow check was folded (unsound)")
	}
}

func TestDisassemblyStable(t *testing.T) {
	info := checked(t, layoutProg)
	a := MustCompile(info, Config{Family: Clang, Opt: O2}).Disasm()
	b := MustCompile(info, Config{Family: Clang, Opt: O2}).Disasm()
	if a != b {
		t.Fatal("compilation not reproducible")
	}
}
