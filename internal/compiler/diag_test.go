package compiler

// Tests for the compile-stage diagnostic layer: the guarded compile
// entry point (accept / reject / ICE), the per-family accept-reject
// policy split, the family diagnostic wordings, and the deterministic
// ICE payloads the differential oracle fingerprints.

import (
	"strings"
	"testing"
)

const divZeroMain = `
int main() {
    int d = 1 / 0;
    return d;
}
`

// deepChainMain exceeds the O2 simplifier recursion ceiling (48).
func deepChainMain() string {
	return "int main() {\n    int x = 1;\n    int y = x" +
		strings.Repeat("+1", 60) + ";\n    return y;\n}\n"
}

func TestCompileGuardedAccept(t *testing.T) {
	info := checked(t, "int main() { return 0; }")
	res := CompileGuarded(info, Config{Family: GCC, Opt: O2})
	if !res.Accepted() || res.Prog == nil || res.ICE != "" || len(res.Diags) != 0 {
		t.Fatalf("clean program not accepted cleanly: %+v", res)
	}
}

// TestConstUBPolicySplit pins the accept/reject divergence in
// miniature: optimizing gcc rejects constant division by zero,
// non-optimizing gcc and clang warn and accept.
func TestConstUBPolicySplit(t *testing.T) {
	info := checked(t, divZeroMain)

	strict := CompileGuarded(info, Config{Family: GCC, Opt: O2})
	if strict.Accepted() || strict.ICE != "" {
		t.Fatalf("gcc -O2 must reject constant division by zero: %+v", strict)
	}
	if !strings.Contains(strict.Err.Error(), "-Werror=div-by-zero") {
		t.Errorf("gcc -O2 error lacks the -Werror spelling: %v", strict.Err)
	}
	if len(strict.Diags) == 0 || !strings.Contains(strict.Diags[0], "error:") {
		t.Errorf("rejection did not render an error diagnostic: %v", strict.Diags)
	}

	lax := CompileGuarded(info, Config{Family: GCC, Opt: O0})
	if !lax.Accepted() {
		t.Fatalf("gcc -O0 must accept with a warning: %v", lax.Err)
	}
	if len(lax.Diags) != 1 || !strings.Contains(lax.Diags[0], "division by zero [-Wdiv-by-zero]") {
		t.Errorf("gcc warning wording wrong: %v", lax.Diags)
	}

	clang := CompileGuarded(info, Config{Family: Clang, Opt: O2})
	if !clang.Accepted() {
		t.Fatalf("clang -O2 must accept with a warning: %v", clang.Err)
	}
	if len(clang.Diags) != 1 || !strings.Contains(clang.Diags[0], "division by zero is undefined") {
		t.Errorf("clang warning wording wrong: %v", clang.Diags)
	}

	// Instrumented builds disable the strict folder: the sanitizer
	// wants the operation to reach run time.
	san := CompileGuarded(info, Config{Family: GCC, Opt: O2, Instrument: true})
	if !san.Accepted() {
		t.Errorf("instrumented gcc -O2 must accept: %v", san.Err)
	}
}

// TestConstUBWarnings drives scanConstUB over each undefined-constant
// shape and checks the emitted wording per family.
func TestConstUBWarnings(t *testing.T) {
	cases := []struct {
		name, expr string
		gcc, clang string
	}{
		{"mod zero", "5 % 0", "-Wdiv-by-zero", "remainder by zero is undefined"},
		{"add overflow", "2147483647 + 1", "-Woverflow", "-Winteger-overflow"},
		{"shift negative", "1 << (-1)", "left shift count is negative", "shift count is negative"},
		{"shift wide right", "1 >> 40", "right shift count >= width of type", "shift count >= width of type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			info := checked(t, "int main() {\n    int v = "+c.expr+";\n    return 0;\n}\n")
			for _, fam := range []struct {
				cfg  Config
				want string
			}{
				{Config{Family: GCC, Opt: O0}, c.gcc},
				{Config{Family: Clang, Opt: O0}, c.clang},
			} {
				res := CompileGuarded(info, fam.cfg)
				if !res.Accepted() {
					t.Fatalf("%s rejected a warning-only program: %v", fam.cfg.Name(), res.Err)
				}
				if len(res.Diags) != 1 {
					t.Fatalf("%s diags = %v, want exactly one", fam.cfg.Name(), res.Diags)
				}
				if !strings.Contains(res.Diags[0], fam.want) {
					t.Errorf("%s diags = %v, want substring %q", fam.cfg.Name(), res.Diags, fam.want)
				}
				if !strings.HasPrefix(res.Diags[0], "<source>:2: warning: ") {
					t.Errorf("diagnostic site wrong: %q", res.Diags[0])
				}
			}
		})
	}

	// Non-constant operands are run-time territory: no front-end diag.
	info := checked(t, "int main() {\n    int z = 0;\n    int v = 5 / z;\n    return v;\n}\n")
	if res := CompileGuarded(info, Config{Family: GCC, Opt: O0}); len(res.Diags) != 0 {
		t.Errorf("non-constant division produced front-end diags: %v", res.Diags)
	}
}

// TestICECaptureDeterministic: the recursion-ceiling ICE is caught at
// the recover boundary, carries the family's crash wording, and is
// byte-identical across repeated compiles of the same (program,
// config) pair.
func TestICECaptureDeterministic(t *testing.T) {
	info := checked(t, deepChainMain())

	gcc := CompileGuarded(info, Config{Family: GCC, Opt: O2})
	if gcc.Accepted() || gcc.ICE == "" || gcc.Prog != nil {
		t.Fatalf("gcc -O2 did not ICE on the deep chain: %+v", gcc)
	}
	if !strings.Contains(gcc.ICE, "internal compiler error: in simplify_expr, at expr.cc:") {
		t.Errorf("gcc ICE wording wrong: %q", gcc.ICE)
	}
	if !strings.Contains(gcc.Err.Error(), "internal compiler error") {
		t.Errorf("ICE did not surface in Err: %v", gcc.Err)
	}

	clang := CompileGuarded(info, Config{Family: Clang, Opt: O2})
	if clang.Accepted() || clang.ICE == "" {
		t.Fatalf("clang -O2 did not ICE on the deep chain: %+v", clang)
	}
	if !strings.Contains(clang.ICE, "fatal error: error in backend: simplifier recursion limit") {
		t.Errorf("clang ICE wording wrong: %q", clang.ICE)
	}

	again := CompileGuarded(info, Config{Family: GCC, Opt: O2})
	if again.ICE != gcc.ICE {
		t.Errorf("ICE text not deterministic:\n%q\n%q", gcc.ICE, again.ICE)
	}

	// O0/O1 have no recursion ceiling: the same program compiles.
	if res := CompileGuarded(info, Config{Family: GCC, Opt: O0}); !res.Accepted() {
		t.Errorf("gcc -O0 must accept the deep chain: %v", res.Err)
	}
	// Instrumentation lifts the ceiling too.
	if res := CompileGuarded(info, Config{Family: GCC, Opt: O2, Instrument: true}); !res.Accepted() {
		t.Errorf("instrumented gcc -O2 must accept the deep chain: %v", res.Err)
	}
}

func TestInitNotConstWording(t *testing.T) {
	info := checked(t, "int g = 1 / 0;\nint main() { return g; }\n")
	gcc := CompileGuarded(info, Config{Family: GCC, Opt: O0})
	clang := CompileGuarded(info, Config{Family: Clang, Opt: O0})
	if gcc.Accepted() || clang.Accepted() {
		t.Fatal("non-constant global initializer must be rejected by both families")
	}
	if !strings.Contains(gcc.Err.Error(), "initializer element is not constant") {
		t.Errorf("gcc wording wrong: %v", gcc.Err)
	}
	if !strings.Contains(clang.Err.Error(), "initializer element is not a compile-time constant") {
		t.Errorf("clang wording wrong: %v", clang.Err)
	}
	if gcc.Err.Error() == clang.Err.Error() {
		t.Error("the two families must disagree in wording (the diag-mismatch class)")
	}
}
