package compiler

import (
	"math/bits"
	"strings"
)

// PassBits is the per-implementation fired-rewrite bitmap: one bit per
// UB-exploiting optimizer rewrite, set when a compilation actually
// applied that rewrite somewhere in the program. It is the
// compile-stage analog of the fuzz edge bitmap — edge coverage says
// which program paths an input reached, pass coverage says which
// optimizer decisions a program provoked — and it is what
// coverage-directed program generation (internal/evolve) steers by: a
// program that makes an implementation fold an overflow check is close
// to a divergence even while every checksum still agrees.
//
// Bits are set at the moment the rewrite is decided or applied (the
// analyzeFunc side tables for the flow-sensitive folds, the lowering
// sites for folding, widening, and contraction), so a bit is set iff
// the emitted code differs from the non-optimizing lowering because of
// that pass.
type PassBits uint32

const (
	// PassFoldOverflow: a signed overflow guard (`a + b < a`) was
	// folded to a constant under the no-signed-overflow licence.
	PassFoldOverflow PassBits = 1 << iota
	// PassFoldNull: a null check dominated by a dereference was folded.
	PassFoldNull
	// PassDeadLoad: a pure expression statement was deleted.
	PassDeadLoad
	// PassWidenMul: a signed-int multiply chain feeding a 64-bit
	// context was evaluated directly in 64 bits.
	PassWidenMul
	// PassContractFMA: a double a*b+c was contracted to fused
	// multiply-add.
	PassContractFMA
	// PassConstFold: a non-UB constant expression was folded at -O1+.
	PassConstFold

	// passLimit is one past the highest defined bit; the compile-time
	// guards below keep it, NumPassKinds, and passNames in lock step.
	passLimit
)

// NumPassKinds is the pass-coverage bitmap width in bits. Every
// consumer sizing an array or telemetry field by it is protected by
// the assertions below, the same way fuzz.MapSize is pinned to
// vm.CovMapSize.
const NumPassKinds = 6

// Compile-time width guards: adding a pass bit without bumping
// NumPassKinds (or growing past the uint32 carrier) refuses to build,
// in both directions — a negative constant does not convert to uint.
const (
	_ = uint(passLimit - 1<<NumPassKinds)
	_ = uint(1<<NumPassKinds - passLimit)
	_ = uint(32 - NumPassKinds)
)

// passNames, indexed by bit position. The array length is the same
// compile-time guard again: it must equal NumPassKinds exactly.
var passNames = [NumPassKinds]string{
	"fold-overflow-check",
	"fold-null-check",
	"dead-load-elim",
	"widen-mul-to-long",
	"contract-fma",
	"const-fold",
}

// PassName returns the name of pass bit i (0 <= i < NumPassKinds).
func PassName(i int) string { return passNames[i] }

// Count returns the number of set bits.
func (b PassBits) Count() int { return bits.OnesCount32(uint32(b)) }

// Names lists the set bits' pass names, bit order.
func (b PassBits) Names() []string {
	var out []string
	for i := 0; i < NumPassKinds; i++ {
		if b&(1<<i) != 0 {
			out = append(out, passNames[i])
		}
	}
	return out
}

// String renders the bitmap as a +-joined pass list ("none" when empty).
func (b PassBits) String() string {
	if b == 0 {
		return "none"
	}
	return strings.Join(b.Names(), "+")
}
