package evolve

import (
	"math/rand"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// valid reports whether src passes the shared front end.
func valid(src string) bool {
	p, err := parser.Parse(src)
	if err != nil {
		return false
	}
	_, err = sema.Check(p)
	return err == nil
}

func TestSeedPopulationValid(t *testing.T) {
	pop := SeedPopulation(42, 8)
	if len(pop) != 8 {
		t.Fatalf("population size %d, want 8", len(pop))
	}
	for i, g := range pop {
		if !valid(g.Src) {
			t.Fatalf("founder %d (seed %d) fails the front end", i, g.Seed)
		}
		if g.Gen != 0 || g.Ops != 0 {
			t.Fatalf("founder %d has lineage %d/%d, want 0/0", i, g.Gen, g.Ops)
		}
	}
}

func TestMutateOffspringAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parent := SeedPopulation(1, 1)[0]
	accepted := 0
	for i := 0; i < 60; i++ {
		child, ok := Mutate(parent, rng, 1)
		if !ok {
			continue
		}
		accepted++
		if !valid(child.Src) {
			t.Fatalf("accepted offspring %d fails the front end:\n%s", i, child.Src)
		}
		if child.Ops != parent.Ops+1 || child.Seed != parent.Seed {
			t.Fatalf("offspring lineage Ops=%d Seed=%d, want %d/%d",
				child.Ops, child.Seed, parent.Ops+1, parent.Seed)
		}
		parent = child // walk the chain: mutations compose
	}
	if accepted < 40 {
		t.Fatalf("only %d/60 mutations accepted; the gate is rejecting too much", accepted)
	}
}

// TestIdiomTemplatesCoverAllPasses pins the point of the idiom set:
// spliced into a program and compiled across the default
// implementation set, the templates reach every instrumented
// optimizer pass — coverage blind progen sampling cannot reach (it is
// UB-free by construction and never emits these shapes).
func TestIdiomTemplatesCoverAllPasses(t *testing.T) {
	var union compiler.PassBits
	for ti, tmpl := range idiomTemplates {
		src := "int main() { " + tmpl + " return 0; }"
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("template %d does not parse: %v", ti, err)
		}
		info, err := sema.Check(prog)
		if err != nil {
			t.Fatalf("template %d fails sema: %v", ti, err)
		}
		for _, cfg := range compiler.DefaultSet() {
			union |= compiler.CompileGuarded(info, cfg).PassBits
		}
	}
	for i := 0; i < compiler.NumPassKinds; i++ {
		if union&(1<<i) == 0 {
			t.Errorf("no template fires pass %s", compiler.PassName(i))
		}
	}
}

func TestFitnessOrdering(t *testing.T) {
	g := &Genome{Src: "int main() { return 0; }"}
	base := Fitness(g, Eval{}, Options{})
	bits := Fitness(g, Eval{ImplBits: []compiler.PassBits{compiler.PassConstFold, 0}}, Options{})
	if bits <= base {
		t.Fatalf("firing a pass did not raise fitness: %v <= %v", bits, base)
	}
	finding := Fitness(g, Eval{Findings: 1}, Options{})
	if finding <= bits {
		t.Fatalf("a finding did not outrank coverage: %v <= %v", finding, bits)
	}
	bucket := Fitness(g, Eval{Findings: 1, NewBuckets: 1}, Options{})
	if bucket <= finding {
		t.Fatalf("a new bucket did not outrank a duplicate finding: %v <= %v", bucket, finding)
	}
	reject := Fitness(g, Eval{FrontendReject: true, NewBuckets: 3}, Options{})
	if reject >= base {
		t.Fatalf("a front-end reject scored %v, above the empty eval %v", reject, base)
	}
	// Disagreement (divergence proximity) beats uniform coverage of
	// the same bit.
	uniform := Fitness(g, Eval{ImplBits: []compiler.PassBits{compiler.PassFoldNull, compiler.PassFoldNull}}, Options{})
	split := Fitness(g, Eval{ImplBits: []compiler.PassBits{compiler.PassFoldNull, 0}}, Options{})
	if split <= uniform {
		t.Fatalf("a partitioning pass did not outrank a uniform one: %v <= %v", split, uniform)
	}
}

func TestParsimonyPenalizesDrift(t *testing.T) {
	small := &Genome{Src: "int main() { return 0; }"}
	big := &Genome{Src: "int main() { return 0; }" + string(make([]byte, 1<<16))}
	opts := Options{TargetLen: len(small.Src)}
	if Fitness(big, Eval{}, opts) >= Fitness(small, Eval{}, opts) {
		t.Fatal("a 64KiB-oversized genome was not penalized against an on-target one")
	}
}

func TestNextGenerationDeterministic(t *testing.T) {
	pop := SeedPopulation(5, 10)
	fits := make([]float64, len(pop))
	for i := range fits {
		fits[i] = float64(i % 4)
	}
	a := NextGeneration(pop, fits, 0, Options{Seed: 99})
	b := NextGeneration(pop, fits, 0, Options{Seed: 99})
	if Signature(a) != Signature(b) {
		t.Fatal("two NextGeneration calls with equal inputs produced different populations")
	}
	if len(a) != len(pop) {
		t.Fatalf("population size changed: %d -> %d", len(pop), len(a))
	}
	for i, g := range a {
		if !valid(g.Src) {
			t.Fatalf("next-generation genome %d fails the front end", i)
		}
	}
	c := NextGeneration(pop, fits, 0, Options{Seed: 100})
	if Signature(a) == Signature(c) {
		t.Fatal("different seeds produced identical generations (RNG not seed-derived?)")
	}
}

func TestSignatureOrderIndependent(t *testing.T) {
	pop := SeedPopulation(3, 6)
	rev := make([]*Genome, len(pop))
	for i, g := range pop {
		rev[len(pop)-1-i] = g
	}
	if Signature(pop) != Signature(rev) {
		t.Fatal("signature depends on population order")
	}
	if Signature(pop) == Signature(pop[:5]) {
		t.Fatal("signature ignores a dropped genome")
	}
}

// FuzzEvolveMutate is the gate property under adversarial RNG streams
// and parent choice: an accepted offspring always parses and passes
// sema (so rejected candidates can never enter a population), and the
// mutation is deterministic in its RNG seed.
func FuzzEvolveMutate(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-7), int64(0))
	f.Add(int64(1<<40), int64(99))
	f.Fuzz(func(t *testing.T, progenSeed, rngSeed int64) {
		parent := &Genome{Src: SeedPopulation(progenSeed, 1)[0].Src, Seed: progenSeed}
		child, ok := Mutate(parent, rand.New(rand.NewSource(rngSeed)), 1)
		child2, ok2 := Mutate(parent, rand.New(rand.NewSource(rngSeed)), 1)
		if ok != ok2 || (ok && child.Src != child2.Src) {
			t.Fatal("Mutate is not deterministic in its RNG seed")
		}
		if !ok {
			return
		}
		if !valid(child.Src) {
			t.Fatalf("accepted offspring fails the front end:\n%s", child.Src)
		}
	})
}
