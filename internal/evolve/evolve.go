// Package evolve implements evolutionary coverage-directed program
// generation: a population of MiniC programs evolved under a composite
// fitness of optimizer-pass coverage (which unstable-code rewrites
// fired, per implementation — compiler.PassBits), divergence proximity
// (how close the implementations' outputs are to disagreeing), and
// structural diversity (a PonyGE2-style expected-length parsimony
// term). Where blind progen sampling is conservative by construction —
// it never emits the overflow-guard, deref-then-null-check, or
// wrapping-multiply idioms the paper's unstable-code rewrites key on —
// the evolve mutators insert exactly those idioms, steering the
// campaign toward the regions of program space where implementations
// can disagree.
//
// The package is deliberately pure: it knows genomes, mutation,
// fitness, and selection. Evaluation (compiling a genome under every
// implementation and running the differential oracles) lives in the
// campaign layer (internal/difffuzz), which fills in an Eval per
// genome; NextGeneration then turns (population, fitnesses) into the
// next population deterministically. All randomness is derived from
// (Options.Seed, generation), so no RNG state needs checkpointing: a
// campaign resumed at a generation barrier replays the identical
// sequence of populations.
package evolve

import (
	"math/rand"
	"sort"

	"compdiff/internal/compiler"
	"compdiff/internal/hash"
	"compdiff/internal/progen"
)

// Genome is one population member. The canonical identity is the
// printed source text; the AST is re-derived by parsing when a
// mutation needs it, which also guarantees offspring never alias
// their parent's nodes (see internal/triage's clone-on-accept).
type Genome struct {
	// Src is the program text. Always parses and passes sema: founders
	// come from progen, offspring are gated by Mutate.
	Src string `json:"src"`
	// Seed is the progen seed of the founding ancestor (lineage).
	Seed int64 `json:"seed"`
	// Gen is the generation this genome was created in (0 = founder).
	Gen int `json:"gen"`
	// Ops counts mutations applied since the founder.
	Ops int `json:"ops,omitempty"`
}

// Options are the evolutionary knobs. Everything here determines the
// population sequence and therefore belongs in the campaign hash.
type Options struct {
	// Seed derives every per-generation RNG.
	Seed int64
	// TargetLen is the expected source length (bytes) the parsimony
	// term pulls toward — PonyGE2's expected-length penalty, which
	// keeps selection from rewarding bloat and from collapsing onto
	// trivial programs. Default 4096.
	TargetLen int
	// Tournament is the selection tournament size. Default 3.
	Tournament int
	// Elite is the number of top genomes copied unchanged into the
	// next generation. Default 2.
	Elite int
	// Immigrants is the number of fresh progen genomes injected per
	// generation to keep the gene pool from collapsing. Default 1.
	Immigrants int
}

func (o Options) withDefaults() Options {
	if o.TargetLen <= 0 {
		o.TargetLen = 4096
	}
	if o.Tournament < 1 {
		o.Tournament = 3
	}
	if o.Elite < 0 {
		o.Elite = 2
	}
	if o.Immigrants < 0 {
		o.Immigrants = 1
	}
	return o
}

// Eval is the campaign layer's measurement of one genome: everything
// fitness needs, filled in after the k-way compile and the oracle
// runs. The zero value is a genome that compiled everywhere, fired
// nothing, and diverged nowhere.
type Eval struct {
	// FrontendReject marks a genome the shared front end refused.
	// Gated mutation should make this impossible; it is scored
	// punitively rather than trusted to be.
	FrontendReject bool
	// ImplBits is the per-implementation fired-rewrite bitmap, suite
	// order.
	ImplBits []compiler.PassBits
	// NewBits counts (impl, pass) pairs this genome fired that the
	// campaign's cumulative coverage had not seen before it.
	NewBits int
	// Classes is the largest number of distinct output-checksum
	// partition classes observed across the runtime inputs (1 = all
	// implementations agreed everywhere). Divergence proximity: more
	// classes means closer to (or at) a runtime divergence.
	Classes int
	// Findings counts oracle hits (compile-stage findings plus
	// diverged runtime executions) before dedup.
	Findings int
	// NewBuckets counts findings that opened a new triage bucket.
	NewBuckets int
}

// UnionBits is the set of passes fired by at least one implementation.
func (e Eval) UnionBits() compiler.PassBits {
	var u compiler.PassBits
	for _, b := range e.ImplBits {
		u |= b
	}
	return u
}

// DisagreeBits is the set of passes fired by some implementations but
// not others — exactly the rewrites whose presence partitions the
// implementation set, the precondition for unstable-code divergence.
func (e Eval) DisagreeBits() compiler.PassBits {
	if len(e.ImplBits) == 0 {
		return 0
	}
	union, inter := compiler.PassBits(0), ^compiler.PassBits(0)
	for _, b := range e.ImplBits {
		union |= b
		inter &= b
	}
	return union &^ inter
}

// Fitness weights. Buckets dominate findings dominate coverage: a
// genome that opened a new dedup bucket outranks any amount of mere
// bit coverage, and disagreement (divergence proximity) outranks
// uniform coverage.
const (
	wUnionBit    = 2.0
	wDisagreeBit = 5.0
	wNewBit      = 10.0
	wClass       = 4.0
	wFinding     = 25.0
	wNewBucket   = 100.0
	// rejectPenalty scores a front-end reject below any valid genome.
	rejectPenalty = -1000.0
)

// Fitness scores one evaluated genome. Deterministic and pure.
func Fitness(g *Genome, e Eval, opts Options) float64 {
	opts = opts.withDefaults()
	if e.FrontendReject {
		return rejectPenalty
	}
	f := wUnionBit * float64(e.UnionBits().Count())
	f += wDisagreeBit * float64(e.DisagreeBits().Count())
	f += wNewBit * float64(e.NewBits)
	if e.Classes > 1 {
		f += wClass * float64(e.Classes-1)
	}
	f += wFinding * float64(e.Findings)
	f += wNewBucket * float64(e.NewBuckets)
	// PonyGE2-style parsimony: linear penalty on distance from the
	// expected length, normalized so one target-length of drift costs
	// about one union bit.
	dist := len(g.Src) - opts.TargetLen
	if dist < 0 {
		dist = -dist
	}
	f -= wUnionBit * float64(dist) / float64(opts.TargetLen)
	return f
}

// SeedPopulation founds a population of n progen programs on
// consecutive seeds starting at seed.
func SeedPopulation(seed int64, n int) []*Genome {
	pop := make([]*Genome, 0, n)
	for i := 0; i < n; i++ {
		p := progen.Generate(seed + int64(i))
		pop = append(pop, &Genome{Src: p.Src, Seed: p.Seed})
	}
	return pop
}

// Signature folds a population into an order-independent 64-bit
// identity: the hash of the sorted source texts. Two campaigns with
// equal signatures at every generation evolved identically — the
// property the shard-count and kill/resume determinism tests pin.
func Signature(pop []*Genome) uint64 {
	srcs := make([]string, len(pop))
	for i, g := range pop {
		srcs[i] = g.Src
	}
	sort.Strings(srcs)
	d := hash.New128(0x516e)
	for _, s := range srcs {
		d.Write([]byte(s))
		d.Write([]byte{0xfe})
	}
	h1, _ := d.Sum128()
	return h1
}

// genRNG derives the generation's private RNG stream from the
// campaign seed. The multiplier is the usual 64-bit golden-ratio
// constant; any bijective mix would do — what matters is that the
// stream is a pure function of (seed, gen), so resume needs no RNG
// state.
func genRNG(seed int64, gen int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (int64(gen+1) * -0x61c8864680b583eb)))
}

// rank returns population indices sorted by fitness descending, ties
// broken by lower index (deterministic under equal fitness).
func rank(fits []float64) []int {
	idx := make([]int, len(fits))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return fits[idx[a]] > fits[idx[b]]
	})
	return idx
}

// tournament picks one parent index: the best of Tournament uniform
// draws (ties to the lower index).
func tournament(r *rand.Rand, fits []float64, size int) int {
	best := r.Intn(len(fits))
	for i := 1; i < size; i++ {
		c := r.Intn(len(fits))
		if fits[c] > fits[best] || (fits[c] == fits[best] && c < best) {
			best = c
		}
	}
	return best
}

// NextGeneration produces generation gen+1 from the evaluated
// population: elites survive unchanged, a few progen immigrants keep
// diversity, and the rest are offspring of tournament-selected
// parents. Offspring are produced by Mutate, which gates every
// candidate through parse+sema; a parent whose mutations all fail the
// gate survives unchanged rather than admitting an invalid genome.
// The call is single-threaded and deterministic in (pop, fits, gen,
// opts) — the campaign layer runs it at its synchronization barrier.
func NextGeneration(pop []*Genome, fits []float64, gen int, opts Options) []*Genome {
	opts = opts.withDefaults()
	n := len(pop)
	if n == 0 {
		return nil
	}
	r := genRNG(opts.Seed, gen)
	order := rank(fits)

	elite := opts.Elite
	if elite > n {
		elite = n
	}
	imm := opts.Immigrants
	if elite+imm > n {
		imm = n - elite
	}

	next := make([]*Genome, 0, n)
	for i := 0; i < elite; i++ {
		next = append(next, pop[order[i]])
	}
	for i := 0; i < imm; i++ {
		// A disjoint seed stream from the founders': generation-tagged
		// offsets far above any plausible founder range.
		s := opts.Seed + int64(gen+1)*1_000_003 + int64(i)
		p := progen.Generate(s)
		next = append(next, &Genome{Src: p.Src, Seed: p.Seed, Gen: gen + 1})
	}
	for len(next) < n {
		parent := pop[tournament(r, fits, opts.Tournament)]
		if child, ok := Mutate(parent, r, gen+1); ok {
			next = append(next, child)
		} else {
			next = append(next, parent)
		}
	}
	return next
}
