package evolve

// Mutation operators. Each is the inverse of a triage reduction pass
// (internal/triage/passes.go): where reduction deletes statements,
// inlines locals, and collapses expressions to shrink a reproducer,
// mutation inserts statements, outlines expressions into fresh
// locals, clones declarations, and widens expressions to grow the
// population toward the optimizer idioms the unstable-code rewrites
// key on. Every offspring is gated: the mutated AST is printed,
// re-parsed, and re-checked, and only a candidate the shared front
// end accepts becomes a genome — an offspring can be useless, never
// invalid.

import (
	"fmt"
	"math/rand"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// idiomTemplates are self-contained braced blocks, each built to fire
// one of the instrumented optimizer passes (compiler.PassBits) when
// spliced into a program — the shapes matchOverflowCheck,
// matchNullCheck, the dead-load rule, the multiply widener, and the
// FMA contractor recognize. The first three are deliberately
// *unstable code* in the paper's sense: implementations that apply
// the rewrite and implementations that don't produce observably
// different programs, so inserting them steers the campaign straight
// at the divergence oracles. Every declared name is renamed fresh at
// splice time, so a template never captures or shadows program state.
var idiomTemplates = []string{
	// Signed-overflow guard: folding implementations (the rewrite the
	// paper's Figure 1 is about) decide the guard is always false and
	// drop the print; wrapping implementations print. Fires
	// PassFoldOverflow and diverges at runtime.
	`{ int ua = 2147483600; if (((ua + 99) < ua)) { printf("ovf\n"); } }`,
	// Deref-then-null-check: the deref lets the optimizer assume the
	// pointer is non-null and fold the check. Fires PassFoldNull;
	// behavior stays defined (the pointer really is non-null).
	`{ int ua = 7; int* ub = &ua; int uc = *ub; if ((ub == 0)) { uc = 0; } ua = ua + uc; }`,
	// Dead null load: eliminated as dead at O1+, crashes at O0. Fires
	// PassDeadLoad and diverges (crash class vs ok).
	`{ int* ua = 0; *ua; }`,
	// Wrapping multiply under a widening cast: implementations that
	// widen the multiply into long keep the full product, the rest
	// wrap at int. Fires PassWidenMul and diverges.
	`{ int ua = 100000; long ub = (long)(ua * ua); printf("%ld\n", ub); }`,
	// Float multiply-add in contraction shape. Fires PassContractFMA;
	// exact in these operands, so defined and stable.
	`{ double ua = 1.5; double ub = 2.5; double uc = 3.5; int ud = (int)(ua * ub + uc); if (ud > 100) { printf("fma\n"); } }`,
	// Constant arithmetic: the benign filler idiom. Fires
	// PassConstFold only.
	`{ int ua = (3 + 4); ua = ua + 1; }`,
}

// mutator carries the per-offspring state: the RNG stream and a
// fresh-name allocator seeded with every identifier already used by
// the program, so spliced code can never collide or capture.
type mutator struct {
	rng  *rand.Rand
	used map[string]bool
	seq  int
}

func (m *mutator) fresh() string {
	for {
		m.seq++
		name := fmt.Sprintf("ev%d", m.seq)
		if !m.used[name] {
			m.used[name] = true
			return name
		}
	}
}

// usedNames collects every identifier the program mentions —
// declarations and uses — so fresh names are guaranteed collision-free.
func usedNames(p *ast.Program) map[string]bool {
	used := map[string]bool{}
	for _, s := range p.Structs {
		used[s.Name] = true
	}
	for _, g := range p.Globals {
		used[g.Name] = true
	}
	note := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			used[id.Name] = true
		}
	}
	for _, f := range p.Funcs {
		used[f.Name] = true
		for _, prm := range f.Params {
			used[prm.Name] = true
		}
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			if ds, ok := s.(*ast.DeclStmt); ok {
				for _, d := range ds.Decls {
					used[d.Name] = true
				}
			}
			return true
		})
		ast.WalkExprs(f.Body, note)
	}
	return used
}

// Mutate derives one offspring from parent: parse, apply one random
// operator to a fresh tree, print, and gate through parse+sema. Up to
// a few attempts are made before giving up (ok=false) — the caller
// keeps the parent in that case. The returned genome's source is the
// canonical reprint, so equal programs always hash equal.
func Mutate(parent *Genome, rng *rand.Rand, gen int) (*Genome, bool) {
	prog, err := parser.Parse(parent.Src)
	if err != nil {
		return nil, false
	}
	m := &mutator{rng: rng, used: usedNames(prog)}
	for try := 0; try < 4; try++ {
		work := ast.CloneProgram(prog)
		if !m.apply(work) {
			continue
		}
		src := ast.Print(work)
		reparsed, err := parser.Parse(src)
		if err != nil {
			continue
		}
		if _, err := sema.Check(reparsed); err != nil {
			continue
		}
		return &Genome{Src: src, Seed: parent.Seed, Gen: gen, Ops: parent.Ops + 1}, true
	}
	return nil, false
}

// apply runs one randomly chosen operator in place. Idiom insertion
// is weighted heavily: it is the operator that reaches new pass
// coverage; the rest maintain structural diversity.
func (m *mutator) apply(p *ast.Program) bool {
	main := mainOf(p)
	if main == nil {
		return false
	}
	switch m.rng.Intn(6) {
	case 0, 1, 2:
		return m.insertIdiom(main)
	case 3:
		return m.outlineExpr(main)
	case 4:
		return m.cloneDecl(main)
	default:
		return m.widenExpr(main)
	}
}

func mainOf(p *ast.Program) *ast.FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == "main" {
			return f
		}
	}
	return nil
}

// insertIdiom splices one renamed idiom template block at a random
// position in main's body — the inverse of drop-stmt.
func (m *mutator) insertIdiom(main *ast.FuncDecl) bool {
	tmpl := idiomTemplates[m.rng.Intn(len(idiomTemplates))]
	block := m.parseTemplate(tmpl)
	if block == nil {
		return false
	}
	stmts := main.Body.Stmts
	pos := m.rng.Intn(len(stmts) + 1)
	main.Body.Stmts = append(stmts[:pos:pos], append([]ast.Stmt{block}, stmts[pos:]...)...)
	return true
}

// parseTemplate parses a braced template block and renames every name
// it declares to a fresh one. Names the template does not declare
// (printf) are left alone.
func (m *mutator) parseTemplate(tmpl string) ast.Stmt {
	prog, err := parser.Parse("int main() { " + tmpl + " }")
	if err != nil || len(prog.Funcs) == 0 || len(prog.Funcs[0].Body.Stmts) != 1 {
		return nil
	}
	block := prog.Funcs[0].Body.Stmts[0]
	rename := map[string]string{}
	ast.Walk(block, func(s ast.Stmt) bool {
		if ds, ok := s.(*ast.DeclStmt); ok {
			for _, d := range ds.Decls {
				if _, done := rename[d.Name]; !done {
					rename[d.Name] = m.fresh()
				}
				d.Name = rename[d.Name]
			}
		}
		return true
	})
	ast.WalkExprs(block, func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if to, ok := rename[id.Name]; ok {
				id.Name = to
			}
		}
	})
	return block
}

// outlineExpr hoists one integer literal into a fresh local declared
// at the top of main and replaces the literal with a read of it — the
// inverse of inline-local. Literals inside static initializers fail
// sema afterwards and are rejected by the gate, which is the intended
// filter.
func (m *mutator) outlineExpr(main *ast.FuncDecl) bool {
	lits := countExprs(main.Body, isOutlinable)
	if lits == 0 {
		return false
	}
	k := m.rng.Intn(lits)
	name := m.fresh()
	var value int64
	found := false
	mapBodyExprs(main.Body, func(e ast.Expr) ast.Expr {
		if found || !isOutlinable(e) {
			return e
		}
		if k > 0 {
			k--
			return e
		}
		found = true
		value = e.(*ast.IntLit).Value
		return &ast.Ident{Name: name}
	})
	if !found {
		return false
	}
	decl := m.parseDecl(fmt.Sprintf("int %s = %d;", name, value))
	if decl == nil {
		return false
	}
	main.Body.Stmts = append([]ast.Stmt{decl}, main.Body.Stmts...)
	return true
}

func isOutlinable(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value > 1
}

// parseDecl parses one declaration statement.
func (m *mutator) parseDecl(src string) ast.Stmt {
	prog, err := parser.Parse("int main() { " + src + " }")
	if err != nil || len(prog.Funcs) == 0 || len(prog.Funcs[0].Body.Stmts) != 1 {
		return nil
	}
	return prog.Funcs[0].Body.Stmts[0]
}

// cloneDecl duplicates one initialized auto local under a fresh name,
// right after the original — the inverse of drop-toplevel/drop-stmt
// on declarations.
func (m *mutator) cloneDecl(main *ast.FuncDecl) bool {
	type site struct {
		block *ast.BlockStmt
		stmt  int
		decl  int
	}
	var sites []site
	ast.Walk(main.Body, func(s ast.Stmt) bool {
		b, ok := s.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range b.Stmts {
			if ds, ok := st.(*ast.DeclStmt); ok {
				for di, d := range ds.Decls {
					if d.Storage == ast.Auto && d.Init != nil {
						sites = append(sites, site{b, i, di})
					}
				}
			}
		}
		return true
	})
	if len(sites) == 0 {
		return false
	}
	s := sites[m.rng.Intn(len(sites))]
	orig := s.block.Stmts[s.stmt].(*ast.DeclStmt).Decls[s.decl]
	dup := ast.CloneVarDecl(orig)
	dup.Name = m.fresh()
	ins := &ast.DeclStmt{Decls: []*ast.VarDecl{dup}}
	stmts := s.block.Stmts
	pos := s.stmt + 1
	s.block.Stmts = append(stmts[:pos:pos], append([]ast.Stmt{ins}, stmts[pos:]...)...)
	return true
}

// widenExpr grows one integer literal read into `(lit + 0)` — the
// inverse of simplify-expr's operand collapse. Semantically inert,
// structurally diversifying, and a seed for later folds.
func (m *mutator) widenExpr(main *ast.FuncDecl) bool {
	lits := countExprs(main.Body, isOutlinable)
	if lits == 0 {
		return false
	}
	k := m.rng.Intn(lits)
	found := false
	mapBodyExprs(main.Body, func(e ast.Expr) ast.Expr {
		if found || !isOutlinable(e) {
			return e
		}
		if k > 0 {
			k--
			return e
		}
		found = true
		return &ast.Binary{Op: ast.Add, X: e, Y: &ast.IntLit{Value: 0}}
	})
	return found
}

// countExprs counts expression nodes matching pred using the same
// traversal mapBodyExprs rewrites with, so an index drawn against the
// count addresses exactly one node of a later mapBodyExprs pass.
func countExprs(body ast.Stmt, pred func(ast.Expr) bool) int {
	n := 0
	mapBodyExprs(body, func(e ast.Expr) ast.Expr {
		if pred(e) {
			n++
		}
		return e
	})
	return n
}

// mapBodyExprs rewrites every expression held by the statement tree
// through f, pre-order; children of a replaced node are not visited.
// The evolve-local analogue of triage's mapStmtExprs.
func mapBodyExprs(s ast.Stmt, f func(ast.Expr) ast.Expr) {
	ast.Walk(s, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					d.Init = mapExpr(d.Init, f)
				}
			}
		case *ast.ExprStmt:
			st.X = mapExpr(st.X, f)
		case *ast.IfStmt:
			st.Cond = mapExpr(st.Cond, f)
		case *ast.WhileStmt:
			st.Cond = mapExpr(st.Cond, f)
		case *ast.ForStmt:
			if st.Cond != nil {
				st.Cond = mapExpr(st.Cond, f)
			}
			if st.Post != nil {
				st.Post = mapExpr(st.Post, f)
			}
		case *ast.ReturnStmt:
			if st.Value != nil {
				st.Value = mapExpr(st.Value, f)
			}
		}
		return true
	})
}

func mapExpr(e ast.Expr, f func(ast.Expr) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if r := f(e); r != e {
		return r
	}
	switch e := e.(type) {
	case *ast.Unary:
		e.X = mapExpr(e.X, f)
	case *ast.Binary:
		e.X = mapExpr(e.X, f)
		e.Y = mapExpr(e.Y, f)
	case *ast.Assign:
		// Only the RHS: wrapping an lvalue breaks assignability.
		e.RHS = mapExpr(e.RHS, f)
	case *ast.Cond:
		e.C = mapExpr(e.C, f)
		e.X = mapExpr(e.X, f)
		e.Y = mapExpr(e.Y, f)
	case *ast.Call:
		for i := range e.Args {
			e.Args[i] = mapExpr(e.Args[i], f)
		}
	case *ast.Index:
		e.X = mapExpr(e.X, f)
		e.Idx = mapExpr(e.Idx, f)
	case *ast.Member:
		e.X = mapExpr(e.X, f)
	case *ast.CastExpr:
		e.X = mapExpr(e.X, f)
	}
	return e
}
