// Package parser implements a recursive-descent parser for MiniC,
// producing the AST consumed by sema, the compilers, and the static
// analyzers.
package parser

import (
	"errors"
	"fmt"
	"strings"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/lexer"
	"compdiff/internal/minic/token"
	"compdiff/internal/minic/types"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a MiniC translation unit. It returns the program and an
// error joining all syntax problems, if any.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &parser{toks: toks, structs: map[string]*types.Type{}}
	prog := p.parseProgram()
	var errs []error
	for _, e := range lx.Errors() {
		errs = append(errs, e)
	}
	for _, e := range p.errs {
		errs = append(errs, e)
	}
	if len(errs) > 0 {
		return prog, errors.Join(errs...)
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for generated
// corpora and tests where the source is known-good.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("minic: parse of known-good source failed: %v\nsource:\n%s", err, numbered(src)))
	}
	return prog
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%4d | %s\n", i+1, l)
	}
	return b.String()
}

type parser struct {
	toks    []token.Token
	pos     int
	errs    []*Error
	structs map[string]*types.Type // forward-declared struct types
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 25 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync() {
	for !p.at(token.EOF) {
		k := p.next().Kind
		if k == token.Semicolon || k == token.RBrace {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		start := p.pos
		switch {
		case p.at(token.KwStruct) && p.peek().Kind == token.Ident && p.peekAfterStructIsBrace():
			prog.Structs = append(prog.Structs, p.parseStructDecl())
		default:
			p.parseTopLevel(prog)
		}
		if p.pos == start { // no progress; skip a token to avoid looping
			p.errorf(p.cur().Pos, "unexpected %s", p.cur())
			p.next()
		}
	}
	return prog
}

// peekAfterStructIsBrace distinguishes `struct S { ... };` (declaration)
// from `struct S x;` / `struct S* f() {}` (uses).
func (p *parser) peekAfterStructIsBrace() bool {
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].Kind == token.LBrace
	}
	return false
}

func (p *parser) parseStructDecl() *ast.StructDecl {
	p.expect(token.KwStruct)
	name := p.expect(token.Ident)
	d := &ast.StructDecl{Name: name.Text, NamePos: name.Pos}
	// Pre-register so that fields and later decls can use pointers to it.
	if _, ok := p.structs[name.Text]; !ok {
		p.structs[name.Text] = &types.Type{Kind: types.Struct, Name: name.Text}
	}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		base, ok := p.parseTypePrefix()
		if !ok {
			p.errorf(p.cur().Pos, "expected field type, found %s", p.cur())
			p.sync()
			continue
		}
		fname := p.expect(token.Ident)
		ftype := p.parseArraySuffix(base)
		d.Fields = append(d.Fields, &ast.VarDecl{Name: fname.Text, DeclType: ftype, NamePos: fname.Pos})
		p.expect(token.Semicolon)
	}
	p.expect(token.RBrace)
	p.expect(token.Semicolon)
	return d
}

// parseTopLevel parses either a global variable or a function.
func (p *parser) parseTopLevel(prog *ast.Program) {
	storage := ast.Auto
	if p.accept(token.KwStatic) {
		storage = ast.Static
	}
	base, ok := p.parseTypePrefix()
	if !ok {
		p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
		p.sync()
		return
	}
	name := p.expect(token.Ident)
	if p.at(token.LParen) {
		prog.Funcs = append(prog.Funcs, p.parseFuncRest(base, name))
		return
	}
	// Global variable(s).
	for {
		t := p.parseArraySuffix(base)
		d := &ast.VarDecl{Name: name.Text, DeclType: t, NamePos: name.Pos, Storage: storage}
		if p.accept(token.Assign) {
			d.Init = p.parseAssignExpr()
		}
		prog.Globals = append(prog.Globals, d)
		if !p.accept(token.Comma) {
			break
		}
		name = p.expect(token.Ident)
	}
	p.expect(token.Semicolon)
}

func (p *parser) parseFuncRest(result *types.Type, name token.Token) *ast.FuncDecl {
	f := &ast.FuncDecl{Name: name.Text, Result: result, NamePos: name.Pos}
	p.expect(token.LParen)
	if !p.at(token.RParen) {
		if p.at(token.KwVoid) && p.peek().Kind == token.RParen {
			p.next() // f(void)
		} else {
			for {
				base, ok := p.parseTypePrefix()
				if !ok {
					p.errorf(p.cur().Pos, "expected parameter type, found %s", p.cur())
					break
				}
				pn := p.expect(token.Ident)
				pt := p.parseArraySuffix(base)
				if pt.Kind == types.Array { // arrays decay in parameters
					pt = types.PointerTo(pt.Elem)
				}
				f.Params = append(f.Params, &ast.VarDecl{Name: pn.Text, DeclType: pt, NamePos: pn.Pos})
				if !p.accept(token.Comma) {
					break
				}
			}
		}
	}
	p.expect(token.RParen)
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------------------
// Types

// parseTypePrefix parses a base type with pointer stars:
// [unsigned] (char|int|long) '*'* | float | double | void '*'* |
// struct Name '*'*. Returns ok=false without consuming input if the
// current token cannot start a type.
func (p *parser) parseTypePrefix() (*types.Type, bool) {
	var t *types.Type
	switch p.cur().Kind {
	case token.KwConst:
		p.next()
		return p.parseTypePrefix()
	case token.KwUnsigned:
		p.next()
		switch p.cur().Kind {
		case token.KwChar:
			p.next()
			t = types.UCharType
		case token.KwLong:
			p.next()
			t = types.ULongType
		case token.KwInt:
			p.next()
			t = types.UIntType
		default:
			t = types.UIntType // bare `unsigned`
		}
	case token.KwChar:
		p.next()
		t = types.CharType
	case token.KwInt:
		p.next()
		t = types.IntType
	case token.KwLong:
		p.next()
		t = types.LongType
	case token.KwFloat:
		p.next()
		t = types.FloatType
	case token.KwDouble:
		p.next()
		t = types.DoubleType
	case token.KwVoid:
		p.next()
		t = types.VoidType
	case token.KwStruct:
		p.next()
		name := p.expect(token.Ident)
		st, ok := p.structs[name.Text]
		if !ok {
			st = &types.Type{Kind: types.Struct, Name: name.Text}
			p.structs[name.Text] = st
		}
		t = st
	default:
		return nil, false
	}
	for p.accept(token.Star) {
		t = types.PointerTo(t)
	}
	return t, true
}

// parseArraySuffix parses trailing `[N]` dimensions.
func (p *parser) parseArraySuffix(base *types.Type) *types.Type {
	var dims []int64
	for p.accept(token.LBracket) {
		n := p.expect(token.IntLit)
		dims = append(dims, n.IntVal)
		p.expect(token.RBracket)
	}
	t := base
	for i := len(dims) - 1; i >= 0; i-- {
		t = types.ArrayOf(t, dims[i])
	}
	return t
}

// startsType reports whether the current token can begin a type.
func (p *parser) startsType() bool {
	switch p.cur().Kind {
	case token.KwVoid, token.KwChar, token.KwInt, token.KwLong,
		token.KwFloat, token.KwDouble, token.KwUnsigned, token.KwStruct,
		token.KwConst:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	b := &ast.BlockStmt{LBrace: lb.Pos}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		start := p.pos
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.pos == start {
			p.next()
		}
	}
	p.expect(token.RBrace)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		kw := p.next()
		s := &ast.ReturnStmt{RetPos: kw.Pos}
		if !p.at(token.Semicolon) {
			s.Value = p.parseExpr()
		}
		p.expect(token.Semicolon)
		return s
	case token.KwBreak:
		kw := p.next()
		p.expect(token.Semicolon)
		return &ast.BreakStmt{KwPos: kw.Pos}
	case token.KwContinue:
		kw := p.next()
		p.expect(token.Semicolon)
		return &ast.ContinueStmt{KwPos: kw.Pos}
	case token.Semicolon:
		pos := p.next().Pos
		return &ast.BlockStmt{LBrace: pos} // empty statement
	case token.KwStatic:
		return p.parseDeclStmt()
	default:
		if p.startsType() {
			return p.parseDeclStmt()
		}
		x := p.parseExpr()
		p.expect(token.Semicolon)
		return &ast.ExprStmt{X: x}
	}
}

func (p *parser) parseDeclStmt() ast.Stmt {
	storage := ast.Auto
	if p.accept(token.KwStatic) {
		storage = ast.Static
	}
	base, ok := p.parseTypePrefix()
	if !ok {
		p.errorf(p.cur().Pos, "expected type in declaration")
		p.sync()
		return &ast.DeclStmt{}
	}
	ds := &ast.DeclStmt{}
	for {
		// Allow extra stars per declarator: `int *a, **b;`
		t := base
		for p.accept(token.Star) {
			t = types.PointerTo(t)
		}
		name := p.expect(token.Ident)
		t = p.parseArraySuffix(t)
		d := &ast.VarDecl{Name: name.Text, DeclType: t, NamePos: name.Pos, Storage: storage}
		if p.accept(token.Assign) {
			d.Init = p.parseAssignExpr()
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semicolon)
	return ds
}

func (p *parser) parseIf() ast.Stmt {
	kw := p.expect(token.KwIf)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{IfPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhile() ast.Stmt {
	kw := p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.WhileStmt{WhilePos: kw.Pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() ast.Stmt {
	kw := p.expect(token.KwFor)
	p.expect(token.LParen)
	s := &ast.ForStmt{ForPos: kw.Pos}
	if !p.at(token.Semicolon) {
		if p.startsType() {
			s.Init = p.parseDeclStmt() // consumes ';'
		} else {
			s.Init = &ast.ExprStmt{X: p.parseExpr()}
			p.expect(token.Semicolon)
		}
	} else {
		p.expect(token.Semicolon)
	}
	if !p.at(token.Semicolon) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.Semicolon)
	if !p.at(token.RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	s.Body = p.parseStmt()
	return s
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() ast.Expr {
	lhs := p.parseCondExpr()
	var op ast.BinOp
	switch p.cur().Kind {
	case token.Assign:
		op = ast.PlainAssign
	case token.AddAssign:
		op = ast.Add
	case token.SubAssign:
		op = ast.Sub
	case token.MulAssign:
		op = ast.Mul
	case token.DivAssign:
		op = ast.Div
	case token.ModAssign:
		op = ast.Mod
	case token.ShlAssign:
		op = ast.Shl
	case token.ShrAssign:
		op = ast.Shr
	case token.AndAssign:
		op = ast.BitAnd
	case token.OrAssign:
		op = ast.BitOr
	case token.XorAssign:
		op = ast.BitXor
	default:
		return lhs
	}
	opTok := p.next()
	rhs := p.parseAssignExpr()
	return &ast.Assign{Op: op, LHS: lhs, RHS: rhs, OpPos: opTok.Pos}
}

func (p *parser) parseCondExpr() ast.Expr {
	c := p.parseBinaryExpr(1)
	if !p.accept(token.Question) {
		return c
	}
	x := p.parseExpr()
	p.expect(token.Colon)
	y := p.parseCondExpr()
	return &ast.Cond{C: c, X: x, Y: y}
}

// binPrec returns the precedence of the binary operator at the current
// token, or 0 if it is not a binary operator. Higher binds tighter.
func binPrec(k token.Kind) (ast.BinOp, int) {
	switch k {
	case token.LOr:
		return ast.LogOr, 1
	case token.LAnd:
		return ast.LogAnd, 2
	case token.Or:
		return ast.BitOr, 3
	case token.Xor:
		return ast.BitXor, 4
	case token.Amp:
		return ast.BitAnd, 5
	case token.EqEq:
		return ast.Eq, 6
	case token.NotEq:
		return ast.Ne, 6
	case token.Lt:
		return ast.Lt, 7
	case token.Le:
		return ast.Le, 7
	case token.Gt:
		return ast.Gt, 7
	case token.Ge:
		return ast.Ge, 7
	case token.Shl:
		return ast.Shl, 8
	case token.Shr:
		return ast.Shr, 8
	case token.Add:
		return ast.Add, 9
	case token.Sub:
		return ast.Sub, 9
	case token.Star:
		return ast.Mul, 10
	case token.Div:
		return ast.Div, 10
	case token.Mod:
		return ast.Mod, 10
	}
	return 0, 0
}

func (p *parser) parseBinaryExpr(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op, prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		lhs = &ast.Binary{Op: op, X: lhs, Y: rhs, OpPos: opTok.Pos}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Sub:
		t := p.next()
		return &ast.Unary{Op: ast.Neg, X: p.parseUnary(), OpPos: t.Pos}
	case token.Not:
		t := p.next()
		return &ast.Unary{Op: ast.LogicalNot, X: p.parseUnary(), OpPos: t.Pos}
	case token.Tilde:
		t := p.next()
		return &ast.Unary{Op: ast.BitNot, X: p.parseUnary(), OpPos: t.Pos}
	case token.Star:
		t := p.next()
		return &ast.Unary{Op: ast.Deref, X: p.parseUnary(), OpPos: t.Pos}
	case token.Amp:
		t := p.next()
		return &ast.Unary{Op: ast.AddrOf, X: p.parseUnary(), OpPos: t.Pos}
	case token.Inc:
		t := p.next()
		return &ast.Unary{Op: ast.PreInc, X: p.parseUnary(), OpPos: t.Pos}
	case token.Dec:
		t := p.next()
		return &ast.Unary{Op: ast.PreDec, X: p.parseUnary(), OpPos: t.Pos}
	case token.KwSizeof:
		t := p.next()
		p.expect(token.LParen)
		st, ok := p.parseTypePrefix()
		if !ok {
			p.errorf(p.cur().Pos, "sizeof requires a type")
			st = types.IntType
		}
		st = p.parseArraySuffix(st)
		p.expect(token.RParen)
		return &ast.SizeofExpr{Of: st, KwPos: t.Pos}
	case token.LParen:
		// Cast `(type)expr` vs parenthesized expression.
		if p.isCastStart() {
			lp := p.next() // '('
			ct, _ := p.parseTypePrefix()
			p.expect(token.RParen)
			return &ast.CastExpr{To: ct, X: p.parseUnary(), LParen: lp.Pos}
		}
	}
	return p.parsePostfix()
}

// isCastStart looks ahead to distinguish `(int)x` from `(x)`.
func (p *parser) isCastStart() bool {
	if !p.at(token.LParen) {
		return false
	}
	switch p.peek().Kind {
	case token.KwVoid, token.KwChar, token.KwInt, token.KwLong,
		token.KwFloat, token.KwDouble, token.KwUnsigned, token.KwStruct,
		token.KwConst:
		return true
	}
	return false
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LParen:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf(p.cur().Pos, "call of non-identifier expression")
				id = &ast.Ident{Name: "<bad>", NamePos: x.Pos()}
			}
			lp := p.next()
			call := &ast.Call{Fun: id, LParen: lp.Pos}
			if !p.at(token.RParen) {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(token.Comma) {
						break
					}
				}
			}
			p.expect(token.RParen)
			x = call
		case token.LBracket:
			lb := p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.Index{X: x, Idx: idx, LBracket: lb.Pos}
		case token.Dot:
			d := p.next()
			name := p.expect(token.Ident)
			x = &ast.Member{X: x, Name: name.Text, DotPos: d.Pos}
		case token.Arrow:
			d := p.next()
			name := p.expect(token.Ident)
			x = &ast.Member{X: x, Name: name.Text, Arrow: true, DotPos: d.Pos}
		case token.Inc:
			t := p.next()
			x = &ast.Unary{Op: ast.PostInc, X: x, OpPos: t.Pos}
		case token.Dec:
			t := p.next()
			x = &ast.Unary{Op: ast.PostDec, X: x, OpPos: t.Pos}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IntLit:
		p.next()
		lit := &ast.IntLit{Value: t.IntVal, LitPos: t.Pos}
		switch {
		case t.Unsigned && t.Long:
			lit.SetType(types.ULongType)
		case t.Long:
			lit.SetType(types.LongType)
		case t.Unsigned:
			lit.SetType(types.UIntType)
		default:
			// Plain decimal literals too large for int become long,
			// matching C's rules closely enough for our corpus.
			if t.IntVal > 0x7fffffff || t.IntVal < -0x80000000 {
				lit.SetType(types.LongType)
			} else {
				lit.SetType(types.IntType)
			}
		}
		return lit
	case token.CharLit:
		p.next()
		lit := &ast.IntLit{Value: t.IntVal, LitPos: t.Pos}
		lit.SetType(types.IntType) // char literals have type int in C
		return lit
	case token.FloatLit:
		p.next()
		lit := &ast.FloatLit{Value: t.FloatVal, LitPos: t.Pos}
		lit.SetType(types.DoubleType)
		return lit
	case token.StrLit:
		p.next()
		lit := &ast.StrLit{Value: t.StrVal, LitPos: t.Pos}
		lit.SetType(types.PointerTo(types.CharType))
		return lit
	case token.KwLine:
		p.next()
		e := &ast.LineExpr{KwPos: t.Pos}
		e.SetType(types.IntType)
		return e
	case token.Ident:
		p.next()
		return &ast.Ident{Name: t.Text, NamePos: t.Pos}
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	bad := &ast.IntLit{Value: 0, LitPos: t.Pos}
	bad.SetType(types.IntType)
	return bad
}
