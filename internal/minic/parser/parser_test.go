package parser

import (
	"strings"
	"testing"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/types"
)

func TestParseSimpleFunction(t *testing.T) {
	prog, err := Parse(`
int add(int a, int b) {
    return a + b;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 {
		t.Fatalf("got %d funcs", len(prog.Funcs))
	}
	f := prog.Funcs[0]
	if f.Name != "add" || len(f.Params) != 2 || f.Result != types.IntType {
		t.Fatalf("bad func decl: %+v", f)
	}
	ret, ok := f.Body.Stmts[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("stmt[0] is %T", f.Body.Stmts[0])
	}
	bin, ok := ret.Value.(*ast.Binary)
	if !ok || bin.Op != ast.Add {
		t.Fatalf("return value is %T", ret.Value)
	}
}

func TestPrecedence(t *testing.T) {
	prog := MustParse(`int f() { return 1 + 2 * 3 == 7 && 4 < 5; }`)
	ret := prog.Funcs[0].Body.Stmts[0].(*ast.ReturnStmt)
	top, ok := ret.Value.(*ast.Binary)
	if !ok || top.Op != ast.LogAnd {
		t.Fatalf("top op = %v", top.Op)
	}
	eq := top.X.(*ast.Binary)
	if eq.Op != ast.Eq {
		t.Fatalf("left of && = %v, want ==", eq.Op)
	}
	add := eq.X.(*ast.Binary)
	if add.Op != ast.Add {
		t.Fatalf("left of == = %v, want +", add.Op)
	}
	mul := add.Y.(*ast.Binary)
	if mul.Op != ast.Mul {
		t.Fatalf("right of + = %v, want *", mul.Op)
	}
}

func TestPointerAndArrayDecls(t *testing.T) {
	prog := MustParse(`
int g[10];
char* s;
int** pp;
struct P { int x; int y; };
struct P pts[4];
int f(char* buf, int n) { return 0; }
`)
	if len(prog.Globals) != 4 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	if prog.Globals[0].DeclType.Kind != types.Array || prog.Globals[0].DeclType.Len != 10 {
		t.Fatalf("g type = %s", prog.Globals[0].DeclType)
	}
	if prog.Globals[1].DeclType.Kind != types.Ptr {
		t.Fatalf("s type = %s", prog.Globals[1].DeclType)
	}
	pp := prog.Globals[2].DeclType
	if pp.Kind != types.Ptr || pp.Elem.Kind != types.Ptr {
		t.Fatalf("pp type = %s", pp)
	}
	pts := prog.Globals[3].DeclType
	if pts.Kind != types.Array || pts.Elem.Kind != types.Struct || pts.Elem.Name != "P" {
		t.Fatalf("pts type = %s", pts)
	}
}

func TestCastVsParen(t *testing.T) {
	prog := MustParse(`
long f(int x) {
    long a = (long)x;
    long b = (x) + 1;
    char* p = (char*)0;
    return a + b;
}
`)
	body := prog.Funcs[0].Body.Stmts
	d0 := body[0].(*ast.DeclStmt).Decls[0]
	if _, ok := d0.Init.(*ast.CastExpr); !ok {
		t.Fatalf("a init is %T, want cast", d0.Init)
	}
	d1 := body[1].(*ast.DeclStmt).Decls[0]
	if _, ok := d1.Init.(*ast.Binary); !ok {
		t.Fatalf("b init is %T, want binary", d1.Init)
	}
	d2 := body[2].(*ast.DeclStmt).Decls[0]
	cast, ok := d2.Init.(*ast.CastExpr)
	if !ok || cast.To.Kind != types.Ptr {
		t.Fatalf("p init is %T", d2.Init)
	}
}

func TestControlFlow(t *testing.T) {
	prog := MustParse(`
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { s += i; } else { continue; }
        while (s > 100) { s -= 10; break; }
    }
    return s;
}
`)
	var fors, ifs, whiles int
	ast.Walk(prog.Funcs[0].Body, func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.ForStmt:
			fors++
		case *ast.IfStmt:
			ifs++
		case *ast.WhileStmt:
			whiles++
		}
		return true
	})
	if fors != 1 || ifs != 1 || whiles != 1 {
		t.Fatalf("fors=%d ifs=%d whiles=%d", fors, ifs, whiles)
	}
}

func TestStructMemberAccess(t *testing.T) {
	prog := MustParse(`
struct S { int a; char b; };
int f(struct S* p, struct S v) {
    return p->a + v.a;
}
`)
	ret := prog.Funcs[0].Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.Binary)
	m1 := bin.X.(*ast.Member)
	if !m1.Arrow || m1.Name != "a" {
		t.Fatalf("left member: arrow=%v name=%s", m1.Arrow, m1.Name)
	}
	m2 := bin.Y.(*ast.Member)
	if m2.Arrow || m2.Name != "a" {
		t.Fatalf("right member: arrow=%v name=%s", m2.Arrow, m2.Name)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	prog := MustParse(`int f(int a) { a += a > 0 ? 1 : 2; a <<= 3; return a; }`)
	s0 := prog.Funcs[0].Body.Stmts[0].(*ast.ExprStmt)
	as := s0.X.(*ast.Assign)
	if as.Op != ast.Add {
		t.Fatalf("op = %v", as.Op)
	}
	if _, ok := as.RHS.(*ast.Cond); !ok {
		t.Fatalf("rhs = %T", as.RHS)
	}
	s1 := prog.Funcs[0].Body.Stmts[1].(*ast.ExprStmt)
	if s1.X.(*ast.Assign).Op != ast.Shl {
		t.Fatal("second assign not <<=")
	}
}

func TestSizeofAndLine(t *testing.T) {
	prog := MustParse(`long f() { return sizeof(int) + sizeof(char*) + __LINE__; }`)
	var sizeofs, lines int
	ast.WalkExprs(prog.Funcs[0].Body, func(e ast.Expr) {
		switch e.(type) {
		case *ast.SizeofExpr:
			sizeofs++
		case *ast.LineExpr:
			lines++
		}
	})
	if sizeofs != 2 || lines != 1 {
		t.Fatalf("sizeofs=%d lines=%d", sizeofs, lines)
	}
}

func TestStaticLocal(t *testing.T) {
	prog := MustParse(`char* f() { static char buf[16]; return buf; }`)
	ds := prog.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	if ds.Decls[0].Storage != ast.Static {
		t.Fatal("buf should be static")
	}
}

func TestUnaryOperators(t *testing.T) {
	prog := MustParse(`int f(int x, int* p) { return -x + !x + ~x + *p + (&x == p) + x++ + ++x; }`)
	ops := map[ast.UnaryOp]int{}
	ast.WalkExprs(prog.Funcs[0].Body, func(e ast.Expr) {
		if u, ok := e.(*ast.Unary); ok {
			ops[u.Op]++
		}
	})
	for _, op := range []ast.UnaryOp{ast.Neg, ast.LogicalNot, ast.BitNot, ast.Deref, ast.AddrOf, ast.PostInc, ast.PreInc} {
		if ops[op] != 1 {
			t.Errorf("op %v count = %d, want 1", op, ops[op])
		}
	}
}

func TestSyntaxErrorsReported(t *testing.T) {
	cases := []string{
		"int f( { }",
		"int f() { return 1 }",
		"int f() { if x { } }",
		"struct { int x; };",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// Round trip: print(parse(src)) must reparse to a program that prints
// identically (a fixed point after one iteration).
func TestPrintRoundTrip(t *testing.T) {
	src := `
struct Pkt {
    int len;
    char data[16];
};
int counter;
char* label = "hi\n";
int sum(int a, int b) {
    return a + b;
}
int main() {
    struct Pkt p;
    p.len = sum(1, 2) * 3;
    int i = 0;
    for (int j = 0; j < 4; j++) {
        p.data[j] = (char)(j + 48);
        i += j > 1 ? j : -j;
    }
    while (i > 0) {
        i--;
        if (i == 2) { break; }
    }
    printf("%d %d\n", p.len, i);
    return 0;
}
`
	p1 := MustParse(src)
	out1 := ast.Print(p1)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, out1)
	}
	out2 := ast.Print(p2)
	if out1 != out2 {
		t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "struct Pkt") {
		t.Fatal("printed output lost struct decl")
	}
}

func TestEvalOrderExampleParses(t *testing.T) {
	// The paper's Listing 3 shape: two calls with conflicting side
	// effects as arguments of the same call.
	MustParse(`
static char buffer[32];
char* get_str(int v) {
    buffer[0] = (char)(48 + v);
    buffer[1] = '\0';
    return buffer;
}
int main() {
    printf("who-is %s tell %s\n", get_str(1), get_str(2));
    return 0;
}
`)
}
