package parser

import "testing"

// FuzzParse drives the MiniC front end (lexer + parser) with
// arbitrary byte strings: whatever the bytes are, Parse must either
// return a program or an error — never panic, never return both
// nil. Run as a smoke test in CI (`make fuzz-smoke`) and at length
// with `go test -fuzz=FuzzParse ./internal/minic/parser`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int main() { int x; printf(\"%d\\n\", x); return 0; }",
		`int f(int a, int b) { return a + b; }
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 8) { return 0; }
    printf("%d\n", f(buf[0], buf[1]));
    return 0;
}`,
		"int g = 42; int main() { for (;;) { break; } return g; }",
		"struct p { int x; int y; }; int main() { struct p q; q.x = 1; return q.x; }",
		"int main() { char* s = (char*)malloc(8L); strcpy(s, \"hi\"); free(s); return 0; }",
		"int main() { int a[4]; a[9] = 1; return a[9]; }",
		"int main() { return 1 << 40; }",
		"/* unterminated",
		"int main( {",
		"\"string at top level\"",
		"int main() { double d = pow(2.0, 10.0); printf(\"%f\\n\", d); return 0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Parse may return a partial AST alongside an error; the only
		// hard invariants are "no panic" and "success implies a
		// program".
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
	})
}
