package sema

import (
	"strings"
	"testing"
)

// Additional semantic-analysis edges: struct-by-value restrictions,
// cast rules, conversion warnings, and operator typing corners.

func TestStructByValueRestrictions(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"param", `
struct S { int a; };
int f(struct S s) { return s.a; }
int main() { return 0; }`, "passes a struct by value"},
		{"return", `
struct S { int a; };
struct S f() { struct S s; s.a = 1; return s; }
int main() { return 0; }`, "returns a struct by value"},
		{"assign", `
struct S { int a; };
int main() {
    struct S a;
    struct S b;
    a.a = 1;
    b = a;
    return b.a;
}`, "cannot use struct S as struct S"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := check(t, c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestCastToStructValueRejected(t *testing.T) {
	_, err := check(t, `
struct S { int a; };
int main() {
    int x = 1;
    struct S s = (struct S)x;
    return 0;
}`)
	if err == nil || !strings.Contains(err.Error(), "cannot cast to struct") {
		t.Fatalf("err = %v", err)
	}
}

func TestImplicitPointerConversionsWarn(t *testing.T) {
	info := mustCheck(t, `
int main() {
    int x = 5;
    long* lp = &x;
    int addr = lp;
    char* cp = 1234;
    printf("%d %d %d\n", addr, *cp & 0, lp != 0);
    return 0;
}`)
	var ptrToPtr, intFromPtr, ptrFromInt bool
	for _, w := range info.Warnings {
		if strings.Contains(w, "converts int* to long*") {
			ptrToPtr = true
		}
		if strings.Contains(w, "integer from pointer") {
			intFromPtr = true
		}
		if strings.Contains(w, "pointer from integer") {
			ptrFromInt = true
		}
	}
	_ = ptrFromInt // integer constants assigned to pointers are accepted as NULL-like
	if !ptrToPtr || !intFromPtr {
		t.Fatalf("warnings = %v", info.Warnings)
	}
}

func TestVoidPointerConvertsSilently(t *testing.T) {
	info := mustCheck(t, `
int main() {
    int* p = (int*)malloc(8L);
    void* v = p;
    int* q = v;
    if (q != 0) { free(q); }
    return 0;
}`)
	for _, w := range info.Warnings {
		if strings.Contains(w, "converts") {
			t.Fatalf("void* conversion warned: %v", info.Warnings)
		}
	}
}

func TestTernaryTypeRules(t *testing.T) {
	mustCheck(t, `
int main() {
    int a = 1;
    char* s = a > 0 ? "yes" : 0;
    long n = a > 0 ? 1 : 2L;
    printf("%s %ld\n", s, n);
    return 0;
}`)
	_, err := check(t, `
struct S { int a; };
int main() {
    struct S s;
    s.a = 1;
    int x = 1 ? s : s;
    return x;
}`)
	if err == nil || !strings.Contains(err.Error(), "incompatible ?: operands") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnaryOperatorTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { char* p = "x"; char* q = -p; return 0; }`, "invalid operand type"},
		{`int main() { double d = 1.5; return ~d; }`, "invalid operand type"},
		{`int main() { return ++3; }`, "requires an lvalue"},
		{`int main() { int x = 1; return &x + &x; }`, "invalid operands"},
	}
	for _, c := range cases {
		_, err := check(t, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestIndexingErrors(t *testing.T) {
	_, err := check(t, `int main() { int x = 1; return x[0]; }`)
	if err == nil || !strings.Contains(err.Error(), "indexing non-pointer") {
		t.Fatalf("err = %v", err)
	}
	_, err = check(t, `int main() { void* v = 0; return v[0]; }`)
	if err == nil || !strings.Contains(err.Error(), "indexing void pointer") {
		t.Fatalf("err = %v", err)
	}
	_, err = check(t, `int main() { int a[3]; char* s = "x"; return a[s]; }`)
	if err == nil || !strings.Contains(err.Error(), "index must be integer") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuiltinArityChecked(t *testing.T) {
	_, err := check(t, `int main() { free(); return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "expects 1 args") {
		t.Fatalf("err = %v", err)
	}
	_, err = check(t, `int main() { return input_size(1L); }`)
	if err == nil || !strings.Contains(err.Error(), "expects 0 args") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrintfVarargsMustBeScalar(t *testing.T) {
	_, err := check(t, `
struct S { int a; };
int main() {
    struct S s;
    s.a = 1;
    printf("%d\n", s);
    return 0;
}`)
	if err == nil || !strings.Contains(err.Error(), "must be scalar") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompoundAssignTypeErrors(t *testing.T) {
	_, err := check(t, `int main() { char* p = "x"; p *= 2; return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "invalid compound assignment") {
		t.Fatalf("err = %v", err)
	}
	// p += int is fine.
	mustCheck(t, `int main() { char* p = "xy"; p += 1; return *p; }`)
}

func TestForScopeIsolated(t *testing.T) {
	_, err := check(t, `
int main() {
    for (int i = 0; i < 3; i++) { }
    return i;
}`)
	if err == nil || !strings.Contains(err.Error(), "undefined: i") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedBlockShadowing(t *testing.T) {
	mustCheck(t, `
int main() {
    int x = 1;
    {
        long x = 2L;
        printf("%ld\n", x);
    }
    printf("%d\n", x);
    return 0;
}`)
}

func TestIncompleteStructField(t *testing.T) {
	_, err := check(t, `
struct A { struct B inner; };
int main() { return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "incomplete struct") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateStructAndParams(t *testing.T) {
	_, err := check(t, "struct S { int a; };\nstruct S { int b; };\nint main() { return 0; }")
	if err == nil || !strings.Contains(err.Error(), "duplicate struct") {
		t.Fatalf("err = %v", err)
	}
	_, err = check(t, `int f(int a, int a) { return a; } int main() { return f(1, 2); }`)
	if err == nil || !strings.Contains(err.Error(), "duplicate parameter") {
		t.Fatalf("err = %v", err)
	}
}
