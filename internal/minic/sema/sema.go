// Package sema performs semantic analysis of MiniC programs: name
// resolution, type checking, struct layout, and the bookkeeping the
// compilers and static analyzers build on (symbol tables, per-function
// local lists, statement-line attribution for __LINE__).
package sema

import (
	"errors"
	"fmt"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/token"
	"compdiff/internal/minic/types"
)

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Info is the result of checking a program. It owns the symbol tables
// the back ends consume.
type Info struct {
	Prog *ast.Program

	// Funcs maps function names to their declarations.
	Funcs map[string]*ast.FuncDecl

	// Globals lists global variables and static locals, in allocation
	// order. Static locals are appended after true globals.
	Globals []*ast.Symbol

	// Locals maps each function to its local variable symbols (not
	// including params), in declaration order.
	Locals map[*ast.FuncDecl][]*ast.Symbol

	// Params maps each function to its parameter symbols.
	Params map[*ast.FuncDecl][]*ast.Symbol

	// Warnings are non-fatal findings (arity mismatches, suspicious
	// pointer conversions) in a stable order; the static analyzers and
	// some Juliet ground-truth checks read them.
	Warnings []string
}

// Check type-checks prog, mutating the AST in place (resolving symbols
// and assigning types). It returns the analysis Info, or an error
// joining every semantic problem found.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:   prog,
			Funcs:  map[string]*ast.FuncDecl{},
			Locals: map[*ast.FuncDecl][]*ast.Symbol{},
			Params: map[*ast.FuncDecl][]*ast.Symbol{},
		},
		globalScope: newScope(nil),
	}
	c.program(prog)
	if len(c.errs) > 0 {
		errs := make([]error, len(c.errs))
		for i, e := range c.errs {
			errs[i] = e
		}
		return c.info, errors.Join(errs...)
	}
	return c.info, nil
}

// MustCheck checks a known-good program, panicking on error. Used by
// the generated corpora.
func MustCheck(prog *ast.Program) *Info {
	info, err := Check(prog)
	if err != nil {
		panic(fmt.Sprintf("minic: check of known-good program failed: %v", err))
	}
	return info
}

type scope struct {
	parent *scope
	syms   map[string]*ast.Symbol
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, syms: map[string]*ast.Symbol{}}
}

func (s *scope) lookup(name string) *ast.Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	info        *Info
	errs        []*Error
	globalScope *scope

	fn        *ast.FuncDecl // current function
	scope     *scope
	loopDepth int
	stmtLine  int // line of the statement being checked (__LINE__)
	nextLocal int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) warnf(pos token.Pos, format string, args ...any) {
	c.info.Warnings = append(c.info.Warnings, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) program(prog *ast.Program) {
	// Pass 1: struct bodies.
	seen := map[string]bool{}
	for _, sd := range prog.Structs {
		if seen[sd.Name] {
			c.errorf(sd.NamePos, "duplicate struct %s", sd.Name)
			continue
		}
		seen[sd.Name] = true
	}
	for _, sd := range prog.Structs {
		var fields []types.Field
		for _, f := range sd.Fields {
			if f.DeclType.Kind == types.Struct && len(f.DeclType.Fields) == 0 {
				c.errorf(f.NamePos, "field %s has incomplete struct type %s", f.Name, f.DeclType)
				continue
			}
			fields = append(fields, types.Field{Name: f.Name, Type: f.DeclType})
		}
		// Find the placeholder type used by the parser for this name, via
		// any field/global referencing it; simplest is: the StructDecl's
		// own placeholder is reachable through decl type uses. We rebuild
		// by locating the shared placeholder through a registry pass.
		t := c.findStructPlaceholder(prog, sd.Name)
		if t == nil {
			t = &types.Type{Kind: types.Struct, Name: sd.Name}
		}
		t.SetStructBody(fields)
		sd.Type = t
	}

	// Pass 2: function signatures (so calls resolve regardless of order).
	for _, f := range prog.Funcs {
		if _, dup := c.info.Funcs[f.Name]; dup {
			c.errorf(f.NamePos, "duplicate function %s", f.Name)
			continue
		}
		if _, isBuiltin := builtinByName[f.Name]; isBuiltin {
			c.errorf(f.NamePos, "function %s shadows a builtin", f.Name)
			continue
		}
		if f.Result.Kind == types.Struct {
			c.errorf(f.NamePos, "function %s returns a struct by value (unsupported; return a pointer)", f.Name)
		}
		for _, p := range f.Params {
			if p.DeclType.Kind == types.Struct {
				c.errorf(p.NamePos, "parameter %s passes a struct by value (unsupported; pass a pointer)", p.Name)
			}
		}
		var params []*types.Type
		for _, p := range f.Params {
			params = append(params, p.DeclType)
		}
		f.Type = types.NewFunc(f.Result, params)
		c.info.Funcs[f.Name] = f
		sym := &ast.Symbol{Kind: ast.SymFunc, Name: f.Name, Type: f.Type, Func: f}
		c.globalScope.syms[f.Name] = sym
	}

	// Pass 3: globals.
	for _, g := range prog.Globals {
		c.declareGlobal(g, ast.SymGlobal)
	}

	// Pass 4: function bodies.
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
}

// findStructPlaceholder locates the parser-interned struct type object
// for name by scanning declared types in the program.
func (c *checker) findStructPlaceholder(prog *ast.Program, name string) *types.Type {
	var found *types.Type
	visit := func(t *types.Type) {
		for t != nil {
			if t.Kind == types.Struct && t.Name == name {
				found = t
				return
			}
			t = t.Elem
		}
	}
	for _, sd := range prog.Structs {
		for _, f := range sd.Fields {
			visit(f.DeclType)
		}
	}
	for _, g := range prog.Globals {
		visit(g.DeclType)
	}
	for _, f := range prog.Funcs {
		visit(f.Result)
		for _, p := range f.Params {
			visit(p.DeclType)
		}
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			if ds, ok := s.(*ast.DeclStmt); ok {
				for _, d := range ds.Decls {
					visit(d.DeclType)
				}
			}
			return true
		})
		ast.WalkExprs(f.Body, func(e ast.Expr) {
			if ce, ok := e.(*ast.CastExpr); ok {
				visit(ce.To)
			}
		})
	}
	return found
}

func (c *checker) declareGlobal(g *ast.VarDecl, kind ast.SymbolKind) {
	if g.DeclType.IsVoid() {
		c.errorf(g.NamePos, "variable %s has void type", g.Name)
		return
	}
	if kind == ast.SymGlobal {
		if _, exists := c.globalScope.syms[g.Name]; exists {
			c.errorf(g.NamePos, "duplicate global %s", g.Name)
			return
		}
	}
	sym := &ast.Symbol{Kind: kind, Name: g.Name, Type: g.DeclType, Index: len(c.info.Globals)}
	g.Sym = sym
	c.info.Globals = append(c.info.Globals, sym)
	if kind == ast.SymGlobal {
		c.globalScope.syms[g.Name] = sym
		if g.Init != nil {
			t := c.expr(g.Init)
			c.checkAssignable(g.NamePos, g.DeclType, t, "global initializer")
			if !isConstExpr(g.Init) {
				c.errorf(g.NamePos, "global initializer for %s must be constant", g.Name)
			}
		}
	}
}

func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.SizeofExpr:
		return true
	case *ast.Unary:
		return (e.Op == ast.Neg || e.Op == ast.BitNot || e.Op == ast.LogicalNot) && isConstExpr(e.X)
	case *ast.Binary:
		return isConstExpr(e.X) && isConstExpr(e.Y)
	case *ast.CastExpr:
		return isConstExpr(e.X)
	}
	return false
}

func (c *checker) checkFunc(f *ast.FuncDecl) {
	c.fn = f
	c.nextLocal = 0
	c.scope = newScope(c.globalScope)
	for _, p := range f.Params {
		if p.DeclType.IsVoid() {
			c.errorf(p.NamePos, "parameter %s has void type", p.Name)
			continue
		}
		sym := &ast.Symbol{Kind: ast.SymParam, Name: p.Name, Type: p.DeclType, Index: len(c.info.Params[f])}
		p.Sym = sym
		c.info.Params[f] = append(c.info.Params[f], sym)
		if _, dup := c.scope.syms[p.Name]; dup {
			c.errorf(p.NamePos, "duplicate parameter %s", p.Name)
		}
		c.scope.syms[p.Name] = sym
	}
	c.block(f.Body, false)
	c.fn = nil
	c.scope = nil
}

func (c *checker) block(b *ast.BlockStmt, newScope_ bool) {
	if newScope_ {
		c.scope = newScope(c.scope)
		defer func() { c.scope = c.scope.parent }()
	}
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	if line := s.Pos().Line; line > 0 {
		c.stmtLine = line
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s, true)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			c.declareLocal(d)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.IfStmt:
		t := c.expr(s.Cond)
		c.requireScalar(s.Cond.Pos(), t, "if condition")
		c.stmt(s.Then)
		c.stmt(s.Else)
	case *ast.WhileStmt:
		t := c.expr(s.Cond)
		c.requireScalar(s.Cond.Pos(), t, "while condition")
		c.loopDepth++
		c.stmt(s.Body)
		c.loopDepth--
	case *ast.ForStmt:
		c.scope = newScope(c.scope)
		c.stmt(s.Init)
		if s.Cond != nil {
			t := c.expr(s.Cond)
			c.requireScalar(s.Cond.Pos(), t, "for condition")
		}
		if s.Post != nil {
			c.expr(s.Post)
		}
		c.loopDepth++
		c.stmt(s.Body)
		c.loopDepth--
		c.scope = c.scope.parent
	case *ast.ReturnStmt:
		want := c.fn.Result
		if s.Value == nil {
			if !want.IsVoid() {
				c.errorf(s.RetPos, "missing return value in %s (returns %s)", c.fn.Name, want)
			}
			return
		}
		if want.IsVoid() {
			c.errorf(s.RetPos, "returning a value from void function %s", c.fn.Name)
			return
		}
		got := c.expr(s.Value)
		c.checkAssignable(s.RetPos, want, got, "return value")
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.KwPos, "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.KwPos, "continue outside loop")
		}
	}
}

func (c *checker) declareLocal(d *ast.VarDecl) {
	if d.DeclType.IsVoid() {
		c.errorf(d.NamePos, "variable %s has void type", d.Name)
		return
	}
	var sym *ast.Symbol
	if d.Storage == ast.Static {
		// A C static local: one shared instance, allocated with globals.
		sym = &ast.Symbol{Kind: ast.SymStaticLocal, Name: c.fn.Name + "." + d.Name,
			Type: d.DeclType, Index: len(c.info.Globals)}
		c.info.Globals = append(c.info.Globals, sym)
	} else {
		sym = &ast.Symbol{Kind: ast.SymLocal, Name: d.Name, Type: d.DeclType, Index: c.nextLocal}
		c.nextLocal++
		c.info.Locals[c.fn] = append(c.info.Locals[c.fn], sym)
	}
	d.Sym = sym
	if _, dup := c.scope.syms[d.Name]; dup {
		c.errorf(d.NamePos, "redeclaration of %s in the same scope", d.Name)
	}
	c.scope.syms[d.Name] = sym
	if d.Init != nil {
		t := c.expr(d.Init)
		c.checkAssignable(d.NamePos, d.DeclType, t, "initializer")
		if d.Storage == ast.Static && !isConstExpr(d.Init) {
			c.errorf(d.NamePos, "static local initializer for %s must be constant", d.Name)
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions

// expr type-checks e and returns its (decayed) type.
func (c *checker) expr(e ast.Expr) *types.Type {
	t := c.exprNoDecay(e)
	if t.Kind == types.Array {
		t = types.PointerTo(t.Elem)
		setType(e, t)
	}
	return t
}

func setType(e ast.Expr, t *types.Type) {
	type setter interface{ SetType(*types.Type) }
	if s, ok := e.(setter); ok {
		s.SetType(t)
	}
}

var invalid = &types.Type{Kind: types.Invalid}

func (c *checker) exprNoDecay(e ast.Expr) *types.Type {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StrLit:
		return e.Type()
	case *ast.LineExpr:
		e.StmtLine = c.stmtLine
		if e.StmtLine == 0 {
			e.StmtLine = e.KwPos.Line
		}
		return e.Type()
	case *ast.Ident:
		sym := c.scope.lookup(e.Name)
		if sym == nil {
			c.errorf(e.NamePos, "undefined: %s", e.Name)
			setType(e, invalid)
			return invalid
		}
		if sym.Kind == ast.SymFunc {
			c.errorf(e.NamePos, "function %s used as value", e.Name)
			setType(e, invalid)
			return invalid
		}
		e.Sym = sym
		setType(e, sym.Type)
		return sym.Type
	case *ast.Unary:
		return c.unary(e)
	case *ast.Binary:
		return c.binary(e)
	case *ast.Assign:
		return c.assign(e)
	case *ast.Cond:
		ct := c.expr(e.C)
		c.requireScalar(e.C.Pos(), ct, "?: condition")
		xt := c.expr(e.X)
		yt := c.expr(e.Y)
		var t *types.Type
		switch {
		case xt.IsArithmetic() && yt.IsArithmetic():
			t = types.Common(xt, yt)
		case xt.IsPtr() && yt.IsPtr():
			t = xt
		case xt.IsPtr() && yt.IsInteger():
			t = xt
		case yt.IsPtr() && xt.IsInteger():
			t = yt
		default:
			if xt.Kind != types.Invalid && yt.Kind != types.Invalid {
				c.errorf(e.Pos(), "incompatible ?: operands %s and %s", xt, yt)
			}
			t = invalid
		}
		setType(e, t)
		return t
	case *ast.Call:
		return c.call(e)
	case *ast.Index:
		xt := c.expr(e.X)
		it := c.expr(e.Idx)
		if !it.IsInteger() {
			c.errorf(e.Idx.Pos(), "array index must be integer, got %s", it)
		}
		if !xt.IsPtr() {
			if xt.Kind != types.Invalid {
				c.errorf(e.X.Pos(), "indexing non-pointer type %s", xt)
			}
			setType(e, invalid)
			return invalid
		}
		if xt.Elem.IsVoid() {
			c.errorf(e.X.Pos(), "indexing void pointer")
			setType(e, invalid)
			return invalid
		}
		setType(e, xt.Elem)
		return xt.Elem
	case *ast.Member:
		return c.member(e)
	case *ast.CastExpr:
		xt := c.expr(e.X)
		to := e.To
		if to.Kind == types.Struct {
			c.errorf(e.Pos(), "cannot cast to struct type %s by value", to)
		}
		// Int<->ptr, ptr<->ptr, arithmetic conversions are all permitted
		// by explicit cast, as in C. Flag the ones analyzers care about.
		if xt.IsPtr() && to.IsPtr() && to.Elem.Kind == types.Struct && xt.Elem.Kind != types.Struct && !xt.Elem.IsVoid() {
			c.warnf(e.Pos(), "cast of %s to %s may access a child of a non-struct object", xt, to)
		}
		setType(e, to)
		return to
	case *ast.SizeofExpr:
		setType(e, types.LongType)
		return types.LongType
	}
	c.errorf(e.Pos(), "unexpected expression %T", e)
	return invalid
}

func (c *checker) unary(e *ast.Unary) *types.Type {
	switch e.Op {
	case ast.Neg, ast.BitNot:
		t := c.expr(e.X)
		if !t.IsArithmetic() || (e.Op == ast.BitNot && !t.IsInteger()) {
			if t.Kind != types.Invalid {
				c.errorf(e.OpPos, "invalid operand type %s for unary %s", t, e.Op)
			}
			setType(e, invalid)
			return invalid
		}
		r := types.Promote(t)
		setType(e, r)
		return r
	case ast.LogicalNot:
		t := c.expr(e.X)
		c.requireScalar(e.OpPos, t, "operand of !")
		setType(e, types.IntType)
		return types.IntType
	case ast.Deref:
		t := c.expr(e.X)
		if !t.IsPtr() {
			if t.Kind != types.Invalid {
				c.errorf(e.OpPos, "dereference of non-pointer type %s", t)
			}
			setType(e, invalid)
			return invalid
		}
		if t.Elem.IsVoid() {
			c.errorf(e.OpPos, "dereference of void pointer")
			setType(e, invalid)
			return invalid
		}
		setType(e, t.Elem)
		return t.Elem
	case ast.AddrOf:
		t := c.exprNoDecay(e.X)
		if !c.isLvalue(e.X) {
			c.errorf(e.OpPos, "cannot take address of non-lvalue")
			setType(e, invalid)
			return invalid
		}
		var r *types.Type
		if t.Kind == types.Array {
			r = types.PointerTo(t.Elem) // &arr == &arr[0] in MiniC
		} else {
			r = types.PointerTo(t)
		}
		setType(e, r)
		return r
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		t := c.expr(e.X)
		if !c.isLvalue(e.X) {
			c.errorf(e.OpPos, "%s requires an lvalue", e.Op)
		}
		if !t.IsArithmetic() && !t.IsPtr() {
			if t.Kind != types.Invalid {
				c.errorf(e.OpPos, "invalid operand type %s for %s", t, e.Op)
			}
			setType(e, invalid)
			return invalid
		}
		setType(e, t)
		return t
	}
	setType(e, invalid)
	return invalid
}

func (c *checker) isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Sym != nil && e.Sym.Kind != ast.SymFunc
	case *ast.Unary:
		return e.Op == ast.Deref
	case *ast.Index:
		return true
	case *ast.Member:
		if e.Arrow {
			return true
		}
		return c.isLvalue(e.X)
	}
	return false
}

func (c *checker) binary(e *ast.Binary) *types.Type {
	xt := c.expr(e.X)
	yt := c.expr(e.Y)
	if xt.Kind == types.Invalid || yt.Kind == types.Invalid {
		setType(e, invalid)
		return invalid
	}
	switch e.Op {
	case ast.LogAnd, ast.LogOr:
		c.requireScalar(e.X.Pos(), xt, "logical operand")
		c.requireScalar(e.Y.Pos(), yt, "logical operand")
		setType(e, types.IntType)
		return types.IntType
	case ast.Eq, ast.Ne, ast.Lt, ast.Le, ast.Gt, ast.Ge:
		switch {
		case xt.IsArithmetic() && yt.IsArithmetic():
			e.CommonType = types.Common(xt, yt)
		case xt.IsPtr() && yt.IsPtr():
			e.CommonType = xt // pointer comparison: relational ones may be UB
		case xt.IsPtr() && yt.IsInteger(), yt.IsPtr() && xt.IsInteger():
			// Comparison against 0 (NULL) is the common well-formed case.
			e.CommonType = types.ULongType
		default:
			c.errorf(e.OpPos, "invalid comparison between %s and %s", xt, yt)
			setType(e, invalid)
			return invalid
		}
		setType(e, types.IntType)
		return types.IntType
	case ast.Add:
		if xt.IsPtr() && yt.IsInteger() {
			setType(e, xt)
			return xt
		}
		if yt.IsPtr() && xt.IsInteger() {
			setType(e, yt)
			return yt
		}
	case ast.Sub:
		if xt.IsPtr() && yt.IsInteger() {
			setType(e, xt)
			return xt
		}
		if xt.IsPtr() && yt.IsPtr() {
			// Pointer difference; UB if pointers address different objects
			// (CWE-469 material).
			e.CommonType = types.LongType
			setType(e, types.LongType)
			return types.LongType
		}
	}
	// Remaining cases are plain arithmetic/bitwise operations.
	if !xt.IsArithmetic() || !yt.IsArithmetic() {
		c.errorf(e.OpPos, "invalid operands %s and %s for %s", xt, yt, e.Op)
		setType(e, invalid)
		return invalid
	}
	switch e.Op {
	case ast.Mod, ast.Shl, ast.Shr, ast.BitAnd, ast.BitOr, ast.BitXor:
		if !xt.IsInteger() || !yt.IsInteger() {
			c.errorf(e.OpPos, "operator %s requires integers, got %s and %s", e.Op, xt, yt)
			setType(e, invalid)
			return invalid
		}
	}
	var common *types.Type
	if e.Op == ast.Shl || e.Op == ast.Shr {
		// Shift result has the promoted type of the left operand only.
		common = types.Promote(xt)
	} else {
		common = types.Common(xt, yt)
	}
	e.CommonType = common
	setType(e, common)
	return common
}

func (c *checker) assign(e *ast.Assign) *types.Type {
	lt := c.expr(e.LHS)
	rt := c.expr(e.RHS)
	if !c.isLvalue(e.LHS) {
		c.errorf(e.OpPos, "assignment to non-lvalue")
	}
	if e.Op == ast.PlainAssign {
		c.checkAssignable(e.OpPos, lt, rt, "assignment")
	} else {
		// Compound assignment: LHS op RHS must be well-typed.
		if lt.IsPtr() && (e.Op == ast.Add || e.Op == ast.Sub) && rt.IsInteger() {
			// p += n is fine.
		} else if !lt.IsArithmetic() || !rt.IsArithmetic() {
			if lt.Kind != types.Invalid && rt.Kind != types.Invalid {
				c.errorf(e.OpPos, "invalid compound assignment %s= between %s and %s", e.Op, lt, rt)
			}
		}
	}
	setType(e, lt)
	return lt
}

func (c *checker) member(e *ast.Member) *types.Type {
	var st *types.Type
	if e.Arrow {
		xt := c.expr(e.X)
		if !xt.IsPtr() || xt.Elem.Kind != types.Struct {
			if xt.Kind != types.Invalid {
				c.errorf(e.DotPos, "-> on non-struct-pointer type %s", xt)
			}
			setType(e, invalid)
			return invalid
		}
		st = xt.Elem
	} else {
		xt := c.exprNoDecay(e.X)
		if xt.Kind != types.Struct {
			if xt.Kind != types.Invalid {
				c.errorf(e.DotPos, ". on non-struct type %s", xt)
			}
			setType(e, invalid)
			return invalid
		}
		st = xt
	}
	f, ok := st.FieldByName(e.Name)
	if !ok {
		c.errorf(e.DotPos, "struct %s has no field %s", st.Name, e.Name)
		setType(e, invalid)
		return invalid
	}
	e.Field = f
	setType(e, f.Type)
	return f.Type
}

func (c *checker) call(e *ast.Call) *types.Type {
	name := e.Fun.Name
	// Builtins take precedence (they cannot be shadowed).
	if id, ok := builtinByName[name]; ok {
		sig := Builtins[id]
		e.Fun.Sym = &ast.Symbol{Kind: ast.SymBuiltin, Name: name, Builtin: id}
		if len(e.Args) < len(sig.Params) || (!sig.Varargs && len(e.Args) > len(sig.Params)) {
			c.errorf(e.LParen, "builtin %s expects %d args, got %d", name, len(sig.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.expr(a)
			if i < len(sig.Params) {
				c.checkAssignable(a.Pos(), sig.Params[i], at, fmt.Sprintf("argument %d of %s", i+1, name))
			} else if !at.IsScalar() {
				c.errorf(a.Pos(), "vararg %d of %s must be scalar, got %s", i+1, name, at)
			}
		}
		setType(e, sig.Result)
		return sig.Result
	}
	fn, ok := c.info.Funcs[name]
	if !ok {
		c.errorf(e.Fun.NamePos, "call of undefined function %s", name)
		setType(e, invalid)
		return invalid
	}
	e.Fun.Sym = c.globalScope.syms[name]
	if len(e.Args) != len(fn.Params) {
		// Permitted, as with pre-C99 implicit declarations: missing
		// parameters are read from uninitialized stack memory at run
		// time (CWE-685, undefined behavior).
		e.ArityMismatch = true
		c.warnf(e.LParen, "call of %s with %d args but %d declared (undefined behavior)", name, len(e.Args), len(fn.Params))
	}
	for i, a := range e.Args {
		at := c.expr(a)
		if i < len(fn.Params) {
			c.checkAssignable(a.Pos(), fn.Params[i].DeclType, at, fmt.Sprintf("argument %d of %s", i+1, name))
		}
	}
	setType(e, fn.Result)
	return fn.Result
}

func (c *checker) requireScalar(pos token.Pos, t *types.Type, what string) {
	if t.Kind != types.Invalid && !t.IsScalar() {
		c.errorf(pos, "%s must be scalar, got %s", what, t)
	}
}

// checkAssignable validates that a value of type `from` can initialize
// a location of type `to`, with C-like permissiveness.
func (c *checker) checkAssignable(pos token.Pos, to, from *types.Type, what string) {
	if to == nil || from == nil || to.Kind == types.Invalid || from.Kind == types.Invalid {
		return
	}
	switch {
	case to.IsArithmetic() && from.IsArithmetic():
		return
	case to.IsPtr() && from.IsPtr():
		if to.Elem.IsVoid() || from.Elem.IsVoid() || types.Equal(to, from) {
			return
		}
		c.warnf(pos, "%s converts %s to %s without a cast", what, from, to)
		return
	case to.IsPtr() && from.IsInteger():
		if lit, ok := literalZero(from, pos); ok {
			_ = lit // NULL constant
			return
		}
		c.warnf(pos, "%s makes pointer from integer without a cast", what)
		return
	case to.IsInteger() && from.IsPtr():
		c.warnf(pos, "%s makes integer from pointer without a cast", what)
		return
	}
	c.errorf(pos, "%s: cannot use %s as %s", what, from, to)
}

// literalZero is a loose NULL-constant check; MiniC treats any integer
// expression assigned to a pointer as acceptable, warning otherwise.
func literalZero(t *types.Type, _ token.Pos) (bool, bool) {
	return t.IsInteger(), t.IsInteger()
}
