package sema

import "compdiff/internal/minic/types"

// Builtin identifiers, shared between sema, the compilers and the VM.
const (
	BPrintf    = iota // printf(char* fmt, ...) -> int
	BMalloc           // malloc(long) -> void*
	BFree             // free(void*) -> void
	BMemcpy           // memcpy(void*, void*, long) -> void*; overlap is UB (CWE-475)
	BMemset           // memset(void*, int, long) -> void*
	BStrlen           // strlen(char*) -> long
	BStrcpy           // strcpy(char*, char*) -> char*
	BStrncpy          // strncpy(char*, char*, long) -> char*
	BStrcmp           // strcmp(char*, char*) -> int
	BStrcat           // strcat(char*, char*) -> char*
	BInputSize        // input_size() -> long
	BInputByte        // input_byte(long) -> int (-1 past end)
	BReadInput        // read_input(char* buf, long max) -> long
	BExit             // exit(int) -> void
	BAbs              // abs(int) -> int
	BPow              // pow(double, double) -> double
	BSqrt             // sqrt(double) -> double
	BFabs             // fabs(double) -> double
	BTimeNow          // time_now() -> long; non-deterministic (RQ5 material)
	NumBuiltins
)

// BuiltinSig describes a builtin's signature.
type BuiltinSig struct {
	Name    string
	Params  []*types.Type
	Result  *types.Type
	Varargs bool
}

var voidPtr = types.PointerTo(types.VoidType)
var charPtr = types.PointerTo(types.CharType)

// Builtins is the registry of runtime-provided functions, indexed by
// the B* constants.
var Builtins = [NumBuiltins]BuiltinSig{
	BPrintf:    {Name: "printf", Params: []*types.Type{charPtr}, Result: types.IntType, Varargs: true},
	BMalloc:    {Name: "malloc", Params: []*types.Type{types.LongType}, Result: voidPtr},
	BFree:      {Name: "free", Params: []*types.Type{voidPtr}, Result: types.VoidType},
	BMemcpy:    {Name: "memcpy", Params: []*types.Type{voidPtr, voidPtr, types.LongType}, Result: voidPtr},
	BMemset:    {Name: "memset", Params: []*types.Type{voidPtr, types.IntType, types.LongType}, Result: voidPtr},
	BStrlen:    {Name: "strlen", Params: []*types.Type{charPtr}, Result: types.LongType},
	BStrcpy:    {Name: "strcpy", Params: []*types.Type{charPtr, charPtr}, Result: charPtr},
	BStrncpy:   {Name: "strncpy", Params: []*types.Type{charPtr, charPtr, types.LongType}, Result: charPtr},
	BStrcmp:    {Name: "strcmp", Params: []*types.Type{charPtr, charPtr}, Result: types.IntType},
	BStrcat:    {Name: "strcat", Params: []*types.Type{charPtr, charPtr}, Result: charPtr},
	BInputSize: {Name: "input_size", Result: types.LongType},
	BInputByte: {Name: "input_byte", Params: []*types.Type{types.LongType}, Result: types.IntType},
	BReadInput: {Name: "read_input", Params: []*types.Type{charPtr, types.LongType}, Result: types.LongType},
	BExit:      {Name: "exit", Params: []*types.Type{types.IntType}, Result: types.VoidType},
	BAbs:       {Name: "abs", Params: []*types.Type{types.IntType}, Result: types.IntType},
	BPow:       {Name: "pow", Params: []*types.Type{types.DoubleType, types.DoubleType}, Result: types.DoubleType},
	BSqrt:      {Name: "sqrt", Params: []*types.Type{types.DoubleType}, Result: types.DoubleType},
	BFabs:      {Name: "fabs", Params: []*types.Type{types.DoubleType}, Result: types.DoubleType},
	BTimeNow:   {Name: "time_now", Result: types.LongType},
}

// builtinByName maps spellings to builtin ids.
var builtinByName = func() map[string]int {
	m := make(map[string]int, NumBuiltins)
	for i, b := range Builtins {
		m[b.Name] = i
	}
	return m
}()
