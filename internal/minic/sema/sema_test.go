package sema

import (
	"strings"
	"testing"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/types"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func TestResolveAndTypes(t *testing.T) {
	info := mustCheck(t, `
int g = 3;
int add(int a, long b) {
    int x = a;
    return x + (int)b + g;
}
`)
	f := info.Funcs["add"]
	if f == nil {
		t.Fatal("add not registered")
	}
	if len(info.Params[f]) != 2 {
		t.Fatalf("params = %d", len(info.Params[f]))
	}
	if len(info.Locals[f]) != 1 {
		t.Fatalf("locals = %d", len(info.Locals[f]))
	}
	if len(info.Globals) != 1 || info.Globals[0].Name != "g" {
		t.Fatalf("globals = %+v", info.Globals)
	}
}

func TestUsualArithmeticConversions(t *testing.T) {
	info := mustCheck(t, `
long f(int i, long l, unsigned int u, char c) {
    return i + l;
}
`)
	f := info.Funcs["f"]
	ret := f.Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.Binary)
	if bin.CommonType != types.LongType {
		t.Fatalf("int+long common = %s, want long", bin.CommonType)
	}
	if bin.Type() != types.LongType {
		t.Fatalf("result type = %s", bin.Type())
	}
}

func TestCharPromotesToInt(t *testing.T) {
	info := mustCheck(t, `int f(char a, char b) { return a + b; }`)
	bin := info.Funcs["f"].Body.Stmts[0].(*ast.ReturnStmt).Value.(*ast.Binary)
	if bin.CommonType != types.IntType {
		t.Fatalf("char+char common = %s, want int", bin.CommonType)
	}
}

func TestUnsignedWins(t *testing.T) {
	info := mustCheck(t, `unsigned int f(int a, unsigned int b) { return a + b; }`)
	bin := info.Funcs["f"].Body.Stmts[0].(*ast.ReturnStmt).Value.(*ast.Binary)
	if bin.CommonType != types.UIntType {
		t.Fatalf("int+uint common = %s, want unsigned int", bin.CommonType)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	info := mustCheck(t, `
long f(int* p, int* q) {
    int* r = p + 3;
    return q - p;
}
`)
	f := info.Funcs["f"]
	ret := f.Body.Stmts[1].(*ast.ReturnStmt)
	if ret.Value.Type() != types.LongType {
		t.Fatalf("ptr diff type = %s", ret.Value.Type())
	}
}

func TestArrayDecay(t *testing.T) {
	info := mustCheck(t, `
int f() {
    int a[4];
    int* p = a;
    return p[0] + a[1];
}
`)
	_ = info
}

func TestStructLayoutAndMember(t *testing.T) {
	info := mustCheck(t, `
struct S { char c; int i; long l; };
long f(struct S* p) { return p->l; }
`)
	var st *types.Type
	for _, sd := range info.Prog.Structs {
		st = sd.Type
	}
	if st == nil {
		t.Fatal("struct type not set")
	}
	fi, _ := st.FieldByName("i")
	fl, _ := st.FieldByName("l")
	if fi.Offset != 4 {
		t.Errorf("i offset = %d, want 4", fi.Offset)
	}
	if fl.Offset != 8 {
		t.Errorf("l offset = %d, want 8", fl.Offset)
	}
	if st.Size() != 16 {
		t.Errorf("sizeof(S) = %d, want 16", st.Size())
	}
}

func TestStaticLocalBecomesGlobal(t *testing.T) {
	info := mustCheck(t, `
char* f() {
    static char buf[8];
    return buf;
}
`)
	if len(info.Globals) != 1 {
		t.Fatalf("globals = %d, want 1 (static local)", len(info.Globals))
	}
	if info.Globals[0].Kind != ast.SymStaticLocal {
		t.Fatalf("kind = %v", info.Globals[0].Kind)
	}
	if info.Globals[0].Name != "f.buf" {
		t.Fatalf("name = %s", info.Globals[0].Name)
	}
}

func TestBuiltinsResolve(t *testing.T) {
	mustCheck(t, `
int main() {
    char* p = (char*)malloc(16L);
    memset(p, 0, 16L);
    strcpy(p, "hi");
    printf("%s %d %ld\n", p, strcmp(p, "hi"), strlen(p));
    free(p);
    return 0;
}
`)
}

func TestArityMismatchIsWarning(t *testing.T) {
	info := mustCheck(t, `
int callee(int a, int b) { return a + b; }
int main() { return callee(1); }
`)
	call := info.Funcs["main"].Body.Stmts[0].(*ast.ReturnStmt).Value.(*ast.Call)
	if !call.ArityMismatch {
		t.Fatal("ArityMismatch not set")
	}
	found := false
	for _, w := range info.Warnings {
		if strings.Contains(w, "undefined behavior") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no arity warning in %v", info.Warnings)
	}
}

func TestLineExprStatementLine(t *testing.T) {
	info := mustCheck(t, `
int main() {
    printf("%d %d\n",
        __LINE__,
        1);
    return 0;
}
`)
	var le *ast.LineExpr
	ast.WalkExprs(info.Funcs["main"].Body, func(e ast.Expr) {
		if l, ok := e.(*ast.LineExpr); ok {
			le = l
		}
	})
	if le == nil {
		t.Fatal("no LineExpr found")
	}
	if le.KwPos.Line != 4 {
		t.Errorf("token line = %d, want 4", le.KwPos.Line)
	}
	if le.StmtLine != 3 {
		t.Errorf("stmt line = %d, want 3", le.StmtLine)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", `int f() { return x; }`, "undefined: x"},
		{"undefined func", `int f() { return g(); }`, "undefined function g"},
		{"dup func", "int f() { return 0; }\nint f() { return 1; }", "duplicate function"},
		{"dup global", "int g;\nint g;", "duplicate global"},
		{"void var", `void f() { void x; }`, "void type"},
		{"break outside", `int f() { break; return 0; }`, "break outside loop"},
		{"assign to rvalue", `int f() { 1 = 2; return 0; }`, "non-lvalue"},
		{"deref int", `int f(int x) { return *x; }`, "dereference of non-pointer"},
		{"bad member", "struct S { int a; };\nint f(struct S* p) { return p->b; }", "no field b"},
		{"dot on ptr", "struct S { int a; };\nint f(struct S* p) { return p.a; }", ". on non-struct"},
		{"missing return value", `int f() { return; }`, "missing return value"},
		{"return from void", `void f() { return 1; }`, "returning a value from void"},
		{"mod on float", `double f(double d) { return d % 2.0; }`, "requires integers"},
		{"shadow builtin", `int printf(int x) { return x; }`, "shadows a builtin"},
		{"nonconst global init", "int a;\nint b = a;", "must be constant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := check(t, c.src)
			if err == nil {
				t.Fatalf("no error, want %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestPointerComparisonAllowed(t *testing.T) {
	// Relational comparison of unrelated pointers is *syntactically and
	// semantically* accepted (it is run-time UB, the paper's Listing 2).
	mustCheck(t, `
int f(char* a, char* b) {
    if (a <= b) { return 1; }
    return 0;
}
`)
}

func TestSuspiciousCastWarning(t *testing.T) {
	info := mustCheck(t, `
struct S { int a; int b; };
int f(int* p) {
    struct S* s = (struct S*)p;
    return s->b;
}
`)
	found := false
	for _, w := range info.Warnings {
		if strings.Contains(w, "child of a non-struct") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected cast warning, got %v", info.Warnings)
	}
}

func TestShiftResultTypeFromLeftOperand(t *testing.T) {
	info := mustCheck(t, `int f(int x, long n) { return x << n; }`)
	bin := info.Funcs["f"].Body.Stmts[0].(*ast.ReturnStmt).Value.(*ast.Binary)
	if bin.Type() != types.IntType {
		t.Fatalf("x<<n type = %s, want int", bin.Type())
	}
}
