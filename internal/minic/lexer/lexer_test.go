package lexer

import (
	"testing"

	"compdiff/internal/minic/token"
)

func kinds(src string) []token.Kind {
	var ks []token.Kind
	for _, t := range New(src).All() {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	got := kinds("int main() { return 0; }")
	want := []token.Kind{token.KwInt, token.Ident, token.LParen, token.RParen,
		token.LBrace, token.KwReturn, token.IntLit, token.Semicolon,
		token.RBrace, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % << >> <= >= < > == != && || & | ^ ! ~ ++ -- -> . ? : += -= *= /= %= <<= >>= &= |= ^= ="
	want := []token.Kind{
		token.Add, token.Sub, token.Star, token.Div, token.Mod,
		token.Shl, token.Shr, token.Le, token.Ge, token.Lt, token.Gt,
		token.EqEq, token.NotEq, token.LAnd, token.LOr, token.Amp,
		token.Or, token.Xor, token.Not, token.Tilde, token.Inc, token.Dec,
		token.Arrow, token.Dot, token.Question, token.Colon,
		token.AddAssign, token.SubAssign, token.MulAssign, token.DivAssign,
		token.ModAssign, token.ShlAssign, token.ShrAssign, token.AndAssign,
		token.OrAssign, token.XorAssign, token.Assign, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestIntLiterals(t *testing.T) {
	cases := []struct {
		src      string
		val      int64
		unsigned bool
		long     bool
	}{
		{"0", 0, false, false},
		{"42", 42, false, false},
		{"0x7fffffff", 0x7fffffff, false, false},
		{"0xFF", 255, false, false},
		{"10L", 10, false, true},
		{"10U", 10, true, false},
		{"10UL", 10, true, true},
		{"10LU", 10, true, true},
	}
	for _, c := range cases {
		tok := New(c.src).Next()
		if tok.Kind != token.IntLit {
			t.Errorf("%q: kind = %s, want IntLit", c.src, tok.Kind)
			continue
		}
		if tok.IntVal != c.val || tok.Unsigned != c.unsigned || tok.Long != c.long {
			t.Errorf("%q: got (%d,U=%v,L=%v), want (%d,U=%v,L=%v)",
				c.src, tok.IntVal, tok.Unsigned, tok.Long, c.val, c.unsigned, c.long)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	cases := []struct {
		src string
		val float64
	}{
		{"1.5", 1.5}, {"0.25", 0.25}, {"2e3", 2000}, {"1.5e-2", 0.015}, {"3.0f", 3.0},
	}
	for _, c := range cases {
		tok := New(c.src).Next()
		if tok.Kind != token.FloatLit || tok.FloatVal != c.val {
			t.Errorf("%q: got %s %v, want FloatLit %v", c.src, tok.Kind, tok.FloatVal, c.val)
		}
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	tok := New(`"a\nb\t\\\"\x41\0"`).Next()
	if tok.Kind != token.StrLit {
		t.Fatalf("kind = %s", tok.Kind)
	}
	want := "a\nb\t\\\"A\x00"
	if tok.StrVal != want {
		t.Fatalf("StrVal = %q, want %q", tok.StrVal, want)
	}
}

func TestCharLiterals(t *testing.T) {
	cases := []struct {
		src string
		val int64
	}{
		{"'a'", 'a'}, {"'\\n'", '\n'}, {"'\\0'", 0}, {"'\\xff'", -1},
	}
	for _, c := range cases {
		tok := New(c.src).Next()
		if tok.Kind != token.CharLit || tok.IntVal != c.val {
			t.Errorf("%q: got %s %d, want CharLit %d", c.src, tok.Kind, tok.IntVal, c.val)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds("a // line comment\n b /* block\ncomment */ c")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	lx := New("int\n  x;")
	t1 := lx.Next()
	t2 := lx.Next()
	if t1.Pos.Line != 1 || t1.Pos.Col != 1 {
		t.Errorf("int at %s, want 1:1", t1.Pos)
	}
	if t2.Pos.Line != 2 || t2.Pos.Col != 3 {
		t.Errorf("x at %s, want 2:3", t2.Pos)
	}
}

func TestLineKeyword(t *testing.T) {
	tok := New("__LINE__").Next()
	if tok.Kind != token.KwLine {
		t.Fatalf("kind = %s, want __LINE__", tok.Kind)
	}
}

func TestIllegalCharacterReported(t *testing.T) {
	lx := New("int @ x")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("expected lexical error for '@'")
	}
}

func TestUnterminatedString(t *testing.T) {
	lx := New(`"abc`)
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("expected unterminated string error")
	}
}
