// Package lexer implements the MiniC scanner: a hand-written,
// single-pass lexer producing the token stream consumed by the parser.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"compdiff/internal/minic/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.scanIdent(pos)
	case c >= '0' && c <= '9':
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	case c == '\'':
		return l.scanChar(pos)
	case c == '.' && l.peek2() >= '0' && l.peek2() <= '9':
		return l.scanNumber(pos)
	}
	return l.scanOperator(pos)
}

// All scans the entire input and returns the token slice ending in EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if kw, ok := token.Keywords[text]; ok {
		return token.Token{Kind: kw, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			if l.peek2() >= '0' && l.peek2() <= '9' || l.peek2() == '-' || l.peek2() == '+' {
				isFloat = true
				l.advance()
				if l.peek() == '-' || l.peek() == '+' {
					l.advance()
				}
				for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
					l.advance()
				}
			}
		}
	}
	text := l.src[start:l.off]

	if isFloat {
		// An 'f' suffix is accepted and ignored (type comes from context).
		if l.peek() == 'f' || l.peek() == 'F' {
			l.advance()
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			l.errorf(pos, "invalid float literal %q", text)
		}
		return token.Token{Kind: token.FloatLit, Text: text, Pos: pos, FloatVal: v}
	}

	var unsigned, long bool
	for {
		switch l.peek() {
		case 'u', 'U':
			unsigned = true
			l.advance()
			continue
		case 'l', 'L':
			long = true
			l.advance()
			continue
		}
		break
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(text, "0x"), "0X"), base(text), 64)
	if err != nil {
		l.errorf(pos, "invalid integer literal %q", text)
	}
	return token.Token{
		Kind: token.IntLit, Text: text, Pos: pos,
		IntVal: int64(v), Unsigned: unsigned, Long: long,
	}
}

func base(text string) int {
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		return 16
	}
	return 10
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	start := l.off
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errorf(pos, "unterminated escape")
				break
			}
			b.WriteByte(l.unescape(pos))
			continue
		}
		b.WriteByte(c)
	}
	raw := ""
	if start <= len(l.src) && l.off-1 >= start {
		raw = l.src[start : l.off-1]
	}
	return token.Token{Kind: token.StrLit, Text: raw, Pos: pos, StrVal: b.String()}
}

func (l *Lexer) unescape(pos token.Pos) byte {
	c := l.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'x':
		var v byte
		for i := 0; i < 2 && l.off < len(l.src) && isHexDigit(l.peek()); i++ {
			d := l.advance()
			v = v<<4 | hexVal(d)
		}
		return v
	}
	l.errorf(pos, "unknown escape \\%c", c)
	return c
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var v byte
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated char literal")
		return token.Token{Kind: token.CharLit, Pos: pos}
	}
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated char literal")
			return token.Token{Kind: token.CharLit, Pos: pos}
		}
		v = l.unescape(pos)
	} else {
		v = c
	}
	if l.off < len(l.src) && l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(pos, "unterminated char literal")
	}
	return token.Token{Kind: token.CharLit, Text: string(v), Pos: pos, IntVal: int64(int8(v))}
}

func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	c := l.advance()
	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}
	case ';':
		return token.Token{Kind: token.Semicolon, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case '.':
		return token.Token{Kind: token.Dot, Pos: pos}
	case '?':
		return token.Token{Kind: token.Question, Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.Inc, Pos: pos}
		}
		return two('=', token.AddAssign, token.Add)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.Dec, Pos: pos}
		}
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.Arrow, Pos: pos}
		}
		return two('=', token.SubAssign, token.Sub)
	case '*':
		return two('=', token.MulAssign, token.Star)
	case '/':
		return two('=', token.DivAssign, token.Div)
	case '%':
		return two('=', token.ModAssign, token.Mod)
	case '=':
		return two('=', token.EqEq, token.Assign)
	case '!':
		return two('=', token.NotEq, token.Not)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', token.ShlAssign, token.Shl)
		}
		return two('=', token.Le, token.Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', token.ShrAssign, token.Shr)
		}
		return two('=', token.Ge, token.Gt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.LAnd, Pos: pos}
		}
		return two('=', token.AndAssign, token.Amp)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOr, Pos: pos}
		}
		return two('=', token.OrAssign, token.Or)
	case '^':
		return two('=', token.XorAssign, token.Xor)
	case '~':
		return token.Token{Kind: token.Tilde, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.Illegal, Text: string(c), Pos: pos}
}
