// Package types defines the type system of MiniC, the C-like language
// this repository uses as its unstable-code substrate. MiniC mirrors the
// part of C17 the CompDiff paper exercises: fixed-width integers with
// signed/unsigned distinction (signed overflow is undefined), floats,
// pointers with provenance-relevant semantics, arrays, and structs.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the fundamental type constructors.
type Kind int

const (
	Invalid Kind = iota
	Void
	Char   // 1 byte, signed
	Int    // 4 bytes, signed
	Long   // 8 bytes, signed
	UChar  // 1 byte, unsigned
	UInt   // 4 bytes, unsigned
	ULong  // 8 bytes, unsigned
	Float  // 4 bytes
	Double // 8 bytes
	Ptr    // pointer to Elem
	Array  // Elem[Len]
	Struct // named struct with fields
	Func   // function type (used for symbols, not first-class values)
)

// Type describes a MiniC type. Types are immutable after construction;
// identical basic types are shared singletons.
type Type struct {
	Kind   Kind
	Elem   *Type   // Ptr, Array
	Len    int64   // Array
	Name   string  // Struct
	Fields []Field // Struct
	Params []*Type // Func
	Result *Type   // Func

	size  int64
	align int64
}

// Field is a struct member with its computed layout offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

// Shared singletons for the basic types.
var (
	VoidType   = &Type{Kind: Void, size: 0, align: 1}
	CharType   = &Type{Kind: Char, size: 1, align: 1}
	IntType    = &Type{Kind: Int, size: 4, align: 4}
	LongType   = &Type{Kind: Long, size: 8, align: 8}
	UCharType  = &Type{Kind: UChar, size: 1, align: 1}
	UIntType   = &Type{Kind: UInt, size: 4, align: 4}
	ULongType  = &Type{Kind: ULong, size: 8, align: 8}
	FloatType  = &Type{Kind: Float, size: 4, align: 4}
	DoubleType = &Type{Kind: Double, size: 8, align: 8}
)

// PointerTo returns a pointer type with element type elem.
func PointerTo(elem *Type) *Type {
	return &Type{Kind: Ptr, Elem: elem, size: 8, align: 8}
}

// ArrayOf returns an array type of n elements of elem.
func ArrayOf(elem *Type, n int64) *Type {
	return &Type{Kind: Array, Elem: elem, Len: n, size: elem.Size() * n, align: elem.Align()}
}

// NewStruct builds a struct type, computing field offsets with natural
// alignment and trailing padding, like a typical C ABI. All compiler
// implementations in this repo share one struct layout: layout freedom
// is not one of the divergence axes under study, so keeping it fixed
// guarantees that defined programs behave identically everywhere.
func NewStruct(name string, fields []Field) *Type {
	t := &Type{Kind: Struct, Name: name}
	var off, maxAlign int64 = 0, 1
	for i := range fields {
		a := fields[i].Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		fields[i].Offset = off
		off += fields[i].Type.Size()
	}
	t.Fields = fields
	t.align = maxAlign
	t.size = alignUp(off, maxAlign)
	if t.size == 0 {
		t.size = 1 // empty structs occupy one byte, as in C++
	}
	return t
}

// NewFunc builds a function type.
func NewFunc(result *Type, params []*Type) *Type {
	return &Type{Kind: Func, Result: result, Params: params}
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

// Size returns the storage size in bytes.
func (t *Type) Size() int64 { return t.size }

// Align returns the required alignment in bytes.
func (t *Type) Align() int64 { return t.align }

// FieldByName returns the struct field with the given name.
func (t *Type) FieldByName(name string) (Field, bool) {
	if t.Kind != Struct {
		return Field{}, false
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsInteger reports whether t is an integer type (char..ulong).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, Int, Long, UChar, UInt, ULong:
		return true
	}
	return false
}

// IsSigned reports whether t is a signed integer type.
func (t *Type) IsSigned() bool {
	switch t.Kind {
	case Char, Int, Long:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArithmetic reports whether t is an integer or floating type.
func (t *Type) IsArithmetic() bool { return t.IsInteger() || t.IsFloat() }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == Ptr }

// IsScalar reports whether t can appear in a boolean context.
func (t *Type) IsScalar() bool { return t.IsArithmetic() || t.IsPtr() }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == Void }

// Bits returns the width of an integer type in bits.
func (t *Type) Bits() int {
	switch t.Kind {
	case Char, UChar:
		return 8
	case Int, UInt:
		return 32
	case Long, ULong, Ptr:
		return 64
	}
	return 0
}

// Unsigned returns the unsigned counterpart of an integer type.
func (t *Type) Unsigned() *Type {
	switch t.Kind {
	case Char:
		return UCharType
	case Int:
		return UIntType
	case Long:
		return ULongType
	}
	return t
}

// Promote applies the C integer promotions: types narrower than int
// promote to int.
func Promote(t *Type) *Type {
	switch t.Kind {
	case Char, UChar:
		return IntType
	}
	return t
}

// rank orders arithmetic types for the usual arithmetic conversions.
func rank(t *Type) int {
	switch t.Kind {
	case Char, UChar:
		return 1
	case Int:
		return 2
	case UInt:
		return 3
	case Long:
		return 4
	case ULong:
		return 5
	case Float:
		return 6
	case Double:
		return 7
	}
	return 0
}

// Common returns the common type of a binary arithmetic expression,
// following the usual arithmetic conversions of C17 §6.3.1.8.
func Common(a, b *Type) *Type {
	if a.Kind == Double || b.Kind == Double {
		return DoubleType
	}
	if a.Kind == Float || b.Kind == Float {
		return FloatType
	}
	a, b = Promote(a), Promote(b)
	if rank(a) < rank(b) {
		a, b = b, a
	}
	// a now has the higher rank.
	switch {
	case a.Kind == ULong || b.Kind == ULong:
		return ULongType
	case a.Kind == Long:
		if b.Kind == UInt {
			return LongType // long can represent all uint values
		}
		return LongType
	case a.Kind == UInt || b.Kind == UInt:
		return UIntType
	default:
		return IntType
	}
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Ptr:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case Struct:
		return a.Name == b.Name
	case Func:
		if !Equal(a.Result, b.Result) || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Invalid:
		return "<invalid>"
	case Void:
		return "void"
	case Char:
		return "char"
	case Int:
		return "int"
	case Long:
		return "long"
	case UChar:
		return "unsigned char"
	case UInt:
		return "unsigned int"
	case ULong:
		return "unsigned long"
	case Float:
		return "float"
	case Double:
		return "double"
	case Ptr:
		return t.Elem.String() + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Struct:
		return "struct " + t.Name
	case Func:
		var b strings.Builder
		b.WriteString(t.Result.String())
		b.WriteString("(")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(")")
		return b.String()
	}
	return "<unknown>"
}
