package types

// SetStructBody fills in the fields and layout of a struct type in
// place. The parser creates empty placeholder struct types so that
// pointers to forward-declared structs can be formed; sema completes
// them here once the declaration body is known.
func (t *Type) SetStructBody(fields []Field) {
	built := NewStruct(t.Name, fields)
	t.Fields = built.Fields
	t.size = built.size
	t.align = built.align
}
