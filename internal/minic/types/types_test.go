package types

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		t     *Type
		size  int64
		align int64
	}{
		{CharType, 1, 1}, {UCharType, 1, 1},
		{IntType, 4, 4}, {UIntType, 4, 4},
		{LongType, 8, 8}, {ULongType, 8, 8},
		{FloatType, 4, 4}, {DoubleType, 8, 8},
		{PointerTo(CharType), 8, 8},
		{ArrayOf(IntType, 5), 20, 4},
		{ArrayOf(ArrayOf(CharType, 3), 4), 12, 1},
	}
	for _, c := range cases {
		if c.t.Size() != c.size || c.t.Align() != c.align {
			t.Errorf("%s: size=%d align=%d, want %d/%d", c.t, c.t.Size(), c.t.Align(), c.size, c.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := NewStruct("S", []Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "c2", Type: CharType},
		{Name: "l", Type: LongType},
	})
	offsets := map[string]int64{"c": 0, "i": 4, "c2": 8, "l": 16}
	for name, want := range offsets {
		f, ok := s.FieldByName(name)
		if !ok || f.Offset != want {
			t.Errorf("field %s offset = %d (found=%v), want %d", name, f.Offset, ok, want)
		}
	}
	if s.Size() != 24 || s.Align() != 8 {
		t.Errorf("size=%d align=%d, want 24/8", s.Size(), s.Align())
	}
}

func TestEmptyStructHasSizeOne(t *testing.T) {
	if s := NewStruct("E", nil); s.Size() != 1 {
		t.Fatalf("empty struct size = %d", s.Size())
	}
}

func TestSetStructBody(t *testing.T) {
	placeholder := &Type{Kind: Struct, Name: "Late"}
	p := PointerTo(placeholder)
	placeholder.SetStructBody([]Field{{Name: "x", Type: LongType}})
	if placeholder.Size() != 8 {
		t.Fatalf("size = %d", placeholder.Size())
	}
	if p.Elem.Size() != 8 {
		t.Fatal("pointer does not see the completed struct")
	}
}

func TestPromote(t *testing.T) {
	if Promote(CharType) != IntType || Promote(UCharType) != IntType {
		t.Error("narrow types promote to int")
	}
	if Promote(LongType) != LongType || Promote(UIntType) != UIntType {
		t.Error("wide types promote to themselves")
	}
}

func TestCommonConversions(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{CharType, CharType, IntType},
		{IntType, LongType, LongType},
		{IntType, UIntType, UIntType},
		{UIntType, LongType, LongType},
		{LongType, ULongType, ULongType},
		{IntType, DoubleType, DoubleType},
		{FloatType, IntType, FloatType},
		{FloatType, DoubleType, DoubleType},
	}
	for _, c := range cases {
		if got := Common(c.a, c.b); got != c.want {
			t.Errorf("Common(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := Common(c.b, c.a); got != c.want {
			t.Errorf("Common(%s, %s) = %s, want %s (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestQuickCommonSymmetricAndIdempotent(t *testing.T) {
	basics := []*Type{CharType, UCharType, IntType, UIntType, LongType, ULongType, FloatType, DoubleType}
	f := func(i, j uint8) bool {
		a := basics[int(i)%len(basics)]
		b := basics[int(j)%len(basics)]
		c := Common(a, b)
		return Common(b, a) == c && Common(c, c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	if !IntType.IsSigned() || UIntType.IsSigned() {
		t.Error("signedness predicates")
	}
	if !PointerTo(VoidType).IsPtr() || !PointerTo(VoidType).IsScalar() {
		t.Error("pointer predicates")
	}
	if !DoubleType.IsFloat() || DoubleType.IsInteger() {
		t.Error("float predicates")
	}
	if VoidType.IsScalar() || !VoidType.IsVoid() {
		t.Error("void predicates")
	}
	if ArrayOf(IntType, 2).IsScalar() {
		t.Error("arrays are not scalar")
	}
}

func TestBits(t *testing.T) {
	if CharType.Bits() != 8 || IntType.Bits() != 32 || LongType.Bits() != 64 || PointerTo(IntType).Bits() != 64 {
		t.Error("bit widths")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("identical pointers")
	}
	if Equal(PointerTo(IntType), PointerTo(LongType)) {
		t.Error("distinct pointees")
	}
	if !Equal(ArrayOf(CharType, 3), ArrayOf(CharType, 3)) || Equal(ArrayOf(CharType, 3), ArrayOf(CharType, 4)) {
		t.Error("array equality")
	}
	s1 := NewStruct("S", nil)
	s2 := NewStruct("S", nil)
	s3 := NewStruct("T", nil)
	if !Equal(s1, s2) || Equal(s1, s3) {
		t.Error("struct equality is nominal")
	}
	f1 := NewFunc(IntType, []*Type{CharType})
	f2 := NewFunc(IntType, []*Type{CharType})
	f3 := NewFunc(IntType, []*Type{IntType})
	if !Equal(f1, f2) || Equal(f1, f3) {
		t.Error("function equality")
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Type{
		"unsigned int":    UIntType,
		"char*":           PointerTo(CharType),
		"int[4]":          ArrayOf(IntType, 4),
		"struct Pt":       NewStruct("Pt", nil),
		"void*":           PointerTo(VoidType),
		"int(char, long)": NewFunc(IntType, []*Type{CharType, LongType}),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestUnsignedCounterpart(t *testing.T) {
	if CharType.Unsigned() != UCharType || IntType.Unsigned() != UIntType || LongType.Unsigned() != ULongType {
		t.Error("unsigned counterparts")
	}
	if UIntType.Unsigned() != UIntType {
		t.Error("already-unsigned unchanged")
	}
}
