package token

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", Ident: "identifier", KwIf: "if", KwLine: "__LINE__",
		Arrow: "->", ShlAssign: "<<=", LAnd: "&&", Tilde: "~",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(9999).String(); !strings.Contains(got, "9999") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKeywordsComplete(t *testing.T) {
	for _, kw := range []string{"void", "char", "int", "long", "float",
		"double", "unsigned", "struct", "if", "else", "while", "for",
		"return", "break", "continue", "sizeof", "static", "const", "__LINE__"} {
		if _, ok := Keywords[kw]; !ok {
			t.Errorf("missing keyword %q", kw)
		}
	}
	if len(Keywords) != 19 {
		t.Errorf("keywords = %d, want 19", len(Keywords))
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Col: 14}
	if p.String() != "3:14" {
		t.Errorf("String = %q", p.String())
	}
	if !p.IsValid() || (Pos{}).IsValid() {
		t.Error("IsValid")
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: Ident, Text: "foo"}
	if got := id.String(); !strings.Contains(got, "foo") {
		t.Errorf("ident token = %q", got)
	}
	op := Token{Kind: Add}
	if op.String() != "+" {
		t.Errorf("op token = %q", op.String())
	}
}
