// Package token defines the lexical tokens of MiniC and source
// positions used across the front end for diagnostics and for the
// implementation-defined __LINE__ semantics studied by CompDiff.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

const (
	EOF Kind = iota
	Illegal

	Ident
	IntLit   // 123, 0x7f, 'a'
	FloatLit // 1.5, 2e9
	StrLit   // "..."
	CharLit  // 'a'

	// Keywords.
	KwVoid
	KwChar
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwUnsigned
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	KwStatic
	KwConst
	KwLine // __LINE__

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semicolon
	Comma
	Dot
	Arrow // ->
	Question
	Colon

	Assign    // =
	AddAssign // +=
	SubAssign // -=
	MulAssign // *=
	DivAssign // /=
	ModAssign // %=
	ShlAssign // <<=
	ShrAssign // >>=
	AndAssign // &=
	OrAssign  // |=
	XorAssign // ^=

	Add
	Sub
	Star
	Div
	Mod
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	Amp
	Or
	Xor
	LAnd // &&
	LOr  // ||
	Not  // !
	Tilde
	Inc // ++
	Dec // --
)

var names = map[Kind]string{
	EOF: "EOF", Illegal: "ILLEGAL", Ident: "identifier",
	IntLit: "integer literal", FloatLit: "float literal",
	StrLit: "string literal", CharLit: "char literal",
	KwVoid: "void", KwChar: "char", KwInt: "int", KwLong: "long",
	KwFloat: "float", KwDouble: "double", KwUnsigned: "unsigned",
	KwStruct: "struct", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwSizeof: "sizeof", KwStatic: "static",
	KwConst: "const", KwLine: "__LINE__",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semicolon: ";", Comma: ",",
	Dot: ".", Arrow: "->", Question: "?", Colon: ":",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", ModAssign: "%=", ShlAssign: "<<=", ShrAssign: ">>=",
	AndAssign: "&=", OrAssign: "|=", XorAssign: "^=",
	Add: "+", Sub: "-", Star: "*", Div: "/", Mod: "%",
	Shl: "<<", Shr: ">>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", Amp: "&", Or: "|", Xor: "^",
	LAnd: "&&", LOr: "||", Not: "!", Tilde: "~", Inc: "++", Dec: "--",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"void": KwVoid, "char": KwChar, "int": KwInt, "long": KwLong,
	"float": KwFloat, "double": KwDouble, "unsigned": KwUnsigned,
	"struct": KwStruct, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "sizeof": KwSizeof, "static": KwStatic,
	"const": KwConst, "__LINE__": KwLine,
}

// Pos is a source position. Line and Col are 1-based.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // raw text (identifiers, literals)
	Pos  Pos

	IntVal   int64   // IntLit, CharLit: decoded value
	FloatVal float64 // FloatLit
	StrVal   string  // StrLit: decoded (unescaped) value
	Unsigned bool    // IntLit had a 'U' suffix
	Long     bool    // IntLit had an 'L' suffix
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, StrLit, CharLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
