package ast

import (
	"fmt"
	"strings"

	"compdiff/internal/minic/types"
)

// Print renders a program back to MiniC source. The output reparses to
// an equivalent AST (modulo positions), which the round-trip tests rely
// on. It is also used by the Juliet and target generators to dump the
// generated corpus for inspection.
func Print(p *Program) string {
	var pr printer
	for _, s := range p.Structs {
		pr.structDecl(s)
	}
	for _, g := range p.Globals {
		pr.varDecl(g, true)
		pr.buf.WriteString(";\n")
	}
	for _, f := range p.Funcs {
		pr.funcDecl(f)
	}
	return pr.buf.String()
}

// PrintExpr renders a single expression (diagnostics, analyzer output).
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e)
	return pr.buf.String()
}

// PrintStmt renders a single statement at indent 0.
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) in() { p.buf.WriteString(strings.Repeat("    ", p.indent)) }

func (p *printer) structDecl(s *StructDecl) {
	fmt.Fprintf(&p.buf, "struct %s {\n", s.Name)
	for _, f := range s.Fields {
		p.buf.WriteString("    ")
		p.typeAndName(f.DeclType, f.Name)
		p.buf.WriteString(";\n")
	}
	p.buf.WriteString("};\n")
}

// typeAndName prints a declaration like "int x", "char buf[10]",
// "struct S* p".
func (p *printer) typeAndName(t *types.Type, name string) {
	base := t
	var dims []int64
	for base.Kind == types.Array {
		dims = append(dims, base.Len)
		base = base.Elem
	}
	p.buf.WriteString(base.String())
	p.buf.WriteString(" ")
	p.buf.WriteString(name)
	for _, d := range dims {
		fmt.Fprintf(&p.buf, "[%d]", d)
	}
}

func (p *printer) varDecl(d *VarDecl, topLevel bool) {
	if d.Storage == Static {
		p.buf.WriteString("static ")
	}
	p.typeAndName(d.DeclType, d.Name)
	if d.Init != nil {
		p.buf.WriteString(" = ")
		p.expr(d.Init)
	}
	_ = topLevel
}

func (p *printer) funcDecl(f *FuncDecl) {
	p.buf.WriteString(f.Result.String())
	p.buf.WriteString(" ")
	p.buf.WriteString(f.Name)
	p.buf.WriteString("(")
	for i, prm := range f.Params {
		if i > 0 {
			p.buf.WriteString(", ")
		}
		p.typeAndName(prm.DeclType, prm.Name)
	}
	p.buf.WriteString(") ")
	p.block(f.Body)
	p.buf.WriteString("\n")
}

func (p *printer) block(b *BlockStmt) {
	p.buf.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.in()
		p.stmt(s)
		p.buf.WriteString("\n")
	}
	p.indent--
	p.in()
	p.buf.WriteString("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.block(s)
	case *DeclStmt:
		for i, d := range s.Decls {
			if i > 0 {
				p.buf.WriteString(" ")
			}
			p.varDecl(d, false)
			p.buf.WriteString(";")
		}
	case *ExprStmt:
		p.expr(s.X)
		p.buf.WriteString(";")
	case *IfStmt:
		p.buf.WriteString("if (")
		p.expr(s.Cond)
		p.buf.WriteString(") ")
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			p.buf.WriteString(" else ")
			p.stmtAsBlock(s.Else)
		}
	case *WhileStmt:
		p.buf.WriteString("while (")
		p.expr(s.Cond)
		p.buf.WriteString(") ")
		p.stmtAsBlock(s.Body)
	case *ForStmt:
		p.buf.WriteString("for (")
		switch init := s.Init.(type) {
		case nil:
			p.buf.WriteString(";")
		case *DeclStmt:
			for _, d := range init.Decls {
				p.varDecl(d, false)
			}
			p.buf.WriteString(";")
		case *ExprStmt:
			p.expr(init.X)
			p.buf.WriteString(";")
		}
		p.buf.WriteString(" ")
		if s.Cond != nil {
			p.expr(s.Cond)
		}
		p.buf.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post)
		}
		p.buf.WriteString(") ")
		p.stmtAsBlock(s.Body)
	case *ReturnStmt:
		p.buf.WriteString("return")
		if s.Value != nil {
			p.buf.WriteString(" ")
			p.expr(s.Value)
		}
		p.buf.WriteString(";")
	case *BreakStmt:
		p.buf.WriteString("break;")
	case *ContinueStmt:
		p.buf.WriteString("continue;")
	default:
		fmt.Fprintf(&p.buf, "/* unknown stmt %T */", s)
	}
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.buf.WriteString("{\n")
	p.indent++
	p.in()
	p.stmt(s)
	p.buf.WriteString("\n")
	p.indent--
	p.in()
	p.buf.WriteString("}")
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *IntLit:
		if e.T != nil && e.T.Kind == types.Long {
			fmt.Fprintf(&p.buf, "%dL", e.Value)
		} else if e.T != nil && !e.T.IsSigned() && e.T.IsInteger() {
			fmt.Fprintf(&p.buf, "%dU", uint64(e.Value))
		} else {
			fmt.Fprintf(&p.buf, "%d", e.Value)
		}
	case *FloatLit:
		s := fmt.Sprintf("%g", e.Value)
		p.buf.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			p.buf.WriteString(".0")
		}
	case *StrLit:
		fmt.Fprintf(&p.buf, "%s", quoteC(e.Value))
	case *LineExpr:
		p.buf.WriteString("__LINE__")
	case *Ident:
		p.buf.WriteString(e.Name)
	case *Unary:
		switch e.Op {
		case PostInc:
			p.parenExpr(e.X)
			p.buf.WriteString("++")
		case PostDec:
			p.parenExpr(e.X)
			p.buf.WriteString("--")
		default:
			p.buf.WriteString(e.Op.String())
			p.parenExpr(e.X)
		}
	case *Binary:
		p.parenExpr(e.X)
		fmt.Fprintf(&p.buf, " %s ", e.Op)
		p.parenExpr(e.Y)
	case *Assign:
		p.parenExpr(e.LHS)
		if e.Op == PlainAssign {
			p.buf.WriteString(" = ")
		} else {
			fmt.Fprintf(&p.buf, " %s= ", e.Op)
		}
		p.parenExpr(e.RHS)
	case *Cond:
		p.parenExpr(e.C)
		p.buf.WriteString(" ? ")
		p.parenExpr(e.X)
		p.buf.WriteString(" : ")
		p.parenExpr(e.Y)
	case *Call:
		p.buf.WriteString(e.Fun.Name)
		p.buf.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a)
		}
		p.buf.WriteString(")")
	case *Index:
		p.parenExpr(e.X)
		p.buf.WriteString("[")
		p.expr(e.Idx)
		p.buf.WriteString("]")
	case *Member:
		p.parenExpr(e.X)
		if e.Arrow {
			p.buf.WriteString("->")
		} else {
			p.buf.WriteString(".")
		}
		p.buf.WriteString(e.Name)
	case *CastExpr:
		fmt.Fprintf(&p.buf, "(%s)", e.To)
		p.parenExpr(e.X)
	case *SizeofExpr:
		fmt.Fprintf(&p.buf, "sizeof(%s)", e.Of)
	default:
		fmt.Fprintf(&p.buf, "/* unknown expr %T */", e)
	}
}

// parenExpr prints sub-expressions with explicit parentheses so that
// printed output never depends on precedence subtleties.
func (p *printer) parenExpr(e Expr) {
	switch e.(type) {
	case *IntLit, *FloatLit, *StrLit, *Ident, *Call, *Index, *Member, *LineExpr, *SizeofExpr:
		p.expr(e)
	default:
		p.buf.WriteString("(")
		p.expr(e)
		p.buf.WriteString(")")
	}
}

func quoteC(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			if c < 32 || c >= 127 {
				fmt.Fprintf(&b, `\x%02x`, c)
			} else {
				b.WriteByte(c)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Walk traverses the statement tree rooted at s, calling f for every
// statement. f returning false prunes the subtree.
func Walk(s Stmt, f func(Stmt) bool) {
	if s == nil || !f(s) {
		return
	}
	switch s := s.(type) {
	case *BlockStmt:
		for _, c := range s.Stmts {
			Walk(c, f)
		}
	case *IfStmt:
		Walk(s.Then, f)
		Walk(s.Else, f)
	case *WhileStmt:
		Walk(s.Body, f)
	case *ForStmt:
		Walk(s.Init, f)
		Walk(s.Body, f)
	}
}

// WalkExprs calls f for every expression contained in statement s,
// including nested sub-expressions.
func WalkExprs(s Stmt, f func(Expr)) {
	Walk(s, func(st Stmt) bool {
		switch st := st.(type) {
		case *DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					walkExpr(d.Init, f)
				}
			}
		case *ExprStmt:
			walkExpr(st.X, f)
		case *IfStmt:
			walkExpr(st.Cond, f)
		case *WhileStmt:
			walkExpr(st.Cond, f)
		case *ForStmt:
			if st.Cond != nil {
				walkExpr(st.Cond, f)
			}
			if st.Post != nil {
				walkExpr(st.Post, f)
			}
		case *ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value, f)
			}
		}
		return true
	})
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *Unary:
		walkExpr(e.X, f)
	case *Binary:
		walkExpr(e.X, f)
		walkExpr(e.Y, f)
	case *Assign:
		walkExpr(e.LHS, f)
		walkExpr(e.RHS, f)
	case *Cond:
		walkExpr(e.C, f)
		walkExpr(e.X, f)
		walkExpr(e.Y, f)
	case *Call:
		for _, a := range e.Args {
			walkExpr(a, f)
		}
	case *Index:
		walkExpr(e.X, f)
		walkExpr(e.Idx, f)
	case *Member:
		walkExpr(e.X, f)
	case *CastExpr:
		walkExpr(e.X, f)
	}
}
