package ast_test

import (
	"strings"
	"testing"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
)

const sample = `
struct Pair {
    int a;
    int b;
};
int total;
int accumulate(int v) {
    total += v;
    return total;
}
int main() {
    struct Pair p;
    p.a = 1;
    p.b = 2;
    int* q = &p.a;
    for (int i = 0; i < 3; i++) {
        accumulate(p.a + p.b + *q);
        if (i == 1) { continue; }
        while (total > 100) { total /= 2; break; }
    }
    printf("%d\n", total > 0 ? total : -total);
    return 0;
}
`

func TestPrintContainsEveryConstruct(t *testing.T) {
	prog := parser.MustParse(sample)
	out := ast.Print(prog)
	for _, want := range []string{
		"struct Pair", "int total", "accumulate", "for (", "while (",
		"continue;", "break;", "? ", "&", "printf",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestWalkVisitsAllStatements(t *testing.T) {
	prog := parser.MustParse(sample)
	var kinds = map[string]int{}
	for _, f := range prog.Funcs {
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			switch s.(type) {
			case *ast.ForStmt:
				kinds["for"]++
			case *ast.WhileStmt:
				kinds["while"]++
			case *ast.IfStmt:
				kinds["if"]++
			case *ast.ContinueStmt:
				kinds["continue"]++
			case *ast.BreakStmt:
				kinds["break"]++
			case *ast.ReturnStmt:
				kinds["return"]++
			}
			return true
		})
	}
	want := map[string]int{"for": 1, "while": 1, "if": 1, "continue": 1, "break": 1, "return": 2}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("%s statements = %d, want %d", k, kinds[k], n)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	prog := parser.MustParse(sample)
	visited := 0
	for _, f := range prog.Funcs {
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			visited++
			_, isBlock := s.(*ast.BlockStmt)
			return isBlock // prune below non-blocks
		})
	}
	// Only each function's top block plus its direct children.
	if visited == 0 {
		t.Fatal("walk visited nothing")
	}
	full := 0
	for _, f := range prog.Funcs {
		ast.Walk(f.Body, func(ast.Stmt) bool { full++; return true })
	}
	if visited >= full {
		t.Fatalf("pruned walk (%d) should visit fewer than full walk (%d)", visited, full)
	}
}

func TestWalkExprsFindsCallsAndMembers(t *testing.T) {
	prog := parser.MustParse(sample)
	calls, members, derefs := 0, 0, 0
	for _, f := range prog.Funcs {
		ast.WalkExprs(f.Body, func(e ast.Expr) {
			switch x := e.(type) {
			case *ast.Call:
				calls++
			case *ast.Member:
				members++
			case *ast.Unary:
				if x.Op == ast.Deref {
					derefs++
				}
			}
		})
	}
	if calls < 2 { // accumulate + printf
		t.Errorf("calls = %d", calls)
	}
	if members < 4 {
		t.Errorf("members = %d", members)
	}
	if derefs != 1 {
		t.Errorf("derefs = %d", derefs)
	}
}

func TestPrintExprAndStmt(t *testing.T) {
	prog := parser.MustParse(`int main() { int x = (1 + 2) * 3; return x; }`)
	ds := prog.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	if got := ast.PrintExpr(ds.Decls[0].Init); got != "((1 + 2)) * 3" && !strings.Contains(got, "1 + 2") {
		t.Errorf("PrintExpr = %q", got)
	}
	if got := ast.PrintStmt(prog.Funcs[0].Body.Stmts[1]); !strings.Contains(got, "return x;") {
		t.Errorf("PrintStmt = %q", got)
	}
}

func TestOperatorStrings(t *testing.T) {
	if ast.Add.String() != "+" || ast.Shl.String() != "<<" || ast.LogAnd.String() != "&&" {
		t.Error("binary operator spellings")
	}
	if ast.Deref.String() != "*" || ast.AddrOf.String() != "&" {
		t.Error("unary operator spellings")
	}
	if !ast.Lt.IsComparison() || ast.Add.IsComparison() {
		t.Error("IsComparison")
	}
}

func TestStringEscapingRoundTrip(t *testing.T) {
	src := `int main() { printf("tab\t nl\n quote\" hex\x01 zero\0 back\\ "); return 0; }`
	p1 := parser.MustParse(src)
	out1 := ast.Print(p1)
	p2 := parser.MustParse(out1)
	if out2 := ast.Print(p2); out1 != out2 {
		t.Fatalf("escape round trip unstable:\n%s\nvs\n%s", out1, out2)
	}
}
