package ast_test

import (
	"testing"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
)

// cloneSrc exercises every cloneable node kind: structs, globals,
// statics, all statement forms, and the full expression grammar.
const cloneSrc = `
struct pair { int a; int b; };
int g = 4;
int helper(int x, int y) {
  return x * y + 2;
}
int main() {
  static int s = 1;
  int v = (3 + 4);
  int arr[4];
  double d = 1.5 * 2.0 + 0.5;
  char* msg = "hello";
  struct pair p;
  struct pair* pp = &p;
  p.a = 1;
  pp->b = 2;
  arr[0] = v > 0 ? v : -v;
  unsigned u = (unsigned)v + sizeof(int);
  v += helper(v, g);
  v++;
  --v;
  while (v > 100) { v = v / 2; }
  for (int i = 0; i < 3; i = i + 1) {
    if (i == 1) { continue; }
    if (i == 2) { break; }
    u = u ^ (unsigned)i;
    !v;
    ~v;
    v << 1;
    v && g || s;
    __LINE__;
  }
  printf("%d %d %ld\n", v, p.a + pp->b, (long)u);
  return v & 63;
}`

// collectNodes gathers the identity of every statement and expression
// node reachable from p (decl initializers included).
func collectNodes(p *ast.Program) map[ast.Node]bool {
	seen := map[ast.Node]bool{}
	addExpr := func(e ast.Expr) {
		if e != nil {
			seen[e] = true
		}
	}
	for _, g := range p.Globals {
		addExpr(g.Init)
	}
	for _, f := range p.Funcs {
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			seen[s] = true
			return true
		})
		ast.WalkExprs(f.Body, addExpr)
	}
	return seen
}

func TestCloneProgramSharesNoNodes(t *testing.T) {
	orig := parser.MustParse(cloneSrc)
	clone := ast.CloneProgram(orig)

	if got, want := ast.Print(clone), ast.Print(orig); got != want {
		t.Fatalf("clone prints differently:\n--- clone ---\n%s\n--- orig ---\n%s", got, want)
	}

	origNodes := collectNodes(orig)
	if len(origNodes) < 40 {
		t.Fatalf("test program too small: only %d nodes collected", len(origNodes))
	}
	for n := range collectNodes(clone) {
		if origNodes[n] {
			t.Fatalf("clone shares node %T %+v with the original", n, n)
		}
	}
}

func TestCloneIsIndependentlyMutable(t *testing.T) {
	orig := parser.MustParse(cloneSrc)
	before := ast.Print(orig)
	clone := ast.CloneProgram(orig)

	// Rewrite every integer literal in the clone; the original must not
	// move.
	for _, f := range clone.Funcs {
		ast.WalkExprs(f.Body, func(e ast.Expr) {
			if lit, ok := e.(*ast.IntLit); ok {
				lit.Value = 999
			}
		})
	}
	if got := ast.Print(orig); got != before {
		t.Fatal("mutating the clone changed the original program")
	}
}

func TestCloneNilForms(t *testing.T) {
	if ast.CloneProgram(nil) != nil {
		t.Fatal("CloneProgram(nil) != nil")
	}
	if ast.CloneExpr(nil) != nil {
		t.Fatal("CloneExpr(nil) != nil")
	}
	if ast.CloneStmt(nil) != nil {
		t.Fatal("CloneStmt(nil) != nil")
	}
	// Statements with optional nil children clone without panicking.
	s := &ast.IfStmt{Cond: &ast.IntLit{Value: 1}, Then: &ast.BlockStmt{}}
	c := ast.CloneStmt(s).(*ast.IfStmt)
	if c == s || c.Else != nil {
		t.Fatalf("clone of else-less if: %+v", c)
	}
}
