package ast

// Deep clone of AST nodes. The triage reduction passes and the evolve
// mutation operators splice subtrees into trees they did not come
// from; a clone guarantees the spliced subtree shares no *node* with
// its source, so mutating one offspring can never reach through a
// shared pointer into a sibling or the parent. Resolved metadata
// (*types.Type, *Symbol, types.Field) is shared intentionally: it is
// immutable identity assigned by sema, not tree structure, and every
// mutation consumer reprints and re-checks the program anyway.

// CloneProgram returns a deep copy of p sharing no AST nodes with it.
func CloneProgram(p *Program) *Program {
	if p == nil {
		return nil
	}
	out := &Program{}
	for _, s := range p.Structs {
		out.Structs = append(out.Structs, cloneStructDecl(s))
	}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, CloneVarDecl(g))
	}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, CloneFuncDecl(f))
	}
	return out
}

func cloneStructDecl(d *StructDecl) *StructDecl {
	if d == nil {
		return nil
	}
	c := *d
	c.Fields = nil
	for _, f := range d.Fields {
		c.Fields = append(c.Fields, CloneVarDecl(f))
	}
	return &c
}

// CloneVarDecl deep-copies a declaration (initializer included).
func CloneVarDecl(d *VarDecl) *VarDecl {
	if d == nil {
		return nil
	}
	c := *d
	c.Init = CloneExpr(d.Init)
	return &c
}

// CloneFuncDecl deep-copies a function definition.
func CloneFuncDecl(f *FuncDecl) *FuncDecl {
	if f == nil {
		return nil
	}
	c := *f
	c.Params = nil
	for _, p := range f.Params {
		c.Params = append(c.Params, CloneVarDecl(p))
	}
	if f.Body != nil {
		c.Body = CloneStmt(f.Body).(*BlockStmt)
	}
	return &c
}

// CloneStmt returns a deep copy of s sharing no nodes with it. A nil
// statement clones to nil.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *BlockStmt:
		c := &BlockStmt{LBrace: s.LBrace}
		for _, st := range s.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(st))
		}
		return c
	case *DeclStmt:
		c := &DeclStmt{}
		for _, d := range s.Decls {
			c.Decls = append(c.Decls, CloneVarDecl(d))
		}
		return c
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(s.X)}
	case *IfStmt:
		return &IfStmt{IfPos: s.IfPos, Cond: CloneExpr(s.Cond),
			Then: CloneStmt(s.Then), Else: CloneStmt(s.Else)}
	case *WhileStmt:
		return &WhileStmt{WhilePos: s.WhilePos, Cond: CloneExpr(s.Cond), Body: CloneStmt(s.Body)}
	case *ForStmt:
		return &ForStmt{ForPos: s.ForPos, Init: CloneStmt(s.Init),
			Cond: CloneExpr(s.Cond), Post: CloneExpr(s.Post), Body: CloneStmt(s.Body)}
	case *ReturnStmt:
		return &ReturnStmt{RetPos: s.RetPos, Value: CloneExpr(s.Value)}
	case *BreakStmt:
		c := *s
		return &c
	case *ContinueStmt:
		c := *s
		return &c
	}
	return s // unknown node kinds pass through unchanged
}

// CloneExpr returns a deep copy of e sharing no nodes with it. A nil
// expression clones to nil.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *e
		return &c
	case *FloatLit:
		c := *e
		return &c
	case *StrLit:
		c := *e
		return &c
	case *LineExpr:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *Unary:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *Binary:
		c := *e
		c.X = CloneExpr(e.X)
		c.Y = CloneExpr(e.Y)
		return &c
	case *Assign:
		c := *e
		c.LHS = CloneExpr(e.LHS)
		c.RHS = CloneExpr(e.RHS)
		return &c
	case *Cond:
		c := *e
		c.C = CloneExpr(e.C)
		c.X = CloneExpr(e.X)
		c.Y = CloneExpr(e.Y)
		return &c
	case *Call:
		c := *e
		if e.Fun != nil {
			fun := *e.Fun
			c.Fun = &fun
		}
		c.Args = nil
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return &c
	case *Index:
		c := *e
		c.X = CloneExpr(e.X)
		c.Idx = CloneExpr(e.Idx)
		return &c
	case *Member:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *CastExpr:
		c := *e
		c.X = CloneExpr(e.X)
		return &c
	case *SizeofExpr:
		c := *e
		return &c
	}
	return e // unknown node kinds pass through unchanged
}
