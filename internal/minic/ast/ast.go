// Package ast defines the abstract syntax tree of MiniC. Nodes carry
// source positions (needed for diagnostics and for the
// implementation-defined __LINE__ semantics) and, after semantic
// analysis, resolved types and symbols.
package ast

import (
	"compdiff/internal/minic/token"
	"compdiff/internal/minic/types"
)

// Node is the common interface of all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is an expression node. After sema, Type() returns the value type.
type Expr interface {
	Node
	Type() *types.Type
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------------------
// Program structure

// Program is a complete translation unit.
type Program struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	Name    string
	Fields  []*VarDecl // only Name/DeclType used
	NamePos token.Pos
	Type    *types.Type // set by sema
}

func (d *StructDecl) Pos() token.Pos { return d.NamePos }

// StorageClass distinguishes ordinary locals from C 'static' locals,
// whose single shared instance is what makes the paper's Listing 3
// (tcpdump GET_LINKADDR_STRING) unstable.
type StorageClass int

const (
	Auto StorageClass = iota
	Static
)

// VarDecl declares a variable (global, local, param, or struct field).
type VarDecl struct {
	Name     string
	DeclType *types.Type
	Init     Expr // optional
	NamePos  token.Pos
	Storage  StorageClass

	// Set by sema/compiler.
	Sym *Symbol
}

func (d *VarDecl) Pos() token.Pos { return d.NamePos }

// FuncDecl declares (and defines) a function.
type FuncDecl struct {
	Name    string
	Result  *types.Type
	Params  []*VarDecl
	Body    *BlockStmt
	NamePos token.Pos

	Type *types.Type // set by sema
}

func (d *FuncDecl) Pos() token.Pos { return d.NamePos }

// SymbolKind classifies resolved symbols.
type SymbolKind int

const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
	SymStaticLocal
	SymFunc
	SymBuiltin
)

// Symbol is a resolved name: a variable, parameter, function, or builtin.
type Symbol struct {
	Kind SymbolKind
	Name string
	Type *types.Type

	// Identity used by the compiler's layout planner.
	Index int // per-kind index assigned by sema

	// For functions.
	Func *FuncDecl
	// For builtins.
	Builtin int
}

// ---------------------------------------------------------------------------
// Statements

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	LBrace token.Pos
	Stmts  []Stmt
}

func (s *BlockStmt) Pos() token.Pos { return s.LBrace }
func (*BlockStmt) stmtNode()        {}

// DeclStmt wraps local variable declarations.
type DeclStmt struct {
	Decls []*VarDecl
}

func (s *DeclStmt) Pos() token.Pos {
	if len(s.Decls) > 0 {
		return s.Decls[0].NamePos
	}
	return token.Pos{}
}
func (*DeclStmt) stmtNode() {}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	X Expr
}

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (*ExprStmt) stmtNode()        {}

// IfStmt is if/else.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (*IfStmt) stmtNode()        {}

// WhileStmt is a while loop.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

func (s *WhileStmt) Pos() token.Pos { return s.WhilePos }
func (*WhileStmt) stmtNode()        {}

// ForStmt is a C-style for loop.
type ForStmt struct {
	ForPos token.Pos
	Init   Stmt // DeclStmt or ExprStmt, may be nil
	Cond   Expr // may be nil (infinite)
	Post   Expr // may be nil
	Body   Stmt
}

func (s *ForStmt) Pos() token.Pos { return s.ForPos }
func (*ForStmt) stmtNode()        {}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	RetPos token.Pos
	Value  Expr // may be nil
}

func (s *ReturnStmt) Pos() token.Pos { return s.RetPos }
func (*ReturnStmt) stmtNode()        {}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ KwPos token.Pos }

func (s *BreakStmt) Pos() token.Pos { return s.KwPos }
func (*BreakStmt) stmtNode()        {}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ KwPos token.Pos }

func (s *ContinueStmt) Pos() token.Pos { return s.KwPos }
func (*ContinueStmt) stmtNode()        {}

// ---------------------------------------------------------------------------
// Expressions

type typedExpr struct {
	T *types.Type
}

func (e *typedExpr) Type() *types.Type     { return e.T }
func (e *typedExpr) SetType(t *types.Type) { e.T = t }
func (*typedExpr) exprNode()               {}

// IntLit is an integer (or char) literal.
type IntLit struct {
	typedExpr
	Value  int64
	LitPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }

// FloatLit is a floating literal.
type FloatLit struct {
	typedExpr
	Value  float64
	LitPos token.Pos
}

func (e *FloatLit) Pos() token.Pos { return e.LitPos }

// StrLit is a string literal; its value is interned into rodata.
type StrLit struct {
	typedExpr
	Value  string
	LitPos token.Pos
}

func (e *StrLit) Pos() token.Pos { return e.LitPos }

// LineExpr is the __LINE__ construct. Its numeric value is chosen by
// the compiler implementation (token line vs. statement line), one of
// the paper's implementation-defined divergence categories.
type LineExpr struct {
	typedExpr
	KwPos    token.Pos
	StmtLine int // line of the enclosing statement, set by sema
}

func (e *LineExpr) Pos() token.Pos { return e.KwPos }

// Ident is a name use, resolved by sema.
type Ident struct {
	typedExpr
	Name    string
	NamePos token.Pos
	Sym     *Symbol // set by sema
}

func (e *Ident) Pos() token.Pos { return e.NamePos }

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	Neg        UnaryOp = iota // -x
	LogicalNot                // !x
	BitNot                    // ~x
	Deref                     // *p
	AddrOf                    // &x
	PreInc                    // ++x
	PreDec                    // --x
	PostInc                   // x++
	PostDec                   // x--
)

var unaryNames = map[UnaryOp]string{
	Neg: "-", LogicalNot: "!", BitNot: "~", Deref: "*", AddrOf: "&",
	PreInc: "++", PreDec: "--", PostInc: "++", PostDec: "--",
}

// String returns the operator spelling.
func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a unary expression.
type Unary struct {
	typedExpr
	Op    UnaryOp
	X     Expr
	OpPos token.Pos
}

func (e *Unary) Pos() token.Pos { return e.OpPos }

// BinOp enumerates binary operators.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	BitAnd
	BitOr
	BitXor
	LogAnd
	LogOr
)

var binNames = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%", Shl: "<<", Shr: ">>",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
	BitAnd: "&", BitOr: "|", BitXor: "^", LogAnd: "&&", LogOr: "||",
}

// String returns the operator spelling.
func (op BinOp) String() string { return binNames[op] }

// IsComparison reports whether op yields a boolean int.
func (op BinOp) IsComparison() bool {
	switch op {
	case Lt, Le, Gt, Ge, Eq, Ne:
		return true
	}
	return false
}

// Binary is a binary expression. CommonType records the type in which
// the operation is performed after the usual arithmetic conversions;
// compiler implementations may legally widen it further (the paper's
// IntError example), which is one of the divergence axes.
type Binary struct {
	typedExpr
	Op         BinOp
	X, Y       Expr
	OpPos      token.Pos
	CommonType *types.Type // set by sema for arithmetic ops
}

func (e *Binary) Pos() token.Pos { return e.X.Pos() }

// Assign is an assignment, possibly compound (+=, <<=, ...).
// For compound assignments Op holds the arithmetic operator; for plain
// `=` Op is -1.
type Assign struct {
	typedExpr
	Op    BinOp // -1 for plain '='
	LHS   Expr
	RHS   Expr
	OpPos token.Pos
}

// PlainAssign marks a non-compound assignment.
const PlainAssign BinOp = -1

func (e *Assign) Pos() token.Pos { return e.LHS.Pos() }

// Cond is the ternary ?: operator.
type Cond struct {
	typedExpr
	C, X, Y Expr
}

func (e *Cond) Pos() token.Pos { return e.C.Pos() }

// Call is a function or builtin call. Argument evaluation order is
// unspecified in C; each compiler implementation picks one — the axis
// behind the paper's EvalOrder bug category (Listing 3).
type Call struct {
	typedExpr
	Fun    *Ident
	Args   []Expr
	LParen token.Pos

	// ArityMismatch is set by sema when the call passes a different
	// number of arguments than the callee declares (permitted, as with
	// pre-C99 implicit declarations; CWE-685 material).
	ArityMismatch bool
}

func (e *Call) Pos() token.Pos { return e.Fun.Pos() }

// Index is array/pointer subscripting a[i].
type Index struct {
	typedExpr
	X, Idx   Expr
	LBracket token.Pos
}

func (e *Index) Pos() token.Pos { return e.X.Pos() }

// Member is struct member access: x.f or p->f.
type Member struct {
	typedExpr
	X      Expr
	Name   string
	Arrow  bool
	DotPos token.Pos

	Field types.Field // set by sema
}

func (e *Member) Pos() token.Pos { return e.X.Pos() }

// CastExpr is an explicit conversion `(type)x`.
type CastExpr struct {
	typedExpr
	To     *types.Type
	X      Expr
	LParen token.Pos
}

func (e *CastExpr) Pos() token.Pos { return e.LParen }

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	typedExpr
	Of    *types.Type
	KwPos token.Pos
}

func (e *SizeofExpr) Pos() token.Pos { return e.KwPos }
