package bench

import (
	"strings"
	"testing"

	"compdiff/internal/analyzer"
	"compdiff/internal/juliet"
	"compdiff/internal/sanitizer"
)

// computeAtScale evaluates a reduced suite (fast enough for unit runs)
// and caches it across tests in this package.
var cachedT3 *Table3

func table3ForTest(t *testing.T) *Table3 {
	t.Helper()
	if cachedT3 != nil {
		return cachedT3
	}
	suite := juliet.GenerateScaled(4)
	t3, err := ComputeTable3(suite, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedT3 = t3
	return t3
}

func groupOf(t *testing.T, t3 *Table3, cat analyzer.Category) *GroupResult {
	t.Helper()
	for _, gr := range t3.Groups {
		if gr.Group == cat {
			return gr
		}
	}
	t.Fatalf("no group %v", cat)
	return nil
}

func rate(n, total int) float64 { return float64(n) / float64(max(total, 1)) }

// The five findings of §4.1, asserted as shape invariants on the
// generated suite.

func TestFinding1StaticToolsWeakerWithFPs(t *testing.T) {
	t3 := table3ForTest(t)
	mem := groupOf(t, t3, analyzer.MemoryError)
	// CompDiff beats every static tool on memory errors...
	for name, st := range mem.Static {
		if st.Detected >= mem.CompDiff {
			t.Errorf("static %s detected %d >= CompDiff %d on memory errors", name, st.Detected, mem.CompDiff)
		}
	}
	// ...and static tools have non-negligible FP rates somewhere while
	// CompDiff and the sanitizers have none (guaranteed by the juliet
	// package's good-variant tests).
	anyFP := false
	for _, gr := range t3.Groups {
		for _, st := range gr.Static {
			if st.FalsePos > 0 {
				anyFP = true
			}
		}
	}
	if !anyFP {
		t.Error("expected static-tool false positives somewhere")
	}
}

func TestFinding2CompDiffComplementsSanitizers(t *testing.T) {
	t3 := table3ForTest(t)
	// Higher detection than the combined sanitizers on CWE-588 and 758.
	for _, cat := range []analyzer.Category{analyzer.BadStructPtr, analyzer.GeneralUB} {
		gr := groupOf(t, t3, cat)
		if gr.CompDiff <= gr.SanTotal {
			t.Errorf("%s: CompDiff %d should beat sanitizers %d", gr.Label, gr.CompDiff, gr.SanTotal)
		}
	}
	// Uninit: MSan specializes yet covers little; CompDiff covers most.
	un := groupOf(t, t3, analyzer.UninitMemory)
	if rate(un.San[sanitizer.MSan].Detected, un.Total) > 0.25 {
		t.Errorf("MSan on uninit = %d/%d, want small", un.San[sanitizer.MSan].Detected, un.Total)
	}
	if rate(un.CompDiff, un.Total) < 0.8 {
		t.Errorf("CompDiff on uninit = %d/%d, want large", un.CompDiff, un.Total)
	}
	// Memory errors: sanitizers win overall, CompDiff still has uniques.
	mem := groupOf(t, t3, analyzer.MemoryError)
	if mem.SanTotal <= mem.CompDiff {
		t.Errorf("sanitizers %d should beat CompDiff %d on memory errors", mem.SanTotal, mem.CompDiff)
	}
	if mem.Unique == 0 {
		t.Error("CompDiff should have unique memory-error detections")
	}
	// CWE-469: sanitizers blind, CompDiff complete.
	ps := groupOf(t, t3, analyzer.PtrSubtraction)
	if ps.SanTotal != 0 || ps.CompDiff != ps.Total {
		t.Errorf("CWE-469: san=%d compdiff=%d/%d, want 0 and all", ps.SanTotal, ps.CompDiff, ps.Total)
	}
}

func TestFinding4CompDiffMissesSanitizerSpecialties(t *testing.T) {
	t3 := table3ForTest(t)
	ie := groupOf(t, t3, analyzer.IntegerError)
	if rate(ie.CompDiff, ie.Total) > 0.3 {
		t.Errorf("CompDiff on integer errors = %d/%d, want low", ie.CompDiff, ie.Total)
	}
	if ie.San[sanitizer.UBSan].Detected <= ie.CompDiff {
		t.Error("UBSan should beat CompDiff on integer errors")
	}
	dz := groupOf(t, t3, analyzer.DivByZero)
	if dz.San[sanitizer.UBSan].Detected <= dz.CompDiff {
		t.Error("UBSan should beat CompDiff on divide-by-zero")
	}
}

func TestUniqueDetectionsExist(t *testing.T) {
	t3 := table3ForTest(t)
	if t3.TotalUnique < 10 {
		t.Errorf("total unique = %d, want substantial", t3.TotalUnique)
	}
}

func TestFormatters(t *testing.T) {
	t3 := table3ForTest(t)
	out := FormatTable3(t3)
	for _, want := range []string{"Memory error", "CompDiff", "Unique", "Divide by zero"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
	t2 := FormatTable2()
	if !strings.Contains(t2, "CWE-121") || !strings.Contains(t2, "18142") {
		t.Errorf("Table 2 output malformed:\n%s", t2)
	}
}

// Figure 1: subset detection grows with size; cross-family pairs with
// distant optimization levels dominate same-family pairs.
func TestFigure1SubsetShape(t *testing.T) {
	t3 := table3ForTest(t)
	fig := ComputeFigure1(t3.Matrix)
	if len(fig.Stats) != 9 { // sizes 2..10
		t.Fatalf("stats = %d", len(fig.Stats))
	}
	for i := 1; i < len(fig.Stats); i++ {
		if fig.Stats[i].Max < fig.Stats[i-1].Max {
			t.Error("max detections should be monotone in subset size")
		}
		if fig.Stats[i].Median < fig.Stats[i-1].Median {
			t.Error("median detections should be monotone in subset size")
		}
	}
	best, bestN := fig.BestPair()
	worst, worstN := fig.WorstPair()
	if bestN <= worstN {
		t.Fatalf("best pair %v (%d) should beat worst %v (%d)", best, bestN, worst, worstN)
	}
	// Best pair crosses families; worst pair stays within one.
	if sameFamily(best[0], best[1]) {
		t.Errorf("best pair %v should be cross-family", best)
	}
	if !sameFamily(worst[0], worst[1]) {
		t.Errorf("worst pair %v should be same-family", worst)
	}
	// The full set detects every matrix row by construction.
	full := fig.Stats[len(fig.Stats)-1]
	if full.Max != len(t3.Matrix.Rows) {
		t.Errorf("full set detects %d of %d", full.Max, len(t3.Matrix.Rows))
	}
	out := fig.Format("Figure 1")
	if !strings.Contains(out, "best pair") {
		t.Error("format output incomplete")
	}
}

func sameFamily(a, b string) bool {
	fa := strings.Split(a, " ")[0]
	fb := strings.Split(b, " ")[0]
	return fa == fb
}
