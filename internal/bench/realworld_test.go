package bench

import (
	"strings"
	"testing"

	"compdiff/internal/targets"
)

var cachedRW *RealWorld

func realWorldForTest(t *testing.T) *RealWorld {
	t.Helper()
	if cachedRW != nil {
		return cachedRW
	}
	rw, err := ComputeRealWorld(nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedRW = rw
	return rw
}

func TestRealWorldAll78Detected(t *testing.T) {
	rw := realWorldForTest(t)
	missed := []string{}
	for id, det := range rw.Detected {
		if !det {
			missed = append(missed, id)
		}
	}
	if len(missed) != 0 {
		t.Fatalf("CompDiff missed %d bugs: %v", len(missed), missed)
	}
	if len(rw.Matrix.Rows) != 78 {
		t.Fatalf("matrix rows = %d, want 78", len(rw.Matrix.Rows))
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	rw := realWorldForTest(t)
	t6 := ComputeTable6(rw)
	if t6.MemByASan != 13 || t6.MemTotal != 13 {
		t.Errorf("MemError: %d/%d by ASan, want 13/13", t6.MemByASan, t6.MemTotal)
	}
	if t6.IntByUBSan != 8 || t6.IntTotal != 8 {
		t.Errorf("IntError: %d/%d by UBSan, want 8/8", t6.IntByUBSan, t6.IntTotal)
	}
	if t6.UninitByMSan != 21 || t6.UninitTotal != 27 {
		t.Errorf("UninitMem: %d/%d by MSan, want 21/27", t6.UninitByMSan, t6.UninitTotal)
	}
	if t6.CaughtTotal != 42 {
		t.Errorf("sanitizers caught %d, want 42", t6.CaughtTotal)
	}
	if got := t6.AllTotal - t6.CaughtTotal; got != 36 {
		t.Errorf("unique to CompDiff = %d, want 36", got)
	}
	out := FormatTable6(t6)
	if !strings.Contains(out, "unique to CompDiff: 36 of 78") {
		t.Errorf("format:\n%s", out)
	}
}

func TestFigure2SubsetShape(t *testing.T) {
	rw := realWorldForTest(t)
	fig := ComputeFigure1(rw.Matrix)
	best, bestN := fig.BestPair()
	worst, worstN := fig.WorstPair()
	if bestN <= worstN {
		t.Fatalf("best %v=%d vs worst %v=%d", best, bestN, worst, worstN)
	}
	// The paper's Figure 2 annotations: best pairs cross families with
	// unoptimizing vs (aggressively) optimizing levels; worst pairs
	// stay within one family.
	if sameFamily(best[0], best[1]) {
		t.Errorf("best pair %v should cross families", best)
	}
	if !sameFamily(worst[0], worst[1]) {
		t.Errorf("worst pair %v should be same-family", worst)
	}
	full := fig.Stats[len(fig.Stats)-1].Max
	if full != 78 {
		t.Errorf("full set detects %d, want 78", full)
	}
	// The recommended pair detects the great majority (the paper: 69
	// of 78 with {clang-O0, gcc-Os}).
	ov, err := ComputeOverhead(rw)
	if err != nil {
		t.Fatal(err)
	}
	if ov.PairBugs < 60 {
		t.Errorf("recommended pair detects %d of %d, want >= 60", ov.PairBugs, ov.FullBugs)
	}
	if ov.FullNs <= ov.PairNs || ov.PairNs <= 0 {
		t.Errorf("overhead ordering wrong: 1=%d 2=%d 10=%d", ov.BaselineNs, ov.PairNs, ov.FullNs)
	}
	t.Logf("\n%s", ov.Format())
	t.Logf("\n%s", fig.Format("Figure 2"))
}

func TestTable5Formatting(t *testing.T) {
	rw := realWorldForTest(t)
	out := FormatTable5(rw.Targets, rw)
	for _, want := range []string{"Reported", "Confirmed", "Fixed", "Detected", "78"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q:\n%s", want, out)
		}
	}
	t4 := FormatTable4(rw.Targets)
	if !strings.Contains(t4, "tcpdump") || !strings.Contains(t4, "gpac") {
		t.Errorf("table 4 incomplete:\n%s", t4)
	}
}

func TestSanCaughtConsistentWithPlan(t *testing.T) {
	rw := realWorldForTest(t)
	for _, tg := range rw.Targets {
		for _, b := range tg.Bugs {
			if got := rw.SanCaught[b.ID]; got != b.San {
				t.Errorf("%s: sanitizer outcome %v, planned %v", b.ID, got, b.San)
			}
		}
	}
	_ = targets.CategoryCounts(rw.Targets)
}
