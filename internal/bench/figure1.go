package bench

import (
	"fmt"
	"strings"

	"compdiff/internal/core"
)

// Figure1 is the subset analysis of §4.2: for every subset of the
// compiler implementations (sizes 2..k), how many of the detected bugs
// would that subset still detect. The paper's observations, which the
// formatter surfaces: detection grows with subset size; cross-family
// unoptimizing+aggressive pairs are the best two-implementation
// choices; same-family adjacent levels are the worst.
type Figure1 struct {
	Stats []core.SubsetStat
	Names []string
}

// ComputeFigure1 sweeps subsets over a bug matrix (from Table 3 for
// Figure 1, from the real-world bugs for Figure 2).
func ComputeFigure1(matrix *core.BugMatrix) *Figure1 {
	return &Figure1{Stats: matrix.SubsetSweep(), Names: matrix.ImplNames}
}

// BestPair returns the best-performing two-implementation subset and
// its detection count.
func (f *Figure1) BestPair() ([]string, int) {
	for _, st := range f.Stats {
		if st.Size == 2 {
			return f.subsetNames(st.Best), st.Max
		}
	}
	return nil, 0
}

// WorstPair returns the worst-performing two-implementation subset.
func (f *Figure1) WorstPair() ([]string, int) {
	for _, st := range f.Stats {
		if st.Size == 2 {
			return f.subsetNames(st.Worst), st.Min
		}
	}
	return nil, 0
}

func (f *Figure1) subsetNames(idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = f.Names[j]
	}
	return out
}

// Format renders the figure as a table plus the annotations the paper
// draws on the plot (best/worst subsets per size).
func (f *Figure1) Format(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s %8s %6s %8s %8s %8s %6s   %s\n",
		"size", "#subsets", "min", "q1", "median", "q3", "max", "best / worst subsets")
	for _, st := range f.Stats {
		fmt.Fprintf(&b, "%4d %8d %6d %8.1f %8.1f %8.1f %6d   best=%v worst=%v\n",
			st.Size, st.Subsets, st.Min, st.Q1, st.Median, st.Q3, st.Max,
			f.subsetNames(st.Best), f.subsetNames(st.Worst))
	}
	best, bn := f.BestPair()
	worst, wn := f.WorstPair()
	full := f.Stats[len(f.Stats)-1].Max
	fmt.Fprintf(&b, "best pair  %v detects %d (%.0f%% of the full set's %d)\n",
		best, bn, 100*float64(bn)/float64(maxInt(full, 1)), full)
	fmt.Fprintf(&b, "worst pair %v detects %d\n", worst, wn)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
