// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§4): Table 2 (suite
// overview), Table 3 (detection/false-positive rates on the Juliet
// suite), Figure 1 (compiler-implementation subsets on Juliet), Table
// 4 (target projects), Table 5 (real-world bugs by root cause), Table
// 6 (sanitizer overlap), Figure 2 (subsets on the real-world bugs),
// and the §5 overhead measurements.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"compdiff/internal/analyzer"
	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/juliet"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/sanitizer"
)

// Group labels, ordered as in Table 3.
var table3Groups = []struct {
	Label string
	Group analyzer.Category
}{
	{"Memory error", analyzer.MemoryError},
	{"UB for input to API", analyzer.APIMisuse},
	{"Bad struct. pointer", analyzer.BadStructPtr},
	{"Bad function call", analyzer.BadCall},
	{"UB", analyzer.GeneralUB},
	{"Integer error", analyzer.IntegerError},
	{"Divide by zero", analyzer.DivByZero},
	{"Null pointer deref.", analyzer.NullDeref},
	{"Uninitialized memory", analyzer.UninitMemory},
	{"UB of pointer Sub.", analyzer.PtrSubtraction},
}

// ToolStats accumulates a tool's results on one group.
type ToolStats struct {
	Detected int // bad variants reported (true positives)
	FalsePos int // good variants reported (false alarms)
}

// DetectRate is TP / total bugs.
func (s ToolStats) DetectRate(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(s.Detected) / float64(total)
}

// FPRate is the paper's definition: false alarms out of all reports.
func (s ToolStats) FPRate() float64 {
	if s.Detected+s.FalsePos == 0 {
		return 0
	}
	return float64(s.FalsePos) / float64(s.Detected+s.FalsePos)
}

// GroupResult is one Table 3 row.
type GroupResult struct {
	Label string
	Group analyzer.Category
	Total int

	Static   map[string]*ToolStats // coverity, cppcheck, infer
	San      map[sanitizer.Tool]*ToolStats
	SanTotal int // bugs caught by at least one sanitizer
	CompDiff int
	Unique   int // CompDiff-only (vs. the sanitizers), the last column
}

// Table3 is the full detection-rate comparison.
type Table3 struct {
	Groups []*GroupResult

	// Matrix feeds the Figure 1 subset analysis: one row per
	// CompDiff-detected bug with each implementation's output hash.
	Matrix *core.BugMatrix

	// TotalUnique across groups (the abstract's 1,409 analog).
	TotalUnique int
}

// caseResult is the per-case evaluation outcome.
type caseResult struct {
	c          juliet.Case
	compDiff   bool
	hashes     []uint64
	sanHit     map[sanitizer.Tool]bool
	staticBad  map[string]bool
	staticGood map[string]bool
}

// ComputeTable3 evaluates every tool on the suite.
func ComputeTable3(suite *juliet.Suite, cfgs []compiler.Config) (*Table3, error) {
	if len(cfgs) == 0 {
		cfgs = compiler.DefaultSet()
	}
	results := make([]caseResult, len(suite.Cases))
	var firstErr error
	var errMu sync.Mutex

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := evaluateCase(suite.Cases[i], cfgs)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", suite.Cases[i].Name, err)
					}
					errMu.Unlock()
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range suite.Cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	t3 := &Table3{Matrix: &core.BugMatrix{}}
	for _, cfg := range cfgs {
		t3.Matrix.ImplNames = append(t3.Matrix.ImplNames, cfg.Name())
	}
	byGroup := map[analyzer.Category]*GroupResult{}
	for _, g := range table3Groups {
		gr := &GroupResult{
			Label:  g.Label,
			Group:  g.Group,
			Static: map[string]*ToolStats{},
			San:    map[sanitizer.Tool]*ToolStats{},
		}
		for _, tool := range analyzer.AllTools() {
			gr.Static[tool.Name()] = &ToolStats{}
		}
		for _, tool := range sanitizer.AllTools() {
			gr.San[tool] = &ToolStats{}
		}
		byGroup[g.Group] = gr
		t3.Groups = append(t3.Groups, gr)
	}

	for _, res := range results {
		gr := byGroup[res.c.Group]
		if gr == nil {
			continue
		}
		gr.Total++
		anySan := false
		for tool, hit := range res.sanHit {
			if hit {
				gr.San[tool].Detected++
				anySan = true
			}
		}
		if anySan {
			gr.SanTotal++
		}
		if res.compDiff {
			gr.CompDiff++
			if !anySan {
				gr.Unique++
			}
			t3.Matrix.Rows = append(t3.Matrix.Rows, res.hashes)
		}
		for name, hit := range res.staticBad {
			if hit {
				gr.Static[name].Detected++
			}
		}
		for name, hit := range res.staticGood {
			if hit {
				gr.Static[name].FalsePos++
			}
		}
	}
	for _, gr := range t3.Groups {
		t3.TotalUnique += gr.Unique
	}
	return t3, nil
}

func evaluateCase(c juliet.Case, cfgs []compiler.Config) (caseResult, error) {
	res := caseResult{
		c:          c,
		sanHit:     map[sanitizer.Tool]bool{},
		staticBad:  map[string]bool{},
		staticGood: map[string]bool{},
	}

	badProg, err := parser.Parse(c.Bad)
	if err != nil {
		return res, err
	}
	badInfo, err := sema.Check(badProg)
	if err != nil {
		return res, err
	}
	goodProg, err := parser.Parse(c.Good)
	if err != nil {
		return res, err
	}
	goodInfo, err := sema.Check(goodProg)
	if err != nil {
		return res, err
	}

	// CompDiff on the bad variant.
	suite, err := core.Build(badInfo, cfgs, core.Options{})
	if err != nil {
		return res, err
	}
	o := suite.Run(c.Input)
	res.compDiff = o.Diverged
	res.hashes = o.Hashes

	// Sanitizers on the bad variant. Only an explicit sanitizer report
	// counts: a plain crash is visible to any tool (and to none
	// specifically), which is how the paper's X cells read.
	for _, tool := range sanitizer.AllTools() {
		r, err := sanitizer.NewRunner(badInfo, tool)
		if err != nil {
			return res, err
		}
		_, rep := r.Run(c.Input)
		res.sanHit[tool] = rep != nil
	}

	// Static tools on both variants; a finding counts only in the
	// case's own category (the paper evaluates per-CWE checkers).
	for _, tool := range analyzer.AllTools() {
		for _, f := range tool.Analyze(badInfo) {
			if f.Category == c.Group {
				res.staticBad[tool.Name()] = true
			}
		}
		for _, f := range tool.Analyze(goodInfo) {
			if f.Category == c.Group {
				res.staticGood[tool.Name()] = true
			}
		}
	}
	return res, nil
}

// FormatTable3 renders the table like the paper's layout.
func FormatTable3(t3 *Table3) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s | %-28s | %-22s | %9s %9s %7s\n",
		"Group", "#Tests", "Static (detect%/FP%)", "Sanitizers (detect%)", "SanTotal", "CompDiff", "Unique")
	staticNames := []string{"coverity", "cppcheck", "infer"}
	for _, gr := range t3.Groups {
		var st []string
		for _, name := range staticNames {
			s := gr.Static[name]
			st = append(st, fmt.Sprintf("%3.0f/%2.0f", 100*s.DetectRate(gr.Total), 100*s.FPRate()))
		}
		var sn []string
		for _, tool := range sanitizer.AllTools() {
			sn = append(sn, fmt.Sprintf("%3.0f", 100*gr.San[tool].DetectRate(gr.Total)))
		}
		fmt.Fprintf(&b, "%-22s %6d | %-28s | %-22s | %8.0f%% %8.0f%% %7d\n",
			gr.Label, gr.Total,
			strings.Join(st, " "),
			strings.Join(sn, " "),
			100*float64(gr.SanTotal)/float64(max(gr.Total, 1)),
			100*float64(gr.CompDiff)/float64(max(gr.Total, 1)),
			gr.Unique)
	}
	fmt.Fprintf(&b, "total CompDiff-unique bugs vs sanitizers: %d\n", t3.TotalUnique)
	return b.String()
}

// FormatTable2 renders the suite overview.
func FormatTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-42s %8s %8s\n", "CWE-ID", "Description", "#Paper", "#Here")
	paper, here := 0, 0
	rows := append([]juliet.CWEInfo(nil), juliet.Catalog...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	for _, info := range rows {
		fmt.Fprintf(&b, "%-10s %-42s %8d %8d\n", info.ID, info.Description, info.PaperCount, info.Count)
		paper += info.PaperCount
		here += info.Count
	}
	fmt.Fprintf(&b, "%-10s %-42s %8d %8d\n", "Total", "", paper, here)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
