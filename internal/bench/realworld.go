package bench

import (
	"fmt"
	"strings"
	"time"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/sanitizer"
	"compdiff/internal/targets"
	"compdiff/internal/vm"
)

// RealWorld holds everything §4.3 reports: per-bug CompDiff outcomes
// (Table 5), sanitizer overlap (Table 6), and the per-implementation
// output hashes behind Figure 2.
type RealWorld struct {
	Targets []*targets.Target

	// Detected[bugID] = CompDiff saw the divergence on the trigger.
	Detected map[string]bool

	// SanCaught[bugID] = some sanitizer reported on the trigger.
	SanCaught map[string]targets.SanTool

	Matrix *core.BugMatrix
	BugIDs []string // row order of Matrix
}

// ComputeRealWorld evaluates every planted bug under the given
// implementations.
func ComputeRealWorld(cfgs []compiler.Config) (*RealWorld, error) {
	if len(cfgs) == 0 {
		cfgs = compiler.DefaultSet()
	}
	rw := &RealWorld{
		Targets:   targets.All(),
		Detected:  map[string]bool{},
		SanCaught: map[string]targets.SanTool{},
		Matrix:    &core.BugMatrix{},
	}
	for _, cfg := range cfgs {
		rw.Matrix.ImplNames = append(rw.Matrix.ImplNames, cfg.Name())
	}
	for _, tg := range rw.Targets {
		prog, err := parser.Parse(tg.Src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tg.Name, err)
		}
		info, err := sema.Check(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tg.Name, err)
		}
		opts := core.Options{}
		if tg.NeedsNormalizer {
			opts.Normalizer = core.DefaultNormalizer()
		}
		suite, err := core.Build(info, cfgs, opts)
		if err != nil {
			return nil, err
		}
		runners := map[sanitizer.Tool]*sanitizer.Runner{}
		for _, tool := range sanitizer.AllTools() {
			r, err := sanitizer.NewRunner(info, tool)
			if err != nil {
				return nil, err
			}
			runners[tool] = r
		}
		for _, b := range tg.Bugs {
			o := suite.Run(b.Trigger)
			rw.Detected[b.ID] = o.Diverged
			if o.Diverged {
				rw.Matrix.Rows = append(rw.Matrix.Rows, o.Hashes)
				rw.BugIDs = append(rw.BugIDs, b.ID)
			}
			for tool, r := range runners {
				if _, rep := r.Run(b.Trigger); rep != nil {
					switch tool {
					case sanitizer.ASan:
						rw.SanCaught[b.ID] = targets.ByASan
					case sanitizer.UBSan:
						rw.SanCaught[b.ID] = targets.ByUBSan
					case sanitizer.MSan:
						rw.SanCaught[b.ID] = targets.ByMSan
					}
				}
			}
		}
	}
	return rw, nil
}

// FormatTable4 renders the target-project overview.
func FormatTable4(ts []*targets.Target) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-16s %-10s %10s\n", "Target", "Input type", "Version", "Size(KLoC)")
	for _, t := range ts {
		fmt.Fprintf(&b, "%-14s %-16s %-10s %10d\n", t.Name, t.InputType, t.Version, t.PaperKLoC)
	}
	return b.String()
}

// FormatTable5 renders bugs by root cause with report outcomes.
func FormatTable5(ts []*targets.Target, rw *RealWorld) string {
	t5 := targets.ComputeTable5(ts)
	cats := []targets.Category{
		targets.EvalOrder, targets.UninitMem, targets.IntError,
		targets.MemError, targets.PointerCmp, targets.Line, targets.Misc,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range cats {
		fmt.Fprintf(&b, " %10s", c)
	}
	fmt.Fprintf(&b, " %7s\n", "Total")
	row := func(name string, m map[targets.Category]int) {
		fmt.Fprintf(&b, "%-10s", name)
		total := 0
		for _, c := range cats {
			fmt.Fprintf(&b, " %10d", m[c])
			total += m[c]
		}
		fmt.Fprintf(&b, " %7d\n", total)
	}
	row("Reported", t5.Reported)
	row("Confirmed", t5.Confirmed)
	row("Fixed", t5.Fixed)
	if rw != nil {
		detected := map[targets.Category]int{}
		for _, tg := range ts {
			for _, bug := range tg.Bugs {
				if rw.Detected[bug.ID] {
					detected[bug.Cat]++
				}
			}
		}
		row("Detected", detected)
	}
	return b.String()
}

// Table6 aggregates sanitizer overlap on the detected bugs.
type Table6 struct {
	MemByASan      int
	MemTotal       int
	IntByUBSan     int
	IntTotal       int
	UninitByMSan   int
	UninitTotal    int
	RemainingTotal int
	CaughtTotal    int
	AllTotal       int
}

// ComputeTable6 tallies which CompDiff findings sanitizers also see.
func ComputeTable6(rw *RealWorld) *Table6 {
	t6 := &Table6{}
	for _, tg := range rw.Targets {
		for _, b := range tg.Bugs {
			t6.AllTotal++
			caught := rw.SanCaught[b.ID] != targets.NoSan
			if caught {
				t6.CaughtTotal++
			}
			switch b.Cat {
			case targets.MemError:
				t6.MemTotal++
				if rw.SanCaught[b.ID] == targets.ByASan {
					t6.MemByASan++
				}
			case targets.IntError:
				t6.IntTotal++
				if rw.SanCaught[b.ID] == targets.ByUBSan {
					t6.IntByUBSan++
				}
			case targets.UninitMem:
				t6.UninitTotal++
				if rw.SanCaught[b.ID] == targets.ByMSan {
					t6.UninitByMSan++
				}
			default:
				if !caught {
					t6.RemainingTotal++
				}
			}
		}
	}
	return t6
}

// FormatTable6 renders the overlap table.
func FormatTable6(t6 *Table6) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %6s\n", "CompDiff bugs", "bySan", "total")
	fmt.Fprintf(&b, "%-16s %6d %6d   (ASan)\n", "MemError", t6.MemByASan, t6.MemTotal)
	fmt.Fprintf(&b, "%-16s %6d %6d   (UBSan)\n", "IntError", t6.IntByUBSan, t6.IntTotal)
	fmt.Fprintf(&b, "%-16s %6d %6d   (MSan)\n", "UninitMem", t6.UninitByMSan, t6.UninitTotal)
	fmt.Fprintf(&b, "%-16s %6d %6d\n", "Remaining bugs", 0, t6.RemainingTotal)
	fmt.Fprintf(&b, "%-16s %6d %6d\n", "Total", t6.CaughtTotal, t6.AllTotal)
	fmt.Fprintf(&b, "unique to CompDiff: %d of %d\n", t6.AllTotal-t6.CaughtTotal, t6.AllTotal)
	return b.String()
}

// Overhead quantifies §5's run-time cost trade-off: executing an input
// on k CompDiff binaries costs ~k× one execution; the recommended
// 2-implementation subset cuts that to ~2× while keeping most bugs.
type Overhead struct {
	BaselineNs  int64 // one binary
	FullNs      int64 // all ten
	PairNs      int64 // {gcc -Os, clang -O0}
	PairBugs    int   // bugs the pair still detects
	FullBugs    int
	PairConfigs []string
}

// RecommendedPair is the paper's resource-constrained configuration.
func RecommendedPair() []compiler.Config {
	return []compiler.Config{
		{Family: compiler.GCC, Opt: compiler.Os},
		{Family: compiler.Clang, Opt: compiler.O0},
	}
}

// ComputeOverhead measures wall-clock per-input cost on the target
// corpus and the pair's detection count from the full matrix.
func ComputeOverhead(rw *RealWorld) (*Overhead, error) {
	ov := &Overhead{FullBugs: len(rw.Matrix.Rows)}
	pair := RecommendedPair()
	for _, cfg := range pair {
		ov.PairConfigs = append(ov.PairConfigs, cfg.Name())
	}
	pairIdx := []int{}
	for _, cfg := range pair {
		for i, name := range rw.Matrix.ImplNames {
			if name == cfg.Name() {
				pairIdx = append(pairIdx, i)
			}
		}
	}
	if len(pairIdx) == 2 {
		ov.PairBugs = rw.Matrix.DetectedBy(pairIdx)
	}

	// Timing: run every target seed through 1, 2, and 10 binaries.
	time1, err := timeConfigs([]compiler.Config{{Family: compiler.Clang, Opt: compiler.O2}})
	if err != nil {
		return nil, err
	}
	time2, err := timeConfigs(pair)
	if err != nil {
		return nil, err
	}
	time10, err := timeConfigs(compiler.DefaultSet())
	if err != nil {
		return nil, err
	}
	ov.BaselineNs, ov.PairNs, ov.FullNs = time1, time2, time10
	return ov, nil
}

func timeConfigs(cfgs []compiler.Config) (int64, error) {
	var total time.Duration
	runs := 0
	for _, tg := range targets.All() {
		prog, err := parser.Parse(tg.Src)
		if err != nil {
			return 0, err
		}
		info, err := sema.Check(prog)
		if err != nil {
			return 0, err
		}
		var machines []*vm.Machine
		for _, cfg := range cfgs {
			bin, err := compiler.Compile(info, cfg)
			if err != nil {
				return 0, err
			}
			machines = append(machines, vm.New(bin, vm.Options{}))
		}
		// Warm up (fork-server load), then time several passes.
		for _, seed := range tg.Seeds {
			for _, m := range machines {
				m.Run(seed)
			}
		}
		const passes = 20
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, seed := range tg.Seeds {
				for _, m := range machines {
					m.Run(seed)
				}
			}
		}
		total += time.Since(start)
		runs += passes * len(tg.Seeds)
	}
	if runs == 0 {
		return 0, nil
	}
	return int64(total) / int64(runs), nil
}

// FormatOverhead renders the §5 discussion numbers.
func (ov *Overhead) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-input cost: 1 impl %s, pair %s (%.1fx), full ten %s (%.1fx)\n",
		time.Duration(ov.BaselineNs), time.Duration(ov.PairNs),
		float64(ov.PairNs)/float64(max(int(ov.BaselineNs), 1)),
		time.Duration(ov.FullNs),
		float64(ov.FullNs)/float64(max(int(ov.BaselineNs), 1)))
	fmt.Fprintf(&b, "%v detects %d of %d real-world bugs\n", ov.PairConfigs, ov.PairBugs, ov.FullBugs)
	return b.String()
}
