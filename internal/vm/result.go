// Package vm executes compiled MiniC binaries. The machine provides a
// flat byte memory with rodata/globals/stack/heap segments, captures
// stdout/stderr, enforces a step limit (the timeout analog), exposes a
// fork-server-style reset so one loaded binary can run many inputs
// cheaply, and optionally applies sanitizer instrumentation
// (ASan/UBSan/MSan analogs).
//
// Execution behaviour on undefined behaviour is governed by the
// binary's ir.Profile — the personality its compiler implementation
// baked in — which is what makes unstable code observable across
// implementations while keeping defined programs bit-identical.
package vm

import (
	"fmt"
	"strconv"

	"compdiff/internal/hash"
)

// ExitKind classifies how an execution ended.
type ExitKind int

const (
	Exited    ExitKind = iota // normal termination, Code holds the status
	SigSegv                   // unmapped or protected memory access
	SigFpe                    // integer division trap
	Abort                     // allocator integrity abort (glibc-style)
	StepLimit                 // exceeded the step budget (timeout analog)
	SanAbort                  // a sanitizer reported an error and halted
	VMFault                   // malformed bytecode (a compiler bug in this repo)
)

// String names the exit kind.
func (k ExitKind) String() string {
	switch k {
	case Exited:
		return "exited"
	case SigSegv:
		return "SIGSEGV"
	case SigFpe:
		return "SIGFPE"
	case Abort:
		return "SIGABRT"
	case StepLimit:
		return "timeout"
	case SanAbort:
		return "sanitizer-abort"
	default:
		return "vm-fault"
	}
}

// SanReport is a sanitizer finding.
type SanReport struct {
	Tool string // "asan", "ubsan", "msan"
	Kind string // e.g. "heap-buffer-overflow", "signed-integer-overflow"
	Func string
	Line int32
}

// String renders the report like a sanitizer one-liner.
func (r *SanReport) String() string {
	return fmt.Sprintf("%s: %s in %s at line %d", r.Tool, r.Kind, r.Func, r.Line)
}

// Result is the observable outcome of one execution.
//
// Results returned by Machine.Run own their byte slices. Results from
// the RunShared fast path alias machine-owned buffers and are valid
// only until the machine's next run; Clone materializes an
// independent copy.
type Result struct {
	Exit   ExitKind
	Code   int32 // exit status when Exit == Exited
	Stdout []byte
	Stderr []byte
	Steps  int64
	San    *SanReport // non-nil iff Exit == SanAbort

	// Trace is the executed source-line sequence, populated only in
	// TraceLines mode (fault-localization support, paper §5).
	Trace []int32
}

// Clone returns a Result that shares nothing with machine-owned
// buffers: the divergence-capture step of the fast path, and the slow
// path's return value.
func (r *Result) Clone() *Result {
	c := *r
	c.Stdout = append([]byte(nil), r.Stdout...)
	c.Stderr = append([]byte(nil), r.Stderr...)
	if r.Trace != nil {
		c.Trace = append([]int32(nil), r.Trace...)
	}
	return &c
}

// Crashed reports whether the run ended in a crash-like state (what a
// fuzzer would save as a crash).
func (r *Result) Crashed() bool {
	switch r.Exit {
	case SigSegv, SigFpe, Abort, SanAbort:
		return true
	}
	return false
}

// Encode renders the observable output as a canonical byte string:
// exit status plus both streams. This is the byte string CompDiff
// checksums and compares across compiler implementations.
func (r *Result) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, len(r.Stdout)+len(r.Stderr)+32))
}

// AppendEncode appends the canonical encoding to out and returns it,
// allocating only if out lacks capacity.
func (r *Result) AppendEncode(out []byte) []byte {
	out = append(out, "exit:"...)
	out = append(out, r.Exit.String()...)
	out = append(out, ':')
	out = strconv.AppendInt(out, int64(r.Code), 10)
	out = append(out, "\n--stdout--\n"...)
	out = append(out, r.Stdout...)
	out = append(out, "\n--stderr--\n"...)
	out = append(out, r.Stderr...)
	return out
}

// Canonical-encoding separators, preconverted so EncodeTo does not
// allocate for the string constants.
var (
	encStdoutSep = []byte("\n--stdout--\n")
	encStderrSep = []byte("\n--stderr--\n")
)

// EncodeTo streams the canonical encoding into d without materializing
// it: the digest reads the exit header from a stack scratch buffer and
// the output streams straight from the Result's (possibly
// machine-owned) slices. The digest state afterwards is byte-for-byte
// what writing Encode() would have produced — the zero-copy checksum
// protocol the differential fast path rides.
func (r *Result) EncodeTo(d *hash.Digest) {
	var scratch [48]byte // fits the longest exit header plus the separator
	hdr := append(scratch[:0], "exit:"...)
	hdr = append(hdr, r.Exit.String()...)
	hdr = append(hdr, ':')
	hdr = strconv.AppendInt(hdr, int64(r.Code), 10)
	hdr = append(hdr, encStdoutSep...)
	d.Write(hdr)
	d.Write(r.Stdout)
	d.Write(encStderrSep)
	d.Write(r.Stderr)
}

// OutputHash is the MurmurHash3 checksum of the canonical output,
// matching the paper's use of MurmurHash3 for output comparison.
func (r *Result) OutputHash() uint64 {
	var d hash.Digest
	d.Reset(0xc0de)
	r.EncodeTo(&d)
	h1, _ := d.Sum128()
	return h1
}
