package vm

import (
	"encoding/binary"
	"math"

	"compdiff/internal/ir"
)

// ASan shadow byte values.
const (
	shadowOK      = 0
	shadowHeapRZ  = 1
	shadowFreed   = 2
	shadowStackRZ = 3
)

// mapped reports whether [addr, addr+size) is inside the process image.
func mapped(addr, size uint64) bool {
	if addr < ir.NullTop {
		return false
	}
	end := addr + size
	return end >= addr && end <= ir.MemSize
}

// checkAccess validates a data access, firing traps and sanitizer
// reports. Returns false when execution must stop.
func (m *Machine) checkAccess(addr, size uint64, write bool, line int32) bool {
	if !mapped(addr, size) {
		if m.opts.San == SanUBSan && addr < ir.NullTop {
			m.report("ubsan", "null-pointer-dereference", line)
			return false
		}
		m.trap(SigSegv)
		return false
	}
	if write && addr < ir.GlobalsBase {
		// String literals live in read-only memory.
		m.trap(SigSegv)
		return false
	}
	if m.asanShadow != nil {
		for i := addr; i < addr+size; i++ {
			switch m.asanShadow[i] {
			case shadowHeapRZ:
				m.report("asan", "heap-buffer-overflow", line)
				return false
			case shadowFreed:
				m.report("asan", "heap-use-after-free", line)
				return false
			case shadowStackRZ:
				m.report("asan", "stack-buffer-overflow", line)
				return false
			}
		}
	}
	return true
}

// rawLoad reads width bytes little-endian without checks. The
// fixed-width cases compile to single loads; callers have already
// bounds-checked the access, so addr+width is in range.
func (m *Machine) rawLoad(addr uint64, width int) uint64 {
	switch width {
	case 1:
		return uint64(m.mem[addr])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.mem[addr:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.mem[addr:]))
	case 8:
		return binary.LittleEndian.Uint64(m.mem[addr:])
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// rawStore writes width bytes little-endian without checks.
func (m *Machine) rawStore(addr uint64, width int, v uint64) {
	m.markDirty(addr, uint64(width))
	switch width {
	case 1:
		m.mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.mem[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.mem[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.mem[addr:], v)
	default:
		for i := 0; i < width; i++ {
			m.mem[addr+uint64(i)] = byte(v >> (8 * i))
		}
	}
}

// loadTaint reports whether any byte in the range is uninitialized.
func (m *Machine) loadTaint(addr, size uint64) bool {
	if m.msanInit == nil {
		return false
	}
	for i := addr; i < addr+size; i++ {
		if m.msanInit[i] == 0 {
			return true
		}
	}
	return false
}

// markInit marks a range initialized (or uninitialized, when a tainted
// value is stored — taint propagates through memory).
func (m *Machine) markInit(addr, size uint64, init bool) {
	if m.msanInit == nil {
		return
	}
	m.markDirty(addr, size)
	v := byte(0)
	if init {
		v = 1
	}
	for i := addr; i < addr+size; i++ {
		m.msanInit[i] = v
	}
}

func f32bits(w uint64) uint32 {
	return math.Float32bits(float32(math.Float64frombits(w)))
}

func f32val(bits uint32) uint64 {
	return math.Float64bits(float64(math.Float32frombits(bits)))
}

// ---------------------------------------------------------------------------
// Heap allocator
//
// A deliberately simple bump allocator with an optional LIFO freelist,
// parameterized by the binary's profile: header size shifts addresses,
// reuse policy decides what use-after-free observes, and the integrity
// policy decides whether a bad free aborts (glibc-style) or silently
// corrupts the allocator state. All bookkeeping lives host-side; the
// *addresses* are what the guest observes.

type heapChunk struct {
	addr uint64
	size uint64
}

type heapState struct {
	next  uint64
	live  map[uint64]uint64 // addr -> usable size
	freed map[uint64]uint64
	frees []heapChunk // LIFO freelist (exact-fit reuse)
}

func (h *heapState) reset() {
	h.next = ir.HeapBase
	if h.live == nil {
		h.live = map[uint64]uint64{}
		h.freed = map[uint64]uint64{}
	} else {
		// Runs that never touched the heap (most fuzzing inputs) skip
		// the map clears entirely.
		if len(h.live) != 0 {
			clear(h.live)
		}
		if len(h.freed) != 0 {
			clear(h.freed)
		}
	}
	h.frees = h.frees[:0]
}

const asanHeapRZ = 16

// malloc returns the guest address of a fresh chunk, or 0 when the
// arena is exhausted.
func (m *Machine) malloc(n int64) uint64 {
	if n < 0 {
		return 0
	}
	if n == 0 {
		n = 1
	}
	size := uint64(n+15) &^ 15

	if m.prof.HeapReuse && m.asanShadow == nil {
		for i := len(m.heap.frees) - 1; i >= 0; i-- {
			c := m.heap.frees[i]
			if c.size == size {
				m.heap.frees = append(m.heap.frees[:i], m.heap.frees[i+1:]...)
				delete(m.heap.freed, c.addr)
				m.heap.live[c.addr] = size
				return c.addr
			}
		}
	}

	rz := uint64(0)
	if m.asanShadow != nil {
		rz = asanHeapRZ
	}
	start := m.heap.next
	addr := start + uint64(m.prof.HeapHeader) + rz
	end := addr + size + rz
	if end > ir.HeapMax {
		return 0
	}
	m.heap.next = end
	m.heap.live[addr] = size

	if m.asanShadow != nil {
		// The redzone begins at the *requested* size, not the rounded
		// chunk size, so off-by-small overflows are caught.
		m.markDirty(start, end-start)
		req := uint64(n)
		for i := start; i < addr; i++ {
			m.asanShadow[i] = shadowHeapRZ
		}
		for i := addr; i < addr+req; i++ {
			m.asanShadow[i] = shadowOK
		}
		for i := addr + req; i < end; i++ {
			m.asanShadow[i] = shadowHeapRZ
		}
	}
	if m.msanInit != nil {
		m.markInit(addr, size, false) // malloc'd memory is uninitialized
	}
	return addr
}

// free releases a chunk. Freeing an invalid or already-freed pointer
// is UB: depending on the profile it aborts or corrupts the allocator.
func (m *Machine) free(addr uint64, line int32) {
	if addr == 0 {
		return
	}
	size, ok := m.heap.live[addr]
	if !ok {
		if _, wasFreed := m.heap.freed[addr]; wasFreed {
			if m.asanShadow != nil {
				m.report("asan", "double-free", line)
				return
			}
			if m.prof.FreeErrAbort {
				m.trap(Abort)
				return
			}
			// Silent corruption: the allocator's internal state skews,
			// changing every later allocation address.
			m.heap.next += 16 + (m.prof.Key & 0x30)
			return
		}
		if m.asanShadow != nil {
			m.report("asan", "bad-free", line)
			return
		}
		if m.prof.FreeErrAbort {
			m.trap(Abort)
			return
		}
		m.heap.next += 32 + (m.prof.Key & 0x70)
		return
	}
	delete(m.heap.live, addr)
	m.heap.freed[addr] = size
	if m.asanShadow != nil {
		// Quarantine: poison and never reuse.
		m.markDirty(addr, size)
		for i := addr; i < addr+size; i++ {
			m.asanShadow[i] = shadowFreed
		}
		return
	}
	if m.prof.HeapReuse {
		m.heap.frees = append(m.heap.frees, heapChunk{addr: addr, size: size})
	}
}
