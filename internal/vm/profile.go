package vm

import (
	"sort"

	"compdiff/internal/ir"
)

// Opcode-pair frequency profiling: the data that picks the fast
// loop's superinstruction set. A fusion peephole can only combine two
// instructions that are pc-adjacent in one function's code array and
// executed back to back, so the profiler counts exactly those dynamic
// fallthrough pairs — a taken branch, a call, or a return between two
// opcodes never increments a pair, because no peephole could fuse
// across it.

// OpPair is one fallthrough opcode pair with its dynamic execution
// count.
type OpPair struct {
	A, B  ir.Op
	Count int64
}

// PairProfile accumulates fallthrough-pair counts across runs.
type PairProfile struct {
	counts [ir.NumOps * ir.NumOps]int64
	steps  int64
}

// Steps is the total number of instructions executed into the profile.
func (p *PairProfile) Steps() int64 { return p.steps }

// Pairs returns the non-zero pairs, most frequent first (ties broken
// by opcode order, so the report is deterministic).
func (p *PairProfile) Pairs() []OpPair {
	var out []OpPair
	for a := 0; a < ir.NumOps; a++ {
		for b := 0; b < ir.NumOps; b++ {
			if n := p.counts[a*ir.NumOps+b]; n > 0 {
				out = append(out, OpPair{A: ir.Op(a), B: ir.Op(b), Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ProfilePairs executes input under the reference loop, recording
// every executed fallthrough opcode pair into prof. The run itself is
// semantically identical to Run (the reference loop is the spec);
// profiling exists for corpus measurement, not the hot path.
func (m *Machine) ProfilePairs(input []byte, prof *PairProfile) *Result {
	m.reset(input)
	m.limit = m.opts.StepLimit
	m.call(m.prog.Main)
	var prevFn *ir.Func
	prevPC := -1
	prevOp := 0
	for !m.halt {
		if fr := &m.frames[len(m.frames)-1]; uint(fr.pc) < uint(len(fr.fn.Code)) {
			op := int(fr.fn.Code[fr.pc].Op)
			if prevFn == fr.fn && fr.pc == prevPC+1 {
				prof.counts[prevOp*ir.NumOps+op]++
			}
			prevFn, prevPC, prevOp = fr.fn, fr.pc, op
		} else {
			prevFn = nil
		}
		m.step()
		prof.steps++
	}
	m.res = Result{
		Exit:   m.exit,
		Code:   m.code,
		Stdout: m.stdout,
		Stderr: m.stderr,
		Steps:  m.steps,
		San:    m.san,
	}
	return &m.res
}
