package vm_test

import (
	"fmt"
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// runWith compiles src under cfg and runs it on input.
func runWith(t *testing.T, src string, cfg compiler.Config, input []byte) *vm.Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	bin, err := compiler.Compile(info, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := vm.New(bin, vm.Options{})
	return m.Run(input)
}

// run uses the baseline implementation (gcc -O0).
func run(t *testing.T, src string, input []byte) *vm.Result {
	return runWith(t, src, compiler.Config{Family: compiler.GCC, Opt: compiler.O0}, input)
}

// stdoutOf asserts a clean exit and returns stdout.
func stdoutOf(t *testing.T, src string, input []byte) string {
	t.Helper()
	res := run(t, src, input)
	if res.Exit != vm.Exited || res.Code != 0 {
		t.Fatalf("exit = %s code=%d stderr=%q", res.Exit, res.Code, res.Stderr)
	}
	return string(res.Stdout)
}

// allOutputs runs src on input under every default implementation and
// returns the distinct canonical outputs with their compiler names.
func allOutputs(t *testing.T, src string, input []byte) map[string][]string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	outs := map[string][]string{}
	for _, cfg := range compiler.DefaultSet() {
		bin, err := compiler.Compile(info, cfg)
		if err != nil {
			t.Fatalf("compile %s: %v", cfg.Name(), err)
		}
		res := vm.New(bin, vm.Options{}).Run(input)
		key := string(res.Encode())
		outs[key] = append(outs[key], cfg.Name())
	}
	return outs
}

// requireStable asserts that all 10 implementations agree.
func requireStable(t *testing.T, src string, input []byte) {
	t.Helper()
	outs := allOutputs(t, src, input)
	if len(outs) != 1 {
		var b strings.Builder
		for out, impls := range outs {
			fmt.Fprintf(&b, "--- %v:\n%s\n", impls, out)
		}
		t.Fatalf("defined program diverged across implementations:\n%s", b.String())
	}
}

// requireUnstable asserts that at least two implementations disagree.
func requireUnstable(t *testing.T, src string, input []byte) map[string][]string {
	t.Helper()
	outs := allOutputs(t, src, input)
	if len(outs) < 2 {
		for out := range outs {
			t.Fatalf("expected divergence, all implementations produced:\n%s", out)
		}
	}
	return outs
}

// ---------------------------------------------------------------------------
// Defined-behaviour correctness

func TestHelloWorld(t *testing.T) {
	got := stdoutOf(t, `int main() { printf("hello, world\n"); return 0; }`, nil)
	if got != "hello, world\n" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestArithmetic(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int a = 17;
    int b = 5;
    printf("%d %d %d %d %d\n", a + b, a - b, a * b, a / b, a % b);
    printf("%d %d %d\n", a << 2, a >> 1, a & b);
    printf("%d %d %d\n", a | b, a ^ b, ~a);
    printf("%d %d %d %d\n", a > b, a == b, a != b, a <= b);
    long big = 4000000000L;
    printf("%ld %ld\n", big * 2L, big / 7L);
    unsigned int u = 4000000000U;
    printf("%u\n", u + 1000000000U);
    return 0;
}`, nil)
	want := "22 12 85 3 2\n68 8 1\n21 20 -18\n1 0 1 0\n8000000000 571428571\n705032704\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestUnsignedWrapIsDefined(t *testing.T) {
	requireStable(t, `
int main() {
    unsigned int x = 4294967295U;
    x = x + 1U;
    printf("%u\n", x);
    return 0;
}`, nil)
	got := stdoutOf(t, `
int main() {
    unsigned int x = 4294967295U;
    printf("%u\n", x + 1U);
    return 0;
}`, nil)
	if got != "0\n" {
		t.Fatalf("got %q", got)
	}
}

func TestControlFlow(t *testing.T) {
	got := stdoutOf(t, `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
int main() {
    for (int i = 1; i <= 6; i++) {
        printf("%d:%d ", i, collatz(i));
    }
    printf("\n");
    int i = 0;
    int sum = 0;
    for (;;) {
        i++;
        if (i % 3 == 0) { continue; }
        if (i > 10) { break; }
        sum += i;
    }
    printf("sum=%d\n", sum);
    return 0;
}`, nil)
	want := "1:0 2:1 3:7 4:2 5:5 6:8 \nsum=37\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestRecursion(t *testing.T) {
	got := stdoutOf(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    printf("%d\n", fib(20));
    return 0;
}`, nil)
	if got != "6765\n" {
		t.Fatalf("got %q", got)
	}
}

func TestPointersAndArrays(t *testing.T) {
	got := stdoutOf(t, `
void bump(int* p) { *p = *p + 1; }
int main() {
    int a[5];
    for (int i = 0; i < 5; i++) { a[i] = i * i; }
    int* p = a;
    bump(p + 2);
    printf("%d %d %d\n", a[2], *(a + 4), p[1]);
    long diff = (a + 4) - a;
    printf("%ld\n", diff);
    return 0;
}`, nil)
	if got != "5 16 1\n4\n" {
		t.Fatalf("got %q", got)
	}
}

func TestStrings(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    char buf[32];
    strcpy(buf, "abc");
    strcat(buf, "def");
    printf("%s %ld %d\n", buf, strlen(buf), strcmp(buf, "abcdef"));
    char dst[8];
    strncpy(dst, "xy", 4L);
    printf("%c%c%d%d\n", dst[0], dst[1], dst[2], dst[3]);
    return 0;
}`, nil)
	if got != "abcdef 6 0\nxy00\n" {
		t.Fatalf("got %q", got)
	}
}

func TestHeap(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int* p = (int*)malloc(40L);
    if (p == 0) { return 1; }
    for (int i = 0; i < 10; i++) { p[i] = i; }
    int sum = 0;
    for (int i = 0; i < 10; i++) { sum += p[i]; }
    free(p);
    char* s = (char*)malloc(8L);
    memset(s, 65, 7L);
    s[7] = '\0';
    printf("%d %s\n", sum, s);
    free(s);
    return 0;
}`, nil)
	if got != "45 AAAAAAA\n" {
		t.Fatalf("got %q", got)
	}
}

func TestStructs(t *testing.T) {
	got := stdoutOf(t, `
struct Point { int x; int y; };
struct Rect { struct Point a; struct Point b; };
int area(struct Rect* r) {
    return (r->b.x - r->a.x) * (r->b.y - r->a.y);
}
int main() {
    struct Rect r;
    r.a.x = 1; r.a.y = 2;
    r.b.x = 5; r.b.y = 7;
    printf("%d %ld\n", area(&r), sizeof(struct Rect));
    return 0;
}`, nil)
	if got != "20 16\n" {
		t.Fatalf("got %q", got)
	}
}

func TestGlobalsAndStatics(t *testing.T) {
	got := stdoutOf(t, `
int counter = 10;
char* tag = "G";
int bump() {
    static int calls = 0;
    calls++;
    counter += calls;
    return calls;
}
int main() {
    bump(); bump(); bump();
    printf("%s %d\n", tag, counter);
    return 0;
}`, nil)
	if got != "G 16\n" {
		t.Fatalf("got %q", got)
	}
}

func TestInputBuiltins(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    printf("%ld ", input_size());
    printf("%d %d %d\n", input_byte(0L), input_byte(2L), input_byte(99L));
    char buf[16];
    long n = read_input(buf, 15L);
    buf[n] = '\0';
    printf("[%s]\n", buf);
    return 0;
}`, []byte("hey"))
	if got != "3 104 121 -1\n[hey]\n" {
		t.Fatalf("got %q", got)
	}
}

func TestTernaryAndShortCircuit(t *testing.T) {
	got := stdoutOf(t, `
int called = 0;
int side(int v) { called++; return v; }
int main() {
    int x = 5;
    printf("%d ", x > 3 ? 10 : 20);
    if (x > 0 || side(1)) { printf("or-short "); }
    if (x < 0 && side(1)) { printf("bad "); }
    printf("%d\n", called);
    return 0;
}`, nil)
	if got != "10 or-short 0\n" {
		t.Fatalf("got %q", got)
	}
}

func TestIncDec(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int i = 5;
    printf("%d %d %d %d %d\n", i++, i, ++i, i--, --i);
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    int* p = a;
    p++;
    printf("%d\n", *p);
    return 0;
}`, nil)
	// Call args evaluate in a fixed order per implementation; under
	// gcc -O0 (right-to-left) the trace differs from left-to-right.
	// We only check it runs and is self-consistent with the baseline.
	if len(got) == 0 {
		t.Fatal("no output")
	}
}

func TestFloatArithmetic(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    double d = 2.5;
    double e = 0.5;
    printf("%f %f %f\n", d + e, d * e, d / e);
    printf("%.2f\n", sqrt(16.0));
    float f = 1.5;
    printf("%f\n", f + 0.25);
    return 0;
}`, nil)
	want := "3.000000 1.250000 5.000000\n4.00\n1.750000\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestExitBuiltin(t *testing.T) {
	res := run(t, `int main() { printf("before\n"); exit(7); printf("after\n"); return 0; }`, nil)
	if res.Exit != vm.Exited || res.Code != 7 {
		t.Fatalf("exit = %v code=%d", res.Exit, res.Code)
	}
	if string(res.Stdout) != "before\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestExitCodeFromMain(t *testing.T) {
	res := run(t, `int main() { return 42; }`, nil)
	if res.Exit != vm.Exited || res.Code != 42 {
		t.Fatalf("exit = %v code = %d", res.Exit, res.Code)
	}
}

func TestCompoundAssignments(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int x = 100;
    x += 5; x -= 2; x *= 2; x /= 3; x %= 50;
    printf("%d ", x);
    x = 3;
    x <<= 2; x |= 1; x ^= 2; x &= 14;
    printf("%d\n", x);
    long arr[2];
    arr[0] = 10;
    arr[0] += 32;
    printf("%ld\n", arr[0]);
    return 0;
}`, nil)
	if got != "18 14\n42\n" {
		t.Fatalf("got %q", got)
	}
}

func TestAssignAsExpression(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int a;
    int b;
    a = b = 7;
    printf("%d %d ", a, b);
    int c = 0;
    if ((c = a + 1) > 7) { printf("%d", c); }
    printf("\n");
    return 0;
}`, nil)
	if got != "7 7 8\n" {
		t.Fatalf("got %q", got)
	}
}

// ---------------------------------------------------------------------------
// Stability of defined programs (the core soundness property)

func TestDefinedProgramsAreStable(t *testing.T) {
	programs := map[string]string{
		"sorting": `
int main() {
    int a[8];
    for (int i = 0; i < 8; i++) { a[i] = 0; }
    long n = read_input((char*)a, 32L);
    for (int i = 0; i < 8; i++) { if (a[i] < 0) { a[i] = -a[i] / 2; } }
    for (int i = 0; i < 8; i++) {
        for (int j = i + 1; j < 8; j++) {
            if (a[j] < a[i]) { int tmp = a[i]; a[i] = a[j]; a[j] = tmp; }
        }
    }
    for (int i = 0; i < 8; i++) { printf("%d ", a[i]); }
    printf("\n");
    return 0;
}`,
		"hashing": `
unsigned int fnv(char* s, long n) {
    unsigned int h = 2166136261U;
    for (long i = 0; i < n; i++) {
        h = h ^ (unsigned int)(unsigned char)s[i];
        h = h * 16777619U;
    }
    return h;
}
int main() {
    char buf[64];
    long n = read_input(buf, 64L);
    printf("%u\n", fnv(buf, n));
    return 0;
}`,
		"linkedlist": `
struct Node { int v; struct Node* next; };
int main() {
    struct Node* head = 0;
    for (int i = 0; i < 5; i++) {
        struct Node* n = (struct Node*)malloc(16L);
        n->v = i * 3;
        n->next = head;
        head = n;
    }
    int sum = 0;
    struct Node* cur = head;
    while (cur != 0) { sum += cur->v; cur = cur->next; }
    printf("%d\n", sum);
    while (head != 0) { struct Node* nx = head->next; free(head); head = nx; }
    return 0;
}`,
		"guards-taken": `
int check(int offset, int len, int size) {
    if (offset + len > size || offset < 0 || len < 0) { return -1; }
    return offset + len;
}
int main() {
    printf("%d %d %d\n", check(3, 4, 10), check(-1, 4, 10), check(3, 4, 5));
    return 0;
}`,
		"statics-one-call-per-stmt": `
static char buffer[16];
char* fmt(int v) {
    buffer[0] = (char)(48 + v);
    buffer[1] = '\0';
    return buffer;
}
int main() {
    printf("%s ", fmt(1));
    printf("%s\n", fmt(2));
    return 0;
}`,
	}
	inputs := [][]byte{nil, []byte("a"), []byte("hello world, this is input"), {0, 1, 2, 250, 251, 252}}
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			for _, in := range inputs {
				requireStable(t, src, in)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Divergence of unstable code (one test per UB axis)

func TestUnstableSignedOverflowCheckElided(t *testing.T) {
	// Paper Listing 1: the guard `offset + len < offset` is folded
	// away by aggressive implementations once len >= 0 is established.
	src := `
int dump_data(int offset, int len, int size) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -2; }
    return offset + len;
}
int main() {
    printf("%d\n", dump_data(2147483647 - 100, 101, 2147483647));
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	if len(outs) < 2 {
		t.Fatal("expected the overflow check to be unstable")
	}
}

func TestUnstableUninitializedLocal(t *testing.T) {
	src := `
int main() {
    int x;
    int y;
    y = 1;
    printf("%d %d\n", x, y);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableEvalOrder(t *testing.T) {
	// Paper Listing 3: two calls sharing a static buffer as arguments
	// of the same printf.
	src := `
static char buffer[8];
char* get_str(int v) {
    buffer[0] = (char)(48 + v);
    buffer[1] = '\0';
    return buffer;
}
int main() {
    printf("who-is %s tell %s\n", get_str(1), get_str(2));
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	// gcc evaluates right-to-left (both print "1"), clang left-to-right
	// (both print "2").
	sawGcc, sawClang := false, false
	for out, impls := range outs {
		if strings.Contains(out, "who-is 1 tell 1") {
			sawGcc = true
		}
		if strings.Contains(out, "who-is 2 tell 2") {
			sawClang = true
		}
		_ = impls
	}
	if !sawGcc || !sawClang {
		t.Fatalf("expected both orderings, got %v", keys(outs))
	}
}

func TestUnstablePointerComparison(t *testing.T) {
	// Paper Listing 2: relational comparison of pointers to different
	// objects.
	src := `
int main() {
    char obj_a[8];
    long gap;
    char obj_b[24];
    obj_a[0] = 1; obj_b[0] = 2; gap = 0;
    if (obj_b <= obj_a) { printf("b-first %ld\n", gap); } else { printf("a-first %ld\n", gap); }
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableDivByZero(t *testing.T) {
	src := `
int main() {
    int d = 0;
    int r = 100 / d;
    printf("%d\n", r);
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	sawTrap := false
	for out := range outs {
		if strings.Contains(out, "SIGFPE") {
			sawTrap = true
		}
	}
	if !sawTrap {
		t.Fatal("expected at least one implementation to trap on div-by-zero")
	}
}

func TestUnstableShiftOOB(t *testing.T) {
	src := `
int main() {
    int x = 1;
    int s = 33;
    printf("%d\n", x << s);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableWidenedMultiplication(t *testing.T) {
	// The paper's IntError example: long = int*int with overflow —
	// some implementations compute in 64-bit.
	src := `
int main() {
    int a = 100000;
    int b = 100000;
    long x = a * b;
    printf("%ld\n", x);
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	saw32, saw64 := false, false
	for out := range outs {
		if strings.Contains(out, "1410065408") {
			saw32 = true // wrapped 32-bit result
		}
		if strings.Contains(out, "10000000000") {
			saw64 = true // widened 64-bit result
		}
	}
	if !saw32 || !saw64 {
		t.Fatalf("expected both 32-bit and 64-bit results, got %v", keys(outs))
	}
}

func TestUnstableNullCheckAfterDeref(t *testing.T) {
	src := `
int get(int* p) {
    int v = *p;
    if (p == 0) { return -1; }
    return v;
}
int main() {
    int* p = 0;
    printf("%d\n", get(p));
    return 0;
}`
	// All implementations crash here (the deref executes first), so
	// instead use the dead-load variant where optimizers drop the read.
	src2 := `
int main() {
    int* p = 0;
    *p;
    printf("ok\n");
    return 0;
}`
	requireUnstable(t, src2, nil)
	_ = src
}

func TestUnstableUseAfterFree(t *testing.T) {
	src := `
int main() {
    int* p = (int*)malloc(16L);
    p[0] = 1234;
    free(p);
    int* q = (int*)malloc(16L);
    q[0] = 9999;
    printf("%d\n", p[0]);
    free(q);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableDoubleFree(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    free(p);
    free(p);
    char* q = (char*)malloc(8L);
    printf("%d\n", q != 0);
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	sawAbort := false
	for out := range outs {
		if strings.Contains(out, "SIGABRT") {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Fatal("expected glibc-style abort in at least one implementation")
	}
}

func TestUnstableStackOOBRead(t *testing.T) {
	src := `
int main() {
    int a[4];
    int marker = 777;
    for (int i = 0; i < 4; i++) { a[i] = i; }
    printf("%d %d\n", a[5], marker);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableLineMacro(t *testing.T) {
	src := `
int main() {
    printf("%d\n",
        __LINE__);
    return 0;
}`
	outs := requireUnstable(t, src, nil)
	if len(outs) != 2 {
		t.Fatalf("expected exactly two interpretations, got %d", len(outs))
	}
}

func TestUnstablePointerSubtraction(t *testing.T) {
	// CWE-469: pointer subtraction across different objects.
	src := `
int main() {
    char a[16];
    char b[16];
    a[0] = 0; b[0] = 0;
    long d = &b[0] - &a[0];
    printf("%ld\n", d);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableMemcpyOverlap(t *testing.T) {
	src := `
int main() {
    char buf[16];
    for (int i = 0; i < 16; i++) { buf[i] = (char)(65 + i); }
    memcpy(buf + 2, buf, 8L);
    for (int i = 0; i < 12; i++) { printf("%c", buf[i]); }
    printf("\n");
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableMissingReturn(t *testing.T) {
	src := `
int pick(int v) {
    if (v > 0) { return v; }
}
int main() {
    printf("%d\n", pick(-5));
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableFloatContraction(t *testing.T) {
	// a*b+c contracted to FMA changes the rounding of the last bit.
	src := `
int main() {
    double a = 0.1;
    double b = 10.0;
    double c = -1.0;
    double r = a * b + c;
    printf("%.20f\n", r * 1000000000000000000.0);
    return 0;
}`
	requireUnstable(t, src, nil)
}

func TestUnstableArityMismatch(t *testing.T) {
	// CWE-685: too few arguments; the missing parameter reads stack
	// garbage, which differs per layout.
	src := `
int combine(int a, int b) { return a * 1000 + b; }
int main() {
    printf("%d\n", combine(7));
    return 0;
}`
	requireUnstable(t, src, nil)
}

// ---------------------------------------------------------------------------
// Timeout / step limit

func TestStepLimitIsTimeout(t *testing.T) {
	src := `int main() { while (1) { } return 0; }`
	prog := parser.MustParse(src)
	info := sema.MustCheck(prog)
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O0})
	m := vm.New(bin, vm.Options{StepLimit: 10_000})
	res := m.Run(nil)
	if res.Exit != vm.StepLimit {
		t.Fatalf("exit = %v", res.Exit)
	}
	// A larger one-off budget still times out (infinite loop).
	res = m.RunWithLimit(nil, 100_000)
	if res.Exit != vm.StepLimit {
		t.Fatalf("rerun exit = %v", res.Exit)
	}
}

func TestMachineResetIsClean(t *testing.T) {
	// Fork-server behaviour: consecutive runs see identical state.
	src := `
int calls = 0;
int main() {
    calls++;
    int x;
    printf("%d %d\n", calls, x);
    return 0;
}`
	prog := parser.MustParse(src)
	info := sema.MustCheck(prog)
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.GCC, Opt: compiler.O2})
	m := vm.New(bin, vm.Options{})
	r1 := m.Run(nil)
	r2 := m.Run(nil)
	if string(r1.Stdout) != string(r2.Stdout) {
		t.Fatalf("runs differ: %q vs %q", r1.Stdout, r2.Stdout)
	}
}

func TestSegfaultOnWildPointer(t *testing.T) {
	res := run(t, `
int main() {
    long* p = (long*)99999999L;
    *p = 1;
    return 0;
}`, nil)
	if res.Exit != vm.SigSegv {
		t.Fatalf("exit = %v", res.Exit)
	}
}

func TestWriteToRodataFaults(t *testing.T) {
	res := run(t, `
int main() {
    char* s = "const";
    s[0] = 'X';
    return 0;
}`, nil)
	if res.Exit != vm.SigSegv {
		t.Fatalf("exit = %v", res.Exit)
	}
}

func keys(m map[string][]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
