package vm_test

// The differential self-test for the interpreter itself: every
// program in the golden corpus, plus the fuzz seed/crasher inputs,
// runs through both the reference step() loop and the production
// runLoop on every default implementation and every sanitizer mode,
// and the two executions must agree on every observable Result field.
// This is the repo's own medicine applied to its own hot path — the
// fast loop is only trusted because this test holds it to the
// reference semantics over the whole corpus.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// selfTestProgram is one corpus entry: source plus the inputs to
// replay on it.
type selfTestProgram struct {
	name   string
	src    string
	inputs [][]byte
}

// crasherInputs are the fuzz seeds and known crash/divergence triggers
// (the FuzzSuiteRun corpus): uninitialized read, oversized shift,
// signed-overflow bounds check, plain paths, and all-0xff garbage.
func crasherInputs() [][]byte {
	return [][]byte{
		nil,
		{},
		[]byte("u"),
		[]byte("s\x21"),
		[]byte("s\x02"),
		{'o', 0x9b, 0xff, 0xff, 0x7f, 0x65, 0, 0, 0},
		{'o', 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f},
		[]byte("plain input"),
		bytes.Repeat([]byte{0xff}, 16),
		bytes.Repeat([]byte{0x00}, 16),
	}
}

// selfTestCorpus loads every golden program (with its pinned input,
// when present) and appends the fuzz-target program with the crasher
// inputs.
func selfTestCorpus(t *testing.T) []selfTestProgram {
	t.Helper()
	srcs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "golden", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("golden corpus unavailable: %v", err)
	}
	var progs []selfTestProgram
	for _, srcPath := range srcs {
		// compile_* programs exist to be rejected (or to ICE) by part of
		// the implementation set; they never reach the VM.
		if strings.HasPrefix(filepath.Base(srcPath), "compile_") {
			continue
		}
		src, err := os.ReadFile(srcPath)
		if err != nil {
			t.Fatal(err)
		}
		inputs := crasherInputs()
		if data, err := os.ReadFile(strings.TrimSuffix(srcPath, ".mc") + ".input"); err == nil {
			inputs = append([][]byte{data}, inputs...)
		}
		progs = append(progs, selfTestProgram{
			name:   strings.TrimSuffix(filepath.Base(srcPath), ".mc"),
			src:    string(src),
			inputs: inputs,
		})
	}
	progs = append(progs, selfTestProgram{
		name: "fuzz_target",
		src: `
int check(int offset, int len) {
    if (offset + len < offset) { return -1; }
    return offset + len;
}
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    if (n < 1) { return 0; }
    if (buf[0] == 'u') {
        int x;
        if (n > 100) { x = 1; }
        printf("u %d\n", x);
        return 0;
    }
    if (buf[0] == 's' && n >= 2) {
        printf("s %d\n", 1 << buf[1]);
        return 0;
    }
    if (n >= 9) {
        int offset = 0;
        int len = 0;
        memcpy((char*)&offset, buf + 1, 4L);
        memcpy((char*)&len, buf + 5, 4L);
        printf("o %d\n", check(offset & 2147483647, len & 2147483647));
        return 0;
    }
    printf("plain %ld\n", n);
    return 0;
}
`,
		inputs: crasherInputs(),
	})
	return progs
}

// sanConfigs pairs a compile-time sanitizer layout with the matching
// runtime mode, mirroring how difffuzz builds sanitizer binaries.
var sanConfigs = []struct {
	name string
	cfg  compiler.Config
	san  vm.SanMode
}{
	{"asan", compiler.Config{Family: compiler.Clang, Opt: compiler.O1, ASan: true, Sanitize: true}, vm.SanASan},
	{"ubsan", compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Sanitize: true}, vm.SanUBSan},
	{"msan", compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Sanitize: true}, vm.SanMSan},
}

// assertSameResult compares every observable Result field plus the
// canonical output checksum.
func assertSameResult(t *testing.T, input []byte, ref, fast *vm.Result) {
	t.Helper()
	if ref.Exit != fast.Exit || ref.Code != fast.Code {
		t.Fatalf("input %q: exit ref=%s/%d fast=%s/%d",
			input, ref.Exit, ref.Code, fast.Exit, fast.Code)
	}
	if ref.Steps != fast.Steps {
		t.Fatalf("input %q: steps ref=%d fast=%d", input, ref.Steps, fast.Steps)
	}
	if !bytes.Equal(ref.Stdout, fast.Stdout) {
		t.Fatalf("input %q: stdout ref=%q fast=%q", input, ref.Stdout, fast.Stdout)
	}
	if !bytes.Equal(ref.Stderr, fast.Stderr) {
		t.Fatalf("input %q: stderr ref=%q fast=%q", input, ref.Stderr, fast.Stderr)
	}
	switch {
	case (ref.San == nil) != (fast.San == nil):
		t.Fatalf("input %q: san ref=%v fast=%v", input, ref.San, fast.San)
	case ref.San != nil && ref.San.String() != fast.San.String():
		t.Fatalf("input %q: san ref=%q fast=%q", input, ref.San, fast.San)
	}
	if ref.OutputHash() != fast.OutputHash() {
		t.Fatalf("input %q: output hash ref=%016x fast=%016x",
			input, ref.OutputHash(), fast.OutputHash())
	}
}

// TestDifferentialSelfTest runs the corpus through both loops on all
// ten default implementations. The two machines replay the same input
// sequence so run-sequence-dependent builtins (time_now) stay aligned,
// and the repeated runs on one warm machine exercise the dirty-page
// reset under both loops.
func TestDifferentialSelfTest(t *testing.T) {
	for _, p := range selfTestCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			info := sema.MustCheck(parser.MustParse(p.src))
			for _, cfg := range compiler.DefaultSet() {
				bin := compiler.MustCompile(info, cfg)
				ref := vm.New(bin, vm.Options{Reference: true})
				fast := vm.New(bin, vm.Options{})
				for _, input := range p.inputs {
					assertSameResult(t, input, ref.Run(input), fast.Run(input))
				}
			}
		})
	}
}

// TestDifferentialSelfTestSanitizers replays the corpus under each
// sanitizer mode: the sanitizer check sites (shadow memory, taint
// propagation, UB reports) must fire identically under both loops.
func TestDifferentialSelfTestSanitizers(t *testing.T) {
	for _, p := range selfTestCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			info := sema.MustCheck(parser.MustParse(p.src))
			for _, sc := range sanConfigs {
				bin := compiler.MustCompile(info, sc.cfg)
				ref := vm.New(bin, vm.Options{Reference: true, San: sc.san})
				fast := vm.New(bin, vm.Options{San: sc.san})
				for _, input := range p.inputs {
					assertSameResult(t, input, ref.Run(input), fast.Run(input))
				}
			}
		})
	}
}

// TestRunSharedMatchesRun pins the zero-copy contract: RunShared's
// borrowed result, cloned immediately, is field-identical to Run's
// owned result, and the borrowed buffers really are invalidated (not
// corrupted into wrong answers) by the next run.
func TestRunSharedMatchesRun(t *testing.T) {
	for _, p := range selfTestCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			info := sema.MustCheck(parser.MustParse(p.src))
			cfg := compiler.Config{Family: compiler.GCC, Opt: compiler.O2}
			bin := compiler.MustCompile(info, cfg)
			owned := vm.New(bin, vm.Options{})
			shared := vm.New(bin, vm.Options{})
			for _, input := range p.inputs {
				want := owned.Run(input)
				got := shared.RunShared(input).Clone()
				assertSameResult(t, input, want, got)
			}
		})
	}
}
