package vm

import (
	"bytes"
	"fmt"
	"math"
	"strconv"

	"compdiff/internal/ir"
	"compdiff/internal/minic/sema"
)

// builtin dispatches a runtime-library call. sl is the popped argument
// window of the operand stack, aliased in place (no copy); rev means
// the binary pushed right-to-left, so arguments read back-to-front.
//
// Aliasing invariant: sl overlaps the stack slots a result push will
// reuse, so every builtin must finish reading its arguments before its
// (single, final) push. All builtins follow this shape; new ones must
// too.
func (m *Machine) builtin(id int, sl []slot, rev bool, line int32) {
	switch id {
	case sema.BPrintf:
		m.doPrintf(sl, rev, line)
	case sema.BMalloc:
		m.push(m.malloc(int64(barg(sl, rev, 0))))
	case sema.BFree:
		m.free(barg(sl, rev, 0), line)
	case sema.BMemcpy:
		m.doMemcpy(barg(sl, rev, 0), barg(sl, rev, 1), int64(barg(sl, rev, 2)), line)
	case sema.BMemset:
		m.doMemset(barg(sl, rev, 0), byte(barg(sl, rev, 1)), int64(barg(sl, rev, 2)), line)
	case sema.BStrlen:
		if n, ok := m.cStringLen(barg(sl, rev, 0), line); ok {
			m.push(uint64(n))
		}
	case sema.BStrcpy:
		m.doStrcpy(barg(sl, rev, 0), barg(sl, rev, 1), line)
	case sema.BStrncpy:
		m.doStrncpy(barg(sl, rev, 0), barg(sl, rev, 1), int64(barg(sl, rev, 2)), line)
	case sema.BStrcmp:
		m.doStrcmp(barg(sl, rev, 0), barg(sl, rev, 1), line)
	case sema.BStrcat:
		m.doStrcat(barg(sl, rev, 0), barg(sl, rev, 1), line)
	case sema.BInputSize:
		m.push(uint64(len(m.input)))
	case sema.BInputByte:
		i := int64(barg(sl, rev, 0))
		if i >= 0 && i < int64(len(m.input)) {
			m.push(uint64(m.input[i]))
		} else {
			m.push(ir.Canon(ir.I32, ^uint64(0))) // -1
		}
	case sema.BReadInput:
		m.doReadInput(barg(sl, rev, 0), int64(barg(sl, rev, 1)), line)
	case sema.BExit:
		m.exitNormally(int32(barg(sl, rev, 0)))
	case sema.BAbs:
		v := int32(barg(sl, rev, 0))
		if v == math.MinInt32 {
			if m.opts.San == SanUBSan {
				m.report("ubsan", "signed-integer-overflow", line)
				return
			}
			m.push(ir.Canon(ir.I32, uint64(int64(v))))
			return
		}
		if v < 0 {
			v = -v
		}
		m.push(ir.Canon(ir.I32, uint64(v)))
	case sema.BPow:
		x := math.Float64frombits(barg(sl, rev, 0))
		y := math.Float64frombits(barg(sl, rev, 1))
		var r float64
		if m.prof.PowViaExp2 {
			// The exp2 libcall substitution: same math, last-ulp
			// differences (the paper's FP-imprecision category).
			r = math.Exp2(y * math.Log2(x))
		} else {
			r = math.Pow(x, y)
		}
		m.push(math.Float64bits(r))
	case sema.BSqrt:
		m.push(math.Float64bits(math.Sqrt(math.Float64frombits(barg(sl, rev, 0)))))
	case sema.BFabs:
		m.push(math.Float64bits(math.Abs(math.Float64frombits(barg(sl, rev, 0)))))
	case sema.BTimeNow:
		m.timeCnt++
		if m.opts.TimeNow != nil {
			m.push(uint64(m.opts.TimeNow(m.runSeq, m.timeCnt)))
			return
		}
		// A wall clock: different per binary, per run, per call.
		m.push(uint64(int64(m.prof.Key>>33) + m.runSeq*997 + int64(m.timeCnt)*31))
	default:
		m.trap(VMFault)
	}
}

// nextArg reads the printf verb's next argument and advances the
// cursor.
func nextArg(sl []slot, rev bool, ai *int) uint64 {
	v := barg(sl, rev, *ai)
	*ai++
	return v
}

// barg reads argument i (declaration order) out of the aliased stack
// window; missing arguments read as 0 (CWE-685 semantics, matching the
// old marshalled-buffer path).
func barg(sl []slot, rev bool, i int) uint64 {
	if i >= len(sl) {
		return 0
	}
	if rev {
		return sl[len(sl)-1-i].v
	}
	return sl[i].v
}

// ---------------------------------------------------------------------------
// printf

// doPrintf implements a C-like printf over guest memory. Formats are
// compiled to a small op plan (literal slices + verbs) and executed;
// plans for formats living below GlobalsBase — memory checkAccess
// makes immutable, where every string literal lands — are cached per
// machine in a direct-mapped table, so steady-state printf skips the
// scan/parse entirely. Output is built in place at the tail of the
// stdout buffer: the dominant output path of the fuzzing loop does
// neither copies nor allocation. A fault mid-format truncates back to
// base — exactly the discard the old build-then-write sequence
// performed.
func (m *Machine) doPrintf(sl []slot, rev bool, line int32) {
	var ops []fmtOp
	if fa := barg(sl, rev, 0); m.asanShadow == nil && fa >= ir.NullTop && fa < ir.MemSize {
		// Cached plans exist only for formats proven to sit entirely in
		// read-only memory, so an address hit needs no re-scan at all.
		e := &m.fmtCache[(fa*0x9e3779b97f4a7c15)>>(64-fmtCacheBits)]
		if e.addr == fa {
			ops = e.ops
		} else {
			end := fa + 1<<16 + 1 // scan window: the runaway cutoff
			if end > ir.MemSize {
				end = ir.MemSize
			}
			n := indexZero(m.mem[fa:end])
			if n < 0 || n > 1<<16 {
				m.trap(SigSegv)
				return
			}
			format := m.mem[fa : fa+uint64(n)]
			if fa+uint64(n) < ir.GlobalsBase {
				// Immutable, so the plan's literal slices may alias the
				// guest string forever.
				e.addr = fa
				e.ops = compileFmt(format, nil)
				ops = e.ops
			} else {
				m.fmtScratch = compileFmt(format, m.fmtScratch)
				ops = m.fmtScratch
			}
		}
	} else {
		f, ok := m.appendGuestCString(m.strBuf[:0], barg(sl, rev, 0), line)
		m.strBuf = f[:0]
		if !ok {
			return
		}
		m.fmtScratch = compileFmt(f, m.fmtScratch)
		ops = m.fmtScratch
	}
	// Build into the live stdout tail when the output cap allows the
	// write; otherwise format into scratch just for the return value.
	direct := len(m.stdout) < m.opts.MaxOutput
	var out []byte
	base := 0
	if direct {
		out = m.stdout
		base = len(out)
	} else {
		out = m.fmtBuf[:0]
	}
	ai := 1
	for k := range ops {
		op := &ops[k]
		switch op.verb {
		case 0:
			out = append(out, op.lit...)
		case 'd':
			var w int64
			if op.long {
				w = int64(nextArg(sl, rev, &ai))
			} else {
				w = int64(int32(nextArg(sl, rev, &ai)))
			}
			if uint64(w) < 10 { // single digit, the common case
				out = append(out, byte('0'+w))
			} else {
				out = strconv.AppendInt(out, w, 10)
			}
		case 'u':
			if op.long {
				out = strconv.AppendUint(out, nextArg(sl, rev, &ai), 10)
			} else {
				out = strconv.AppendUint(out, uint64(uint32(nextArg(sl, rev, &ai))), 10)
			}
		case 'x':
			if op.long {
				out = strconv.AppendUint(out, nextArg(sl, rev, &ai), 16)
			} else {
				out = strconv.AppendUint(out, uint64(uint32(nextArg(sl, rev, &ai))), 16)
			}
		case 'c':
			out = append(out, byte(nextArg(sl, rev, &ai)))
		case 's':
			var ok bool
			out, ok = m.appendGuestCString(out, nextArg(sl, rev, &ai), line)
			if !ok {
				if direct {
					m.stdout = out[:base]
				} else {
					m.fmtBuf = out[:0]
				}
				return
			}
		case 'p':
			out = append(out, fmt.Sprintf("0x%x", nextArg(sl, rev, &ai))...)
		case 'f', 'g':
			f := math.Float64frombits(nextArg(sl, rev, &ai))
			p := 6
			if op.prec >= 0 {
				p = op.prec
			}
			if op.verb == 'g' {
				out = strconv.AppendFloat(out, f, 'g', -1, 64)
			} else {
				out = strconv.AppendFloat(out, f, 'f', p, 64)
			}
		}
	}
	if direct {
		m.stdout = out
		m.push(ir.Canon(ir.I32, uint64(len(out)-base)))
	} else {
		m.fmtBuf = out[:0]
		m.push(ir.Canon(ir.I32, uint64(len(out))))
	}
}

// fmtCacheBits sizes the direct-mapped format-plan cache (1<<bits
// entries); collisions just overwrite — correctness only needs the
// exact-address match.
const fmtCacheBits = 5

type fmtCacheEnt struct {
	addr uint64
	ops  []fmtOp
}

// fmtOp is one step of a compiled printf plan: emit the literal slice
// (verb 0), or format the next argument (verb 'd'/'u'/'x'/'c'/'s'/
// 'p'/'f'/'g' with the parsed precision and length modifier).
type fmtOp struct {
	lit  []byte
	prec int
	verb byte
	long bool
}

// compileFmt parses a printf format into its op plan, reusing ops'
// backing when possible. Literal ops alias subslices of format —
// including the recovery outputs for a bare trailing '%', '%%', and
// unknown verbs — so the caller guarantees format outlives the plan.
// The parse mirrors the old inline loop exactly: same precision and
// 'l' handling, same silent drop of a format ending mid-verb, same
// '%X' passthrough for unknown X.
func compileFmt(format []byte, ops []fmtOp) []fmtOp {
	ops = ops[:0]
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			j := bytes.IndexByte(format[i:], '%')
			if j < 0 {
				ops = append(ops, fmtOp{lit: format[i:]})
				break
			}
			ops = append(ops, fmtOp{lit: format[i : i+j]})
			i += j
			continue
		}
		pct := i
		i++
		if i >= len(format) {
			ops = append(ops, fmtOp{lit: format[pct : pct+1]})
			break
		}
		// Optional precision like %.12f and length modifier l/ll.
		prec := -1
		if format[i] == '.' {
			i++
			p := 0
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				p = p*10 + int(format[i]-'0')
				i++
			}
			prec = p
		}
		longMod := false
		for i < len(format) && format[i] == 'l' {
			longMod = true
			i++
		}
		if i >= len(format) {
			break
		}
		switch c := format[i]; c {
		case 'd', 'u', 'x', 'c', 's', 'p', 'f', 'g':
			ops = append(ops, fmtOp{verb: c, prec: prec, long: longMod})
		case '%':
			ops = append(ops, fmtOp{lit: format[i : i+1]})
		default:
			ops = append(ops, fmtOp{lit: format[pct : pct+1]})
			ops = append(ops, fmtOp{lit: format[i : i+1]})
		}
		i++
	}
	return ops
}

// appendGuestCString appends the NUL-terminated guest string at addr
// to out with full access checking. It returns false (with execution
// halted) on a fault or an unterminated string.
func (m *Machine) appendGuestCString(out []byte, addr uint64, line int32) ([]byte, bool) {
	// Fast path: without ASan redzones a read is valid iff it is
	// mapped, so the whole scan reduces to one vectorized IndexByte
	// over the (contiguous) image. The null page and the 64 KiB
	// runaway cutoff keep the trap behaviour of the per-byte loop.
	if m.asanShadow == nil && addr >= ir.NullTop && addr < ir.MemSize {
		end := addr + 1<<16 + 1 // scan window: the runaway cutoff
		if end > ir.MemSize {
			end = ir.MemSize
		}
		i := indexZero(m.mem[addr:end])
		if i >= 0 && i <= 1<<16 {
			return append(out, m.mem[addr:addr+uint64(i)]...), true
		}
		// Ran off the image or past the cutoff: the slow loop would
		// have faulted mid-scan.
		m.trap(SigSegv)
		return out, false
	}
	n := 0
	for {
		if !m.checkAccess(addr, 1, false, line) {
			return out, false
		}
		c := m.mem[addr]
		if c == 0 {
			return out, true
		}
		out = append(out, c)
		addr++
		n++
		if n > 1<<16 {
			// Unterminated garbage: stop like a crashed puts would.
			m.trap(SigSegv)
			return out, false
		}
	}
}

// indexZero locates the first NUL in b (bytes.IndexByte, aliased for
// the guest-string fast paths).
func indexZero(b []byte) int { return bytes.IndexByte(b, 0) }

// cStringLen is strlen with checking.
func (m *Machine) cStringLen(addr uint64, line int32) (int64, bool) {
	if m.asanShadow == nil && addr >= ir.NullTop && addr < ir.MemSize {
		end := addr + 1<<20 + 1
		if end > ir.MemSize {
			end = ir.MemSize
		}
		i := indexZero(m.mem[addr:end])
		if i >= 0 && i <= 1<<20 {
			return int64(i), true
		}
		m.trap(SigSegv)
		return 0, false
	}
	n := int64(0)
	for {
		if !m.checkAccess(addr, 1, false, line) {
			return 0, false
		}
		if m.mem[addr] == 0 {
			return n, true
		}
		addr++
		n++
		if n > 1<<20 {
			m.trap(SigSegv)
			return 0, false
		}
	}
}

// ---------------------------------------------------------------------------
// Memory builtins

func rangesOverlap(a, b uint64, n int64) bool {
	an, bn := a+uint64(n), b+uint64(n)
	return a < bn && b < an
}

func (m *Machine) doMemcpy(dst, src uint64, n int64, line int32) {
	if n <= 0 {
		m.push(dst)
		return
	}
	if !m.checkAccess(src, uint64(n), false, line) || !m.checkAccess(dst, uint64(n), true, line) {
		return
	}
	if rangesOverlap(dst, src, n) {
		if m.asanShadow != nil {
			m.report("asan", "memcpy-param-overlap", line)
			return
		}
		// Overlapping memcpy is UB (CWE-475): the copy direction is an
		// implementation artifact and decides the result.
		m.markDirty(dst, uint64(n))
		if m.prof.MemcpyBackward {
			for i := n - 1; i >= 0; i-- {
				m.mem[dst+uint64(i)] = m.mem[src+uint64(i)]
			}
		} else {
			for i := int64(0); i < n; i++ {
				m.mem[dst+uint64(i)] = m.mem[src+uint64(i)]
			}
		}
	} else {
		m.markDirty(dst, uint64(n))
		copy(m.mem[dst:dst+uint64(n)], m.mem[src:src+uint64(n)])
	}
	if m.msanInit != nil {
		copy(m.msanInit[dst:dst+uint64(n)], m.msanInit[src:src+uint64(n)])
	}
	m.push(dst)
}

func (m *Machine) doMemset(p uint64, c byte, n int64, line int32) {
	if n < 0 {
		m.trap(SigSegv)
		return
	}
	if n > 0 {
		if !m.checkAccess(p, uint64(n), true, line) {
			return
		}
		m.markDirty(p, uint64(n))
		for i := int64(0); i < n; i++ {
			m.mem[p+uint64(i)] = c
		}
		m.markInit(p, uint64(n), true)
	}
	m.push(p)
}

func (m *Machine) doStrcpy(dst, src uint64, line int32) {
	for i := uint64(0); ; i++ {
		if !m.checkAccess(src+i, 1, false, line) || !m.checkAccess(dst+i, 1, true, line) {
			return
		}
		c := m.mem[src+i]
		m.markDirty(dst+i, 1)
		m.mem[dst+i] = c
		m.markInit(dst+i, 1, true)
		if c == 0 {
			break
		}
		if i > 1<<20 {
			m.trap(SigSegv)
			return
		}
	}
	m.push(dst)
}

func (m *Machine) doStrncpy(dst, src uint64, n int64, line int32) {
	copying := true
	for i := int64(0); i < n; i++ {
		if !m.checkAccess(dst+uint64(i), 1, true, line) {
			return
		}
		m.markDirty(dst+uint64(i), 1)
		var c byte
		if copying {
			if !m.checkAccess(src+uint64(i), 1, false, line) {
				return
			}
			c = m.mem[src+uint64(i)]
			if c == 0 {
				copying = false
			}
		}
		m.mem[dst+uint64(i)] = c
		m.markInit(dst+uint64(i), 1, true)
	}
	m.push(dst)
}

func (m *Machine) doStrcmp(a, b uint64, line int32) {
	for i := uint64(0); ; i++ {
		if !m.checkAccess(a+i, 1, false, line) || !m.checkAccess(b+i, 1, false, line) {
			return
		}
		ca, cb := m.mem[a+i], m.mem[b+i]
		if ca != cb {
			r := int64(-1)
			if ca > cb {
				r = 1
			}
			m.push(ir.Canon(ir.I32, uint64(r)))
			return
		}
		if ca == 0 {
			m.push(0)
			return
		}
		if i > 1<<20 {
			m.trap(SigSegv)
			return
		}
	}
}

func (m *Machine) doStrcat(dst, src uint64, line int32) {
	end := dst
	for {
		if !m.checkAccess(end, 1, false, line) {
			return
		}
		if m.mem[end] == 0 {
			break
		}
		end++
	}
	for i := uint64(0); ; i++ {
		if !m.checkAccess(src+i, 1, false, line) || !m.checkAccess(end+i, 1, true, line) {
			return
		}
		c := m.mem[src+i]
		m.markDirty(end+i, 1)
		m.mem[end+i] = c
		m.markInit(end+i, 1, true)
		if c == 0 {
			break
		}
	}
	m.push(dst)
}

func (m *Machine) doReadInput(buf uint64, max int64, line int32) {
	n := int64(len(m.input))
	if max < n {
		n = max
	}
	if n < 0 {
		n = 0
	}
	if n > 0 {
		// Writable guest memory is exactly [GlobalsBase, MemSize); with
		// no ASan shadow that is the whole access check, inlined here so
		// the per-exec input copy skips the general path.
		if end := buf + uint64(n); m.asanShadow == nil && buf >= ir.GlobalsBase && end > buf && end <= ir.MemSize {
			m.markDirty(buf, uint64(n))
			copy(m.mem[buf:end], m.input[:n])
			if m.msanInit != nil {
				m.markInit(buf, uint64(n), true)
			}
		} else {
			if !m.checkAccess(buf, uint64(n), true, line) {
				return
			}
			m.markDirty(buf, uint64(n))
			copy(m.mem[buf:buf+uint64(n)], m.input[:n])
			m.markInit(buf, uint64(n), true)
		}
	}
	m.push(uint64(n))
}
