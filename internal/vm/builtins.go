package vm

import (
	"fmt"
	"math"
	"strconv"

	"compdiff/internal/ir"
	"compdiff/internal/minic/sema"
)

// builtin dispatches a runtime-library call. args are in declaration
// order regardless of the binary's evaluation order.
func (m *Machine) builtin(id int, args []uint64, taints []bool, line int32) {
	switch id {
	case sema.BPrintf:
		m.doPrintf(args, line)
	case sema.BMalloc:
		m.push(m.malloc(int64(arg(args, 0))))
	case sema.BFree:
		m.free(arg(args, 0), line)
	case sema.BMemcpy:
		m.doMemcpy(arg(args, 0), arg(args, 1), int64(arg(args, 2)), line)
	case sema.BMemset:
		m.doMemset(arg(args, 0), byte(arg(args, 1)), int64(arg(args, 2)), line)
	case sema.BStrlen:
		if n, ok := m.cStringLen(arg(args, 0), line); ok {
			m.push(uint64(n))
		}
	case sema.BStrcpy:
		m.doStrcpy(arg(args, 0), arg(args, 1), line)
	case sema.BStrncpy:
		m.doStrncpy(arg(args, 0), arg(args, 1), int64(arg(args, 2)), line)
	case sema.BStrcmp:
		m.doStrcmp(arg(args, 0), arg(args, 1), line)
	case sema.BStrcat:
		m.doStrcat(arg(args, 0), arg(args, 1), line)
	case sema.BInputSize:
		m.push(uint64(len(m.input)))
	case sema.BInputByte:
		i := int64(arg(args, 0))
		if i >= 0 && i < int64(len(m.input)) {
			m.push(uint64(m.input[i]))
		} else {
			m.push(ir.Canon(ir.I32, ^uint64(0))) // -1
		}
	case sema.BReadInput:
		m.doReadInput(arg(args, 0), int64(arg(args, 1)), line)
	case sema.BExit:
		m.exitNormally(int32(arg(args, 0)))
	case sema.BAbs:
		v := int32(arg(args, 0))
		if v == math.MinInt32 {
			if m.opts.San == SanUBSan {
				m.report("ubsan", "signed-integer-overflow", line)
				return
			}
			m.push(ir.Canon(ir.I32, uint64(int64(v))))
			return
		}
		if v < 0 {
			v = -v
		}
		m.push(ir.Canon(ir.I32, uint64(v)))
	case sema.BPow:
		x := math.Float64frombits(arg(args, 0))
		y := math.Float64frombits(arg(args, 1))
		var r float64
		if m.prof.PowViaExp2 {
			// The exp2 libcall substitution: same math, last-ulp
			// differences (the paper's FP-imprecision category).
			r = math.Exp2(y * math.Log2(x))
		} else {
			r = math.Pow(x, y)
		}
		m.push(math.Float64bits(r))
	case sema.BSqrt:
		m.push(math.Float64bits(math.Sqrt(math.Float64frombits(arg(args, 0)))))
	case sema.BFabs:
		m.push(math.Float64bits(math.Abs(math.Float64frombits(arg(args, 0)))))
	case sema.BTimeNow:
		m.timeCnt++
		if m.opts.TimeNow != nil {
			m.push(uint64(m.opts.TimeNow(m.runSeq, m.timeCnt)))
			return
		}
		// A wall clock: different per binary, per run, per call.
		m.push(uint64(int64(m.prof.Key>>33) + m.runSeq*997 + int64(m.timeCnt)*31))
	default:
		m.trap(VMFault)
	}
	_ = taints
}

func arg(args []uint64, i int) uint64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

// ---------------------------------------------------------------------------
// printf

// doPrintf implements a C-like printf over guest memory.
func (m *Machine) doPrintf(args []uint64, line int32) {
	format, ok := m.readCString(arg(args, 0), line)
	if !ok {
		return
	}
	var out []byte
	ai := 1
	next := func() uint64 {
		v := arg(args, ai)
		ai++
		return v
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			out = append(out, c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			out = append(out, '%')
			break
		}
		// Optional precision like %.12f and length modifier l/ll.
		prec := -1
		if format[i] == '.' {
			i++
			p := 0
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				p = p*10 + int(format[i]-'0')
				i++
			}
			prec = p
		}
		longMod := false
		for i < len(format) && format[i] == 'l' {
			longMod = true
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd':
			if longMod {
				out = strconv.AppendInt(out, int64(next()), 10)
			} else {
				out = strconv.AppendInt(out, int64(int32(next())), 10)
			}
		case 'u':
			if longMod {
				out = strconv.AppendUint(out, next(), 10)
			} else {
				out = strconv.AppendUint(out, uint64(uint32(next())), 10)
			}
		case 'x':
			if longMod {
				out = strconv.AppendUint(out, next(), 16)
			} else {
				out = strconv.AppendUint(out, uint64(uint32(next())), 16)
			}
		case 'c':
			out = append(out, byte(next()))
		case 's':
			s, ok := m.readCString(next(), line)
			if !ok {
				return
			}
			out = append(out, s...)
		case 'p':
			out = append(out, fmt.Sprintf("0x%x", next())...)
		case 'f', 'g':
			f := math.Float64frombits(next())
			p := 6
			if prec >= 0 {
				p = prec
			}
			if format[i] == 'g' {
				out = strconv.AppendFloat(out, f, 'g', -1, 64)
			} else {
				out = strconv.AppendFloat(out, f, 'f', p, 64)
			}
		case '%':
			out = append(out, '%')
		default:
			out = append(out, '%', format[i])
		}
		i++
	}
	m.writeOut(string(out))
	m.push(ir.Canon(ir.I32, uint64(len(out))))
}

// readCString reads a NUL-terminated string from guest memory with
// full access checking.
func (m *Machine) readCString(addr uint64, line int32) (string, bool) {
	var out []byte
	for {
		if !m.checkAccess(addr, 1, false, line) {
			return "", false
		}
		c := m.mem[addr]
		if c == 0 {
			return string(out), true
		}
		out = append(out, c)
		addr++
		if len(out) > 1<<16 {
			// Unterminated garbage: stop like a crashed puts would.
			m.trap(SigSegv)
			return "", false
		}
	}
}

// cStringLen is strlen with checking.
func (m *Machine) cStringLen(addr uint64, line int32) (int64, bool) {
	n := int64(0)
	for {
		if !m.checkAccess(addr, 1, false, line) {
			return 0, false
		}
		if m.mem[addr] == 0 {
			return n, true
		}
		addr++
		n++
		if n > 1<<20 {
			m.trap(SigSegv)
			return 0, false
		}
	}
}

// ---------------------------------------------------------------------------
// Memory builtins

func rangesOverlap(a, b uint64, n int64) bool {
	an, bn := a+uint64(n), b+uint64(n)
	return a < bn && b < an
}

func (m *Machine) doMemcpy(dst, src uint64, n int64, line int32) {
	if n <= 0 {
		m.push(dst)
		return
	}
	if !m.checkAccess(src, uint64(n), false, line) || !m.checkAccess(dst, uint64(n), true, line) {
		return
	}
	if rangesOverlap(dst, src, n) {
		if m.asanShadow != nil {
			m.report("asan", "memcpy-param-overlap", line)
			return
		}
		// Overlapping memcpy is UB (CWE-475): the copy direction is an
		// implementation artifact and decides the result.
		m.markDirty(dst, uint64(n))
		if m.prof.MemcpyBackward {
			for i := n - 1; i >= 0; i-- {
				m.mem[dst+uint64(i)] = m.mem[src+uint64(i)]
			}
		} else {
			for i := int64(0); i < n; i++ {
				m.mem[dst+uint64(i)] = m.mem[src+uint64(i)]
			}
		}
	} else {
		m.markDirty(dst, uint64(n))
		copy(m.mem[dst:dst+uint64(n)], m.mem[src:src+uint64(n)])
	}
	if m.msanInit != nil {
		copy(m.msanInit[dst:dst+uint64(n)], m.msanInit[src:src+uint64(n)])
	}
	m.push(dst)
}

func (m *Machine) doMemset(p uint64, c byte, n int64, line int32) {
	if n < 0 {
		m.trap(SigSegv)
		return
	}
	if n > 0 {
		if !m.checkAccess(p, uint64(n), true, line) {
			return
		}
		m.markDirty(p, uint64(n))
		for i := int64(0); i < n; i++ {
			m.mem[p+uint64(i)] = c
		}
		m.markInit(p, uint64(n), true)
	}
	m.push(p)
}

func (m *Machine) doStrcpy(dst, src uint64, line int32) {
	for i := uint64(0); ; i++ {
		if !m.checkAccess(src+i, 1, false, line) || !m.checkAccess(dst+i, 1, true, line) {
			return
		}
		c := m.mem[src+i]
		m.markDirty(dst+i, 1)
		m.mem[dst+i] = c
		m.markInit(dst+i, 1, true)
		if c == 0 {
			break
		}
		if i > 1<<20 {
			m.trap(SigSegv)
			return
		}
	}
	m.push(dst)
}

func (m *Machine) doStrncpy(dst, src uint64, n int64, line int32) {
	copying := true
	for i := int64(0); i < n; i++ {
		if !m.checkAccess(dst+uint64(i), 1, true, line) {
			return
		}
		m.markDirty(dst+uint64(i), 1)
		var c byte
		if copying {
			if !m.checkAccess(src+uint64(i), 1, false, line) {
				return
			}
			c = m.mem[src+uint64(i)]
			if c == 0 {
				copying = false
			}
		}
		m.mem[dst+uint64(i)] = c
		m.markInit(dst+uint64(i), 1, true)
	}
	m.push(dst)
}

func (m *Machine) doStrcmp(a, b uint64, line int32) {
	for i := uint64(0); ; i++ {
		if !m.checkAccess(a+i, 1, false, line) || !m.checkAccess(b+i, 1, false, line) {
			return
		}
		ca, cb := m.mem[a+i], m.mem[b+i]
		if ca != cb {
			r := int64(-1)
			if ca > cb {
				r = 1
			}
			m.push(ir.Canon(ir.I32, uint64(r)))
			return
		}
		if ca == 0 {
			m.push(0)
			return
		}
		if i > 1<<20 {
			m.trap(SigSegv)
			return
		}
	}
}

func (m *Machine) doStrcat(dst, src uint64, line int32) {
	end := dst
	for {
		if !m.checkAccess(end, 1, false, line) {
			return
		}
		if m.mem[end] == 0 {
			break
		}
		end++
	}
	for i := uint64(0); ; i++ {
		if !m.checkAccess(src+i, 1, false, line) || !m.checkAccess(end+i, 1, true, line) {
			return
		}
		c := m.mem[src+i]
		m.markDirty(end+i, 1)
		m.mem[end+i] = c
		m.markInit(end+i, 1, true)
		if c == 0 {
			break
		}
	}
	m.push(dst)
}

func (m *Machine) doReadInput(buf uint64, max int64, line int32) {
	n := int64(len(m.input))
	if max < n {
		n = max
	}
	if n < 0 {
		n = 0
	}
	if n > 0 {
		if !m.checkAccess(buf, uint64(n), true, line) {
			return
		}
		m.markDirty(buf, uint64(n))
		copy(m.mem[buf:buf+uint64(n)], m.input[:n])
		m.markInit(buf, uint64(n), true)
	}
	m.push(uint64(n))
}
