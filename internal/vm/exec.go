package vm

import (
	"math"

	"compdiff/internal/ir"
)

// This file is the *reference* interpreter: one exported semantic,
// executed the simplest possible way — re-derive the current frame,
// check the step budget, decode, dispatch, one instruction per call.
// The production path is runLoop (fastloop.go), which executes the
// same instruction set with the frame, pc, and code slice hoisted
// into locals and the step budget checked in batches. Options.
// Reference selects this loop; the differential self-test holds the
// two observationally identical over the whole corpus.

// step executes one instruction.
func (m *Machine) step() {
	m.steps++
	if m.steps > m.limit {
		m.trap(StepLimit)
		return
	}
	fr := &m.frames[len(m.frames)-1]
	if fr.pc < 0 || fr.pc >= len(fr.fn.Code) {
		m.trap(VMFault)
		return
	}
	in := fr.fn.Code[fr.pc]
	fr.pc++
	if m.opts.TraceLines {
		m.traceLine(in.Line)
	}

	switch in.Op {
	case ir.Nop:
	case ir.ConstI:
		m.push(uint64(in.Imm))
	case ir.ConstF:
		m.push(math.Float64bits(in.FImm))
	case ir.StrAddr:
		m.push(ir.RodataBase + uint64(in.Imm))
	case ir.FrameAddr:
		m.push(fr.base + uint64(in.Imm))
	case ir.GlobalAddr:
		m.push(ir.GlobalsBase + uint64(in.Imm))
	case ir.Dup:
		v, t := m.popT()
		m.pushT(v, t)
		m.pushT(v, t)
	case ir.Pop:
		m.pop()
	case ir.Swap:
		b, tb := m.popT()
		a, ta := m.popT()
		m.pushT(b, tb)
		m.pushT(a, ta)

	case ir.Load:
		addr, ta := m.popT()
		if ta {
			m.report("msan", "use-of-uninitialized-value", in.Line)
			return
		}
		m.loadAt(addr, &in)

	case ir.LdLoc:
		// Fused FrameAddr+Load: the address is a frame displacement,
		// which can never carry taint.
		m.loadAt(fr.base+uint64(in.Imm), &in)

	case ir.Store:
		v, tv := m.popT()
		addr, ta := m.popT()
		if ta {
			m.report("msan", "use-of-uninitialized-value", in.Line)
			return
		}
		w := uint64(in.A)
		if !m.checkAccess(addr, w, true, in.Line) {
			return
		}
		raw := v
		if in.B == 2 {
			raw = uint64(f32bits(v))
		}
		m.rawStore(addr, int(in.A), raw)
		m.markInit(addr, w, !tv)

	case ir.Add, ir.Sub, ir.Mul, ir.BitAnd, ir.BitOr, ir.BitXor:
		b, tb := m.popT()
		a, ta := m.popT()
		tc := ir.TypeCode(in.A)
		if m.opts.San == SanUBSan && ir.OverflowSigned(in.Op, tc, a, b) {
			m.report("ubsan", "signed-integer-overflow", in.Line)
			return
		}
		m.pushT(ir.IntAlu(in.Op, tc, a, b), ta || tb)

	case ir.AluImm:
		// Fused ConstI+ALU: the constant is the right operand and is
		// never tainted; sanitizer behaviour matches the pair.
		a, ta := m.popT()
		tc := ir.TypeCode(in.A)
		op := ir.Add + ir.Op(in.B)
		if m.opts.San == SanUBSan && ir.OverflowSigned(op, tc, a, uint64(in.Imm)) {
			m.report("ubsan", "signed-integer-overflow", in.Line)
			return
		}
		m.pushT(ir.IntAlu(op, tc, a, uint64(in.Imm)), ta)

	case ir.CmpImm:
		// Fused ConstI+Cmp* (integer only; emission guarantees it).
		a, ta := m.popT()
		v := uint64(0)
		if ir.IntCmp(ir.CmpEq+ir.Op(in.B), ir.TypeCode(in.A), a, uint64(in.Imm)) {
			v = 1
		}
		m.pushT(v, ta)

	case ir.Div, ir.Mod:
		m.execDivMod(&in)

	case ir.Neg:
		a, ta := m.popT()
		tc := ir.TypeCode(in.A)
		if m.opts.San == SanUBSan && ir.OverflowSigned(ir.Neg, tc, a, 0) {
			m.report("ubsan", "signed-integer-overflow", in.Line)
			return
		}
		m.pushT(ir.Canon(tc, -a), ta)

	case ir.BitNot:
		a, ta := m.popT()
		m.pushT(ir.Canon(ir.TypeCode(in.A), ^a), ta)

	case ir.Shl, ir.Shr:
		m.execShift(&in)

	case ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
		b, tb := m.popT()
		a, ta := m.popT()
		tc := ir.TypeCode(in.A)
		var res bool
		if tc.IsFloat() {
			x, y := math.Float64frombits(a), math.Float64frombits(b)
			switch in.Op {
			case ir.CmpEq:
				res = x == y
			case ir.CmpNe:
				res = x != y
			case ir.CmpLt:
				res = x < y
			case ir.CmpLe:
				res = x <= y
			case ir.CmpGt:
				res = x > y
			case ir.CmpGe:
				res = x >= y
			}
		} else {
			res = ir.IntCmp(in.Op, tc, a, b)
		}
		v := uint64(0)
		if res {
			v = 1
		}
		m.pushT(v, ta || tb)

	case ir.Conv:
		a, ta := m.popT()
		m.pushT(ir.ConvWord(ir.TypeCode(in.A), ir.TypeCode(in.B), a), ta)

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		b, tb := m.popT()
		a, ta := m.popT()
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var r float64
		switch in.Op {
		case ir.FAdd:
			r = x + y
		case ir.FSub:
			r = x - y
		case ir.FMul:
			r = x * y
		default:
			r = x / y
		}
		if ir.TypeCode(in.A) == ir.F32 {
			r = float64(float32(r))
		}
		m.pushT(math.Float64bits(r), ta || tb)

	case ir.FNeg:
		a, ta := m.popT()
		m.pushT(math.Float64bits(-math.Float64frombits(a)), ta)

	case ir.FMulAdd:
		c, tc := m.popT()
		b, tb := m.popT()
		a, ta := m.popT()
		r := math.FMA(math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c))
		m.pushT(math.Float64bits(r), ta || tb || tc)

	case ir.Jmp:
		fr.pc = int(in.Imm)

	case ir.Jz, ir.Jnz:
		v, t := m.popT()
		if t {
			// Branch on uninitialized data: MSan's core check.
			m.report("msan", "use-of-uninitialized-value", in.Line)
			return
		}
		if (in.Op == ir.Jz) == (v == 0) {
			fr.pc = int(in.Imm)
		}

	case ir.Call:
		// The argument window aliases the popped stack slots in place.
		m.sp -= int(in.A)
		m.callS(int(in.Imm), m.ops[m.sp:m.sp+int(in.A)], in.B == 1)

	case ir.CallB:
		// The argument window aliases the popped stack slots in place
		// (see builtin's aliasing invariant).
		m.sp -= int(in.A)
		m.builtin(int(in.Imm), m.ops[m.sp:m.sp+int(in.A)], in.B == 1, in.Line)

	case ir.Ret:
		m.ret(in.A == 1)

	case ir.TSet:
		v, t := m.popT()
		if m.tsp == len(m.temps) {
			m.growTemps()
		}
		m.temps[m.tsp] = slot{v: v, t: t}
		m.tsp++
	case ir.TGet:
		s := m.temps[m.tsp-1]
		m.pushT(s.v, s.t)
	case ir.TPop:
		m.tsp--

	case ir.Edge:
		if m.cov != nil {
			loc := m.edgeHash[in.Imm]
			m.cov[loc^m.prevLoc]++
			m.prevLoc = loc >> 1
		}

	case ir.Poison:
		m.push(m.poison(uint64(in.Imm)))

	case ir.Unreach:
		m.trap(VMFault)

	default:
		m.trap(VMFault)
	}
}

// loadAt performs a Load's memory access, width handling, and taint
// propagation at addr. Shared by Load and the fused LdLoc so the two
// cannot drift.
func (m *Machine) loadAt(addr uint64, in *ir.Instr) {
	w := uint64(in.A)
	if !m.checkAccess(addr, w, false, in.Line) {
		return
	}
	t := m.loadTaint(addr, w)
	raw := m.rawLoad(addr, int(in.A))
	var v uint64
	switch in.B {
	case 1: // sign-extend
		switch in.A {
		case 1:
			v = uint64(int64(int8(raw)))
		case 4:
			v = uint64(int64(int32(raw)))
		default:
			v = raw
		}
	case 2: // float32
		v = f32val(uint32(raw))
	default: // zero-extend or float64
		v = raw
	}
	m.pushT(v, t)
}

// execDivMod implements Div/Mod with the profile-dependent UB policy.
// Shared by the reference and fast loops so the two cannot drift.
func (m *Machine) execDivMod(in *ir.Instr) {
	b, tb := m.popT()
	a, ta := m.popT()
	tc := ir.TypeCode(in.A)
	if tb && m.msanInit != nil {
		m.report("msan", "use-of-uninitialized-value", in.Line)
		return
	}
	if b == 0 {
		if m.opts.San == SanUBSan {
			m.report("ubsan", "division-by-zero", in.Line)
			return
		}
		// Remainder lowers through the same divide instruction on
		// every implementation here, so x%0 traps uniformly; only
		// the quotient form gets folded into poison by optimizers.
		if m.prof.DivZeroTrap || in.Op == ir.Mod {
			m.trap(SigFpe)
			return
		}
		m.pushT(m.poison(uint64(in.Line)^0xd117), ta || tb)
		return
	}
	if tc.Signed() && int64(b) == -1 && int64(a) == (-1<<uint(tc.Bits()-1)) {
		if m.opts.San == SanUBSan {
			m.report("ubsan", "signed-integer-overflow", in.Line)
			return
		}
		if m.prof.MinIntDivTrap {
			m.trap(SigFpe)
			return
		}
		if in.Op == ir.Div {
			m.pushT(ir.Canon(tc, a), ta || tb) // wraps to INT_MIN
		} else {
			m.pushT(0, ta || tb)
		}
		return
	}
	var r uint64
	if tc.Signed() {
		if in.Op == ir.Div {
			r = uint64(int64(a) / int64(b))
		} else {
			r = uint64(int64(a) % int64(b))
		}
	} else {
		ua, ub := truncToBits(a, tc.Bits()), truncToBits(b, tc.Bits())
		if in.Op == ir.Div {
			r = ua / ub
		} else {
			r = ua % ub
		}
	}
	m.pushT(ir.Canon(tc, r), ta || tb)
}

// execShift implements Shl/Shr with the profile-dependent
// out-of-range-count policy. Shared by both interpreter loops.
func (m *Machine) execShift(in *ir.Instr) {
	cnt, tb := m.popT()
	a, ta := m.popT()
	tc := ir.TypeCode(in.A)
	bits := uint64(tc.Bits())
	if cnt >= bits {
		if m.opts.San == SanUBSan {
			m.report("ubsan", "shift-out-of-bounds", in.Line)
			return
		}
		if m.prof.ShiftMask {
			cnt &= bits - 1 // x86 shifter behaviour
		} else {
			m.pushT(0, ta || tb) // as if constant-folded to zero
			return
		}
	}
	var r uint64
	if in.Op == ir.Shl {
		r = a << cnt
	} else if tc.Signed() {
		r = uint64(int64(a) >> cnt)
	} else {
		r = truncToBits(a, tc.Bits()) >> cnt
	}
	m.pushT(ir.Canon(tc, r), ta || tb)
}

// poison produces the implementation-determined garbage value the
// optimizer left where it exploited UB.
func (m *Machine) poison(seed uint64) uint64 {
	x := seed ^ m.prof.Key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func truncToBits(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}
