package vm_test

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// Supplementary VM behaviour: printf formats, string builtins, float
// paths, resource limits, coverage, and the injectable clock.

func TestPrintfFormats(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    printf("%d|%u|%x|%c|%s|%%|", -7, 7U, 255, 'Z', "str");
    printf("%ld|%lu|%lx|", 0L - 9L, 9UL, 255L);
    printf("%f|%.2f|%g|", 1.5, 1.256, 0.5);
    printf("%q|");
    return 0;
}`, nil)
	want := "-7|7|ff|Z|str|%|-9|9|ff|1.500000|1.26|0.5|%q|"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestPrintfPointerFormat(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    char buf[4];
    buf[0] = 'a';
    printf("%p\n", buf);
    return 0;
}`, nil)
	if !strings.HasPrefix(got, "0x") {
		t.Fatalf("%%p output = %q", got)
	}
}

func TestStringBuiltinEdgeCases(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    char a[16];
    char b[16];
    strcpy(a, "");
    printf("[%s]%ld|", a, strlen(a));
    strcpy(a, "xy");
    strcat(a, "");
    strcat(a, "z");
    printf("%s|", a);
    strncpy(b, "abc", 6L);
    printf("%d%d%d|", b[3], b[4], b[5]);
    printf("%d %d\n", strcmp("abc", "abd"), strcmp("b", "abd"));
    return 0;
}`, nil)
	want := "[]0|xyz|000|-1 1\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestMemsetNegativeSizeFaults(t *testing.T) {
	res := run(t, `
int main() {
    char buf[8];
    memset(buf, 0, 0L - 4L);
    return 0;
}`, nil)
	if res.Exit != vm.SigSegv {
		t.Fatalf("exit = %v", res.Exit)
	}
}

func TestFloatMathBuiltins(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    printf("%.1f %.1f %.1f\n", sqrt(25.0), fabs(0.0 - 2.5), pow(2.0, 3.0));
    printf("%d\n", abs(0 - 41));
    return 0;
}`, nil)
	if got != "5.0 2.5 8.0\n41\n" {
		t.Fatalf("got %q", got)
	}
}

func TestFloatComparisonsAndConversions(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    double d = 2.75;
    float f = (float)d;
    int i = (int)d;
    long l = (long)(d * 2.0);
    printf("%d %d %ld %d %d\n", (int)f, i, l, d > 2.5, f < 3.0);
    double neg = 0.0 - 2.75;
    printf("%d\n", (int)neg);
    return 0;
}`, nil)
	if got != "2 2 5 1 1\n-2\n" {
		t.Fatalf("got %q", got)
	}
}

func TestDeepRecursionOverflowsStack(t *testing.T) {
	res := run(t, `
int burn(int n) {
    char pad[512];
    pad[0] = (char)n;
    if (n <= 0) { return pad[0]; }
    return burn(n - 1) + 1;
}
int main() {
    printf("%d\n", burn(100000));
    return 0;
}`, nil)
	if res.Exit != vm.SigSegv {
		t.Fatalf("exit = %v, want stack-overflow SIGSEGV", res.Exit)
	}
}

func TestHeapExhaustionReturnsNull(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    long total = 0;
    for (int i = 0; i < 100; i++) {
        char* p = (char*)malloc(65536L);
        if (p == 0) { printf("oom after %ld bytes\n", total); return 0; }
        total += 65536L;
    }
    printf("never\n");
    return 0;
}`, nil)
	if !strings.Contains(got, "oom after") {
		t.Fatalf("got %q", got)
	}
}

func TestMaxOutputTruncation(t *testing.T) {
	src := `
int main() {
    for (int i = 0; i < 10000; i++) { printf("0123456789"); }
    return 0;
}`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.GCC, Opt: compiler.O1})
	m := vm.New(bin, vm.Options{MaxOutput: 1024})
	res := m.Run(nil)
	if res.Exit != vm.Exited {
		t.Fatalf("exit = %v", res.Exit)
	}
	if len(res.Stdout) > 2048 {
		t.Fatalf("stdout = %d bytes despite 1 KiB cap", len(res.Stdout))
	}
}

func TestTimeNowInjectable(t *testing.T) {
	src := `int main() { printf("%ld %ld\n", time_now(), time_now()); return 0; }`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O0})
	m := vm.New(bin, vm.Options{TimeNow: func(runSeq int64, call int) int64 {
		return 1000*runSeq + int64(call)
	}})
	r1 := m.Run(nil)
	if string(r1.Stdout) != "1001 1002\n" {
		t.Fatalf("run1 = %q", r1.Stdout)
	}
	r2 := m.Run(nil)
	if string(r2.Stdout) != "2001 2002\n" {
		t.Fatalf("run2 = %q", r2.Stdout)
	}
}

func TestCoverageBitmapReflectsPaths(t *testing.T) {
	src := `
int main() {
    char b[4];
    long n = read_input(b, 4L);
    if (n > 0 && b[0] == 'x') { printf("x\n"); } else { printf("o\n"); }
    return 0;
}`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Instrument: true})
	m := vm.New(bin, vm.Options{Coverage: true})
	m.Run([]byte("x"))
	covX := append([]byte(nil), m.Coverage()...)
	m.Run([]byte("o"))
	covO := m.Coverage()
	same := true
	for i := range covX {
		if covX[i] != covO[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different paths produced identical coverage maps")
	}
}

func TestEncodeAndHashes(t *testing.T) {
	res := run(t, `int main() { printf("out\n"); return 3; }`, nil)
	enc := string(res.Encode())
	for _, want := range []string{"exit:exited:3", "out\n", "--stderr--"} {
		if !strings.Contains(enc, want) {
			t.Errorf("encode missing %q:\n%s", want, enc)
		}
	}
	if res.OutputHash() == 0 {
		t.Error("hash should be nonzero for nonempty output")
	}
	if res.Crashed() {
		t.Error("normal exit is not a crash")
	}
}

func TestInputByteBounds(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    printf("%d %d %d\n", input_byte(0L), input_byte(0L - 1L), input_byte(100L));
    return 0;
}`, []byte{0xff})
	if got != "255 -1 -1\n" {
		t.Fatalf("got %q", got)
	}
}

func TestReadInputTruncatesToMax(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    char buf[4];
    long n = read_input(buf, 4L);
    printf("%ld %c%c%c%c\n", n, buf[0], buf[1], buf[2], buf[3]);
    return 0;
}`, []byte("abcdefgh"))
	if got != "4 abcd\n" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedStructsAndArrays(t *testing.T) {
	got := stdoutOf(t, `
struct Inner { int v[3]; };
struct Outer { struct Inner in; int tail; };
int main() {
    struct Outer o;
    for (int i = 0; i < 3; i++) { o.in.v[i] = i * 10; }
    o.tail = 99;
    struct Outer* p = &o;
    printf("%d %d %d %ld\n", p->in.v[1], o.in.v[2], p->tail, sizeof(struct Outer));
    return 0;
}`, nil)
	if got != "10 20 99 16\n" {
		t.Fatalf("got %q", got)
	}
}

func TestCharSignedness(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    char c = (char)200;
    unsigned char u = (unsigned char)200;
    printf("%d %d\n", c, u);
    return 0;
}`, nil)
	if got != "-56 200\n" {
		t.Fatalf("got %q", got)
	}
}

func TestLogicalOperatorsProduceBooleans(t *testing.T) {
	got := stdoutOf(t, `
int main() {
    int a = 5;
    double d = 0.5;
    printf("%d %d %d %d\n", a && 2, a || 0, !a, d && 1.0);
    return 0;
}`, nil)
	if got != "1 1 0 1\n" {
		t.Fatalf("got %q", got)
	}
}
