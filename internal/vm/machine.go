package vm

import (
	"compdiff/internal/hash"
	"compdiff/internal/ir"
)

// SanMode selects sanitizer instrumentation for a machine.
type SanMode int

const (
	SanNone SanMode = iota
	SanASan
	SanUBSan
	SanMSan
)

// String names the mode.
func (m SanMode) String() string {
	switch m {
	case SanASan:
		return "asan"
	case SanUBSan:
		return "ubsan"
	case SanMSan:
		return "msan"
	default:
		return "none"
	}
}

// Options configures a Machine.
type Options struct {
	// StepLimit bounds executed instructions per run (timeout analog).
	// Zero means DefaultStepLimit.
	StepLimit int64
	// MaxOutput caps each captured stream in bytes. Zero means 256 KiB.
	MaxOutput int
	// San selects sanitizer instrumentation.
	San SanMode
	// Coverage enables the AFL-style edge bitmap (for instrumented
	// binaries).
	Coverage bool
	// TimeNow supplies the wall clock for the time_now builtin. The
	// default derives a value from the binary's personality and a run
	// counter — deliberately unstable across implementations and runs,
	// like a real clock (RQ5 material). Tests may pin it.
	TimeNow func(runSeq int64, call int) int64

	// TraceLines records the sequence of executed source lines in
	// Result.Trace (consecutive duplicates collapsed), the raw
	// material for trace-diff fault localization (paper §5). Bounded
	// by MaxTrace (default 1<<16 entries).
	TraceLines bool
	MaxTrace   int
}

// DefaultStepLimit is the per-run instruction budget.
const DefaultStepLimit = 4_000_000

// CovMapSize is the coverage bitmap size (AFL's classic 64 KiB).
const CovMapSize = 1 << 16

// Machine executes one compiled binary. It plays the role of the
// AFL++ forkserver: the binary is loaded once, and each Run resets
// memory from a pristine snapshot instead of re-launching.
//
// A Machine is single-goroutine (all run state lives on it); parallel
// execution layers (core's worker pool, difffuzz's shards) give each
// worker its own machine via per-implementation free lists.
type Machine struct {
	prog *ir.Program
	opts Options
	prof ir.Profile

	mem      []byte
	pristine []byte

	// Sanitizer shadow state.
	asanShadow []byte // 0 ok, else poison kind
	msanInit   []byte // 1 = initialized

	cov      []byte
	edgeHash []uint16

	// Run state.
	input   []byte
	stdout  []byte
	stderr  []byte
	steps   int64
	limit   int64
	runSeq  int64
	timeCnt int

	stack  []uint64
	taint  []bool
	temp   []uint64
	tempT  []bool
	frames []frame

	// Stack segment allocation.
	stackLow, stackHigh uint64

	heap heapState

	halt    bool
	exit    ExitKind
	code    int32
	san     *SanReport
	prevLoc uint16

	// Dirty span: the byte range writes may have touched since the
	// last reset. Reset restores only this range from the pristine
	// image, which keeps the fork-server loop fast.
	dirtyLo, dirtyHi uint64

	// Line trace (TraceLines mode).
	trace     []int32
	lastTrace int32

	msanPristine []byte
}

// markDirty widens the dirty span to include [addr, addr+size).
func (m *Machine) markDirty(addr, size uint64) {
	if addr < m.dirtyLo {
		m.dirtyLo = addr
	}
	if addr+size > m.dirtyHi {
		m.dirtyHi = addr + size
	}
}

type frame struct {
	fn   *ir.Func
	base uint64
	pc   int
}

// New loads prog into a fresh machine.
func New(prog *ir.Program, opts Options) *Machine {
	if opts.StepLimit <= 0 {
		opts.StepLimit = DefaultStepLimit
	}
	if opts.MaxOutput <= 0 {
		opts.MaxOutput = 256 << 10
	}
	if opts.TraceLines && opts.MaxTrace <= 0 {
		opts.MaxTrace = 1 << 16
	}
	m := &Machine{prog: prog, opts: opts, prof: prog.Profile}
	m.buildPristine()
	m.mem = make([]byte, ir.MemSize)
	copy(m.mem, m.pristine)
	if opts.San == SanASan {
		m.asanShadow = make([]byte, ir.MemSize)
	}
	if opts.San == SanMSan {
		m.msanInit = make([]byte, ir.MemSize)
		m.msanPristine = make([]byte, ir.MemSize)
		for i := ir.RodataBase; i < ir.GlobalsBase+int(m.prog.GlobalsLen); i++ {
			m.msanPristine[i] = 1
		}
		copy(m.msanInit, m.msanPristine)
	}
	m.dirtyLo, m.dirtyHi = ir.MemSize, 0 // memory is pristine: first reset skips the copy
	if opts.Coverage {
		m.cov = make([]byte, CovMapSize)
		n := prog.NumEdges
		if n == 0 {
			n = 1
		}
		m.edgeHash = make([]uint16, n)
		for i := range m.edgeHash {
			m.edgeHash[i] = uint16(hash.Sum32([]byte{byte(i), byte(i >> 8), byte(i >> 16)}, 0xed9e) & (CovMapSize - 1))
		}
	}
	return m
}

// buildPristine constructs the initial memory image: the
// implementation's fill pattern everywhere (what "uninitialized"
// memory contains), rodata, and zeroed+initialized globals.
func (m *Machine) buildPristine() {
	img := make([]byte, ir.MemSize)
	var pat [64]byte
	k := m.prof.Key
	for i := 0; i < 64; i += 8 {
		k = k*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		for j := 0; j < 8; j++ {
			pat[i+j] = byte(k >> (8 * j))
		}
	}
	for i := ir.NullTop; i < len(img); i += 64 {
		copy(img[i:], pat[:])
	}
	copy(img[ir.RodataBase:], m.prog.Rodata)
	// C guarantees zero-initialization of the data segment.
	gl := img[ir.GlobalsBase : ir.GlobalsBase+m.prog.GlobalsLen]
	for i := range gl {
		gl[i] = 0
	}
	for _, gi := range m.prog.GlobalInit {
		copy(img[ir.GlobalsBase+gi.Offset:], gi.Data)
	}
	m.pristine = img
}

// Program returns the loaded binary.
func (m *Machine) Program() *ir.Program { return m.prog }

// Coverage returns the edge bitmap of the last run (nil when coverage
// is disabled).
func (m *Machine) Coverage() []byte { return m.cov }

// Run executes the binary on input and returns the observable result.
func (m *Machine) Run(input []byte) *Result {
	return m.run(input, m.opts.StepLimit)
}

// RunWithLimit runs with a one-off step limit (the CompDiff
// partial-timeout re-run policy uses it). The limit applies to this
// run only and never touches the machine's configured options, so a
// temporary budget cannot leak into later runs of a machine reused
// from a free list. Non-positive limits fall back to the configured
// one instead of tripping an instant spurious timeout.
func (m *Machine) RunWithLimit(input []byte, limit int64) *Result {
	if limit <= 0 {
		limit = m.opts.StepLimit
	}
	return m.run(input, limit)
}

func (m *Machine) run(input []byte, limit int64) *Result {
	m.reset(input)
	m.limit = limit
	m.call(m.prog.Main, nil)
	for !m.halt {
		m.step()
	}
	res := &Result{
		Exit:   m.exit,
		Code:   m.code,
		Stdout: append([]byte(nil), m.stdout...),
		Stderr: append([]byte(nil), m.stderr...),
		Steps:  m.steps,
		San:    m.san,
	}
	if m.opts.TraceLines {
		res.Trace = append([]int32(nil), m.trace...)
	}
	return res
}

func (m *Machine) reset(input []byte) {
	if m.dirtyHi > m.dirtyLo {
		lo, hi := m.dirtyLo, m.dirtyHi
		if hi > ir.MemSize {
			hi = ir.MemSize
		}
		copy(m.mem[lo:hi], m.pristine[lo:hi])
		if m.asanShadow != nil {
			sh := m.asanShadow[lo:hi]
			for i := range sh {
				sh[i] = 0
			}
		}
		if m.msanInit != nil {
			copy(m.msanInit[lo:hi], m.msanPristine[lo:hi])
		}
	}
	m.dirtyLo, m.dirtyHi = ir.MemSize, 0
	if m.cov != nil {
		for i := range m.cov {
			m.cov[i] = 0
		}
	}
	m.input = input
	m.stdout = m.stdout[:0]
	m.stderr = m.stderr[:0]
	m.steps = 0
	m.limit = m.opts.StepLimit // run() overrides for one-off limits
	m.stack = m.stack[:0]
	m.taint = m.taint[:0]
	m.temp = m.temp[:0]
	m.tempT = m.tempT[:0]
	m.frames = m.frames[:0]
	m.stackLow = ir.StackMax
	m.stackHigh = ir.StackBase
	m.heap.reset()
	m.halt = false
	m.exit = Exited
	m.code = 0
	m.san = nil
	m.prevLoc = 0
	m.runSeq++
	m.timeCnt = 0
	m.trace = m.trace[:0]
	m.lastTrace = -1
}

// traceLine records an executed source line (collapsing repeats).
func (m *Machine) traceLine(line int32) {
	if line <= 0 || line == m.lastTrace || len(m.trace) >= m.opts.MaxTrace {
		return
	}
	m.lastTrace = line
	m.trace = append(m.trace, line)
}

// trap ends execution abnormally.
func (m *Machine) trap(kind ExitKind) {
	if m.halt {
		return
	}
	m.halt = true
	m.exit = kind
	switch kind {
	case SigSegv:
		m.writeErr("Segmentation fault (core dumped)\n")
	case SigFpe:
		m.writeErr("Floating point exception (core dumped)\n")
	case Abort:
		m.writeErr("free(): invalid pointer\nAborted (core dumped)\n")
	}
}

// report fires a sanitizer finding and halts.
func (m *Machine) report(tool, kind string, line int32) {
	if m.halt {
		return
	}
	fn := "?"
	if len(m.frames) > 0 {
		fn = m.frames[len(m.frames)-1].fn.Name
	}
	m.san = &SanReport{Tool: tool, Kind: kind, Func: fn, Line: line}
	m.writeErr("==1==ERROR: " + m.san.String() + "\n")
	m.halt = true
	m.exit = SanAbort
}

func (m *Machine) exitNormally(code int32) {
	m.halt = true
	m.exit = Exited
	m.code = code
}

func (m *Machine) writeOut(s string) {
	if len(m.stdout) < m.opts.MaxOutput {
		m.stdout = append(m.stdout, s...)
	}
}

func (m *Machine) writeErr(s string) {
	if len(m.stderr) < m.opts.MaxOutput {
		m.stderr = append(m.stderr, s...)
	}
}

// push/pop maintain the operand stack and, in MSan mode, the parallel
// taint stack.
func (m *Machine) push(v uint64) {
	m.stack = append(m.stack, v)
	if m.msanInit != nil {
		m.taint = append(m.taint, false)
	}
}

func (m *Machine) pushT(v uint64, t bool) {
	m.stack = append(m.stack, v)
	if m.msanInit != nil {
		m.taint = append(m.taint, t)
	}
}

func (m *Machine) pop() uint64 {
	n := len(m.stack) - 1
	v := m.stack[n]
	m.stack = m.stack[:n]
	if m.msanInit != nil {
		m.taint = m.taint[:n]
	}
	return v
}

func (m *Machine) popT() (uint64, bool) {
	n := len(m.stack) - 1
	v := m.stack[n]
	m.stack = m.stack[:n]
	t := false
	if m.msanInit != nil {
		t = m.taint[n]
		m.taint = m.taint[:n]
	}
	return v, t
}

// call invokes function fi with the given argument words (already in
// declaration order). Extra arguments are dropped; missing ones leave
// the parameter slots holding stack garbage (CWE-685 semantics).
func (m *Machine) call(fi int, args []uint64) {
	m.callT(fi, args, nil)
}

func (m *Machine) callT(fi int, args []uint64, taints []bool) {
	fn := m.prog.Funcs[fi]
	var base uint64
	if m.prof.StackDown {
		if m.stackLow < uint64(fn.FrameSize)+ir.StackBase {
			m.trap(SigSegv) // stack overflow
			return
		}
		m.stackLow -= uint64(fn.FrameSize)
		base = m.stackLow
	} else {
		base = m.stackHigh
		if base+uint64(fn.FrameSize) > ir.StackMax {
			m.trap(SigSegv)
			return
		}
		m.stackHigh += uint64(fn.FrameSize)
	}

	if m.msanInit != nil {
		// A fresh frame is uninitialized memory.
		m.markDirty(base, uint64(fn.FrameSize))
		for i := base; i < base+uint64(fn.FrameSize); i++ {
			m.msanInit[i] = 0
		}
	}
	if m.asanShadow != nil {
		// Poison everything in the frame that is not a variable slot
		// (the redzones the ASan compile layout inserted).
		m.markDirty(base, uint64(fn.FrameSize))
		for i := base; i < base+uint64(fn.FrameSize); i++ {
			m.asanShadow[i] = shadowStackRZ
		}
		for _, s := range fn.Slots {
			for i := base + uint64(s.Off); i < base+uint64(s.Off+s.Size); i++ {
				m.asanShadow[i] = 0
			}
		}
	}

	for i := 0; i < len(fn.ParamOff) && i < len(args); i++ {
		addr := base + uint64(fn.ParamOff[i])
		w := paramWidth(fn.ParamKind[i])
		v := args[i]
		if fn.ParamKind[i] == ir.F32 {
			v = ir.ConvWord(ir.F64, ir.F32, v)
			v = uint64(f32bits(v))
		}
		m.rawStore(addr, w, v)
		if m.msanInit != nil {
			t := i < len(taints) && taints[i]
			m.markInit(addr, uint64(w), !t)
		}
	}
	m.frames = append(m.frames, frame{fn: fn, base: base})
}

func paramWidth(tc ir.TypeCode) int {
	switch tc {
	case ir.I8, ir.U8:
		return 1
	case ir.I32, ir.U32, ir.F32:
		return 4
	default:
		return 8
	}
}

func (m *Machine) ret(hasValue bool) {
	var v uint64
	var t bool
	if hasValue {
		v, t = m.popT()
	}
	fr := m.frames[len(m.frames)-1]
	m.frames = m.frames[:len(m.frames)-1]
	if m.prof.StackDown {
		m.stackLow += uint64(fr.fn.FrameSize)
	} else {
		m.stackHigh -= uint64(fr.fn.FrameSize)
	}
	if m.asanShadow != nil {
		base := fr.base
		for i := base; i < base+uint64(fr.fn.FrameSize); i++ {
			m.asanShadow[i] = 0
		}
	}
	if len(m.frames) == 0 {
		// main returned: its value is the exit status.
		code := int32(0)
		if hasValue {
			code = int32(v)
		}
		m.exitNormally(code)
		return
	}
	if hasValue {
		m.pushT(v, t)
	}
}
