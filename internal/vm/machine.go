package vm

import (
	"math/bits"

	"compdiff/internal/hash"
	"compdiff/internal/ir"
)

// SanMode selects sanitizer instrumentation for a machine.
type SanMode int

const (
	SanNone SanMode = iota
	SanASan
	SanUBSan
	SanMSan
)

// String names the mode.
func (m SanMode) String() string {
	switch m {
	case SanASan:
		return "asan"
	case SanUBSan:
		return "ubsan"
	case SanMSan:
		return "msan"
	default:
		return "none"
	}
}

// Options configures a Machine.
type Options struct {
	// StepLimit bounds executed instructions per run (timeout analog).
	// Zero means DefaultStepLimit.
	StepLimit int64
	// MaxOutput caps each captured stream in bytes. Zero means 256 KiB.
	MaxOutput int
	// San selects sanitizer instrumentation.
	San SanMode
	// Coverage enables the AFL-style edge bitmap (for instrumented
	// binaries).
	Coverage bool
	// TimeNow supplies the wall clock for the time_now builtin. The
	// default derives a value from the binary's personality and a run
	// counter — deliberately unstable across implementations and runs,
	// like a real clock (RQ5 material). Tests may pin it.
	TimeNow func(runSeq int64, call int) int64

	// TraceLines records the sequence of executed source lines in
	// Result.Trace (consecutive duplicates collapsed), the raw
	// material for trace-diff fault localization (paper §5). Bounded
	// by MaxTrace (default 1<<16 entries).
	TraceLines bool
	MaxTrace   int

	// Reference forces the simple per-instruction step() interpreter
	// instead of the batched fast loop. The two loops must be
	// observationally identical; the differential self-test runs every
	// corpus program through both and compares Results field by field —
	// the repo's own differential-testing medicine applied to its VM.
	Reference bool
}

// DefaultStepLimit is the per-run instruction budget.
const DefaultStepLimit = 4_000_000

// CovMapSize is the coverage bitmap size (AFL's classic 64 KiB).
const CovMapSize = 1 << 16

// Dirty-page tracking: writes set a bit per touched page, and reset
// restores only those pages from the pristine image instead of the
// whole ir.MemSize span — the fork-server loop then pays for the
// memory a run actually used, not the address range it straddled.
const (
	// 256-byte pages: typical runs dirty a few stack slots, one
	// globals region, and the input buffer, so fine pages keep the
	// fork-server reset's copy traffic proportional to what actually
	// changed rather than rounding every touched byte up to a big
	// page. The bitmap stays small and a one-word summary (dirtySum)
	// lets reset skip straight to the dirty words.
	pageShift = 8
	pageSize  = 1 << pageShift
	numPages  = ir.MemSize >> pageShift
)

// dirtySum carries one bit per word of the dirty bitmap, so the whole
// bitmap must fit in 64 words; this fails to compile if pageShift
// shrinks enough to break that.
const _ = uint64(64 - numPages/64)

// slot is one operand-stack entry: the 64-bit value word interleaved
// with its MSan taint bit, so pushes and pops touch one cache line and
// one slice instead of two.
type slot struct {
	v uint64
	t bool
}

// Machine executes one compiled binary. It plays the role of the
// AFL++ forkserver: the binary is loaded once, and each Run resets
// memory from a pristine snapshot instead of re-launching.
//
// A Machine is single-goroutine (all run state lives on it); parallel
// execution layers (core's worker pool, difffuzz's shards) give each
// worker its own machine via per-implementation free lists.
type Machine struct {
	prog *ir.Program
	opts Options
	prof ir.Profile

	mem      []byte
	pristine []byte

	// Sanitizer shadow state.
	asanShadow []byte // 0 ok, else poison kind
	msanInit   []byte // 1 = initialized

	cov      []byte
	edgeHash []uint16

	// Run state.
	input   []byte
	stdout  []byte
	stderr  []byte
	steps   int64
	limit   int64
	runSeq  int64
	timeCnt int

	// Operand and temporary stacks: preallocated, reused across runs,
	// addressed by explicit stack pointers (sp/tsp) instead of
	// append/truncate pairs.
	ops   []slot
	sp    int
	temps []slot
	tsp   int

	frames []frame

	// Stack segment allocation.
	stackLow, stackHigh uint64

	heap heapState

	halt    bool
	exit    ExitKind
	code    int32
	san     *SanReport
	prevLoc uint16

	// Dirty-page bitmap: bit p set means page p of mem (and the shadow
	// planes) may differ from the pristine image. reset() restores
	// exactly these pages. dirtySum summarizes the bitmap — bit w set
	// iff dirty[w] != 0 — so reset skips clean words without loading
	// them.
	dirty    [numPages / 64]uint64
	dirtySum uint64

	// Line trace (TraceLines mode).
	trace     []int32
	lastTrace int32

	msanPristine []byte

	// res is the machine-owned Result that RunShared hands out; its
	// byte slices alias the machine's output buffers.
	res Result

	// Scratch buffers reused by the printf builtin, and the
	// direct-mapped compiled-format plan cache (see doPrintf).
	fmtBuf     []byte
	strBuf     []byte
	fmtCache   [1 << fmtCacheBits]fmtCacheEnt
	fmtScratch []fmtOp
}

// markDirty records that [addr, addr+size) may have been written.
func (m *Machine) markDirty(addr, size uint64) {
	if size == 0 {
		return
	}
	p0 := addr >> pageShift
	p1 := (addr + size - 1) >> pageShift
	if p1 >= numPages {
		p1 = numPages - 1
	}
	for p := p0; p <= p1; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
		m.dirtySum |= 1 << (p >> 6)
	}
}

type frame struct {
	fn   *ir.Func
	base uint64
	pc   int
}

// New loads prog into a fresh machine.
func New(prog *ir.Program, opts Options) *Machine {
	if opts.StepLimit <= 0 {
		opts.StepLimit = DefaultStepLimit
	}
	if opts.MaxOutput <= 0 {
		opts.MaxOutput = 256 << 10
	}
	if opts.TraceLines && opts.MaxTrace <= 0 {
		opts.MaxTrace = 1 << 16
	}
	m := &Machine{prog: prog, opts: opts, prof: prog.Profile}
	m.buildPristine()
	m.mem = make([]byte, ir.MemSize)
	copy(m.mem, m.pristine)
	if opts.San == SanASan {
		m.asanShadow = make([]byte, ir.MemSize)
	}
	if opts.San == SanMSan {
		m.msanInit = make([]byte, ir.MemSize)
		m.msanPristine = make([]byte, ir.MemSize)
		for i := ir.RodataBase; i < ir.GlobalsBase+int(m.prog.GlobalsLen); i++ {
			m.msanPristine[i] = 1
		}
		copy(m.msanInit, m.msanPristine)
	}
	m.ops = make([]slot, 256)
	m.temps = make([]slot, 64)
	m.frames = make([]frame, 0, 64)
	if opts.Coverage {
		m.cov = make([]byte, CovMapSize)
		n := prog.NumEdges
		if n == 0 {
			n = 1
		}
		m.edgeHash = make([]uint16, n)
		for i := range m.edgeHash {
			m.edgeHash[i] = uint16(hash.Sum32([]byte{byte(i), byte(i >> 8), byte(i >> 16)}, 0xed9e) & (CovMapSize - 1))
		}
	}
	return m
}

// buildPristine constructs the initial memory image: the
// implementation's fill pattern everywhere (what "uninitialized"
// memory contains), rodata, and zeroed+initialized globals.
func (m *Machine) buildPristine() {
	img := make([]byte, ir.MemSize)
	var pat [64]byte
	k := m.prof.Key
	for i := 0; i < 64; i += 8 {
		k = k*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		for j := 0; j < 8; j++ {
			pat[i+j] = byte(k >> (8 * j))
		}
	}
	for i := ir.NullTop; i < len(img); i += 64 {
		copy(img[i:], pat[:])
	}
	copy(img[ir.RodataBase:], m.prog.Rodata)
	// C guarantees zero-initialization of the data segment.
	gl := img[ir.GlobalsBase : ir.GlobalsBase+m.prog.GlobalsLen]
	for i := range gl {
		gl[i] = 0
	}
	for _, gi := range m.prog.GlobalInit {
		copy(img[ir.GlobalsBase+gi.Offset:], gi.Data)
	}
	m.pristine = img
}

// Program returns the loaded binary.
func (m *Machine) Program() *ir.Program { return m.prog }

// Coverage returns the edge bitmap of the last run (nil when coverage
// is disabled).
func (m *Machine) Coverage() []byte { return m.cov }

// Run executes the binary on input and returns an independent Result
// the caller may retain.
func (m *Machine) Run(input []byte) *Result {
	return m.runShared(input, m.opts.StepLimit).Clone()
}

// RunWithLimit runs with a one-off step limit (the CompDiff
// partial-timeout re-run policy uses it). The limit applies to this
// run only and never touches the machine's configured options, so a
// temporary budget cannot leak into later runs of a machine reused
// from a free list. Non-positive limits fall back to the configured
// one instead of tripping an instant spurious timeout.
func (m *Machine) RunWithLimit(input []byte, limit int64) *Result {
	if limit <= 0 {
		limit = m.opts.StepLimit
	}
	return m.runShared(input, limit).Clone()
}

// RunShared is the zero-copy fast path: it executes input and returns
// a machine-owned Result whose Stdout/Stderr/Trace slices alias the
// machine's internal buffers. The Result is valid only until the
// machine's next run (or release back to a free list); callers that
// need to retain it must Clone. The differential hot path hashes the
// aliased output via Result.EncodeTo and materializes a Clone only
// when a divergence is actually detected.
func (m *Machine) RunShared(input []byte) *Result {
	return m.runShared(input, m.opts.StepLimit)
}

// RunSharedWithLimit is RunShared with a one-off step limit, with the
// same fallback semantics as RunWithLimit.
func (m *Machine) RunSharedWithLimit(input []byte, limit int64) *Result {
	if limit <= 0 {
		limit = m.opts.StepLimit
	}
	return m.runShared(input, limit)
}

func (m *Machine) runShared(input []byte, limit int64) *Result {
	m.reset(input)
	m.limit = limit
	m.call(m.prog.Main)
	if m.opts.Reference {
		for !m.halt {
			m.step()
		}
	} else {
		m.runLoop()
	}
	// Field-at-a-time writeback: m.res is machine-owned and reused, so
	// assigning a composite literal would copy a temporary for no
	// benefit on the hottest exit path.
	m.res.Exit = m.exit
	m.res.Code = m.code
	m.res.Stdout = m.stdout
	m.res.Stderr = m.stderr
	m.res.Steps = m.steps
	m.res.San = m.san
	m.res.Trace = nil
	if m.opts.TraceLines {
		m.res.Trace = m.trace
	}
	return &m.res
}

func (m *Machine) reset(input []byte) {
	for sum := m.dirtySum; sum != 0; sum &= sum - 1 {
		w := bits.TrailingZeros64(sum)
		word := m.dirty[w]
		m.dirty[w] = 0
		for word != 0 {
			p := uint64(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
			lo := p << pageShift
			hi := lo + pageSize
			copy(m.mem[lo:hi], m.pristine[lo:hi])
			if m.asanShadow != nil {
				clear(m.asanShadow[lo:hi])
			}
			if m.msanInit != nil {
				copy(m.msanInit[lo:hi], m.msanPristine[lo:hi])
			}
		}
	}
	m.dirtySum = 0
	if m.cov != nil {
		clear(m.cov)
	}
	m.input = input
	m.stdout = m.stdout[:0]
	m.stderr = m.stderr[:0]
	m.steps = 0
	m.limit = m.opts.StepLimit // run() overrides for one-off limits
	m.sp = 0
	m.tsp = 0
	m.frames = m.frames[:0]
	m.stackLow = ir.StackMax
	m.stackHigh = ir.StackBase
	m.heap.reset()
	m.halt = false
	m.exit = Exited
	m.code = 0
	m.san = nil
	m.prevLoc = 0
	m.runSeq++
	m.timeCnt = 0
	m.trace = m.trace[:0]
	m.lastTrace = -1
}

// traceLine records an executed source line (collapsing repeats).
func (m *Machine) traceLine(line int32) {
	if line <= 0 || line == m.lastTrace || len(m.trace) >= m.opts.MaxTrace {
		return
	}
	m.lastTrace = line
	m.trace = append(m.trace, line)
}

// trap ends execution abnormally.
func (m *Machine) trap(kind ExitKind) {
	if m.halt {
		return
	}
	m.halt = true
	m.exit = kind
	switch kind {
	case SigSegv:
		m.writeErr("Segmentation fault (core dumped)\n")
	case SigFpe:
		m.writeErr("Floating point exception (core dumped)\n")
	case Abort:
		m.writeErr("free(): invalid pointer\nAborted (core dumped)\n")
	}
}

// report fires a sanitizer finding and halts.
func (m *Machine) report(tool, kind string, line int32) {
	if m.halt {
		return
	}
	fn := "?"
	if len(m.frames) > 0 {
		fn = m.frames[len(m.frames)-1].fn.Name
	}
	m.san = &SanReport{Tool: tool, Kind: kind, Func: fn, Line: line}
	m.writeErr("==1==ERROR: " + m.san.String() + "\n")
	m.halt = true
	m.exit = SanAbort
}

func (m *Machine) exitNormally(code int32) {
	m.halt = true
	m.exit = Exited
	m.code = code
}

func (m *Machine) writeOut(s string) {
	if len(m.stdout) < m.opts.MaxOutput {
		m.stdout = append(m.stdout, s...)
	}
}

func (m *Machine) writeOutBytes(b []byte) {
	if len(m.stdout) < m.opts.MaxOutput {
		m.stdout = append(m.stdout, b...)
	}
}

func (m *Machine) writeErr(s string) {
	if len(m.stderr) < m.opts.MaxOutput {
		m.stderr = append(m.stderr, s...)
	}
}

// push/pop maintain the operand stack. Values and taint bits live in
// one interleaved slot array; machines without MSan simply carry
// always-false taint bits at no extra slice traffic.
func (m *Machine) push(v uint64) {
	if m.sp == len(m.ops) {
		m.growOps()
	}
	m.ops[m.sp] = slot{v: v}
	m.sp++
}

func (m *Machine) pushT(v uint64, t bool) {
	if m.sp == len(m.ops) {
		m.growOps()
	}
	m.ops[m.sp] = slot{v: v, t: t}
	m.sp++
}

func (m *Machine) pop() uint64 {
	m.sp--
	return m.ops[m.sp].v
}

func (m *Machine) popT() (uint64, bool) {
	m.sp--
	s := m.ops[m.sp]
	return s.v, s.t
}

// growOps doubles the operand stack. The preallocated capacity covers
// ordinary programs; only pathological expression nesting or deep
// zero-frame recursion lands here.
func (m *Machine) growOps() {
	next := make([]slot, len(m.ops)*2)
	copy(next, m.ops)
	m.ops = next
}

func (m *Machine) growTemps() {
	next := make([]slot, len(m.temps)*2)
	copy(next, m.temps)
	m.temps = next
}

// call invokes function fi with no arguments (program entry).
func (m *Machine) call(fi int) {
	m.callS(fi, nil, false)
}

// callS invokes function fi. sl is the popped argument window of the
// operand stack, aliased in place (same zero-copy protocol as
// builtin); rev means the binary pushed right-to-left, so arguments
// read back-to-front. Extra arguments are dropped; missing ones leave
// the parameter slots holding stack garbage (CWE-685 semantics).
func (m *Machine) callS(fi int, sl []slot, rev bool) {
	fn := m.prog.Funcs[fi]
	var base uint64
	if m.prof.StackDown {
		if m.stackLow < uint64(fn.FrameSize)+ir.StackBase {
			m.trap(SigSegv) // stack overflow
			return
		}
		m.stackLow -= uint64(fn.FrameSize)
		base = m.stackLow
	} else {
		base = m.stackHigh
		if base+uint64(fn.FrameSize) > ir.StackMax {
			m.trap(SigSegv)
			return
		}
		m.stackHigh += uint64(fn.FrameSize)
	}

	if m.msanInit != nil {
		// A fresh frame is uninitialized memory.
		m.markDirty(base, uint64(fn.FrameSize))
		for i := base; i < base+uint64(fn.FrameSize); i++ {
			m.msanInit[i] = 0
		}
	}
	if m.asanShadow != nil {
		// Poison everything in the frame that is not a variable slot
		// (the redzones the ASan compile layout inserted).
		m.markDirty(base, uint64(fn.FrameSize))
		for i := base; i < base+uint64(fn.FrameSize); i++ {
			m.asanShadow[i] = shadowStackRZ
		}
		for _, s := range fn.Slots {
			for i := base + uint64(s.Off); i < base+uint64(s.Off+s.Size); i++ {
				m.asanShadow[i] = 0
			}
		}
	}

	for i := 0; i < len(fn.ParamOff) && i < len(sl); i++ {
		addr := base + uint64(fn.ParamOff[i])
		w := paramWidth(fn.ParamKind[i])
		s := sl[i]
		if rev {
			s = sl[len(sl)-1-i]
		}
		v := s.v
		if fn.ParamKind[i] == ir.F32 {
			v = ir.ConvWord(ir.F64, ir.F32, v)
			v = uint64(f32bits(v))
		}
		m.rawStore(addr, w, v)
		if m.msanInit != nil {
			m.markInit(addr, uint64(w), !s.t)
		}
	}
	m.frames = append(m.frames, frame{fn: fn, base: base})
}

func paramWidth(tc ir.TypeCode) int {
	switch tc {
	case ir.I8, ir.U8:
		return 1
	case ir.I32, ir.U32, ir.F32:
		return 4
	default:
		return 8
	}
}

func (m *Machine) ret(hasValue bool) {
	var v uint64
	var t bool
	if hasValue {
		v, t = m.popT()
	}
	fr := m.frames[len(m.frames)-1]
	m.frames = m.frames[:len(m.frames)-1]
	if m.prof.StackDown {
		m.stackLow += uint64(fr.fn.FrameSize)
	} else {
		m.stackHigh -= uint64(fr.fn.FrameSize)
	}
	if m.asanShadow != nil {
		base := fr.base
		for i := base; i < base+uint64(fr.fn.FrameSize); i++ {
			m.asanShadow[i] = 0
		}
	}
	if len(m.frames) == 0 {
		// main returned: its value is the exit status.
		code := int32(0)
		if hasValue {
			code = int32(v)
		}
		m.exitNormally(code)
		return
	}
	if hasValue {
		m.pushT(v, t)
	}
}
