package vm_test

// Regression tests for one-off step limits on reused machines: the
// partial-timeout re-run policy (RQ6) hands a machine a temporary
// budget, and that budget must never survive into the next run of the
// same warm machine — the free-list pools in core hand machines from
// run to run without reconstruction.

import (
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// loopMachine compiles a program that busy-loops for ~6 steps per
// iteration and returns a machine with the given configured limit.
func loopMachine(t *testing.T, configured int64) *vm.Machine {
	t.Helper()
	src := `
int main() {
    long sink = 0;
    for (long i = 0; i < 100000L; i++) { sink += i; }
    printf("%ld\n", sink);
    return 0;
}
`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.GCC, Opt: compiler.O0})
	return vm.New(bin, vm.Options{StepLimit: configured})
}

// TestRunWithLimitDoesNotLeak mirrors the RQ6 sequence on a pooled
// machine: a short-limit re-run followed by a normal run. The normal
// run must get the full configured budget back.
func TestRunWithLimitDoesNotLeak(t *testing.T) {
	m := loopMachine(t, vm.DefaultStepLimit)

	short := m.RunWithLimit(nil, 100)
	if short.Exit != vm.StepLimit {
		t.Fatalf("short-limit run: exit = %v, want timeout", short.Exit)
	}
	if short.Steps > 101 {
		t.Fatalf("short-limit run took %d steps past a limit of 100", short.Steps)
	}

	normal := m.Run(nil)
	if normal.Exit != vm.Exited {
		t.Fatalf("normal run after short-limit re-run: exit = %v (leaked limit?)", normal.Exit)
	}
	if normal.Steps <= 100 {
		t.Fatalf("normal run took only %d steps", normal.Steps)
	}
}

// TestRunWithLimitGrownBudgetDoesNotLeak is the other direction: a
// grown re-run budget must not raise the configured limit of later
// runs.
func TestRunWithLimitGrownBudgetDoesNotLeak(t *testing.T) {
	m := loopMachine(t, 10_000) // too small for the loop

	grown := m.RunWithLimit(nil, 100_000_000)
	if grown.Exit != vm.Exited {
		t.Fatalf("grown-budget run: exit = %v", grown.Exit)
	}

	normal := m.Run(nil)
	if normal.Exit != vm.StepLimit {
		t.Fatalf("normal run after grown re-run: exit = %v (leaked budget?)", normal.Exit)
	}
	if normal.Steps > 10_001 {
		t.Fatalf("normal run took %d steps past the configured 10000", normal.Steps)
	}
}

// TestRunWithLimitNonPositive: a non-positive one-off limit falls back
// to the configured budget instead of timing out on the first step.
func TestRunWithLimitNonPositive(t *testing.T) {
	m := loopMachine(t, vm.DefaultStepLimit)
	for _, limit := range []int64{0, -1, -1 << 40} {
		res := m.RunWithLimit(nil, limit)
		if res.Exit != vm.Exited {
			t.Fatalf("RunWithLimit(%d): exit = %v, want normal completion", limit, res.Exit)
		}
	}
}

// referenceLoopMachine is loopMachine forced onto the reference step()
// loop, for batch-accounting equivalence checks.
func referenceLoopMachine(t *testing.T, configured int64) *vm.Machine {
	t.Helper()
	src := `
int main() {
    long sink = 0;
    for (long i = 0; i < 100000L; i++) { sink += i; }
    printf("%ld\n", sink);
    return 0;
}
`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.GCC, Opt: compiler.O0})
	return vm.New(bin, vm.Options{StepLimit: configured, Reference: true})
}

// TestStepLimitBatchAccounting holds the batched fast loop to the
// reference loop's exact step accounting around the trap point. The
// loop program completes in some natural step count N (measured
// first); limits of N-1, N, and N+1, plus limits landing on, just
// before, and just after batch boundaries, must produce identical
// Steps and identical StepLimit-vs-Exited classification under both
// loops. A timed-out run reports Steps == limit+1: the instruction
// that would exceed the budget counts but does not execute.
func TestStepLimitBatchAccounting(t *testing.T) {
	// Measure the natural completion count once, on the reference loop.
	natural := referenceLoopMachine(t, 1<<40).Run(nil).Steps
	if natural < 100 {
		t.Fatalf("loop program finished in %d steps; too short to probe", natural)
	}

	limits := []int64{
		natural - 1, natural, natural + 1, // around completion
		1, 2, // degenerate budgets
		63, 64, 65, // around one batch (stepBatch = 64)
		127, 128, 129, // around two batches
		natural - 64, // a full batch short
	}
	ref := referenceLoopMachine(t, 1<<40)
	fast := loopMachine(t, 1<<40)
	for _, limit := range limits {
		rr := ref.RunWithLimit(nil, limit)
		fr := fast.RunWithLimit(nil, limit)
		if rr.Exit != fr.Exit {
			t.Errorf("limit %d: exit ref=%v fast=%v", limit, rr.Exit, fr.Exit)
		}
		if rr.Steps != fr.Steps {
			t.Errorf("limit %d: steps ref=%d fast=%d", limit, rr.Steps, fr.Steps)
		}
		if rr.Exit == vm.StepLimit && rr.Steps != limit+1 {
			t.Errorf("limit %d: timed-out run reports %d steps, want limit+1=%d",
				limit, rr.Steps, limit+1)
		}
		if rr.Exit == vm.Exited && rr.Steps != natural {
			t.Errorf("limit %d: completed run reports %d steps, want %d",
				limit, rr.Steps, natural)
		}
	}

	// The boundary cases spelled out: at exactly natural steps the
	// program completes; one below, it times out.
	if r := fast.RunWithLimit(nil, natural); r.Exit != vm.Exited {
		t.Errorf("limit == natural (%d): exit %v, want completion", natural, r.Exit)
	}
	if r := fast.RunWithLimit(nil, natural-1); r.Exit != vm.StepLimit || r.Steps != natural {
		t.Errorf("limit == natural-1: exit %v steps %d, want timeout at %d",
			r.Exit, r.Steps, natural)
	}
}
