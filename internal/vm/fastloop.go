package vm

import (
	"math"

	"compdiff/internal/ir"
)

// The production interpreter loop. Where the reference step() re-derives
// everything per instruction — frame pointer, code slice, step-budget
// check, all through Machine fields — runLoop hoists the current
// frame's code slice, base address, pc, AND the operand stack (slot
// array + stack pointer) into locals, re-loading them only when the
// frame actually changes (Call/Ret) or a helper that touches machine
// state runs, and keeps the step counter in a register, reconciling
// with the budget only at batch boundaries (every stepBatch
// instructions) while preserving exact per-instruction accounting.
// The observable semantics are byte-identical to step(); the
// differential self-test enforces this over the golden corpus and
// crasher inputs.
//
// Local-state discipline: `sp`/`ops` are authoritative inside the
// inner loop. Every exit (return, halt check) writes m.sp back; every
// helper call that reads or writes the machine stack (callS, ret,
// builtin, execDivMod, execShift) is bracketed by a write-back and a
// re-load; callS and builtin take their argument window as an in-place
// alias of the popped slots instead of a marshalled copy. report() and trap() never touch the operand stack,
// so the inline cases may fire them freely before falling into the
// halt check.

// stepBatch is how many instructions run between step-limit checks.
// The batch never overruns the budget: each batch is clamped to the
// remaining allowance, so a program that would trap at limit (or
// limit±1) reports the same Steps and exit under both loops.
const stepBatch = 64

func (m *Machine) runLoop() {
	steps := m.steps
	limit := m.limit
	trace := m.opts.TraceLines
	ubsan := m.opts.San == SanUBSan
	// With no ASan shadow and no MSan taint map, checkAccess reduces to
	// the mapped/segment test and loadTaint/markInit are no-ops: the
	// common memory ops can validate inline and skip those calls.
	// Both maps are fixed at machine construction, so this is loop
	// invariant.
	plain := m.asanShadow == nil && m.msanInit == nil

outer:
	for !m.halt {
		// Hoist the frame and operand stack: reloaded only here, after
		// a Call, Ret, or batch boundary — never per instruction.
		fr := &m.frames[len(m.frames)-1]
		code := fr.fn.Code
		base := fr.base
		pc := fr.pc
		ops := m.ops
		sp := m.sp

		rem := limit - steps
		if rem <= 0 {
			// The next instruction would exceed the budget: it counts
			// (the reference loop increments before the check) but does
			// not execute.
			m.sp = sp
			m.steps = steps + 1
			m.trap(StepLimit)
			return
		}
		batch := int64(stepBatch)
		if batch > rem {
			batch = rem
		}
		target := steps + batch
		n := batch

		for n > 0 {
			if uint(pc) >= uint(len(code)) {
				m.sp = sp
				m.steps = target - n + 1
				m.trap(VMFault)
				return
			}
			in := &code[pc]
			pc++
			n--
			if trace {
				m.traceLine(in.Line)
			}

			switch in.Op {
			case ir.Nop:
				continue
			case ir.ConstI:
				v := uint64(in.Imm)
				// Fused ConstI+Conv and ConstI+Cmp* (+Jz/Jnz): the
				// conversion or comparison folds into the push. Guards
				// keep this observationally identical to the separate
				// dispatches — every fused instruction fits in the
				// current batch (so limit accounting is unchanged), and
				// trace mode records per-instruction lines, so it never
				// fuses.
				if uint(pc) < uint(len(code)) && !trace && n > 1 {
					switch nx := &code[pc]; nx.Op {
					case ir.Conv:
						pc++
						n--
						if from, to := ir.TypeCode(nx.A), ir.TypeCode(nx.B); !from.IsFloat() && !to.IsFloat() {
							v = ir.Canon(to, v)
						} else {
							v = ir.ConvWord(from, to, v)
						}
					case ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
						// Compare-with-immediate: the lhs is already on
						// the stack, so the push/pop round trip
						// disappears. Float codes keep the unfused path
						// (the immediate is an integer by construction).
						if tc := ir.TypeCode(nx.A); !tc.IsFloat() && sp > 0 {
							pc++
							n--
							a := ops[sp-1]
							res := ir.IntCmp(nx.Op, tc, a.v, v)
							// Chained branch: consti,cmp,jz is the
							// dominant conditional shape. An untainted
							// operand is required — a tainted branch is
							// MSan's core report, handled unfused.
							if uint(pc) < uint(len(code)) && !a.t && n > 1 {
								if br := &code[pc]; br.Op == ir.Jz || br.Op == ir.Jnz {
									pc++
									n--
									sp--
									if (br.Op == ir.Jz) != res {
										pc = int(br.Imm)
									}
									continue
								}
							}
							r := uint64(0)
							if res {
								r = 1
							}
							ops[sp-1] = slot{v: r, t: a.t}
							continue
						}
					}
				}
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: v}
				sp++
				continue
			case ir.ConstF:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: math.Float64bits(in.FImm)}
				sp++
				continue
			case ir.StrAddr:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: ir.RodataBase + uint64(in.Imm)}
				sp++
				continue
			case ir.FrameAddr:
				addr := base + uint64(in.Imm)
				// Fused FrameAddr+Load: a local-variable read skips the
				// address push/pop round trip. Only taken when the plain
				// mapped-access fast path applies (no sanitizer
				// bookkeeping, no trap possible) and both instructions
				// fit in the current batch; anything else falls back to
				// the plain push and lets the Load case handle it.
				if uint(pc) < uint(len(code)) && code[pc].Op == ir.Load && !trace && n > 1 {
					nx := &code[pc]
					w := uint64(nx.A)
					if end := addr + w; plain && addr >= ir.NullTop && end >= addr && end <= ir.MemSize {
						pc++
						n--
						raw := m.rawLoad(addr, int(nx.A))
						var v uint64
						switch nx.B {
						case 1: // sign-extend
							switch nx.A {
							case 1:
								v = uint64(int64(int8(raw)))
							case 4:
								v = uint64(int64(int32(raw)))
							default:
								v = raw
							}
						case 2: // float32
							v = f32val(uint32(raw))
						default: // zero-extend or float64
							v = raw
						}
						// Third link of the FrameAddr+Load chain: a
						// trailing Conv folds into the same push.
						if uint(pc) < uint(len(code)) && code[pc].Op == ir.Conv && n > 1 {
							cv := &code[pc]
							pc++
							n--
							if from, to := ir.TypeCode(cv.A), ir.TypeCode(cv.B); !from.IsFloat() && !to.IsFloat() {
								v = ir.Canon(to, v)
							} else {
								v = ir.ConvWord(from, to, v)
							}
						}
						if sp == len(ops) {
							m.sp = sp
							m.growOps()
							ops = m.ops
						}
						ops[sp] = slot{v: v}
						sp++
						continue
					}
				}
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: addr}
				sp++
				continue
			case ir.GlobalAddr:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: ir.GlobalsBase + uint64(in.Imm)}
				sp++
				continue
			case ir.Dup:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = ops[sp-1]
				sp++
				continue
			case ir.Pop:
				sp--
				continue
			case ir.Swap:
				ops[sp-1], ops[sp-2] = ops[sp-2], ops[sp-1]
				continue

			case ir.Load:
				sp--
				s := ops[sp]
				if s.t {
					m.report("msan", "use-of-uninitialized-value", in.Line)
					break
				}
				w := uint64(in.A)
				var t bool
				if end := s.v + w; plain && s.v >= ir.NullTop && end >= s.v && end <= ir.MemSize {
					// Mapped and no sanitizer bookkeeping: skip the calls.
				} else {
					if !m.checkAccess(s.v, w, false, in.Line) {
						break
					}
					t = m.loadTaint(s.v, w)
				}
				raw := m.rawLoad(s.v, int(in.A))
				var v uint64
				switch in.B {
				case 1: // sign-extend
					switch in.A {
					case 1:
						v = uint64(int64(int8(raw)))
					case 4:
						v = uint64(int64(int32(raw)))
					default:
						v = raw
					}
				case 2: // float32
					v = f32val(uint32(raw))
				default: // zero-extend or float64
					v = raw
				}
				// Fused Load+Conv: the widening that follows nearly every
				// sub-word load folds into the push (taint is untouched —
				// Conv propagates it unchanged).
				if uint(pc) < uint(len(code)) && code[pc].Op == ir.Conv && !trace && n > 1 {
					nx := &code[pc]
					pc++
					n--
					if from, to := ir.TypeCode(nx.A), ir.TypeCode(nx.B); !from.IsFloat() && !to.IsFloat() {
						v = ir.Canon(to, v)
					} else {
						v = ir.ConvWord(from, to, v)
					}
				}
				ops[sp] = slot{v: v, t: t}
				sp++
				continue

			case ir.Store:
				sp -= 2
				val := ops[sp+1]
				addr := ops[sp]
				if addr.t {
					m.report("msan", "use-of-uninitialized-value", in.Line)
					break
				}
				w := uint64(in.A)
				if end := addr.v + w; plain && addr.v >= ir.GlobalsBase && end >= addr.v && end <= ir.MemSize {
					// Mapped, writable, and no sanitizer bookkeeping.
					raw := val.v
					if in.B == 2 {
						raw = uint64(f32bits(val.v))
					}
					m.rawStore(addr.v, int(in.A), raw)
					continue
				}
				if !m.checkAccess(addr.v, w, true, in.Line) {
					break
				}
				raw := val.v
				if in.B == 2 {
					raw = uint64(f32bits(val.v))
				}
				m.rawStore(addr.v, int(in.A), raw)
				m.markInit(addr.v, w, !val.t)
				continue

			case ir.Add, ir.Sub, ir.Mul, ir.BitAnd, ir.BitOr, ir.BitXor:
				sp--
				b := ops[sp]
				a := ops[sp-1]
				tc := ir.TypeCode(in.A)
				if ubsan && ir.OverflowSigned(in.Op, tc, a.v, b.v) {
					sp--
					m.report("ubsan", "signed-integer-overflow", in.Line)
					break
				}
				var r uint64
				switch in.Op {
				case ir.Add:
					r = ir.Canon(tc, a.v+b.v)
				case ir.Sub:
					r = ir.Canon(tc, a.v-b.v)
				case ir.Mul:
					r = ir.Canon(tc, a.v*b.v)
				case ir.BitAnd:
					r = ir.Canon(tc, a.v&b.v)
				case ir.BitOr:
					r = ir.Canon(tc, a.v|b.v)
				default:
					r = ir.Canon(tc, a.v^b.v)
				}
				ops[sp-1] = slot{v: r, t: a.t || b.t}
				continue

			case ir.Div, ir.Mod:
				m.sp = sp
				m.execDivMod(in)
				sp = m.sp
				ops = m.ops

			case ir.Neg:
				s := ops[sp-1]
				tc := ir.TypeCode(in.A)
				if ubsan && ir.OverflowSigned(ir.Neg, tc, s.v, 0) {
					sp--
					m.report("ubsan", "signed-integer-overflow", in.Line)
					break
				}
				ops[sp-1] = slot{v: ir.Canon(tc, -s.v), t: s.t}
				continue

			case ir.BitNot:
				s := ops[sp-1]
				ops[sp-1] = slot{v: ir.Canon(ir.TypeCode(in.A), ^s.v), t: s.t}
				continue

			case ir.Shl, ir.Shr:
				m.sp = sp
				m.execShift(in)
				sp = m.sp
				ops = m.ops

			case ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
				sp--
				b := ops[sp]
				a := ops[sp-1]
				tc := ir.TypeCode(in.A)
				var res bool
				if tc.IsFloat() {
					x, y := math.Float64frombits(a.v), math.Float64frombits(b.v)
					switch in.Op {
					case ir.CmpEq:
						res = x == y
					case ir.CmpNe:
						res = x != y
					case ir.CmpLt:
						res = x < y
					case ir.CmpLe:
						res = x <= y
					case ir.CmpGt:
						res = x > y
					case ir.CmpGe:
						res = x >= y
					}
				} else if tc.Signed() {
					x, y := int64(a.v), int64(b.v)
					switch in.Op {
					case ir.CmpEq:
						res = x == y
					case ir.CmpNe:
						res = x != y
					case ir.CmpLt:
						res = x < y
					case ir.CmpLe:
						res = x <= y
					case ir.CmpGt:
						res = x > y
					default:
						res = x >= y
					}
				} else {
					switch in.Op {
					case ir.CmpEq:
						res = a.v == b.v
					case ir.CmpNe:
						res = a.v != b.v
					case ir.CmpLt:
						res = a.v < b.v
					case ir.CmpLe:
						res = a.v <= b.v
					case ir.CmpGt:
						res = a.v > b.v
					default:
						res = a.v >= b.v
					}
				}
				// Fused Cmp*+Jz/Jnz: the comparison feeds the branch
				// directly instead of round-tripping a 0/1 through the
				// stack. Tainted operands keep the unfused path so the
				// branch-on-uninitialized MSan report fires from the
				// plain Jz/Jnz case with its own line number.
				if uint(pc) < uint(len(code)) && !a.t && !b.t && !trace && n > 1 {
					if nx := &code[pc]; nx.Op == ir.Jz || nx.Op == ir.Jnz {
						pc++
						n--
						sp--
						if (nx.Op == ir.Jz) != res {
							pc = int(nx.Imm)
						}
						continue
					}
				}
				v := uint64(0)
				if res {
					v = 1
				}
				ops[sp-1] = slot{v: v, t: a.t || b.t}
				continue

			case ir.Conv:
				s := ops[sp-1]
				from, to := ir.TypeCode(in.A), ir.TypeCode(in.B)
				var v uint64
				if !from.IsFloat() && !to.IsFloat() {
					// Integer narrowing/widening is just canonicalization;
					// skipping the ConvWord call keeps the dominant case
					// inline.
					v = ir.Canon(to, s.v)
				} else {
					v = ir.ConvWord(from, to, s.v)
				}
				// Fused Conv+Add: the widen-then-add shape of C's usual
				// arithmetic conversions. A UBSan overflow falls back to
				// the plain push so the Add case reports it with its own
				// operand handling.
				if uint(pc) < uint(len(code)) && sp > 1 && !trace && n > 1 {
					if nx := &code[pc]; nx.Op == ir.Add {
						tc := ir.TypeCode(nx.A)
						a := ops[sp-2]
						if !(ubsan && ir.OverflowSigned(ir.Add, tc, a.v, v)) {
							pc++
							n--
							sp--
							ops[sp-1] = slot{v: ir.Canon(tc, a.v+v), t: a.t || s.t}
							continue
						}
					}
				}
				ops[sp-1] = slot{v: v, t: s.t}
				continue

			case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
				sp--
				b := ops[sp]
				a := ops[sp-1]
				x, y := math.Float64frombits(a.v), math.Float64frombits(b.v)
				var r float64
				switch in.Op {
				case ir.FAdd:
					r = x + y
				case ir.FSub:
					r = x - y
				case ir.FMul:
					r = x * y
				default:
					r = x / y
				}
				if ir.TypeCode(in.A) == ir.F32 {
					r = float64(float32(r))
				}
				ops[sp-1] = slot{v: math.Float64bits(r), t: a.t || b.t}
				continue

			case ir.FNeg:
				s := ops[sp-1]
				ops[sp-1] = slot{v: math.Float64bits(-math.Float64frombits(s.v)), t: s.t}
				continue

			case ir.FMulAdd:
				sp -= 2
				c := ops[sp+1]
				b := ops[sp]
				a := ops[sp-1]
				r := math.FMA(math.Float64frombits(a.v), math.Float64frombits(b.v), math.Float64frombits(c.v))
				ops[sp-1] = slot{v: math.Float64bits(r), t: a.t || b.t || c.t}
				continue

			case ir.Jmp:
				pc = int(in.Imm)
				continue

			case ir.Jz, ir.Jnz:
				sp--
				s := ops[sp]
				if s.t {
					// Branch on uninitialized data: MSan's core check.
					m.report("msan", "use-of-uninitialized-value", in.Line)
					break
				}
				if (in.Op == ir.Jz) == (s.v == 0) {
					pc = int(in.Imm)
				}
				continue

			case ir.Call:
				// Write the caller's resume point and stack back before
				// the frame stack changes; the hoisted locals are
				// re-derived for the callee at the top of the outer loop.
				fr.pc = pc
				steps = target - n
				m.steps = steps
				sp -= int(in.A)
				m.sp = sp
				m.callS(int(in.Imm), ops[sp:sp+int(in.A)], in.B == 1)
				continue outer

			case ir.CallB:
				// Builtins never touch the frame stack, so the hoisted
				// frame stays valid; they do push results and may halt
				// (exit, trap, sanitizer report), so the operand stack is
				// synced both ways and the common halt check below runs.
				// The argument window aliases the popped stack slots in
				// place (see builtin's aliasing invariant) — no
				// marshalling copy on the hot path.
				sp -= int(in.A)
				m.sp = sp
				m.builtin(int(in.Imm), ops[sp:sp+int(in.A)], in.B == 1, in.Line)
				sp = m.sp
				ops = m.ops

			case ir.Ret:
				// The caller's pc was written back when it executed the
				// Call; dropping this frame needs no writeback.
				steps = target - n
				m.steps = steps
				m.sp = sp
				m.ret(in.A == 1)
				continue outer

			case ir.TSet:
				sp--
				if m.tsp == len(m.temps) {
					m.growTemps()
				}
				m.temps[m.tsp] = ops[sp]
				m.tsp++
				continue
			case ir.TGet:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = m.temps[m.tsp-1]
				sp++
				continue
			case ir.TPop:
				m.tsp--
				continue

			case ir.Edge:
				if m.cov != nil {
					loc := m.edgeHash[in.Imm]
					m.cov[loc^m.prevLoc]++
					m.prevLoc = loc >> 1
				}
				continue

			case ir.Poison:
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: m.poison(uint64(in.Imm))}
				sp++
				continue

			case ir.LdLoc:
				// Fused FrameAddr+Load superinstruction: the Load fast
				// path with the address taken straight from the frame.
				// Frame displacements can never carry taint, so the
				// tainted-address report of the unfused pair is
				// unreachable here.
				addr := base + uint64(in.Imm)
				w := uint64(in.A)
				var t bool
				if end := addr + w; plain && addr >= ir.NullTop && end >= addr && end <= ir.MemSize {
					// Mapped and no sanitizer bookkeeping: skip the calls.
				} else {
					if !m.checkAccess(addr, w, false, in.Line) {
						break
					}
					t = m.loadTaint(addr, w)
				}
				raw := m.rawLoad(addr, int(in.A))
				var v uint64
				switch in.B {
				case 1: // sign-extend
					switch in.A {
					case 1:
						v = uint64(int64(int8(raw)))
					case 4:
						v = uint64(int64(int32(raw)))
					default:
						v = raw
					}
				case 2: // float32
					v = f32val(uint32(raw))
				default: // zero-extend or float64
					v = raw
				}
				// Same trailing-Conv fold as Load.
				if uint(pc) < uint(len(code)) && code[pc].Op == ir.Conv && !trace && n > 1 {
					nx := &code[pc]
					pc++
					n--
					if from, to := ir.TypeCode(nx.A), ir.TypeCode(nx.B); !from.IsFloat() && !to.IsFloat() {
						v = ir.Canon(to, v)
					} else {
						v = ir.ConvWord(from, to, v)
					}
				}
				if sp == len(ops) {
					m.sp = sp
					m.growOps()
					ops = m.ops
				}
				ops[sp] = slot{v: v, t: t}
				sp++
				continue

			case ir.CmpImm:
				// Fused ConstI+Cmp* superinstruction, with the same
				// trailing Jz/Jnz dispatch fusion as Cmp (a tainted
				// operand falls through so the branch reports it).
				a := ops[sp-1]
				res := ir.IntCmp(ir.CmpEq+ir.Op(in.B), ir.TypeCode(in.A), a.v, uint64(in.Imm))
				if uint(pc) < uint(len(code)) && !a.t && !trace && n > 1 {
					if nx := &code[pc]; nx.Op == ir.Jz || nx.Op == ir.Jnz {
						pc++
						n--
						sp--
						if (nx.Op == ir.Jz) != res {
							pc = int(nx.Imm)
						}
						continue
					}
				}
				v := uint64(0)
				if res {
					v = 1
				}
				ops[sp-1] = slot{v: v, t: a.t}
				continue

			case ir.AluImm:
				// Fused ConstI+ALU superinstruction.
				a := ops[sp-1]
				tc := ir.TypeCode(in.A)
				op := ir.Add + ir.Op(in.B)
				if ubsan && ir.OverflowSigned(op, tc, a.v, uint64(in.Imm)) {
					m.report("ubsan", "signed-integer-overflow", in.Line)
					break
				}
				ops[sp-1] = slot{v: ir.IntAlu(op, tc, a.v, uint64(in.Imm)), t: a.t}
				continue

			case ir.Unreach:
				m.trap(VMFault)

			default:
				m.trap(VMFault)
			}

			// Only cases that may halt (traps, sanitizer reports,
			// builtins, exhausted UB policies) fall through to here;
			// the plain data ops above `continue` past it.
			if m.halt {
				m.sp = sp
				m.steps = target - n
				return
			}
		}

		// Batch boundary inside one frame: persist the resume point and
		// stack, and let the outer loop re-check the budget.
		steps = target
		fr.pc = pc
		m.sp = sp
	}
	m.steps = steps
}
