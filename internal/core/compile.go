package core

import (
	"fmt"
	"sync"

	"compdiff/internal/compiler"
	"compdiff/internal/hash"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// The compile-stage differential oracle: before a program ever runs,
// the k implementations can already disagree — some accept and some
// reject (CompileDivergence), one crashes with an internal compiler
// error (ICE), or all reject but with different diagnostics
// (DiagMismatch). BuildDifferential records those facts per
// implementation; internal/triage turns them into fingerprinted
// findings.

// CompileStatus classifies one implementation's compile attempt.
type CompileStatus uint8

const (
	// StatusAccept: the implementation produced a program.
	StatusAccept CompileStatus = iota
	// StatusReject: the implementation refused the program with an
	// ordinary diagnostic.
	StatusReject
	// StatusICE: the implementation crashed (panicked) compiling it.
	StatusICE
)

// String returns the status name.
func (s CompileStatus) String() string {
	switch s {
	case StatusAccept:
		return "accept"
	case StatusReject:
		return "reject"
	default:
		return "ice"
	}
}

// ImplCompile is one implementation's compile-stage record.
type ImplCompile struct {
	Name   string        `json:"name"`
	Status CompileStatus `json:"status"`
	// Diags are the implementation's rendered warnings and errors.
	Diags []string `json:"diags,omitempty"`
	// Error is the compile error text for reject/ICE statuses.
	Error string `json:"error,omitempty"`
	// ICE is the raw panic text when Status is StatusICE.
	ICE string `json:"ice,omitempty"`
}

// CompileOutcome is the compile-stage record of one program across
// the whole implementation set, in suite order.
type CompileOutcome struct {
	Impls []ImplCompile `json:"impls"`
}

// AnyICE reports whether any implementation crashed.
func (co *CompileOutcome) AnyICE() bool {
	for _, im := range co.Impls {
		if im.Status == StatusICE {
			return true
		}
	}
	return false
}

// AllAccepted reports whether every implementation produced a program.
func (co *CompileOutcome) AllAccepted() bool {
	for _, im := range co.Impls {
		if im.Status != StatusAccept {
			return false
		}
	}
	return true
}

// AllRejected reports whether no implementation produced a program.
func (co *CompileOutcome) AllRejected() bool {
	for _, im := range co.Impls {
		if im.Status == StatusAccept {
			return false
		}
	}
	return true
}

// Signature folds the raw per-implementation records into a 64-bit
// identity, the compile-stage analogue of Outcome.Signature. Unlike
// the triage fingerprint it hashes the raw (un-normalized) texts, so
// it distinguishes concrete reproducers within one bucket.
func (co *CompileOutcome) Signature() uint64 {
	d := hash.New128(0xc0de)
	for _, im := range co.Impls {
		d.Write([]byte{byte(im.Status), 0xfe})
		d.Write([]byte(im.Error))
		d.Write([]byte{0xfe})
		d.Write([]byte(im.ICE))
		for _, dg := range im.Diags {
			d.Write([]byte{0xfd})
			d.Write([]byte(dg))
		}
	}
	h1, _ := d.Sum128()
	return h1
}

// BuildDifferential compiles the checked program under every
// configuration with per-implementation recover boundaries and
// records each one's accept/reject/ICE status. When all k accept, the
// returned Suite is ready for runtime differential execution; when
// any implementation rejects or crashes, the Suite is nil and the
// CompileOutcome itself is the (potential) finding. The outcome is
// positional and deterministic regardless of Options.Parallelism.
//
// The returned error is reserved for harness misuse (fewer than two
// configurations); per-implementation failures are data, not errors.
func BuildDifferential(info *sema.Info, cfgs []compiler.Config, opts Options) (*Suite, *CompileOutcome, error) {
	opts = opts.withDefaults()
	if len(cfgs) < 2 {
		return nil, nil, fmt.Errorf("compdiff: need at least 2 compiler implementations, got %d", len(cfgs))
	}

	results := make([]compiler.Result, len(cfgs))
	if opts.Parallelism > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Parallelism)
		for i := range cfgs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				results[i] = compiler.CompileGuarded(info, cfgs[i])
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range cfgs {
			results[i] = compiler.CompileGuarded(info, cfgs[i])
		}
	}
	return AssembleDifferential(results, cfgs, opts)
}

// AssembleDifferential builds the compile outcome and (when all
// implementations accepted) a fresh Suite from per-implementation
// compile results obtained elsewhere — the progcache hit path, where
// the k lowered programs already exist and only the outcome
// classification and the machines need constructing. results must be
// positional with cfgs. Each call yields an independent Suite: the
// cached *ir.Programs are immutable and shared read-only, the
// machines are new.
func AssembleDifferential(results []compiler.Result, cfgs []compiler.Config, opts Options) (*Suite, *CompileOutcome, error) {
	opts = opts.withDefaults()
	if len(cfgs) < 2 {
		return nil, nil, fmt.Errorf("compdiff: need at least 2 compiler implementations, got %d", len(cfgs))
	}
	if len(results) != len(cfgs) {
		return nil, nil, fmt.Errorf("compdiff: %d compile results for %d configurations", len(results), len(cfgs))
	}

	co := &CompileOutcome{Impls: make([]ImplCompile, len(cfgs))}
	for i, res := range results {
		im := ImplCompile{Name: cfgs[i].Name(), Diags: res.Diags}
		switch {
		case res.ICE != "":
			im.Status = StatusICE
			im.ICE = res.ICE
			im.Error = res.Err.Error()
		case res.Err != nil:
			im.Status = StatusReject
			im.Error = res.Err.Error()
		default:
			im.Status = StatusAccept
		}
		co.Impls[i] = im
	}
	if !co.AllAccepted() {
		return nil, co, nil
	}

	s := &Suite{opts: opts}
	for i, cfg := range cfgs {
		im := &Implementation{
			Config:    cfg,
			Prog:      results[i].Prog,
			stepLimit: opts.StepLimit,
		}
		im.free = []*vm.Machine{vm.New(results[i].Prog, vm.Options{StepLimit: opts.StepLimit})}
		s.Impls = append(s.Impls, im)
	}
	return s, co, nil
}

// BuildSourceDifferential parses, checks, and builds differentially.
// Parse and sema failures are uniform front-end rejects shared by
// every implementation — an error, never a finding.
func BuildSourceDifferential(src string, cfgs []compiler.Config, opts Options) (*Suite, *CompileOutcome, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("compdiff: parse: %w", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("compdiff: check: %w", err)
	}
	return BuildDifferential(info, cfgs, opts)
}
