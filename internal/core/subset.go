package core

import "sort"

// Subset analysis (§4.2, Figures 1 and 2): given per-bug output hashes
// under the full implementation set, count how many bugs each subset
// of implementations would still detect — a bug is detected by a
// subset iff two of its members disagree on the bug-triggering input.

// BugMatrix holds, for each detected bug, the output hash every
// implementation produced on that bug's triggering input.
type BugMatrix struct {
	ImplNames []string
	Rows      [][]uint64 // Rows[bug][impl]
}

// DetectedBy counts the bugs visible to the given subset of
// implementation indices.
func (bm *BugMatrix) DetectedBy(subset []int) int {
	n := 0
	for _, row := range bm.Rows {
		first := row[subset[0]]
		for _, i := range subset[1:] {
			if row[i] != first {
				n++
				break
			}
		}
	}
	return n
}

// SubsetStat summarizes all subsets of one size.
type SubsetStat struct {
	Size     int
	Subsets  int
	Min, Max int
	Median   float64
	Q1, Q3   float64
	Best     []int // a best-performing subset
	Worst    []int // a worst-performing subset
}

// SubsetSweep enumerates every subset of sizes 2..k of the
// implementations and returns per-size statistics — the data behind
// Figures 1 and 2.
func (bm *BugMatrix) SubsetSweep() []SubsetStat {
	k := len(bm.ImplNames)
	var stats []SubsetStat
	for size := 2; size <= k; size++ {
		var counts []int
		var best, worst []int
		bestN, worstN := -1, 1<<30
		forEachSubset(k, size, func(sub []int) {
			n := bm.DetectedBy(sub)
			counts = append(counts, n)
			if n > bestN {
				bestN = n
				best = append([]int(nil), sub...)
			}
			if n < worstN {
				worstN = n
				worst = append([]int(nil), sub...)
			}
		})
		sort.Ints(counts)
		stats = append(stats, SubsetStat{
			Size:    size,
			Subsets: len(counts),
			Min:     counts[0],
			Max:     counts[len(counts)-1],
			Median:  percentile(counts, 0.5),
			Q1:      percentile(counts, 0.25),
			Q3:      percentile(counts, 0.75),
			Best:    best,
			Worst:   worst,
		})
	}
	return stats
}

// forEachSubset enumerates size-sized subsets of {0..k-1}.
func forEachSubset(k, size int, f func([]int)) {
	sub := make([]int, size)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == size {
			f(sub)
			return
		}
		for i := start; i < k; i++ {
			sub[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func percentile(sorted []int, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return float64(sorted[len(sorted)-1])
	}
	return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
}
