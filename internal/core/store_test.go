package core

// Regression tests for the DiffStore delta/merge path and the
// rune-safety of report truncation.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestDiffStoreSinceOutOfRange: Since must clamp any from index — the
// cross-shard barrier calls it with a cursor the shard tracked itself,
// and a disagreement (or a future refactor bug) must degrade to an
// empty delta, not a slice panic.
func TestDiffStoreSinceOutOfRange(t *testing.T) {
	s := build(t, listing1Src)
	st := NewDiffStore("")
	if _, err := st.Add(s.Run([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0})); err != nil {
		t.Fatal(err)
	}

	for _, from := range []int{-5, -1, 0, 1, 2, 1000} {
		got := st.Since(from)
		want := st.Len() - from
		if from < 0 {
			want = st.Len()
		}
		if want < 0 {
			want = 0
		}
		if len(got) != want {
			t.Fatalf("Since(%d) returned %d entries, want %d", from, len(got), want)
		}
	}
}

// TestDiffStoreBarrierPathStaleCursor replays the synchronization
// barrier's merge loop with a cursor beyond the shard store's length —
// the shape of the bug a stale diffsSynced would produce.
func TestDiffStoreBarrierPathStaleCursor(t *testing.T) {
	s := build(t, listing1Src)
	shardLocal := NewDiffStore("")
	shared := NewDiffStore("")

	if _, err := shardLocal.Add(s.Run([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0})); err != nil {
		t.Fatal(err)
	}

	// A healthy barrier: cursor 0, one fresh entry crosses over.
	delta := shardLocal.Since(0)
	fresh, err := shared.Absorb(delta)
	if err != nil || len(fresh) != 1 {
		t.Fatalf("absorb: fresh=%d err=%v", len(fresh), err)
	}

	// A stale cursor far past the store: empty delta, no panic, and the
	// shared store is untouched.
	delta = shardLocal.Since(shardLocal.Len() + 7)
	if len(delta) != 0 {
		t.Fatalf("stale cursor produced %d entries", len(delta))
	}
	if fresh, err := shared.Absorb(delta); err != nil || len(fresh) != 0 {
		t.Fatalf("absorbing empty delta: fresh=%d err=%v", len(fresh), err)
	}
	if shared.Len() != 1 || shared.Total() != 1 {
		t.Fatalf("shared store corrupted: len=%d total=%d", shared.Len(), shared.Total())
	}
}

// TestDiffStorePersistNoOverwrite: two stores over one DiffDir — a
// second process pointed at the evidence directory of an earlier run —
// must not silently overwrite the earlier run's representative inputs.
// File names derive from each store's own discovery index, so the
// second store regenerates the first store's names; O_EXCL turns that
// into a collision resolved by suffixing.
func TestDiffStorePersistNoOverwrite(t *testing.T) {
	s := build(t, listing1Src)
	dir := t.TempDir()
	divergeA := []byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0}
	divergeB := []byte{0xff, 0xff, 0xff, 0x7f, 0x02, 0, 0, 0}

	st1 := NewDiffStore(dir)
	oA := s.Run(divergeA)
	if fresh, err := st1.Add(oA); err != nil || !fresh {
		t.Fatalf("first add: fresh=%v err=%v", fresh, err)
	}

	// A new process over the same directory: same discovery index, and
	// — because the signature is input-independent — the same file
	// name. The second outcome reuses the first's divergence shape with
	// a different representative input, the way a re-run finds the same
	// bug through a different mutant.
	st2 := NewDiffStore(dir)
	oB := *oA
	oB.Input = divergeB
	if oB.Signature() != oA.Signature() {
		t.Fatalf("signature became input-dependent (%016x vs %016x)", oA.Signature(), oB.Signature())
	}
	if fresh, err := st2.Add(&oB); err != nil || !fresh {
		t.Fatalf("second add: fresh=%v err=%v", fresh, err)
	}

	entries, err := os.ReadDir(filepath.Join(dir, "diffs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("diffs/ holds %v, want the original plus a suffixed file", names)
	}
	// The first run's evidence must be intact, byte for byte.
	base := entries[0].Name()
	got, err := os.ReadFile(filepath.Join(dir, "diffs", base))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(divergeA) {
		t.Fatalf("original evidence file %s overwritten: %q", base, got)
	}
	suffixed, err := os.ReadFile(filepath.Join(dir, "diffs", entries[1].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(suffixed) != string(divergeB) {
		t.Fatalf("suffixed file %s holds %q", entries[1].Name(), suffixed)
	}
}

// TestDiffStorePersistErrorReturned: an unexpected filesystem failure
// (here: the diffs/ path is occupied by a regular file) must surface
// to the caller, not be swallowed — the campaign layers count it.
func TestDiffStorePersistErrorReturned(t *testing.T) {
	s := build(t, listing1Src)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "diffs"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := NewDiffStore(dir)
	fresh, err := st.Add(s.Run([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0}))
	if err == nil {
		t.Fatal("persistence failure was swallowed")
	}
	if !fresh {
		t.Fatal("in-memory record must survive a persistence failure")
	}
	if st.Len() != 1 {
		t.Fatalf("store len = %d", st.Len())
	}
}

// TestTruncateRuneBoundary: truncate must never split a multi-byte
// rune that was valid in the original bytes.
func TestTruncateRuneBoundary(t *testing.T) {
	cases := []struct {
		name string
		in   string
		n    int
		want string
	}{
		{"ascii-short", "hello", 64, "hello"},
		{"ascii-cut", "hello", 3, "hel"},
		{"two-byte-clean", "héllo", 3, "hé"},
		{"two-byte-split", "héllo", 2, "h"},
		{"three-byte-split-1", "a€", 2, "a"}, // € is 3 bytes; cut after byte 1
		{"three-byte-split-2", "a€", 3, "a"}, // cut after byte 2
		{"three-byte-clean", "a€", 4, "a€"},
		{"four-byte-split", "ab\U0001F600", 5, "ab"}, // 😀 is 4 bytes
		{"four-byte-clean", "ab\U0001F600", 6, "ab\U0001F600"},
		{"empty", "", 4, ""},
		{"zero-n", "héllo", 0, ""},
	}
	for _, tc := range cases {
		got := truncate([]byte(tc.in), tc.n)
		if string(got) != tc.want {
			t.Errorf("%s: truncate(%q, %d) = %q, want %q", tc.name, tc.in, tc.n, got, tc.want)
		}
		if !utf8.Valid(got) {
			t.Errorf("%s: result %q is invalid UTF-8", tc.name, got)
		}
	}

	// Bytes that were never valid UTF-8 pass through untouched — a
	// fuzzer input is arbitrary binary and must not be "repaired".
	raw := []byte{0xff, 0xfe, 0x80, 0x81}
	if got := truncate(raw, 2); len(got) != 2 || got[0] != 0xff {
		t.Errorf("binary input mangled: %v", got)
	}
	// A lone dangling continuation run with no lead byte stays as-is.
	cont := []byte{0x80, 0x80, 0x80, 0x80}
	if got := truncate(cont, 3); len(got) != 3 {
		t.Errorf("continuation-only input mangled: %v", got)
	}
}

// TestReportTruncatesInputOnRuneBoundary drives the whole Report path
// with a MiniC program that prints non-ASCII bytes and a long
// multi-byte input whose 64-byte cut lands mid-rune.
func TestReportTruncatesInputOnRuneBoundary(t *testing.T) {
	s := build(t, `
int main() {
    int x;
    printf("caf\xc3\xa9 value=%d\n", x);
    return 0;
}
`)
	// 63 ASCII bytes, then a 3-byte € straddling the 64-byte cut.
	input := []byte(strings.Repeat("a", 63) + "€€")
	o := s.Run(input)
	if !o.Diverged {
		t.Fatal("uninitialized read should diverge")
	}
	st := NewDiffStore("")
	if _, err := st.Add(o); err != nil {
		t.Fatal(err)
	}
	rep := st.Unique()[0].Report(s.Names())
	if !utf8.ValidString(rep) {
		t.Fatalf("report is invalid UTF-8:\n%s", rep)
	}
	// The quoted input must end at the rune boundary: 63 a's, no
	// escaped partial-rune bytes.
	if strings.Contains(rep, `\xe2`) {
		t.Fatalf("report leaked a split rune:\n%s", rep)
	}
	if !strings.Contains(rep, `caf\xc3\xa9`) && !strings.Contains(rep, "café") {
		t.Logf("report for reference:\n%s", rep)
	}
}
