package core

// Tests for the compile-stage differential build path: the
// per-implementation outcome record, its helpers and signature, and
// BuildDifferential's contract — harness misuse is an error,
// implementation failure is data, and the record is positional and
// deterministic regardless of Parallelism.

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
)

const rejectSplitSrc = `
int main() {
    int d = 1 / 0;
    return d;
}
`

func iceSrc() string {
	return "int main() {\n    int x = 1;\n    int y = x" +
		strings.Repeat("+1", 60) + ";\n    return y;\n}\n"
}

func TestCompileStatusString(t *testing.T) {
	cases := map[CompileStatus]string{
		StatusAccept: "accept",
		StatusReject: "reject",
		StatusICE:    "ice",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("CompileStatus(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestBuildDifferentialNeedsTwoImpls(t *testing.T) {
	if _, _, err := BuildSourceDifferential("int main() { return 0; }",
		compiler.DefaultSet()[:1], Options{}); err == nil {
		t.Fatal("single-implementation differential built without error")
	}
}

func TestBuildSourceDifferentialFrontEndErrors(t *testing.T) {
	if _, _, err := BuildSourceDifferential("int x = ;;;", compiler.DefaultSet(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "parse") {
		t.Errorf("parse failure not reported as an error: %v", err)
	}
	if _, _, err := BuildSourceDifferential("int main() { return undeclared; }",
		compiler.DefaultSet(), Options{}); err == nil || !strings.Contains(err.Error(), "check") {
		t.Errorf("sema failure not reported as an error: %v", err)
	}
}

func TestBuildDifferentialAllAccept(t *testing.T) {
	suite, co, err := BuildSourceDifferential("int main() { printf(\"ok\\n\"); return 0; }",
		compiler.DefaultSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite == nil {
		t.Fatal("universally-accepted program produced no suite")
	}
	if !co.AllAccepted() || co.AllRejected() || co.AnyICE() {
		t.Errorf("outcome helpers wrong for all-accept: %+v", co)
	}
	if len(co.Impls) != len(compiler.DefaultSet()) {
		t.Errorf("%d impl records for %d configurations", len(co.Impls), len(compiler.DefaultSet()))
	}
	// The suite is live: the program runs and does not diverge.
	if o := suite.Run(nil); o.Diverged {
		t.Error("stable program diverged at run time")
	}
}

func TestBuildDifferentialRejectSplit(t *testing.T) {
	suite, co, err := BuildSourceDifferential(rejectSplitSrc, compiler.DefaultSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite != nil {
		t.Fatal("partially-rejected program still produced a suite")
	}
	if co.AllAccepted() || co.AllRejected() || co.AnyICE() {
		t.Errorf("outcome helpers wrong for the reject split: %+v", co)
	}
	var accepts, rejects int
	for i, im := range co.Impls {
		if im.Name != compiler.DefaultSet()[i].Name() {
			t.Errorf("impl %d recorded as %q, want %q (positional order)", i, im.Name, compiler.DefaultSet()[i].Name())
		}
		switch im.Status {
		case StatusAccept:
			accepts++
			if im.Error != "" {
				t.Errorf("%s accepted with an error: %q", im.Name, im.Error)
			}
		case StatusReject:
			rejects++
			if im.Error == "" {
				t.Errorf("%s rejected without an error", im.Name)
			}
		default:
			t.Errorf("%s unexpectedly ICEd", im.Name)
		}
	}
	if accepts == 0 || rejects == 0 {
		t.Errorf("want a genuine split, got %d accepts / %d rejects", accepts, rejects)
	}
}

func TestBuildDifferentialICERecord(t *testing.T) {
	suite, co, err := BuildSourceDifferential(iceSrc(), compiler.DefaultSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite != nil {
		t.Fatal("ICE program still produced a suite")
	}
	if !co.AnyICE() {
		t.Fatalf("no ICE recorded: %+v", co)
	}
	for _, im := range co.Impls {
		if im.Status == StatusICE {
			if im.ICE == "" || im.Error == "" {
				t.Errorf("%s ICE record incomplete: %+v", im.Name, im)
			}
		} else if im.ICE != "" {
			t.Errorf("%s carries an ICE text without the status", im.Name)
		}
	}
}

// TestBuildDifferentialParallelDeterminism: the record — order, texts,
// signature — is identical whether implementations compile serially or
// concurrently.
func TestBuildDifferentialParallelDeterminism(t *testing.T) {
	for _, src := range []string{rejectSplitSrc, iceSrc(), "int main() { return 0; }"} {
		_, seq, err := BuildSourceDifferential(src, compiler.DefaultSet(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, par, err := BuildSourceDifferential(src, compiler.DefaultSet(), Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Signature() != par.Signature() {
			t.Errorf("signature differs across parallelism: %016x vs %016x", seq.Signature(), par.Signature())
		}
		for i := range seq.Impls {
			a, b := seq.Impls[i], par.Impls[i]
			if a.Name != b.Name || a.Status != b.Status || a.Error != b.Error || a.ICE != b.ICE {
				t.Errorf("impl %d differs across parallelism:\n%+v\n%+v", i, a, b)
			}
		}
	}
}

// TestCompileSignatureDistinguishesRawTexts: the signature is the
// raw-record identity, finer than the triage fingerprint — shifting a
// diagnostic's line number changes it.
func TestCompileSignatureDistinguishesRawTexts(t *testing.T) {
	a := &CompileOutcome{Impls: []ImplCompile{{Name: "x", Status: StatusReject,
		Error: "<source>:3: error: no", Diags: []string{"<source>:3: error: no"}}}}
	b := &CompileOutcome{Impls: []ImplCompile{{Name: "x", Status: StatusReject,
		Error: "<source>:4: error: no", Diags: []string{"<source>:4: error: no"}}}}
	if a.Signature() == b.Signature() {
		t.Error("line-shifted records share a signature")
	}
	if a.Signature() != a.Signature() {
		t.Error("signature is not deterministic")
	}
}
