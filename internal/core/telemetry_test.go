package core

// Suite-level telemetry: classification, latency recording, the RQ6
// re-run interaction with pooled machines, and budget-growth overflow.

import (
	"math"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/telemetry"
)

// delayLoopSrc pads a loop body with dead loads that DeadLoadElim
// drops at -O1+: the -O0 binaries take ~1.4M steps, everything else
// ~240k. With a base budget between the two, only the -O0 binaries
// time out and the RQ6 policy re-runs them with grown budgets.
const delayLoopSrc = `
int main() {
    int x = 1;
    for (int i = 0; i < 20000; i++) {
        x; x; x; x; x; x; x; x; x; x;
        x; x; x; x; x; x; x; x; x; x;
    }
    printf("done\n");
    return 0;
}
`

// delayLoopLimit sits between the -O1+ step count and the -O0 one, so
// exactly the two -O0 implementations hang initially; the first grown
// budget (4x) is enough for them to finish.
const delayLoopLimit = 400_000

func TestSuiteMetricsClassifyAndCount(t *testing.T) {
	m := telemetry.NewSuiteMetrics(namesOf(compiler.DefaultSet()))
	s, err := BuildSource(listing1Src, compiler.DefaultSet(), Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	s.Run([]byte{1, 0, 0, 0, 2, 0, 0, 0})                // benign
	s.Run([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0}) // diverges
	for i, sum := range m.Summaries() {
		if sum.Runs() != 2 {
			t.Fatalf("impl %d (%s): %d runs recorded, want 2", i, sum.Name, sum.Runs())
		}
		if sum.Outcomes[telemetry.ClassOK] != 2 {
			t.Fatalf("impl %d: outcomes = %v, want all ok", i, sum.Outcomes)
		}
		if sum.Latency.Count != 2 || sum.Latency.Sum <= 0 {
			t.Fatalf("impl %d: latency count=%d sum=%d", i, sum.Latency.Count, sum.Latency.Sum)
		}
	}
}

func TestSuiteMetricsCountStepLimitHangs(t *testing.T) {
	m := telemetry.NewSuiteMetrics(namesOf(compiler.DefaultSet()))
	s, err := BuildSource(delayLoopSrc, compiler.DefaultSet(), Options{StepLimit: delayLoopLimit, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Run(nil)
	if o.Diverged {
		t.Fatal("timeout-induced false positive")
	}
	if o.TimeoutSuspect {
		t.Fatal("re-runs should have cleared the timeouts")
	}
	var hangs, total int64
	for _, sum := range m.Summaries() {
		hangs += sum.Outcomes[telemetry.ClassStepLimitHang]
		total += sum.Runs()
	}
	if hangs == 0 {
		t.Fatal("partial timeout left no step-limit-hang classifications")
	}
	// Re-runs are recorded too: the -O0 binaries ran more than once.
	if total <= int64(len(s.Impls)) {
		t.Fatalf("total recorded runs %d do not include re-runs", total)
	}
}

// TestRQ6RerunDoesNotLeakBudgetIntoPooledMachines runs a short-limit
// partial-timeout input (re-runs get 4x the budget) and then the same
// input again on the same pooled machines. If the grown budget leaked,
// the second run's initial attempts would not time out and the hang
// count would stop doubling.
func TestRQ6RerunDoesNotLeakBudgetIntoPooledMachines(t *testing.T) {
	m := telemetry.NewSuiteMetrics(namesOf(compiler.DefaultSet()))
	s, err := BuildSource(delayLoopSrc, compiler.DefaultSet(), Options{StepLimit: delayLoopLimit, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	hangsAfter := func() int64 {
		var h int64
		for _, sum := range m.Summaries() {
			h += sum.Outcomes[telemetry.ClassStepLimitHang]
		}
		return h
	}
	s.Run(nil)
	h1 := hangsAfter()
	if h1 == 0 {
		t.Fatal("first run produced no hangs; the leak check is vacuous")
	}
	s.Run(nil)
	if h2 := hangsAfter(); h2 != 2*h1 {
		t.Fatalf("second run on warm machines: hangs %d -> %d, want exact doubling (budget leak?)", h1, h2)
	}
	// The same holds with the parallel worker pool over its free lists.
	mp := telemetry.NewSuiteMetrics(namesOf(compiler.DefaultSet()))
	sp, err := BuildSource(delayLoopSrc, compiler.DefaultSet(),
		Options{StepLimit: delayLoopLimit, Parallelism: 4, Metrics: mp})
	if err != nil {
		t.Fatal(err)
	}
	sp.Warm(4)
	sp.Run(nil)
	sp.Run(nil)
	var hp int64
	for _, sum := range mp.Summaries() {
		hp += sum.Outcomes[telemetry.ClassStepLimitHang]
	}
	if hp != 2*h1 {
		t.Fatalf("parallel runs recorded %d hangs, want %d", hp, 2*h1)
	}
}

func TestGrowBudgetSaturatesOnOverflow(t *testing.T) {
	cases := []struct {
		base    int64
		retries int
		want    int64
	}{
		{4_000_000, 1, 16_000_000},
		{4_000_000, 3, 256_000_000},
		{math.MaxInt64 / 4, 1, math.MaxInt64 - 3}, // largest 4x that still fits
		{math.MaxInt64 / 2, 1, math.MaxInt64},     // shifts into the sign bit
		{math.MaxInt64 / 2, 3, math.MaxInt64},     // clean overflow
		{1 << 60, 2, math.MaxInt64},
	}
	for _, tc := range cases {
		if got := growBudget(tc.base, tc.retries); got != tc.want {
			t.Errorf("growBudget(%d, %d) = %d, want %d", tc.base, tc.retries, got, tc.want)
		}
		if got := growBudget(tc.base, tc.retries); got <= 0 {
			t.Errorf("growBudget(%d, %d) = %d is not positive", tc.base, tc.retries, got)
		}
	}
}

func namesOf(cfgs []compiler.Config) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name()
	}
	return out
}
