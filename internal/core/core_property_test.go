package core

import (
	"testing"
	"testing/quick"

	"compdiff/internal/progen"
)

// Property tests on the core data structures and invariants.

func TestQuickNormalizerIdempotent(t *testing.T) {
	n := DefaultNormalizer()
	f := func(data []byte) bool {
		once := n.Apply(data)
		twice := n.Apply(once)
		return string(once) == string(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizerPreservesCleanText(t *testing.T) {
	n := DefaultNormalizer()
	f := func(words []string) bool {
		// ASCII words without digits or 'x' cannot match either rule.
		clean := ""
		for _, w := range words {
			for _, c := range w {
				if c >= 'a' && c <= 'w' {
					clean += string(c)
				}
			}
			clean += " "
		}
		return string(n.Apply([]byte(clean))) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// DiffStore invariants: Total >= len(Unique); adding the same outcome
// twice never creates two entries; counts accumulate.
func TestQuickDiffStoreInvariants(t *testing.T) {
	s := build(t, `
int main() {
    char b[4];
    long n = read_input(b, 4L);
    int x;
    if (n > 0 && b[0] > 64) { printf("%d\n", x); } else { printf("low\n"); }
    return 0;
}`)
	st := NewDiffStore("")
	f := func(b0 byte) bool {
		o := s.Run([]byte{b0})
		st.Add(o)
		if st.Total() < len(st.Unique()) {
			return false
		}
		sum := 0
		for _, d := range st.Unique() {
			sum += d.Count
		}
		return sum == st.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Signature stability: the signature depends only on the partition
// shape, so running the same input twice gives the same signature.
func TestQuickSignatureDeterministic(t *testing.T) {
	s := build(t, `
int main() {
    int x;
    printf("%d\n", x);
    return 0;
}`)
	f := func(seed byte) bool {
		in := []byte{seed}
		a := s.Run(in)
		b := s.Run(in)
		if a.Diverged != b.Diverged {
			return false
		}
		if !a.Diverged {
			return true
		}
		return a.Signature() == b.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Outcome invariant: Diverged iff the hash set has >= 2 members.
func TestQuickDivergedMatchesGroups(t *testing.T) {
	s := build(t, progen.Generate(3).Src)
	f := func(data []byte) bool {
		o := s.Run(data)
		return o.Diverged == (len(o.Groups()) > 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
