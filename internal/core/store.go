package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// DiffStore collects bug-triggering inputs, the analog of the "diffs/"
// directory CompDiff-AFL++ writes. Inputs are deduplicated by triage
// signature: many inputs trigger the same discrepancy, and manual
// diagnosis starts from one representative per signature (§3.2).
type DiffStore struct {
	dir      string // optional persistence directory; "" keeps all in memory
	bySig    map[uint64]*StoredDiff
	sigOrder []uint64
	total    int
}

// StoredDiff is one unique discrepancy with a representative input.
type StoredDiff struct {
	Signature uint64
	Outcome   *Outcome
	Count     int // inputs seen with this signature
}

// NewDiffStore creates a store. If dir is non-empty, representative
// inputs are also written to <dir>/diffs/.
func NewDiffStore(dir string) *DiffStore {
	return &DiffStore{dir: dir, bySig: map[uint64]*StoredDiff{}}
}

// Add records a diverging outcome. It returns true when the signature
// was new (a fresh unique discrepancy).
func (st *DiffStore) Add(o *Outcome) (bool, error) {
	if !o.Diverged {
		return false, nil
	}
	st.total++
	sig := o.Signature()
	if d, ok := st.bySig[sig]; ok {
		d.Count++
		return false, nil
	}
	st.bySig[sig] = &StoredDiff{Signature: sig, Outcome: o, Count: 1}
	st.sigOrder = append(st.sigOrder, sig)
	if st.dir != "" {
		dir := filepath.Join(st.dir, "diffs")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return true, err
		}
		name := filepath.Join(dir, fmt.Sprintf("id_%06d_sig_%016x", len(st.sigOrder), sig))
		if err := os.WriteFile(name, o.Input, 0o644); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Unique returns the stored discrepancies in discovery order.
func (st *DiffStore) Unique() []*StoredDiff {
	out := make([]*StoredDiff, 0, len(st.sigOrder))
	for _, sig := range st.sigOrder {
		out = append(out, st.bySig[sig])
	}
	return out
}

// Total is the number of diverging inputs seen (before deduplication).
func (st *DiffStore) Total() int { return st.total }

// Report renders a human-readable bug report for one discrepancy,
// with the three ingredients the paper's reports carry: the input, the
// compiler configurations that reproduce it, and the divergent
// outputs.
func (d *StoredDiff) Report(names []string) string {
	o := d.Outcome
	groups := o.Groups()
	type grp struct {
		impls []int
		out   string
	}
	var gs []grp
	for h, idxs := range groups {
		_ = h
		sort.Ints(idxs)
		gs = append(gs, grp{impls: idxs, out: string(o.Results[idxs[0]].Encode())})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].impls[0] < gs[j].impls[0] })

	s := fmt.Sprintf("discrepancy signature %016x (seen on %d inputs)\n", d.Signature, d.Count)
	s += fmt.Sprintf("test input (%d bytes): %q\n", len(o.Input), truncate(o.Input, 64))
	for _, g := range gs {
		s += "reproducers:"
		for _, i := range g.impls {
			s += " [" + names[i] + "]"
		}
		s += "\noutput:\n" + indent(g.out) + "\n"
	}
	return s
}

func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[:n]
}

func indent(s string) string {
	out := "    "
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += "    "
		}
	}
	return out
}
