package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"unicode/utf8"
)

// DiffStore collects bug-triggering inputs, the analog of the "diffs/"
// directory CompDiff-AFL++ writes. Inputs are deduplicated by triage
// signature: many inputs trigger the same discrepancy, and manual
// diagnosis starts from one representative per signature (§3.2).
//
// All methods are safe for concurrent use: a sharded campaign merges
// shard-local stores into one shared store at synchronization
// barriers, and parallel suite runs may feed one store directly.
type DiffStore struct {
	dir string // optional persistence directory; "" keeps all in memory

	mu       sync.Mutex
	bySig    map[uint64]*StoredDiff
	sigOrder []uint64
	total    int
}

// StoredDiff is one unique discrepancy with a representative input.
type StoredDiff struct {
	Signature uint64
	Outcome   *Outcome
	Count     int // inputs seen with this signature
}

// NewDiffStore creates a store. If dir is non-empty, representative
// inputs are also written to <dir>/diffs/.
func NewDiffStore(dir string) *DiffStore {
	return &DiffStore{dir: dir, bySig: map[uint64]*StoredDiff{}}
}

// Add records a diverging outcome. It returns true when the signature
// was new (a fresh unique discrepancy).
func (st *DiffStore) Add(o *Outcome) (bool, error) {
	if !o.Diverged {
		return false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addLocked(o, 1)
}

func (st *DiffStore) addLocked(o *Outcome, count int) (bool, error) {
	st.total += count
	sig := o.Signature()
	if d, ok := st.bySig[sig]; ok {
		d.Count += count
		return false, nil
	}
	st.bySig[sig] = &StoredDiff{Signature: sig, Outcome: o, Count: count}
	st.sigOrder = append(st.sigOrder, sig)
	if st.dir != "" {
		if err := st.persistLocked(o.Input, sig); err != nil {
			return true, err
		}
	}
	return true, nil
}

// persistLocked writes a representative input to <dir>/diffs/. File
// names are derived from this store's discovery index, so a new
// process pointed at an existing DiffDir would regenerate names an
// earlier run already used; O_EXCL turns that silent overwrite into a
// detectable collision, which we resolve by suffixing a run-local
// retry counter (the previous run's representative stays intact). A
// collision on every candidate name skips persistence for this entry
// rather than destroying older evidence.
func (st *DiffStore) persistLocked(input []byte, sig uint64) error {
	dir := filepath.Join(st.dir, "diffs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := fmt.Sprintf("id_%06d_sig_%016x", len(st.sigOrder), sig)
	for try := 0; try <= 8; try++ {
		name := base
		if try > 0 {
			name = fmt.Sprintf("%s_r%d", base, try)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if errors.Is(err, fs.ErrExist) {
			continue
		}
		if err != nil {
			return err
		}
		if _, err := f.Write(input); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// Absorb merges stored discrepancies (typically a shard-local store's
// delta) into st, summing counts for known signatures. It returns the
// entries whose signatures were new to st. The first persistence
// error is reported; the in-memory merge always completes.
func (st *DiffStore) Absorb(diffs []*StoredDiff) ([]*StoredDiff, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var fresh []*StoredDiff
	var firstErr error
	for _, d := range diffs {
		isNew, err := st.addLocked(d.Outcome, d.Count)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if isNew {
			fresh = append(fresh, st.bySig[d.Signature])
		}
	}
	return fresh, firstErr
}

// Since returns the stored discrepancies from discovery index `from`
// on — the delta a synchronization barrier hands to Absorb.
func (st *DiffStore) Since(from int) []*StoredDiff {
	st.mu.Lock()
	defer st.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(st.sigOrder) {
		from = len(st.sigOrder)
	}
	out := make([]*StoredDiff, 0, len(st.sigOrder)-from)
	for _, sig := range st.sigOrder[from:] {
		out = append(out, st.bySig[sig])
	}
	return out
}

// Counts snapshots the per-signature input counts.
func (st *DiffStore) Counts() map[uint64]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[uint64]int, len(st.bySig))
	for sig, d := range st.bySig {
		out[sig] = d.Count
	}
	return out
}

// Recount overwrites per-signature counts and the pre-dedup total
// with authoritative values. The sharded campaign pool calls it at
// every barrier so the shared store's counts equal the sum over the
// shard-local stores, independent of merge interleaving.
func (st *DiffStore) Recount(counts map[uint64]int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := 0
	for _, c := range counts {
		total += c
	}
	st.total = total
	for sig, d := range st.bySig {
		if c, ok := counts[sig]; ok {
			d.Count = c
		}
	}
}

// Unique returns the stored discrepancies in discovery order.
func (st *DiffStore) Unique() []*StoredDiff {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*StoredDiff, 0, len(st.sigOrder))
	for _, sig := range st.sigOrder {
		out = append(out, st.bySig[sig])
	}
	return out
}

// Len is the number of unique discrepancies stored.
func (st *DiffStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sigOrder)
}

// Total is the number of diverging inputs seen (before deduplication).
func (st *DiffStore) Total() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// RestoreDiffStore rebuilds a store from checkpointed entries without
// re-persisting them (the inputs already live on disk from the run
// that wrote the checkpoint). Entries keep their discovery order;
// entries may carry nil Outcomes when the checkpoint stored only a
// skeleton (shard-local stores), which keeps dedup and recount
// behavior exact while shedding the input bytes.
func RestoreDiffStore(dir string, diffs []*StoredDiff, total int) *DiffStore {
	st := NewDiffStore(dir)
	for _, d := range diffs {
		cp := *d
		st.bySig[cp.Signature] = &cp
		st.sigOrder = append(st.sigOrder, cp.Signature)
	}
	st.total = total
	return st
}

// Report renders a human-readable bug report for one discrepancy,
// with the three ingredients the paper's reports carry: the input, the
// compiler configurations that reproduce it, and the divergent
// outputs.
func (d *StoredDiff) Report(names []string) string {
	o := d.Outcome
	groups := o.Groups()
	type grp struct {
		impls []int
		out   string
	}
	var gs []grp
	for h, idxs := range groups {
		_ = h
		sort.Ints(idxs)
		gs = append(gs, grp{impls: idxs, out: string(o.Results[idxs[0]].Encode())})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].impls[0] < gs[j].impls[0] })

	s := fmt.Sprintf("discrepancy signature %016x (seen on %d inputs)\n", d.Signature, d.Count)
	s += fmt.Sprintf("test input (%d bytes): %q\n", len(o.Input), truncate(o.Input, 64))
	for _, g := range gs {
		s += "reproducers:"
		for _, i := range g.impls {
			s += " [" + names[i] + "]"
		}
		s += "\noutput:\n" + indent(g.out) + "\n"
	}
	return s
}

// truncate cuts b to at most n bytes without splitting a multi-byte
// rune: a cut that lands mid-rune backs up to the rune boundary, so
// truncated report text stays valid UTF-8. Bytes that were already
// invalid UTF-8 in b are kept as-is.
func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	// Walk back over up to utf8.UTFMax-1 continuation bytes; if they
	// are the prefix of a rune that is valid (and complete) in the
	// original b but extends past n, drop the partial rune.
	for back := 1; back < utf8.UTFMax && back <= n; back++ {
		c := b[n-back]
		if c < 0x80 {
			break // ASCII: the cut is clean
		}
		if c >= 0xC0 { // leading byte of a multi-byte sequence
			if r, size := utf8.DecodeRune(b[n-back:]); r != utf8.RuneError && size > back {
				return b[:n-back]
			}
			break
		}
		// 0x80..0xBF: continuation byte, keep backing up.
	}
	return b[:n]
}

func indent(s string) string {
	out := "    "
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += "    "
		}
	}
	return out
}
