package core

import (
	"fmt"

	"compdiff/internal/vm"
)

// Fault localization (paper §5, "Fault localization and bug report").
// The paper leaves trace alignment as future work but observes that
// CompDiff is well placed for it: all binaries come from the *same
// source*, so executed source-line sequences are directly comparable.
// Localize re-runs a diverging input on two disagreeing
// implementations with line tracing enabled and reports the first
// point where their control flow separates — usually the statement
// whose UB the optimizer exploited.

// Localization is a trace-diff result for one discrepancy.
type Localization struct {
	ImplA, ImplB string

	// Line is the last source line the two executions agree on before
	// control flow separates: the prime suspect for the unstable
	// construct.
	Line int32

	// NextA and NextB are the first differing lines on each side
	// (0 when that execution ended there).
	NextA, NextB int32

	// TracesEqual is set when both executions follow the same line
	// sequence and only the *values* differ (data-only divergence,
	// e.g. uninitialized reads): line-level localization cannot
	// separate them further.
	TracesEqual bool
}

// String renders the localization like a little report.
func (l *Localization) String() string {
	if l.TracesEqual {
		return fmt.Sprintf("control flow identical under %s and %s: data-only divergence (inspect values printed near the end of the trace)", l.ImplA, l.ImplB)
	}
	return fmt.Sprintf("executions agree up to line %d, then %s continues at line %d while %s continues at line %d",
		l.Line, l.ImplA, l.NextA, l.ImplB, l.NextB)
}

// Localize re-executes the outcome's input under two implementations
// that disagreed and diffs their line traces. It returns an error if
// the outcome did not diverge.
func (s *Suite) Localize(o *Outcome) (*Localization, error) {
	if !o.Diverged {
		return nil, fmt.Errorf("compdiff: cannot localize a non-diverging outcome")
	}
	// Pick one representative from the two largest output groups.
	groups := o.Groups()
	var bestA, bestB []int
	for _, idxs := range groups {
		if len(idxs) > len(bestA) {
			bestA, bestB = idxs, bestA
		} else if len(idxs) > len(bestB) {
			bestB = idxs
		}
	}
	ia, ib := bestA[0], bestB[0]

	ma := vm.New(s.Impls[ia].Prog, vm.Options{StepLimit: s.opts.StepLimit, TraceLines: true})
	mb := vm.New(s.Impls[ib].Prog, vm.Options{StepLimit: s.opts.StepLimit, TraceLines: true})
	ra := ma.Run(o.Input)
	rb := mb.Run(o.Input)

	loc := &Localization{ImplA: s.Impls[ia].Name(), ImplB: s.Impls[ib].Name()}
	ta, tb := ra.Trace, rb.Trace
	n := len(ta)
	if len(tb) < n {
		n = len(tb)
	}
	for i := 0; i < n; i++ {
		if ta[i] != tb[i] {
			if i > 0 {
				loc.Line = ta[i-1]
			}
			loc.NextA, loc.NextB = ta[i], tb[i]
			return loc, nil
		}
	}
	if len(ta) != len(tb) {
		// One execution is a prefix of the other (an early crash or
		// return): diverges right after the last common line.
		if n > 0 {
			loc.Line = ta[n-1]
		}
		if len(ta) > n {
			loc.NextA = ta[n]
		}
		if len(tb) > n {
			loc.NextB = tb[n]
		}
		return loc, nil
	}
	loc.TracesEqual = true
	if n > 0 {
		loc.Line = ta[n-1]
	}
	return loc, nil
}
