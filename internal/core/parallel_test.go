package core

import (
	"sync"
	"testing"

	"compdiff/internal/compiler"
)

// A program with unstable constructs (uninitialized read + signed
// overflow in a bounds check) whose behavior depends only on the
// input bytes — never on the wall clock — so every run is
// reproducible.
const parSrc = `
int check(int offset, int len) {
    if (offset + len < offset) { return -1; }
    return offset + len;
}
int main() {
    char buf[8];
    int x;
    long n = read_input(buf, 8L);
    if (n < 8) { printf("uninit %d\n", x); return 0; }
    int offset = 0;
    int len = 0;
    memcpy((char*)&offset, buf, 4L);
    memcpy((char*)&len, buf + 4, 4L);
    printf("%d\n", check(offset & 2147483647, len & 2147483647));
    return 0;
}
`

func parInputs() [][]byte {
	return [][]byte{
		nil,
		[]byte("short"),
		{0x9b, 0xff, 0xff, 0x7f, 0x65, 0, 0, 0},
		{1, 0, 0, 0, 2, 0, 0, 0},
		{0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f},
	}
}

func buildParSuite(t testing.TB, parallelism int) *Suite {
	t.Helper()
	s, err := BuildSource(parSrc, compiler.DefaultSet(), Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameOutcome(t *testing.T, want, got *Outcome, label string) {
	t.Helper()
	if want.Diverged != got.Diverged {
		t.Errorf("%s: Diverged = %v, want %v", label, got.Diverged, want.Diverged)
	}
	if want.TimeoutSuspect != got.TimeoutSuspect {
		t.Errorf("%s: TimeoutSuspect = %v, want %v", label, got.TimeoutSuspect, want.TimeoutSuspect)
	}
	if len(want.Hashes) != len(got.Hashes) {
		t.Fatalf("%s: %d hashes, want %d", label, len(got.Hashes), len(want.Hashes))
	}
	for i := range want.Hashes {
		if want.Hashes[i] != got.Hashes[i] {
			t.Errorf("%s: hash[%d] = %016x, want %016x", label, i, got.Hashes[i], want.Hashes[i])
		}
	}
	if want.Diverged && want.Signature() != got.Signature() {
		t.Errorf("%s: signature = %016x, want %016x", label, got.Signature(), want.Signature())
	}
}

// TestRunParallelMatchesSequential: Parallelism must not change any
// observable of an outcome — results are positional, hashes and
// signatures byte-identical.
func TestRunParallelMatchesSequential(t *testing.T) {
	seq := buildParSuite(t, 1)
	for _, p := range []int{2, 4, 16} {
		par := buildParSuite(t, p)
		for _, in := range parInputs() {
			sameOutcome(t, seq.Run(in), par.Run(in), "parallel run")
		}
	}
}

// TestSuiteRunConcurrent hammers one Suite from many goroutines and
// checks every outcome against the sequential reference: the
// machine free lists must fully isolate concurrent runs.
func TestSuiteRunConcurrent(t *testing.T) {
	ref := buildParSuite(t, 1)
	inputs := parInputs()
	want := make([]*Outcome, len(inputs))
	for i, in := range inputs {
		want[i] = ref.Run(in)
	}

	for _, p := range []int{1, 3} {
		shared := buildParSuite(t, p)
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for round := 0; round < 4; round++ {
					i := (g + round) % len(inputs)
					o := shared.Run(inputs[i])
					for j := range o.Hashes {
						if o.Hashes[j] != want[i].Hashes[j] {
							errs <- "hash mismatch under concurrent Suite.Run"
							return
						}
					}
					if o.Diverged != want[i].Diverged {
						errs <- "verdict mismatch under concurrent Suite.Run"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// TestRunParallelTimeoutPolicy: the RQ6 partial-timeout re-runs must
// behave identically on the parallel path.
func TestRunParallelTimeoutPolicy(t *testing.T) {
	src := `
int main() {
    char b[1];
    if (read_input(b, 1L) < 1) { return 0; }
    if (b[0] == 'x') {
        long i = 0;
        long n = 0;
        for (i = 0; i < 100000000L; i = i + 1) { n = n + i; }
        printf("%ld\n", n);
    }
    printf("done\n");
    return 0;
}
`
	mk := func(p int) *Suite {
		s, err := BuildSource(src, compiler.DefaultSet(), Options{
			StepLimit:         2000,
			MaxTimeoutRetries: 2,
			Parallelism:       p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq, par := mk(1), mk(4)
	for _, in := range [][]byte{[]byte("x"), []byte("y")} {
		sameOutcome(t, seq.Run(in), par.Run(in), "timeout policy")
	}
}

// TestWarm pre-populates free lists so parallel workers never build
// machines on the hot path.
func TestWarm(t *testing.T) {
	s := buildParSuite(t, 4)
	s.Warm(4)
	for _, im := range s.Impls {
		im.mu.Lock()
		n := len(im.free)
		im.mu.Unlock()
		if n < 4 {
			t.Fatalf("impl %s: %d warm machines, want >= 4", im.Name(), n)
		}
	}
	sameOutcome(t, buildParSuite(t, 1).Run(nil), s.Run(nil), "warmed suite")
}
