package core

import (
	"strings"
	"testing"
	"testing/quick"

	"compdiff/internal/compiler"
	"compdiff/internal/vm"
)

func build(t *testing.T, src string) *Suite {
	t.Helper()
	s, err := BuildSource(src, compiler.DefaultSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const stableSrc = `
int main() {
    char buf[32];
    long n = read_input(buf, 31L);
    buf[n] = '\0';
    int sum = 0;
    for (long i = 0; i < n; i++) { sum += buf[i]; }
    printf("%s:%d\n", buf, sum);
    return 0;
}
`

const listing1Src = `
int dump_data(int offset, int len, int size) {
    if (offset + len > size || offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    return offset;
}
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 8) { return 0; }
    int offset = 0;
    int len = 0;
    memcpy((char*)&offset, buf, 4L);
    memcpy((char*)&len, buf + 4, 4L);
    int r = dump_data(offset, len, 1000);
    printf("r=%d\n", r);
    return 0;
}
`

func TestSuiteBuildsTenImplementations(t *testing.T) {
	s := build(t, stableSrc)
	if len(s.Impls) != 10 {
		t.Fatalf("impls = %d", len(s.Impls))
	}
	names := strings.Join(s.Names(), ",")
	for _, want := range []string{"gcc -O0", "gcc -Os", "clang -O0", "clang -O3"} {
		if !strings.Contains(names, want) {
			t.Errorf("missing %q in %s", want, names)
		}
	}
}

func TestStableProgramNoDivergence(t *testing.T) {
	s := build(t, stableSrc)
	for _, in := range [][]byte{nil, []byte("x"), []byte("hello world")} {
		o := s.Run(in)
		if o.Diverged {
			t.Fatalf("false positive on input %q", in)
		}
		if len(o.Groups()) != 1 {
			t.Fatal("groups inconsistent with Diverged")
		}
	}
}

func TestListing1Divergence(t *testing.T) {
	s := build(t, listing1Src)
	// Benign input: no divergence.
	benign := []byte{1, 0, 0, 0, 2, 0, 0, 0}
	if o := s.Run(benign); o.Diverged {
		t.Fatal("false positive on benign input")
	}
	// Overflowing offset+len: the second guard is unstable.
	evil := []byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0x00, 0x00, 0x00} // INT_MAX, 1
	o := s.Run(evil)
	if !o.Diverged {
		t.Fatal("expected divergence on overflow-triggering input")
	}
	if len(o.Groups()) < 2 {
		t.Fatal("expected at least 2 output groups")
	}
}

func TestRunAllFiltersDivergences(t *testing.T) {
	s := build(t, listing1Src)
	inputs := [][]byte{
		{1, 0, 0, 0, 2, 0, 0, 0},
		{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0},
		nil,
	}
	diffs := s.RunAll(inputs)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %d, want 1", len(diffs))
	}
}

func TestSignatureStableAcrossSameBug(t *testing.T) {
	s := build(t, listing1Src)
	o1 := s.Run([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0})
	o2 := s.Run([]byte{0xfe, 0xff, 0xff, 0x7f, 0x02, 0, 0, 0})
	if !o1.Diverged || !o2.Diverged {
		t.Fatal("both inputs should diverge")
	}
	if o1.Signature() != o2.Signature() {
		t.Fatal("same bug should triage to the same signature")
	}
}

func TestDiffStoreDedup(t *testing.T) {
	s := build(t, listing1Src)
	st := NewDiffStore(t.TempDir())
	in1 := []byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0}
	in2 := []byte{0xfe, 0xff, 0xff, 0x7f, 0x02, 0, 0, 0}
	fresh1, err := st.Add(s.Run(in1))
	if err != nil || !fresh1 {
		t.Fatalf("first add: fresh=%v err=%v", fresh1, err)
	}
	fresh2, err := st.Add(s.Run(in2))
	if err != nil || fresh2 {
		t.Fatalf("second add should dedup: fresh=%v err=%v", fresh2, err)
	}
	if st.Total() != 2 || len(st.Unique()) != 1 {
		t.Fatalf("total=%d unique=%d", st.Total(), len(st.Unique()))
	}
	rep := st.Unique()[0].Report(s.Names())
	for _, want := range []string{"discrepancy signature", "reproducers:", "gcc", "clang"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNonDivergingOutcomeNotStored(t *testing.T) {
	s := build(t, stableSrc)
	st := NewDiffStore("")
	fresh, err := st.Add(s.Run([]byte("ok")))
	if err != nil || fresh || st.Total() != 0 {
		t.Fatalf("fresh=%v err=%v total=%d", fresh, err, st.Total())
	}
}

// ---------------------------------------------------------------------------
// Timeout policy (RQ6)

func TestPartialTimeoutRerunPolicy(t *testing.T) {
	// DeadLoadElim removes the dead loads padding the loop body at
	// -O1+; -O0 binaries execute them all. With a base budget between
	// the two step counts only the -O0 binaries time out, but the
	// re-run policy must extend their budget until outputs are
	// comparable: no divergence, no lingering timeout suspicion.
	src := `
int main() {
    int x = 1;
    for (int i = 0; i < 20000; i++) {
        x; x; x; x; x; x; x; x; x; x;
        x; x; x; x; x; x; x; x; x; x;
    }
    printf("done\n");
    return 0;
}
`
	s, err := BuildSource(src, compiler.DefaultSet(), Options{StepLimit: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Run(nil)
	if o.Diverged {
		t.Fatalf("timeout-induced false positive; suspect=%v", o.TimeoutSuspect)
	}
	if o.TimeoutSuspect {
		t.Fatal("re-runs should have cleared the timeouts")
	}
	// The timeout really was partial: the -O0 results finished past the
	// base budget (proof they were re-run with a grown one) while the
	// optimized binaries fit comfortably inside it.
	var rerun, within int
	for _, r := range o.Results {
		if r.Steps > 400_000 {
			rerun++
		} else {
			within++
		}
	}
	if rerun == 0 || within == 0 {
		t.Fatalf("want a partial timeout, got %d re-run / %d within budget", rerun, within)
	}
}

func TestGenuineInfiniteLoopFlagged(t *testing.T) {
	// One implementation family hangs forever (a loop guarded by an
	// unstable overflow check); the suspect flag must be set.
	src := `
int main() {
    long spin = 0;
    while (1) { spin++; if (spin < 0L) { break; } }
    printf("%ld\n", spin);
    return 0;
}
`
	s, err := BuildSource(src, compiler.DefaultSet(), Options{StepLimit: 50_000, MaxTimeoutRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Run(nil)
	if !o.TimeoutSuspect {
		t.Fatal("expected TimeoutSuspect")
	}
}

// ---------------------------------------------------------------------------
// Normalization (RQ5)

func TestNormalizerFiltersTimestamps(t *testing.T) {
	src := `
int main() {
    long ts = time_now();
    printf("%d%d:%d%d:%d%d.%d%d%d%d%d%d [Epan WARNING]\n",
        (int)(ts % 2L), 1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 6);
    printf("payload ok\n");
    return 0;
}
`
	plain, err := BuildSource(src, compiler.DefaultSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o := plain.Run(nil); !o.Diverged {
		t.Fatal("timestamps should diverge without normalization")
	}
	norm, err := BuildSource(src, compiler.DefaultSet(), Options{Normalizer: DefaultNormalizer()})
	if err != nil {
		t.Fatal(err)
	}
	if o := norm.Run(nil); o.Diverged {
		t.Fatal("normalizer should hide timestamp divergence")
	}
}

func TestNormalizerKeepsRealDivergence(t *testing.T) {
	s, err := BuildSource(`
int main() {
    int x;
    printf("12:00:00.000000 value=%d\n", x);
    return 0;
}
`, compiler.DefaultSet(), Options{Normalizer: DefaultNormalizer()})
	if err != nil {
		t.Fatal(err)
	}
	if o := s.Run(nil); !o.Diverged {
		t.Fatal("real divergence must survive normalization")
	}
}

func TestNormalizerPointerFilter(t *testing.T) {
	n := DefaultNormalizer()
	got := string(n.Apply([]byte("ptr=0xdeadbeef at 10:44:23.405830 end")))
	if got != "ptr=<PTR> at <TIME> end" {
		t.Fatalf("got %q", got)
	}
}

// ---------------------------------------------------------------------------
// Subset analysis

func TestBugMatrixDetection(t *testing.T) {
	bm := &BugMatrix{
		ImplNames: []string{"a", "b", "c"},
		Rows: [][]uint64{
			{1, 1, 2}, // detected by any subset containing c and (a or b)
			{1, 1, 1}, // never detected
			{1, 2, 3}, // detected by any pair
		},
	}
	if n := bm.DetectedBy([]int{0, 1}); n != 1 {
		t.Fatalf("{a,b} = %d, want 1", n)
	}
	if n := bm.DetectedBy([]int{0, 2}); n != 2 {
		t.Fatalf("{a,c} = %d, want 2", n)
	}
	if n := bm.DetectedBy([]int{0, 1, 2}); n != 2 {
		t.Fatalf("{a,b,c} = %d, want 2", n)
	}
}

func TestSubsetSweepShape(t *testing.T) {
	bm := &BugMatrix{
		ImplNames: []string{"a", "b", "c", "d"},
		Rows: [][]uint64{
			{1, 2, 1, 1},
			{1, 1, 2, 2},
			{3, 1, 1, 3},
		},
	}
	stats := bm.SubsetSweep()
	if len(stats) != 3 { // sizes 2, 3, 4
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Subsets != 6 || stats[1].Subsets != 4 || stats[2].Subsets != 1 {
		t.Fatalf("subset counts: %d %d %d", stats[0].Subsets, stats[1].Subsets, stats[2].Subsets)
	}
	// The full set detects everything; max is monotone in size.
	if stats[2].Max != 3 {
		t.Fatalf("full set max = %d", stats[2].Max)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Max < stats[i-1].Max {
			t.Fatal("max should not decrease with subset size")
		}
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	f := func(k, size uint8) bool {
		kk := int(k%6) + 2
		ss := int(size%uint8(kk-1)) + 2
		if ss > kk {
			ss = kk
		}
		count := 0
		forEachSubset(kk, ss, func(sub []int) {
			if len(sub) != ss {
				t.Fatalf("subset size %d, want %d", len(sub), ss)
			}
			count++
		})
		return count == binom(kk, ss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func binom(n, k int) int {
	if k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestExitStatusPartOfOutput(t *testing.T) {
	// Divergence can be in the exit status alone.
	s := build(t, `
int main() {
    int d = 0;
    int r = 5 / d;
    return r & 1;
}
`)
	o := s.Run(nil)
	if !o.Diverged {
		t.Fatal("div-by-zero should diverge (trap vs poison)")
	}
	sawFpe := false
	for _, r := range o.Results {
		if r.Exit == vm.SigFpe {
			sawFpe = true
		}
	}
	if !sawFpe {
		t.Fatal("expected SIGFPE in some implementation")
	}
}
