package core_test

// The differential self-test for the batch executor: RunBatch must be
// byte-identical to driving the suite one input at a time, over the
// golden corpus and a progen-generated sweep, sequentially and with
// the parallel cross-check, at every batch size. The batch path is
// only trusted because this layer holds it to the per-exec semantics
// the oracle was validated against — the same medicine the vm's
// selftest_test.go applies to the fast loop. scripts/check.sh runs
// this under -race so the warm machine-set reuse is also proven free
// of data races.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/progen"
)

// batchSelfTestInputs mirrors the vm self-test crasher list: empty,
// short, divergence triggers, and garbage, so batches mix clean runs,
// faults, and diverging outcomes.
func batchSelfTestInputs() [][]byte {
	return [][]byte{
		nil,
		{},
		[]byte("u"),
		[]byte("s\x21"),
		[]byte("s\x02"),
		{'o', 0x9b, 0xff, 0xff, 0x7f, 0x65, 0, 0, 0},
		{'o', 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f},
		[]byte("plain input"),
		bytes.Repeat([]byte{0xff}, 16),
		bytes.Repeat([]byte{0x00}, 16),
	}
}

// batchSelfTestSources is the golden corpus (runtime programs only)
// plus a generated sweep: three progen programs, which are
// well-defined by construction and exercise compiler-config-dependent
// lowering without divergence, keeping the non-diverged comparison
// path honest too.
func batchSelfTestSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{}
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "golden", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("golden corpus unavailable: %v", err)
	}
	for _, p := range paths {
		if strings.HasPrefix(filepath.Base(p), "compile_") {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[strings.TrimSuffix(filepath.Base(p), ".mc")] = string(data)
	}
	for seed := int64(1); seed <= 3; seed++ {
		srcs[progenName(seed)] = progen.Generate(seed).Src
	}
	return srcs
}

func progenName(seed int64) string {
	return "progen_" + string('0'+byte(seed))
}

// assertSameOutcome compares every observable Outcome field. want
// comes from the materializing per-input path, got from RunBatch —
// which materializes only on divergence, so full Result comparison
// applies exactly there.
func assertSameOutcome(t *testing.T, input []byte, want, got *core.Outcome) {
	t.Helper()
	if want.Diverged != got.Diverged {
		t.Fatalf("input %q: diverged per-input=%t batch=%t", input, want.Diverged, got.Diverged)
	}
	if want.TimeoutSuspect != got.TimeoutSuspect {
		t.Fatalf("input %q: timeout-suspect per-input=%t batch=%t", input, want.TimeoutSuspect, got.TimeoutSuspect)
	}
	if len(want.Hashes) != len(got.Hashes) {
		t.Fatalf("input %q: %d hashes per-input, %d batch", input, len(want.Hashes), len(got.Hashes))
	}
	for i := range want.Hashes {
		if want.Hashes[i] != got.Hashes[i] {
			t.Fatalf("input %q: hash[%d] per-input=%016x batch=%016x", input, i, want.Hashes[i], got.Hashes[i])
		}
	}
	if !got.Diverged {
		// Signature needs materialized Results, which the fast path
		// (and so RunBatch) produces only on divergence; for agreeing
		// outcomes the hash comparison above is the whole story.
		return
	}
	if ws, gs := want.Signature(), got.Signature(); ws != gs {
		t.Fatalf("input %q: signature per-input=%016x batch=%016x", input, ws, gs)
	}
	if len(want.Results) != len(got.Results) {
		t.Fatalf("input %q: %d results per-input, %d batch", input, len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if w.Exit != g.Exit || w.Code != g.Code || w.Steps != g.Steps {
			t.Fatalf("input %q: result[%d] exit per-input=%s/%d/%d batch=%s/%d/%d",
				input, i, w.Exit, w.Code, w.Steps, g.Exit, g.Code, g.Steps)
		}
		if !bytes.Equal(w.Stdout, g.Stdout) || !bytes.Equal(w.Stderr, g.Stderr) {
			t.Fatalf("input %q: result[%d] output per-input=%q/%q batch=%q/%q",
				input, i, w.Stdout, w.Stderr, g.Stdout, g.Stderr)
		}
	}
}

// runBatchSelfTest drives two equivalent suites over the same input
// sequence — one per-input, one through RunBatch at the given size —
// so run-sequence-dependent state (warm machines, dirty-page resets)
// stays aligned, exactly like the vm self-test's two machines.
func runBatchSelfTest(t *testing.T, parallelism, batchSize int) {
	for name, src := range batchSelfTestSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			opts := core.Options{Parallelism: parallelism}
			perInput, err := core.BuildSource(src, compiler.DefaultSet(), opts)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := core.BuildSource(src, compiler.DefaultSet(), opts)
			if err != nil {
				t.Fatal(err)
			}
			inputs := batchSelfTestInputs()
			want := make([]*core.Outcome, 0, len(inputs))
			for _, in := range inputs {
				want = append(want, perInput.Run(in))
			}
			var got []*core.Outcome
			for start := 0; start < len(inputs); start += batchSize {
				end := start + batchSize
				if end > len(inputs) {
					end = len(inputs)
				}
				got = batched.RunBatch(inputs[start:end], got)
			}
			if len(got) != len(inputs) {
				t.Fatalf("RunBatch returned %d outcomes for %d inputs", len(got), len(inputs))
			}
			for i, in := range inputs {
				assertSameOutcome(t, in, want[i], got[i])
			}
		})
	}
}

// TestRunBatchMatchesRun is the sequential equivalence proof at a
// batch size that splits the input list mid-batch (7 over 10 inputs)
// and at one larger than the list (64), covering partial final
// batches and the single-borrow whole-corpus case.
func TestRunBatchMatchesRun(t *testing.T) {
	t.Run("batch7", func(t *testing.T) { runBatchSelfTest(t, 1, 7) })
	t.Run("batch64", func(t *testing.T) { runBatchSelfTest(t, 1, 64) })
}

// TestRunBatchMatchesRunParallel repeats the proof with the k-way
// parallel cross-check (Parallelism=4): the batch borrow must compose
// with the worker fan-out without reordering or racing — check.sh
// runs this under -race.
func TestRunBatchMatchesRunParallel(t *testing.T) {
	t.Run("batch7", func(t *testing.T) { runBatchSelfTest(t, 4, 7) })
	t.Run("batch64", func(t *testing.T) { runBatchSelfTest(t, 4, 64) })
}

// TestRunBatchSingletonIsRunFast pins the degenerate case: a
// one-element batch takes exactly the RunFast path (same scratch,
// same non-materializing semantics), so BatchSize=1 campaigns are
// byte-identical to unbatched ones by construction.
func TestRunBatchSingletonIsRunFast(t *testing.T) {
	src := batchSelfTestSources(t)["fmt"]
	if src == "" {
		// Corpus naming drift: fall back to any runtime program.
		for _, s := range batchSelfTestSources(t) {
			src = s
			break
		}
	}
	a, err := core.BuildSource(src, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BuildSource(src, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range batchSelfTestInputs() {
		want := a.RunFast(in)
		got := b.RunBatch([][]byte{in}, nil)[0]
		if want.Diverged != got.Diverged {
			t.Fatalf("input %q: RunFast vs 1-batch divergence mismatch", in)
		}
		if want.Diverged && want.Signature() != got.Signature() {
			t.Fatalf("input %q: RunFast vs 1-batch signature mismatch", in)
		}
		for i := range want.Hashes {
			if want.Hashes[i] != got.Hashes[i] {
				t.Fatalf("input %q: hash[%d] mismatch", in, i)
			}
		}
	}
}
