package core

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
)

func TestLocalizeOverflowGuard(t *testing.T) {
	// Listing 1 shape: the unstable guard sits on line 5 of the
	// source below; implementations that folded it continue at line 6
	// while the others return at line 5.
	src := `int check(int offset, int len) {
    if (offset < 0 || len < 0) {
        return -1;
    }
    if (offset + len < offset) { return -2; }
    return offset + len;
}
int main() {
    printf("%d\n", check(2147483647 - 100, 101));
    return 0;
}`
	s := build(t, src)
	o := s.Run(nil)
	if !o.Diverged {
		t.Fatal("expected divergence")
	}
	loc, err := s.Localize(o)
	if err != nil {
		t.Fatal(err)
	}
	if loc.TracesEqual {
		t.Fatalf("control-flow divergence expected, got %s", loc)
	}
	// The separation involves the guard on line 5: either the agreed
	// prefix ends there or one side's next line is the guard/return.
	involved := []int32{loc.Line, loc.NextA, loc.NextB}
	found := false
	for _, l := range involved {
		if l == 5 || l == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("localization %+v does not implicate the guard (line 5)", loc)
	}
	if !strings.Contains(loc.String(), "line") {
		t.Fatalf("report: %s", loc)
	}
}

func TestLocalizeDataOnlyDivergence(t *testing.T) {
	// An uninitialized print diverges in values, not in control flow.
	src := `int main() {
    int x;
    printf("%d\n", x);
    return 0;
}`
	s := build(t, src)
	o := s.Run(nil)
	if !o.Diverged {
		t.Fatal("expected divergence")
	}
	loc, err := s.Localize(o)
	if err != nil {
		t.Fatal(err)
	}
	if !loc.TracesEqual {
		t.Fatalf("expected data-only divergence, got %+v", loc)
	}
	if !strings.Contains(loc.String(), "data-only") {
		t.Fatalf("report: %s", loc)
	}
}

func TestLocalizeCrashDivergence(t *testing.T) {
	// Dead null deref: -O0 crashes at the deref line, optimized
	// binaries sail past — a prefix-trace divergence.
	src := `int main() {
    int* p = 0;
    *p;
    printf("alive\n");
    return 0;
}`
	s := build(t, src)
	o := s.Run(nil)
	if !o.Diverged {
		t.Fatal("expected divergence")
	}
	loc, err := s.Localize(o)
	if err != nil {
		t.Fatal(err)
	}
	if loc.TracesEqual {
		t.Fatal("crash-vs-continue should differ in control flow")
	}
}

func TestLocalizeRejectsStableOutcome(t *testing.T) {
	s := build(t, `int main() { printf("hi\n"); return 0; }`)
	o := s.Run(nil)
	if o.Diverged {
		t.Fatal("stable program diverged")
	}
	if _, err := s.Localize(o); err == nil {
		t.Fatal("expected error for non-diverging outcome")
	}
}

func TestLocalizeOnSubset(t *testing.T) {
	// Works with any implementation set, including the pair.
	s, err := BuildSource(`int main() {
    int x;
    int guard = 7;
    printf("%d %d\n", x, guard);
    return 0;
}`, []compiler.Config{
		{Family: compiler.GCC, Opt: compiler.Os},
		{Family: compiler.Clang, Opt: compiler.O0},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Run(nil)
	if !o.Diverged {
		t.Fatal("expected divergence")
	}
	if _, err := s.Localize(o); err != nil {
		t.Fatal(err)
	}
}
