package core

import "regexp"

// Normalizer rewrites captured output before comparison, removing
// fields that legitimately differ per run or per binary — timestamps,
// random cookies, printed addresses (RQ5). The paper's wireshark
// example filters "10:44:23.405830 [Epan WARNING]" timestamps the
// same way.
type Normalizer struct {
	rules []rule
}

type rule struct {
	re   *regexp.Regexp
	repl []byte
}

// NewNormalizer returns an empty normalizer.
func NewNormalizer() *Normalizer { return &Normalizer{} }

// Add registers a regular expression whose matches are replaced by
// repl. It returns the normalizer for chaining.
func (n *Normalizer) Add(pattern, repl string) *Normalizer {
	n.rules = append(n.rules, rule{re: regexp.MustCompile(pattern), repl: []byte(repl)})
	return n
}

// Apply rewrites out, returning a new slice if any rule matched.
func (n *Normalizer) Apply(out []byte) []byte {
	for _, r := range n.rules {
		out = r.re.ReplaceAll(out, r.repl)
	}
	return out
}

// DefaultNormalizer filters the non-determinism classes the paper's
// RQ5 encountered: clock timestamps (HH:MM:SS.uuuuuu) and printed
// pointer values (0x...). Programs whose remaining output is
// deterministic become analyzable by CompDiff.
func DefaultNormalizer() *Normalizer {
	return NewNormalizer().
		Add(`\d{2}:\d{2}:\d{2}\.\d{3,6}`, "<TIME>").
		Add(`0x[0-9a-f]{4,16}`, "<PTR>")
}
