// Package core implements CompDiff, the paper's contribution:
// compiler-driven differential testing. A program is compiled under a
// set of compiler implementations; every test input is executed on all
// resulting binaries; MurmurHash3 checksums of the (normalized)
// outputs are cross-checked, and any discrepancy signals unstable code
// (Definition 1 in the paper).
//
// The package also implements the operational details §3.2 and §4.3
// describe: the partial-timeout re-run policy (RQ6), output
// normalization for non-deterministic fields (RQ5), discrepancy
// triage signatures, the diffs/ store of bug-triggering inputs, and
// the compiler-implementation subset analysis behind Figures 1 and 2.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"compdiff/internal/compiler"
	"compdiff/internal/hash"
	"compdiff/internal/ir"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/telemetry"
	"compdiff/internal/vm"
)

// Implementation is one compiler implementation with its compiled
// binary and a free list of reusable executors.
type Implementation struct {
	Config compiler.Config
	Prog   *ir.Program

	stepLimit int64

	// Machines are borrowed per run and returned afterwards
	// (forkserver style: loaded once, memory reset between runs), so
	// warm machines are reused with no per-run reallocation while
	// concurrent Suite.Run calls never share mutable state. A
	// single-slot atomic cache covers the dominant sequential case in
	// two uncontended operations per borrow; the mutex-guarded free
	// list (kept over sync.Pool so pooled machines survive GC cycles)
	// backs it for concurrent runs.
	fast atomic.Pointer[vm.Machine]
	mu   sync.Mutex
	free []*vm.Machine
}

// acquire returns a warm machine for this binary, creating one only
// when every pooled machine is already in use.
func (im *Implementation) acquire() *vm.Machine {
	if m := im.fast.Swap(nil); m != nil {
		return m
	}
	im.mu.Lock()
	if n := len(im.free); n > 0 {
		m := im.free[n-1]
		im.free[n-1] = nil
		im.free = im.free[:n-1]
		im.mu.Unlock()
		return m
	}
	im.mu.Unlock()
	return vm.New(im.Prog, vm.Options{StepLimit: im.stepLimit})
}

// release returns a machine to the pool for the next run.
func (im *Implementation) release(m *vm.Machine) {
	if im.fast.CompareAndSwap(nil, m) {
		return
	}
	im.mu.Lock()
	im.free = append(im.free, m)
	im.mu.Unlock()
}

// Name returns the implementation name, e.g. "gcc -O2".
func (im *Implementation) Name() string { return im.Config.Name() }

// Options configures a differential-testing suite.
type Options struct {
	// StepLimit is the per-run instruction budget (timeout analog).
	StepLimit int64
	// MaxTimeoutRetries bounds the partial-timeout re-run policy: when
	// only some binaries time out, they are re-run with a growing
	// budget this many times before the divergence is reported as
	// timeout-related (RQ6). Default 3.
	MaxTimeoutRetries int
	// Normalizer, if set, rewrites outputs before comparison (RQ5).
	Normalizer *Normalizer
	// Parallelism is the number of worker goroutines each Run fans
	// its k per-binary executions across. Values <= 1 keep the
	// sequential path (byte-identical to the historical behavior).
	// Suite.Run is safe for concurrent use at any setting: runs
	// borrow machines from per-implementation free lists instead of
	// mutating shared state, and outcomes are identical regardless of
	// Parallelism for any program whose output does not depend on the
	// wall clock.
	Parallelism int

	// Metrics, when non-nil, receives per-implementation telemetry
	// from every Run: each VM execution (including RQ6 re-runs) is
	// timed and classified (ok / crash / step-limit-hang). The sink is
	// safe for concurrent use, so one SuiteMetrics may serve many
	// concurrent Suite.Run calls. Nil disables instrumentation with a
	// single branch per execution.
	Metrics *telemetry.SuiteMetrics
}

func (o Options) withDefaults() Options {
	if o.StepLimit <= 0 {
		o.StepLimit = vm.DefaultStepLimit
	}
	if o.MaxTimeoutRetries <= 0 {
		o.MaxTimeoutRetries = 3
	}
	return o
}

// Suite is a program compiled under k compiler implementations,
// ready for differential execution.
type Suite struct {
	Impls []*Implementation
	opts  Options

	// scratch caches one complete borrow set — the k machines plus the
	// slice that holds their shared results — so the sequential hot
	// path checks machines in and out with two atomic operations
	// instead of 2k, and reuses the slices. Concurrent runs fall back
	// to the per-implementation free lists.
	scratch atomic.Pointer[runScratch]
}

// runScratch is one run's borrow set: a machine per implementation,
// the result slots they fill, and a warm encode buffer for the
// small-output checksum fast path.
type runScratch struct {
	machines []*vm.Machine
	shared   []*vm.Result
	enc      []byte
}

// Build compiles the checked program under every configuration.
func Build(info *sema.Info, cfgs []compiler.Config, opts Options) (*Suite, error) {
	opts = opts.withDefaults()
	if len(cfgs) < 2 {
		return nil, fmt.Errorf("compdiff: need at least 2 compiler implementations, got %d", len(cfgs))
	}
	s := &Suite{opts: opts}
	for _, cfg := range cfgs {
		// Guarded so an internal compiler error surfaces as a build
		// error the caller can classify, never as a harness panic.
		res := compiler.CompileGuarded(info, cfg)
		if res.Err != nil {
			return nil, res.Err
		}
		im := &Implementation{
			Config:    cfg,
			Prog:      res.Prog,
			stepLimit: opts.StepLimit,
		}
		im.free = []*vm.Machine{vm.New(res.Prog, vm.Options{StepLimit: opts.StepLimit})}
		s.Impls = append(s.Impls, im)
	}
	return s, nil
}

// BuildSource parses, checks, and builds in one step.
func BuildSource(src string, cfgs []compiler.Config, opts Options) (*Suite, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("compdiff: parse: %w", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("compdiff: check: %w", err)
	}
	return Build(info, cfgs, opts)
}

// Outcome is the result of differentially executing one input.
type Outcome struct {
	Input   []byte
	Results []*vm.Result // one per implementation, suite order
	Hashes  []uint64     // normalized output checksums

	// Diverged reports whether at least two implementations disagree —
	// the CompDiff oracle.
	Diverged bool

	// TimeoutSuspect is set when the divergence involves step-limit
	// exits that survived the re-run policy; such reports need manual
	// scrutiny (RQ6).
	TimeoutSuspect bool
}

// Groups partitions implementation indices by output hash.
func (o *Outcome) Groups() map[uint64][]int {
	g := map[uint64][]int{}
	for i, h := range o.Hashes {
		g[h] = append(g[h], i)
	}
	return g
}

// Signature is a stable triage key: two inputs that split the
// implementations the same way (same partition, same exit kinds) are
// very likely the same bug.
func (o *Outcome) Signature() uint64 {
	d := hash.New128(0x5161)
	groups := o.Groups()
	// Render the partition canonically: for each implementation, the
	// smallest index sharing its hash, plus the exit kind.
	for i := range o.Hashes {
		rep := i
		for _, j := range groups[o.Hashes[i]] {
			if j < rep {
				rep = j
			}
		}
		d.Write([]byte{byte(rep), byte(o.Results[i].Exit)})
	}
	h1, _ := d.Sum128()
	return h1
}

// outputHashSeed seeds the MurmurHash3 checksum of each binary's
// canonical output (the value golden files pin).
const outputHashSeed = 0xaf1d

// smallEncodeLimit bounds the output size hashed via the scratch
// encode buffer; larger outputs stream through the digest instead of
// being copied.
const smallEncodeLimit = 4096

// digestPool recycles streaming digests across Run calls; the hot path
// hashes k outputs per generated input and must not allocate a digest
// (let alone an encoded copy of the output) for each.
var digestPool = sync.Pool{New: func() any { return new(hash.Digest) }}

// Run executes input on every implementation and cross-checks outputs
// (Algorithm 1, lines 9-12, plus the RQ5/RQ6 policies). With
// Options.Parallelism > 1 the k executions fan out across a worker
// pool; the outcome is positionally identical either way.
func (s *Suite) Run(input []byte) *Outcome {
	return s.run(input, true)
}

// RunFast is the fuzzing fast path: identical execution, hashing, and
// verdict to Run — same machines, same RQ6 re-run policy, same
// checksums — but per-implementation outputs stay in machine-owned
// buffers and are checksummed in place (vm.Result.EncodeTo), never
// copied. Outcome.Results is materialized only when the input actually
// diverged (the paper's report-only-on-disagreement flow) and is nil
// otherwise; everything else on the Outcome is always populated.
func (s *Suite) RunFast(input []byte) *Outcome {
	return s.run(input, false)
}

// RunBatch is the persistent-mode batch executor: it borrows one warm
// machine set, runs every input in order against it (dirty-page reset
// between inputs happens inside each machine), and parks the set once
// at the end — the borrow/park atomics and scratch lookups leave the
// per-exec path entirely. Each input gets exactly the RunFast
// treatment (same machines, same retry policy, same checksums), so a
// batch of N is byte-identical to N sequential RunFast calls; the
// differential self-test layer pins that equivalence. One outcome per
// input is appended to dst (reusable across calls) and the extended
// slice returned. Outcomes of diverged inputs are materialized;
// callers that retain them must also stop reusing the input buffers,
// as Outcome.Input aliases the caller's slice.
func (s *Suite) RunBatch(inputs [][]byte, dst []*Outcome) []*Outcome {
	if len(inputs) == 0 {
		return dst
	}
	sc := s.borrow()
	defer s.park(sc)
	for _, input := range inputs {
		dst = append(dst, s.runWith(sc, input, false))
	}
	return dst
}

// borrow checks out one complete machine set, preferring the parked
// scratch (two atomics) over the per-implementation free lists.
func (s *Suite) borrow() *runScratch {
	sc := s.scratch.Swap(nil)
	if sc == nil {
		sc = &runScratch{
			machines: make([]*vm.Machine, len(s.Impls)),
			shared:   make([]*vm.Result, len(s.Impls)),
		}
		for i, im := range s.Impls {
			sc.machines[i] = im.acquire()
		}
	}
	return sc
}

// park returns a borrow set; if another run parked its set first the
// machines go back to their implementations' free lists.
func (s *Suite) park(sc *runScratch) {
	if !s.scratch.CompareAndSwap(nil, sc) {
		for i, im := range s.Impls {
			im.release(sc.machines[i])
		}
	}
}

func (s *Suite) run(input []byte, materialize bool) *Outcome {
	sc := s.borrow()
	defer s.park(sc)
	return s.runWith(sc, input, materialize)
}

// runWith is the differential execution core, operating on an
// already-borrowed machine set.
func (s *Suite) runWith(sc *runScratch, input []byte, materialize bool) *Outcome {
	out := &Outcome{Input: input}
	k := len(s.Impls)
	// shared holds machine-owned results (vm.RunShared): valid while
	// the machines stay borrowed.
	machines, shared := sc.machines, sc.shared
	if m := s.opts.Metrics; m != nil {
		s.forEachTimed(k, func(i int) {
			shared[i] = machines[i].RunShared(input)
		}, func(idxs []int, elapsed time.Duration) {
			s.observeChain(m, shared, idxs, elapsed)
		})
	} else {
		s.forEach(k, func(i int) {
			shared[i] = machines[i].RunShared(input)
		})
	}

	// Partial-timeout policy (RQ6): when only some binaries hit the
	// step limit, their truncated output is not comparable. Re-run the
	// timed-out ones with a growing budget; only if they still exceed
	// it do we report (flagged for manual scrutiny).
	retries := 0
	for retries < s.opts.MaxTimeoutRetries {
		var rerun []int
		finished := 0
		for i, r := range shared {
			if r.Exit == vm.StepLimit {
				rerun = append(rerun, i)
			} else {
				finished++
			}
		}
		if len(rerun) == 0 || finished == 0 {
			break
		}
		retries++
		budget := growBudget(s.opts.StepLimit, retries)
		if m := s.opts.Metrics; m != nil {
			s.forEachTimed(len(rerun), func(j int) {
				i := rerun[j]
				shared[i] = machines[i].RunSharedWithLimit(input, budget)
			}, func(jdxs []int, elapsed time.Duration) {
				idxs := make([]int, len(jdxs))
				for x, j := range jdxs {
					idxs[x] = rerun[j]
				}
				s.observeChain(m, shared, idxs, elapsed)
			})
		} else {
			s.forEach(len(rerun), func(j int) {
				i := rerun[j]
				shared[i] = machines[i].RunSharedWithLimit(input, budget)
			})
		}
	}
	for _, r := range shared {
		if r.Exit == vm.StepLimit {
			out.TimeoutSuspect = true
		}
	}

	out.Hashes = make([]uint64, k)
	if s.opts.Normalizer == nil {
		// Small outputs (the overwhelming fuzzing case) are checksummed
		// via one canonical encode into the scratch's warm buffer and a
		// one-shot Sum64 — cheaper than four buffered Digest writes per
		// result. Large outputs stream through the pooled digest and
		// are never copied. Both produce the identical MurmurHash3
		// value (hash.TestDigestMatchesOneShotAllSplits pins this).
		enc := sc.enc
		var d *hash.Digest
		for i, r := range shared {
			if len(r.Stdout)+len(r.Stderr) <= smallEncodeLimit {
				enc = r.AppendEncode(enc[:0])
				out.Hashes[i] = hash.Sum64(enc, outputHashSeed)
			} else {
				if d == nil {
					d = digestPool.Get().(*hash.Digest)
				}
				d.Reset(outputHashSeed)
				r.EncodeTo(d)
				out.Hashes[i], _ = d.Sum128()
			}
		}
		sc.enc = enc
		if d != nil {
			digestPool.Put(d)
		}
	} else {
		d := digestPool.Get().(*hash.Digest)
		for i, r := range shared {
			out.Hashes[i] = s.hashResult(r, d)
		}
		digestPool.Put(d)
	}
	for _, h := range out.Hashes[1:] {
		if h != out.Hashes[0] {
			out.Diverged = true
			break
		}
	}

	// Materialize per-implementation Results — copying the output bytes
	// out of the machine-owned buffers — only for the slow path or when
	// a discrepancy was actually detected and a report needs the bytes.
	if materialize || out.Diverged {
		out.Results = cloneResults(shared)
	}
	return out
}

// cloneResults materializes machine-owned results into independent
// ones, packing all k Result structs and all their output bytes into
// two allocations instead of per-result Clones.
func cloneResults(shared []*vm.Result) []*vm.Result {
	arena := make([]vm.Result, len(shared))
	nbytes := 0
	for _, r := range shared {
		nbytes += len(r.Stdout) + len(r.Stderr)
	}
	buf := make([]byte, 0, nbytes)
	results := make([]*vm.Result, len(shared))
	for i, r := range shared {
		c := &arena[i]
		*c = *r
		// Full slice expressions cap each view at its own bytes, so a
		// later append on one result cannot clobber its neighbour.
		buf = append(buf, r.Stdout...)
		c.Stdout = buf[len(buf)-len(r.Stdout) : len(buf) : len(buf)]
		buf = append(buf, r.Stderr...)
		c.Stderr = buf[len(buf)-len(r.Stderr) : len(buf) : len(buf)]
		if r.Trace != nil {
			c.Trace = append([]int32(nil), r.Trace...)
		}
		results[i] = c
	}
	return results
}

// hashResult checksums one result's canonical output. Without a
// normalizer the encoding is streamed through the pooled digest
// straight from the machine-owned buffers — no copy, no allocation.
// With one, the encoding must be materialized for the rewrite rules
// (RQ5), exactly as before.
func (s *Suite) hashResult(r *vm.Result, d *hash.Digest) uint64 {
	if n := s.opts.Normalizer; n != nil {
		return hash.Sum64(n.Apply(r.Encode()), outputHashSeed)
	}
	d.Reset(outputHashSeed)
	r.EncodeTo(d)
	h1, _ := d.Sum128()
	return h1
}

// observeChain records one worker chain of VM executions: each run in
// idxs is classified, and the chain's wall-clock time is apportioned
// across the runs proportionally to their executed step counts. Steps
// measure the work a run did, so the apportionment is an accurate
// per-run latency estimate while the chain total is exact — and the
// clock stays off the per-run hot path (see forEachTimed).
func (s *Suite) observeChain(m *telemetry.SuiteMetrics, results []*vm.Result, idxs []int, elapsed time.Duration) {
	var total int64
	for _, i := range idxs {
		total += results[i].Steps
	}
	for _, i := range idxs {
		r := results[i]
		d := elapsed
		if total > 0 {
			// float64 keeps elapsed*steps from overflowing int64 on
			// grown-budget re-runs.
			d = time.Duration(float64(elapsed) * (float64(r.Steps) / float64(total)))
		} else if n := len(idxs); n > 1 {
			d = elapsed / time.Duration(n)
		}
		m.ObserveRun(i, ClassifyResult(r), d)
	}
}

// growBudget is the RQ6 re-run budget: the base step limit grown 4x
// per retry. A shift that overflows int64 would hand the VM a negative
// or truncated limit and turn every re-run into an instant spurious
// timeout, so the budget saturates at MaxInt64 instead.
func growBudget(base int64, retries int) int64 {
	b := base << (2 * uint(retries))
	if b>>(2*uint(retries)) != base || b <= 0 {
		return math.MaxInt64
	}
	return b
}

// ClassifyResult maps one VM result to its telemetry outcome class:
// the AFL-style crash/hang buckets, with the step-limit exit playing
// the timeout role (§3.2).
func ClassifyResult(r *vm.Result) telemetry.Class {
	switch {
	case r.Exit == vm.StepLimit:
		return telemetry.ClassStepLimitHang
	case r.Crashed():
		return telemetry.ClassCrash
	default:
		return telemetry.ClassOK
	}
}

// RunAll executes a set of inputs, returning only diverging outcomes.
func (s *Suite) RunAll(inputs [][]byte) []*Outcome {
	var diffs []*Outcome
	for _, in := range inputs {
		if o := s.Run(in); o.Diverged {
			diffs = append(diffs, o)
		}
	}
	return diffs
}

// Names lists the implementation names in suite order.
func (s *Suite) Names() []string {
	out := make([]string, len(s.Impls))
	for i, im := range s.Impls {
		out[i] = im.Name()
	}
	return out
}
