package core

import (
	"sync"
	"sync/atomic"

	"compdiff/internal/vm"
)

// The parallel execution layer. The paper's evaluation drove CompDiff
// on a 64-core server (§4); here the same fan-out is a worker pool
// over the k per-binary executions of one input. Determinism is
// preserved by construction: workers claim implementation indices
// from an atomic counter but write results positionally, so the
// outcome — results, hashes, divergence verdict, triage signature —
// is byte-identical to the sequential path for any clock-independent
// program, regardless of scheduling.

// forEach runs fn(i) for every i in [0, n), fanning across
// Options.Parallelism workers. Parallelism <= 1 (or a single task)
// stays on the calling goroutine, preserving the historical
// sequential execution exactly.
func (s *Suite) forEach(n int, fn func(int)) {
	p := s.opts.Parallelism
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Warm pre-populates every implementation's machine free list with
// enough machines for the given concurrency level, so that the first
// parallel runs do not pay machine construction on the hot path.
func (s *Suite) Warm(workers int) {
	if workers < 1 {
		workers = 1
	}
	for _, im := range s.Impls {
		im.mu.Lock()
		for len(im.free) < workers {
			im.free = append(im.free, vm.New(im.Prog, vm.Options{StepLimit: im.stepLimit}))
		}
		im.mu.Unlock()
	}
}
