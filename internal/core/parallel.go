package core

import (
	"sync"
	"sync/atomic"
	"time"

	"compdiff/internal/vm"
)

// The parallel execution layer. The paper's evaluation drove CompDiff
// on a 64-core server (§4); here the same fan-out is a worker pool
// over the k per-binary executions of one input. Determinism is
// preserved by construction: workers claim implementation indices
// from an atomic counter but write results positionally, so the
// outcome — results, hashes, divergence verdict, triage signature —
// is byte-identical to the sequential path for any clock-independent
// program, regardless of scheduling.

// forEach runs fn(i) for every i in [0, n), fanning across
// Options.Parallelism workers. Parallelism <= 1 (or a single task)
// stays on the calling goroutine, preserving the historical
// sequential execution exactly.
func (s *Suite) forEach(n int, fn func(int)) {
	p := s.opts.Parallelism
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEachTimed is forEach with latency observation. Reading the clock
// around every task would cost more than the telemetry it feeds (a
// warm VM run is single-digit microseconds; a clock read tens of
// nanoseconds), so each worker times its whole chain of tasks with two
// reads and hands the chain to flush, which apportions the elapsed
// time across the tasks it ran. Chains are exact in aggregate — every
// nanosecond a worker spent executing is attributed to exactly one of
// its tasks. flush runs outside the timed window, once per worker.
func (s *Suite) forEachTimed(n int, fn func(int), flush func(idxs []int, elapsed time.Duration)) {
	p := s.opts.Parallelism
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		var buf [16]int
		idxs := buf[:0]
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
			idxs = append(idxs, i)
		}
		flush(idxs, time.Since(start))
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf [16]int
			idxs := buf[:0]
			start := time.Now()
			for {
				i := int(next.Add(1))
				if i >= n {
					break
				}
				fn(i)
				idxs = append(idxs, i)
			}
			if len(idxs) > 0 {
				flush(idxs, time.Since(start))
			}
		}()
	}
	wg.Wait()
}

// Warm pre-populates every implementation's machine free list with
// enough machines for the given concurrency level, so that the first
// parallel runs do not pay machine construction on the hot path.
func (s *Suite) Warm(workers int) {
	if workers < 1 {
		workers = 1
	}
	for _, im := range s.Impls {
		im.mu.Lock()
		for len(im.free) < workers {
			im.free = append(im.free, vm.New(im.Prog, vm.Options{StepLimit: im.stepLimit}))
		}
		im.mu.Unlock()
	}
}
