package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compdiff/internal/vm"
)

// The parallel execution layer. The paper's evaluation drove CompDiff
// on a 64-core server (§4); here the same fan-out is a worker pool
// over the k per-binary executions of one input. Determinism is
// preserved by construction: workers claim implementation indices
// from an atomic counter but write results positionally, so the
// outcome — results, hashes, divergence verdict, triage signature —
// is byte-identical to the sequential path for any clock-independent
// program, regardless of scheduling.

// effectiveParallelism clamps Options.Parallelism to the number of
// tasks and to GOMAXPROCS. VM runs are pure CPU — they never block on
// I/O — so workers beyond the schedulable cores cannot overlap
// anything; they only add goroutine spawn and scheduler churn to
// every Run. On a single-core box this clamp is what keeps
// Parallelism=4 from regressing ~60% below the sequential path
// (BENCH_2026-08-06.json: SuiteRunParallel 10723 ns/op vs
// SuiteRunSequential 6698). Outcomes are positionally identical at
// any worker count, so the clamp is invisible except in throughput.
func (s *Suite) effectiveParallelism(n int) int {
	p := s.opts.Parallelism
	if p > n {
		p = n
	}
	if max := runtime.GOMAXPROCS(0); p > max {
		p = max
	}
	return p
}

// forEach runs fn(i) for every i in [0, n), fanning across
// Options.Parallelism workers. Parallelism <= 1 (or a single task, or
// a single schedulable core) stays on the calling goroutine,
// preserving the historical sequential execution exactly. With p
// workers the calling goroutine runs one worker's share itself, so
// only p-1 goroutines are spawned per Run.
func (s *Suite) forEach(n int, fn func(int)) {
	p := s.effectiveParallelism(n)
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 1; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1))
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// forEachTimed is forEach with latency observation. Reading the clock
// around every task would cost more than the telemetry it feeds (a
// warm VM run is single-digit microseconds; a clock read tens of
// nanoseconds), so each worker times its whole chain of tasks with two
// reads and hands the chain to flush, which apportions the elapsed
// time across the tasks it ran. Chains are exact in aggregate — every
// nanosecond a worker spent executing is attributed to exactly one of
// its tasks. flush runs outside the timed window, once per worker.
func (s *Suite) forEachTimed(n int, fn func(int), flush func(idxs []int, elapsed time.Duration)) {
	p := s.effectiveParallelism(n)
	if p <= 1 || n <= 1 {
		var buf [16]int
		idxs := buf[:0]
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
			idxs = append(idxs, i)
		}
		flush(idxs, time.Since(start))
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	worker := func() {
		var buf [16]int
		idxs := buf[:0]
		start := time.Now()
		for {
			i := int(next.Add(1))
			if i >= n {
				break
			}
			fn(i)
			idxs = append(idxs, i)
		}
		if len(idxs) > 0 {
			flush(idxs, time.Since(start))
		}
	}
	for w := 1; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
}

// Warm pre-populates every implementation's machine free list with
// enough machines for the given concurrency level, so that the first
// parallel runs do not pay machine construction on the hot path.
func (s *Suite) Warm(workers int) {
	if workers < 1 {
		workers = 1
	}
	for _, im := range s.Impls {
		im.mu.Lock()
		for len(im.free) < workers {
			im.free = append(im.free, vm.New(im.Prog, vm.Options{StepLimit: im.stepLimit}))
		}
		im.mu.Unlock()
	}
}
