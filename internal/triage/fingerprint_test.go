package triage

import (
	"encoding/json"
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
)

// divSrc is a known-divergent program: division by a runtime zero.
// O0/O1 personalities trap (SIGFPE), optimized ones return distinct
// poison values.
const divSrc = `
int main() {
    int d = (int)input_size();
    printf("%d\n", 100 / d);
    return 0;
}
`

// stableSrc is fully defined C: every implementation agrees.
const stableSrc = `
int main() {
    printf("ok %ld\n", input_size());
    return 0;
}
`

func mustOutcome(t *testing.T, src string, input []byte) *core.Outcome {
	t.Helper()
	suite, err := core.BuildSource(src, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return suite.Run(input)
}

func TestFingerprintShape(t *testing.T) {
	o := mustOutcome(t, divSrc, nil)
	if !o.Diverged {
		t.Fatal("divSrc did not diverge")
	}
	fp := Of(o)
	if len(fp.Partition) != len(o.Hashes) || len(fp.Classes) != len(o.Hashes) {
		t.Fatalf("fingerprint arity %d/%d, want %d", len(fp.Partition), len(fp.Classes), len(o.Hashes))
	}
	// The partition must be canonical: each representative is the
	// smallest index sharing the hash, and representative entries
	// point at themselves.
	for i, rep := range fp.Partition {
		if int(rep) > i {
			t.Fatalf("partition[%d]=%d points forward", i, rep)
		}
		if o.Hashes[rep] != o.Hashes[i] {
			t.Fatalf("partition[%d]=%d but hashes differ", i, rep)
		}
		if fp.Partition[rep] != rep {
			t.Fatalf("representative %d is not self-representative", rep)
		}
	}
	// Stage is the first index that departs from implementation 0.
	wantStage := 0
	for i, h := range o.Hashes {
		if h != o.Hashes[0] {
			wantStage = i
			break
		}
	}
	if fp.Stage != wantStage {
		t.Fatalf("Stage=%d, want %d", fp.Stage, wantStage)
	}
	// O0/O1 trap on division by zero: their class must be crash while
	// the optimized implementations ran to completion.
	if fp.Classes[0] == fp.Classes[2] {
		t.Fatalf("expected crash/ok class split, got classes %v", fp.Classes)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Of(mustOutcome(t, divSrc, nil))
	b := Of(mustOutcome(t, divSrc, nil))
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatalf("fingerprint not stable across runs: %v vs %v", a, b)
	}
	// Different inputs that keep the same disagreement shape land on
	// the same key even though every checksum changed: divSrc's
	// divergence does not depend on the input bytes, only the size
	// staying zero... whereas a different program shape must differ.
	c := Of(mustOutcome(t, `
int main() {
    int x;
    if (input_size() > 100L) { x = 1; }
    printf("%d\n", x);
    return 0;
}
`, nil))
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("distinct divergence shapes collided")
	}
}

func TestFingerprintStringAndJSON(t *testing.T) {
	fp := Of(mustOutcome(t, divSrc, nil))
	s := fp.String()
	if !strings.Contains(s, "part[") || !strings.Contains(s, "class[") {
		t.Fatalf("unexpected String form %q", s)
	}
	data, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Partition []uint8 `json:"partition"`
		Classes   []uint8 `json:"classes"`
		Stage     int     `json:"stage"`
		Key       string  `json:"key"`
		Pretty    string  `json:"pretty"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Key == "" || decoded.Pretty != s || len(decoded.Partition) != len(fp.Partition) {
		t.Fatalf("JSON round-trip lost fields: %s", data)
	}
}
