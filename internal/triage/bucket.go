package triage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"compdiff/internal/core"
)

// Bucket is one deduplicated finding: a fingerprint, a representative
// outcome (the first seen), and hit counters. The representative is
// what a reducer or a human starts from; the counters are the
// per-bucket telemetry campaign reports surface.
type Bucket struct {
	Fingerprint Fingerprint
	Key         uint64
	// Outcome is the first diverging outcome that opened the bucket.
	// Nil for compile-stage buckets, which carry Compile instead.
	Outcome *core.Outcome
	// Compile is the representative compile-stage record for buckets
	// produced by the compile oracle (Fingerprint.Kind != KindRuntime).
	Compile *core.CompileOutcome
	// Count is the number of diverging inputs that landed here.
	Count int
	// Signatures counts the distinct triage signatures merged into
	// this bucket — >1 means the fingerprint actually coalesced
	// findings the raw signature would have reported separately.
	Signatures int

	sigs map[uint64]bool
}

// BucketStore deduplicates diverging outcomes by fingerprint. All
// methods are safe for concurrent use; a sharded campaign merges
// shard-local stores into a pool-wide one at synchronization
// barriers, exactly like core.DiffStore.
type BucketStore struct {
	mu    sync.Mutex
	byKey map[uint64]*Bucket
	order []uint64
	total int
}

// NewBucketStore creates an empty store.
func NewBucketStore() *BucketStore {
	return &BucketStore{byKey: map[uint64]*Bucket{}}
}

// Add records a diverging outcome. It returns the bucket the outcome
// landed in and whether that bucket is new (the new-bucket-only
// reporting predicate). Non-diverging outcomes are ignored.
func (bs *BucketStore) Add(o *core.Outcome) (*Bucket, bool) {
	if o == nil || !o.Diverged {
		return nil, false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.addLocked(o, 1, o.Signature())
}

func (bs *BucketStore) addLocked(o *core.Outcome, count int, sig uint64) (*Bucket, bool) {
	return bs.insertLocked(Of(o), o, nil, count, sig)
}

// AddCompile records a compile-stage outcome. Outcomes that are not
// findings (all implementations accept, or all reject with identical
// normalized diagnostics) are ignored.
func (bs *BucketStore) AddCompile(co *core.CompileOutcome) (*Bucket, bool) {
	if co == nil {
		return nil, false
	}
	fp, ok := OfCompile(co)
	if !ok {
		return nil, false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.insertLocked(fp, nil, co, 1, co.Signature())
}

func (bs *BucketStore) insertLocked(fp Fingerprint, o *core.Outcome, co *core.CompileOutcome, count int, sig uint64) (*Bucket, bool) {
	bs.total += count
	key := fp.Key()
	if b, ok := bs.byKey[key]; ok {
		b.Count += count
		if !b.sigs[sig] {
			b.sigs[sig] = true
			b.Signatures++
		}
		return b, false
	}
	b := &Bucket{
		Fingerprint: fp,
		Key:         key,
		Outcome:     o,
		Compile:     co,
		Count:       count,
		Signatures:  1,
		sigs:        map[uint64]bool{sig: true},
	}
	bs.byKey[key] = b
	bs.order = append(bs.order, key)
	return b, true
}

// KindCounts breaks the unique-bucket count down by finding kind.
func (bs *BucketStore) KindCounts() [NumKinds]int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var out [NumKinds]int
	for _, b := range bs.byKey {
		if k := b.Fingerprint.Kind; int(k) < NumKinds {
			out[k]++
		}
	}
	return out
}

// Absorb merges another store's buckets (typically a shard-local
// delta) into bs, summing counts for known keys. It returns the
// buckets whose keys were new to bs.
func (bs *BucketStore) Absorb(buckets []*Bucket) []*Bucket {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var fresh []*Bucket
	for _, b := range buckets {
		if cur, ok := bs.byKey[b.Key]; ok {
			cur.Count += b.Count
			for sig := range b.sigs {
				if !cur.sigs[sig] {
					cur.sigs[sig] = true
					cur.Signatures++
				}
			}
			bs.total += b.Count
			continue
		}
		c := &Bucket{
			Fingerprint: b.Fingerprint,
			Key:         b.Key,
			Outcome:     b.Outcome,
			Compile:     b.Compile,
			Count:       b.Count,
			Signatures:  b.Signatures,
			sigs:        map[uint64]bool{},
		}
		for sig := range b.sigs {
			c.sigs[sig] = true
		}
		bs.byKey[c.Key] = c
		bs.order = append(bs.order, c.Key)
		bs.total += c.Count
		fresh = append(fresh, c)
	}
	return fresh
}

// Since returns the buckets from discovery index `from` on — the
// delta a synchronization barrier hands to Absorb. Out-of-range
// cursors clamp.
func (bs *BucketStore) Since(from int) []*Bucket {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(bs.order) {
		from = len(bs.order)
	}
	out := make([]*Bucket, 0, len(bs.order)-from)
	for _, key := range bs.order[from:] {
		out = append(out, bs.byKey[key])
	}
	return out
}

// Recount overwrites per-bucket counts and the pre-dedup total with
// authoritative values, keyed by bucket key. The pool calls it at
// every barrier so the shared store's counts equal the sum over
// shard-local stores, independent of merge interleaving.
func (bs *BucketStore) Recount(counts map[uint64]int) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	total := 0
	for _, c := range counts {
		total += c
	}
	bs.total = total
	for key, b := range bs.byKey {
		if c, ok := counts[key]; ok {
			b.Count = c
		}
	}
}

// Counts snapshots the per-bucket input counts keyed by bucket key.
func (bs *BucketStore) Counts() map[uint64]int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make(map[uint64]int, len(bs.byKey))
	for key, b := range bs.byKey {
		out[key] = b.Count
	}
	return out
}

// Buckets returns the buckets in discovery order.
func (bs *BucketStore) Buckets() []*Bucket {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([]*Bucket, 0, len(bs.order))
	for _, key := range bs.order {
		out = append(out, bs.byKey[key])
	}
	return out
}

// Len is the number of unique buckets.
func (bs *BucketStore) Len() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.order)
}

// Total is the number of diverging inputs seen (before deduplication).
func (bs *BucketStore) Total() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.total
}

// Keys returns the sorted bucket-key set — the order-independent
// fingerprint of a campaign's triaged findings, the bucket analog of
// difffuzz.Pool.Signatures.
func (bs *BucketStore) Keys() []uint64 {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	keys := make([]uint64, len(bs.order))
	copy(keys, bs.order)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// BucketSnapshot is one bucket in checkpoint wire form: the private
// signature set flattened to a sorted slice so the encoding is
// deterministic and round-trips byte-identically.
type BucketSnapshot struct {
	Fingerprint Fingerprint          `json:"fingerprint"`
	Key         uint64               `json:"key"`
	Outcome     *core.Outcome        `json:"outcome,omitempty"`
	Compile     *core.CompileOutcome `json:"compile,omitempty"`
	Count       int                  `json:"count"`
	Signatures  []uint64             `json:"signatures"`
}

// Export snapshots the store for checkpointing: buckets in discovery
// order plus the pre-dedup total. The snapshot shares outcome pointers
// with the store (outcomes are immutable once stored).
func (bs *BucketStore) Export() ([]BucketSnapshot, int) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([]BucketSnapshot, 0, len(bs.order))
	for _, key := range bs.order {
		b := bs.byKey[key]
		sigs := make([]uint64, 0, len(b.sigs))
		for sig := range b.sigs {
			sigs = append(sigs, sig)
		}
		sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
		out = append(out, BucketSnapshot{
			Fingerprint: b.Fingerprint,
			Key:         b.Key,
			Outcome:     b.Outcome,
			Compile:     b.Compile,
			Count:       b.Count,
			Signatures:  sigs,
		})
	}
	return out, bs.total
}

// RestoreBucketStore rebuilds a store from an Export snapshot,
// preserving discovery order, counts, and the per-bucket signature
// sets. Snapshots may carry nil Outcomes (shard-local skeletons);
// such buckets still deduplicate and recount exactly.
func RestoreBucketStore(snaps []BucketSnapshot, total int) *BucketStore {
	bs := NewBucketStore()
	for _, s := range snaps {
		b := &Bucket{
			Fingerprint: s.Fingerprint,
			Key:         s.Key,
			Outcome:     s.Outcome,
			Compile:     s.Compile,
			Count:       s.Count,
			Signatures:  len(s.Signatures),
			sigs:        make(map[uint64]bool, len(s.Signatures)),
		}
		for _, sig := range s.Signatures {
			b.sigs[sig] = true
		}
		bs.byKey[b.Key] = b
		bs.order = append(bs.order, b.Key)
	}
	bs.total = total
	return bs
}

// Report renders one bucket as a human-readable finding: the
// fingerprint, the hit counters, and the representative input with
// the disagreeing implementation groups and their outputs.
func (b *Bucket) Report(names []string) string {
	if b.Compile != nil {
		return b.reportCompile()
	}
	o := b.Outcome
	var s strings.Builder
	fmt.Fprintf(&s, "bucket %016x %s (%d inputs, %d signatures)\n",
		b.Key, b.Fingerprint, b.Count, b.Signatures)
	fmt.Fprintf(&s, "representative input (%d bytes): %q\n", len(o.Input), clip(o.Input, 64))
	groups := o.Groups()
	type grp struct {
		impls []int
		out   string
	}
	var gs []grp
	for _, idxs := range groups {
		sort.Ints(idxs)
		gs = append(gs, grp{impls: idxs, out: string(o.Results[idxs[0]].Encode())})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].impls[0] < gs[j].impls[0] })
	for _, g := range gs {
		s.WriteString("reproducers:")
		for _, i := range g.impls {
			s.WriteString(" [" + names[i] + "]")
		}
		s.WriteString("\noutput:\n")
		for _, line := range strings.SplitAfter(g.out, "\n") {
			if line == "" {
				continue
			}
			s.WriteString("    " + line)
		}
		if !strings.HasSuffix(g.out, "\n") {
			s.WriteString("\n")
		}
	}
	return s.String()
}

// reportCompile renders a compile-stage bucket: per-implementation
// status with the diagnostics (or crash text) that define the bucket.
func (b *Bucket) reportCompile() string {
	co := b.Compile
	var s strings.Builder
	fmt.Fprintf(&s, "bucket %016x %s (%d programs, %d signatures)\n",
		b.Key, b.Fingerprint, b.Count, b.Signatures)
	for _, im := range co.Impls {
		fmt.Fprintf(&s, "[%s] %s\n", im.Name, im.Status)
		if im.ICE != "" {
			s.WriteString("    " + im.ICE + "\n")
			continue
		}
		for _, d := range im.Diags {
			s.WriteString("    " + d + "\n")
		}
	}
	return s.String()
}

// Table renders the bucketed summary: one row per bucket with its
// key, hit count, merged signature count, divergence stage, and
// partition/class shape — the campaign-end triage overview.
func (bs *BucketStore) Table() string {
	buckets := bs.Buckets()
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "bucket\tinputs\tsigs\tstage\tfingerprint")
	for _, bk := range buckets {
		fmt.Fprintf(tw, "%016x\t%d\t%d\t%d\t%s\n",
			bk.Key, bk.Count, bk.Signatures, bk.Fingerprint.Stage, bk.Fingerprint)
	}
	tw.Flush()
	return b.String()
}

// clip truncates b to at most n bytes for display.
func clip(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[:n]
}
