package triage

import (
	"errors"
	"fmt"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// ReduceOptions configures a reduction.
type ReduceOptions struct {
	// Configs are the compiler implementations the divergence must
	// keep reproducing on. Defaults to the paper's ten.
	Configs []compiler.Config
	// Suite carries the differential-execution options (step limit,
	// normalizer, parallelism) every candidate re-runs under.
	Suite core.Options
	// MaxSuiteRuns bounds the total number of differential suite
	// executions the reduction may spend, including the baseline run
	// (each one executes all k binaries). Zero means DefaultBudget.
	MaxSuiteRuns int
}

// DefaultBudget is the default MaxSuiteRuns. Candidate evaluations
// dominate reduction cost, so this is the knob that bounds wall-clock.
const DefaultBudget = 4000

// Reduction is the result of reducing one finding.
type Reduction struct {
	// Source is the minimized MiniC program.
	Source string
	// Input is the minimized triggering input.
	Input []byte
	// Fingerprint is the preserved divergence fingerprint — identical
	// to the original finding's by construction.
	Fingerprint Fingerprint

	// OrigSourceBytes / OrigInputBytes are the sizes going in.
	OrigSourceBytes int
	OrigInputBytes  int
	// SuiteRuns is the number of differential executions spent;
	// Builds the number of candidate k-implementation compilations.
	SuiteRuns int
	Builds    int
}

// SourceShrink is the fraction of source bytes removed, in [0, 1].
func (r *Reduction) SourceShrink() float64 {
	if r.OrigSourceBytes == 0 {
		return 0
	}
	return 1 - float64(len(r.Source))/float64(r.OrigSourceBytes)
}

// ErrNoDivergence reports that the finding to reduce does not diverge
// under the given implementations, so there is nothing to preserve.
var ErrNoDivergence = errors.New("triage: finding does not diverge")

// Reduce shrinks a diverging finding — a MiniC program plus the input
// that triggers the divergence — to a smaller reproducer with the
// *same* divergence fingerprint. Delta debugging runs at two levels:
// AST passes over the program (drop statements and declarations,
// collapse branches, inline single-use locals, simplify expressions,
// shrink literals) and classic ddmin over the input bytes. Every
// candidate is re-compiled under all k implementations and re-executed
// differentially; it is accepted only if it still parses, passes
// sema, and reproduces the original fingerprint. Checksum changes are
// explicitly allowed — an uninitialized read prints different garbage
// once the frame shrinks, yet it is still the same bug as long as the
// implementations disagree the same way.
//
// Compile-stage findings reduce too: when the baseline program itself
// diverges at compile time (accept/reject split, ICE, or diagnostic
// mismatch), the acceptance predicate becomes compile-fingerprint
// preservation — same partition, same normalized crash/diagnostic
// keys — and no VM run is needed.
//
// Reduce is deterministic: same finding, same options, same result,
// regardless of Suite.Parallelism.
func Reduce(src string, input []byte, opts ReduceOptions) (*Reduction, error) {
	cfgs := opts.Configs
	if len(cfgs) == 0 {
		cfgs = compiler.DefaultSet()
	}
	budget := opts.MaxSuiteRuns
	if budget <= 0 {
		budget = DefaultBudget
	}
	r := &reducer{cfgs: cfgs, sopts: opts.Suite, budget: budget}

	suite, co, err := r.buildDifferential(src)
	if err != nil {
		return nil, fmt.Errorf("triage: baseline: %w", err)
	}
	if fp, ok := OfCompile(co); ok {
		// Compile-stage finding: the program itself is the reproducer.
		// Reduction preserves the compile fingerprint (same
		// accept/reject/ICE partition, same normalized message keys) and
		// never runs the VM; the input is irrelevant and drops to empty.
		r.compileMode = true
		r.fp = fp
		r.best = src
		for !r.exhausted() {
			if !r.reduceProgram() {
				break
			}
		}
		return &Reduction{
			Source:          r.best,
			Fingerprint:     r.fp,
			OrigSourceBytes: len(src),
			OrigInputBytes:  len(input),
			SuiteRuns:       r.runs,
			Builds:          r.builds,
		}, nil
	}
	if suite == nil {
		// Uniformly rejected program: nothing diverges.
		return nil, ErrNoDivergence
	}
	base := r.run(suite, input)
	if base == nil || !base.Diverged {
		return nil, ErrNoDivergence
	}
	r.fp = Of(base)
	r.best = src
	r.bestSuite = suite
	r.input = input

	// Alternate program and input reduction until a full round makes
	// no progress (or the budget runs dry). Program first: dropping
	// the code that consumes input bytes is what unlocks input ddmin.
	for {
		progress := r.reduceProgram()
		progress = r.reduceInput() || progress
		if !progress || r.exhausted() {
			break
		}
	}

	return &Reduction{
		Source:          r.best,
		Input:           r.input,
		Fingerprint:     r.fp,
		OrigSourceBytes: len(src),
		OrigInputBytes:  len(input),
		SuiteRuns:       r.runs,
		Builds:          r.builds,
	}, nil
}

// reducer carries one reduction's state.
type reducer struct {
	cfgs   []compiler.Config
	sopts  core.Options
	budget int

	fp        Fingerprint
	best      string
	bestSuite *core.Suite
	input     []byte

	// compileMode reduces against the compile-stage fingerprint: a
	// candidate is accepted when it reproduces the same
	// accept/reject/ICE partition with the same normalized message
	// keys. No VM ever runs; each candidate's k-way compilation is
	// charged against the budget like a suite run.
	compileMode bool

	runs   int
	builds int
}

func (r *reducer) exhausted() bool { return r.runs >= r.budget }

// build compiles src under every configuration. Parse or sema
// failures are returned, not counted against the budget.
func (r *reducer) build(src string) (*core.Suite, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, err
	}
	r.builds++
	return core.Build(info, r.cfgs, r.sopts)
}

// buildDifferential compiles src under every configuration with the
// compile-stage oracle. Parse or sema failures are returned, not
// counted against the budget.
func (r *reducer) buildDifferential(src string) (*core.Suite, *core.CompileOutcome, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	r.builds++
	return core.BuildDifferential(info, r.cfgs, r.sopts)
}

// tryProgramCompile evaluates one candidate source against the
// compile-stage fingerprint.
func (r *reducer) tryProgramCompile(src string) bool {
	if r.exhausted() {
		return false
	}
	_, co, err := r.buildDifferential(src)
	if err != nil {
		return false // does not parse or does not check: rejected free
	}
	r.runs++
	fp, ok := OfCompile(co)
	if !ok || !fp.Equal(r.fp) {
		return false
	}
	r.best = src
	return true
}

// run executes one differential suite run, charging the budget.
// Returns nil when the budget is already spent.
func (r *reducer) run(s *core.Suite, input []byte) *core.Outcome {
	if r.exhausted() {
		return nil
	}
	r.runs++
	return s.Run(input)
}

// tryProgram evaluates one candidate source. Accepting updates best
// and bestSuite.
func (r *reducer) tryProgram(src string) bool {
	if src == r.best || len(src) > len(r.best) {
		return false
	}
	if r.compileMode {
		return r.tryProgramCompile(src)
	}
	suite, err := r.build(src)
	if err != nil {
		return false // does not parse or does not check: rejected free
	}
	o := r.run(suite, r.input)
	if o == nil || !o.Diverged || !Of(o).Equal(r.fp) {
		return false
	}
	r.best = src
	r.bestSuite = suite
	return true
}

// reduceProgram runs one full round of AST passes over the current
// best program, greedily accepting fingerprint-preserving edits.
// Returns whether anything shrank.
func (r *reducer) reduceProgram() bool {
	progress := false
	for _, ps := range reductionPasses {
		k := 0
		for !r.exhausted() {
			prog, err := parser.Parse(r.best)
			if err != nil {
				break // cannot happen for accepted sources; bail safely
			}
			if !ps.apply(prog, k) {
				break // this pass's edits are exhausted
			}
			if r.tryProgram(ast.Print(prog)) {
				progress = true
				// Indices shifted under the accepted edit: retry the
				// same k against the new best.
				continue
			}
			k++
		}
	}
	return progress
}

// tryInput evaluates one candidate input on the current best suite.
func (r *reducer) tryInput(cand []byte) bool {
	if len(cand) >= len(r.input) {
		return false
	}
	o := r.run(r.bestSuite, cand)
	if o == nil || !o.Diverged || !Of(o).Equal(r.fp) {
		return false
	}
	r.input = append([]byte(nil), cand...)
	return true
}

// reduceInput is classic ddmin over the input bytes (Zeller &
// Hildebrandt): try the empty input, then complements of an
// ever-finer chunk partition. The predicate is fingerprint
// preservation on the current best program.
func (r *reducer) reduceInput() bool {
	if len(r.input) == 0 {
		return false
	}
	progress := false
	if r.tryInput(nil) {
		return true
	}
	n := 2
	for len(r.input) >= 2 && !r.exhausted() {
		reduced := false
		chunk := (len(r.input) + n - 1) / n
		for start := 0; start < len(r.input); start += chunk {
			end := start + chunk
			if end > len(r.input) {
				end = len(r.input)
			}
			cand := make([]byte, 0, len(r.input)-(end-start))
			cand = append(cand, r.input[:start]...)
			cand = append(cand, r.input[end:]...)
			if r.tryInput(cand) {
				reduced, progress = true, true
				if n > 2 {
					n--
				}
				break
			}
			if r.exhausted() {
				break
			}
		}
		if !reduced {
			if n >= len(r.input) {
				break
			}
			n *= 2
			if n > len(r.input) {
				n = len(r.input)
			}
		}
	}
	return progress
}
