package triage

import "testing"

// TestNormalizeMessage pins the normalization rules one by one.
func TestNormalizeMessage(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"hex address", "crash at 0xDEADbeef01", "crash at <hex>"},
		{"slash path", "in /usr/lib/gcc-12/cc1 during fold", "in <path> during fold"},
		{"relative path", "in lib/expr/fold.cc line 9", "in <path> line <n>"},
		{"bare file token", "at expr.cc:4149 in fold", "at <path>:<n> in fold"},
		{"go file token", "panic in lower.go", "panic in <path>"},
		{"digit runs", "depth 49 exceeds 48", "depth <n> exceeds <n>"},
		{"hex before digits", "frame 0x1234 depth 12", "frame <hex> depth <n>"},
		{"whitespace collapse", "  a\tb\n c  ", "a b c"},
		{"plain text untouched", "error in backend", "error in backend"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := NormalizeMessage(c.in); got != c.want {
				t.Errorf("NormalizeMessage(%q) = %q, want %q", c.in, got, c.want)
			}
		})
	}
}

// TestCrashKeyCollapsesIncidentalNoise: the same underlying crash
// reported with different paths, line numbers, addresses, and
// counters must hash to one key — that is what keeps a reducer's
// line-shifted reproducer in the original bucket.
func TestCrashKeyCollapsesIncidentalNoise(t *testing.T) {
	base := CrashKey("internal compiler error: in simplify_expr, at expr.cc:4149: depth 49 exceeds 48 at <source>:18 (frame 0xb568a6a6086f786c)")
	variants := []string{
		// Different line numbers and depth counters.
		"internal compiler error: in simplify_expr, at expr.cc:912: depth 51 exceeds 48 at <source>:3 (frame 0xb568a6a6086f786c)",
		// Different frame address.
		"internal compiler error: in simplify_expr, at expr.cc:4149: depth 49 exceeds 48 at <source>:18 (frame 0x1)",
		// A path-qualified source location.
		"internal compiler error: in simplify_expr, at gcc/fold/expr.cc:4149: depth 49 exceeds 48 at <source>:18 (frame 0xb568a6a6086f786c)",
		// Sloppier whitespace.
		"internal compiler error:  in simplify_expr,\tat expr.cc:4149: depth 49 exceeds 48 at <source>:18 (frame 0xb568a6a6086f786c)",
	}
	for i, v := range variants {
		if got := CrashKey(v); got != base {
			t.Errorf("variant %d: CrashKey %016x != base %016x\n%s", i, got, base, v)
		}
	}
}

// TestCrashKeyKeepsDistinctCrashesApart: genuinely different panics —
// a different failing function, a different complaint — must not
// collide.
func TestCrashKeyKeepsDistinctCrashesApart(t *testing.T) {
	keys := map[uint64]string{}
	for _, text := range []string{
		"internal compiler error: in simplify_expr, at expr.cc:4149: depth 49 exceeds 48",
		"internal compiler error: in lower_stmt, at expr.cc:4149: depth 49 exceeds 48",
		"fatal error: error in backend: simplifier recursion limit 48 reached at depth 49",
		"fatal error: error in backend: register allocator ran out of colors",
	} {
		k := CrashKey(text)
		if prev, dup := keys[k]; dup {
			t.Fatalf("distinct crashes collide on %016x:\n%s\n%s", k, prev, text)
		}
		keys[k] = text
	}
}

// TestDiagSetKey: set semantics — order and duplicates are identity-
// irrelevant, content is not, and the empty set is the zero key.
func TestDiagSetKey(t *testing.T) {
	a := []string{
		"<source>:2: error: division by zero [-Werror=div-by-zero]",
		"<source>:9: warning: left shift count >= width of type [-Wshift-count-overflow]",
	}
	reordered := []string{a[1], a[0]}
	duplicated := []string{a[0], a[1], a[0]}
	lineShifted := []string{
		"<source>:7: error: division by zero [-Werror=div-by-zero]",
		"<source>:1: warning: left shift count >= width of type [-Wshift-count-overflow]",
	}
	base := DiagSetKey(a)
	if base == 0 {
		t.Fatal("non-empty diag set hashed to the zero key")
	}
	for i, set := range [][]string{reordered, duplicated, lineShifted} {
		if got := DiagSetKey(set); got != base {
			t.Errorf("equivalent set %d: %016x != %016x", i, got, base)
		}
	}
	other := []string{"<source>:2: error: division by zero is undefined [-Wdivision-by-zero]"}
	if DiagSetKey(other) == base {
		t.Error("different wording collided with the base set")
	}
	if DiagSetKey(nil) != 0 || DiagSetKey([]string{}) != 0 {
		t.Error("empty diag set must key to 0")
	}
}
