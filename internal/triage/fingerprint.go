// Package triage turns raw CompDiff divergences into actionable
// reports, the workflow step the paper ran after detection: every
// finding in Tables 5/6 was first reduced (C-Reduce) and deduplicated
// before it became one of the 78 reported bugs. The package provides
// the two halves of that step:
//
//   - a divergence Fingerprint and BucketStore that deduplicate
//     findings by *how* the implementations disagree rather than by
//     what exact bytes they printed, and
//   - a delta-debugging Reducer that shrinks both the fuzz input
//     (classic ddmin) and the MiniC program (AST-level passes) while
//     re-running the full differential suite after every candidate,
//     accepting only candidates that preserve the fingerprint.
//
// Signature-stability — not checksum-stability — is the acceptance
// predicate throughout: reduction is allowed to change incidental
// output (an uninitialized read prints different garbage once the
// frame layout shrinks) as long as the implementations still disagree
// in the same way.
package triage

import (
	"encoding/json"
	"fmt"
	"strings"

	"compdiff/internal/core"
	"compdiff/internal/hash"
	"compdiff/internal/telemetry"
)

// Fingerprint is the dedup key of a divergence: which implementations
// disagree (the partition of suite indices by output checksum, in
// canonical smallest-representative form), how each run ended (the
// coarse outcome class, not the raw exit kind), and where along the
// implementation chain the outputs first depart. Two findings with
// equal fingerprints are treated as the same underlying bug even when
// their raw checksums differ — the signature-stability principle.
type Fingerprint struct {
	// Partition has one entry per implementation: the smallest suite
	// index whose output checksum equals this implementation's.
	Partition []uint8 `json:"partition"`
	// Classes has one entry per implementation: its outcome class
	// (ok / crash / step-limit-hang). Classes deliberately coarsen
	// exit kinds — a SIGFPE and a SIGSEGV at the same site are the
	// same bug seen through two personalities.
	Classes []uint8 `json:"classes"`
	// Stage is the first position in the suite's implementation chain
	// (family × rising optimization level, suite order) whose output
	// departs from the chain head's — the "first divergent stage".
	Stage int `json:"stage"`
}

// Of computes the fingerprint of a diverging outcome. The outcome
// must carry materialized Results (core.Suite.Run always does;
// RunFast does exactly when Diverged is set).
func Of(o *core.Outcome) Fingerprint {
	k := len(o.Hashes)
	fp := Fingerprint{
		Partition: make([]uint8, k),
		Classes:   make([]uint8, k),
		Stage:     0,
	}
	for i, h := range o.Hashes {
		rep := i
		for j := 0; j < i; j++ {
			if o.Hashes[j] == h {
				rep = j
				break
			}
		}
		fp.Partition[i] = uint8(rep)
		if fp.Stage == 0 && rep != 0 {
			fp.Stage = i
		}
		fp.Classes[i] = uint8(core.ClassifyResult(o.Results[i]))
	}
	return fp
}

// Key folds the fingerprint into a 64-bit bucket key. The seed is
// distinct from the output-checksum and triage-signature seeds so the
// three keyspaces never collide structurally.
func (f Fingerprint) Key() uint64 {
	d := hash.New128(0x791a)
	d.Write(f.Partition)
	d.Write([]byte{0xff})
	d.Write(f.Classes)
	d.Write([]byte{byte(f.Stage)})
	h1, _ := d.Sum128()
	return h1
}

// Equal reports whether two fingerprints denote the same bucket.
func (f Fingerprint) Equal(g Fingerprint) bool {
	if f.Stage != g.Stage || len(f.Partition) != len(g.Partition) || len(f.Classes) != len(g.Classes) {
		return false
	}
	for i := range f.Partition {
		if f.Partition[i] != g.Partition[i] {
			return false
		}
	}
	for i := range f.Classes {
		if f.Classes[i] != g.Classes[i] {
			return false
		}
	}
	return true
}

// classLetters renders outcome classes compactly: o=ok, c=crash,
// h=step-limit-hang, d=diff (unused per-impl, kept for completeness).
var classLetters = [telemetry.NumClasses]byte{'o', 'c', 'h', 'd'}

// String renders the fingerprint human-readably, e.g.
// "stage2 part[0011122233] class[ooccoooooo]".
func (f Fingerprint) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stage%d part[", f.Stage)
	for _, p := range f.Partition {
		if p < 10 {
			b.WriteByte('0' + p)
		} else {
			b.WriteByte('a' + p - 10)
		}
	}
	b.WriteString("] class[")
	for _, c := range f.Classes {
		if int(c) < len(classLetters) {
			b.WriteByte(classLetters[c])
		} else {
			b.WriteByte('?')
		}
	}
	b.WriteString("]")
	return b.String()
}

// MarshalJSON emits the struct fields plus the derived key and the
// human-readable form, so persisted fingerprints are self-describing.
func (f Fingerprint) MarshalJSON() ([]byte, error) {
	type plain Fingerprint
	return json.Marshal(struct {
		plain
		Key    string `json:"key"`
		Pretty string `json:"pretty"`
	}{plain(f), fmt.Sprintf("%016x", f.Key()), f.String()})
}
