// Package triage turns raw CompDiff divergences into actionable
// reports, the workflow step the paper ran after detection: every
// finding in Tables 5/6 was first reduced (C-Reduce) and deduplicated
// before it became one of the 78 reported bugs. The package provides
// the two halves of that step:
//
//   - a divergence Fingerprint and BucketStore that deduplicate
//     findings by *how* the implementations disagree rather than by
//     what exact bytes they printed, and
//   - a delta-debugging Reducer that shrinks both the fuzz input
//     (classic ddmin) and the MiniC program (AST-level passes) while
//     re-running the full differential suite after every candidate,
//     accepting only candidates that preserve the fingerprint.
//
// Signature-stability — not checksum-stability — is the acceptance
// predicate throughout: reduction is allowed to change incidental
// output (an uninitialized read prints different garbage once the
// frame layout shrinks) as long as the implementations still disagree
// in the same way.
package triage

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"compdiff/internal/core"
	"compdiff/internal/hash"
	"compdiff/internal/telemetry"
)

// Fingerprint is the dedup key of a divergence: which implementations
// disagree (the partition of suite indices by output checksum, in
// canonical smallest-representative form), how each run ended (the
// coarse outcome class, not the raw exit kind), and where along the
// implementation chain the outputs first depart. Two findings with
// equal fingerprints are treated as the same underlying bug even when
// their raw checksums differ — the signature-stability principle.
type Fingerprint struct {
	// Partition has one entry per implementation: the smallest suite
	// index whose output checksum equals this implementation's.
	Partition []uint8 `json:"partition"`
	// Classes has one entry per implementation: its outcome class
	// (ok / crash / step-limit-hang). Classes deliberately coarsen
	// exit kinds — a SIGFPE and a SIGSEGV at the same site are the
	// same bug seen through two personalities.
	Classes []uint8 `json:"classes"`
	// Stage is the first position in the suite's implementation chain
	// (family × rising optimization level, suite order) whose output
	// departs from the chain head's — the "first divergent stage".
	Stage int `json:"stage"`

	// Kind says which oracle produced the finding. The zero value
	// (KindRuntime) is the classic output-differential oracle, so
	// runtime fingerprints — and their persisted keys — are unchanged
	// by the compile-stage extension.
	Kind Kind `json:"kind,omitempty"`
	// Detail is the compile-stage identity refinement: a hash over the
	// per-implementation (status, normalized message key) sequence.
	// Zero for runtime findings. It distinguishes, say, two different
	// ICEs that crash the same subset of implementations.
	Detail uint64 `json:"detail,omitempty"`
}

// Kind is the oracle class of a finding.
type Kind uint8

const (
	// KindRuntime: the classic output differential (paper oracle).
	KindRuntime Kind = iota
	// KindCompileDivergence: some implementations accept the program,
	// others reject it.
	KindCompileDivergence
	// KindICE: at least one implementation crashed compiling it.
	KindICE
	// KindDiagMismatch: all implementations reject, but with different
	// normalized diagnostic sets.
	KindDiagMismatch

	// NumKinds is the number of finding kinds.
	NumKinds = 4
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindRuntime:
		return "runtime"
	case KindCompileDivergence:
		return "compile-divergence"
	case KindICE:
		return "ice"
	case KindDiagMismatch:
		return "diag-mismatch"
	}
	return "unknown"
}

// Of computes the fingerprint of a diverging outcome. The outcome
// must carry materialized Results (core.Suite.Run always does;
// RunFast does exactly when Diverged is set).
func Of(o *core.Outcome) Fingerprint {
	k := len(o.Hashes)
	fp := Fingerprint{
		Partition: make([]uint8, k),
		Classes:   make([]uint8, k),
		Stage:     0,
	}
	for i, h := range o.Hashes {
		rep := i
		for j := 0; j < i; j++ {
			if o.Hashes[j] == h {
				rep = j
				break
			}
		}
		fp.Partition[i] = uint8(rep)
		if fp.Stage == 0 && rep != 0 {
			fp.Stage = i
		}
		fp.Classes[i] = uint8(core.ClassifyResult(o.Results[i]))
	}
	return fp
}

// Key folds the fingerprint into a 64-bit bucket key. The seed is
// distinct from the output-checksum and triage-signature seeds so the
// three keyspaces never collide structurally. Kind and Detail are
// mixed in only when set, so every runtime fingerprint keys exactly
// as it did before the compile-stage oracle existed (golden files pin
// those keys).
func (f Fingerprint) Key() uint64 {
	d := hash.New128(0x791a)
	d.Write(f.Partition)
	d.Write([]byte{0xff})
	d.Write(f.Classes)
	d.Write([]byte{byte(f.Stage)})
	if f.Kind != KindRuntime || f.Detail != 0 {
		var tail [10]byte
		tail[0] = 0xfe
		tail[1] = byte(f.Kind)
		for i := 0; i < 8; i++ {
			tail[2+i] = byte(f.Detail >> (8 * i))
		}
		d.Write(tail[:])
	}
	h1, _ := d.Sum128()
	return h1
}

// Equal reports whether two fingerprints denote the same bucket.
func (f Fingerprint) Equal(g Fingerprint) bool {
	if f.Stage != g.Stage || f.Kind != g.Kind || f.Detail != g.Detail ||
		len(f.Partition) != len(g.Partition) || len(f.Classes) != len(g.Classes) {
		return false
	}
	for i := range f.Partition {
		if f.Partition[i] != g.Partition[i] {
			return false
		}
	}
	for i := range f.Classes {
		if f.Classes[i] != g.Classes[i] {
			return false
		}
	}
	return true
}

// classLetters renders outcome classes compactly: o=ok, c=crash,
// h=step-limit-hang, d=diff (unused per-impl, kept for completeness).
var classLetters = [telemetry.NumClasses]byte{'o', 'c', 'h', 'd'}

// compileLetters renders compile statuses: a=accept, r=reject, i=ice.
var compileLetters = [...]byte{'a', 'r', 'i'}

// String renders the fingerprint human-readably, e.g.
// "stage2 part[0011122233] class[ooccoooooo]" for a runtime finding or
// "ice stage2 part[0022200555] class[aaiiiaaiii] detail[…]" for a
// compile-stage one.
func (f Fingerprint) String() string {
	var b strings.Builder
	letters := classLetters[:]
	if f.Kind != KindRuntime {
		letters = compileLetters[:]
		fmt.Fprintf(&b, "%s ", f.Kind)
	}
	fmt.Fprintf(&b, "stage%d part[", f.Stage)
	for _, p := range f.Partition {
		if p < 10 {
			b.WriteByte('0' + p)
		} else {
			b.WriteByte('a' + p - 10)
		}
	}
	b.WriteString("] class[")
	for _, c := range f.Classes {
		if int(c) < len(letters) {
			b.WriteByte(letters[c])
		} else {
			b.WriteByte('?')
		}
	}
	b.WriteString("]")
	if f.Kind != KindRuntime {
		fmt.Fprintf(&b, " detail[%016x]", f.Detail)
	}
	return b.String()
}

// implKey is one implementation's compile-stage identity: zero for an
// accept, the normalized diagnostic-set key for a reject, the
// normalized crash key for an ICE. Reject identities fall back to the
// normalized error text when no diagnostics were rendered (structural
// rejects like a missing main), with the per-implementation "compile
// [name]:" prefix stripped so identical complaints stay identical.
func implKey(im core.ImplCompile) uint64 {
	switch im.Status {
	case core.StatusAccept:
		return 0
	case core.StatusICE:
		return CrashKey(im.ICE)
	default:
		if len(im.Diags) > 0 {
			return DiagSetKey(im.Diags)
		}
		return DiagSetKey([]string{stripImplPrefix(im.Error)})
	}
}

var implPrefix = regexp.MustCompile(`^compile \[[^\]]*\]: `)

func stripImplPrefix(s string) string {
	return implPrefix.ReplaceAllString(s, "")
}

// OfCompile computes the fingerprint of a compile outcome and reports
// whether it is a finding at all. Implementations are partitioned by
// their compile-stage identity (status plus normalized message key);
// Classes carry the per-implementation status. Non-findings — every
// implementation accepts, or every implementation rejects with the
// same normalized diagnostics (a plain invalid program) — return
// ok=false.
func OfCompile(co *core.CompileOutcome) (Fingerprint, bool) {
	k := len(co.Impls)
	fp := Fingerprint{
		Partition: make([]uint8, k),
		Classes:   make([]uint8, k),
	}
	keys := make([]uint64, k)
	var anyICE, anyAccept, anyReject bool
	uniform := true
	for i, im := range co.Impls {
		keys[i] = implKey(im)
		fp.Classes[i] = uint8(im.Status)
		switch im.Status {
		case core.StatusAccept:
			anyAccept = true
		case core.StatusICE:
			anyICE = true
		default:
			anyReject = true
		}
		rep := i
		for j := 0; j < i; j++ {
			if co.Impls[j].Status == im.Status && keys[j] == keys[i] {
				rep = j
				break
			}
		}
		fp.Partition[i] = uint8(rep)
		if fp.Stage == 0 && rep != 0 {
			fp.Stage = i
		}
		if rep != 0 {
			uniform = false
		}
	}
	switch {
	case anyICE:
		fp.Kind = KindICE
	case anyAccept && anyReject:
		fp.Kind = KindCompileDivergence
	case anyReject:
		if uniform {
			return Fingerprint{}, false // same complaint everywhere
		}
		fp.Kind = KindDiagMismatch
	default:
		return Fingerprint{}, false // all accepted: runtime oracle's turn
	}
	d := hash.New128(0x1ce7)
	for i := range keys {
		var rec [9]byte
		rec[0] = byte(co.Impls[i].Status)
		for b := 0; b < 8; b++ {
			rec[1+b] = byte(keys[i] >> (8 * b))
		}
		d.Write(rec[:])
	}
	fp.Detail, _ = d.Sum128()
	return fp, true
}

// MarshalJSON emits the struct fields plus the derived key and the
// human-readable form, so persisted fingerprints are self-describing.
func (f Fingerprint) MarshalJSON() ([]byte, error) {
	type plain Fingerprint
	return json.Marshal(struct {
		plain
		Key    string `json:"key"`
		Pretty string `json:"pretty"`
	}{plain(f), fmt.Sprintf("%016x", f.Key()), f.String()})
}
